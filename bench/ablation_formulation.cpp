// Ablations over the design choices DESIGN.md calls out:
//   A. diagonal-FREE elimination (Section 4.8): variable count and solve
//      time with/without.
//   B. epsilon budget allowance for two-phase rounding (Section 5.3):
//      sweep eps and report feasibility and cost of the rounded schedule.
//   C. rounding-heuristic incumbent injection in branch & bound: solve
//      time with/without the Checkmate-specific primal heuristic.
#include <cstdio>

#include "bench_common.h"

using namespace checkmate;

int main() {
  const auto scale = bench::get_scale();
  // Uniform 16-layer chain: wide feasible band between the working-set
  // floor and checkpoint-all, so every ablation axis has room to move
  // (VGG-style pyramids at small scale are parameter-dominated and leave a
  // hair-thin band).
  auto problem = RematProblem::from_dnn(
      model::make_training_graph(
          model::zoo::linear_net(16, scale.batch(64), 48, 56)),
      model::CostMetric::kProfiledTimeUs);
  Scheduler sched(problem);
  auto all = sched.evaluate_schedule(
      baselines::checkpoint_all_schedule(problem), 0.0);
  const double floor = problem.memory_floor();
  const double budget = floor + 0.5 * (all.peak_memory - floor);

  std::printf("Ablations on linear_net(16) (n=%d), budget %.3f GB\n",
              problem.size(), budget / 1e9);

  // ---- A: diagonal FREE elimination. Run at a gentler budget so the raw
  // solver (no incumbent seeding here) closes both variants; equality of
  // the optima is also asserted by the test suite.
  const double budget_a = floor + 0.8 * (all.peak_memory - floor);
  std::printf("\nA. diagonal-FREE elimination (Section 4.8), budget %.3f GB\n",
              budget_a / 1e9);
  bench::print_rule(70);
  std::printf("%-22s %12s %12s %10s %10s\n", "variant", "variables",
              "constraints", "solve(s)", "cost(ms)");
  for (bool eliminate : {true, false}) {
    IlpBuildOptions build;
    build.budget_bytes = budget_a;
    build.eliminate_diag_free = eliminate;
    IlpFormulation f(problem, build);
    milp::MilpOptions mopts;
    mopts.time_limit_sec = scale.ilp_time_limit_sec;
    mopts.branch_priority = f.branch_priorities();
    auto res = milp::solve_milp(f.lp(), mopts);
    std::printf("%-22s %12d %12d %10.3f %10.3f\n",
                eliminate ? "eliminated (paper)" : "full FREE matrix",
                f.lp().num_vars(), f.lp().num_rows(), res.seconds,
                res.has_solution() ? f.unscale_cost(res.objective) / 1e3
                                   : -1.0);
  }

  // ---- B: epsilon sweep for rounding.
  std::printf("\nB. rounding budget allowance eps (Section 5.3)\n");
  bench::print_rule(70);
  std::printf("%-8s %10s %12s %12s\n", "eps", "feasible", "cost(ms)",
              "peak(GB)");
  for (double eps : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    ApproxOptions opts;
    opts.epsilon = eps;
    auto res = sched.solve_lp_rounding(budget, opts);
    std::printf("%-8.2f %10s %12.3f %12.3f\n", eps,
                res.feasible ? "yes" : "no",
                res.feasible ? res.cost / 1e3 : -1.0,
                res.feasible ? res.peak_memory / 1e9 : -1.0);
  }

  // ---- C: incumbent heuristic on/off.
  std::printf("\nC. two-phase-rounding incumbent heuristic in B&B\n");
  bench::print_rule(70);
  std::printf("%-22s %10s %10s %12s\n", "variant", "solve(s)", "nodes",
              "cost(ms)");
  for (bool use_heuristic : {true, false}) {
    IlpSolveOptions opts;
    opts.time_limit_sec = scale.ilp_time_limit_sec;
    opts.use_rounding_heuristic = use_heuristic;
    auto res = sched.solve_optimal_ilp(budget, opts);
    std::printf("%-22s %10.3f %10lld %12.3f\n",
                use_heuristic ? "with heuristic" : "without heuristic",
                res.seconds, static_cast<long long>(res.nodes),
                res.feasible ? res.cost / 1e3 : -1.0);
  }
  return 0;
}
