// Appendix A / Section 4.6: why frontier-advancing partitioning matters.
// On the paper's 8-layer linear network (n = 17 nodes, unit costs and
// memories, budget 4), we measure for both MILP forms:
//   - the LP relaxation value and the ILP optimum (integrality gap)
//   - branch & bound solve time and node count
// The paper reports the gap dropping from 21.56 to 1.18 and the solve time
// from 9.4 hours (Gurobi, unpartitioned) to 0.23 seconds.
#include <cstdio>

#include "bench_common.h"

using namespace checkmate;

namespace {

struct FormResult {
  double lp_value = 0.0;
  double ilp_value = 0.0;
  double seconds = 0.0;
  int64_t nodes = 0;
  bool solved = false;
};

FormResult solve_form(const RematProblem& p, double budget, bool partitioned,
                      double time_limit) {
  IlpBuildOptions build;
  build.budget_bytes = budget;
  build.partitioned = partitioned;
  IlpFormulation f(p, build);

  FormResult out;
  auto rel = lp::solve_lp(f.lp());
  if (rel.status == lp::LpStatus::kOptimal)
    out.lp_value = f.unscale_cost(rel.objective);

  if (partitioned) {
    // Full Checkmate pipeline: incumbent seeding + rounding heuristic.
    Scheduler sched(p);
    IlpSolveOptions opts;
    opts.time_limit_sec = time_limit;
    auto res = sched.solve_optimal_ilp(budget, opts);
    out.seconds = res.seconds;
    out.nodes = res.nodes;
    if (res.feasible) {
      out.ilp_value = res.cost;
      out.solved = res.milp_status == milp::MilpStatus::kOptimal;
    }
    return out;
  }
  milp::MilpOptions mopts;
  mopts.time_limit_sec = time_limit;
  mopts.branch_priority = f.branch_priorities();
  auto res = milp::solve_milp(f.lp(), mopts);
  out.seconds = res.seconds;
  out.nodes = res.nodes;
  if (res.has_solution()) {
    out.ilp_value = f.unscale_cost(res.objective);
    out.solved = res.status == milp::MilpStatus::kOptimal;
  }
  return out;
}

}  // namespace

int main() {
  const auto scale = bench::get_scale();
  const int layers = 8;
  auto p = RematProblem::unit_training_chain(layers);  // n = 17
  const double budget = 4.0;

  std::printf("Appendix A: integrality gap & solve time, %d-layer unit "
              "chain (n = %d), budget %.0f\n",
              layers, p.size(), budget);
  bench::print_rule(86);
  std::printf("%-16s %10s %10s %18s %12s %10s\n", "formulation", "LP relax",
              "ILP opt", "integrality gap", "solve(s)", "nodes");
  bench::print_rule(86);

  auto print_row = [](const char* name, const FormResult& r) {
    if (r.ilp_value > 0.0) {
      std::printf("%-16s %10.3f %10.3f %18.2f %12.3f %10lld%s\n", name,
                  r.lp_value, r.ilp_value,
                  r.ilp_value / std::max(1e-9, r.lp_value), r.seconds,
                  static_cast<long long>(r.nodes),
                  r.solved ? "" : "  (time limit; best incumbent)");
    } else {
      std::printf("%-16s %10.3f %10s %18s %12.3f %10lld  (no incumbent)\n",
                  name, r.lp_value, "--", "--", r.seconds,
                  static_cast<long long>(r.nodes));
    }
  };
  auto part = solve_form(p, budget, /*partitioned=*/true,
                         std::max(60.0, scale.ilp_time_limit_sec));
  print_row("partitioned", part);

  auto unpart = solve_form(p, budget, /*partitioned=*/false,
                           std::max(120.0, scale.ilp_time_limit_sec));
  print_row("unpartitioned", unpart);
  bench::print_rule(86);
  std::printf(
      "Paper: gap 21.56 -> 1.18; solve 9.4h -> 0.23s. The partitioned LP\n"
      "relaxation is dramatically tighter, so branch & bound prunes almost\n"
      "everything.\n");
  return 0;
}
