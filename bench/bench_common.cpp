#include "bench_common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace checkmate::bench {

BenchScale get_scale() {
  BenchScale s;
  const char* env = std::getenv("CHECKMATE_BENCH_SCALE");
  s.paper_scale = env != nullptr && std::strcmp(env, "paper") == 0;
  const char* tl = std::getenv("CHECKMATE_BENCH_TIME_LIMIT");
  if (tl != nullptr) s.ilp_time_limit_sec = std::atof(tl);
  else if (s.paper_scale) s.ilp_time_limit_sec = 3600.0;
  return s;
}

int64_t BenchScale::batch(int64_t paper_batch) const {
  return paper_scale ? paper_batch : std::max<int64_t>(1, paper_batch / 16);
}

int64_t BenchScale::resolution(int64_t paper_res) const {
  if (paper_scale) return paper_res;
  // Keep resolutions divisible by 32 so pooling stacks stay integral.
  return std::max<int64_t>(32, paper_res / 4 / 32 * 32);
}

StrategyPoint best_baseline_at_budget(const Scheduler& scheduler,
                                      baselines::BaselineKind kind,
                                      double budget_bytes) {
  StrategyPoint best;
  for (const auto& s :
       baselines::baseline_schedules(scheduler.problem(), kind)) {
    auto eval = scheduler.evaluate_schedule(s.solution, budget_bytes);
    if (!eval.feasible) continue;
    if (!best.feasible || eval.cost < best.cost) {
      best.feasible = true;
      best.cost = eval.cost;
      best.overhead = eval.overhead;
      best.peak_memory = eval.peak_memory;
      best.label = s.label;
    }
  }
  return best;
}

StrategyPoint ilp_at_budget(const Scheduler& scheduler, double budget_bytes,
                            double time_limit_sec) {
  IlpSolveOptions opts;
  opts.time_limit_sec = time_limit_sec;
  auto res = scheduler.solve_optimal_ilp(budget_bytes, opts);
  StrategyPoint p;
  if (res.feasible) {
    p.feasible = true;
    p.cost = res.cost;
    p.overhead = res.overhead;
    p.peak_memory = res.peak_memory;
    p.label = milp::to_string(res.milp_status);
  }
  return p;
}

StrategyPoint rounding_at_budget(const Scheduler& scheduler,
                                 double budget_bytes,
                                 const ApproxOptions& options) {
  auto res = scheduler.solve_lp_rounding(budget_bytes, options);
  StrategyPoint p;
  if (res.feasible) {
    p.feasible = true;
    p.cost = res.cost;
    p.overhead = res.overhead;
    p.peak_memory = res.peak_memory;
  }
  return p;
}

std::string overhead_cell(const StrategyPoint& p) {
  if (!p.feasible) return "   --  ";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%6.3fx", p.overhead);
  return buf;
}

std::optional<double> geomean_ratio(const std::vector<StrategyPoint>& strat,
                                    const std::vector<StrategyPoint>& ilp) {
  double log_sum = 0.0;
  int count = 0;
  for (size_t i = 0; i < strat.size() && i < ilp.size(); ++i) {
    if (!strat[i].feasible || !ilp[i].feasible) continue;
    log_sum += std::log(strat[i].cost / ilp[i].cost);
    ++count;
  }
  if (count == 0) return std::nullopt;
  return std::exp(log_sum / count);
}

std::vector<double> budget_grid(const Scheduler& scheduler, int points) {
  auto all = scheduler.evaluate_schedule(
      baselines::checkpoint_all_schedule(scheduler.problem()), 0.0);
  const double hi = all.peak_memory;
  // Interpolate between the structural working-set floor and the
  // checkpoint-all peak: this is the band where the memory/compute
  // trade-off actually lives (crucial for models whose parameters dominate
  // the budget -- a fraction-of-peak grid would be mostly infeasible).
  const double floor = scheduler.problem().memory_floor();
  const double lo = floor + 0.05 * (hi - floor);
  std::vector<double> grid;
  for (int i = 0; i < points; ++i) {
    const double frac = static_cast<double>(i) / (points - 1);
    grid.push_back(lo + frac * (hi - lo));
  }
  return grid;
}

void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace checkmate::bench
