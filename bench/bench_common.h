// Shared harness for the paper-reproduction benchmarks: strategy
// evaluation over budget sweeps and table printing.
//
// Benchmark scale: benchmarks accept a CHECKMATE_BENCH_SCALE environment
// variable ("small" | "paper"). The default "small" runs every experiment
// at reduced batch/resolution so the whole suite finishes in minutes on a
// laptop while preserving every qualitative comparison; "paper" uses the
// publication batch sizes and resolutions (expect long MILP solves).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "checkmate.h"

namespace checkmate::bench {

struct BenchScale {
  bool paper_scale = false;
  double ilp_time_limit_sec = 60.0;
  // Divisors applied to batch and resolution in small mode.
  int64_t batch(int64_t paper_batch) const;
  int64_t resolution(int64_t paper_res) const;
};

BenchScale get_scale();

// A rematerialization strategy's best result at a given budget.
struct StrategyPoint {
  bool feasible = false;
  double cost = 0.0;
  double overhead = 0.0;
  double peak_memory = 0.0;
  std::string label;  // winning knob setting, if any
};

// Evaluates the best (lowest-cost) feasible schedule of `kind` at `budget`.
StrategyPoint best_baseline_at_budget(const Scheduler& scheduler,
                                      baselines::BaselineKind kind,
                                      double budget_bytes);

// Evaluates the Checkmate ILP at `budget`.
StrategyPoint ilp_at_budget(const Scheduler& scheduler, double budget_bytes,
                            double time_limit_sec);

// Evaluates two-phase LP rounding at `budget`.
StrategyPoint rounding_at_budget(const Scheduler& scheduler,
                                 double budget_bytes,
                                 const ApproxOptions& options = {});

// Formats "1.23x" / "inf" for overhead cells.
std::string overhead_cell(const StrategyPoint& p);

// Geometric-mean ratio of strategy cost to ILP cost across budgets where
// both are feasible (Table 2 aggregation). Returns nullopt if no budget is
// commonly feasible.
std::optional<double> geomean_ratio(const std::vector<StrategyPoint>& strat,
                                    const std::vector<StrategyPoint>& ilp);

// Standard budget grid between the feasibility floor and checkpoint-all.
std::vector<double> budget_grid(const Scheduler& scheduler, int points);

void print_rule(int width = 78);

}  // namespace checkmate::bench
