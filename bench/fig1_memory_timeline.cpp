// Figure 1: memory-over-time profile for a 32-layer network, comparing the
// retain-all-activations policy against a Checkmate rematerialization
// schedule. The paper's instance needs 30 GB retaining everything and saves
// 21 GB by rematerializing; we reproduce the shape (triangle ramp vs.
// sawtooth plateau) and report the savings.
#include <cstdio>

#include "bench_common.h"

using namespace checkmate;

int main() {
  const auto scale = bench::get_scale();
  const int64_t batch = scale.batch(64);
  auto train = model::make_training_graph(
      model::zoo::linear_net(32, batch, 64, scale.resolution(224)));
  auto problem =
      RematProblem::from_dnn(train, model::CostMetric::kProfiledTimeUs);
  Scheduler scheduler(problem);

  auto all = scheduler.evaluate_schedule(
      baselines::checkpoint_all_schedule(problem), 0.0);
  const double budget = 0.35 * all.peak_memory;
  IlpSolveOptions opts;
  opts.time_limit_sec = scale.ilp_time_limit_sec;
  auto remat = scheduler.solve_optimal_ilp(budget, opts);

  std::printf("Figure 1: memory timeline, 32-layer linear network (batch "
              "%lld)\n",
              static_cast<long long>(batch));
  bench::print_rule();
  std::printf("retain-all peak:      %8.2f GB  cost %.2f ms\n",
              all.peak_memory / 1e9, all.cost / 1e3);
  if (!remat.feasible) {
    std::printf("rematerialization infeasible at %.2f GB: %s\n",
                budget / 1e9, remat.message.c_str());
    return 1;
  }
  std::printf("rematerialized peak:  %8.2f GB  cost %.2f ms (%.2fx)\n",
              remat.peak_memory / 1e9, remat.cost / 1e3, remat.overhead);
  std::printf("memory saved:         %8.2f GB (%.0f%%)\n",
              (all.peak_memory - remat.peak_memory) / 1e9,
              100.0 * (1.0 - remat.peak_memory / all.peak_memory));

  // Per-stage memory series (the plotted curves): max live memory within
  // each stage.
  auto stage_series = [](const SimulationResult& sim, int stages) {
    std::vector<double> peak(stages, 0.0);
    for (size_t i = 0; i < sim.memory_trace.size(); ++i) {
      int st = sim.stage_trace[i];
      if (st >= 0 && st < stages)
        peak[st] = std::max(peak[st], sim.memory_trace[i]);
    }
    return peak;
  };
  const int n = problem.size();
  auto series_all = stage_series(all.sim, n);
  auto series_remat = stage_series(remat.sim, n);

  std::printf("\n%-6s %14s %16s\n", "stage", "retain-all(GB)",
              "rematerialize(GB)");
  for (int t = 0; t < n; t += 2)
    std::printf("%-6d %14.2f %16.2f\n", t, series_all[t] / 1e9,
                series_remat[t] / 1e9);

  // ASCII sparkline of both curves.
  auto sparkline = [&](const std::vector<double>& s) {
    std::string out;
    double hi = 0.0;
    for (double v : series_all) hi = std::max(hi, v);
    const char* glyphs = " .:-=+*#%@";
    for (double v : s)
      out += glyphs[std::min<int>(9, static_cast<int>(10.0 * v / hi))];
    return out;
  };
  std::printf("\nretain-all    |%s|\n", sparkline(series_all).c_str());
  std::printf("rematerialize |%s|\n", sparkline(series_remat).c_str());
  return 0;
}
