// Figure 3: memory consumed by features vs. parameters (and gradients /
// workspace) for ten popular architectures, against the memory limit of
// the GPU each was trained on.
#include <cstdio>

#include "bench_common.h"

using namespace checkmate;

int main() {
  auto stats = model::figure3_model_stats();
  std::printf("Figure 3: training memory breakdown (GB)\n");
  bench::print_rule(96);
  std::printf("%-16s %5s %6s %9s %8s %8s %10s %7s %10s\n", "model", "year",
              "batch", "features", "params", "grads", "workspace", "total",
              "gpu-limit");
  bench::print_rule(96);
  int features_dominate = 0;
  int over_half_limit = 0;
  for (const auto& s : stats) {
    std::printf("%-16s %5d %6lld %9.2f %8.2f %8.2f %10.2f %7.2f %10.2f\n",
                s.name.c_str(), s.year, static_cast<long long>(s.batch),
                s.features_bytes / 1e9, s.param_bytes / 1e9,
                s.param_grad_bytes / 1e9, s.workspace_bytes / 1e9,
                s.total_bytes() / 1e9, s.gpu_limit_bytes / 1e9);
    if (s.features_bytes > s.param_bytes) ++features_dominate;
    if (s.total_bytes() > s.gpu_limit_bytes / 2) ++over_half_limit;
  }
  bench::print_rule(96);
  std::printf(
      "features dominate parameters for %d/%zu models; %d/%zu train at\n"
      ">50%% of their GPU's memory limit (the 'memory wall').\n",
      features_dominate, stats.size(), over_half_limit, stats.size());
  return 0;
}
