// Figure 5: computational overhead versus memory budget for VGG16 (batch
// 256), MobileNet (batch 512), and U-Net (batch 32, 416x608), comparing
// Checkmate's ILP against Chen sqrt(n), Chen greedy, Griewank & Walther,
// and the AP/linearized generalizations. Overhead is relative to the
// no-recomputation ideal under the profile-based cost model.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.h"

using namespace checkmate;
using baselines::BaselineKind;

namespace {

struct ModelCase {
  const char* title;
  std::function<model::DnnGraph()> build;
  std::vector<BaselineKind> strategies;
};

void run_case(const ModelCase& mc, const bench::BenchScale& scale) {
  auto problem = RematProblem::from_dnn(model::make_training_graph(mc.build()),
                                        model::CostMetric::kProfiledTimeUs);
  Scheduler scheduler(problem);
  auto budgets = bench::budget_grid(scheduler, 6);

  std::printf("\n%s  (n=%d nodes)\n", mc.title, problem.size());
  bench::print_rule(96);
  std::printf("%-12s", "budget(GB)");
  for (auto kind : mc.strategies)
    std::printf(" %16s", baselines::to_string(kind));
  std::printf(" %16s\n", "checkmate_ilp");
  bench::print_rule(96);

  for (double budget : budgets) {
    std::printf("%-12.2f", budget / 1e9);
    for (auto kind : mc.strategies) {
      auto pt = bench::best_baseline_at_budget(scheduler, kind, budget);
      std::printf(" %16s", bench::overhead_cell(pt).c_str());
    }
    auto ilp =
        bench::ilp_at_budget(scheduler, budget, scale.ilp_time_limit_sec);
    std::printf(" %16s\n", bench::overhead_cell(ilp).c_str());
  }
}

}  // namespace

int main() {
  const auto scale = bench::get_scale();
  std::printf("Figure 5: overhead vs. memory budget (cost model: synthetic "
              "V100 profile)\n");
  std::printf("scale: %s\n", scale.paper_scale ? "paper" : "small");

  const std::vector<BaselineKind> linear_strategies = {
      BaselineKind::kCheckpointAll, BaselineKind::kChenSqrtN,
      BaselineKind::kChenGreedy, BaselineKind::kGriewankLogN};
  const std::vector<BaselineKind> general_strategies = {
      BaselineKind::kCheckpointAll, BaselineKind::kApSqrtN,
      BaselineKind::kLinearizedSqrtN, BaselineKind::kLinearizedGreedy};

  ModelCase cases[] = {
      {"VGG16 (batch 256, 224x224)",
       [&] {
         return model::zoo::vgg16(scale.batch(256), scale.resolution(224));
       },
       linear_strategies},
      {"MobileNet (batch 512, 224x224)",
       [&] {
         return model::zoo::mobilenet_v1(scale.batch(512),
                                         scale.resolution(224));
       },
       linear_strategies},
      {"U-Net (batch 32, 416x608)",
       [&] {
         return model::zoo::unet(scale.batch(32),
                                 scale.resolution(416),
                                 scale.resolution(608));
       },
       general_strategies},
  };
  for (const auto& mc : cases) run_case(mc, scale);

  std::printf(
      "\nTakeaway (paper): Checkmate is feasible at lower budgets than every\n"
      "baseline and has the lowest overhead wherever baselines are feasible\n"
      "(>1.2x faster than the best baseline on U-Net at the V100 budget).\n");
  return 0;
}
