// Figure 6: maximum batch size trainable on a single 16 GB GPU with at most
// one extra forward pass of recomputation, for U-Net, FCN8, SegNet, VGG19,
// ResNet50 and MobileNet, under four strategies: checkpoint-all, AP sqrt(n),
// linearized greedy, and the Checkmate ILP. Costs are measured in FLOPs,
// exactly as in the paper.
#include <cstdio>
#include <functional>

#include "bench_common.h"

using namespace checkmate;
using baselines::BaselineKind;

namespace {

FeasibilityProbe baseline_probe(BaselineKind kind, double budget,
                                double cost_cap_factor_fwd = 2.0) {
  return [kind, budget, cost_cap_factor_fwd](const RematProblem& p) {
    const double cap =
        cost_cap_factor_fwd * p.forward_cost() + p.backward_cost();
    for (const auto& s : baselines::baseline_schedules(p, kind)) {
      if (!s.solution.check_feasible(p).empty()) continue;
      if (peak_memory_usage(p, s.solution) > budget) continue;
      if (s.solution.compute_cost(p) > cap + 1e-6) continue;
      return true;
    }
    return false;
  };
}

}  // namespace

int main() {
  const auto scale = bench::get_scale();
  // Scaled-down budget in small mode: models shrink by the batch/resolution
  // divisors, so shrink the device proportionally to keep the comparison
  // meaningful. Parameter-heavy models (FCN8's 7x7x512x4096 fc6) carry
  // their constant overhead regardless of batch, so the small-mode device
  // still must host it: floor the budget at 1.5x the batch-1 footprint.
  const double base_budget = scale.paper_scale ? 16e9 : 1e9;

  struct Case {
    const char* name;
    std::function<RematProblem(int64_t)> factory;
  };
  const int64_t seg_h = scale.resolution(416), seg_w = scale.resolution(608);
  const int64_t cls_r = scale.resolution(224);
  Case cases[] = {
      {"U-Net",
       [&](int64_t b) {
         return RematProblem::from_dnn(
             model::make_training_graph(model::zoo::unet(b, seg_h, seg_w)),
             model::CostMetric::kFlops);
       }},
      {"FCN8",
       [&](int64_t b) {
         return RematProblem::from_dnn(
             model::make_training_graph(model::zoo::fcn8(b, seg_h, seg_w)),
             model::CostMetric::kFlops);
       }},
      {"SegNet",
       [&](int64_t b) {
         return RematProblem::from_dnn(
             model::make_training_graph(model::zoo::segnet(b, seg_h, seg_w)),
             model::CostMetric::kFlops);
       }},
      {"VGG19",
       [&](int64_t b) {
         return RematProblem::from_dnn(
             model::make_training_graph(model::zoo::vgg19(b, cls_r)),
             model::CostMetric::kFlops);
       }},
      {"ResNet50",
       [&](int64_t b) {
         return RematProblem::from_dnn(
             model::make_training_graph(model::zoo::resnet(
                 b, cls_r, scale.paper_scale
                               ? std::array<int, 4>{3, 4, 6, 3}
                               : std::array<int, 4>{2, 2, 2, 2})),
             model::CostMetric::kFlops);
       }},
      {"MobileNet",
       [&](int64_t b) {
         return RematProblem::from_dnn(
             model::make_training_graph(model::zoo::mobilenet_v1(b, cls_r)),
             model::CostMetric::kFlops);
       }},
  };

  std::printf("Figure 6: max batch size, cost cap = one extra forward "
              "pass\n");
  std::printf("scale: %s\n\n", scale.paper_scale ? "paper" : "small");
  std::printf("%-10s %10s %14s %10s %12s %10s %14s\n", "model", "budget(GB)",
              "checkpoint_all", "ap_sqrt_n", "lin_greedy", "checkmate",
              "vs_ckpt_all");
  bench::print_rule(88);

  for (const auto& c : cases) {
    const double budget =
        std::max(base_budget, 1.5 * c.factory(1).memory_floor());
    MaxBatchOptions opts;
    opts.budget_bytes = budget;
    opts.max_batch = 1 << 14;
    auto base =
        max_batch_size(c.factory,
                       baseline_probe(BaselineKind::kCheckpointAll, budget),
                       opts);
    auto ap = max_batch_size(
        c.factory, baseline_probe(BaselineKind::kApSqrtN, budget), opts);
    auto lin = max_batch_size(
        c.factory, baseline_probe(BaselineKind::kLinearizedGreedy, budget),
        opts);
    auto ours = max_batch_size(
        c.factory, make_ilp_probe(budget, scale.ilp_time_limit_sec), opts);
    std::printf("%-10s %10.2f %14lld %10lld %12lld %10lld %13.2fx\n", c.name,
                budget / 1e9, static_cast<long long>(base.max_batch),
                static_cast<long long>(ap.max_batch),
                static_cast<long long>(lin.max_batch),
                static_cast<long long>(ours.max_batch),
                base.max_batch > 0
                    ? static_cast<double>(ours.max_batch) / base.max_batch
                    : 0.0);
  }
  std::printf(
      "\nTakeaway (paper): Checkmate enables up to 5.1x larger batches than\n"
      "checkpoint-all (MobileNet) and up to 1.73x over the best heuristic\n"
      "(U-Net).\n");
  return 0;
}
