// Figure 7: R-matrix schedule visualizations for VGG19 under three
// strategies -- TensorFlow 2.0 (checkpoint-all), Chen et al. sqrt(n), and
// Checkmate -- plus the max batch size each strategy sustains on a fixed
// budget (the paper reports 167 / 197 / 289 on a 16 GB V100).
#include <cstdio>

#include "bench_common.h"

using namespace checkmate;
using baselines::BaselineKind;

namespace {

RematProblem vgg19_problem(int64_t batch, int64_t res) {
  return RematProblem::from_dnn(
      model::make_training_graph(model::zoo::vgg19(batch, res)),
      model::CostMetric::kFlops);
}

void print_matrix(const char* title, const RematSolution& sol) {
  std::printf("\n%s\n", title);
  std::printf("(rows: stages; cols: ops; '#' computed, 'o' retained)\n%s",
              render_schedule(sol).c_str());
}

}  // namespace

int main() {
  const auto scale = bench::get_scale();
  const int64_t res = scale.resolution(224);
  const double budget = scale.paper_scale ? 16e9 : 1e9;

  // ---- Schedule visualizations at a fixed batch.
  const int64_t vis_batch = scale.batch(160);
  auto p = vgg19_problem(vis_batch, res);
  Scheduler sched(p);

  auto all = baselines::checkpoint_all_schedule(p);
  print_matrix("TensorFlow 2.0 (checkpoint all):", all);

  auto chen = baselines::baseline_schedules(p, BaselineKind::kChenSqrtN);
  if (!chen.empty())
    print_matrix("Chen et al. sqrt(n):", chen[0].solution);

  auto budget_for_vis = 0.5 * peak_memory_usage(p, all);
  IlpSolveOptions opts;
  opts.time_limit_sec = scale.ilp_time_limit_sec;
  auto ours = sched.solve_optimal_ilp(budget_for_vis, opts);
  if (ours.feasible) {
    char title[96];
    std::snprintf(title, sizeof title,
                  "Checkmate (budget %.2f GB, solve %.1fs):",
                  budget_for_vis / 1e9, ours.seconds);
    print_matrix(title, ours.solution);
  }

  // ---- Max batch comparison on the fixed budget.
  ProblemFactory factory = [&](int64_t b) { return vgg19_problem(b, res); };
  MaxBatchOptions mopts;
  mopts.budget_bytes = budget;
  mopts.max_batch = 4096;

  FeasibilityProbe all_probe = [&](const RematProblem& prob) {
    auto sol = baselines::checkpoint_all_schedule(prob);
    return peak_memory_usage(prob, sol) <= budget;
  };
  FeasibilityProbe chen_probe = [&](const RematProblem& prob) {
    const double cap = 2.0 * prob.forward_cost() + prob.backward_cost();
    for (const auto& s :
         baselines::baseline_schedules(prob, BaselineKind::kChenGreedy)) {
      if (peak_memory_usage(prob, s.solution) <= budget &&
          s.solution.compute_cost(prob) <= cap)
        return true;
    }
    return false;
  };

  auto b_all = max_batch_size(factory, all_probe, mopts);
  auto b_chen = max_batch_size(factory, chen_probe, mopts);
  auto b_ours =
      max_batch_size(factory, make_ilp_probe(budget, scale.ilp_time_limit_sec),
                     mopts);

  std::printf("\nVGG19 max batch at %.0f GB (paper: 167 / 197 / 289):\n",
              budget / 1e9);
  std::printf("  TensorFlow 2.0 (checkpoint all): %lld\n",
              static_cast<long long>(b_all.max_batch));
  std::printf("  Chen et al.:                     %lld\n",
              static_cast<long long>(b_chen.max_batch));
  std::printf("  Checkmate:                       %lld (%.0f%% over TF2.0)\n",
              static_cast<long long>(b_ours.max_batch),
              b_all.max_batch > 0
                  ? 100.0 * (static_cast<double>(b_ours.max_batch) /
                                 b_all.max_batch -
                             1.0)
                  : 0.0);
  return 0;
}
