// Figure 8: two-phase LP rounding with deterministic vs. randomized
// rounding of S*, on VGG16 and MobileNet. Prints (activation memory, cost)
// points for: the ILP optimum, deterministic rounding, a cloud of
// randomized-rounding draws, and checkpoint-all.
#include <cstdio>

#include "bench_common.h"

using namespace checkmate;

namespace {

void run_model(const char* name, RematProblem problem,
               const bench::BenchScale& scale) {
  Scheduler sched(problem);
  auto all = sched.evaluate_schedule(
      baselines::checkpoint_all_schedule(problem), 0.0);
  const double floor = problem.memory_floor();
  const double budget = floor + 0.55 * (all.peak_memory - floor);

  std::printf("\n%s, budget %.2f GB (eps = 0.1)\n", name, budget / 1e9);
  bench::print_rule(64);
  std::printf("%-28s %12s %12s\n", "strategy", "memory(GB)", "cost(ms)");

  IlpSolveOptions iopts;
  iopts.time_limit_sec = scale.ilp_time_limit_sec;
  auto ilp = sched.solve_optimal_ilp(budget, iopts);
  if (ilp.feasible)
    std::printf("%-28s %12.3f %12.3f\n", "ILP (optimal)",
                ilp.peak_memory / 1e9, ilp.cost / 1e3);

  auto det = sched.solve_lp_rounding(budget);
  if (det.feasible)
    std::printf("%-28s %12.3f %12.3f\n", "deterministic rounding",
                det.peak_memory / 1e9, det.cost / 1e3);
  else
    std::printf("%-28s %12s %12s\n", "deterministic rounding", "--", "--");

  double cost_sum = 0.0;
  int feasible_draws = 0;
  for (int draw = 0; draw < 12; ++draw) {
    ApproxOptions opts;
    opts.randomized = true;
    opts.samples = 1;
    opts.seed = 1000 + draw;
    auto rnd = sched.solve_lp_rounding(budget, opts);
    if (!rnd.feasible) continue;
    ++feasible_draws;
    cost_sum += rnd.cost;
    std::printf("%-28s %12.3f %12.3f\n",
                ("randomized draw " + std::to_string(draw)).c_str(),
                rnd.peak_memory / 1e9, rnd.cost / 1e3);
  }
  if (feasible_draws > 0)
    std::printf("%-28s %12s %12.3f\n", "randomized (mean of feasible)", "",
                cost_sum / feasible_draws / 1e3);
  std::printf("%-28s %12.3f %12.3f\n", "checkpoint all",
              all.peak_memory / 1e9, all.cost / 1e3);

  if (det.feasible && ilp.feasible)
    std::printf("deterministic/ILP cost ratio: %.3fx\n", det.cost / ilp.cost);
}

}  // namespace

int main() {
  const auto scale = bench::get_scale();
  std::printf("Figure 8: deterministic vs randomized two-phase rounding\n");
  run_model("VGG16",
            RematProblem::from_dnn(
                model::make_training_graph(model::zoo::vgg16(
                    scale.batch(256), scale.resolution(224))),
                model::CostMetric::kProfiledTimeUs),
            scale);
  run_model("MobileNet",
            RematProblem::from_dnn(
                model::make_training_graph(model::zoo::mobilenet_v1(
                    scale.batch(512), scale.resolution(224))),
                model::CostMetric::kProfiledTimeUs),
            scale);
  std::printf(
      "\nTakeaway (paper): deterministic rounding consistently produces\n"
      "lower-cost schedules than randomized rounding draws.\n");
  return 0;
}
