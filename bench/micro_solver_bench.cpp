// Microbenchmarks (google-benchmark) for the solver substrate: sparse LU
// round trips, dual simplex solves, MILP branch & bound, ILP construction,
// schedule generation and simulation throughput.
#include <benchmark/benchmark.h>

#include <random>

#include "checkmate.h"

namespace {

using namespace checkmate;

void BM_GraphTopoSort(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = make_path_graph(n);
  for (int i = 0; i + 8 < n; i += 4) g.add_edge(i, i + 8);
  for (auto _ : state) benchmark::DoNotOptimize(g.topological_order());
}
BENCHMARK(BM_GraphTopoSort)->Arg(128)->Arg(1024)->Arg(8192);

void BM_ArticulationPoints(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = make_path_graph(n);
  for (int i = 0; i + 6 < n; i += 3) g.add_edge(i, i + 6);
  for (auto _ : state) benchmark::DoNotOptimize(g.articulation_points());
}
BENCHMARK(BM_ArticulationPoints)->Arg(128)->Arg(1024)->Arg(8192);

void BM_SparseLuFactorizeSolve(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  std::vector<std::vector<int>> rows(m);
  std::vector<std::vector<double>> vals(m);
  std::mt19937 rng(1);
  for (int j = 0; j < m; ++j) {
    rows[j] = {j};
    vals[j] = {4.0};
    if (j > 0) {
      rows[j].push_back(j - 1);
      vals[j].push_back(-1.0);
    }
    if (static_cast<int>(rng() % 4) == 0 && j + 7 < m) {
      rows[j].push_back(j + 7);
      vals[j].push_back(0.5);
    }
  }
  std::vector<lp::BasisColumn> cols(m);
  for (int j = 0; j < m; ++j) cols[j] = {rows[j], vals[j]};
  std::vector<double> rhs(m, 1.0);
  for (auto _ : state) {
    lp::LuFactorization lu;
    bool ok = lu.factorize(m, cols);
    benchmark::DoNotOptimize(ok);
    std::vector<double> x = rhs;
    lu.ftran(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SparseLuFactorizeSolve)->Arg(256)->Arg(1024)->Arg(4096);

lp::LinearProgram staircase_lp(int n) {
  lp::LinearProgram prog;
  for (int j = 0; j < n; ++j) prog.add_var(0.0, 10.0, 1.0 + (j % 5));
  for (int r = 0; r < n; ++r) {
    std::vector<std::pair<int, double>> t{{r, 1.0}};
    if (r + 1 < n) t.emplace_back(r + 1, 0.5);
    if (r + 13 < n) t.emplace_back(r + 13, 0.25);
    prog.add_ge(t, 2.0);
  }
  return prog;
}

void BM_DualSimplexSolve(benchmark::State& state) {
  auto prog = staircase_lp(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto res = lp::solve_lp(prog);
    benchmark::DoNotOptimize(res.objective);
  }
}
BENCHMARK(BM_DualSimplexSolve)->Arg(64)->Arg(256)->Arg(1024);

void BM_MilpKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  lp::LinearProgram prog;
  std::mt19937 rng(7);
  std::vector<std::pair<int, double>> row;
  for (int j = 0; j < n; ++j) {
    prog.add_binary(-1.0 - static_cast<double>(rng() % 100) / 100.0);
    row.emplace_back(j, 1.0 + static_cast<double>(rng() % 3));
  }
  prog.add_le(row, n * 0.8);
  for (auto _ : state) {
    auto res = milp::solve_milp(prog);
    benchmark::DoNotOptimize(res.objective);
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(12)->Arg(20);

void BM_IlpConstructionVgg16(benchmark::State& state) {
  auto problem = RematProblem::from_dnn(
      model::make_training_graph(model::zoo::vgg16(4)),
      model::CostMetric::kProfiledTimeUs);
  IlpBuildOptions opts;
  opts.budget_bytes = 0.6 * problem.total_memory();
  for (auto _ : state) {
    IlpFormulation f(problem, opts);
    benchmark::DoNotOptimize(f.lp().num_vars());
  }
}
BENCHMARK(BM_IlpConstructionVgg16);

void BM_CheckmateIlpSolveUnitChain(benchmark::State& state) {
  auto p = RematProblem::unit_training_chain(static_cast<int>(state.range(0)));
  Scheduler sched(p);
  const double budget = 6.0;
  IlpSolveOptions opts;
  opts.time_limit_sec = 2.0;  // bounded per iteration; tiny chains finish
  for (auto _ : state) {
    auto res = sched.solve_optimal_ilp(budget, opts);
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(BM_CheckmateIlpSolveUnitChain)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_TwoPhaseRounding(benchmark::State& state) {
  auto p = RematProblem::unit_training_chain(12);
  const int n = p.size();
  std::vector<std::vector<double>> s_star(n, std::vector<double>(n, 0.0));
  std::mt19937 rng(3);
  for (int t = 1; t < n; ++t)
    for (int i = 0; i < t; ++i)
      s_star[t][i] = static_cast<double>(rng() % 100) / 100.0;
  for (auto _ : state) {
    auto sol = two_phase_round(p.graph, s_star);
    benchmark::DoNotOptimize(sol.R.size());
  }
}
BENCHMARK(BM_TwoPhaseRounding);

void BM_PlanGenerationAndSimulation(benchmark::State& state) {
  auto p = RematProblem::from_dnn(
      model::make_training_graph(model::zoo::vgg16(4)),
      model::CostMetric::kProfiledTimeUs);
  auto sol = baselines::checkpoint_all_schedule(p);
  for (auto _ : state) {
    auto plan = generate_execution_plan(p, sol);
    auto sim = simulate_plan(p, plan);
    benchmark::DoNotOptimize(sim.peak_memory);
  }
}
BENCHMARK(BM_PlanGenerationAndSimulation);

void BM_PolicySimulationUnet(benchmark::State& state) {
  auto p = RematProblem::from_dnn(
      model::make_training_graph(model::zoo::unet(2, 96, 128)),
      model::CostMetric::kProfiledTimeUs);
  std::vector<uint8_t> keep(p.size(), 0);
  for (int v = 0; v < p.size(); v += 3)
    if (!p.is_backward[v]) keep[v] = 1;
  for (auto _ : state) {
    auto sol = baselines::simulate_checkpoint_policy(
        p, keep, baselines::EvictionMode::kChenStyle);
    benchmark::DoNotOptimize(sol.R.size());
  }
}
BENCHMARK(BM_PolicySimulationUnet);

}  // namespace
