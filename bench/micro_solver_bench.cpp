// Microbenchmarks (google-benchmark) for the solver substrate: sparse LU
// round trips, dual simplex solves, MILP branch & bound, ILP construction,
// schedule generation and simulation throughput.
//
// JSON mode: `micro_solver_bench --json[=PATH]` skips google-benchmark and
// instead runs the solver-overhaul instance/config matrix once, writing
// per-instance nodes, LP iterations and wall time to PATH (default
// BENCH_solver.json). This seeds the performance trajectory across PRs and
// documents the ablation (presolve off, branching rule, node selection).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>

#include "checkmate.h"

namespace {

using namespace checkmate;

void BM_GraphTopoSort(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = make_path_graph(n);
  for (int i = 0; i + 8 < n; i += 4) g.add_edge(i, i + 8);
  for (auto _ : state) benchmark::DoNotOptimize(g.topological_order());
}
BENCHMARK(BM_GraphTopoSort)->Arg(128)->Arg(1024)->Arg(8192);

void BM_ArticulationPoints(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = make_path_graph(n);
  for (int i = 0; i + 6 < n; i += 3) g.add_edge(i, i + 6);
  for (auto _ : state) benchmark::DoNotOptimize(g.articulation_points());
}
BENCHMARK(BM_ArticulationPoints)->Arg(128)->Arg(1024)->Arg(8192);

void BM_SparseLuFactorizeSolve(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  std::vector<std::vector<int>> rows(m);
  std::vector<std::vector<double>> vals(m);
  std::mt19937 rng(1);
  for (int j = 0; j < m; ++j) {
    rows[j] = {j};
    vals[j] = {4.0};
    if (j > 0) {
      rows[j].push_back(j - 1);
      vals[j].push_back(-1.0);
    }
    if (static_cast<int>(rng() % 4) == 0 && j + 7 < m) {
      rows[j].push_back(j + 7);
      vals[j].push_back(0.5);
    }
  }
  std::vector<lp::BasisColumn> cols(m);
  for (int j = 0; j < m; ++j) cols[j] = {rows[j], vals[j]};
  std::vector<double> rhs(m, 1.0);
  for (auto _ : state) {
    lp::LuFactorization lu;
    bool ok = lu.factorize(m, cols);
    benchmark::DoNotOptimize(ok);
    std::vector<double> x = rhs;
    lu.ftran(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SparseLuFactorizeSolve)->Arg(256)->Arg(1024)->Arg(4096);

lp::LinearProgram staircase_lp(int n) {
  lp::LinearProgram prog;
  for (int j = 0; j < n; ++j) prog.add_var(0.0, 10.0, 1.0 + (j % 5));
  for (int r = 0; r < n; ++r) {
    std::vector<std::pair<int, double>> t{{r, 1.0}};
    if (r + 1 < n) t.emplace_back(r + 1, 0.5);
    if (r + 13 < n) t.emplace_back(r + 13, 0.25);
    prog.add_ge(t, 2.0);
  }
  return prog;
}

void BM_DualSimplexSolve(benchmark::State& state) {
  auto prog = staircase_lp(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto res = lp::solve_lp(prog);
    benchmark::DoNotOptimize(res.objective);
  }
}
BENCHMARK(BM_DualSimplexSolve)->Arg(64)->Arg(256)->Arg(1024);

void BM_MilpKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  lp::LinearProgram prog;
  std::mt19937 rng(7);
  std::vector<std::pair<int, double>> row;
  for (int j = 0; j < n; ++j) {
    prog.add_binary(-1.0 - static_cast<double>(rng() % 100) / 100.0);
    row.emplace_back(j, 1.0 + static_cast<double>(rng() % 3));
  }
  prog.add_le(row, n * 0.8);
  for (auto _ : state) {
    auto res = milp::solve_milp(prog);
    benchmark::DoNotOptimize(res.objective);
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(12)->Arg(20);

void BM_IlpConstructionVgg16(benchmark::State& state) {
  auto problem = RematProblem::from_dnn(
      model::make_training_graph(model::zoo::vgg16(4)),
      model::CostMetric::kProfiledTimeUs);
  IlpBuildOptions opts;
  opts.budget_bytes = 0.6 * problem.total_memory();
  for (auto _ : state) {
    IlpFormulation f(problem, opts);
    benchmark::DoNotOptimize(f.lp().num_vars());
  }
}
BENCHMARK(BM_IlpConstructionVgg16);

void BM_CheckmateIlpSolveUnitChain(benchmark::State& state) {
  auto p = RematProblem::unit_training_chain(static_cast<int>(state.range(0)));
  Scheduler sched(p);
  const double budget = 6.0;
  IlpSolveOptions opts;
  opts.time_limit_sec = 2.0;  // bounded per iteration; tiny chains finish
  for (auto _ : state) {
    auto res = sched.solve_optimal_ilp(budget, opts);
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(BM_CheckmateIlpSolveUnitChain)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

// Ablation scenarios for the solver overhaul: arg encodes the knob flipped
// off relative to the shipped configuration on the tight-budget chain.
//   0: shipped (presolve + pseudocosts + hybrid)   1: presolve off
//   2: most-fractional branching                   3: depth-first selection
void BM_CheckmateIlpSolveAblation(benchmark::State& state) {
  auto p = RematProblem::unit_training_chain(6);
  Scheduler sched(p);
  IlpSolveOptions opts;
  opts.time_limit_sec = 30.0;
  switch (state.range(0)) {
    case 1: opts.presolve = false; break;
    case 2: opts.pseudocost_branching = false; break;
    case 3: opts.node_selection = milp::NodeSelection::kDepthFirst; break;
    default: break;
  }
  int64_t nodes = 0;
  for (auto _ : state) {
    auto res = sched.solve_optimal_ilp(5.0, opts);
    nodes = res.nodes;
    benchmark::DoNotOptimize(res.cost);
  }
  state.counters["bnb_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_CheckmateIlpSolveAblation)->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_TwoPhaseRounding(benchmark::State& state) {
  auto p = RematProblem::unit_training_chain(12);
  const int n = p.size();
  std::vector<std::vector<double>> s_star(n, std::vector<double>(n, 0.0));
  std::mt19937 rng(3);
  for (int t = 1; t < n; ++t)
    for (int i = 0; i < t; ++i)
      s_star[t][i] = static_cast<double>(rng() % 100) / 100.0;
  for (auto _ : state) {
    auto sol = two_phase_round(p.graph, s_star);
    benchmark::DoNotOptimize(sol.R.size());
  }
}
BENCHMARK(BM_TwoPhaseRounding);

void BM_PlanGenerationAndSimulation(benchmark::State& state) {
  auto p = RematProblem::from_dnn(
      model::make_training_graph(model::zoo::vgg16(4)),
      model::CostMetric::kProfiledTimeUs);
  auto sol = baselines::checkpoint_all_schedule(p);
  for (auto _ : state) {
    auto plan = generate_execution_plan(p, sol);
    auto sim = simulate_plan(p, plan);
    benchmark::DoNotOptimize(sim.peak_memory);
  }
}
BENCHMARK(BM_PlanGenerationAndSimulation);

void BM_PolicySimulationUnet(benchmark::State& state) {
  auto p = RematProblem::from_dnn(
      model::make_training_graph(model::zoo::unet(2, 96, 128)),
      model::CostMetric::kProfiledTimeUs);
  std::vector<uint8_t> keep(p.size(), 0);
  for (int v = 0; v < p.size(); v += 3)
    if (!p.is_backward[v]) keep[v] = 1;
  for (auto _ : state) {
    auto sol = baselines::simulate_checkpoint_policy(
        p, keep, baselines::EvictionMode::kChenStyle);
    benchmark::DoNotOptimize(sol.R.size());
  }
}
BENCHMARK(BM_PolicySimulationUnet);

// ------------------------------------------------------------------ JSON

struct SolverConfig {
  const char* name;
  bool presolve;
  bool pseudocost;
  milp::NodeSelection node_selection;
  int num_threads;
  // LP hot-path knobs (PR 4): dual steepest-edge pricing + long-step
  // bound-flip ratio test, and root reduced-cost fixing.
  bool lp_hotpath = true;
  bool rcfix = true;
  // Branch & cut knobs (PR 5): cover/clique cut separation on the memory
  // rows and reliability branching.
  bool cuts = true;
  bool reliability = true;
  // ILP backend (PR 6): dense Problem 9 vs the sparse retention-interval
  // formulation, and whether the config runs on the deep-instance set.
  IlpFormulationKind formulation = IlpFormulationKind::kDense;
  bool big = false;
  // LP-engine knobs (PR 10): Forrest-Tomlin basis updates, Curtis-Reid
  // scaling, Gomory mixed-integer root cuts. Trailing so the positional
  // rows above stay valid; the PR-10 ablation rows spell out every field.
  bool ft_update = true;
  bool scaling = true;
  bool gomory = true;
};

// "seed" is the pre-overhaul configuration (most-fractional depth-first
// search on the raw formulation, classic Dantzig pricing); the others each
// flip one knob off the shipped configuration. threads2/threads4 are the
// shipped configuration with more tree-search workers: the epoch-lockstep
// determinism guarantee means their node counts MUST equal overhaul's
// exactly (the CI gate in scripts/compare_bench.py enforces it), only
// wall-clock may differ.
constexpr SolverConfig kConfigs[] = {
    {"overhaul", true, true, milp::NodeSelection::kHybrid, 1},
    {"threads2", true, true, milp::NodeSelection::kHybrid, 2},
    {"threads4", true, true, milp::NodeSelection::kHybrid, 4},
    {"no_presolve", false, true, milp::NodeSelection::kHybrid, 1},
    {"no_pseudocost", true, false, milp::NodeSelection::kHybrid, 1},
    {"depth_first", true, true, milp::NodeSelection::kDepthFirst, 1},
    {"no_lp_hotpath", true, true, milp::NodeSelection::kHybrid, 1, false,
     true},
    {"no_rcfix", true, true, milp::NodeSelection::kHybrid, 1, true, false},
    {"no_cuts", true, true, milp::NodeSelection::kHybrid, 1, true, true,
     false, true},
    {"no_reliability", true, true, milp::NodeSelection::kHybrid, 1, true,
     true, true, false},
    // LP-engine ablations (PR 10): each flips one engine feature off the
    // shipped configuration -- product-form eta accumulation instead of
    // Forrest-Tomlin updates, unscaled loads, no Gomory root cuts.
    {"no_ft_update", true, true, milp::NodeSelection::kHybrid, 1, true,
     true, true, true, IlpFormulationKind::kDense, false, false, true, true},
    {"no_scaling", true, true, milp::NodeSelection::kHybrid, 1, true, true,
     true, true, IlpFormulationKind::kDense, false, true, false, true},
    {"no_gomory", true, true, milp::NodeSelection::kHybrid, 1, true, true,
     true, true, IlpFormulationKind::kDense, false, true, true, false},
    {"seed", false, false, milp::NodeSelection::kDepthFirst, 1, false,
     false, false, false},
    // Retention-interval backend (PR 6). "interval" reruns the small
    // instances -- compare_bench.py asserts its proven costs equal
    // "overhaul"'s exactly (the dense-vs-interval cross-check). The *_big
    // rows run the deep instances the dense backend cannot solve within
    // the time limit; "dense_big" is kept to document that failure.
    {"interval", true, true, milp::NodeSelection::kHybrid, 1, true, true,
     true, true, IlpFormulationKind::kInterval},
    {"interval_big", true, true, milp::NodeSelection::kHybrid, 1, true,
     true, true, true, IlpFormulationKind::kInterval, true},
    {"dense_big", true, true, milp::NodeSelection::kHybrid, 1, true, true,
     true, true, IlpFormulationKind::kDense, true},
};

struct JsonInstance {
  std::string name;
  RematProblem problem;
  double budget;
};

std::vector<JsonInstance> json_instances() {
  std::vector<JsonInstance> out;
  auto mid_budget = [](const RematProblem& p) {
    Scheduler sched(p);
    auto all = sched.evaluate_schedule(baselines::checkpoint_all_schedule(p),
                                       0.0);
    const double floor = p.memory_floor();
    return floor + 0.5 * (all.peak_memory - floor);
  };
  {
    auto p = RematProblem::unit_training_chain(6);
    out.push_back({"unit_chain_6_tight", p, 5.0});
  }
  {
    auto p = RematProblem::unit_training_chain(8);
    out.push_back({"unit_chain_8_tight", p, 7.0});
  }
  {
    auto p = RematProblem::from_dnn(
        model::make_training_graph(model::zoo::mobilenet_v1(2, 64)),
        model::CostMetric::kProfiledTimeUs);
    const double b = mid_budget(p);
    out.push_back({"mobilenet_v1_mid_budget", std::move(p), b});
  }
  {
    auto p = RematProblem::from_dnn(
        model::make_training_graph(model::zoo::vgg16(2)),
        model::CostMetric::kProfiledTimeUs);
    const double b = mid_budget(p);
    out.push_back({"vgg16_mid_budget", std::move(p), b});
  }
  return out;
}

// Deep instances (>= 200 stages) for the retention-interval backend. The
// dense Problem 9 encoding carries >100k rows here and cannot finish even
// the root relaxation within the 60s limit; the interval encoding proves
// optimality. Only the *_big configs run these.
std::vector<JsonInstance> big_instances() {
  std::vector<JsonInstance> out;
  {
    auto p = RematProblem::unit_chain(480);
    out.push_back({"unit_chain_480_tight", std::move(p), 6.0});
  }
  {
    auto p = RematProblem::from_dnn(
        model::make_training_graph(model::zoo::transformer_stack(20)),
        model::CostMetric::kProfiledTimeUs);
    Scheduler sched(p);
    auto all = sched.evaluate_schedule(baselines::checkpoint_all_schedule(p),
                                       0.0);
    const double floor = p.memory_floor();
    const double b = floor + 0.8 * (all.peak_memory - floor);
    out.push_back({"transformer_20_gen_budget", std::move(p), b});
  }
  return out;
}

int run_json_suite(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"micro_solver_bench\",\n");
  std::fprintf(f, "  \"relative_gap\": 5e-4,\n  \"results\": [\n");
  bool first = true;
  auto run_set = [&](const std::vector<JsonInstance>& instances, bool big) {
    for (const JsonInstance& inst : instances) {
      Scheduler sched(inst.problem);
      for (const SolverConfig& cfg : kConfigs) {
        if (cfg.big != big) continue;
        IlpSolveOptions opts;
        opts.time_limit_sec = 60.0;
        // The dual plateau below the optimum makes 1e-4 unprovable in
        // minutes on the real models; 5e-4 separates the configurations.
        opts.relative_gap = 5e-4;
        opts.presolve = cfg.presolve;
        opts.pseudocost_branching = cfg.pseudocost;
        opts.node_selection = cfg.node_selection;
        opts.num_threads = cfg.num_threads;
        opts.steepest_edge_pricing = cfg.lp_hotpath;
        opts.bound_flip_ratio_test = cfg.lp_hotpath;
        opts.root_reduced_cost_fixing = cfg.rcfix;
        opts.cut_separation = cfg.cuts;
        opts.reliability_branching = cfg.reliability;
        opts.formulation = cfg.formulation;
        opts.lp_ft_update = cfg.ft_update;
        opts.lp_scaling = cfg.scaling;
        opts.gomory_cuts = cfg.gomory;
        auto res = sched.solve_optimal_ilp(inst.budget, opts);
        if (!first) std::fprintf(f, ",\n");
        first = false;
        // A truncated solve whose root LP never finished reports -inf as the
        // dual bound; printf would emit a bare `-inf`, which is not JSON.
        char bound_buf[32];
        if (std::isfinite(res.best_bound))
          std::snprintf(bound_buf, sizeof bound_buf, "%.6g", res.best_bound);
        else
          std::snprintf(bound_buf, sizeof bound_buf, "null");
        std::fprintf(f,
                     "    {\"instance\": \"%s\", \"config\": \"%s\", "
                     "\"threads\": %d, "
                     "\"status\": \"%s\", \"nodes\": %lld, "
                     "\"lp_iterations\": %lld, \"cuts\": %lld, "
                     "\"strong_branches\": %lld, "
                     "\"gomory_cuts\": %lld, \"cuts_removed\": %lld, "
                     "\"lp_refactorizations\": %lld, "
                     "\"lp_ft_updates\": %lld, "
                     "\"lp_ft_growth_refactors\": %lld, "
                     "\"lp_eta_pivots\": %lld, "
                     "\"lp_pricing_resets\": %lld, \"seconds\": %.3f, "
                     "\"cost\": %.6g, \"best_bound\": %s}",
                     inst.name.c_str(), cfg.name, cfg.num_threads,
                     milp::to_string(res.milp_status),
                     static_cast<long long>(res.nodes),
                     static_cast<long long>(res.lp_iterations),
                     static_cast<long long>(res.cuts_added),
                     static_cast<long long>(res.strong_branches),
                     static_cast<long long>(res.gomory_cuts),
                     static_cast<long long>(res.cuts_removed),
                     static_cast<long long>(res.lp_refactorizations),
                     static_cast<long long>(res.lp_ft_updates),
                     static_cast<long long>(res.lp_ft_growth_refactors),
                     static_cast<long long>(res.lp_eta_pivots),
                     static_cast<long long>(res.lp_pricing_resets),
                     res.seconds, res.cost, bound_buf);
        std::fflush(f);
        std::fprintf(stderr, "%-24s %-14s %-9s nodes=%-7lld %.2fs\n",
                     inst.name.c_str(), cfg.name,
                     milp::to_string(res.milp_status),
                     static_cast<long long>(res.nodes), res.seconds);
      }
    }
  };
  run_set(json_instances(), /*big=*/false);
  run_set(big_instances(), /*big=*/true);
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    // Exactly --json or --json=PATH; anything else (e.g. a typo like
    // --jsonx) falls through to google-benchmark's flag handling, which
    // rejects unrecognized arguments instead of silently running the
    // 60s-per-config matrix.
    if (std::strcmp(argv[i], "--json") == 0)
      return run_json_suite("BENCH_solver.json");
    if (std::strncmp(argv[i], "--json=", 7) == 0)
      return run_json_suite(argv[i] + 7);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
