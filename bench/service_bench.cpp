// Heavy-traffic benchmark for the plan service's admission layer: a
// synthetic query log (a handful of models x a budget grid, drawn with a
// seeded generator so the mix is reproducible) replayed through
// plan_robust, three ways:
//
//   cold     fresh service + empty store: every distinct (problem, budget)
//            pays its one solve, repeats ride the in-memory chain/store;
//   restart  fresh service on the store the cold phase populated: the
//            whole log must be served from disk -- proven optima, zero
//            solver work, disk-bound p50/p99;
//   herd     N threads fire the identical query at once: single-flight
//            must collapse the thundering herd onto exactly one solve.
//
// Per phase: p50/p99 query latency, total solver nodes, and the
// served-without-solve rate ((queries - solves) / queries -- the
// deterministic hit-rate metric: whether a non-solving query was served
// by the store or by coalescing is timing-dependent, their sum is not).
//
//   service_bench [--json[=PATH]] [--queries=N] [--gap=G]
//
// --json writes BENCH_service.json (committed as the regression baseline;
// scripts/check.sh replays the bench and gates p50/p99, node counts and
// the served rate via scripts/compare_bench.py).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "checkmate.h"
#include "store/plan_store.h"

namespace {

using namespace checkmate;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// splitmix64: the log must be identical run to run and machine to machine.
uint64_t mix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct Query {
  const RematProblem* problem;
  double budget;
};

struct Instance {
  std::string name;
  RematProblem problem;
};

std::vector<Instance> make_instances() {
  std::vector<Instance> out;
  out.push_back({"chain8", RematProblem::unit_training_chain(8)});
  out.push_back({"chain10", RematProblem::unit_training_chain(10)});
  out.push_back({"linear_net",
                 RematProblem::from_dnn(
                     model::make_training_graph(model::zoo::linear_net(6, 4, 8, 8)),
                     model::CostMetric::kProfiledTimeUs)});
  return out;
}

// The synthetic log: `count` queries over instances x a 6-point budget
// grid (all above the 0.42 span fraction where every point proves within
// the gap in milliseconds -- see sweep_bench). 18 distinct requests under
// heavy repetition: real serving traffic re-asks the same few plans.
std::vector<Query> make_log(const std::vector<Instance>& instances,
                            int count) {
  constexpr double kFracs[] = {0.45, 0.55, 0.65, 0.75, 0.85, 0.95};
  std::vector<Query> log;
  log.reserve(count);
  uint64_t rng = 0x0123456789abcdefULL;
  for (int i = 0; i < count; ++i) {
    const auto& inst = instances[mix64(rng) % instances.size()];
    const double floor = inst.problem.memory_floor();
    const double span = inst.problem.total_memory() - floor;
    const double frac = kFracs[mix64(rng) % (sizeof(kFracs) / sizeof(double))];
    log.push_back({&inst.problem, floor + frac * span});
  }
  return log;
}

struct PhaseResult {
  std::string phase;
  int queries = 0;
  int threads = 1;
  int64_t solves = 0;  // queries that reached the MILP (ServiceStats::queries)
  int64_t nodes = 0;   // total branch-and-bound nodes across the phase
  int64_t store_puts = 0;
  int64_t store_hits = 0;
  int64_t shared = 0;  // single-flight followers served a leader's outcome
  double wall_seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool all_served = true;  // every outcome a validated plan
  double served_without_solve_rate = 0.0;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(v.size() - 1,
                              static_cast<size_t>(p * (v.size() - 1) + 0.5));
  return v[idx];
}

void finalize(PhaseResult& r, std::vector<double>& latencies_ms,
              const service::ServiceStats& stats) {
  r.solves = stats.queries;
  r.store_puts = stats.store_puts;
  r.store_hits = stats.store_hits;
  r.shared = stats.single_flight_shared;
  r.p50_ms = percentile(latencies_ms, 0.50);
  r.p99_ms = percentile(latencies_ms, 0.99);
  r.served_without_solve_rate =
      r.queries == 0
          ? 0.0
          : static_cast<double>(r.queries - r.solves) / r.queries;
}

PhaseResult run_replay(const char* name, const std::vector<Query>& log,
                       const service::PlanServiceOptions& sopts,
                       const IlpSolveOptions& opts) {
  PhaseResult r;
  r.phase = name;
  r.queries = static_cast<int>(log.size());
  service::PlanService svc(sopts);
  std::vector<double> latencies;
  latencies.reserve(log.size());
  int64_t nodes = 0;
  const auto start = Clock::now();
  for (const Query& q : log) {
    const auto qs = Clock::now();
    const service::PlanOutcome out = svc.plan_robust(*q.problem, q.budget, opts);
    latencies.push_back(ms_since(qs));
    nodes += out.result.nodes;
    r.all_served = r.all_served && out.result.feasible;
  }
  r.wall_seconds = ms_since(start) / 1e3;
  r.nodes = nodes;
  finalize(r, latencies, svc.stats());
  return r;
}

PhaseResult run_herd(const std::vector<Instance>& instances, int threads,
                     const service::PlanServiceOptions& sopts,
                     const IlpSolveOptions& opts) {
  PhaseResult r;
  r.phase = "herd";
  r.queries = threads;
  r.threads = threads;
  const RematProblem& p = instances[0].problem;
  const double floor = p.memory_floor();
  const double budget = floor + 0.55 * (p.total_memory() - floor);

  service::PlanService svc(sopts);
  std::vector<double> latencies(threads, 0.0);
  std::vector<int64_t> nodes(threads, 0);
  std::atomic<int> ready{0};
  std::atomic<bool> ok{true};
  std::vector<std::thread> herd;
  herd.reserve(threads);
  const auto start = Clock::now();
  for (int t = 0; t < threads; ++t) {
    herd.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < threads) std::this_thread::yield();
      const auto qs = Clock::now();
      const service::PlanOutcome out = svc.plan_robust(p, budget, opts);
      latencies[t] = ms_since(qs);
      nodes[t] = out.result.nodes;
      if (!out.result.feasible ||
          out.provenance != service::PlanProvenance::kProvenOptimal)
        ok.store(false);
    });
  }
  for (auto& th : herd) th.join();
  r.wall_seconds = ms_since(start) / 1e3;
  for (int64_t n : nodes) r.nodes += n;
  r.all_served = ok.load();
  finalize(r, latencies, svc.stats());
  return r;
}

int run_suite(const std::string& json_path, int queries, double gap) {
  IlpSolveOptions opts;
  opts.time_limit_sec = 60.0;
  opts.relative_gap = gap;

  const auto instances = make_instances();
  const auto log = make_log(instances, queries);

  // Scratch store directory, removed on exit.
  std::string store_dir;
  {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "checkmate_service_bench.XXXXXX")
                           .string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      std::fprintf(stderr, "cannot create scratch store dir\n");
      return 1;
    }
    store_dir = buf.data();
  }

  service::PlanServiceOptions sopts;
  sopts.store_dir = store_dir;

  std::vector<PhaseResult> phases;
  phases.push_back(run_replay("cold", log, sopts, opts));
  phases.push_back(run_replay("restart", log, sopts, opts));
  // The herd must actually race for one solve, so it gets an empty store.
  service::PlanServiceOptions herd_opts = sopts;
  herd_opts.store_dir = store_dir + "/herd";
  phases.push_back(run_herd(instances, 8, herd_opts, opts));

  int exit_code = 0;
  for (const PhaseResult& r : phases) {
    if (!r.all_served) exit_code = 1;
    std::fprintf(stderr,
                 "%-8s queries %4d  solves %4lld  nodes %6lld  "
                 "served-no-solve %5.1f%%  p50 %7.2fms  p99 %7.2fms  "
                 "wall %6.2fs  %s\n",
                 r.phase.c_str(), r.queries, static_cast<long long>(r.solves),
                 static_cast<long long>(r.nodes),
                 100.0 * r.served_without_solve_rate, r.p50_ms, r.p99_ms,
                 r.wall_seconds, r.all_served ? "OK" : "UNSERVED QUERY");
  }
  // The restart phase is the store's reason to exist: it must not solve.
  if (phases[1].solves != 0) {
    std::fprintf(stderr,
                 "FAIL: restart phase re-solved %lld queries (store did not "
                 "serve)\n",
                 static_cast<long long>(phases[1].solves));
    exit_code = 1;
  }
  if (phases[2].solves != 1) {
    std::fprintf(stderr,
                 "FAIL: herd phase took %lld solves (single-flight broken)\n",
                 static_cast<long long>(phases[2].solves));
    exit_code = 1;
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      std::error_code ec;
      std::filesystem::remove_all(store_dir, ec);
      return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"service_bench\",\n");
    std::fprintf(f, "  \"relative_gap\": %g,\n  \"queries\": %d,\n", gap,
                 queries);
    std::fprintf(f, "  \"phases\": [\n");
    for (size_t i = 0; i < phases.size(); ++i) {
      const PhaseResult& r = phases[i];
      std::fprintf(
          f,
          "    {\"phase\": \"%s\", \"queries\": %d, \"threads\": %d, "
          "\"solves\": %lld, \"nodes\": %lld,\n"
          "     \"served_without_solve_rate\": %.4f, \"store_puts\": %lld, "
          "\"store_hits\": %lld, \"single_flight_shared\": %lld,\n"
          "     \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"wall_seconds\": %.3f, "
          "\"all_served\": %s}%s\n",
          r.phase.c_str(), r.queries, r.threads,
          static_cast<long long>(r.solves), static_cast<long long>(r.nodes),
          r.served_without_solve_rate, static_cast<long long>(r.store_puts),
          static_cast<long long>(r.store_hits),
          static_cast<long long>(r.shared), r.p50_ms, r.p99_ms,
          r.wall_seconds, r.all_served ? "true" : "false",
          i + 1 < phases.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }

  std::error_code ec;
  std::filesystem::remove_all(store_dir, ec);
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int queries = 120;
  double gap = 1e-3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_service.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      queries = std::atoi(argv[i] + 10);
      if (queries < 10) queries = 10;
    } else if (std::strncmp(argv[i], "--gap=", 6) == 0) {
      gap = std::atof(argv[i] + 6);
    } else {
      std::fprintf(stderr,
                   "usage: service_bench [--json[=PATH]] [--queries=N] "
                   "[--gap=G]\n");
      return 1;
    }
  }
  return run_suite(json_path, queries, gap);
}
