// Budget-sweep benchmark for the plan service: a 10-point overhead-vs-budget
// curve (the Figure 5 workload) solved cold -- ten independent
// Scheduler::solve_optimal_ilp calls -- versus through PlanService::sweep,
// which builds and presolves the formulation once, rebinds the budget in
// place per point and chains warm starts. Both paths must land identical
// proven-optimal objectives at every point; the service must be >= 3x
// faster wall-clock.
//
//   sweep_bench [--json[=PATH]] [--points=N] [--instance=SUBSTR] [--gap=G]
//
// --json writes BENCH_sweep.json (committed as the regression baseline;
// scripts/check.sh re-runs the bench and diffs node counts via
// scripts/compare_bench.py). Without --json the same table prints to
// stdout only.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "checkmate.h"

namespace {

using namespace checkmate;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Instance {
  std::string name;
  RematProblem problem;
};

std::vector<Instance> make_instances() {
  std::vector<Instance> out;
  out.push_back({"mobilenet_v1",
                 RematProblem::from_dnn(
                     model::make_training_graph(model::zoo::mobilenet_v1(2, 64)),
                     model::CostMetric::kProfiledTimeUs)});
  out.push_back({"vgg16", RematProblem::from_dnn(
                              model::make_training_graph(model::zoo::vgg16(2)),
                              model::CostMetric::kProfiledTimeUs)});
  return out;
}

struct PointResult {
  double budget = 0.0;
  ScheduleResult cold, cached;
};

int run_suite(const std::string& json_path, int points,
              const std::string& filter, double gap) {
  FILE* f = nullptr;
  if (!json_path.empty()) {
    f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"sweep_bench\",\n");
    std::fprintf(f, "  \"relative_gap\": %g,\n  \"points\": %d,\n", gap,
                 points);
    std::fprintf(f, "  \"instances\": [\n");
  }

  IlpSolveOptions opts;
  opts.time_limit_sec = 60.0;
  // 1e-3 proves at every grid point in seconds; tighter gaps run into the
  // dual plateau (ROADMAP: provable 5e-4 in seconds, stuck before 1e-4)
  // at some loose-budget points, which would leave unproven points in the
  // curve for both the cold and the cached path.
  opts.relative_gap = gap;

  int exit_code = 0;
  bool first_instance = true;
  for (Instance& inst : make_instances()) {
    if (!filter.empty() && inst.name.find(filter) == std::string::npos)
      continue;
    Scheduler sched(inst.problem);
    const auto all = sched.evaluate_schedule(
        baselines::checkpoint_all_schedule(inst.problem), 0.0);
    const double floor = inst.problem.memory_floor();
    const double span = all.peak_memory - floor;
    // Grid floor of 0.42: below that the dual plateau makes even a 1e-3
    // proof take minutes (cold and cached alike), which would swamp the
    // comparison with a point neither path can finish.
    std::vector<double> budgets;
    for (int i = 0; i < points; ++i) {
      const double frac =
          0.42 + (0.975 - 0.42) * (points > 1 ? double(i) / (points - 1) : 1.0);
      budgets.push_back(floor + frac * span);
    }

    std::vector<PointResult> pts(budgets.size());
    const auto cold_start = Clock::now();
    for (size_t i = 0; i < budgets.size(); ++i) {
      pts[i].budget = budgets[i];
      pts[i].cold = sched.solve_optimal_ilp(budgets[i], opts);
      std::fprintf(stderr, "%-14s cold   %5.2f GB %-9s cost=%-10.6g %6.2fs\n",
                   inst.name.c_str(), budgets[i] / 1e9,
                   milp::to_string(pts[i].cold.milp_status), pts[i].cold.cost,
                   pts[i].cold.seconds);
    }
    const double cold_wall = seconds_since(cold_start);

    service::PlanService svc;
    const auto cached_start = Clock::now();
    const auto cached = svc.sweep(inst.problem, budgets, opts);
    const double cached_wall = seconds_since(cached_start);
    for (size_t i = 0; i < budgets.size(); ++i) {
      pts[i].cached = cached[i];
      std::fprintf(stderr, "%-14s cached %5.2f GB %-9s cost=%-10.6g %6.2fs\n",
                   inst.name.c_str(), budgets[i] / 1e9,
                   milp::to_string(pts[i].cached.milp_status),
                   pts[i].cached.cost, pts[i].cached.seconds);
    }
    const auto stats = svc.stats();

    int64_t cold_nodes = 0, cached_nodes = 0;
    double max_rel_diff = 0.0;
    bool all_optimal = true;
    for (const PointResult& p : pts) {
      cold_nodes += p.cold.nodes;
      cached_nodes += p.cached.nodes;
      all_optimal = all_optimal &&
                    p.cold.milp_status == milp::MilpStatus::kOptimal &&
                    p.cached.milp_status == milp::MilpStatus::kOptimal;
      const double denom = std::max(1.0, std::abs(p.cold.cost));
      max_rel_diff = std::max(max_rel_diff,
                              std::abs(p.cold.cost - p.cached.cost) / denom);
    }
    const double speedup = cached_wall > 0.0 ? cold_wall / cached_wall : 0.0;
    // Both paths prove optimality within the same relative gap, so their
    // objectives may differ by at most that gap.
    const bool costs_match = max_rel_diff <= opts.relative_gap + 1e-12;
    if (!all_optimal || !costs_match) exit_code = 1;

    std::fprintf(stderr,
                 "%-14s cold %.2fs  cached %.2fs  speedup %.2fx  "
                 "max_cost_diff %.2e  %s\n",
                 inst.name.c_str(), cold_wall, cached_wall, speedup,
                 max_rel_diff,
                 all_optimal && costs_match ? "OK" : "MISMATCH");

    if (f) {
      if (!first_instance) std::fprintf(f, ",\n");
      first_instance = false;
      std::fprintf(f, "    {\"instance\": \"%s\", \"n\": %d,\n",
                   inst.name.c_str(), inst.problem.size());
      std::fprintf(f,
                   "     \"cold_wall_seconds\": %.3f, "
                   "\"cached_wall_seconds\": %.3f, \"speedup\": %.2f,\n",
                   cold_wall, cached_wall, speedup);
      std::fprintf(f,
                   "     \"cold_nodes\": %lld, \"cached_nodes\": %lld, "
                   "\"all_optimal\": %s, \"max_cost_rel_diff\": %.3e,\n",
                   static_cast<long long>(cold_nodes),
                   static_cast<long long>(cached_nodes),
                   all_optimal ? "true" : "false", max_rel_diff);
      std::fprintf(f,
                   "     \"service\": {\"formulation_hits\": %lld, "
                   "\"budget_rebinds\": %lld, \"presolve_runs\": %lld, "
                   "\"presolve_reuses\": %lld, \"warm_starts\": %lld, "
                   "\"shortcuts\": %lld},\n",
                   static_cast<long long>(stats.formulation_hits),
                   static_cast<long long>(stats.budget_rebinds),
                   static_cast<long long>(stats.presolve_runs),
                   static_cast<long long>(stats.presolve_reuses),
                   static_cast<long long>(stats.warm_starts_injected),
                   static_cast<long long>(stats.warm_start_shortcuts));
      std::fprintf(f, "     \"sweep\": [\n");
      for (size_t i = 0; i < pts.size(); ++i) {
        const PointResult& p = pts[i];
        std::fprintf(
            f,
            "       {\"budget_bytes\": %.6g, \"cold_cost\": %.6g, "
            "\"cached_cost\": %.6g, \"cold_status\": \"%s\", "
            "\"cached_status\": \"%s\", \"cold_nodes\": %lld, "
            "\"cached_nodes\": %lld, \"cold_seconds\": %.3f, "
            "\"cached_seconds\": %.3f}%s\n",
            p.budget, p.cold.cost, p.cached.cost,
            milp::to_string(p.cold.milp_status),
            milp::to_string(p.cached.milp_status),
            static_cast<long long>(p.cold.nodes),
            static_cast<long long>(p.cached.nodes), p.cold.seconds,
            p.cached.seconds, i + 1 < pts.size() ? "," : "");
      }
      std::fprintf(f, "     ]}");
      std::fflush(f);
    }
  }

  if (f) {
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string filter;
  int points = 10;
  double gap = 1e-3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_sweep.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--points=", 9) == 0) {
      points = std::atoi(argv[i] + 9);
      if (points < 2) points = 2;
    } else if (std::strncmp(argv[i], "--instance=", 11) == 0) {
      filter = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--gap=", 6) == 0) {
      gap = std::atof(argv[i] + 6);
    } else {
      std::fprintf(stderr,
                   "usage: sweep_bench [--json[=PATH]] [--points=N] "
                   "[--instance=SUBSTR] [--gap=G]\n");
      return 1;
    }
  }
  return run_suite(json_path, points, filter, gap);
}
