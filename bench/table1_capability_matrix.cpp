// Table 1: rematerialization strategies and their capabilities. The
// general-graphs column is *measured*: each strategy is asked for a
// schedule on a non-linear problem (U-Net) and on a linear one (VGG16);
// cost/memory awareness columns restate the algorithmic properties.
#include <cstdio>

#include "bench_common.h"

using namespace checkmate;
using baselines::BaselineKind;

int main() {
  const auto scale = bench::get_scale();
  auto linear = RematProblem::from_dnn(
      model::make_training_graph(
          model::zoo::vgg16(scale.batch(32), scale.resolution(224))),
      model::CostMetric::kProfiledTimeUs);
  auto general = RematProblem::from_dnn(
      model::make_training_graph(model::zoo::unet(
          scale.batch(16), scale.resolution(416), scale.resolution(608))),
      model::CostMetric::kProfiledTimeUs);

  struct Row {
    const char* name;
    BaselineKind kind;
    const char* cost_aware;
    const char* memory_aware;
  };
  const Row rows[] = {
      {"Checkpoint all (ideal)", BaselineKind::kCheckpointAll, "x", "x"},
      {"Griewank et al. logn", BaselineKind::kGriewankLogN, "x", "x"},
      {"Chen et al. sqrt(n)", BaselineKind::kChenSqrtN, "x", "x"},
      {"Chen et al. greedy", BaselineKind::kChenGreedy, "x", "~"},
      {"AP sqrt(n)", BaselineKind::kApSqrtN, "x", "x"},
      {"AP greedy", BaselineKind::kApGreedy, "x", "~"},
      {"Linearized sqrt(n)", BaselineKind::kLinearizedSqrtN, "x", "x"},
      {"Linearized greedy", BaselineKind::kLinearizedGreedy, "x", "~"},
  };

  std::printf("Table 1: strategy capability matrix (measured on VGG16 / "
              "U-Net instances)\n");
  bench::print_rule(86);
  std::printf("%-26s %14s %14s %11s %13s\n", "method", "linear-graphs",
              "general-graphs", "cost-aware", "memory-aware");
  bench::print_rule(86);
  for (const auto& r : rows) {
    const bool lin = !baselines::baseline_schedules(linear, r.kind).empty();
    const bool gen = !baselines::baseline_schedules(general, r.kind).empty();
    const bool approx_general =
        r.kind == BaselineKind::kApSqrtN || r.kind == BaselineKind::kApGreedy;
    std::printf("%-26s %14s %14s %11s %13s\n", r.name, lin ? "yes" : "no",
                gen ? (approx_general ? "~" : "yes") : "no", r.cost_aware,
                r.memory_aware);
  }
  std::printf("%-26s %14s %14s %11s %13s\n", "Checkmate ILP (ours)", "yes",
              "yes", "yes", "yes");
  std::printf("%-26s %14s %14s %11s %13s\n", "Checkmate approx (ours)", "yes",
              "yes", "yes", "yes");
  bench::print_rule(86);
  std::printf("'~' = partially (AP candidates degrade when a graph has few "
              "articulation points;\ngreedy variants are memory-aware only "
              "through the b knob search).\n");
  return 0;
}
