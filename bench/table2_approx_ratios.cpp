// Table 2: approximation ratios vs. the optimal ILP -- geometric mean of
// COST_strategy / COST_ilp across the feasible budget grid, for AP sqrt(n),
// AP greedy, Griewank log(n) and two-phase LP rounding, on MobileNet,
// VGG16, VGG19, U-Net and ResNet50.
#include <cstdio>
#include <functional>

#include "bench_common.h"

using namespace checkmate;
using baselines::BaselineKind;

int main() {
  const auto scale = bench::get_scale();

  struct Case {
    const char* name;
    std::function<model::DnnGraph()> build;
  };
  Case cases[] = {
      {"MobileNet",
       [&] {
         return model::zoo::mobilenet_v1(scale.batch(64),
                                         scale.resolution(224));
       }},
      {"VGG16",
       [&] { return model::zoo::vgg16(scale.batch(64),
                                      scale.resolution(224)); }},
      {"VGG19",
       [&] { return model::zoo::vgg19(scale.batch(64),
                                      scale.resolution(224)); }},
      {"U-Net",
       [&] {
         return model::zoo::unet(scale.batch(16), scale.resolution(416),
                                 scale.resolution(608));
       }},
      {"ResNet50",
       [&] {
         return model::zoo::resnet(scale.batch(32), scale.resolution(224),
                                   scale.paper_scale
                                       ? std::array<int, 4>{3, 4, 6, 3}
                                       : std::array<int, 4>{2, 2, 2, 2});
       }},
  };

  std::printf("Table 2: geomean cost ratio vs. optimal ILP across feasible "
              "budgets\n");
  std::printf("scale: %s\n\n", scale.paper_scale ? "paper" : "small");
  std::printf("%-10s %10s %10s %14s %18s\n", "model", "AP sqrt(n)",
              "AP greedy", "Griewank logn", "two-phase rounding");
  bench::print_rule(68);

  for (const auto& c : cases) {
    auto problem = RematProblem::from_dnn(
        model::make_training_graph(c.build()), model::CostMetric::kFlops);
    Scheduler sched(problem);
    auto budgets = bench::budget_grid(sched, 5);

    std::vector<bench::StrategyPoint> ilp, ap_sqrt, ap_greedy, griewank,
        rounding;
    for (double b : budgets) {
      ilp.push_back(bench::ilp_at_budget(sched, b, scale.ilp_time_limit_sec));
      ap_sqrt.push_back(
          bench::best_baseline_at_budget(sched, BaselineKind::kApSqrtN, b));
      ap_greedy.push_back(
          bench::best_baseline_at_budget(sched, BaselineKind::kApGreedy, b));
      griewank.push_back(bench::best_baseline_at_budget(
          sched, BaselineKind::kGriewankLogN, b));
      rounding.push_back(bench::rounding_at_budget(sched, b));
    }

    auto cell = [&](const std::vector<bench::StrategyPoint>& strat) {
      auto g = bench::geomean_ratio(strat, ilp);
      if (!g) return std::string("    -");
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2fx", *g);
      return std::string(buf);
    };
    std::printf("%-10s %10s %10s %14s %18s\n", c.name,
                cell(ap_sqrt).c_str(), cell(ap_greedy).c_str(),
                cell(griewank).c_str(), cell(rounding).c_str());
  }
  std::printf(
      "\nTakeaway (paper): two-phase rounding is within ~1.06x of optimal on\n"
      "every architecture; heuristics lose 1.1x-7x depending on the model.\n");
  return 0;
}
