// Checkmate on a user-defined data-flow graph: the public API is not tied
// to the model zoo. Here we hand-build a multi-branch scientific-computing
// pipeline (two encoder branches fused into a decoder, as in multi-modal
// sensing), attach measured costs, and solve for a schedule that fits a
// device with half the memory.
#include <cstdio>

#include "checkmate.h"

using namespace checkmate;

int main() {
  // Data-flow DAG. Node ids must be topologically ordered; costs are in
  // milliseconds (e.g. from profiling) and memory in bytes.
  RematProblem p;
  p.name = "fusion_pipeline";
  p.graph = Graph(9);
  //   0: lidar input     1: camera input
  //   2,3: lidar encoder 4,5: camera encoder
  //   6: fusion (needs 3 and 5)
  //   7: decoder (needs 6 and the early lidar feature 2 -- long skip!)
  //   8: loss/output
  p.graph.add_edge(0, 2);
  p.graph.add_edge(2, 3);
  p.graph.add_edge(1, 4);
  p.graph.add_edge(4, 5);
  p.graph.add_edge(3, 6);
  p.graph.add_edge(5, 6);
  p.graph.add_edge(6, 7);
  p.graph.add_edge(2, 7);  // long skip connection
  p.graph.add_edge(7, 8);

  p.cost = {0.0, 0.0, 4.0, 6.0, 3.0, 5.0, 2.0, 7.0, 1.0};  // ms
  p.memory = {256e6, 128e6, 384e6, 256e6, 384e6, 256e6, 384e6, 256e6, 4.0};
  p.fixed_overhead = 300e6;  // parameters + optimizer state
  p.is_backward.assign(9, 0);
  p.grad_of.assign(9, -1);
  p.node_names = {"lidar",   "camera",  "lenc1", "lenc2", "cenc1",
                  "cenc2",   "fusion",  "decoder", "loss"};
  p.validate();

  Scheduler scheduler(p);
  auto all = scheduler.evaluate_schedule(
      baselines::checkpoint_all_schedule(p), 0.0);
  std::printf("retain-all: %.2f GB peak, %.1f ms\n", all.peak_memory / 1e9,
              all.cost);

  // Interpolate between the structural floor (largest single working set)
  // and the retain-all peak: the band where rematerialization trades.
  const double budget =
      p.memory_floor() + 0.45 * (all.peak_memory - p.memory_floor());
  auto res = scheduler.solve_optimal_ilp(budget);
  if (!res.feasible) {
    std::printf("infeasible at %.2f GB: %s\n", budget / 1e9,
                res.message.c_str());
    return 1;
  }
  std::printf("checkmate:  %.2f GB peak, %.1f ms (overhead %.2fx)\n",
              res.peak_memory / 1e9, res.cost, res.overhead);
  std::printf("\nplan:\n%s", res.plan.to_string(p).c_str());
  return 0;
}
