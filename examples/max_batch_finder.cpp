// Find the maximum trainable batch size on a fixed memory budget with at
// most one extra forward pass of recomputation (Section 6.4 / Figure 6),
// for a classification model.
//
//   ./max_batch_finder [model=mobilenet|vgg16] [budget_gb] [resolution]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "checkmate.h"

using namespace checkmate;

int main(int argc, char** argv) {
  const char* model_name = argc > 1 ? argv[1] : "mobilenet";
  const double budget_gb = argc > 2 ? std::atof(argv[2]) : 4.0;
  const int64_t resolution = argc > 3 ? std::atoll(argv[3]) : 64;
  const double budget = budget_gb * 1e9;

  ProblemFactory factory = [&](int64_t batch) {
    auto fwd = std::strcmp(model_name, "vgg16") == 0
                   ? model::zoo::vgg16(batch, resolution)
                   : model::zoo::mobilenet_v1(batch, resolution);
    return RematProblem::from_dnn(model::make_training_graph(fwd),
                                  model::CostMetric::kFlops);
  };

  MaxBatchOptions opts;
  opts.budget_bytes = budget;
  opts.max_batch = 4096;

  // Baseline: checkpoint everything (framework default).
  FeasibilityProbe default_probe = [&](const RematProblem& p) {
    auto sol = baselines::checkpoint_all_schedule(p);
    auto sim = simulate_plan(p, generate_execution_plan(p, sol));
    return sim.valid && sim.peak_memory <= budget;
  };
  auto base = max_batch_size(factory, default_probe, opts);
  std::printf("%s @ %lldpx, %.1f GB budget\n", model_name,
              static_cast<long long>(resolution), budget_gb);
  std::printf("  checkpoint-all max batch: %lld\n",
              static_cast<long long>(base.max_batch));

  // Checkmate: MILP feasibility probe with the one-extra-forward cost cap.
  auto ours = max_batch_size(factory, make_ilp_probe(budget, 60.0), opts);
  std::printf("  checkmate max batch:      %lld  (%lld probes)\n",
              static_cast<long long>(ours.max_batch),
              static_cast<long long>(ours.probes.size()));
  if (base.max_batch > 0)
    std::printf("  improvement:              %.2fx\n",
                static_cast<double>(ours.max_batch) /
                    static_cast<double>(base.max_batch));
  return 0;
}
