// Quickstart: optimally rematerialize a small VGG16 training graph under a
// memory budget, then print the schedule, its cost overhead, and a snippet
// of the generated execution plan.
//
//   ./quickstart [batch] [budget_fraction]
#include <cstdio>
#include <cstdlib>

#include "checkmate.h"

using namespace checkmate;

int main(int argc, char** argv) {
  // Batch 2 at the mid-band budget proves optimality in seconds; larger
  // batches and near-floor/near-peak budgets enter the dual-plateau regime
  // where the solver runs as an anytime algorithm against its time limit.
  const int64_t batch = argc > 1 ? std::atoll(argv[1]) : 2;
  const double budget_fraction = argc > 2 ? std::atof(argv[2]) : 0.5;

  // 1. Build the architecture and derive the training graph (forward +
  //    backward ops) via static reverse-mode differentiation.
  model::DnnGraph net = model::zoo::vgg16(batch);
  model::DnnGraph train = model::make_training_graph(net);
  std::printf("model: %s  (batch %lld, %d ops incl. gradients)\n",
              train.name.c_str(), static_cast<long long>(batch),
              train.dag.size());

  // 2. Attach the profile-based cost model (synthetic V100 profile).
  RematProblem problem =
      RematProblem::from_dnn(train, model::CostMetric::kProfiledTimeUs);

  // 3. Measure the framework-default policy to pick a budget. The fraction
  //    interpolates between the structural memory floor (below which no
  //    schedule exists) and the checkpoint-all peak.
  Scheduler scheduler(problem);
  auto all = scheduler.evaluate_schedule(
      baselines::checkpoint_all_schedule(problem), 0.0);
  const double floor = problem.memory_floor();
  const double budget =
      floor + budget_fraction * (all.peak_memory - floor);
  std::printf("checkpoint-all: %.2f GB peak, %.2f ms/iter\n",
              all.peak_memory / 1e9, all.cost / 1e3);
  std::printf("budget:         %.2f GB (floor %.2f GB + %.0f%% of band)\n",
              budget / 1e9, floor / 1e9, 100.0 * budget_fraction);

  // 4. Solve the MILP for the optimal rematerialization schedule. A 0.05%
  //    optimality gap: real-model instances carry a dual plateau right
  //    below the optimum, so the last gap decade costs minutes for noise.
  IlpSolveOptions opts;
  opts.time_limit_sec = 120.0;
  opts.relative_gap = 5e-4;
  auto result = scheduler.solve_optimal_ilp(budget, opts);
  if (!result.feasible) {
    std::printf("no feasible schedule: %s\n", result.message.c_str());
    return 1;
  }
  std::printf(
      "checkmate:      %.2f GB peak, %.2f ms/iter  (overhead %.2fx, "
      "%lld B&B nodes, %.2fs solve)\n",
      result.peak_memory / 1e9, result.cost / 1e3, result.overhead,
      static_cast<long long>(result.nodes), result.seconds);

  // 5. Show the beginning of the concrete execution plan.
  std::string plan_text = result.plan.to_string(problem);
  const size_t cut = plan_text.find("stage 4:");
  std::printf("\nexecution plan (first stages):\n%s...\n",
              plan_text.substr(0, cut == std::string::npos ? 400 : cut)
                  .c_str());

  // 6. And the R-matrix visualization (Figure 7 style).
  std::printf("\nR/S schedule ('#' compute, 'o' retained):\n%s",
              render_schedule(result.solution).c_str());
  return 0;
}
