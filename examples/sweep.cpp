// Plan-service quickstart: answer a whole overhead-vs-budget sweep (the
// Figure 5 workload) from one cached formulation.
//
// The service builds and presolves the MILP once, rebinds only the
// U-variable budget bounds per point, and chains each point's proven
// optimum into the next point's branch & bound as a warm start. Every
// returned objective is identical to an independent solve_optimal_ilp
// call -- the sweep is just much faster.
//
//   ./sweep [points]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "checkmate.h"

using namespace checkmate;

int main(int argc, char** argv) {
  const int points = argc > 1 ? std::atoi(argv[1]) : 8;

  auto problem = RematProblem::from_dnn(
      model::make_training_graph(model::zoo::mobilenet_v1(2, 64)),
      model::CostMetric::kProfiledTimeUs);
  Scheduler sched(problem);
  const auto all = sched.evaluate_schedule(
      baselines::checkpoint_all_schedule(problem), 0.0);
  const double floor = problem.memory_floor();

  std::vector<double> budgets;
  for (int i = 0; i < points; ++i) {
    const double frac = 0.3 + 0.7 * (points > 1 ? double(i) / (points - 1) : 1.0);
    budgets.push_back(floor + frac * (all.peak_memory - floor));
  }

  IlpSolveOptions opts;
  opts.time_limit_sec = 30.0;
  opts.relative_gap = 5e-4;

  // Equivalent convenience wrapper: sched.solve_budget_sweep(budgets, opts).
  service::PlanService service;
  const auto results = service.sweep(problem, budgets, opts);

  std::printf("%s: %d nodes, checkpoint-all peak %.3f GB\n\n",
              problem.name.c_str(), problem.size(), all.peak_memory / 1e9);
  std::printf("%-12s %-10s %-10s %-8s %-8s\n", "budget(GB)", "status",
              "overhead", "nodes", "seconds");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScheduleResult& r = results[i];
    std::printf("%-12.3f %-10s %-10.4f %-8lld %-8.2f\n", budgets[i] / 1e9,
                milp::to_string(r.milp_status), r.overhead,
                static_cast<long long>(r.nodes), r.seconds);
  }

  const auto st = service.stats();
  std::printf(
      "\nservice: %lld queries, %lld formulation hit(s), %lld budget "
      "rebinds,\n         %lld presolve run(s) / %lld reuses, %lld warm "
      "starts, %lld shortcut(s)\n",
      static_cast<long long>(st.queries),
      static_cast<long long>(st.formulation_hits),
      static_cast<long long>(st.budget_rebinds),
      static_cast<long long>(st.presolve_runs),
      static_cast<long long>(st.presolve_reuses),
      static_cast<long long>(st.warm_starts_injected),
      static_cast<long long>(st.warm_start_shortcuts));
  return 0;
}
