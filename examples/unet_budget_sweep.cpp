// Semantic-segmentation scenario (the paper's U-Net motivation): sweep the
// memory budget for U-Net training and compare the optimal schedule against
// the generalized baselines at each point -- a miniature of Figure 5c.
//
//   ./unet_budget_sweep [batch] [height] [width]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "checkmate.h"

using namespace checkmate;

int main(int argc, char** argv) {
  const int64_t batch = argc > 1 ? std::atoll(argv[1]) : 4;
  const int64_t height = argc > 2 ? std::atoll(argv[2]) : 160;
  const int64_t width = argc > 3 ? std::atoll(argv[3]) : 224;

  auto train = model::make_training_graph(model::zoo::unet(batch, height,
                                                           width));
  auto problem =
      RematProblem::from_dnn(train, model::CostMetric::kProfiledTimeUs);
  Scheduler scheduler(problem);

  auto all = scheduler.evaluate_schedule(
      baselines::checkpoint_all_schedule(problem), 0.0);
  std::printf("U-Net %lldx%lld batch %lld: checkpoint-all %.2f GB, %.1f ms\n",
              static_cast<long long>(height), static_cast<long long>(width),
              static_cast<long long>(batch), all.peak_memory / 1e9,
              all.cost / 1e3);

  // Baseline candidate schedules (computed once; best feasible per budget).
  using baselines::BaselineKind;
  struct Strategy {
    const char* name;
    std::vector<baselines::BaselineSchedule> schedules;
  };
  std::vector<Strategy> strategies;
  for (auto kind : {BaselineKind::kApSqrtN, BaselineKind::kLinearizedGreedy})
    strategies.push_back({baselines::to_string(kind),
                          baselines::baseline_schedules(problem, kind)});

  std::printf("\n%-10s %-12s %-12s %-12s\n", "budget", "checkmate",
              strategies[0].name, strategies[1].name);
  const double floor = problem.memory_floor();
  for (double frac : {0.9, 0.7, 0.5, 0.3, 0.1}) {
    const double budget = floor + frac * (all.peak_memory - floor);
    IlpSolveOptions opts;
    opts.time_limit_sec = 60.0;
    auto ours = scheduler.solve_optimal_ilp(budget, opts);
    std::printf("%6.2f GB  %-12s", budget / 1e9,
                ours.feasible
                    ? (std::to_string(ours.overhead).substr(0, 5) + "x").c_str()
                    : "infeasible");
    for (const auto& strat : strategies) {
      double best = -1.0;
      for (const auto& s : strat.schedules) {
        auto eval = scheduler.evaluate_schedule(s.solution, budget);
        if (eval.feasible && (best < 0 || eval.overhead < best))
          best = eval.overhead;
      }
      if (best < 0)
        std::printf(" %-12s", "infeasible");
      else
        std::printf(" %-12s",
                    (std::to_string(best).substr(0, 5) + "x").c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nTakeaway (paper Fig. 5c): the optimal schedule stays feasible at\n"
      "budgets where the heuristics fail, and has lower overhead wherever\n"
      "they are feasible.\n");
  return 0;
}
