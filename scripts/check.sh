#!/usr/bin/env bash
# CI entry point: configure, build with warnings-as-errors, run the test
# tier, then the benchmark regression gate.
#
#   CHECK_TIER=fast (default)  pre-merge: fast-labeled ctest tier + the
#                              sweep-bench and service-bench gates
#   CHECK_TIER=full            nightly: full ctest suite, TSan and
#                              ASan+fault-injection (chaos/disk-fault)
#                              stages, sweep and service gates, and the
#                              solver-bench gate (when google-benchmark
#                              is available)
#   CHECKMATE_BENCH_GATE=off   skip the benchmark gates entirely
#
# Every test carries a ctest TIMEOUT property, so a hung solver fails
# loudly instead of wedging the pipeline. The bench gates re-run the
# committed BENCH_*.json scenarios and fail on >2x node-count regressions
# (node counts are machine-independent) plus a loose >4x wall-time gate on
# the shipped configs (catches a robustness hook leaking onto the happy
# path; see compare_bench.py).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-check}"
CHECK_TIER="${CHECK_TIER:-fast}"
GENERATOR_FLAGS=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR_FLAGS+=(-G Ninja)
fi

cmake -B "$BUILD_DIR" -S . "${GENERATOR_FLAGS[@]}" \
  -DCMAKE_BUILD_TYPE=Release -DCHECKMATE_WERROR=ON
cmake --build "$BUILD_DIR" -j

if [ "$CHECK_TIER" = "full" ]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" -L fast
fi

# Nightly ThreadSanitizer stage: rebuild the threading-heavy suites with
# -DCHECKMATE_TSAN=ON and run the parallel-determinism tests under TSan.
# Epoch-lockstep determinism is only trustworthy if the barrier protocol is
# race-free; a TSan report here fails the tier. test_cuts carries the
# threads {1,2,4} branch-and-cut invariance test (cut pool commits and LP
# row appends ride the same barrier protocol), so it runs here too.
if [ "$CHECK_TIER" = "full" ]; then
  TSAN_DIR="${TSAN_BUILD_DIR:-build-tsan}"
  cmake -B "$TSAN_DIR" -S . "${GENERATOR_FLAGS[@]}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCHECKMATE_TSAN=ON
  cmake --build "$TSAN_DIR" -j \
    --target test_milp_parallel test_plan_service test_simplex test_cuts \
             test_plan_store
  TSAN_OPTIONS="halt_on_error=1" ctest --test-dir "$TSAN_DIR" \
    -R 'test_milp_parallel|test_plan_service|test_simplex|test_cuts|test_plan_store' \
    --output-on-failure
fi

# Nightly chaos stage: rebuild with AddressSanitizer+UBSan and the
# deterministic fault-injection points compiled in, then run the chaos
# tier -- zoo sweeps under each fault schedule (solver faults AND the disk
# fault points: torn store writes, read corruption, rename/fsync failures)
# and tight deadlines, with every recovery path exercised. test_plan_store
# carries the kill-mid-write/reload recovery cases, which only exist under
# fault injection. ASan turns a leaked register file or a use-after-restore
# during recovery into a hard failure. test_simplex and test_lu ride along
# so the Forrest-Tomlin update path, the scaling frames and the snapshot
# row-remap machinery get sanitizer coverage every nightly.
if [ "$CHECK_TIER" = "full" ]; then
  ASAN_DIR="${ASAN_BUILD_DIR:-build-asan}"
  cmake -B "$ASAN_DIR" -S . "${GENERATOR_FLAGS[@]}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCHECKMATE_ASAN=ON \
    -DCHECKMATE_FAULT_INJECTION=ON
  cmake --build "$ASAN_DIR" -j --target test_chaos test_robust \
    test_plan_store test_simplex test_lu
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "$ASAN_DIR" \
    -R 'test_chaos|test_robust|test_plan_store|test_simplex|test_lu' \
    --output-on-failure
fi

if [ "${CHECKMATE_BENCH_GATE:-on}" = "off" ]; then
  echo "bench gate skipped (CHECKMATE_BENCH_GATE=off)"
  exit 0
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "bench gate skipped (no python3)"
  exit 0
fi

# plot_bench.py must stay usable before the first baseline lands (it
# renders the trajectory embed on fresh clones too): regression-check the
# empty-history path against a zero-commit scratch repo -- it has to exit 0
# and still write a well-formed SVG.
PLOT_TMP="$(mktemp -d)"
trap 'rm -rf "$PLOT_TMP"' EXIT
git -C "$PLOT_TMP" init -q
python3 scripts/plot_bench.py --repo "$PLOT_TMP" --out "$PLOT_TMP/stub.svg"
grep -q '</svg>' "$PLOT_TMP/stub.svg"

"$BUILD_DIR/sweep_bench" --json="$BUILD_DIR/BENCH_sweep_fresh.json"
python3 scripts/compare_bench.py BENCH_sweep.json \
  "$BUILD_DIR/BENCH_sweep_fresh.json"

# Plan-store/admission gate: replay the synthetic traffic log and hold the
# line on served-without-solve rate, solve counts (restart must stay at 0,
# herd at exactly 1), node counts, and p50/p99 latency.
"$BUILD_DIR/service_bench" --json="$BUILD_DIR/BENCH_service_fresh.json"
python3 scripts/compare_bench.py BENCH_service.json \
  "$BUILD_DIR/BENCH_service_fresh.json"

if [ "$CHECK_TIER" = "full" ] && [ -x "$BUILD_DIR/micro_solver_bench" ]; then
  "$BUILD_DIR/micro_solver_bench" --json="$BUILD_DIR/BENCH_solver_fresh.json"
  python3 scripts/compare_bench.py BENCH_solver.json \
    "$BUILD_DIR/BENCH_solver_fresh.json"
fi
