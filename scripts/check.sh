#!/usr/bin/env bash
# CI entry point: configure, build with warnings-as-errors, run the full
# ctest suite. Every test carries a ctest TIMEOUT property, so a hung
# solver fails loudly instead of wedging the pipeline.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-check}"
GENERATOR_FLAGS=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR_FLAGS+=(-G Ninja)
fi

cmake -B "$BUILD_DIR" -S . "${GENERATOR_FLAGS[@]}" \
  -DCMAKE_BUILD_TYPE=Release -DCHECKMATE_WERROR=ON
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
