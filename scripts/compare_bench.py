#!/usr/bin/env python3
"""Benchmark regression gate: diff a fresh bench JSON against the committed
baseline and fail on node-count blowups.

Usage: compare_bench.py BASELINE FRESH [--max-node-ratio R] [--slack N]
       [--iter-slack N]

Handles both committed formats:
  BENCH_solver.json  (micro_solver_bench --json): records keyed by
                     (instance, config), gated on "nodes" AND on
                     "lp_iterations" (the LP hot path is the system's
                     innermost loop; a >2x iteration blowup is a pricing /
                     ratio-test regression even when node counts hold);
                     additionally enforces the parallel-determinism
                     contract: the threads2/threads4 configs must report
                     node counts identical to the single-threaded shipped
                     config ("overhaul") on every instance of the fresh
                     run; and the backend cross-check: wherever the dense
                     ("overhaul") and retention-interval ("interval")
                     configs both prove optimality on an instance, their
                     objectives must agree to within the proof gap;
  BENCH_sweep.json   (sweep_bench --json): records keyed by
                     (instance, cold|cached), gated on total node counts;
                     additionally fails if any fresh sweep point lost
                     proven optimality or the cold/cached objectives
                     diverged beyond the gap.
  BENCH_service.json (service_bench --json): records keyed by
                     (phase, replay), gated on total node counts plus the
                     admission contracts: the served-without-solve rate of
                     each phase must not drop more than --min-hit-drop
                     below baseline, solve counts must not grow beyond a
                     small absolute slack (a growth means the store or
                     single-flight stopped absorbing traffic), the restart
                     phase must stay at zero solves and the herd phase at
                     exactly one, and p50/p99 latencies are gated at
                     --max-wall-ratio x baseline plus --latency-slack-ms
                     (additive slack: sub-millisecond baselines are pure
                     scheduler noise, but a restart p99 that jumps to
                     seconds means queries are re-solving).

Rows present in only one of baseline/fresh are skipped with a warning, not
failed: a PR that adds or retires a bench instance/config must not brick the
gate (the committed baseline is refreshed in the same PR, and the warning
keeps the mismatch visible in the log). If NO rows overlap at all the gate
fails -- a comparison that gated nothing is a misconfiguration, not a pass. EXCEPTION: the ablation configs
(no_lp_hotpath, no_rcfix, no_cuts, no_reliability) are load-bearing -- they
document what each subsystem buys -- so a fresh solver run that silently
drops one of them FAILS instead of warning.

Node counts are deterministic for completed searches (the tree does not
depend on wall-clock speed or worker count unless a limit is hit), so a >2x
jump means the solver or the service regressed, not that the machine was
slow. Wall-time ratios are printed alongside the node ratios; because they
are machine-dependent they get a deliberately loose gate: a shipped-config
row (solver "overhaul", sweep cold/cached) whose baseline time clears
--wall-floor must not exceed --max-wall-ratio (default 4x) times it. That
catches a robustness hook leaking onto the happy path (a per-node deadline
check or fault probe gone hot) while staying far above scheduler noise;
ablation and thread-scaling rows stay ungated.
"""

import argparse
import json
import sys

# Configs whose node counts must be identical on a given instance: the
# epoch-lockstep tree search guarantees worker-count invariance (with cut
# separation and reliability branching enabled -- both ride the barrier
# protocol).
DETERMINISM_CONFIGS = ("overhaul", "threads2", "threads4")

# Ablation configs the solver bench must keep reporting: each one flips a
# shipped subsystem off, and the committed baseline is the record of what
# that subsystem buys. A fresh run missing one of these rows fails the gate.
ABLATION_CONFIGS = ("no_lp_hotpath", "no_rcfix", "no_cuts", "no_reliability",
                    "no_ft_update", "no_scaling", "no_gomory")


def solver_records(doc):
    return {
        (r["instance"], r["config"]):
            (r["nodes"], r.get("seconds"), r.get("lp_iterations"))
        for r in doc["results"]
    }


def solver_statuses(doc):
    return {(r["instance"], r["config"]): r.get("status")
            for r in doc["results"]}


def sweep_records(doc):
    out = {}
    for inst in doc["instances"]:
        out[(inst["instance"], "cold")] = (
            inst["cold_nodes"], inst.get("cold_wall_seconds"), None)
        out[(inst["instance"], "cached")] = (
            inst["cached_nodes"], inst.get("cached_wall_seconds"), None)
    return out


def service_records(doc):
    return {(p["phase"], "replay"): (p["nodes"], p.get("wall_seconds"), None)
            for p in doc["phases"]}


def fmt_wall(base_secs, fresh_secs):
    if not base_secs or fresh_secs is None:
        return ""
    return (f"  wall {base_secs:7.2f}s -> {fresh_secs:7.2f}s "
            f"({fresh_secs / base_secs:5.2f}x)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--max-node-ratio", type=float, default=2.0)
    ap.add_argument("--slack", type=int, default=100,
                    help="absolute node slack so tiny instances do not trip "
                         "the ratio on noise")
    ap.add_argument("--iter-slack", type=int, default=2000,
                    help="absolute LP-iteration slack (same role as --slack "
                         "for the iteration gate)")
    ap.add_argument("--max-wall-ratio", type=float, default=4.0,
                    help="shipped-config wall-time blowup that fails the "
                         "gate (loose on purpose: machine-dependent)")
    ap.add_argument("--wall-floor", type=float, default=0.05,
                    help="baseline seconds below which the wall gate is "
                         "skipped (sub-50ms rows are pure noise)")
    ap.add_argument("--min-hit-drop", type=float, default=0.02,
                    help="service bench: served-without-solve rate may drop "
                         "at most this much below baseline")
    ap.add_argument("--solve-slack", type=int, default=2,
                    help="service bench: absolute growth in per-phase solve "
                         "counts tolerated before failing")
    ap.add_argument("--latency-slack-ms", type=float, default=50.0,
                    help="service bench: additive p50/p99 slack on top of "
                         "--max-wall-ratio x baseline")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base_doc = json.load(f)
    with open(args.fresh) as f:
        fresh_doc = json.load(f)

    kind = base_doc.get("benchmark")
    if kind != fresh_doc.get("benchmark"):
        print(f"FAIL: benchmark kinds differ: {kind} vs "
              f"{fresh_doc.get('benchmark')}")
        return 1

    if kind == "sweep_bench":
        base, fresh = sweep_records(base_doc), sweep_records(fresh_doc)
    elif kind == "micro_solver_bench":
        base, fresh = solver_records(base_doc), solver_records(fresh_doc)
    elif kind == "service_bench":
        base, fresh = service_records(base_doc), service_records(fresh_doc)
    else:
        print(f"FAIL: unknown benchmark kind {kind!r}")
        return 1

    failures = []
    warnings = []
    overlap = 0
    for key, (base_nodes, base_secs, base_iters) in sorted(base.items()):
        if key not in fresh:
            warnings.append(f"{key}: only in baseline; skipped")
            continue
        overlap += 1
        fresh_nodes, fresh_secs, fresh_iters = fresh[key]
        limit = args.max_node_ratio * base_nodes + args.slack
        status = "ok" if fresh_nodes <= limit else "REGRESSED"
        iters_txt = ""
        if base_iters is not None and fresh_iters is not None:
            iter_limit = args.max_node_ratio * base_iters + args.iter_slack
            iters_txt = f"  iters {base_iters:>8d} -> {fresh_iters:>8d}"
            if fresh_iters > iter_limit:
                status = "REGRESSED"
                failures.append(
                    f"{key}: lp_iterations {base_iters} -> {fresh_iters} "
                    f"(> {args.max_node_ratio}x + {args.iter_slack})")
        wall_gated = kind == "sweep_bench" or key[1] == "overhaul"
        if (wall_gated and base_secs and fresh_secs is not None
                and base_secs > args.wall_floor
                and fresh_secs > args.max_wall_ratio * base_secs):
            status = "REGRESSED"
            failures.append(
                f"{key}: wall time {base_secs:.3f}s -> {fresh_secs:.3f}s "
                f"(> {args.max_wall_ratio}x)")
        print(f"  {'/'.join(key):44s} nodes {base_nodes:>8d} -> "
              f"{fresh_nodes:>8d}  {status}{iters_txt}"
              f"{fmt_wall(base_secs, fresh_secs)}")
        if fresh_nodes > limit:
            failures.append(
                f"{key}: nodes {base_nodes} -> {fresh_nodes} "
                f"(> {args.max_node_ratio}x + {args.slack})")
    for key in sorted(fresh):
        if key not in base:
            warnings.append(f"{key}: only in fresh run; skipped")

    # The per-row gates above skip non-overlapping rows, so with zero
    # overlap the loop gates nothing and the run would "pass" having
    # compared nothing (e.g. baseline and fresh from different benches, or
    # a renamed instance set). That is a misconfiguration, not a pass.
    if overlap == 0:
        failures.append(
            "baseline and fresh share no (instance, config) rows -- "
            "nothing was gated; wrong baseline file or renamed instances?")

    if kind == "micro_solver_bench":
        # Ablation rows are part of the bench contract: if the baseline
        # tracks one, the fresh run must report it too.
        fresh_configs = {config for (_, config) in fresh}
        for config in ABLATION_CONFIGS:
            if any(c == config for (_, c) in base) and \
                    config not in fresh_configs:
                failures.append(
                    f"ablation config {config!r} missing from fresh run")

        # Worker-count determinism gate on the fresh run. Only meaningful
        # when every config completed: a wall-clock-truncated search stops
        # at a machine-dependent point, so node counts legitimately differ
        # (warn instead of failing).
        statuses = solver_statuses(fresh_doc)
        by_instance = {}
        for (instance, config), (nodes, _, _) in fresh.items():
            if config in DETERMINISM_CONFIGS:
                by_instance.setdefault(instance, {})[config] = nodes
        for instance, configs in sorted(by_instance.items()):
            truncated = [c for c in configs
                         if statuses.get((instance, c)) != "optimal"]
            if truncated:
                warnings.append(
                    f"{instance}: determinism check skipped "
                    f"(non-optimal: {', '.join(sorted(truncated))})")
                continue
            counts = sorted(set(configs.values()))
            if len(counts) > 1:
                failures.append(
                    f"{instance}: worker-count determinism violated: "
                    + ", ".join(f"{c}={n}" for c, n in sorted(configs.items())))

        # Dense-vs-interval cross-check: both backends solve the same
        # rematerialization instance, so wherever both prove optimality
        # their objectives must agree to within the proof gap. A divergence
        # means one formulation dropped or mispriced a schedule class.
        gap = fresh_doc.get("relative_gap", 1e-3)
        fresh_costs = {(r["instance"], r["config"]): r.get("cost")
                       for r in fresh_doc["results"]}
        for (instance, config) in sorted(fresh):
            if config != "interval":
                continue
            dense_key, interval_key = (instance, "overhaul"), (instance, config)
            if dense_key not in fresh:
                continue
            pair_status = [statuses.get(dense_key), statuses.get(interval_key)]
            if any(st != "optimal" for st in pair_status):
                warnings.append(
                    f"{instance}: dense-vs-interval cost check skipped "
                    f"(statuses: {pair_status[0]}, {pair_status[1]})")
                continue
            dc, ic = fresh_costs[dense_key], fresh_costs[interval_key]
            if abs(dc - ic) > gap * max(1.0, abs(dc)):
                failures.append(
                    f"{instance}: dense (overhaul) and interval objectives "
                    f"diverge: {dc:.6g} vs {ic:.6g} (> gap {gap})")

    if kind == "sweep_bench":
        for inst in fresh_doc["instances"]:
            name = inst["instance"]
            print(f"  {name:44s} speedup {inst['speedup']:.2f}x "
                  f"(cold {inst['cold_wall_seconds']:.2f}s, cached "
                  f"{inst['cached_wall_seconds']:.2f}s)")
            if not inst.get("all_optimal", False):
                failures.append(f"{name}: fresh sweep lost proven optimality")
            gap = fresh_doc.get("relative_gap", 1e-3)
            if inst.get("max_cost_rel_diff", 0.0) > gap:
                failures.append(
                    f"{name}: cold/cached objectives diverged by "
                    f"{inst['max_cost_rel_diff']:.2e} (> gap {gap})")

    if kind == "service_bench":
        base_phases = {p["phase"]: p for p in base_doc["phases"]}
        for p in fresh_doc["phases"]:
            name = p["phase"]
            rate = p.get("served_without_solve_rate", 0.0)
            print(f"  {name:44s} solves {p['solves']:>4d}  "
                  f"served-no-solve {100.0 * rate:5.1f}%  "
                  f"p50 {p['p50_ms']:8.2f}ms  p99 {p['p99_ms']:8.2f}ms")
            if not p.get("all_served", False):
                failures.append(f"{name}: a query went unserved (the "
                                f"never-fail ladder broke)")
            bp = base_phases.get(name)
            if bp is None:
                warnings.append(f"phase {name!r}: only in fresh run; "
                                f"contract gates skipped")
                continue
            base_rate = bp.get("served_without_solve_rate", 0.0)
            if rate < base_rate - args.min_hit_drop:
                failures.append(
                    f"{name}: served-without-solve rate {base_rate:.3f} -> "
                    f"{rate:.3f} (dropped > {args.min_hit_drop}): the store "
                    f"or single-flight stopped absorbing repeat traffic")
            if p["solves"] > bp["solves"] + args.solve_slack:
                failures.append(
                    f"{name}: solve count {bp['solves']} -> {p['solves']} "
                    f"(> +{args.solve_slack})")
            for pct in ("p50_ms", "p99_ms"):
                limit = (args.max_wall_ratio * bp[pct]
                         + args.latency_slack_ms)
                if p[pct] > limit:
                    failures.append(
                        f"{name}: {pct} {bp[pct]:.2f} -> {p[pct]:.2f} "
                        f"(> {args.max_wall_ratio}x + "
                        f"{args.latency_slack_ms}ms)")
        # The two phases with exact, machine-independent contracts.
        for p in fresh_doc["phases"]:
            if p["phase"] == "restart" and p["solves"] != 0:
                failures.append(
                    f"restart: {p['solves']} solves (store must serve the "
                    f"whole replay from disk)")
            if p["phase"] == "herd" and p["solves"] != 1:
                failures.append(
                    f"herd: {p['solves']} solves (single-flight must "
                    f"collapse the herd onto exactly one)")

    for msg in warnings:
        print(f"  WARNING: {msg}")
    if failures:
        print("FAIL:")
        for msg in failures:
            print(f"  {msg}")
        return 1
    print("bench gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
