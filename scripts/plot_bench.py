#!/usr/bin/env python3
"""Render the BENCH_*.json performance trajectory across PRs to an SVG.

Walks the git history of the committed benchmark baselines (every commit
that touched them is one point -- i.e. one PR's refresh), and draws, per
instance, the node count and wall time of the shipped solver configuration
over time. Closes the ROADMAP "plot the trajectory across PRs" item.

Usage:
  plot_bench.py [--out BENCH_trajectory.svg] [--repo .]
                [--solver BENCH_solver.json] [--sweep BENCH_sweep.json]
                [--service BENCH_service.json]

Stdlib only (hand-rolled SVG): the CI container has no plotting stack.
"""

import argparse
import json
import subprocess
import sys

PALETTE = ["#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
           "#ff8ab7", "#a463f2", "#97bbf5"]


def git(repo, *args):
    return subprocess.run(["git", "-C", repo, *args], check=True,
                          capture_output=True, text=True).stdout


def history(repo, path):
    """[(short_sha, subject, parsed_json)] oldest -> newest for `path`."""
    out = []
    try:
        log = git(repo, "log", "--reverse", "--format=%h%x00%s", "--", path)
    except subprocess.CalledProcessError:
        return []  # zero-commit repo: git log exits non-zero
    for line in log.splitlines():
        sha, _, subject = line.partition("\x00")
        try:
            doc = json.loads(git(repo, "show", f"{sha}:{path}"))
        except (subprocess.CalledProcessError, json.JSONDecodeError):
            continue  # file absent or unparsable at that commit: skip point
        out.append((sha, subject, doc))
    return out


def solver_series(hist, config="overhaul"):
    """{instance: [(commit_idx, nodes, seconds, lp_iterations)]} for one
    solver config. lp_iterations is None on snapshots predating PR 4 (the
    field was added when the iteration gate landed)."""
    series = {}
    for idx, (_, _, doc) in enumerate(hist):
        for r in doc.get("results", []):
            if r.get("config") != config:
                continue
            series.setdefault(r["instance"], []).append(
                (idx, r.get("nodes"), r.get("seconds"),
                 r.get("lp_iterations")))
    return series


def sweep_series(hist):
    """{instance/mode: [(commit_idx, nodes, seconds)]} from sweep docs."""
    series = {}
    for idx, (_, _, doc) in enumerate(hist):
        for inst in doc.get("instances", []):
            for mode in ("cold", "cached"):
                key = f"{inst['instance']}/{mode}"
                series.setdefault(key, []).append(
                    (idx, inst.get(f"{mode}_nodes"),
                     inst.get(f"{mode}_wall_seconds")))
    return series


def service_series(hist):
    """Two series dicts from service-bench docs: {phase/pXX: [(idx, ms)]}
    latency quantiles and {phase: [(idx, rate)]} served-without-solve."""
    lat, rate = {}, {}
    for idx, (_, _, doc) in enumerate(hist):
        for ph in doc.get("phases", []):
            name = ph.get("phase", "?")
            lat.setdefault(f"{name}/p50", []).append(
                (idx, ph.get("p50_ms")))
            lat.setdefault(f"{name}/p99", []).append(
                (idx, ph.get("p99_ms")))
            rate.setdefault(name, []).append(
                (idx, ph.get("served_without_solve_rate")))
    return lat, rate


class Svg:
    def __init__(self, width, height):
        self.w, self.h = width, height
        self.parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            f'font-family="system-ui, sans-serif">',
            f'<rect width="{width}" height="{height}" fill="#ffffff"/>']

    def text(self, x, y, s, size=11, anchor="start", color="#1a1a1a",
             weight="normal"):
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{color}" '
            f'font-weight="{weight}">{s}</text>')

    def line(self, x1, y1, x2, y2, color="#d0d0d0", width=1.0):
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-width="{width}"/>')

    def polyline(self, pts, color, width=1.8):
        p = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
        self.parts.append(
            f'<polyline points="{p}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"/>')

    def circle(self, x, y, r, color):
        self.parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="{color}"/>')

    def render(self):
        return "\n".join(self.parts + ["</svg>"])


def draw_panel(svg, x0, y0, w, h, title, series, value_index, unit,
               commits, log_scale):
    import math
    svg.text(x0, y0 - 8, title, size=13, weight="bold")
    svg.line(x0, y0 + h, x0 + w, y0 + h, color="#888888")  # x axis
    svg.line(x0, y0, x0, y0 + h, color="#888888")          # y axis

    values = [v[value_index] for pts in series.values() for v in pts
              if v[value_index] is not None]
    if not values:
        svg.text(x0 + w / 2, y0 + h / 2, "no data", anchor="middle",
                 color="#888888")
        return
    vmax = max(values)
    vmin = min(values)
    if log_scale:
        lo = math.log10(max(vmin, 1e-3))
        hi = math.log10(max(vmax, 1e-3))
        if hi - lo < 1e-9:
            hi = lo + 1.0
        def ypos(v):
            return y0 + h - (math.log10(max(v, 1e-3)) - lo) / (hi - lo) * h
        ticks = sorted({10 ** t for t in range(int(math.floor(lo)),
                                               int(math.ceil(hi)) + 1)})
    else:
        hi = vmax * 1.05 or 1.0
        def ypos(v):
            return y0 + h - v / hi * h
        ticks = [hi * f for f in (0.0, 0.25, 0.5, 0.75, 1.0)]
    for t in ticks:
        y = ypos(t)
        if y0 - 2 <= y <= y0 + h + 2:
            svg.line(x0, y, x0 + w, y, color="#eeeeee")
            label = f"{t:g}" if t < 1000 else f"{t / 1000:g}k"
            svg.text(x0 - 6, y + 3.5, label, size=9, anchor="end",
                     color="#666666")

    n = max(2, len(commits))
    def xpos(i):
        return x0 + i / (n - 1) * w
    for i, (sha, _sub) in enumerate(commits):
        svg.line(xpos(i), y0 + h, xpos(i), y0 + h + 4, color="#888888")
        svg.text(xpos(i), y0 + h + 16, sha, size=9, anchor="middle",
                 color="#666666")

    for k, (name, pts) in enumerate(sorted(series.items())):
        color = PALETTE[k % len(PALETTE)]
        coords = [(xpos(p[0]), ypos(p[value_index])) for p in pts
                  if p[value_index] is not None]
        if len(coords) > 1:
            svg.polyline(coords, color)
        for x, y in coords:
            svg.circle(x, y, 2.4, color)
        svg.text(x0 + w + 10, y0 + 14 + 14 * k, name, size=10, color=color)
    svg.text(x0 - 34, y0 + h / 2, unit, size=10, anchor="middle",
             color="#666666")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--repo", default=".")
    ap.add_argument("--out", default="BENCH_trajectory.svg")
    ap.add_argument("--solver", default="BENCH_solver.json")
    ap.add_argument("--sweep", default="BENCH_sweep.json")
    ap.add_argument("--service", default="BENCH_service.json")
    ap.add_argument("--config", default="overhaul",
                    help="solver config to track across PRs")
    args = ap.parse_args()

    solver_hist = history(args.repo, args.solver)
    sweep_hist = history(args.repo, args.sweep)
    service_hist = history(args.repo, args.service)
    if not solver_hist and not sweep_hist and not service_hist:
        # Fresh clone / pre-first-bench checkout: still emit a valid SVG so
        # downstream consumers (README embed, CI artifact upload) never see
        # a missing or truncated file, and exit 0 -- an empty history is a
        # state of the repo, not a failure of the renderer.
        svg = Svg(640, 120)
        svg.text(320, 55, "Checkmate benchmark trajectory", size=15,
                 anchor="middle", weight="bold")
        svg.text(320, 80, "no committed bench baselines in git history yet",
                 size=12, anchor="middle", color="#888888")
        with open(args.out, "w") as f:
            f.write(svg.render())
        print(f"wrote {args.out} (stub: no committed bench baselines "
              f"in git history)")
        return 0

    panels = []  # (title, series, value_index, unit, commits, log_scale)
    if solver_hist:
        commits = [(sha, sub) for sha, sub, _ in solver_hist]
        s = solver_series(solver_hist, args.config)
        panels.append((f"solver nodes ({args.config})", s, 1, "nodes",
                       commits, True))
        panels.append((f"solver wall time ({args.config})", s, 2, "sec",
                       commits, True))
        panels.append((f"solver LP iterations ({args.config})", s, 3,
                       "iters", commits, True))
    if sweep_hist:
        commits = [(sha, sub) for sha, sub, _ in sweep_hist]
        s = sweep_series(sweep_hist)
        panels.append(("sweep nodes (cold vs cached)", s, 1, "nodes",
                       commits, True))
        panels.append(("sweep wall time (cold vs cached)", s, 2, "sec",
                       commits, True))
    if service_hist:
        commits = [(sha, sub) for sha, sub, _ in service_hist]
        lat, rate = service_series(service_hist)
        panels.append(("service latency (p50 / p99 per phase)", lat, 1,
                       "ms", commits, True))
        panels.append(("service served-without-solve rate", rate, 1,
                       "rate", commits, False))

    panel_w, panel_h, margin_l, margin_r = 430, 170, 70, 230
    pad_v = 60
    width = margin_l + panel_w + margin_r
    height = pad_v + len(panels) * (panel_h + pad_v)
    svg = Svg(width, height)
    svg.text(margin_l, 24, "Checkmate benchmark trajectory across PRs",
             size=15, weight="bold")
    for i, (title, series, vidx, unit, commits, log_scale) in \
            enumerate(panels):
        y0 = pad_v + i * (panel_h + pad_v) + 14
        draw_panel(svg, margin_l, y0, panel_w, panel_h, title, series, vidx,
                   unit, commits, log_scale)

    with open(args.out, "w") as f:
        f.write(svg.render())
    print(f"wrote {args.out} ({len(panels)} panels, "
          f"{len(solver_hist)} solver + {len(sweep_hist)} sweep + "
          f"{len(service_hist)} service snapshots)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
