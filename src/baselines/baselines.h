// Baseline rematerialization strategies and the paper's generalizations of
// them (Section 6.1, Table 1, Appendix B):
//
//   Checkpoint all      no rematerialization (framework default)
//   Chen sqrt(n)        Chen et al. 2016, every-sqrt(n) checkpoints
//   Chen greedy         Chen et al. 2016, segment-size-b greedy (b swept)
//   Griewank log(n)     Griewank & Walther REVOLVE binomial checkpointing
//   AP sqrt(n)/greedy   Chen heuristics restricted to articulation points
//   Linearized          Chen heuristics on the topological-order chain
//
// Every heuristic is expressed as a checkpoint policy that yields a full
// (R, S) schedule: the policy fixes S (which values survive each stage
// boundary) and the minimal R is back-solved, exactly as the paper
// evaluates its baselines ("we implement baselines as a static policy for
// the decision variable S and then solve for the lowest-cost recomputation
// schedule"). All baselines therefore run through the same plan generator
// and simulator as the Checkmate ILP.
#pragma once

#include <string>
#include <vector>

#include "core/remat_problem.h"
#include "core/solution.h"

namespace checkmate::baselines {

enum class BaselineKind {
  kCheckpointAll,
  kChenSqrtN,
  kChenGreedy,
  kGriewankLogN,
  kApSqrtN,
  kApGreedy,
  kLinearizedSqrtN,
  kLinearizedGreedy,
};

const char* to_string(BaselineKind kind);

struct BaselineSchedule {
  RematSolution solution;
  std::string label;  // e.g. "chen_greedy b=1.5GB"
};

struct BaselineSweepOptions {
  int greedy_grid_points = 14;       // budget-knob sweep for greedy variants
  int max_revolve_snapshots = 24;    // s sweep for REVOLVE
};

// True if the strategy can run on this problem (e.g. Chen/Griewank require
// a linear forward graph; the AP/Linearized generalizations always apply).
bool baseline_applicable(const RematProblem& p, BaselineKind kind);

// Candidate schedules for the strategy; heuristics with a knob return one
// schedule per knob value. Empty if inapplicable.
std::vector<BaselineSchedule> baseline_schedules(
    const RematProblem& p, BaselineKind kind,
    const BaselineSweepOptions& options = {});

// ---------------------------------------------------------------------
// Building blocks (exposed for tests and custom strategies).

// How non-checkpoint values are evicted by the policy simulator.
enum class EvictionMode {
  // Chen-style: checkpoints are never deallocated; other values die after
  // their last forward use (during the forward phase) or last use (during
  // the backward phase).
  kChenStyle,
  // Framework-style: every value (checkpoint or not) dies right after its
  // last remaining use. Used by Checkpoint-all.
  kLastUse,
};

// Simulates the retention policy induced by a checkpoint set, producing a
// feasible (R, S) schedule. `keep[i] == 1` marks forward values the policy
// pins in memory once computed.
RematSolution simulate_checkpoint_policy(const RematProblem& p,
                                         const std::vector<uint8_t>& keep,
                                         EvictionMode mode);

// All forward nodes in topological order (the Linearized candidate chain).
std::vector<NodeId> forward_chain_candidates(const RematProblem& p);

// Articulation points of the undirected forward subgraph, plus graph
// inputs (Section B.1 candidates).
std::vector<NodeId> articulation_candidates(const RematProblem& p);

// Chen sqrt(n): every ceil(sqrt(L))-th candidate.
std::vector<NodeId> chen_sqrt_n_select(const std::vector<NodeId>& candidates);

// Chen greedy: walk forward nodes accumulating activation memory; place a
// checkpoint at the next candidate once the running segment exceeds b.
std::vector<NodeId> chen_greedy_select(const RematProblem& p,
                                       const std::vector<NodeId>& candidates,
                                       double segment_budget_bytes);

// True if the forward subgraph is a simple path and backward nodes (if
// any) mirror it (the shape Chen/Griewank assume).
bool is_linear_forward(const RematProblem& p);

// Griewank & Walther REVOLVE with `snapshots` snapshot slots, expressed as
// an (R, S) schedule. Requires is_linear_forward and a backward pass.
RematSolution revolve_schedule(const RematProblem& p, int snapshots);

// Convenience: the framework-default schedule (no rematerialization).
RematSolution checkpoint_all_schedule(const RematProblem& p);

// Our extension (not in the paper's baseline set): a Belady-style
// budget-aware retention policy. After every stage, values are retained by
// ascending next-use stage until `retention_cap_bytes` is exhausted;
// everything else is dropped and rematerialized on demand. Used as a
// high-quality incumbent generator for branch & bound at tight budgets,
// where threshold rounding of the LP fails to land under budget.
RematSolution budget_aware_schedule(const RematProblem& p,
                                    double retention_cap_bytes);

}  // namespace checkmate::baselines
