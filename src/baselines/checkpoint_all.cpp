// Checkpoint-all lives in chen.cpp alongside the other policy-backed
// schedules; this translation unit provides the BaselineKind printing so
// the enum's catalogue has a single home.
#include "baselines/baselines.h"

namespace checkmate::baselines {

const char* to_string(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kCheckpointAll: return "checkpoint_all";
    case BaselineKind::kChenSqrtN: return "chen_sqrt_n";
    case BaselineKind::kChenGreedy: return "chen_greedy";
    case BaselineKind::kGriewankLogN: return "griewank_logn";
    case BaselineKind::kApSqrtN: return "ap_sqrt_n";
    case BaselineKind::kApGreedy: return "ap_greedy";
    case BaselineKind::kLinearizedSqrtN: return "linearized_sqrt_n";
    case BaselineKind::kLinearizedGreedy: return "linearized_greedy";
  }
  return "unknown";
}

}  // namespace checkmate::baselines
