#include <cmath>

#include "baselines/baselines.h"

namespace checkmate::baselines {

std::vector<NodeId> chen_sqrt_n_select(const std::vector<NodeId>& candidates) {
  const int l = static_cast<int>(candidates.size());
  if (l == 0) return {};
  const int k = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(l))));
  std::vector<NodeId> out;
  for (int idx = k; idx < l; idx += k) out.push_back(candidates[idx]);
  return out;
}

std::vector<NodeId> chen_greedy_select(const RematProblem& p,
                                       const std::vector<NodeId>& candidates,
                                       double segment_budget_bytes) {
  std::vector<uint8_t> is_candidate(p.size(), 0);
  for (NodeId v : candidates) is_candidate[v] = 1;

  std::vector<NodeId> out;
  double acc = 0.0;
  for (NodeId v = 0; v < p.size(); ++v) {
    if (p.is_backward[v]) continue;
    acc += p.memory[v];
    if (acc > segment_budget_bytes && is_candidate[v]) {
      out.push_back(v);
      acc = 0.0;
    }
  }
  return out;
}

RematSolution checkpoint_all_schedule(const RematProblem& p) {
  std::vector<uint8_t> keep(p.size(), 0);
  for (NodeId v = 0; v < p.size(); ++v)
    if (!p.is_backward[v]) keep[v] = 1;
  return simulate_checkpoint_policy(p, keep, EvictionMode::kLastUse);
}

}  // namespace checkmate::baselines
