#include <algorithm>
#include <cmath>

#include "baselines/baselines.h"

namespace checkmate::baselines {

namespace {

std::vector<uint8_t> keep_flags(const RematProblem& p,
                                const std::vector<NodeId>& checkpoints) {
  std::vector<uint8_t> keep(p.size(), 0);
  for (NodeId v : checkpoints) keep[v] = 1;
  // Inputs stay resident under every baseline policy (the paper's
  // heuristics never consider spilling the input batch).
  for (NodeId v = 0; v < p.size(); ++v)
    if (!p.is_backward[v] && p.graph.deps(v).empty()) keep[v] = 1;
  return keep;
}

std::string format_bytes(double bytes) {
  char buf[32];
  if (bytes >= 1e9)
    std::snprintf(buf, sizeof buf, "%.2fGB", bytes / 1e9);
  else if (bytes >= 1e6)
    std::snprintf(buf, sizeof buf, "%.1fMB", bytes / 1e6);
  else
    std::snprintf(buf, sizeof buf, "%.0fB", bytes);
  return buf;
}

std::vector<BaselineSchedule> sqrt_n_family(
    const RematProblem& p, const std::vector<NodeId>& candidates,
    const char* tag) {
  const std::vector<NodeId> cp = chen_sqrt_n_select(candidates);
  BaselineSchedule s;
  s.solution =
      simulate_checkpoint_policy(p, keep_flags(p, cp), EvictionMode::kChenStyle);
  s.label = std::string(tag) + " (" + std::to_string(cp.size()) + " ckpts)";
  return {std::move(s)};
}

std::vector<BaselineSchedule> greedy_family(
    const RematProblem& p, const std::vector<NodeId>& candidates,
    const char* tag, const BaselineSweepOptions& options) {
  // Sweep the segment-size knob b geometrically from the largest single
  // activation to the total forward footprint (Section 6.1: "we search
  // over the segment size hyperparameter b").
  double total = 0.0, largest = 0.0;
  for (NodeId v = 0; v < p.size(); ++v) {
    if (p.is_backward[v]) continue;
    total += p.memory[v];
    largest = std::max(largest, p.memory[v]);
  }
  largest = std::max(largest, 1.0);
  total = std::max(total, largest * 2);

  std::vector<BaselineSchedule> out;
  const int grid = std::max(2, options.greedy_grid_points);
  for (int g = 0; g < grid; ++g) {
    const double frac = static_cast<double>(g) / (grid - 1);
    const double b = largest * std::pow(total / largest, frac);
    const std::vector<NodeId> cp = chen_greedy_select(p, candidates, b);
    BaselineSchedule s;
    s.solution = simulate_checkpoint_policy(p, keep_flags(p, cp),
                                            EvictionMode::kChenStyle);
    s.label = std::string(tag) + " b=" + format_bytes(b) + " (" +
              std::to_string(cp.size()) + " ckpts)";
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

bool baseline_applicable(const RematProblem& p, BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kCheckpointAll:
    case BaselineKind::kApSqrtN:
    case BaselineKind::kApGreedy:
    case BaselineKind::kLinearizedSqrtN:
    case BaselineKind::kLinearizedGreedy:
      return true;
    case BaselineKind::kChenSqrtN:
    case BaselineKind::kChenGreedy:
      return is_linear_forward(p);
    case BaselineKind::kGriewankLogN:
      return is_linear_forward(p) && p.first_backward_stage() < p.size();
  }
  return false;
}

std::vector<BaselineSchedule> baseline_schedules(
    const RematProblem& p, BaselineKind kind,
    const BaselineSweepOptions& options) {
  if (!baseline_applicable(p, kind)) return {};
  switch (kind) {
    case BaselineKind::kCheckpointAll: {
      BaselineSchedule s;
      s.solution = checkpoint_all_schedule(p);
      s.label = "checkpoint_all";
      return {std::move(s)};
    }
    case BaselineKind::kChenSqrtN:
      return sqrt_n_family(p, forward_chain_candidates(p), "chen_sqrt_n");
    case BaselineKind::kLinearizedSqrtN:
      return sqrt_n_family(p, forward_chain_candidates(p), "lin_sqrt_n");
    case BaselineKind::kApSqrtN:
      return sqrt_n_family(p, articulation_candidates(p), "ap_sqrt_n");
    case BaselineKind::kChenGreedy:
      return greedy_family(p, forward_chain_candidates(p), "chen_greedy",
                           options);
    case BaselineKind::kLinearizedGreedy:
      return greedy_family(p, forward_chain_candidates(p), "lin_greedy",
                           options);
    case BaselineKind::kApGreedy:
      return greedy_family(p, articulation_candidates(p), "ap_greedy",
                           options);
    case BaselineKind::kGriewankLogN: {
      std::vector<BaselineSchedule> out;
      const int f = p.first_backward_stage();
      const int max_s = std::min(options.max_revolve_snapshots,
                                 std::max(1, f - 2));
      for (int s = 1; s <= max_s; ++s) {
        BaselineSchedule b;
        b.solution = revolve_schedule(p, s);
        b.label = "griewank_logn s=" + std::to_string(s);
        out.push_back(std::move(b));
      }
      return out;
    }
  }
  return {};
}

}  // namespace checkmate::baselines
