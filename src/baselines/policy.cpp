#include <algorithm>

#include "baselines/baselines.h"

namespace checkmate::baselines {

RematSolution simulate_checkpoint_policy(const RematProblem& p,
                                         const std::vector<uint8_t>& keep,
                                         EvictionMode mode) {
  const int n = p.size();
  const int first_bwd = p.first_backward_stage();

  RematSolution sol;
  sol.R = make_bool_matrix(n, n);
  sol.S = make_bool_matrix(n, n);
  std::vector<bool> resident(n, false);

  for (int t = 0; t < n; ++t) {
    for (int i = 0; i < t; ++i)
      if (resident[i]) sol.S[t][i] = 1;

    // In-stage recomputation closure: everything the frontier node needs
    // that is not resident gets recomputed (from the nearest resident
    // ancestors), evaluated in index order within the stage.
    std::vector<NodeId> stack{static_cast<NodeId>(t)};
    std::vector<bool> need(n, false);
    need[t] = true;
    while (!stack.empty()) {
      const NodeId j = stack.back();
      stack.pop_back();
      for (NodeId d : p.graph.deps(j)) {
        if (!resident[d] && !need[d]) {
          need[d] = true;
          stack.push_back(d);
        }
      }
    }
    for (int j = 0; j <= t; ++j) {
      if (need[j]) {
        sol.R[t][j] = 1;
        resident[j] = true;
      }
    }

    // End-of-stage eviction.
    const bool forward_phase = t < first_bwd;
    for (int i = 0; i <= t; ++i) {
      if (!resident[i]) continue;
      if (mode == EvictionMode::kChenStyle && keep[i]) continue;

      bool has_future_use = false;
      for (NodeId u : p.graph.users(i)) {
        if (u <= t) continue;
        // During the forward phase the Chen policy only retains values for
        // upcoming *forward* consumers; values whose remaining consumers
        // are all gradients are dropped and rematerialized later. The
        // frontier value is exempt (it was just produced and flows into
        // the next stage).
        if (mode == EvictionMode::kChenStyle && forward_phase && i != t &&
            p.is_backward[u])
          continue;
        has_future_use = true;
        break;
      }
      if (!has_future_use) resident[i] = false;
    }
  }
  return sol;
}

RematSolution budget_aware_schedule(const RematProblem& p,
                                    double retention_cap_bytes) {
  const int n = p.size();
  RematSolution sol;
  sol.R = make_bool_matrix(n, n);
  sol.S = make_bool_matrix(n, n);
  std::vector<bool> resident(n, false);

  for (int t = 0; t < n; ++t) {
    for (int i = 0; i < t; ++i)
      if (resident[i]) sol.S[t][i] = 1;

    // Recompute closure for the frontier node.
    std::vector<NodeId> stack{static_cast<NodeId>(t)};
    std::vector<bool> need(n, false);
    need[t] = true;
    while (!stack.empty()) {
      const NodeId j = stack.back();
      stack.pop_back();
      for (NodeId d : p.graph.deps(j))
        if (!resident[d] && !need[d]) {
          need[d] = true;
          stack.push_back(d);
        }
    }
    for (int j = 0; j <= t; ++j)
      if (need[j]) {
        sol.R[t][j] = 1;
        resident[j] = true;
      }

    // Belady eviction: retain by ascending next use until the cap fills.
    struct Candidate {
      NodeId node;
      NodeId next_use;
    };
    std::vector<Candidate> live;
    for (int i = 0; i <= t; ++i) {
      if (!resident[i]) continue;
      NodeId next = -1;
      for (NodeId u : p.graph.users(i))
        if (u > t && (next < 0 || u < next)) next = u;
      if (next < 0) {
        resident[i] = false;  // dead value
      } else {
        live.push_back({static_cast<NodeId>(i), next});
      }
    }
    std::sort(live.begin(), live.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.next_use < b.next_use;
              });
    double used = 0.0;
    for (const Candidate& c : live) {
      used += p.memory[c.node];
      if (used > retention_cap_bytes) resident[c.node] = false;
    }
  }
  return sol;
}

std::vector<NodeId> forward_chain_candidates(const RematProblem& p) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < p.size(); ++v)
    if (!p.is_backward[v]) out.push_back(v);
  return out;
}

std::vector<NodeId> articulation_candidates(const RematProblem& p) {
  // Build the forward subgraph with dense ids (forward ids are a prefix of
  // the full graph's ids, so they map one-to-one).
  const std::vector<NodeId> fwd = forward_chain_candidates(p);
  Graph sub(static_cast<int>(fwd.size()));
  for (NodeId v : fwd)
    for (NodeId u : p.graph.users(v))
      if (u < static_cast<NodeId>(fwd.size())) sub.add_edge(v, u);

  std::vector<NodeId> out;
  for (NodeId v : sub.articulation_points()) out.push_back(v);
  // Graph inputs are always candidates (trivially disconnect the DAG).
  for (NodeId v : fwd)
    if (p.graph.deps(v).empty() &&
        std::find(out.begin(), out.end(), v) == out.end())
      out.push_back(v);
  std::sort(out.begin(), out.end());
  return out;
}

bool is_linear_forward(const RematProblem& p) {
  const std::vector<NodeId> fwd = forward_chain_candidates(p);
  const int f = static_cast<int>(fwd.size());
  if (f == 0) return false;
  // Forward ids must be 0..f-1 (they precede all gradients).
  if (fwd.back() != f - 1) return false;
  for (NodeId v = 0; v < f; ++v) {
    int fwd_users = 0;
    for (NodeId u : p.graph.users(v))
      if (u < f) {
        if (u != v + 1) return false;
        ++fwd_users;
      }
    if (v + 1 < f && fwd_users != 1) return false;
    if (v + 1 == f && fwd_users != 0) return false;
  }
  return true;
}

}  // namespace checkmate::baselines
