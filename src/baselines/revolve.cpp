// Griewank & Walther's REVOLVE (binomial checkpointing, "Algorithm 799")
// expressed in Checkmate's (R, S) schedule space.
//
// The treeverse recursion reverses the chain segment (a, b] with s snapshot
// slots: it advances from a to a binomially-chosen midpoint, stores a
// snapshot there, recursively reverses the right segment with s-1 slots,
// releases the snapshot and reverses the left segment. We record, for each
// adjoint step k, the snapshot set held while gradient g_k is computed;
// those sets become the S rows of the backward stages, and the minimal
// recomputation R is implied (checkpoint restores + forward advances fall
// out of the (1b)/(1c) repairs, landing in the stages REVOLVE would run
// them).
#include <cmath>
#include <set>
#include <stdexcept>

#include "baselines/baselines.h"
#include "core/rounding.h"

namespace checkmate::baselines {

namespace {

// beta(s, t) = C(s+t, s): maximum chain length reversible with s snapshots
// and t forward sweeps. Saturating in double precision.
double beta(int s, int t) {
  double acc = 1.0;
  for (int i = 1; i <= s; ++i) acc *= static_cast<double>(t + i) / i;
  return acc;
}

// Binomial midpoint for segment (a, b] with s free snapshots.
int choose_mid(int a, int b, int s) {
  const int length = b - a;
  int t = 1;
  while (beta(s, t) < static_cast<double>(length) && t < 64) ++t;
  int mid = a + static_cast<int>(beta(s - 1, t - 1));
  mid = std::max(a + 1, std::min(b - 1, mid));
  return mid;
}

struct Treeverse {
  std::vector<std::set<int>>& snap_sets;  // indexed by adjoint step k

  void reverse(int a, int b, int s, std::set<int>& held) {
    if (b <= a) return;
    if (b == a + 1 || s <= 0) {
      // Every remaining adjoint step in this segment recomputes from the
      // currently held snapshots (quadratic fallback when s == 0; a single
      // one-step advance when b == a+1).
      for (int k = b; k > a; --k) snap_sets[k] = held;
      return;
    }
    const int mid = choose_mid(a, b, s);
    held.insert(mid);
    reverse(mid, b, s - 1, held);
    held.erase(mid);
    reverse(a, mid, s, held);
  }
};

}  // namespace

RematSolution revolve_schedule(const RematProblem& p, int snapshots) {
  if (!is_linear_forward(p))
    throw std::invalid_argument(
        "revolve_schedule: forward graph must be linear");
  const int n = p.size();
  const int f = p.first_backward_stage();
  if (f == n)
    throw std::invalid_argument("revolve_schedule: no backward pass");
  if (snapshots < 1)
    throw std::invalid_argument("revolve_schedule: need >= 1 snapshot");

  // Adjoint step k (gradient of forward node k) runs at stage grad_stage[k].
  std::vector<int> grad_stage(f, -1);
  for (int g = f; g < n; ++g) {
    const NodeId k = p.grad_of[g];
    if (k < 0 || k >= f || grad_stage[k] != -1)
      throw std::invalid_argument("revolve_schedule: malformed backward pass");
    grad_stage[k] = g;
  }

  std::vector<std::set<int>> snap_sets(f);
  std::set<int> held{0};
  Treeverse tv{snap_sets};
  tv.reverse(0, f - 1, snapshots, held);

  RematSolution sol;
  sol.S = make_bool_matrix(n, n);

  // Forward stages: snapshots from the initial sweep (the set held at the
  // first adjoint step) plus the one-stage frontier chain.
  const std::set<int>& initial_snaps = snap_sets[f - 1];
  for (int t = 1; t < f; ++t) {
    for (int snap : initial_snaps)
      if (snap < t) sol.S[t][snap] = 1;
    sol.S[t][t - 1] = 1;
  }

  // Backward stages: held snapshots + the previous gradient.
  for (int k = f - 1; k >= 1; --k) {
    const int t = grad_stage[k];
    if (t < 0) continue;
    for (int snap : snap_sets[k])
      if (snap < t) sol.S[t][snap] = 1;
    if (k + 1 < f && grad_stage[k + 1] >= 0)
      sol.S[t][grad_stage[k + 1]] = 1;
    if (k == f - 1) {
      // First backward stage: the just-computed tail of the forward pass
      // (loss and its input) is still live.
      sol.S[t][f - 1] = 1;
      if (f >= 2) sol.S[t][f - 2] = 1;
    }
  }

  sol.R = solve_r_given_s(p.graph, sol.S);
  return sol;
}

}  // namespace checkmate::baselines
