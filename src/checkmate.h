// Umbrella header: the full public API of the Checkmate C++ library.
//
// Quickstart:
//
//   #include "checkmate.h"
//   using namespace checkmate;
//
//   auto net   = model::zoo::vgg16(/*batch=*/32);
//   auto train = model::make_training_graph(net);
//   auto prob  = RematProblem::from_dnn(train,
//                                       model::CostMetric::kProfiledTimeUs);
//   Scheduler sched(prob);
//   auto result = sched.solve_optimal_ilp(/*budget_bytes=*/8e9);
//   // result.plan is the rematerialization schedule; result.sim validates
//   // cost and peak memory.
#pragma once

#include "baselines/baselines.h"
#include "core/batch_search.h"
#include "core/ilp_builder.h"
#include "core/plan.h"
#include "core/remat_problem.h"
#include "core/rounding.h"
#include "core/scheduler.h"
#include "core/simulator.h"
#include "core/solution.h"
#include "graph/graph.h"
#include "lp/dense_simplex.h"
#include "lp/lp_problem.h"
#include "lp/simplex.h"
#include "milp/milp.h"
#include "model/autodiff.h"
#include "model/cost_model.h"
#include "model/graph_builder.h"
#include "model/model_stats.h"
#include "model/zoo.h"
#include "service/formulation_cache.h"
#include "service/plan_service.h"
#include "service/solve_pool.h"
