#include "core/batch_search.h"

#include "baselines/baselines.h"
#include "core/ilp_builder.h"
#include "core/rounding.h"
#include "milp/milp.h"

namespace checkmate {

MaxBatchResult max_batch_size(const ProblemFactory& factory,
                              const FeasibilityProbe& probe,
                              const MaxBatchOptions& options) {
  MaxBatchResult result;
  auto check = [&](int64_t b) {
    const RematProblem p = factory(b);
    const bool ok = probe(p);
    result.probes.push_back({b, ok});
    return ok;
  };

  if (!check(options.min_batch)) return result;  // max_batch = 0

  // Exponential growth to bracket the frontier.
  int64_t lo = options.min_batch;
  int64_t hi = lo;
  while (hi < options.max_batch) {
    const int64_t next = std::min(options.max_batch, hi * 2);
    if (next == hi) break;
    if (check(next)) {
      lo = hi = next;
    } else {
      hi = next;
      break;
    }
  }
  if (hi == lo) {  // feasible all the way to max_batch
    result.max_batch = lo;
    return result;
  }
  // Invariant: lo feasible, hi infeasible.
  while (hi - lo > 1) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (check(mid))
      lo = mid;
    else
      hi = mid;
  }
  result.max_batch = lo;
  return result;
}

FeasibilityProbe make_ilp_probe(double budget_bytes,
                                double per_probe_time_limit_sec,
                                const milp::MilpOptions& base_milp) {
  return [budget_bytes, per_probe_time_limit_sec,
          base_milp](const RematProblem& p) {
    // Cheap necessary condition: the structural working-set floor must fit.
    if (p.memory_floor() > budget_bytes) return false;
    const double cost_cap = 2.0 * p.forward_cost() + p.backward_cost();

    // Sufficient condition: any baseline schedule under budget and cap
    // proves feasibility without touching the MILP.
    using baselines::BaselineKind;
    for (auto kind :
         {BaselineKind::kCheckpointAll, BaselineKind::kLinearizedGreedy}) {
      for (const auto& s : baselines::baseline_schedules(p, kind)) {
        if (peak_memory_usage(p, s.solution) <= budget_bytes &&
            s.solution.compute_cost(p) <= cost_cap)
          return true;
      }
    }
    const double headroom = budget_bytes - p.fixed_overhead;
    for (double frac : {0.85, 0.6, 0.4, 0.25, 0.12}) {
      auto s = baselines::budget_aware_schedule(p, frac * headroom);
      if (peak_memory_usage(p, s) <= budget_bytes &&
          s.compute_cost(p) <= cost_cap)
        return true;
    }

    IlpBuildOptions build;
    build.budget_bytes = budget_bytes;
    build.cost_cap = cost_cap;
    const IlpFormulation form(p, build);

    milp::MilpOptions mopts = base_milp;
    mopts.time_limit_sec = per_probe_time_limit_sec;
    mopts.stop_at_first_incumbent = true;
    mopts.branch_priority = form.branch_priorities();

    milp::IncumbentHeuristic heuristic =
        [&form, &p](const std::vector<double>& x)
        -> std::optional<std::vector<double>> {
      RematSolution rounded =
          two_phase_round(p.graph, form.extract_fractional_s(x));
      // assemble_assignment enforces the budget; the cost cap is checked by
      // the MILP's feasibility validation of the candidate.
      return form.assemble_assignment(rounded);
    };

    const milp::MilpResult res = milp::solve_milp(form.lp(), mopts, heuristic);
    return res.has_solution();
  };
}

}  // namespace checkmate
