#include "core/batch_search.h"

#include <map>
#include <memory>

#include "baselines/baselines.h"
#include "core/ilp_builder.h"
#include "core/rounding.h"
#include "milp/milp.h"
#include "service/plan_service.h"

namespace checkmate {

MaxBatchResult max_batch_size(const ProblemFactory& factory,
                              const FeasibilityProbe& probe,
                              const MaxBatchOptions& options) {
  MaxBatchResult result;
  // Memoized probe: each batch size is built and solved at most once per
  // search, whatever path the growth/bisection phases take, and the probe
  // trace stays free of duplicates.
  std::map<int64_t, bool> memo;
  auto check = [&](int64_t b) {
    auto it = memo.find(b);
    if (it != memo.end()) return it->second;
    bool ok = false;
    try {
      const RematProblem p = factory(b);
      if (b == options.min_batch)
        result.min_batch_memory_floor_bytes = p.memory_floor();
      ok = probe(p);
    } catch (const std::exception&) {
      // A probe that dies proves nothing about feasibility; counting it
      // infeasible keeps the search monotone and never aborts the caller.
      ok = false;
    }
    memo.emplace(b, ok);
    result.probes.push_back({b, ok});
    return ok;
  };

  if (!check(options.min_batch)) {
    // Typed instead of garbage: max_batch stays 0 and the min_batch
    // instance's memory floor serves as the certificate whenever it
    // exceeds the budget (then no batch size can ever fit).
    result.infeasible_at_min_batch = true;
    return result;
  }

  // Exponential growth to bracket the frontier.
  int64_t lo = options.min_batch;
  int64_t hi = lo;
  while (hi < options.max_batch) {
    const int64_t next = std::min(options.max_batch, hi * 2);
    if (next == hi) break;
    if (check(next)) {
      lo = hi = next;
    } else {
      hi = next;
      break;
    }
  }
  if (hi == lo) {  // feasible all the way to max_batch
    result.max_batch = lo;
    return result;
  }
  // Invariant: lo feasible, hi infeasible.
  while (hi - lo > 1) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (check(mid))
      lo = mid;
    else
      hi = mid;
  }
  result.max_batch = lo;
  return result;
}

FeasibilityProbe make_ilp_probe(double budget_bytes,
                                double per_probe_time_limit_sec,
                                const milp::MilpOptions& base_milp) {
  // One plan service per probe: each bisection step is a distinct problem
  // (the batch scales the memories), but repeated probes of one batch size
  // -- or a later re-bracketing pass -- hit the cached formulation. The
  // service is shared across copies of the returned std::function.
  auto service = std::make_shared<service::PlanService>();
  return [budget_bytes, per_probe_time_limit_sec, base_milp,
          service](const RematProblem& p) {
    // Cheap necessary condition: the structural working-set floor must fit.
    if (p.memory_floor() > budget_bytes) return false;
    const double cost_cap = 2.0 * p.forward_cost() + p.backward_cost();

    // Sufficient condition: any baseline schedule under budget and cap
    // proves feasibility without touching the MILP.
    using baselines::BaselineKind;
    for (auto kind :
         {BaselineKind::kCheckpointAll, BaselineKind::kLinearizedGreedy}) {
      for (const auto& s : baselines::baseline_schedules(p, kind)) {
        if (peak_memory_usage(p, s.solution) <= budget_bytes &&
            s.solution.compute_cost(p) <= cost_cap)
          return true;
      }
    }
    const double headroom = budget_bytes - p.fixed_overhead;
    for (double frac : {0.85, 0.6, 0.4, 0.25, 0.12}) {
      auto s = baselines::budget_aware_schedule(p, frac * headroom);
      if (peak_memory_usage(p, s) <= budget_bytes &&
          s.compute_cost(p) <= cost_cap)
        return true;
    }

    // MILP feasibility through the plan service (cost cap keyed into the
    // formulation cache; first-incumbent mode).
    IlpSolveOptions opts;
    opts.time_limit_sec = per_probe_time_limit_sec;
    opts.stop_at_first_incumbent = true;
    opts.cost_cap = cost_cap;
    opts.presolve = base_milp.presolve;
    opts.pseudocost_branching = base_milp.pseudocost_branching;
    opts.node_selection = base_milp.node_selection;
    opts.relative_gap = base_milp.relative_gap;
    if (base_milp.max_lp_iterations !=
        std::numeric_limits<int64_t>::max())
      opts.max_lp_iterations = base_milp.max_lp_iterations;
    if (base_milp.max_nodes != milp::MilpOptions{}.max_nodes)
      opts.max_nodes = base_milp.max_nodes;
    const ScheduleResult res = service->plan(p, budget_bytes, opts);
    return res.feasible;
  };
}

}  // namespace checkmate
