// Maximum-batch-size search (Section 6.4, Figure 6).
//
// The paper turns the batch size B into a decision variable, yielding a
// quadratically-constrained MILP. We instead binary-search integral B,
// solving a *linear* feasibility problem per probe: budget constraint with
// the batch-scaled memories and the Eq. 10 cost cap
//
//   sum_t sum_i C_i R[t][i] <= 2 * C(forward) + C(backward),
//
// i.e. at most one extra forward pass of recomputation. Feasibility is
// monotone non-increasing in B, so the search returns the same lower bound
// on the max batch as the paper's formulation (DESIGN.md substitution (b)).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/remat_problem.h"
#include "milp/milp.h"

namespace checkmate {

// Builds the problem instance at a given batch size.
using ProblemFactory = std::function<RematProblem(int64_t batch)>;

// Decides whether some schedule fits budget and cost cap for the instance.
using FeasibilityProbe = std::function<bool(const RematProblem&)>;

struct MaxBatchOptions {
  double budget_bytes = 16.0 * (1ull << 30);  // V100: 16 GB
  int64_t min_batch = 1;
  int64_t max_batch = 1 << 16;
};

struct BatchProbe {
  int64_t batch = 0;
  bool feasible = false;
};

struct MaxBatchResult {
  int64_t max_batch = 0;  // 0: not even min_batch fits
  std::vector<BatchProbe> probes;
  // Typed outcome for the max_batch == 0 case: the min_batch instance
  // itself does not fit. memory_floor_bytes records that instance's
  // structural memory floor (largest single-stage working set, i.e. the
  // checkpoint-nothing minimum) -- when it exceeds the probe's budget the
  // infeasibility is *proven* for every batch size; otherwise the probe
  // merely found no schedule. A probe that throws (numerical failure,
  // injected fault) counts as infeasible rather than escaping the search.
  bool infeasible_at_min_batch = false;
  double min_batch_memory_floor_bytes = 0.0;
};

// Exponential growth + binary search over the feasibility probe. Probes
// are memoized by batch size, so each B is built and solved at most once
// per search and `probes` never contains duplicates.
MaxBatchResult max_batch_size(const ProblemFactory& factory,
                              const FeasibilityProbe& probe,
                              const MaxBatchOptions& options = {});

// Probe backed by the Checkmate MILP in first-incumbent (feasibility) mode,
// with the Eq. 10 cost cap. `budget_bytes` matches MaxBatchOptions.
// `base_milp` carries the solver knobs -- honored fields: presolve,
// pseudocost_branching, node_selection, relative_gap and the deterministic
// max_lp_iterations / max_nodes work limits; time limit and feasibility
// mode are overridden per probe, the remaining MilpOptions fields keep the
// scheduler-path defaults. Solves are routed through a service::PlanService
// shared by all copies of the returned probe, so re-probed instances hit
// the formulation cache.
FeasibilityProbe make_ilp_probe(double budget_bytes,
                                double per_probe_time_limit_sec = 30.0,
                                const milp::MilpOptions& base_milp = {});

}  // namespace checkmate
