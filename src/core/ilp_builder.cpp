#include "core/ilp_builder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace checkmate {

namespace {
using Term = std::pair<int, double>;
}

IlpFormulation::IlpFormulation(const RematProblem& problem,
                               const IlpBuildOptions& options)
    : problem_(&problem), opts_(options) {
  problem.validate();
  if (opts_.budget_bytes <= 0.0)
    throw std::invalid_argument("IlpFormulation: budget must be positive");
  if (opts_.formulation == IlpFormulationKind::kInterval)
    build_interval();
  else
    build();
}

void IlpFormulation::build() {
  const RematProblem& p = *problem_;
  const int n = p.size();
  const bool part = opts_.partitioned;

  // ---- Scaling. Memory in budget-percent units, cost relative to max.
  // The scale is frozen at construction: set_budget() later moves only the
  // U upper bounds, never the constraint coefficients derived here.
  mem_scale_ = opts_.budget_bytes / 100.0;
  cost_scale_ = 1.0;
  for (double c : p.cost) cost_scale_ = std::max(cost_scale_, c);
  const double budget = opts_.budget_bytes / mem_scale_;  // == 100
  const double overhead = p.fixed_overhead / mem_scale_;
  std::vector<double> mem(n), cost(n);
  for (int v = 0; v < n; ++v) {
    mem[v] = p.memory[v] / mem_scale_;
    cost[v] = p.cost[v] / cost_scale_;
  }
  mem_scaled_ = mem;
  overhead_scaled_ = overhead;

  // ---- Variables.
  r_.assign(n, std::vector<int>(n, -1));
  s_.assign(n, std::vector<int>(n, -1));
  u_.assign(n, std::vector<int>(n, -1));
  free_.assign(n, {});

  for (int t = 0; t < n; ++t) {
    const int r_hi = part ? t : n - 1;
    for (int i = 0; i <= r_hi; ++i) {
      // (8a): R[t][t] fixed to 1 in the partitioned form.
      const double lb = (part && i == t) ? 1.0 : 0.0;
      r_[t][i] = lp_.add_var(lb, 1.0, cost[i], /*integer=*/true,
                             "R_" + std::to_string(t) + "_" +
                                 std::to_string(i));
    }
    // (1d)/(8b): no stage-0 checkpoints; lower-triangular S when partitioned.
    if (t >= 1) {
      const int s_hi = part ? t - 1 : n - 1;
      for (int i = 0; i <= s_hi; ++i)
        s_[t][i] = lp_.add_var(0.0, 1.0, 0.0, /*integer=*/true,
                               "S_" + std::to_string(t) + "_" +
                                   std::to_string(i));
    }
    const int u_hi = part ? t : n - 1;
    for (int k = 0; k <= u_hi; ++k) {
      u_[t][k] = lp_.add_var(0.0, budget, 0.0, /*integer=*/false,
                             "U_" + std::to_string(t) + "_" +
                                 std::to_string(k));
      u_flat_.push_back(u_[t][k]);
    }
    for (int k = 0; k <= u_hi; ++k) {
      for (NodeId i : p.graph.deps(k)) {
        const int var = lp_.add_var(0.0, 1.0, 0.0, /*integer=*/true,
                                    "F_" + std::to_string(t) + "_" +
                                        std::to_string(i) + "_" +
                                        std::to_string(k));
        free_[t].push_back({i, static_cast<NodeId>(k), var});
      }
      if (!opts_.eliminate_diag_free) {
        const int var = lp_.add_var(0.0, 1.0, 0.0, /*integer=*/true,
                                    "F_" + std::to_string(t) + "_" +
                                        std::to_string(k) + "_" +
                                        std::to_string(k));
        free_[t].push_back({static_cast<NodeId>(k), static_cast<NodeId>(k),
                            var});
      }
    }
  }

  auto r_at = [&](int t, int i) { return r_[t][i]; };
  auto s_at = [&](int t, int i) { return t < n ? s_[t][i] : -1; };

  // ---- (1b): R[t][j] <= R[t][i] + S[t][i] for each edge (i, j).
  for (int t = 0; t < n; ++t) {
    for (const Edge& e : p.graph.edges()) {
      if (r_at(t, e.dst) < 0) continue;  // above diagonal
      std::vector<Term> terms{{r_at(t, e.dst), 1.0}};
      if (r_at(t, e.src) >= 0) terms.push_back({r_at(t, e.src), -1.0});
      if (s_at(t, e.src) >= 0) terms.push_back({s_at(t, e.src), -1.0});
      lp_.add_le(terms, 0.0);
    }
  }

  // ---- (1c): S[t][i] <= R[t-1][i] + S[t-1][i].
  for (int t = 1; t < n; ++t) {
    for (int i = 0; i < n; ++i) {
      if (s_at(t, i) < 0) continue;
      std::vector<Term> terms{{s_at(t, i), 1.0}};
      if (r_at(t - 1, i) >= 0) terms.push_back({r_at(t - 1, i), -1.0});
      if (s_at(t - 1, i) >= 0) terms.push_back({s_at(t - 1, i), -1.0});
      lp_.add_le(terms, 0.0);
    }
  }

  // ---- (1e) for the unpartitioned form: terminal node computed somewhere.
  if (!part) {
    std::vector<Term> terms;
    for (int t = 0; t < n; ++t) terms.push_back({r_at(t, n - 1), 1.0});
    lp_.add_ge(terms, 1.0);
  }

  // ---- Memory accounting (2)-(3) and FREE linearization (7a)-(7c).
  for (int t = 0; t < n; ++t) {
    const int u_hi = opts_.partitioned ? t : n - 1;

    // Group the stage's FREE variables by their user node k.
    std::vector<std::vector<const FreeVar*>> by_k(n);
    for (const FreeVar& fv : free_[t]) by_k[fv.k].push_back(&fv);

    // U[t][0] = overhead + sum_i M_i S[t][i] + M_0 R[t][0].
    {
      std::vector<Term> terms{{u_[t][0], 1.0}};
      for (int i = 0; i < n; ++i)
        if (s_at(t, i) >= 0) terms.push_back({s_at(t, i), -mem[i]});
      if (r_at(t, 0) >= 0) terms.push_back({r_at(t, 0), -mem[0]});
      lp_.add_eq(terms, overhead);
    }
    // U[t][k+1] = U[t][k] - mem_freed_t(v_k) + M_{k+1} R[t][k+1].
    for (int k = 0; k + 1 <= u_hi; ++k) {
      std::vector<Term> terms{{u_[t][k + 1], 1.0}, {u_[t][k], -1.0}};
      for (const FreeVar* fv : by_k[k]) terms.push_back({fv->var, mem[fv->i]});
      terms.push_back({r_at(t, k + 1), -mem[k + 1]});
      lp_.add_eq(terms, 0.0);
    }

    // (7b)-(7c) with num_hazards(t,i,k) =
    //   (1 - R[t][k]) + S[t+1][i] + sum_{j in USERS[i], k < j <= t} R[t][j].
    for (const FreeVar& fv : free_[t]) {
      std::vector<Term> hazard;  // linear part of num_hazards
      double hazard_const = 1.0;  // the "+1" of (1 - R[t][k])
      hazard.push_back({r_at(t, fv.k), -1.0});
      if (t + 1 < n && s_at(t + 1, fv.i) >= 0)
        hazard.push_back({s_at(t + 1, fv.i), 1.0});
      double kappa = 2.0;  // (1-R) and S each contribute at most 1
      for (NodeId j : p.graph.users(fv.i)) {
        if (j <= fv.k) continue;
        if (r_at(t, j) < 0) continue;  // above diagonal: R[t][j] == 0
        hazard.push_back({r_at(t, j), 1.0});
        kappa += 1.0;
      }
      // (7b): 1 - FREE <= hazard  =>  FREE + hazard >= 1.
      {
        std::vector<Term> terms = hazard;
        terms.push_back({fv.var, 1.0});
        lp_.add_ge(terms, 1.0 - hazard_const);
      }
      // (7c): kappa (1 - FREE) >= hazard  =>  kappa*FREE + hazard <= kappa.
      {
        std::vector<Term> terms = hazard;
        terms.push_back({fv.var, kappa});
        lp_.add_le(terms, kappa - hazard_const);
      }
    }
  }

  // ---- Optional total-cost cap (Eq. 10).
  if (opts_.cost_cap) {
    std::vector<Term> terms;
    for (int t = 0; t < n; ++t)
      for (int i = 0; i < n; ++i)
        if (r_at(t, i) >= 0) terms.push_back({r_at(t, i), cost[i]});
    lp_.add_le(terms, *opts_.cost_cap / cost_scale_);
  }
}

void IlpFormulation::set_budget(double budget_bytes) {
  if (budget_bytes <= 0.0)
    throw std::invalid_argument("set_budget: budget must be positive");
  opts_.budget_bytes = budget_bytes;
  const double scaled = budget_bytes / mem_scale_;
  for (int var : u_flat_) lp_.ub[var] = scaled;
}

milp::FormulationStructure IlpFormulation::cut_structure() const {
  if (opts_.formulation == IlpFormulationKind::kInterval)
    return cut_structure_interval();
  const RematProblem& p = *problem_;
  const int n = p.size();
  milp::FormulationStructure s;

  // Stage-entry knapsacks: U[t][0] = overhead + sum_i M_i S[t][i]
  // + M_0 R[t][0] is an equality, so the binaries on its right-hand side
  // form a knapsack under ub(U[t][0]) - overhead. Valid in both forms.
  for (int t = 0; t < n; ++t) {
    milp::KnapsackRow row;
    row.capacity_var = u_[t][0];
    row.capacity_offset = overhead_scaled_;
    for (int i = 0; i < n; ++i)
      if (s_[t][i] >= 0 && mem_scaled_[i] > 0.0)
        row.items.push_back({s_[t][i], mem_scaled_[i]});
    if (r_[t][0] >= 0 && mem_scaled_[0] > 0.0)
      row.items.push_back({r_[t][0], mem_scaled_[0]});
    if (row.items.size() >= 2) s.knapsacks.push_back(std::move(row));
  }

  // Precedence-strengthened end-of-stage knapsacks (partitioned form
  // only, where R[t][t] == 1 is fixed). At U[t][t] -- just after v_t is
  // computed -- three groups are forcibly resident:
  //   - v_t itself (just computed, freed no earlier than the next step);
  //   - every dependency of t: (1b) forces R[t][i] + S[t][i] >= 1, and the
  //     FREE hazard rows forbid freeing a value before its last in-stage
  //     user, which includes t;
  //   - every value checkpointed into stage t+1: S[t+1][i] = 1 enters the
  //     hazard of every FREE[t][i][k], so i is never freed in stage t.
  // The first two are constants (fold into the capacity offset); the
  // third gives the knapsack items. Strictly tighter than the stage-entry
  // row whenever t has dependencies with nonzero memory.
  if (opts_.partitioned) {
    for (int t = 0; t + 1 < n; ++t) {
      milp::KnapsackRow row;
      row.capacity_var = u_[t][t];
      double forced = overhead_scaled_ + mem_scaled_[t];
      std::vector<uint8_t> is_dep(n, 0);
      for (NodeId i : p.graph.deps(t)) {
        is_dep[i] = 1;
        forced += mem_scaled_[i];
      }
      row.capacity_offset = forced;
      for (int i = 0; i < n; ++i) {
        if (i == t || is_dep[i]) continue;
        if (s_[t + 1][i] >= 0 && mem_scaled_[i] > 0.0)
          row.items.push_back({s_[t + 1][i], mem_scaled_[i]});
      }
      if (row.items.size() >= 2) s.knapsacks.push_back(std::move(row));
    }
  }
  return s;
}

std::vector<int> IlpFormulation::branch_priorities() const {
  std::vector<int> prio(lp_.num_vars(), 0);
  for (const auto& row : s_)
    for (int v : row)
      if (v >= 0) prio[v] = 2;
  for (const auto& row : r_)
    for (int v : row)
      if (v >= 0) prio[v] = 1;
  return prio;
}

RematSolution IlpFormulation::extract_solution(
    const std::vector<double>& x) const {
  const int n = problem_->size();
  RematSolution sol;
  sol.R = make_bool_matrix(n, n);
  sol.S = make_bool_matrix(n, n);
  for (int t = 0; t < n; ++t)
    for (int i = 0; i < n; ++i) {
      if (r_[t][i] >= 0 && x[r_[t][i]] >= 0.5) sol.R[t][i] = 1;
      if (s_[t][i] >= 0 && x[s_[t][i]] >= 0.5) sol.S[t][i] = 1;
    }
  return sol;
}

std::vector<std::vector<double>> IlpFormulation::extract_fractional_s(
    const std::vector<double>& x) const {
  const int n = problem_->size();
  std::vector<std::vector<double>> s(n, std::vector<double>(n, 0.0));
  for (int t = 0; t < n; ++t)
    for (int i = 0; i < n; ++i)
      if (s_[t][i] >= 0) s[t][i] = x[s_[t][i]];
  return s;
}

std::optional<std::vector<double>> IlpFormulation::assemble_assignment(
    const RematSolution& sol) const {
  if (opts_.formulation == IlpFormulationKind::kInterval)
    return assemble_assignment_interval(sol);
  const RematProblem& p = *problem_;
  const int n = p.size();
  if (!sol.check_feasible(p).empty()) return std::nullopt;

  std::vector<double> x(lp_.num_vars(), 0.0);
  for (int t = 0; t < n; ++t)
    for (int i = 0; i < n; ++i) {
      if (r_[t][i] >= 0) x[r_[t][i]] = sol.R[t][i] ? 1.0 : 0.0;
      if (s_[t][i] >= 0) x[s_[t][i]] = sol.S[t][i] ? 1.0 : 0.0;
      if (r_[t][i] < 0 && sol.R[t][i]) return std::nullopt;
      if (s_[t][i] < 0 && sol.S[t][i]) return std::nullopt;
    }

  // FREE per Eq. 5 (hazard counting mirrors the constraint exactly).
  auto s_next = [&](int t, int i) -> uint8_t {
    return t + 1 < n ? sol.S[t + 1][i] : 0;
  };
  for (int t = 0; t < n; ++t) {
    for (const FreeVar& fv : free_[t]) {
      if (!sol.R[t][fv.k] || s_next(t, fv.i)) continue;
      bool hazard = false;
      for (NodeId j : p.graph.users(fv.i))
        if (j > fv.k && j <= t && sol.R[t][j]) {
          hazard = true;
          break;
        }
      if (!hazard) x[fv.var] = 1.0;
    }
  }

  // U via the exact recurrence; reject if over budget.
  const auto usage = compute_memory_usage(p, sol);
  for (int t = 0; t < n; ++t) {
    const int u_hi = opts_.partitioned ? t : n - 1;
    for (int k = 0; k <= u_hi; ++k) {
      // In the partitioned form usage[t] has exactly t+1 entries; in the
      // unpartitioned form U[t][k] for k > t equals U[t][t] (nothing
      // happens after the last computable node -- R above diagonal is not
      // fixed there, so fall back to the last computed value).
      const double bytes =
          k < static_cast<int>(usage[t].size()) ? usage[t][k] : usage[t].back();
      if (bytes > opts_.budget_bytes + 1e-6) return std::nullopt;
      x[u_[t][k]] = bytes / mem_scale_;
    }
  }
  return x;
}

}  // namespace checkmate
