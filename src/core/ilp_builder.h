// Builds the Checkmate mixed-integer linear program (Problem 9).
//
// Variables (all per stage t):
//   R[t][i]      operation i recomputed in stage t            (binary)
//   S[t][i]      value i retained from stage t-1 into t       (binary)
//   U[t][k]      bytes in use just after computing v_k        (continuous)
//   FREE[t][i,k] value i freed after computing its user v_k   (binary)
//
// Constraints: dependency correctness (1b), checkpoint liveness (1c), the
// memory accounting recurrence (2)-(3) with the linearized FREE definition
// (7a)-(7c), the budget U <= M_budget (as a variable upper bound), and --
// in the default partitioned form -- the frontier-advancing constraints
// (8a)-(8c) of Section 4.6. Diagonal FREE[t][k][k] variables are eliminated
// per Section 4.8. The unpartitioned variant (Appendix A) replaces (8a-8c)
// with (1d)-(1e).
//
// Memory coefficients are rescaled so the budget is O(100) and costs so the
// largest cost is 1; raw byte counts (up to 2^31) would otherwise wreck the
// simplex tolerances.
#pragma once

#include <optional>

#include "core/remat_problem.h"
#include "core/solution.h"
#include "lp/lp_problem.h"
#include "milp/cuts.h"

namespace checkmate {

// Which MILP encoding of the rematerialization problem to build.
//
//   kDense     Problem 9 verbatim: per-step memory accounting U[t][k] with
//              the FREE deallocation linearization. Exact eager-free
//              semantics, O(n^2) binaries plus O(n E) FREE variables.
//   kInterval  Moccasin-style retention intervals: a value computed or
//              carried in stage t is charged to stage t's single residency
//              row for the whole stage, so each (re)computation of value i
//              opens one retention interval [t_compute, t_drop) over
//              stages and the per-stage memory row is assembled from
//              interval membership (S[t][i] = carried in, R[t][i] =
//              (re)computed here; constraint (1c) is the interval-chaining
//              row). Drops per-step accounting entirely -- no U recurrence,
//              no FREE variables -- shrinking the LP by an order of
//              magnitude on deep graphs. The schedule class is a
//              restriction of the dense one: stage-granular residency
//              instead of eager intra-stage frees, and backward (gradient)
//              nodes are computed exactly once at their own stage, never
//              rematerialized. Every solution is dense-feasible and
//              simulator-valid; the equivalence suite
//              (tests/test_interval_formulation.cpp) cross-checks proven
//              objectives against the dense backend on every small
//              instance. Partitioned form only.
enum class IlpFormulationKind { kDense, kInterval };

struct IlpBuildOptions {
  double budget_bytes = 0.0;
  bool partitioned = true;          // frontier-advancing stages (Section 4.6)
  bool eliminate_diag_free = true;  // Section 4.8
  // Backend selection; see IlpFormulationKind.
  IlpFormulationKind formulation = IlpFormulationKind::kDense;
  // Optional cap on total recomputation cost (Eq. 10, in original cost
  // units): sum C_i R[t][i] <= cost_cap.
  std::optional<double> cost_cap;
};

class IlpFormulation {
 public:
  IlpFormulation(const RematProblem& problem, const IlpBuildOptions& options);

  const lp::LinearProgram& lp() const { return lp_; }
  lp::LinearProgram& mutable_lp() { return lp_; }
  const IlpBuildOptions& options() const { return opts_; }
  const RematProblem& problem() const { return *problem_; }

  // Rebinds the memory budget in place. The budget enters the formulation
  // only as the upper bound of the U variables (memory coefficients are
  // scaled by a factor frozen at construction time), so a sweep over
  // budgets can reuse one built formulation: only num-U variable bounds
  // change, every constraint row stays identical. This is what makes the
  // plan service's formulation cache sound (src/service/).
  void set_budget(double budget_bytes);

  // Budget in the LP's scaled memory units (the U upper bound).
  double scale_budget(double budget_bytes) const {
    return budget_bytes / mem_scale_;
  }

  // Indices of every U variable (targets of a budget rebind), ascending.
  const std::vector<int>& u_var_indices() const { return u_flat_; }

  // Branching priorities: S > R > FREE (checkpoint decisions dominate).
  std::vector<int> branch_priorities() const;

  // Structural view for the branch & cut separators (milp/cuts.h): the
  // memory-budget rows as 0/1 knapsacks over the S/R binaries with
  // coefficients from the (scaled) tensor-size vector. Two families:
  //   - stage-entry rows U[t][0] = overhead + sum M_i S[t][i] + M_0 R[t][0]
  //     give a plain knapsack per stage;
  //   - (partitioned form) end-of-stage rows exploit the precedence
  //     structure: while computing v_t at stage t every dependency of t is
  //     forcibly live (R[t][t] = 1 plus the hazard rows pin them), and any
  //     value checkpointed into stage t+1 is still resident at U[t][t] --
  //     so sum_{i not in deps(t)} M_i S[t+1][i] fits under
  //     ub(U[t][t]) - overhead - M_t - sum_{deps(t)} M_i, a strictly
  //     tighter capacity than the plain row.
  // Capacities are expressed through the U columns' upper bounds, so the
  // view survives set_budget() rebinds and presolve tightenings unchanged;
  // column indices survive presolve (no renumbering). The view is cheap to
  // build and does not reference this formulation after construction.
  milp::FormulationStructure cut_structure() const;

  // Converts an LP-space objective value back to problem cost units.
  double unscale_cost(double scaled) const { return scaled * cost_scale_; }
  double scale_cost(double unscaled) const { return unscaled / cost_scale_; }

  // Variable lookups (-1 where a variable does not exist, e.g. above the
  // diagonal in the partitioned form).
  int r_var(int t, int i) const { return r_[t][i]; }
  int s_var(int t, int i) const { return s_[t][i]; }
  int u_var(int t, int k) const { return u_[t][k]; }

  // Extracts R and S from an LP/MILP solution vector (values >= 0.5 are 1).
  RematSolution extract_solution(const std::vector<double>& x) const;
  // Extracts the *fractional* S matrix (for two-phase rounding).
  std::vector<std::vector<double>> extract_fractional_s(
      const std::vector<double>& x) const;

  // Builds a complete, consistent variable assignment from a feasible
  // schedule: R/S as given, FREE per Eq. 5, U per the recurrence. Returns
  // nullopt if the schedule busts the budget (the assignment would violate
  // the U upper bounds). Used to inject incumbents into branch & bound.
  std::optional<std::vector<double>> assemble_assignment(
      const RematSolution& sol) const;

 private:
  void build();           // dense backend (Problem 9)
  void build_interval();  // retention-interval backend (ilp_builder_interval.cpp)
  milp::FormulationStructure cut_structure_interval() const;
  std::optional<std::vector<double>> assemble_assignment_interval(
      const RematSolution& sol) const;

  const RematProblem* problem_;
  IlpBuildOptions opts_;
  lp::LinearProgram lp_;
  double cost_scale_ = 1.0;
  double mem_scale_ = 1.0;
  // Scaled copies kept for cut_structure(): per-node memory in LP units
  // and the fixed overhead in the same units.
  std::vector<double> mem_scaled_;
  double overhead_scaled_ = 0.0;

  std::vector<std::vector<int>> r_, s_, u_;
  std::vector<int> u_flat_;  // all U variable indices, ascending
  // free_[t] lists (i, k, var) for every FREE variable of stage t.
  struct FreeVar {
    NodeId i, k;
    int var;
  };
  std::vector<std::vector<FreeVar>> free_;
};

}  // namespace checkmate
