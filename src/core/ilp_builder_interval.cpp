// Retention-interval backend of IlpFormulation (IlpFormulationKind::
// kInterval).
//
// The dense Problem 9 encoding spends almost all of its size on exact
// intra-stage memory accounting: O(n^2) per-step U variables, O(n E) FREE
// deallocation binaries and their hazard linearization rows. On deep graphs
// that machinery dominates the LP (a 240-node chain carries >100k rows) and
// the root relaxation alone blows any reasonable time limit.
//
// The interval backend trades intra-stage free precision for size, the way
// Moccasin trades exact liveness for O(n k) retention intervals. Residency
// is stage-granular: every value computed in stage t (R[t][i] = 1) or
// carried into it (S[t][i] = 1) is charged to stage t's memory row for the
// whole stage. Together with the checkpoint-chaining constraint (1c) --
// S[t][i] <= S[t-1][i] + R[t-1][i] -- the S columns of a value form
// maximal runs, each opened by a (re)computation and closed by a drop:
// exactly the "retained from its (re)computation until stage e" interval
// variables, with the per-stage memory row assembled from interval
// membership:
//
//   U[t] = overhead + sum_i M_i (S[t][i] + R[t][i]),   U[t] <= budget.
//
// One continuous U column and one equality row per stage replace the
// per-step recurrence and the FREE machinery entirely. The budget enters
// only through the U upper bounds, so set_budget() stays a pure bound
// rebind and the formulation cache's budget-sweep reuse carries over
// unchanged.
//
// Soundness: stage-granular residency can only over-count the dense
// per-step usage, so every interval-feasible schedule is dense-feasible at
// the same budget and simulator validation always passes. The converse is
// a restriction -- schedules that rely on eager intra-stage frees (drop a
// checkpoint mid-stage while accumulating new ones) may need a slightly
// larger budget here. The equivalence suite cross-checks proven objectives
// against the dense backend on the whole small-instance corpus, and the
// bench gate (scripts/compare_bench.py) enforces dense-vs-interval
// objective equality on every benched instance.
#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/ilp_builder.h"

namespace checkmate {

namespace {
using Term = std::pair<int, double>;
}

void IlpFormulation::build_interval() {
  const RematProblem& p = *problem_;
  const int n = p.size();
  if (!opts_.partitioned)
    throw std::invalid_argument(
        "IlpFormulation: the interval backend requires the partitioned "
        "(frontier-advancing) form");

  // Same scaling contract as the dense backend: frozen at construction so
  // set_budget() later touches only the U upper bounds.
  mem_scale_ = opts_.budget_bytes / 100.0;
  cost_scale_ = 1.0;
  for (double c : p.cost) cost_scale_ = std::max(cost_scale_, c);
  const double budget = opts_.budget_bytes / mem_scale_;  // == 100
  const double overhead = p.fixed_overhead / mem_scale_;
  std::vector<double> mem(n), cost(n);
  for (int v = 0; v < n; ++v) {
    mem[v] = p.memory[v] / mem_scale_;
    cost[v] = p.cost[v] / cost_scale_;
  }
  mem_scaled_ = mem;
  overhead_scaled_ = overhead;

  // Interval-class pruning. Two ingredients:
  //
  //  (a) Class restriction: backward (gradient) nodes are computed exactly
  //      once, at their own stage -- rematerializing a gradient re-opens
  //      its whole upstream window and is never profitable on the corpus
  //      (the equivalence suite cross-checks the objectives).
  //  (b) Exact dominance within that class: computing or retaining a value
  //      past the last stage at which anything can still read it is
  //      useless. "Can still read" is transitive -- a value may be kept
  //      late solely to feed a *recomputation* of its consumer -- so the
  //      bound is the reach through forward users, cut off at backward
  //      users (which by (a) compute only at their own stage).
  //
  // comp_until[i]: last stage at which R[t][i] may be 1.
  // keep_until[i]: last stage at which S[t][i] may be 1
  //              = latest stage any user of i may compute.
  // Node indices are a topological order, so one reverse sweep suffices.
  // On mirror-structured training graphs this halves both triangles and
  // their chaining rows.
  std::vector<int> comp_until(n), keep_until(n);
  for (int i = n - 1; i >= 0; --i) {
    keep_until[i] = i;
    for (NodeId j : p.graph.users(i))
      keep_until[i] = std::max(keep_until[i], comp_until[j]);
    comp_until[i] = p.is_backward[i] ? i : keep_until[i];
  }

  // ---- Variables: the pruned R/S triangles of the partitioned form plus
  // one stage-residency column U[t]. No per-step U, no FREE.
  r_.assign(n, std::vector<int>(n, -1));
  s_.assign(n, std::vector<int>(n, -1));
  u_.assign(n, std::vector<int>(n, -1));
  free_.assign(n, {});

  for (int t = 0; t < n; ++t) {
    for (int i = 0; i <= t; ++i) {
      if (i != t && t > comp_until[i]) continue;
      const double lb = (i == t) ? 1.0 : 0.0;  // (8a): frontier recomputed
      r_[t][i] = lp_.add_var(lb, 1.0, cost[i], /*integer=*/true,
                             "R_" + std::to_string(t) + "_" +
                                 std::to_string(i));
    }
    for (int i = 0; i < t; ++i) {
      if (t > keep_until[i]) continue;
      s_[t][i] = lp_.add_var(0.0, 1.0, 0.0, /*integer=*/true,
                             "S_" + std::to_string(t) + "_" +
                                 std::to_string(i));
    }
    u_[t][0] = lp_.add_var(0.0, budget, 0.0, /*integer=*/false,
                           "U_" + std::to_string(t));
    u_flat_.push_back(u_[t][0]);
  }

  // ---- (1b): R[t][j] <= R[t][i] + S[t][i] for each edge (i, j). Rows are
  // emitted only where R[t][j] survived pruning; the availability terms
  // for the source always exist there (keep_until[src] >= comp_until[dst]
  // by construction), modulo backward sources whose only computation is
  // the diagonal.
  for (int t = 0; t < n; ++t) {
    for (const Edge& e : p.graph.edges()) {
      if (e.dst > t || r_[t][e.dst] < 0) continue;
      std::vector<Term> terms{{r_[t][e.dst], 1.0}};
      if (e.src <= t && r_[t][e.src] >= 0)
        terms.push_back({r_[t][e.src], -1.0});
      if (s_[t][e.src] >= 0) terms.push_back({s_[t][e.src], -1.0});
      lp_.add_le(terms, 0.0);
    }
  }

  // ---- (1c), read as interval chaining: a retention run S[.][i] must be
  // opened by a computation of i and is contiguous until dropped.
  for (int t = 1; t < n; ++t) {
    for (int i = 0; i < t; ++i) {
      if (s_[t][i] < 0) continue;
      std::vector<Term> terms{{s_[t][i], 1.0}};
      if (r_[t - 1][i] >= 0) terms.push_back({r_[t - 1][i], -1.0});
      if (s_[t - 1][i] >= 0) terms.push_back({s_[t - 1][i], -1.0});
      lp_.add_le(terms, 0.0);
    }
  }

  // ---- Stage-residency rows: interval membership priced per stage.
  for (int t = 0; t < n; ++t) {
    std::vector<Term> terms{{u_[t][0], 1.0}};
    for (int i = 0; i < t; ++i)
      if (s_[t][i] >= 0) terms.push_back({s_[t][i], -mem[i]});
    for (int i = 0; i <= t; ++i)
      if (r_[t][i] >= 0) terms.push_back({r_[t][i], -mem[i]});
    lp_.add_eq(terms, overhead);
  }

  // ---- Optional total-cost cap (Eq. 10).
  if (opts_.cost_cap) {
    std::vector<Term> terms;
    for (int t = 0; t < n; ++t)
      for (int i = 0; i <= t; ++i)
        if (r_[t][i] >= 0) terms.push_back({r_[t][i], cost[i]});
    lp_.add_le(terms, *opts_.cost_cap / cost_scale_);
  }
}

milp::FormulationStructure IlpFormulation::cut_structure_interval() const {
  const RematProblem& p = *problem_;
  const int n = p.size();
  milp::FormulationStructure s;

  // Each stage-residency row is already a single 0/1 knapsack over the
  // stage's S/R binaries: sum_i M_i (S[t][i] + R[t][i]) fits under
  // ub(U[t]) - overhead - M_t (R[t][t] is fixed at 1, so its mass folds
  // into the offset). The dependency-strengthened variant additionally
  // folds in the mass of deps(t): (1b) with R[t][t] = 1 forces
  // S[t][i] + R[t][i] >= 1 for every dependency i of the frontier node,
  // so that mass is resident whatever the solution and the remaining
  // items face a strictly tighter capacity.
  for (int t = 0; t < n; ++t) {
    std::vector<uint8_t> is_dep(n, 0);
    double forced = overhead_scaled_ + mem_scaled_[t];
    for (NodeId i : p.graph.deps(t)) {
      is_dep[i] = 1;
      forced += mem_scaled_[i];
    }

    milp::KnapsackRow plain;
    plain.capacity_var = u_[t][0];
    plain.capacity_offset = overhead_scaled_ + mem_scaled_[t];
    milp::KnapsackRow strong;
    strong.capacity_var = u_[t][0];
    strong.capacity_offset = forced;
    for (int i = 0; i < t; ++i) {
      if (mem_scaled_[i] <= 0.0) continue;
      if (s_[t][i] >= 0) plain.items.push_back({s_[t][i], mem_scaled_[i]});
      if (r_[t][i] >= 0) plain.items.push_back({r_[t][i], mem_scaled_[i]});
      if (!is_dep[i]) {
        if (s_[t][i] >= 0) strong.items.push_back({s_[t][i], mem_scaled_[i]});
        if (r_[t][i] >= 0) strong.items.push_back({r_[t][i], mem_scaled_[i]});
      }
    }
    if (plain.items.size() >= 2) s.knapsacks.push_back(std::move(plain));
    if (strong.capacity_offset > plain.capacity_offset + 1e-12 &&
        strong.items.size() >= 2)
      s.knapsacks.push_back(std::move(strong));
  }
  return s;
}

std::optional<std::vector<double>> IlpFormulation::assemble_assignment_interval(
    const RematSolution& sol) const {
  const RematProblem& p = *problem_;
  const int n = p.size();
  if (!sol.check_feasible(p).empty()) return std::nullopt;

  std::vector<double> x(lp_.num_vars(), 0.0);
  for (int t = 0; t < n; ++t)
    for (int i = 0; i < n; ++i) {
      if (r_[t][i] >= 0) x[r_[t][i]] = sol.R[t][i] ? 1.0 : 0.0;
      if (s_[t][i] >= 0) x[s_[t][i]] = sol.S[t][i] ? 1.0 : 0.0;
      if (r_[t][i] < 0 && sol.R[t][i]) return std::nullopt;
      if (s_[t][i] < 0 && sol.S[t][i]) return std::nullopt;
    }

  // Stage-residency footprint (mirrors the equality row exactly, including
  // the double charge when a value is both carried and redundantly
  // recomputed); reject schedules whose whole-stage resident set busts the
  // budget -- they may still be dense-feasible, the interval class is a
  // restriction and such seeds simply cannot warm-start it.
  for (int t = 0; t < n; ++t) {
    double bytes = p.fixed_overhead;
    for (int i = 0; i < n; ++i) {
      if (i < t && sol.S[t][i]) bytes += p.memory[i];
      if (i <= t && sol.R[t][i]) bytes += p.memory[i];
    }
    if (bytes > opts_.budget_bytes + 1e-6) return std::nullopt;
    x[u_[t][0]] = bytes / mem_scale_;
  }
  return x;
}

}  // namespace checkmate
