#include "core/plan.h"

#include <stdexcept>

namespace checkmate {

int ExecutionPlan::compute_count() const {
  int count = 0;
  for (const Statement& s : statements)
    if (s.kind == StatementKind::kCompute) ++count;
  return count;
}

std::string ExecutionPlan::to_string(const RematProblem& p) const {
  std::string out;
  int last_stage = -1;
  for (const Statement& s : statements) {
    if (s.stage != last_stage) {
      out += "stage " + std::to_string(s.stage) + ":\n";
      last_stage = s.stage;
    }
    if (s.kind == StatementKind::kCompute) {
      out += "  %" + std::to_string(s.reg) + " = compute " +
             (s.node < static_cast<NodeId>(p.node_names.size())
                  ? p.node_names[s.node]
                  : std::to_string(s.node)) +
             "\n";
    } else {
      out += "  deallocate %" + std::to_string(s.reg) + "\n";
    }
  }
  return out;
}

ExecutionPlan generate_execution_plan(const RematProblem& p,
                                      const RematSolution& sol,
                                      const PlanOptions& options) {
  const std::string err = sol.check_feasible(p);
  if (!err.empty())
    throw std::invalid_argument("generate_execution_plan: infeasible: " + err);

  const int n = p.size();
  const FreeSchedule fs = compute_free_schedule(p, sol);

  ExecutionPlan plan;
  std::vector<int> regs(n, -1);
  std::vector<bool> resident(n, false);
  int next_reg = 0;

  auto dealloc = [&](NodeId i, int stage) {
    if (!resident[i])
      throw std::logic_error("plan generation: double free of node " +
                             std::to_string(i));
    plan.statements.push_back(
        {StatementKind::kDeallocate, i, regs[i], stage});
    resident[i] = false;
  };

  for (int t = 0; t < n; ++t) {
    if (options.hoist_deallocations)
      for (NodeId i : fs.stage_drop[t]) dealloc(i, t);

    for (int k = 0; k <= t; ++k) {
      if (sol.R[t][k]) {
        // Recomputing a live value replaces it: release the old register
        // first so memory stays flat (the MILP's accounting is allowed to
        // double-count this case; the realized plan need not).
        if (resident[k]) dealloc(k, t);
        plan.statements.push_back({StatementKind::kCompute, k, next_reg, t});
        regs[k] = next_reg++;
        resident[k] = true;
      }
      for (NodeId i : fs.after_compute[t][k]) dealloc(i, t);
    }

    if (!options.hoist_deallocations)
      for (NodeId i : fs.stage_drop[t]) dealloc(i, t);
  }
  plan.num_registers = next_reg;
  return plan;
}

}  // namespace checkmate
