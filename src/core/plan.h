// Concrete execution plans (Section 4.9, Algorithm 1).
//
// A plan is a straight-line program over virtual registers:
//   %r = compute v     materialize operation v into fresh register %r
//   deallocate %r      mark the value tracked by %r for garbage collection
//
// Plans are generated from (R, S, FREE) by a row-major scan of the solution
// matrices, then optionally optimized by hoisting deallocations of spurious
// checkpoints to the start of their stage (the code motion of Section 4.9).
#pragma once

#include <string>
#include <vector>

#include "core/remat_problem.h"
#include "core/solution.h"

namespace checkmate {

enum class StatementKind { kCompute, kDeallocate };

struct Statement {
  StatementKind kind = StatementKind::kCompute;
  NodeId node = -1;  // operation computed / value deallocated
  int reg = -1;      // virtual register
  int stage = -1;    // stage that emitted this statement
};

struct ExecutionPlan {
  std::vector<Statement> statements;
  int num_registers = 0;

  int compute_count() const;
  std::string to_string(const RematProblem& p) const;
};

struct PlanOptions {
  // Move deallocations of checkpoints that are unused within their stage to
  // the stage start (reduces actual memory below the solver's estimate; not
  // required for budget feasibility).
  bool hoist_deallocations = true;
};

// Algorithm 1. The solution must satisfy check_feasible().
ExecutionPlan generate_execution_plan(const RematProblem& p,
                                      const RematSolution& sol,
                                      const PlanOptions& options = {});

}  // namespace checkmate
