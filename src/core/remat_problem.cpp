#include "core/remat_problem.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

namespace checkmate {

namespace {

// FNV-1a, 64-bit.
struct Hasher {
  uint64_t h = 0xcbf29ce484222325ull;
  void mix(uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  void mix(double v) {
    // Normalize -0.0 so numerically-equal problems hash equally.
    mix(std::bit_cast<uint64_t>(v == 0.0 ? 0.0 : v));
  }
};

// Append-only little-endian writer for serialize_canonical. Field order
// mirrors Hasher usage in fingerprint() exactly.
struct Writer {
  std::string out;
  void put_u64(uint64_t v) {
    for (int b = 0; b < 8; ++b) out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
  }
  void put_i32(int32_t v) {
    const uint32_t u = static_cast<uint32_t>(v);
    for (int b = 0; b < 4; ++b) out.push_back(static_cast<char>((u >> (8 * b)) & 0xff));
  }
  void put_f64(double v) {
    put_u64(std::bit_cast<uint64_t>(v == 0.0 ? 0.0 : v));
  }
  void put_u8(uint8_t v) { out.push_back(static_cast<char>(v)); }
};

}  // namespace

double RematProblem::total_cost_all_nodes() const {
  return std::accumulate(cost.begin(), cost.end(), 0.0);
}

double RematProblem::forward_cost() const {
  double c = 0.0;
  for (int v = 0; v < size(); ++v)
    if (!is_backward[v]) c += cost[v];
  return c;
}

double RematProblem::backward_cost() const {
  double c = 0.0;
  for (int v = 0; v < size(); ++v)
    if (is_backward[v]) c += cost[v];
  return c;
}

double RematProblem::max_node_memory() const {
  return *std::max_element(memory.begin(), memory.end());
}

double RematProblem::total_memory() const {
  return std::accumulate(memory.begin(), memory.end(), fixed_overhead);
}

double RematProblem::memory_floor() const {
  double floor = 0.0;
  for (int k = 0; k < size(); ++k) {
    double need = memory[k];
    for (NodeId d : graph.deps(k)) need += memory[d];
    floor = std::max(floor, need);
  }
  return floor + fixed_overhead;
}

int RematProblem::first_backward_stage() const {
  for (int v = 0; v < size(); ++v)
    if (is_backward[v]) return v;
  return size();
}

uint64_t RematProblem::fingerprint() const {
  Hasher hash;
  hash.mix(static_cast<uint64_t>(size()));
  hash.mix(static_cast<uint64_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) {
    hash.mix(static_cast<uint64_t>(e.src));
    hash.mix(static_cast<uint64_t>(e.dst));
  }
  for (double c : cost) hash.mix(c);
  for (double m : memory) hash.mix(m);
  hash.mix(fixed_overhead);
  for (uint8_t b : is_backward) hash.mix(static_cast<uint64_t>(b));
  for (NodeId g : grad_of) hash.mix(static_cast<uint64_t>(g));
  return hash.h;
}

std::string RematProblem::serialize_canonical() const {
  Writer w;
  w.out.reserve(16 + 8 * static_cast<size_t>(graph.num_edges()) +
                21 * static_cast<size_t>(size()) + 8);
  w.put_u64(static_cast<uint64_t>(size()));
  w.put_u64(static_cast<uint64_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) {
    w.put_i32(e.src);
    w.put_i32(e.dst);
  }
  for (double c : cost) w.put_f64(c);
  for (double m : memory) w.put_f64(m);
  w.put_f64(fixed_overhead);
  for (uint8_t b : is_backward) w.put_u8(b);
  for (NodeId g : grad_of) w.put_i32(g);
  return std::move(w.out);
}

void RematProblem::validate() const {
  const size_t n = static_cast<size_t>(graph.size());
  if (cost.size() != n || memory.size() != n || is_backward.size() != n ||
      grad_of.size() != n)
    throw std::logic_error("RematProblem: field sizes disagree with graph");
  if (!graph.is_topologically_labeled())
    throw std::logic_error("RematProblem: graph is not topologically labeled");
  for (double c : cost)
    if (c < 0.0) throw std::logic_error("RematProblem: negative cost");
  for (double m : memory)
    if (m < 0.0) throw std::logic_error("RematProblem: negative memory");
  // Backward nodes must come after all forward nodes they depend on; the
  // frontier-advancing partitioning assumes forward-then-backward ids.
  graph.validate();
}

RematProblem RematProblem::from_dnn(const model::DnnGraph& graph,
                                    model::CostMetric metric,
                                    const model::CostModelOptions& options) {
  RematProblem p;
  p.name = graph.name;
  p.graph = graph.dag;
  p.cost = model::op_costs(graph, metric, options);
  const auto mem = model::op_memory_bytes(graph);
  p.memory.assign(mem.begin(), mem.end());
  p.fixed_overhead = static_cast<double>(model::fixed_overhead_bytes(graph));
  p.is_backward.resize(graph.dag.size());
  p.grad_of.resize(graph.dag.size());
  p.node_names.resize(graph.dag.size());
  for (NodeId v = 0; v < graph.dag.size(); ++v) {
    p.is_backward[v] = graph.ops[v].is_gradient();
    p.grad_of[v] = graph.ops[v].grad_of;
    p.node_names[v] = graph.ops[v].name;
  }
  p.validate();
  return p;
}

RematProblem RematProblem::unit_training_chain(int layers) {
  if (layers < 1)
    throw std::invalid_argument("unit_training_chain: layers must be >= 1");
  const int f = layers + 1;  // v_0..v_{layers-1} plus loss v_layers
  const int n = 2 * layers + 1;
  RematProblem p;
  p.name = "unit_training_chain_" + std::to_string(layers);
  p.graph = Graph(n);
  for (int v = 0; v + 1 < f; ++v) p.graph.add_edge(v, v + 1);
  // Gradient of forward node k sits at id f + (f - 1 - k), k = layers..1.
  for (int k = layers; k >= 1; --k) {
    const int g = f + (f - 1 - k);
    p.graph.add_edge(k, g);      // own activation
    p.graph.add_edge(k - 1, g);  // input activation
    if (k < layers) p.graph.add_edge(g - 1, g);  // upstream gradient
  }
  p.cost.assign(n, 1.0);
  p.memory.assign(n, 1.0);
  p.is_backward.assign(n, 0);
  p.grad_of.assign(n, -1);
  p.node_names.resize(n);
  for (int v = 0; v < f; ++v) p.node_names[v] = "v" + std::to_string(v);
  for (int k = layers; k >= 1; --k) {
    const int g = f + (f - 1 - k);
    p.is_backward[g] = 1;
    p.grad_of[g] = k;
    p.node_names[g] = "g" + std::to_string(k);
  }
  p.validate();
  return p;
}

RematProblem RematProblem::unit_chain(int n) {
  RematProblem p;
  p.name = "unit_chain_" + std::to_string(n);
  p.graph = make_path_graph(n);
  p.cost.assign(n, 1.0);
  p.memory.assign(n, 1.0);
  p.fixed_overhead = 0.0;
  p.is_backward.assign(n, 0);
  p.grad_of.assign(n, -1);
  p.node_names.resize(n);
  for (int v = 0; v < n; ++v) p.node_names[v] = "v" + std::to_string(v);
  return p;
}

}  // namespace checkmate
