// The tensor rematerialization problem instance (Section 4.1): a
// topologically-labeled data-flow DAG G = (V, E), per-node compute costs C_v
// and output memory M_v, plus the constant memory overhead that is always
// resident (parameters and reserved parameter-gradient space, Eq. 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "model/autodiff.h"
#include "model/cost_model.h"

namespace checkmate {

struct RematProblem {
  std::string name;
  Graph graph;                      // ids follow a topological order
  std::vector<double> cost;         // C_v >= 0 (time or FLOPs)
  std::vector<double> memory;       // M_v in bytes
  double fixed_overhead = 0.0;      // bytes: params + reserved grads
  std::vector<uint8_t> is_backward; // gradient node flags
  std::vector<NodeId> grad_of;      // forward node differentiated, or -1
  std::vector<std::string> node_names;

  int size() const { return graph.size(); }

  double total_cost_all_nodes() const;
  double forward_cost() const;
  double backward_cost() const;
  double max_node_memory() const;
  // Sum of all node memories + overhead: trivial upper bound on any budget.
  double total_memory() const;

  // Structural lower bound on any feasible budget: when node k is
  // evaluated, its output and every direct dependency must be resident
  // simultaneously (plus the fixed overhead). Budgets below this value are
  // infeasible for every schedule.
  double memory_floor() const;

  // First stage at which a backward node is evaluated (== its id), or
  // size() if the problem has no backward nodes.
  int first_backward_stage() const;

  // Canonical content hash of everything the MILP formulation depends on:
  // topology (edge list), per-node costs and memories (exact bit
  // patterns), the fixed overhead, and the backward/grad structure. Names
  // are cosmetic and excluded. Two problems with equal fingerprints yield
  // identical formulations at any budget, so the hash keys the plan
  // service's formulation cache (src/service/formulation_cache.h).
  uint64_t fingerprint() const;

  // Canonical byte encoding of exactly the content fingerprint() hashes
  // (same field order, same -0.0 normalization; names excluded). Two
  // problems yield equal blobs iff they yield identical formulations, so
  // blob equality is the hard collision guard behind the 64-bit
  // fingerprint wherever a wrong match must be impossible -- the disk
  // plan store compares full blobs before serving a record
  // (src/store/plan_store.h). Any change to this layout or to
  // fingerprint() must bump store::kPlanStoreFormatVersion and regenerate
  // tests/data/fingerprints.golden.
  std::string serialize_canonical() const;

  void validate() const;

  // Builds an instance from a training graph produced by
  // model::make_training_graph (or a pure forward graph).
  static RematProblem from_dnn(const model::DnnGraph& graph,
                               model::CostMetric metric,
                               const model::CostModelOptions& options = {});

  // Abstract chain of n nodes with unit cost and unit memory (the Section
  // 4.6 / Appendix A instance family).
  static RematProblem unit_chain(int n);

  // Unit-cost/unit-memory training chain: `layers` forward ops + loss +
  // `layers` gradient ops, n = 2*layers + 1. layers = 8 gives the paper's
  // n = 17 example (Section 4.6, Appendix A). Gradient of layer k depends
  // on v_k, v_{k-1} and the upstream gradient.
  static RematProblem unit_training_chain(int layers);
};

}  // namespace checkmate
