#include "core/rounding.h"

#include <random>

namespace checkmate {

BoolMatrix solve_r_given_s(const Graph& graph, const BoolMatrix& s) {
  const int n = graph.size();
  BoolMatrix r = make_bool_matrix(n, n);
  BoolMatrix sl = make_bool_matrix(n, n);
  for (int t = 0; t < n; ++t)
    for (int i = 0; i < t; ++i) sl[t][i] = s[t][i];

  // (8a): frontier-advancing diagonal.
  for (int t = 0; t < n; ++t) r[t][t] = 1;

  // Repair (1c) forward in t: a checkpointed value must have been alive in
  // the previous stage; materialize it there if not.
  for (int t = 1; t < n; ++t)
    for (int i = 0; i < t; ++i)
      if (sl[t][i] && !r[t - 1][i] && !sl[t - 1][i]) r[t - 1][i] = 1;

  // Repair (1b) per stage, scanning right-to-left so dependencies of
  // dependencies are visited afterwards (reverse topological order).
  for (int t = 0; t < n; ++t)
    for (int j = t; j >= 0; --j) {
      if (!r[t][j]) continue;
      for (NodeId i : graph.deps(j))
        if (!r[t][i] && !sl[t][i]) r[t][i] = 1;
    }
  return r;
}

RematSolution two_phase_round(const Graph& graph,
                              const std::vector<std::vector<double>>& s_star,
                              const RoundingOptions& options) {
  const int n = graph.size();
  RematSolution sol;
  sol.S = make_bool_matrix(n, n);

  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (int t = 1; t < n; ++t) {
    for (int i = 0; i < t; ++i) {
      const double v = s_star[t][i];
      sol.S[t][i] = options.randomized ? (unif(rng) < v ? 1 : 0)
                                       : (v > options.threshold ? 1 : 0);
    }
  }
  sol.R = solve_r_given_s(graph, sol.S);
  return sol;
}

}  // namespace checkmate
