// Two-phase LP rounding (Section 5.2, Algorithm 2) and the shared
// "minimal R given S" back-solve (Section B.1) used by both the
// approximation algorithm and the baseline generalizations.
#pragma once

#include <cstdint>

#include "core/ilp_builder.h"
#include "core/solution.h"

namespace checkmate {

// Given a (0/1) checkpoint matrix S, computes the minimum-computation R
// that restores feasibility: R starts at the identity (8a), then (1c)
// violations are repaired forward in t and (1b) violations are repaired per
// stage in reverse topological order (right-to-left scan). O(|V||E|) per
// stage. S rows above the main diagonal are ignored.
BoolMatrix solve_r_given_s(const Graph& graph, const BoolMatrix& s);

struct RoundingOptions {
  bool randomized = false;   // Bernoulli(S*) instead of threshold
  double threshold = 0.5;    // deterministic rounding threshold
  uint64_t seed = 0;
};

// Algorithm 2: rounds the fractional checkpoint matrix S* and back-solves
// R. The result always satisfies correctness constraints; the caller must
// check the memory budget (Section 5.3).
RematSolution two_phase_round(const Graph& graph,
                              const std::vector<std::vector<double>>& s_star,
                              const RoundingOptions& options = {});

}  // namespace checkmate
