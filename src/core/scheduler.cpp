#include "core/scheduler.h"

#include <algorithm>

#include "baselines/baselines.h"

namespace checkmate {

Scheduler::Scheduler(RematProblem problem) : problem_(std::move(problem)) {
  problem_.validate();
}

ScheduleResult evaluate_schedule_against(const RematProblem& problem,
                                         const RematSolution& sol,
                                         double budget_bytes) {
  ScheduleResult res;
  res.solution = sol;
  const std::string err = sol.check_feasible(problem);
  if (!err.empty()) {
    res.message = "schedule infeasible: " + err;
    return res;
  }
  res.plan = generate_execution_plan(problem, sol);
  SimulatorOptions sim_opts;
  sim_opts.budget_bytes = budget_bytes;
  res.sim = simulate_plan(problem, res.plan, sim_opts);
  if (!res.sim.valid) {
    res.message = "simulation failed: " + res.sim.error;
    return res;
  }
  res.cost = res.sim.total_cost;
  res.overhead = res.cost / problem.total_cost_all_nodes();
  res.peak_memory = res.sim.peak_memory;
  res.feasible = true;
  return res;
}

ScheduleResult Scheduler::evaluate_schedule(const RematSolution& sol,
                                            double budget_bytes) const {
  return evaluate_schedule_against(problem_, sol, budget_bytes);
}

ScheduleResult solve_ilp_on_formulation(const IlpFormulation& form,
                                        const IlpSolveOptions& options,
                                        const IlpSolveReuse& reuse) {
  const RematProblem& problem = form.problem();
  const double budget_bytes = form.options().budget_bytes;
  const bool partitioned = form.options().partitioned;

  milp::MilpOptions mopts;
  mopts.time_limit_sec = options.time_limit_sec;
  mopts.relative_gap = options.relative_gap;
  mopts.branch_priority = form.branch_priorities();
  mopts.stop_at_first_incumbent = options.stop_at_first_incumbent;
  mopts.presolve = options.presolve && reuse.presolved_lp == nullptr;
  mopts.pseudocost_branching = options.pseudocost_branching;
  mopts.node_selection = options.node_selection;
  mopts.root_reduced_cost_fixing = options.root_reduced_cost_fixing;
  mopts.simplex.steepest_edge_pricing = options.steepest_edge_pricing;
  mopts.simplex.bound_flip_ratio_test = options.bound_flip_ratio_test;
  mopts.simplex.forrest_tomlin = options.lp_ft_update;
  mopts.simplex.scaling = options.lp_scaling;
  mopts.gomory_cuts = options.gomory_cuts;
  // Branch & cut: hand the solver the formulation's knapsack view of the
  // memory rows. The structure outlives the solve (stack scope below) and
  // survives presolve and set_budget rebinds (capacities are read from the
  // live U upper bounds at separation time).
  milp::FormulationStructure cut_structure;
  mopts.cut_separation = options.cut_separation;
  mopts.reliability_branching = options.reliability_branching;
  if (options.cut_separation) {
    cut_structure = form.cut_structure();
    mopts.cut_structure = &cut_structure;
  }
  if (options.max_lp_iterations > 0)
    mopts.max_lp_iterations = options.max_lp_iterations;
  if (options.max_nodes > 0) mopts.max_nodes = options.max_nodes;
  mopts.num_threads = options.num_threads;
  mopts.deadline = options.deadline;
  mopts.cancel = options.cancel;
  if (reuse.known_lower_bound_cost != -lp::kInf)
    mopts.known_lower_bound = form.scale_cost(reuse.known_lower_bound_cost);

  bool warm_started = false;
  if (partitioned && reuse.warm_start) {
    if (auto x = form.assemble_assignment(*reuse.warm_start)) {
      mopts.initial_solutions.push_back(std::move(*x));
      warm_started = true;
    }
  }

  // Seed branch & bound with the cheapest feasible baseline schedule so
  // bound pruning is active from the root (Section 6.2: the ILP's feasible
  // set is a superset of every baseline's). Skipping is only honored when
  // the warm start actually assembled -- never start incumbent-less. An
  // already-expired deadline also skips the pass: the search terminates at
  // its first barrier anyway and the caller's fallback ladder supplies the
  // heuristic plan.
  if (partitioned && options.use_rounding_heuristic &&
      !options.deadline.expired() && !options.cancel.cancelled() &&
      !(reuse.skip_baseline_seeds && warm_started)) {
    double best_seed_cost = lp::kInf;
    std::optional<std::vector<double>> best_seed;
    auto offer_seed = [&](const RematSolution& sol) {
      const double cost = sol.compute_cost(problem);
      if (cost >= best_seed_cost) return;
      if (auto x = form.assemble_assignment(sol)) {
        best_seed = std::move(*x);
        best_seed_cost = cost;
      }
    };
    using baselines::BaselineKind;
    for (auto kind :
         {BaselineKind::kCheckpointAll, BaselineKind::kChenSqrtN,
          BaselineKind::kLinearizedSqrtN, BaselineKind::kLinearizedGreedy,
          BaselineKind::kApGreedy}) {
      for (const auto& bs : baselines::baseline_schedules(problem, kind))
        offer_seed(bs.solution);
    }
    // Belady-style budget-aware retention covers the tight-budget regime
    // where checkpoint-family heuristics bust the budget.
    const double headroom = budget_bytes - problem.fixed_overhead;
    for (double frac :
         {0.95, 0.85, 0.75, 0.6, 0.45, 0.3, 0.2, 0.12, 0.06, 0.03})
      offer_seed(baselines::budget_aware_schedule(problem, frac * headroom));
    if (best_seed) mopts.initial_solutions.push_back(std::move(*best_seed));
  }

  milp::IncumbentHeuristic heuristic;
  if (options.use_rounding_heuristic && partitioned) {
    heuristic = [&form, &problem](const std::vector<double>& x)
        -> std::optional<std::vector<double>> {
      // Multi-threshold two-phase rounding: tighter thresholds checkpoint
      // less and fit tighter budgets.
      const auto s_star = form.extract_fractional_s(x);
      std::optional<std::vector<double>> best;
      double best_cost = lp::kInf;
      for (double threshold : {0.5, 0.75, 0.9}) {
        RoundingOptions ropts;
        ropts.threshold = threshold;
        RematSolution rounded = two_phase_round(problem.graph, s_star, ropts);
        const double cost = rounded.compute_cost(problem);
        if (cost >= best_cost) continue;
        if (auto assignment = form.assemble_assignment(rounded)) {
          best = std::move(assignment);
          best_cost = cost;
        }
      }
      return best;
    };
  }

  const lp::LinearProgram& target =
      reuse.presolved_lp ? *reuse.presolved_lp : form.lp();
  const milp::MilpResult mres = milp::solve_milp(target, mopts, heuristic);

  ScheduleResult res;
  res.milp_status = mres.status;
  res.nodes = mres.nodes;
  res.lp_iterations = mres.lp_iterations;
  res.cuts_added = mres.cuts_added;
  res.strong_branches = mres.strong_branches;
  res.gomory_cuts = mres.gomory_cuts;
  res.cuts_removed = mres.cuts_removed;
  res.lp_refactorizations = mres.lp_refactorizations;
  res.lp_ft_updates = mres.lp_ft_updates;
  res.lp_ft_growth_refactors = mres.lp_ft_growth_refactors;
  res.lp_eta_pivots = mres.lp_eta_pivots;
  res.lp_pricing_resets = mres.lp_pricing_resets;
  res.seconds = mres.seconds;
  res.best_bound = form.unscale_cost(mres.best_bound);
  res.root_relaxation = form.unscale_cost(mres.root_relaxation);
  if (!mres.has_solution()) {
    res.message = std::string("MILP: ") + milp::to_string(mres.status);
    // A completed dense search proves the instance itself infeasible. The
    // interval backend is a restriction of the dense feasible set, so its
    // infeasibility proves nothing about the problem -- leave it untyped
    // and let callers fall back (heuristics may still fit the budget).
    if (mres.status == milp::MilpStatus::kInfeasible &&
        options.formulation == IlpFormulationKind::kDense) {
      res.proven_infeasible = true;
      res.memory_floor_bytes = problem.memory_floor();
    }
    return res;
  }
  if (!partitioned) {
    // Unpartitioned schedules are not frontier-advancing; report objective
    // only (used by the Appendix A study).
    res.feasible = true;
    res.cost = form.unscale_cost(mres.objective);
    res.overhead = res.cost / problem.total_cost_all_nodes();
    res.message = "unpartitioned: objective only";
    return res;
  }

  ScheduleResult eval = evaluate_schedule_against(
      problem, form.extract_solution(mres.x), budget_bytes);
  eval.milp_status = mres.status;
  eval.nodes = mres.nodes;
  eval.lp_iterations = mres.lp_iterations;
  eval.cuts_added = mres.cuts_added;
  eval.strong_branches = mres.strong_branches;
  eval.gomory_cuts = mres.gomory_cuts;
  eval.cuts_removed = mres.cuts_removed;
  eval.lp_refactorizations = mres.lp_refactorizations;
  eval.lp_ft_updates = mres.lp_ft_updates;
  eval.lp_ft_growth_refactors = mres.lp_ft_growth_refactors;
  eval.lp_eta_pivots = mres.lp_eta_pivots;
  eval.lp_pricing_resets = mres.lp_pricing_resets;
  eval.seconds = mres.seconds;
  eval.best_bound = res.best_bound;
  eval.root_relaxation = res.root_relaxation;
  return eval;
}

ScheduleResult Scheduler::solve_optimal_ilp(
    double budget_bytes, const IlpSolveOptions& options) const {
  if (budget_bytes < problem_.memory_floor()) {
    // No schedule can fit: some operation's working set alone exceeds the
    // budget. Saves branch & bound from grinding on a hopeless proof, and
    // the floor itself is the infeasibility certificate.
    ScheduleResult res;
    res.milp_status = milp::MilpStatus::kInfeasible;
    res.message = "budget below structural memory floor";
    res.proven_infeasible = true;
    res.memory_floor_bytes = problem_.memory_floor();
    return res;
  }

  IlpBuildOptions build;
  build.budget_bytes = budget_bytes;
  build.partitioned = options.partitioned;
  build.eliminate_diag_free = options.eliminate_diag_free;
  build.formulation = options.formulation;
  build.cost_cap = options.cost_cap;
  const IlpFormulation form(problem_, build);
  return solve_ilp_on_formulation(form, options);
}

ScheduleResult Scheduler::solve_lp_rounding(double budget_bytes,
                                            const ApproxOptions& options) const {
  IlpBuildOptions build;
  build.budget_bytes = (1.0 - options.epsilon) * budget_bytes;
  ScheduleResult res;
  if (build.budget_bytes <= 0.0) {
    res.message = "epsilon leaves no budget";
    return res;
  }
  const IlpFormulation form(problem_, build);

  const lp::LpResult rel = lp::solve_lp(form.lp());
  res.seconds = 0.0;
  if (rel.status != lp::LpStatus::kOptimal) {
    res.message = std::string("LP relaxation: ") + lp::to_string(rel.status);
    return res;
  }
  res.root_relaxation = form.unscale_cost(rel.objective);

  const auto s_star = form.extract_fractional_s(rel.x);
  ScheduleResult best;
  auto consider = [&](const RoundingOptions& ropts) {
    RematSolution sol = two_phase_round(problem_.graph, s_star, ropts);
    ScheduleResult eval = evaluate_schedule(sol, budget_bytes);
    if (eval.feasible && (!best.feasible || eval.cost < best.cost))
      best = std::move(eval);
  };
  if (options.randomized) {
    for (int draw = 0; draw < std::max(1, options.samples); ++draw) {
      RoundingOptions ropts;
      ropts.randomized = true;
      ropts.seed = options.seed + static_cast<uint64_t>(draw);
      consider(ropts);
    }
  } else {
    // Deterministic rounding: sweep the threshold. Lower thresholds keep
    // more checkpoints (cheaper, more memory); the sweep picks the
    // cheapest schedule that still fits the *true* budget.
    for (double threshold : {0.25, 0.4, 0.5, 0.65, 0.8, 0.9}) {
      RoundingOptions ropts;
      ropts.threshold = threshold;
      consider(ropts);
    }
  }
  if (!best.feasible) {
    best.message = "no rounded schedule fits the budget";
    best.root_relaxation = res.root_relaxation;
    return best;
  }
  best.root_relaxation = res.root_relaxation;
  best.milp_status = milp::MilpStatus::kFeasible;
  return best;
}

}  // namespace checkmate
