// Top-level Checkmate API (Figure 2): given a rematerialization problem and
// a memory budget, produce an optimal (MILP) or near-optimal (two-phase LP
// rounding) execution plan, validated end-to-end by the plan simulator.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/ilp_builder.h"
#include "core/plan.h"
#include "core/remat_problem.h"
#include "core/rounding.h"
#include "core/simulator.h"
#include "milp/milp.h"

namespace checkmate {

struct IlpSolveOptions {
  double time_limit_sec = 60.0;
  double relative_gap = 1e-4;
  bool use_rounding_heuristic = true;  // inject two-phase rounding incumbents
  bool partitioned = true;             // frontier-advancing stages
  bool eliminate_diag_free = true;
  // MILP backend: the dense Problem 9 encoding or the sparse
  // retention-interval one (see IlpFormulationKind in core/ilp_builder.h).
  IlpFormulationKind formulation = IlpFormulationKind::kDense;
  bool stop_at_first_incumbent = false;
  // Solver machinery knobs (threaded straight into milp::MilpOptions; the
  // defaults are the overhauled fast path, the ablation benches flip them).
  bool presolve = true;
  bool pseudocost_branching = true;
  milp::NodeSelection node_selection = milp::NodeSelection::kHybrid;
  // LP-engine hot-path knobs (threaded into lp::SimplexOptions) and root
  // reduced-cost fixing; defaults are the shipped fast path, the ablation
  // benches flip them off individually.
  bool steepest_edge_pricing = true;
  bool bound_flip_ratio_test = true;
  bool root_reduced_cost_fixing = true;
  // Second-decade LP-engine knobs (PR 10): Forrest-Tomlin basis updates
  // (off = product-form eta accumulation), Curtis-Reid equilibration at
  // engine load, and Gomory mixed-integer cuts from the root tableau.
  bool lp_ft_update = true;
  bool lp_scaling = true;
  bool gomory_cuts = true;
  // Branch & cut: Checkmate-structural cover/clique cut separation over
  // the memory rows (the formulation hands the solver a knapsack view via
  // IlpFormulation::cut_structure) and reliability branching (strong-
  // branch probes until pseudocosts are trustworthy). Both deterministic
  // for any num_threads; the ablation benches flip them off individually.
  bool cut_separation = true;
  bool reliability_branching = true;
  // Deterministic work limits: stop after this many cumulative simplex
  // iterations / explored nodes (0 = unlimited). Unlike the wall-clock
  // limit these make truncated runs machine-independent.
  int64_t max_lp_iterations = 0;
  int64_t max_nodes = 0;
  // Worker threads for the in-solve parallel tree search (0 = one per
  // hardware thread). The search is epoch-lockstep deterministic: node
  // counts, incumbents and objectives are bit-identical for every value
  // (unless the wall-clock time limit truncates the run -- deterministic
  // work limits, max_lp_iterations/max_nodes, keep the invariance even
  // when truncated), so this is purely a wall-clock knob. The PlanService
  // overrides 0 with its share of the service-wide thread budget.
  int num_threads = 0;
  // Optional cap on total recomputation cost (Eq. 10, original cost
  // units), threaded into the formulation. The max-batch feasibility
  // probes combine it with stop_at_first_incumbent.
  std::optional<double> cost_cap;
  // Absolute deadline / cancellation token for the query (both default
  // inert), threaded through branch & bound down to every node LP. See
  // robust/deadline.h for the determinism contract; PlanService sweeps
  // apportion a query deadline across their points.
  robust::Deadline deadline;
  robust::CancelToken cancel;
};

struct ApproxOptions {
  // Budget allowance epsilon of Section 5.3: the LP is solved against
  // (1 - epsilon) * budget so the rounded schedule lands under budget.
  double epsilon = 0.1;
  bool randomized = false;
  int samples = 1;  // randomized rounding draws (best feasible kept)
  uint64_t seed = 1;
};

struct ScheduleResult {
  bool feasible = false;
  std::string message;

  RematSolution solution;
  ExecutionPlan plan;
  SimulationResult sim;

  double cost = 0.0;         // simulated compute cost
  double overhead = 0.0;     // cost / ideal (compute-everything-once) cost
  double peak_memory = 0.0;  // simulated peak, bytes

  milp::MilpStatus milp_status = milp::MilpStatus::kError;
  double best_bound = 0.0;       // problem cost units
  double root_relaxation = 0.0;  // problem cost units
  int64_t nodes = 0;
  int64_t lp_iterations = 0;     // cumulative simplex iterations
  int64_t cuts_added = 0;        // cut rows appended by branch & cut
  int64_t strong_branches = 0;   // reliability-branching probe solves
  // LP-engine observability (milp::MilpResult pass-through): Gomory cut
  // rows of cuts_added, cut rows later deleted by in-LP aging, and the
  // engine-level refactorization/update/pricing counters summed over
  // every LP solve of the search.
  int64_t gomory_cuts = 0;
  int64_t cuts_removed = 0;
  int64_t lp_refactorizations = 0;
  int64_t lp_ft_updates = 0;
  int64_t lp_ft_growth_refactors = 0;
  int64_t lp_eta_pivots = 0;
  int64_t lp_pricing_resets = 0;
  double seconds = 0.0;

  // Typed infeasibility: true only when NO schedule can fit the budget,
  // with the structural memory floor (the peak no policy can go below:
  // the largest single-stage working set) as the certificate. A mere
  // failure to find a plan (truncated search, restricted backend) leaves
  // this false -- absence of proof is not proof of absence.
  bool proven_infeasible = false;
  double memory_floor_bytes = 0.0;  // certificate when proven_infeasible
};

// Validates and prices a schedule against a budget (0 disables the budget
// check) without constructing a Scheduler; shared by Scheduler and the plan
// service.
ScheduleResult evaluate_schedule_against(const RematProblem& problem,
                                         const RematSolution& sol,
                                         double budget_bytes);

// Work the plan service (src/service/) injects to amortize repeated
// queries; the default-constructed struct reproduces a cold solve.
struct IlpSolveReuse {
  // Solve this LP instead of form.lp(): a cached presolve artifact whose U
  // upper bounds were already clamped to the query budget. The MILP's own
  // presolve pass is skipped.
  const lp::LinearProgram* presolved_lp = nullptr;
  // Extra warm-start incumbent: an adjacent budget's optimum whose
  // simulated peak fits this budget (a schedule's memory use is
  // budget-independent, so feasibility transfers in either direction).
  const RematSolution* warm_start = nullptr;
  // Caller-guaranteed lower bound on the optimal cost (problem cost
  // units; -inf = none). The sweep path derives it from budget
  // monotonicity: for budgets b' <= b, opt(b') >= best_bound(b).
  double known_lower_bound_cost = -lp::kInf;
  // Skip the baseline seeding pass. Sound whenever warm_start is the
  // proven optimum of a smaller budget: no baseline can beat it enough to
  // matter for pruning, and seeding costs real time per sweep point.
  bool skip_baseline_seeds = false;
};

// Core optimal-ILP path over an already-built formulation (whose recorded
// budget is the query budget): baseline seeding, two-phase-rounding
// incumbent heuristic, branch & bound, end-to-end validation.
// Scheduler::solve_optimal_ilp wraps it with a fresh build; the plan
// service calls it against cached formulations.
ScheduleResult solve_ilp_on_formulation(const IlpFormulation& form,
                                        const IlpSolveOptions& options,
                                        const IlpSolveReuse& reuse = {});

class Scheduler {
 public:
  explicit Scheduler(RematProblem problem);

  const RematProblem& problem() const { return problem_; }

  // Cost of evaluating every operation exactly once (the Checkpoint-all
  // ideal; denominator of the overhead metric in Figure 5).
  double ideal_cost() const { return problem_.total_cost_all_nodes(); }

  // Section 4: optimal rematerialization via the MILP.
  ScheduleResult solve_optimal_ilp(double budget_bytes,
                                   const IlpSolveOptions& options = {}) const;

  // Figure 5 workload: optimal plans for many budgets on one model. Routed
  // through a plan service (src/service/plan_service.h) so the formulation
  // and presolve artifacts are built once and each point warm-starts from
  // its neighbor; results come back in the caller's budget order and every
  // point's objective is identical to an independent solve_optimal_ilp
  // call. Defined in src/service/plan_service.cpp.
  std::vector<ScheduleResult> solve_budget_sweep(
      const std::vector<double>& budgets,
      const IlpSolveOptions& options = {}) const;

  // Section 5: LP relaxation + two-phase rounding.
  ScheduleResult solve_lp_rounding(double budget_bytes,
                                   const ApproxOptions& options = {}) const;

  // Validates and prices an externally produced schedule (baselines) against
  // a budget (0 disables the budget check).
  ScheduleResult evaluate_schedule(const RematSolution& sol,
                                   double budget_bytes) const;

 private:
  RematProblem problem_;
};

}  // namespace checkmate
