// Top-level Checkmate API (Figure 2): given a rematerialization problem and
// a memory budget, produce an optimal (MILP) or near-optimal (two-phase LP
// rounding) execution plan, validated end-to-end by the plan simulator.
#pragma once

#include <string>

#include "core/ilp_builder.h"
#include "core/plan.h"
#include "core/remat_problem.h"
#include "core/rounding.h"
#include "core/simulator.h"
#include "milp/milp.h"

namespace checkmate {

struct IlpSolveOptions {
  double time_limit_sec = 60.0;
  double relative_gap = 1e-4;
  bool use_rounding_heuristic = true;  // inject two-phase rounding incumbents
  bool partitioned = true;             // frontier-advancing stages
  bool eliminate_diag_free = true;
  bool stop_at_first_incumbent = false;
  // Solver machinery knobs (threaded straight into milp::MilpOptions; the
  // defaults are the overhauled fast path, the ablation benches flip them).
  bool presolve = true;
  bool pseudocost_branching = true;
  milp::NodeSelection node_selection = milp::NodeSelection::kHybrid;
  // Deterministic work limit: stop after this many cumulative simplex
  // iterations (0 = unlimited). Unlike the wall-clock limit this makes
  // truncated runs machine-independent.
  int64_t max_lp_iterations = 0;
};

struct ApproxOptions {
  // Budget allowance epsilon of Section 5.3: the LP is solved against
  // (1 - epsilon) * budget so the rounded schedule lands under budget.
  double epsilon = 0.1;
  bool randomized = false;
  int samples = 1;  // randomized rounding draws (best feasible kept)
  uint64_t seed = 1;
};

struct ScheduleResult {
  bool feasible = false;
  std::string message;

  RematSolution solution;
  ExecutionPlan plan;
  SimulationResult sim;

  double cost = 0.0;         // simulated compute cost
  double overhead = 0.0;     // cost / ideal (compute-everything-once) cost
  double peak_memory = 0.0;  // simulated peak, bytes

  milp::MilpStatus milp_status = milp::MilpStatus::kError;
  double best_bound = 0.0;       // problem cost units
  double root_relaxation = 0.0;  // problem cost units
  int64_t nodes = 0;
  int64_t lp_iterations = 0;     // cumulative simplex iterations
  double seconds = 0.0;
};

class Scheduler {
 public:
  explicit Scheduler(RematProblem problem);

  const RematProblem& problem() const { return problem_; }

  // Cost of evaluating every operation exactly once (the Checkpoint-all
  // ideal; denominator of the overhead metric in Figure 5).
  double ideal_cost() const { return problem_.total_cost_all_nodes(); }

  // Section 4: optimal rematerialization via the MILP.
  ScheduleResult solve_optimal_ilp(double budget_bytes,
                                   const IlpSolveOptions& options = {}) const;

  // Section 5: LP relaxation + two-phase rounding.
  ScheduleResult solve_lp_rounding(double budget_bytes,
                                   const ApproxOptions& options = {}) const;

  // Validates and prices an externally produced schedule (baselines) against
  // a budget (0 disables the budget check).
  ScheduleResult evaluate_schedule(const RematSolution& sol,
                                   double budget_bytes) const;

 private:
  RematProblem problem_;
};

}  // namespace checkmate
