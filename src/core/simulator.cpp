#include "core/simulator.h"

#include <algorithm>

namespace checkmate {

SimulationResult simulate_plan(const RematProblem& p,
                               const ExecutionPlan& plan,
                               const SimulatorOptions& options) {
  SimulationResult res;
  const int n = p.size();

  auto fail = [&](std::string msg) {
    res.valid = false;
    res.error = std::move(msg);
    return res;
  };

  // Shape guards before any allocation sized from the plan: a malformed
  // plan must produce a diagnostic, never a crash or a giant allocation.
  if (plan.num_registers < 0)
    return fail("plan declares a negative register count");

  std::vector<int> reg_of_node(n, -1);
  std::vector<NodeId> node_of_reg(plan.num_registers, -1);
  std::vector<bool> resident(n, false);
  std::vector<bool> ever_computed(n, false);

  double mem = p.fixed_overhead;
  res.peak_memory = mem;

  for (size_t idx = 0; idx < plan.statements.size(); ++idx) {
    const Statement& st = plan.statements[idx];
    if (st.node < 0 || st.node >= n)
      return fail("statement " + std::to_string(idx) + ": bad node id");
    if (st.stage < 0 || st.stage >= n)
      return fail("statement " + std::to_string(idx) + ": stage " +
                  std::to_string(st.stage) + " out of range [0, " +
                  std::to_string(n) + ")");

    if (st.kind == StatementKind::kCompute) {
      for (NodeId d : p.graph.deps(st.node)) {
        if (!resident[d])
          return fail("statement " + std::to_string(idx) + ": compute " +
                      std::to_string(st.node) + " missing dependency " +
                      std::to_string(d));
      }
      if (resident[st.node])
        return fail("statement " + std::to_string(idx) + ": compute " +
                    std::to_string(st.node) +
                    " while a live register already holds it");
      if (st.reg < 0 || st.reg >= plan.num_registers)
        return fail("statement " + std::to_string(idx) + ": bad register");
      resident[st.node] = true;
      ever_computed[st.node] = true;
      reg_of_node[st.node] = st.reg;
      node_of_reg[st.reg] = st.node;
      mem += p.memory[st.node];
      res.total_cost += p.cost[st.node];
      ++res.compute_count;
    } else {
      if (st.reg < 0 || st.reg >= plan.num_registers ||
          node_of_reg[st.reg] < 0)
        return fail("statement " + std::to_string(idx) +
                    ": deallocate of dead register %" +
                    std::to_string(st.reg));
      const NodeId v = node_of_reg[st.reg];
      if (!resident[v] || reg_of_node[v] != st.reg)
        return fail("statement " + std::to_string(idx) +
                    ": deallocate of stale register %" +
                    std::to_string(st.reg));
      resident[v] = false;
      reg_of_node[v] = -1;
      node_of_reg[st.reg] = -1;
      mem -= p.memory[v];
      ++res.dealloc_count;
    }

    res.peak_memory = std::max(res.peak_memory, mem);
    res.memory_trace.push_back(mem);
    res.stage_trace.push_back(st.stage);
    if (options.budget_bytes > 0.0 && mem > options.budget_bytes + 1e-6)
      return fail("statement " + std::to_string(idx) +
                  ": live memory exceeds budget");
  }

  if (options.require_all_nodes_computed) {
    for (NodeId v = 0; v < n; ++v)
      if (!ever_computed[v])
        return fail("node " + std::to_string(v) + " never computed");
  }
  res.valid = true;
  return res;
}

}  // namespace checkmate
