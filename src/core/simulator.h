// Execution-plan interpreter with exact memory tracking.
//
// The simulator plays the role of the "numerical machine learning
// framework" executing the rebuilt static graph (Figure 2): it validates
// that every compute statement has its dependencies resident, accumulates
// the schedule's compute cost, and tracks the live-memory high-water mark,
// which must come in at or below the solver's budget. Every schedule in
// this repository -- ILP, rounded, or baseline -- is validated through this
// single code path, so strategies are compared on identical accounting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan.h"
#include "core/remat_problem.h"

namespace checkmate {

struct SimulationResult {
  bool valid = false;
  std::string error;

  double total_cost = 0.0;        // sum of C_v over executed computes
  double peak_memory = 0.0;       // bytes, including fixed overhead
  int compute_count = 0;
  int dealloc_count = 0;

  // Memory after each statement; index aligns with plan.statements. Used to
  // draw the Figure 1 timeline.
  std::vector<double> memory_trace;
  // Stage of each statement (copied from the plan) for per-stage plots.
  std::vector<int> stage_trace;
};

struct SimulatorOptions {
  // If > 0, executing a statement that pushes live memory above this value
  // is reported as an error.
  double budget_bytes = 0.0;
  // Require that every node is computed at least once (true for
  // frontier-advancing schedules).
  bool require_all_nodes_computed = true;
};

SimulationResult simulate_plan(const RematProblem& p, const ExecutionPlan& plan,
                               const SimulatorOptions& options = {});

}  // namespace checkmate
