#include "core/solution.h"

#include <algorithm>

namespace checkmate {

BoolMatrix make_bool_matrix(int stages, int nodes) {
  return BoolMatrix(stages, std::vector<uint8_t>(nodes, 0));
}

double RematSolution::compute_cost(const RematProblem& p) const {
  double total = 0.0;
  for (int t = 0; t < stages(); ++t)
    for (int i = 0; i <= t && i < p.size(); ++i)
      if (R[t][i]) total += p.cost[i];
  return total;
}

int64_t RematSolution::num_computations() const {
  int64_t count = 0;
  for (const auto& row : R)
    for (uint8_t v : row) count += v;
  return count;
}

std::string RematSolution::check_feasible(const RematProblem& p) const {
  const int n = p.size();
  const int T = stages();
  if (T != n || static_cast<int>(S.size()) != n)
    return "solution must have T == n stages";
  // Ragged-row guard: every R/S row must span all n nodes. Without this,
  // the per-constraint checks below would index out of bounds on a
  // malformed matrix instead of reporting it.
  for (int t = 0; t < T; ++t) {
    if (static_cast<int>(R[t].size()) != n)
      return "malformed solution: R row " + std::to_string(t) + " has " +
             std::to_string(R[t].size()) + " entries, expected " +
             std::to_string(n);
    if (static_cast<int>(S[t].size()) != n)
      return "malformed solution: S row " + std::to_string(t) + " has " +
             std::to_string(S[t].size()) + " entries, expected " +
             std::to_string(n);
  }
  auto at = [](const BoolMatrix& m, int t, int i) -> uint8_t {
    return m[t][i];
  };
  for (int t = 0; t < T; ++t) {
    if (!at(R, t, t)) return "violates (8a): R[t][t] != 1 at t=" +
                             std::to_string(t);
    for (int i = t + 1; i < n; ++i) {
      if (at(R, t, i))
        return "violates (8c): R[" + std::to_string(t) + "][" +
               std::to_string(i) + "] above diagonal";
      if (at(S, t, i))
        return "violates (8b): S[" + std::to_string(t) + "][" +
               std::to_string(i) + "] above diagonal";
    }
    if (at(S, t, t))
      return "violates (8b): S[t][t] set at t=" + std::to_string(t);
  }
  for (int i = 0; i < n; ++i)
    if (at(S, 0, i)) return "violates (1d): initial checkpoint at i=" +
                            std::to_string(i);
  // (1b): dependencies resident or recomputed in-stage.
  for (int t = 0; t < T; ++t) {
    for (int j = 0; j <= t; ++j) {
      if (!at(R, t, j)) continue;
      for (NodeId i : p.graph.deps(j)) {
        if (!at(R, t, i) && !at(S, t, i))
          return "violates (1b): stage " + std::to_string(t) + " computes " +
                 std::to_string(j) + " without dependency " +
                 std::to_string(i);
      }
    }
  }
  // (1c): checkpoints must have been alive in the previous stage.
  for (int t = 1; t < T; ++t) {
    for (int i = 0; i < t; ++i) {
      if (at(S, t, i) && !at(R, t - 1, i) && !at(S, t - 1, i))
        return "violates (1c): stage " + std::to_string(t) +
               " checkpoints dead value " + std::to_string(i);
    }
  }
  return {};
}

FreeSchedule compute_free_schedule(const RematProblem& p,
                                   const RematSolution& sol) {
  const int n = p.size();
  FreeSchedule fs;
  fs.after_compute.assign(n, {});
  fs.stage_drop.assign(n, {});
  for (int t = 0; t < n; ++t) fs.after_compute[t].assign(n, {});

  auto s_next = [&](int t, int i) -> uint8_t {
    return t + 1 < n ? sol.S[t + 1][i] : 0;
  };

  for (int t = 0; t < n; ++t) {
    for (int k = 0; k <= t; ++k) {
      if (!sol.R[t][k]) continue;
      // FREE[t][i][k] for i in DEPS[k] U {k}: freed iff not checkpointed
      // into t+1 and no user of i runs later in this stage (Eq. 5).
      auto try_free = [&](NodeId i) {
        if (s_next(t, i)) return;
        for (NodeId j : p.graph.users(i)) {
          if (j > k && j <= t && sol.R[t][j]) return;  // hazard
        }
        fs.after_compute[t][k].push_back(i);
      };
      for (NodeId i : p.graph.deps(k)) try_free(i);
      try_free(k);
    }
    // Spurious checkpoints: resident during stage t, never used by a
    // computation in stage t, not recomputed, not retained into t+1.
    for (int i = 0; i < t; ++i) {
      if (!sol.S[t][i] || sol.R[t][i] || s_next(t, i)) continue;
      bool used = false;
      for (NodeId j : p.graph.users(i))
        if (j <= t && sol.R[t][j]) {
          used = true;
          break;
        }
      if (!used) fs.stage_drop[t].push_back(i);
    }
  }
  return fs;
}

std::vector<std::vector<double>> compute_memory_usage(
    const RematProblem& p, const RematSolution& sol) {
  const int n = p.size();
  const FreeSchedule fs = compute_free_schedule(p, sol);
  std::vector<std::vector<double>> u(n);
  for (int t = 0; t < n; ++t) {
    u[t].assign(t + 1, 0.0);
    // Eq. 2: constant overhead plus checkpointed values ...
    double mem = p.fixed_overhead;
    for (int i = 0; i < t; ++i)
      if (sol.S[t][i]) mem += p.memory[i];
    // ... then Eq. 3 forward through the stage.
    for (int k = 0; k <= t; ++k) {
      if (sol.R[t][k]) mem += p.memory[k];
      u[t][k] = mem;
      for (NodeId i : fs.after_compute[t][k]) mem -= p.memory[i];
    }
  }
  return u;
}

double peak_memory_usage(const RematProblem& p, const RematSolution& sol) {
  double peak = 0.0;
  for (const auto& row : compute_memory_usage(p, sol))
    for (double v : row) peak = std::max(peak, v);
  return peak;
}

std::string render_schedule(const RematSolution& sol) {
  std::string out;
  for (int t = 0; t < sol.stages(); ++t) {
    for (size_t i = 0; i < sol.R[t].size(); ++i)
      out += sol.R[t][i] ? '#' : (sol.S[t][i] ? 'o' : '.');
    out += '\n';
  }
  return out;
}

}  // namespace checkmate
