// Schedule representation: the R (recompute) and S (checkpoint) binary
// matrices of Section 4.2, plus derived deallocation decisions (the FREE
// variables of Section 4.4, recovered from R and S per Section 4.8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/remat_problem.h"

namespace checkmate {

using BoolMatrix = std::vector<std::vector<uint8_t>>;

BoolMatrix make_bool_matrix(int stages, int nodes);

struct RematSolution {
  // R[t][i] == 1 iff operation i is (re)computed in stage t; S[t][i] == 1
  // iff the value of i is retained in memory from stage t-1 into stage t.
  // Both are T x n with T == n (frontier-advancing stage partitioning).
  BoolMatrix R, S;

  int stages() const { return static_cast<int>(R.size()); }

  // Objective (1a): sum of C_i over all computations.
  double compute_cost(const RematProblem& p) const;
  // Number of 1 entries in R.
  int64_t num_computations() const;

  // Verifies correctness constraints (1b), (1c) and the frontier-advancing
  // structure (8a-8c). Returns an empty string when feasible, otherwise a
  // description of the first violated constraint.
  std::string check_feasible(const RematProblem& p) const;
};

// Deallocation schedule: FREE[t][k] lists the node ids freed immediately
// after computing node k in stage t (Eq. 5, including the diagonal
// FREE[t][k][k] which the MILP eliminates and we recover post hoc), and
// stage_drop[t] lists spurious checkpoints that die at the stage boundary
// (resident during stage t, unused, not retained into t+1; Section 4.9's
// code-motion candidates).
struct FreeSchedule {
  std::vector<std::vector<std::vector<NodeId>>> after_compute;  // [t][k]
  std::vector<std::vector<NodeId>> stage_drop;                  // [t]
};

FreeSchedule compute_free_schedule(const RematProblem& p,
                                   const RematSolution& sol);

// Exact evaluation of the U memory-accounting recurrence (Eq. 2-3) for a
// given schedule: returns U[t][k] in bytes for k <= t. Used to validate
// ILP solutions against the simulator and to check rounded schedules
// against the budget (Section 5.3).
std::vector<std::vector<double>> compute_memory_usage(const RematProblem& p,
                                                      const RematSolution& sol);

// Peak of compute_memory_usage.
double peak_memory_usage(const RematProblem& p, const RematSolution& sol);

// ASCII rendering of the R matrix in the style of Figure 7 ('#' computed,
// '.' not).
std::string render_schedule(const RematSolution& sol);

}  // namespace checkmate
