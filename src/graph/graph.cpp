#include "graph/graph.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <tuple>

namespace checkmate {

Graph::Graph(int num_nodes) {
  if (num_nodes < 0) throw std::invalid_argument("negative node count");
  users_.resize(num_nodes);
  deps_.resize(num_nodes);
}

NodeId Graph::add_node() {
  users_.emplace_back();
  deps_.emplace_back();
  return static_cast<NodeId>(users_.size()) - 1;
}

NodeId Graph::add_nodes(int count) {
  if (count <= 0) throw std::invalid_argument("add_nodes: count must be > 0");
  const NodeId first = static_cast<NodeId>(users_.size());
  users_.resize(users_.size() + count);
  deps_.resize(deps_.size() + count);
  return first;
}

void Graph::add_edge(NodeId src, NodeId dst) {
  if (src < 0 || src >= size() || dst < 0 || dst >= size())
    throw std::out_of_range("add_edge: node id out of range");
  if (src == dst) throw std::invalid_argument("add_edge: self loop");
  if (has_edge(src, dst)) return;
  users_[src].push_back(dst);
  deps_[dst].push_back(src);
  ++num_edges_;
}

bool Graph::has_edge(NodeId src, NodeId dst) const {
  const auto& u = users_.at(src);
  return std::find(u.begin(), u.end(), dst) != u.end();
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (NodeId v = 0; v < size(); ++v)
    for (NodeId u : users_[v]) out.push_back({v, u});
  std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
  });
  return out;
}

std::optional<std::vector<NodeId>> Graph::topological_order() const {
  std::vector<int> indegree(size());
  for (NodeId v = 0; v < size(); ++v)
    indegree[v] = static_cast<int>(deps_[v].size());
  std::deque<NodeId> ready;
  for (NodeId v = 0; v < size(); ++v)
    if (indegree[v] == 0) ready.push_back(v);
  std::vector<NodeId> order;
  order.reserve(size());
  while (!ready.empty()) {
    NodeId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (NodeId u : users_[v])
      if (--indegree[u] == 0) ready.push_back(u);
  }
  if (static_cast<int>(order.size()) != size()) return std::nullopt;
  return order;
}

bool Graph::is_topologically_labeled() const {
  for (NodeId v = 0; v < size(); ++v)
    for (NodeId u : users_[v])
      if (u <= v) return false;
  return true;
}

std::vector<NodeId> Graph::relabel_topological() {
  auto order = topological_order();
  if (!order) throw std::logic_error("relabel_topological: graph is cyclic");
  std::vector<NodeId> new_id(size());
  for (int pos = 0; pos < size(); ++pos) new_id[(*order)[pos]] = pos;

  std::vector<std::vector<NodeId>> users(size()), deps(size());
  for (NodeId v = 0; v < size(); ++v) {
    for (NodeId u : users_[v]) users[new_id[v]].push_back(new_id[u]);
    for (NodeId d : deps_[v]) deps[new_id[v]].push_back(new_id[d]);
  }
  for (auto& lst : users) std::sort(lst.begin(), lst.end());
  for (auto& lst : deps) std::sort(lst.begin(), lst.end());
  users_ = std::move(users);
  deps_ = std::move(deps);
  return new_id;
}

bool Graph::is_linear() const {
  for (NodeId v = 0; v < size(); ++v) {
    if (v + 1 < size() && !(users_[v].size() == 1 && users_[v][0] == v + 1))
      return false;
    if (v + 1 == size() && !users_[v].empty()) return false;
  }
  return size() > 0;
}

std::vector<NodeId> Graph::sinks() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < size(); ++v)
    if (users_[v].empty()) out.push_back(v);
  return out;
}

std::vector<NodeId> Graph::sources() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < size(); ++v)
    if (deps_[v].empty()) out.push_back(v);
  return out;
}

std::vector<bool> Graph::ancestors_of(NodeId target) const {
  if (target < 0 || target >= size())
    throw std::out_of_range("ancestors_of: bad node id");
  std::vector<bool> seen(size(), false);
  std::vector<NodeId> stack{target};
  seen[target] = true;
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (NodeId d : deps_[v])
      if (!seen[d]) {
        seen[d] = true;
        stack.push_back(d);
      }
  }
  return seen;
}

namespace {

// Iterative Tarjan articulation-point DFS over the undirected view of the
// graph. Recursion is avoided so deep path graphs do not overflow the stack.
struct ApDfs {
  const Graph& g;
  std::vector<int> disc, low;
  std::vector<NodeId> parent;
  std::vector<bool> is_ap;
  int timer = 0;

  explicit ApDfs(const Graph& graph)
      : g(graph),
        disc(graph.size(), -1),
        low(graph.size(), 0),
        parent(graph.size(), -1),
        is_ap(graph.size(), false) {}

  std::vector<NodeId> neighbors(NodeId v) const {
    std::vector<NodeId> n = g.users(v);
    n.insert(n.end(), g.deps(v).begin(), g.deps(v).end());
    return n;
  }

  void run(NodeId root) {
    struct Frame {
      NodeId v;
      std::vector<NodeId> nbrs;
      size_t next = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({root, neighbors(root)});
    disc[root] = low[root] = timer++;
    int root_children = 0;

    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < f.nbrs.size()) {
        NodeId w = f.nbrs[f.next++];
        if (disc[w] == -1) {
          parent[w] = f.v;
          if (f.v == root) ++root_children;
          disc[w] = low[w] = timer++;
          stack.push_back({w, neighbors(w)});
        } else if (w != parent[f.v]) {
          low[f.v] = std::min(low[f.v], disc[w]);
        }
      } else {
        NodeId v = f.v;
        stack.pop_back();
        if (!stack.empty()) {
          NodeId p = stack.back().v;
          low[p] = std::min(low[p], low[v]);
          if (p != root && low[v] >= disc[p]) is_ap[p] = true;
        }
      }
    }
    if (root_children > 1) is_ap[root] = true;
  }
};

}  // namespace

std::vector<NodeId> Graph::articulation_points() const {
  ApDfs dfs(*this);
  for (NodeId v = 0; v < size(); ++v)
    if (dfs.disc[v] == -1) dfs.run(v);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < size(); ++v)
    if (dfs.is_ap[v]) out.push_back(v);
  return out;
}

void Graph::validate() const {
  if (!topological_order())
    throw std::logic_error("Graph::validate: graph contains a cycle");
  for (NodeId v = 0; v < size(); ++v) {
    for (NodeId u : users_[v]) {
      const auto& d = deps_[u];
      if (std::find(d.begin(), d.end(), v) == d.end())
        throw std::logic_error("Graph::validate: adjacency mismatch");
    }
  }
}

Graph make_path_graph(int n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

}  // namespace checkmate
