// Directed acyclic graph substrate used for data-flow graphs.
//
// Nodes are dense integer ids [0, size). Edges are stored both as
// adjacency (users) and reverse adjacency (deps). The library provides the
// graph algorithms the Checkmate system needs: topological ordering,
// reachability, articulation points (for the AP baselines of Section B.1),
// and structural queries (linearity, terminal node).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace checkmate {

using NodeId = int32_t;

struct Edge {
  NodeId src = -1;
  NodeId dst = -1;
  friend bool operator==(const Edge&, const Edge&) = default;
};

// A growable DAG. Edge insertion does not check acyclicity (that would be
// O(V+E) per edge); call validate() or topological_order() to verify.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_nodes);

  // Appends a node and returns its id.
  NodeId add_node();
  // Appends `count` nodes, returning the first new id.
  NodeId add_nodes(int count);

  // Adds edge src -> dst. Duplicate edges are ignored. Self-loops are
  // rejected (throws std::invalid_argument).
  void add_edge(NodeId src, NodeId dst);

  int size() const { return static_cast<int>(users_.size()); }
  int num_edges() const { return num_edges_; }
  bool has_edge(NodeId src, NodeId dst) const;

  // Children: nodes that consume the value produced by v. (USERS in paper.)
  const std::vector<NodeId>& users(NodeId v) const { return users_.at(v); }
  // Parents: nodes whose values v consumes. (DEPS in paper.)
  const std::vector<NodeId>& deps(NodeId v) const { return deps_.at(v); }

  // All edges in (src, dst) lexicographic order.
  std::vector<Edge> edges() const;

  // Kahn topological order; std::nullopt if the graph has a cycle.
  std::optional<std::vector<NodeId>> topological_order() const;

  // True iff node ids are already a topological order (every edge i->j has
  // i < j). Checkmate's MILP assumes this labelling.
  bool is_topologically_labeled() const;

  // Relabels nodes so that ids follow a topological order; returns the
  // mapping old_id -> new_id. Throws if cyclic.
  std::vector<NodeId> relabel_topological();

  // True iff the graph is a path v0 -> v1 -> ... -> v{n-1}.
  bool is_linear() const;

  // Nodes with no users (values never consumed).
  std::vector<NodeId> sinks() const;
  // Nodes with no deps.
  std::vector<NodeId> sources() const;

  // Set of nodes from which `target` is reachable (ancestors of target,
  // including target itself).
  std::vector<bool> ancestors_of(NodeId target) const;

  // Articulation points of the *undirected* form of the graph (Tarjan
  // low-link DFS, O(V+E)). Used by the AP sqrt(n) / AP greedy baselines.
  std::vector<NodeId> articulation_points() const;

  // Throws std::logic_error if the graph is cyclic or malformed.
  void validate() const;

 private:
  std::vector<std::vector<NodeId>> users_;
  std::vector<std::vector<NodeId>> deps_;
  int num_edges_ = 0;
};

// Builds the path graph 0 -> 1 -> ... -> n-1.
Graph make_path_graph(int n);

}  // namespace checkmate
