#include "lp/dense_simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace checkmate::lp {

namespace {

constexpr double kTol = 1e-9;

// Standard-form problem: min c'x, Ax = b, x >= 0.
struct StandardForm {
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  std::vector<double> c;
  double obj_constant = 0.0;
  // Recovers original variable values from standard-form values.
  // orig_x[j] = shift[j] + sign[j] * x[pos[j]] (+ optional negative part).
  struct VarMap {
    double shift = 0.0;
    double sign = 1.0;
    int pos = -1;
    int neg_pos = -1;  // for free variables split as x+ - x-
  };
  std::vector<VarMap> var_map;
  int num_vars() const { return static_cast<int>(c.size()); }
  int num_rows() const { return static_cast<int>(b.size()); }
};

StandardForm to_standard_form(const LinearProgram& lp) {
  StandardForm sf;
  sf.var_map.resize(lp.num_vars());

  // Rows are built as dense coefficient vectors over standard variables;
  // we add standard variables first, collecting substitutions.
  struct PendingRow {
    std::vector<std::pair<int, double>> terms;  // (std var, coef)
    double rhs = 0.0;
    int type = 0;  // -1: <=, 0: ==, +1: >=
  };
  std::vector<PendingRow> rows;

  auto new_var = [&](double cost) {
    sf.c.push_back(cost);
    return sf.num_vars() - 1;
  };

  for (int j = 0; j < lp.num_vars(); ++j) {
    auto& vm = sf.var_map[j];
    const double lo = lp.lb[j], hi = lp.ub[j];
    if (lo == -kInf && hi == kInf) {
      vm.pos = new_var(lp.obj[j]);
      vm.neg_pos = new_var(-lp.obj[j]);
    } else if (lo != -kInf) {
      // x = lo + x', x' >= 0, optionally x' <= hi - lo.
      vm.shift = lo;
      vm.sign = 1.0;
      vm.pos = new_var(lp.obj[j]);
      sf.obj_constant += lp.obj[j] * lo;
      if (hi != kInf)
        rows.push_back({{{vm.pos, 1.0}}, hi - lo, -1});
    } else {
      // Only upper bound: x = hi - x', x' >= 0.
      vm.shift = hi;
      vm.sign = -1.0;
      vm.pos = new_var(-lp.obj[j]);
      sf.obj_constant += lp.obj[j] * hi;
    }
  }

  // Constraint rows. Ranged rows expand to two one-sided rows.
  std::vector<std::vector<std::pair<int, double>>> row_terms(lp.num_rows());
  for (const Triplet& t : lp.entries) {
    const auto& vm = sf.var_map[t.col];
    row_terms[t.row].emplace_back(vm.pos, t.value * vm.sign);
    if (vm.neg_pos >= 0) row_terms[t.row].emplace_back(vm.neg_pos, -t.value);
  }
  for (int r = 0; r < lp.num_rows(); ++r) {
    double shift = 0.0;
    for (const Triplet& t : lp.entries)
      if (t.row == r) shift += t.value * sf.var_map[t.col].shift;
    const double lo = lp.row_lb[r], hi = lp.row_ub[r];
    if (lo == hi) {
      rows.push_back({row_terms[r], lo - shift, 0});
    } else {
      if (hi != kInf) rows.push_back({row_terms[r], hi - shift, -1});
      if (lo != -kInf) rows.push_back({row_terms[r], lo - shift, +1});
    }
  }

  // Add slack / surplus variables and densify.
  for (auto& row : rows) {
    if (row.type == -1) row.terms.emplace_back(new_var(0.0), 1.0);
    if (row.type == +1) row.terms.emplace_back(new_var(0.0), -1.0);
  }
  sf.a.assign(rows.size(), std::vector<double>(sf.num_vars(), 0.0));
  sf.b.resize(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (auto& [v, coef] : rows[r].terms) sf.a[r][v] += coef;
    sf.b[r] = rows[r].rhs;
    if (sf.b[r] < 0) {
      sf.b[r] = -sf.b[r];
      for (double& v : sf.a[r]) v = -v;
    }
  }
  return sf;
}

// Tableau simplex with Bland's rule on min c'x, Ax=b, x>=0, b>=0.
// Returns false if unbounded.
struct Tableau {
  std::vector<std::vector<double>> rows;  // m x (n+1), last col = rhs
  std::vector<double> cost;               // n+1, last = -objective
  std::vector<int> basis;                 // basic variable per row

  bool pivot_until_optimal(int max_iters) {
    const int n = static_cast<int>(cost.size()) - 1;
    const int m = static_cast<int>(rows.size());
    for (int iter = 0; iter < max_iters; ++iter) {
      int enter = -1;
      for (int j = 0; j < n; ++j)
        if (cost[j] < -kTol) {
          enter = j;  // Bland: smallest index
          break;
        }
      if (enter < 0) return true;
      int leave = -1;
      double best_ratio = 0.0;
      for (int i = 0; i < m; ++i) {
        if (rows[i][enter] > kTol) {
          double ratio = rows[i].back() / rows[i][enter];
          if (leave < 0 || ratio < best_ratio - kTol ||
              (std::abs(ratio - best_ratio) <= kTol &&
               basis[i] < basis[leave])) {
            leave = i;
            best_ratio = ratio;
          }
        }
      }
      if (leave < 0) return false;  // unbounded
      pivot(leave, enter);
    }
    return true;  // iteration cap; caller validates result
  }

  void pivot(int r, int j) {
    const double p = rows[r][j];
    for (double& v : rows[r]) v /= p;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (static_cast<int>(i) == r) continue;
      const double f = rows[i][j];
      if (f == 0.0) continue;
      for (size_t k = 0; k < rows[i].size(); ++k)
        rows[i][k] -= f * rows[r][k];
    }
    const double f = cost[j];
    if (f != 0.0)
      for (size_t k = 0; k < cost.size(); ++k) cost[k] -= f * rows[r][k];
    basis[r] = j;
  }
};

}  // namespace

LpResult solve_dense_reference(const LinearProgram& lp) {
  StandardForm sf = to_standard_form(lp);
  const int n = sf.num_vars();
  const int m = sf.num_rows();

  // Phase 1 with artificial variables.
  Tableau t;
  t.rows.assign(m, std::vector<double>(n + m + 1, 0.0));
  t.basis.resize(m);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) t.rows[i][j] = sf.a[i][j];
    t.rows[i][n + i] = 1.0;
    t.rows[i].back() = sf.b[i];
    t.basis[i] = n + i;
  }
  t.cost.assign(n + m + 1, 0.0);
  for (int j = n; j < n + m; ++j) t.cost[j] = 1.0;
  // Price out the artificial basis.
  for (int i = 0; i < m; ++i)
    for (size_t k = 0; k < t.cost.size(); ++k) t.cost[k] -= t.rows[i][k];

  LpResult result;
  const int max_iters = 200000;
  if (!t.pivot_until_optimal(max_iters)) {
    result.status = LpStatus::kNumericalError;
    return result;
  }
  if (-t.cost.back() > 1e-7) {
    result.status = LpStatus::kInfeasible;
    result.objective = kInf;
    return result;
  }
  // Drive artificials out of the basis where possible.
  for (int i = 0; i < m; ++i) {
    if (t.basis[i] < n) continue;
    int j = 0;
    while (j < n && std::abs(t.rows[i][j]) <= kTol) ++j;
    if (j < n) t.pivot(i, j);
    // Otherwise the row is redundant; leave the artificial at zero.
  }

  // Phase 2: real objective, artificial columns forbidden (cost +inf-like).
  t.cost.assign(n + m + 1, 0.0);
  for (int j = 0; j < n; ++j) t.cost[j] = sf.c[j];
  for (int j = n; j < n + m; ++j) t.cost[j] = 1e30;
  for (int i = 0; i < m; ++i) {
    const double f = t.cost[t.basis[i]];
    if (f != 0.0)
      for (size_t k = 0; k < t.cost.size(); ++k)
        t.cost[k] -= f * t.rows[i][k];
  }
  if (!t.pivot_until_optimal(max_iters)) {
    result.status = LpStatus::kUnbounded;
    result.objective = -kInf;
    return result;
  }

  // Extract standard-form solution, then map back.
  std::vector<double> xs(n, 0.0);
  for (int i = 0; i < m; ++i)
    if (t.basis[i] < n) xs[t.basis[i]] = t.rows[i].back();
  result.x.resize(lp.num_vars());
  for (int j = 0; j < lp.num_vars(); ++j) {
    const auto& vm = sf.var_map[j];
    double v = vm.shift + vm.sign * xs[vm.pos];
    if (vm.neg_pos >= 0) v -= xs[vm.neg_pos];
    result.x[j] = v;
  }
  result.status = LpStatus::kOptimal;
  result.objective = lp.objective_value(result.x);
  return result;
}

}  // namespace checkmate::lp
