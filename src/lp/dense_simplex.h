// Reference LP solver: textbook two-phase dense-tableau primal simplex with
// Bland's rule. Exponentially slower than the sparse dual simplex engine but
// simple enough to trust; the test suite cross-validates DualSimplex against
// this implementation on randomized instances.
#pragma once

#include "lp/lp_problem.h"

namespace checkmate::lp {

// Solves `lp` ignoring integrality markers. Intended for small instances
// (tens of variables); cost is O(rows^2 * cols) per pivot.
LpResult solve_dense_reference(const LinearProgram& lp);

}  // namespace checkmate::lp
