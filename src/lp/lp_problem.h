// In-memory description of a (mixed-integer) linear program:
//
//   minimize    c' x
//   subject to  row_lb <= A x <= row_ub     (ranged constraints)
//               lb <= x <= ub               (variable bounds)
//               x_j integral for j in integer set
//
// The struct is solver-agnostic; DualSimplex and MilpSolver consume it.
#pragma once

#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "lp/sparse_matrix.h"

namespace checkmate::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

struct LinearProgram {
  std::vector<double> obj;
  std::vector<double> lb, ub;
  std::vector<bool> is_integer;
  std::vector<std::string> var_names;

  // Constraint rows as triplets plus per-row activity bounds.
  std::vector<Triplet> entries;
  std::vector<double> row_lb, row_ub;

  // Stable per-row identities: add_constraint stamps each row with the next
  // id, and remove_rows preserves the survivors' ids. DualSimplex snapshots
  // capture row ids so a basis taken before cut-row garbage collection can
  // be remapped onto the post-GC LP (see BasisSnapshot). Ids are strictly
  // increasing in row order by construction.
  std::vector<int64_t> row_ids;
  int64_t next_row_id = 0;

  // Rows participating in DualSimplex Curtis-Reid scaling: rows >= this
  // prefix (dynamically appended cut rows) keep unit row-scale so every
  // engine constructed over this LP -- at any point of the cut lifecycle --
  // derives identical scale factors. Negative means "all rows" (the default
  // for LPs that never grow).
  int scaling_rows = -1;

  int num_vars() const { return static_cast<int>(obj.size()); }
  int num_rows() const { return static_cast<int>(row_lb.size()); }

  // Adds a variable, returning its index.
  int add_var(double lower, double upper, double cost, bool integer = false,
              std::string name = {}) {
    if (lower > upper) throw std::invalid_argument("add_var: lower > upper");
    obj.push_back(cost);
    lb.push_back(lower);
    ub.push_back(upper);
    is_integer.push_back(integer);
    var_names.push_back(std::move(name));
    return num_vars() - 1;
  }

  int add_binary(double cost, std::string name = {}) {
    return add_var(0.0, 1.0, cost, /*integer=*/true, std::move(name));
  }

  // Adds the ranged constraint lower <= sum(terms) <= upper. Use kInf / -kInf
  // for one-sided rows and lower == upper for equalities.
  int add_constraint(std::span<const std::pair<int, double>> terms,
                     double lower, double upper) {
    if (lower > upper)
      throw std::invalid_argument("add_constraint: lower > upper");
    const int r = num_rows();
    for (const auto& [var, coef] : terms) {
      if (var < 0 || var >= num_vars())
        throw std::out_of_range("add_constraint: bad variable index");
      if (coef != 0.0) entries.push_back({r, var, coef});
    }
    row_lb.push_back(lower);
    row_ub.push_back(upper);
    row_ids.push_back(next_row_id++);
    return r;
  }

  // Physically deletes the given rows (sorted, unique indices); surviving
  // rows renumber down but keep their row_ids. Branch & cut calls this at
  // epoch barriers to drop aged-out cut rows -- engines over this LP must
  // be rebuilt afterwards (sync_rows only handles appends), and snapshots
  // captured before the removal remap by row id on restore.
  void remove_rows(std::span<const int> rows) {
    if (rows.empty()) return;
    std::vector<char> dead(num_rows(), 0);
    for (int r : rows) {
      if (r < 0 || r >= num_rows())
        throw std::out_of_range("remove_rows: bad row index");
      dead[r] = 1;
    }
    std::vector<int> new_of(num_rows(), -1);
    int out = 0;
    for (int r = 0; r < num_rows(); ++r) {
      if (dead[r]) continue;
      new_of[r] = out;
      row_lb[out] = row_lb[r];
      row_ub[out] = row_ub[r];
      row_ids[out] = row_ids[r];
      ++out;
    }
    row_lb.resize(out);
    row_ub.resize(out);
    row_ids.resize(out);
    size_t eout = 0;
    for (const Triplet& t : entries) {
      if (new_of[t.row] < 0) continue;
      entries[eout] = {new_of[t.row], t.col, t.value};
      ++eout;
    }
    entries.resize(eout);
  }

  int add_le(std::span<const std::pair<int, double>> terms, double rhs) {
    return add_constraint(terms, -kInf, rhs);
  }
  int add_ge(std::span<const std::pair<int, double>> terms, double rhs) {
    return add_constraint(terms, rhs, kInf);
  }
  int add_eq(std::span<const std::pair<int, double>> terms, double rhs) {
    return add_constraint(terms, rhs, rhs);
  }

  SparseMatrix matrix() const {
    return SparseMatrix(num_rows(), num_vars(), entries);
  }

  // Evaluates c'x.
  double objective_value(std::span<const double> x) const {
    double acc = 0.0;
    for (int j = 0; j < num_vars(); ++j) acc += obj[j] * x[j];
    return acc;
  }

  // Max constraint/bound violation of x (used by tests and the MILP solver
  // to accept candidate incumbents).
  double max_violation(std::span<const double> x) const {
    double viol = 0.0;
    for (int j = 0; j < num_vars(); ++j) {
      viol = std::max(viol, lb[j] - x[j]);
      viol = std::max(viol, x[j] - ub[j]);
    }
    std::vector<double> activity(num_rows(), 0.0);
    for (const Triplet& t : entries) activity[t.row] += t.value * x[t.col];
    for (int r = 0; r < num_rows(); ++r) {
      viol = std::max(viol, row_lb[r] - activity[r]);
      viol = std::max(viol, activity[r] - row_ub[r]);
    }
    return viol;
  }
};

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  // The dual objective provably crossed SimplexOptions::objective_limit:
  // the LP optimum is >= dual_bound >= limit. Branch & bound uses this to
  // abandon node re-solves the incumbent already prunes, without paying
  // for the remaining pivots to optimality.
  kObjectiveLimit,
  kNumericalError,
};

const char* to_string(LpStatus status);

struct LpResult {
  LpStatus status = LpStatus::kNumericalError;
  double objective = 0.0;
  // Sound lower bound on the LP optimum, valid whenever > -inf. Equals
  // `objective` on kOptimal; on kIterationLimit (iteration or wall-clock
  // truncation) it is the dual objective of the last dual-feasible basis,
  // corrected for the deterministic cost perturbation -- truncated
  // branch-and-bound node solves use it to tighten subtree bounds instead
  // of discarding the work. kInf on kInfeasible.
  double dual_bound = -kInf;
  std::vector<double> x;  // primal values, size num_vars()
  int iterations = 0;
};

}  // namespace checkmate::lp
