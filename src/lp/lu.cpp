#include "lp/lu.h"

#include <cmath>
#include <cstdlib>

#include "robust/fault_injection.h"

namespace checkmate::lp {

namespace {
constexpr double kPivotTol = 1e-11;
}

bool LuFactorization::factorize(int m, std::span<const BasisColumn> cols) {
  // Chaos tier: an injected LU breakdown reports the basis singular, which
  // exercises the same recovery ladder as a genuinely degenerate basis.
  if (robust::fault(robust::FaultPoint::kLuFactorize)) return false;
  m_ = m;
  l_ptr_.assign(1, 0);
  l_idx_.clear();
  l_val_.clear();
  u_ptr_.assign(1, 0);
  u_idx_.clear();
  u_val_.clear();
  u_diag_.assign(m, 0.0);
  pivot_row_.assign(m, -1);

  // row_step[r] = elimination step whose pivot is row r, or -1.
  std::vector<int> row_step(m, -1);
  std::vector<double> work(m, 0.0);     // dense accumulator for column solve
  std::vector<int> pattern;             // nonzero rows of work
  pattern.reserve(64);
  std::vector<int> topo;                // elimination steps, topo order
  topo.reserve(64);
  std::vector<char> visited(m, 0);      // per-step DFS mark
  std::vector<int> dfs_stack, dfs_pos;  // iterative DFS state

  for (int j = 0; j < m; ++j) {
    // ---- Symbolic: find reachable elimination steps via DFS through L.
    topo.clear();
    pattern.clear();
    auto brows = cols[j].rows;
    auto bvals = cols[j].values;
    for (size_t k = 0; k < brows.size(); ++k) {
      int r = brows[k];
      int step = row_step[r];
      if (step < 0 || visited[step]) continue;
      // Iterative DFS from `step` over steps reachable through L columns.
      dfs_stack.assign(1, step);
      dfs_pos.assign(1, l_ptr_[step]);
      visited[step] = 1;
      while (!dfs_stack.empty()) {
        int s = dfs_stack.back();
        int& p = dfs_pos.back();
        bool descended = false;
        while (p < l_ptr_[s + 1]) {
          int child = row_step[l_idx_[p]];
          ++p;
          if (child >= 0 && !visited[child]) {
            visited[child] = 1;
            dfs_stack.push_back(child);
            dfs_pos.push_back(l_ptr_[child]);
            descended = true;
            break;
          }
        }
        if (!descended && !dfs_stack.empty() &&
            dfs_pos.back() >= l_ptr_[dfs_stack.back() + 1]) {
          topo.push_back(dfs_stack.back());
          dfs_stack.pop_back();
          dfs_pos.pop_back();
        }
      }
    }
    // topo is in DFS postorder: dependencies appear before dependents, i.e.
    // steps we must apply later appear first; reverse-iterate nothing --
    // postorder already guarantees children (larger reachable steps) are
    // emitted before parents, so apply in *reverse* to get increasing
    // dependency order. Eliminations must run in increasing step order of
    // discovery chains; postorder reversal gives a valid topological order.

    // ---- Numeric: scatter b, then eliminate.
    for (size_t k = 0; k < brows.size(); ++k) work[brows[k]] = bvals[k];

    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      int step = *it;
      visited[step] = 0;  // reset mark for next column
      double piv_val = work[pivot_row_[step]];
      if (piv_val != 0.0) {
        for (int p = l_ptr_[step]; p < l_ptr_[step + 1]; ++p)
          work[l_idx_[p]] -= l_val_[p] * piv_val;
      }
    }

    // ---- Collect pattern: pivoted rows -> U column, unpivoted -> pivot
    // candidates. We must enumerate all rows that may be nonzero: the
    // original pattern plus fill from eliminations.
    pattern.assign(brows.begin(), brows.end());
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      int step = *it;
      pattern.push_back(pivot_row_[step]);
      for (int p = l_ptr_[step]; p < l_ptr_[step + 1]; ++p)
        pattern.push_back(l_idx_[p]);
    }

    // Deduplicate via the work array itself: first pass picks pivot.
    int best_row = -1;
    double best_abs = 0.0;
    for (int r : pattern) {
      if (row_step[r] >= 0) continue;  // already pivoted: U entry
      double v = std::abs(work[r]);
      if (v > best_abs) {
        best_abs = v;
        best_row = r;
      }
    }
    if (best_row < 0 || best_abs < kPivotTol) {
      // Singular basis: clean the dense work array, then leave the object
      // in a safe identity state so a rogue solve on a failed
      // factorization cannot index with -1 pivot rows.
      for (int r : pattern) work[r] = 0.0;
      l_ptr_.assign(m + 1, 0);
      l_idx_.clear();
      l_val_.clear();
      u_ptr_.assign(m + 1, 0);
      u_idx_.clear();
      u_val_.clear();
      u_diag_.assign(m, 1.0);
      pivot_row_.resize(m);
      for (int k = 0; k < m; ++k) pivot_row_[k] = k;
      return false;
    }

    // Emit U column j (entries at already-pivoted rows, indexed by step;
    // row dedup handled by zeroing the work array as entries are drained).
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      int step = *it;
      int r = pivot_row_[step];
      double v = work[r];
      if (v != 0.0) {
        u_idx_.push_back(step);
        u_val_.push_back(v);
        work[r] = 0.0;
      }
    }
    // Original-pattern rows that were already pivoted but not reached via
    // DFS cannot exist: if work[r] != 0 and row_step[r] >= 0 the DFS would
    // have visited that step. Remaining nonzeros are unpivoted rows.
    u_ptr_.push_back(static_cast<int>(u_idx_.size()));

    const double pivot = work[best_row];
    u_diag_[j] = pivot;
    pivot_row_[j] = best_row;
    row_step[best_row] = j;
    work[best_row] = 0.0;

    // Emit L column j: multipliers for remaining unpivoted nonzero rows.
    for (int r : pattern) {
      double v = work[r];
      if (v != 0.0) {
        l_idx_.push_back(r);
        l_val_.push_back(v / pivot);
        work[r] = 0.0;
      }
    }
    l_ptr_.push_back(static_cast<int>(l_idx_.size()));
  }
  return true;
}

void LuFactorization::ftran(std::span<double> x) const {
  // Forward eliminate: for each step k in order, subtract multiples of the
  // pivot value from the rows of L column k.
  for (int k = 0; k < m_; ++k) {
    double piv = x[pivot_row_[k]];
    if (piv == 0.0) continue;
    for (int p = l_ptr_[k]; p < l_ptr_[k + 1]; ++p)
      x[l_idx_[p]] -= l_val_[p] * piv;
  }
  // Back substitute on U. Result lands in basis-position space; gather the
  // pivot-row values first, then solve.
  // x_pos[j] = (z[pivot_row_[j]] - sum_{k>j} U[j,k] x_pos[k]) / u_diag_[j]
  // U stored by column: column k holds entries (step j < k, value U[j,k]).
  for (int k = m_ - 1; k >= 0; --k) {
    double v = x[pivot_row_[k]] / u_diag_[k];
    // Temporarily stash the solved value in the same dense vector, keyed by
    // pivot row: scatter contributions of x_pos[k] to earlier steps.
    x[pivot_row_[k]] = v;
    for (int p = u_ptr_[k]; p < u_ptr_[k + 1]; ++p)
      x[pivot_row_[u_idx_[p]]] -= u_val_[p] * v;
  }
  // Permute from row keyed to position keyed.
  // x currently holds x_pos[k] at index pivot_row_[k].
  thread_local std::vector<double> tmp;
  tmp.assign(x.begin(), x.end());
  for (int k = 0; k < m_; ++k) x[k] = tmp[pivot_row_[k]];
}

void LuFactorization::btran(std::span<double> y) const {
  // Input y is in basis-position space: y_pos[k]. Solve U' w = y (forward in
  // k since U is upper triangular in step space).
  thread_local std::vector<double> w;
  w.assign(y.begin(), y.end());
  for (int k = 0; k < m_; ++k) {
    double acc = w[k];
    for (int p = u_ptr_[k]; p < u_ptr_[k + 1]; ++p)
      acc -= u_val_[p] * w[u_idx_[p]];
    w[k] = acc / u_diag_[k];
  }
  // Solve L' P y = w, output in row space: process steps in reverse.
  for (int i = 0; i < m_; ++i) y[i] = 0.0;
  for (int k = m_ - 1; k >= 0; --k) {
    double acc = w[k];
    for (int p = l_ptr_[k]; p < l_ptr_[k + 1]; ++p)
      acc -= l_val_[p] * y[l_idx_[p]];
    y[pivot_row_[k]] = acc;
  }
}

}  // namespace checkmate::lp
