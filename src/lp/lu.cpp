#include "lp/lu.h"

#include <cmath>
#include <cstdlib>
#include <queue>

#include "robust/fault_injection.h"

namespace checkmate::lp {

namespace {
constexpr double kPivotTol = 1e-11;
// Forrest-Tomlin stability guards: an update is rejected (forcing a full
// refactorize) when an eliminator multiplier blows up or the replacement
// diagonal is a near-total cancellation.
constexpr double kFtMuMax = 1e8;
constexpr double kFtDiagTol = 1e-10;

// Removes the entry keyed by `slot` from a (slot, value) list, preserving
// the order of the remaining entries (list order feeds floating-point
// summation order, which must stay a pure function of the update sequence).
void erase_slot(std::vector<std::pair<int, double>>& list, int slot) {
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i].first == slot) {
      list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}
}  // namespace

bool LuFactorization::factorize(int m, std::span<const BasisColumn> cols) {
  // Chaos tier: an injected LU breakdown reports the basis singular, which
  // exercises the same recovery ladder as a genuinely degenerate basis.
  if (robust::fault(robust::FaultPoint::kLuFactorize)) return false;
  m_ = m;
  l_ptr_.assign(1, 0);
  l_idx_.clear();
  l_val_.clear();
  u_ptr_.assign(1, 0);
  u_idx_.clear();
  u_val_.clear();
  u_diag_.assign(m, 0.0);
  pivot_row_.assign(m, -1);
  // A fresh factorization supersedes any accumulated Forrest-Tomlin state.
  mutable_u_ = false;
  urows_.clear();
  ucols_.clear();
  r_etas_.clear();
  eta_nnz_ = 0;
  u_nnz_ = 0;
  spike_valid_ = false;

  // row_step[r] = elimination step whose pivot is row r, or -1.
  std::vector<int> row_step(m, -1);
  std::vector<double> work(m, 0.0);     // dense accumulator for column solve
  std::vector<int> pattern;             // nonzero rows of work
  pattern.reserve(64);
  std::vector<int> topo;                // elimination steps, topo order
  topo.reserve(64);
  std::vector<char> visited(m, 0);      // per-step DFS mark
  std::vector<int> dfs_stack, dfs_pos;  // iterative DFS state

  for (int j = 0; j < m; ++j) {
    // ---- Symbolic: find reachable elimination steps via DFS through L.
    topo.clear();
    pattern.clear();
    auto brows = cols[j].rows;
    auto bvals = cols[j].values;
    for (size_t k = 0; k < brows.size(); ++k) {
      int r = brows[k];
      int step = row_step[r];
      if (step < 0 || visited[step]) continue;
      // Iterative DFS from `step` over steps reachable through L columns.
      dfs_stack.assign(1, step);
      dfs_pos.assign(1, l_ptr_[step]);
      visited[step] = 1;
      while (!dfs_stack.empty()) {
        int s = dfs_stack.back();
        int& p = dfs_pos.back();
        bool descended = false;
        while (p < l_ptr_[s + 1]) {
          int child = row_step[l_idx_[p]];
          ++p;
          if (child >= 0 && !visited[child]) {
            visited[child] = 1;
            dfs_stack.push_back(child);
            dfs_pos.push_back(l_ptr_[child]);
            descended = true;
            break;
          }
        }
        if (!descended && !dfs_stack.empty() &&
            dfs_pos.back() >= l_ptr_[dfs_stack.back() + 1]) {
          topo.push_back(dfs_stack.back());
          dfs_stack.pop_back();
          dfs_pos.pop_back();
        }
      }
    }
    // topo is in DFS postorder: dependencies appear before dependents, i.e.
    // steps we must apply later appear first; reverse-iterate nothing --
    // postorder already guarantees children (larger reachable steps) are
    // emitted before parents, so apply in *reverse* to get increasing
    // dependency order. Eliminations must run in increasing step order of
    // discovery chains; postorder reversal gives a valid topological order.

    // ---- Numeric: scatter b, then eliminate.
    for (size_t k = 0; k < brows.size(); ++k) work[brows[k]] = bvals[k];

    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      int step = *it;
      visited[step] = 0;  // reset mark for next column
      double piv_val = work[pivot_row_[step]];
      if (piv_val != 0.0) {
        for (int p = l_ptr_[step]; p < l_ptr_[step + 1]; ++p)
          work[l_idx_[p]] -= l_val_[p] * piv_val;
      }
    }

    // ---- Collect pattern: pivoted rows -> U column, unpivoted -> pivot
    // candidates. We must enumerate all rows that may be nonzero: the
    // original pattern plus fill from eliminations.
    pattern.assign(brows.begin(), brows.end());
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      int step = *it;
      pattern.push_back(pivot_row_[step]);
      for (int p = l_ptr_[step]; p < l_ptr_[step + 1]; ++p)
        pattern.push_back(l_idx_[p]);
    }

    // Deduplicate via the work array itself: first pass picks pivot.
    int best_row = -1;
    double best_abs = 0.0;
    for (int r : pattern) {
      if (row_step[r] >= 0) continue;  // already pivoted: U entry
      double v = std::abs(work[r]);
      if (v > best_abs) {
        best_abs = v;
        best_row = r;
      }
    }
    if (best_row < 0 || best_abs < kPivotTol) {
      // Singular basis: clean the dense work array, then leave the object
      // in a safe identity state so a rogue solve on a failed
      // factorization cannot index with -1 pivot rows.
      for (int r : pattern) work[r] = 0.0;
      l_ptr_.assign(m + 1, 0);
      l_idx_.clear();
      l_val_.clear();
      u_ptr_.assign(m + 1, 0);
      u_idx_.clear();
      u_val_.clear();
      u_diag_.assign(m, 1.0);
      pivot_row_.resize(m);
      for (int k = 0; k < m; ++k) pivot_row_[k] = k;
      return false;
    }

    // Emit U column j (entries at already-pivoted rows, indexed by step;
    // row dedup handled by zeroing the work array as entries are drained).
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      int step = *it;
      int r = pivot_row_[step];
      double v = work[r];
      if (v != 0.0) {
        u_idx_.push_back(step);
        u_val_.push_back(v);
        work[r] = 0.0;
      }
    }
    // Original-pattern rows that were already pivoted but not reached via
    // DFS cannot exist: if work[r] != 0 and row_step[r] >= 0 the DFS would
    // have visited that step. Remaining nonzeros are unpivoted rows.
    u_ptr_.push_back(static_cast<int>(u_idx_.size()));

    const double pivot = work[best_row];
    u_diag_[j] = pivot;
    pivot_row_[j] = best_row;
    row_step[best_row] = j;
    work[best_row] = 0.0;

    // Emit L column j: multipliers for remaining unpivoted nonzero rows.
    for (int r : pattern) {
      double v = work[r];
      if (v != 0.0) {
        l_idx_.push_back(r);
        l_val_.push_back(v / pivot);
        work[r] = 0.0;
      }
    }
    l_ptr_.push_back(static_cast<int>(l_idx_.size()));
  }
  return true;
}

void LuFactorization::lower_solve(std::span<double> x) const {
  // Forward eliminate: for each step k in order, subtract multiples of the
  // pivot value from the rows of L column k.
  for (int k = 0; k < m_; ++k) {
    double piv = x[pivot_row_[k]];
    if (piv == 0.0) continue;
    for (int p = l_ptr_[k]; p < l_ptr_[k + 1]; ++p)
      x[l_idx_[p]] -= l_val_[p] * piv;
  }
}

void LuFactorization::apply_etas(std::span<double> x) const {
  // x := R_k ... R_1 x with R_i = I - e_s mu', applied in row space via
  // pivot_row_. Only the spiked row changes per eta.
  for (const RowEta& e : r_etas_) {
    double acc = x[pivot_row_[e.slot]];
    for (const auto& [t, mu] : e.mu) acc -= mu * x[pivot_row_[t]];
    x[pivot_row_[e.slot]] = acc;
  }
}

void LuFactorization::upper_solve(std::span<double> x) const {
  if (!mutable_u_) {
    // Back substitute on U. Result lands in basis-position space; gather the
    // pivot-row values first, then solve.
    // x_pos[j] = (z[pivot_row_[j]] - sum_{k>j} U[j,k] x_pos[k]) / u_diag_[j]
    // U stored by column: column k holds entries (step j < k, value U[j,k]).
    for (int k = m_ - 1; k >= 0; --k) {
      double v = x[pivot_row_[k]] / u_diag_[k];
      // Temporarily stash the solved value in the same dense vector, keyed
      // by pivot row: scatter contributions of x_pos[k] to earlier steps.
      x[pivot_row_[k]] = v;
      for (int p = u_ptr_[k]; p < u_ptr_[k + 1]; ++p)
        x[pivot_row_[u_idx_[p]]] -= u_val_[p] * v;
    }
  } else {
    // Same back substitution over the mutable form, walking slots in the
    // current logical elimination order.
    for (int k = m_ - 1; k >= 0; --k) {
      const int s = order_[k];
      const double v = x[pivot_row_[s]] / diag_[s];
      x[pivot_row_[s]] = v;
      if (v != 0.0) {
        for (const auto& [t, u] : ucols_[s]) x[pivot_row_[t]] -= u * v;
      }
    }
  }
  // Permute from row keyed to position keyed.
  // x currently holds x_pos[k] at index pivot_row_[k].
  thread_local std::vector<double> tmp;
  tmp.assign(x.begin(), x.end());
  for (int k = 0; k < m_; ++k) x[k] = tmp[pivot_row_[k]];
}

void LuFactorization::ftran(std::span<double> x) const {
  lower_solve(x);
  apply_etas(x);
  upper_solve(x);
}

void LuFactorization::ftran_spike(std::span<double> x) {
  lower_solve(x);
  apply_etas(x);
  spike_.assign(x.begin(), x.end());
  spike_valid_ = true;
}

void LuFactorization::ftran_finish(std::span<double> x) const {
  upper_solve(x);
}

void LuFactorization::btran(std::span<double> y) const {
  // Input y is in basis-position space: y_pos[k]. Solve U' w = y (forward in
  // elimination order since U is upper triangular in that order).
  thread_local std::vector<double> w;
  w.assign(y.begin(), y.end());
  if (!mutable_u_) {
    for (int k = 0; k < m_; ++k) {
      double acc = w[k];
      for (int p = u_ptr_[k]; p < u_ptr_[k + 1]; ++p)
        acc -= u_val_[p] * w[u_idx_[p]];
      w[k] = acc / u_diag_[k];
    }
  } else {
    for (int k = 0; k < m_; ++k) {
      const int s = order_[k];
      double acc = w[s];
      for (const auto& [t, u] : ucols_[s]) acc -= u * w[t];
      w[s] = acc / diag_[s];
    }
  }
  // Transposed row etas, reverse order: R' = I - mu e_s', so each eta
  // scatters the spiked slot's value into its support. Slot space here.
  for (auto it = r_etas_.rbegin(); it != r_etas_.rend(); ++it) {
    const double ws = w[it->slot];
    if (ws != 0.0) {
      for (const auto& [t, mu] : it->mu) w[t] -= mu * ws;
    }
  }
  // Solve L' P y = w, output in row space: process steps in reverse.
  for (int i = 0; i < m_; ++i) y[i] = 0.0;
  for (int k = m_ - 1; k >= 0; --k) {
    double acc = w[k];
    for (int p = l_ptr_[k]; p < l_ptr_[k + 1]; ++p)
      acc -= l_val_[p] * y[l_idx_[p]];
    y[pivot_row_[k]] = acc;
  }
}

void LuFactorization::ensure_mutable() {
  if (mutable_u_) return;
  urows_.assign(m_, {});
  ucols_.assign(m_, {});
  diag_ = u_diag_;
  order_.resize(m_);
  pos_of_.resize(m_);
  row_slot_.assign(m_, 0);
  for (int k = 0; k < m_; ++k) {
    order_[k] = k;
    pos_of_[k] = k;
    row_slot_[pivot_row_[k]] = k;
  }
  for (int k = 0; k < m_; ++k) {
    for (int p = u_ptr_[k]; p < u_ptr_[k + 1]; ++p) {
      ucols_[k].push_back({u_idx_[p], u_val_[p]});
      urows_[u_idx_[p]].push_back({k, u_val_[p]});
    }
  }
  u_nnz_ = static_cast<int64_t>(u_idx_.size());
  mutable_u_ = true;
}

bool LuFactorization::update(int pos) {
  if (!spike_valid_ || pos < 0 || pos >= m_) return false;
  ensure_mutable();
  spike_valid_ = false;
  const int sp = pos;
  const int p0 = pos_of_[sp];

  // ---- Eliminate old row sp against the rows at later logical positions.
  // Min-heap on logical position keeps elimination order well defined; fill
  // only ever lands at strictly later positions, so a single sweep works.
  if (static_cast<int>(elim_work_.size()) < m_) elim_work_.assign(m_, 0.0);
  std::priority_queue<std::pair<int, int>, std::vector<std::pair<int, int>>,
                      std::greater<>>
      heap;
  for (const auto& [t, u] : urows_[sp]) {
    elim_work_[t] = u;
    heap.push({pos_of_[t], t});
  }
  std::vector<std::pair<int, double>> mu;
  double spike_dot = 0.0;  // sum_t mu_t * spike[t]
  bool unstable = false;
  while (!heap.empty()) {
    const int t = heap.top().second;
    heap.pop();
    const double val = elim_work_[t];
    elim_work_[t] = 0.0;
    if (val == 0.0) continue;  // cancelled out, or duplicate heap entry
    const double mu_t = val / diag_[t];
    if (!(std::abs(mu_t) <= kFtMuMax)) {  // also catches NaN
      unstable = true;
      break;
    }
    mu.push_back({t, mu_t});
    spike_dot += mu_t * spike_[pivot_row_[t]];
    for (const auto& [t2, u] : urows_[t]) {
      if (elim_work_[t2] == 0.0) heap.push({pos_of_[t2], t2});
      elim_work_[t2] -= mu_t * u;
    }
  }
  if (unstable) {
    while (!heap.empty()) {
      elim_work_[heap.top().second] = 0.0;
      heap.pop();
    }
    return false;
  }

  const double v_sp = spike_[pivot_row_[sp]];
  const double new_diag = v_sp - spike_dot;
  // Stability check before any mutation: a near-cancelled diagonal means
  // the updated factorization would be garbage -- refuse and let the caller
  // refactorize from scratch.
  const double ref = std::abs(v_sp) + std::abs(spike_dot);
  if (!(std::abs(new_diag) >= kPivotTol &&
        std::abs(new_diag) >= kFtDiagTol * ref)) {
    return false;
  }

  // ---- Commit: drop old row sp and old column sp, install the spike as
  // the new column sp, record the eta, and move sp to the end of the order.
  for (const auto& [t, u] : urows_[sp]) erase_slot(ucols_[t], sp);
  u_nnz_ -= static_cast<int64_t>(urows_[sp].size());
  urows_[sp].clear();
  for (const auto& [s, u] : ucols_[sp]) erase_slot(urows_[s], sp);
  u_nnz_ -= static_cast<int64_t>(ucols_[sp].size());
  ucols_[sp].clear();

  for (int r = 0; r < m_; ++r) {
    const double v = spike_[r];
    if (v == 0.0) continue;
    const int t = row_slot_[r];
    if (t == sp) continue;  // diagonal handled below
    ucols_[sp].push_back({t, v});
    urows_[t].push_back({sp, v});
    ++u_nnz_;
  }
  diag_[sp] = new_diag;
  eta_nnz_ += static_cast<int64_t>(mu.size());
  r_etas_.push_back({sp, std::move(mu)});

  order_.erase(order_.begin() + p0);
  order_.push_back(sp);
  for (int k = p0; k < m_; ++k) pos_of_[order_[k]] = k;
  return true;
}

}  // namespace checkmate::lp
