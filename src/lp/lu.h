// Sparse LU factorization of a simplex basis matrix, in the style of
// Gilbert-Peierls left-looking LU with partial pivoting. The factorization
// consumes the basis as a list of sparse columns and provides the two solves
// the simplex engine needs:
//
//   ftran: solve B x = b   (b given in row space, x in basis-position space)
//   btran: solve B' y = c  (c given in basis-position space, y in row space)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace checkmate::lp {

// One sparse basis column handed to the factorization.
struct BasisColumn {
  std::span<const int> rows;
  std::span<const double> values;
};

class LuFactorization {
 public:
  // Factors the m x m basis whose k-th column is cols[k]. Returns false if
  // the basis is numerically singular (no acceptable pivot in some column).
  bool factorize(int m, std::span<const BasisColumn> cols);

  // In-place solves. Vectors must have length m. See file comment for the
  // row-space / position-space convention.
  void ftran(std::span<double> x) const;
  void btran(std::span<double> y) const;

  int dim() const { return m_; }
  // Fill-in diagnostic: total stored nonzeros in L and U.
  int64_t nnz() const {
    return static_cast<int64_t>(l_idx_.size() + u_idx_.size() + m_);
  }

 private:
  int m_ = 0;

  // L stored by elimination step (column) k: strictly-below-diagonal
  // multipliers indexed by *original row id*. Unit diagonal implicit.
  std::vector<int> l_ptr_, l_idx_;
  std::vector<double> l_val_;

  // U stored by column j: above-diagonal entries indexed by *elimination
  // step*, diagonal kept separately.
  std::vector<int> u_ptr_, u_idx_;
  std::vector<double> u_val_;
  std::vector<double> u_diag_;

  std::vector<int> pivot_row_;  // elimination step k -> original row id
};

}  // namespace checkmate::lp
