// Sparse LU factorization of a simplex basis matrix, in the style of
// Gilbert-Peierls left-looking LU with partial pivoting. The factorization
// consumes the basis as a list of sparse columns and provides the two solves
// the simplex engine needs:
//
//   ftran: solve B x = b   (b given in row space, x in basis-position space)
//   btran: solve B' y = c  (c given in basis-position space, y in row space)
//
// Between refactorizations the factors can absorb basis changes via
// Forrest-Tomlin updates: update(pos) replaces the column at basis position
// `pos` with the column whose partial solve ftran_spike() stashed last. Each
// update costs one row elimination (recorded as a row eta applied inside
// F^-1 = R_k ... R_1 L^-1) plus a column swap in U, so the expensive full
// refactorization can be deferred for hundreds of pivots instead of ~64.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace checkmate::lp {

// One sparse basis column handed to the factorization.
struct BasisColumn {
  std::span<const int> rows;
  std::span<const double> values;
};

class LuFactorization {
 public:
  // Factors the m x m basis whose k-th column is cols[k]. Returns false if
  // the basis is numerically singular (no acceptable pivot in some column).
  // Discards any accumulated Forrest-Tomlin updates.
  bool factorize(int m, std::span<const BasisColumn> cols);

  // In-place solves. Vectors must have length m. See file comment for the
  // row-space / position-space convention.
  void ftran(std::span<double> x) const;
  void btran(std::span<double> y) const;

  // Partial FTRAN for Forrest-Tomlin: applies only F^-1 (the L factor plus
  // the accumulated row etas), leaving x in row space. The result is stashed
  // as the candidate spike for a subsequent update(); complete the solve
  // with ftran_finish, which yields exactly ftran()'s result.
  void ftran_spike(std::span<double> x);
  void ftran_finish(std::span<double> x) const;

  // Forrest-Tomlin basis replacement: the column at basis position `pos` is
  // replaced by the column ftran_spike() last stashed. Returns false --
  // leaving the factors untouched, caller must refactorize -- when the
  // update would be numerically unstable (tiny replacement diagonal or huge
  // eliminator multipliers) or no spike is pending.
  bool update(int pos);

  // Number of Forrest-Tomlin updates absorbed since the last factorize().
  int updates() const { return static_cast<int>(r_etas_.size()); }

  int dim() const { return m_; }
  // Fill-in diagnostic: total stored nonzeros in L, U, and the FT row etas.
  int64_t nnz() const {
    const int64_t u =
        mutable_u_ ? u_nnz_ : static_cast<int64_t>(u_idx_.size());
    return static_cast<int64_t>(l_idx_.size()) + u + m_ + eta_nnz_;
  }

 private:
  void lower_solve(std::span<double> x) const;  // x := L^-1 x (row space)
  void apply_etas(std::span<double> x) const;   // x := R_k...R_1 x
  void upper_solve(std::span<double> x) const;  // back-subst + permute
  void ensure_mutable();

  int m_ = 0;

  // L stored by elimination step (column) k: strictly-below-diagonal
  // multipliers indexed by *original row id*. Unit diagonal implicit.
  std::vector<int> l_ptr_, l_idx_;
  std::vector<double> l_val_;

  // Static U straight out of factorize(), stored by column j:
  // above-diagonal entries indexed by *elimination step*, diagonal kept
  // separately. Used verbatim until the first update() converts to the
  // mutable form below.
  std::vector<int> u_ptr_, u_idx_;
  std::vector<double> u_val_;
  std::vector<double> u_diag_;

  std::vector<int> pivot_row_;  // elimination step k -> original row id

  // ---- Mutable U for Forrest-Tomlin updates. A "slot" is an elimination
  // step of the original factorization == a basis position; slots are never
  // renumbered by updates, only their logical elimination ORDER changes
  // (each spiked slot moves to the end). urows_/ucols_ mirror the
  // off-diagonal entries of U by slot, diag_ holds the diagonal.
  bool mutable_u_ = false;
  std::vector<std::vector<std::pair<int, double>>> urows_;  // row s: (t, U[s][t])
  std::vector<std::vector<std::pair<int, double>>> ucols_;  // col t: (s, U[s][t])
  std::vector<double> diag_;
  std::vector<int> order_;     // slots in elimination order
  std::vector<int> pos_of_;    // inverse of order_
  std::vector<int> row_slot_;  // original row id -> slot (inverse pivot_row_)
  int64_t u_nnz_ = 0;

  // Row eta from one update: R = I - e_s mu' with mu supported on the slots
  // that eliminated old row s, applied in row space through pivot_row_.
  struct RowEta {
    int slot;
    std::vector<std::pair<int, double>> mu;  // (slot t, multiplier)
  };
  std::vector<RowEta> r_etas_;
  int64_t eta_nnz_ = 0;

  // Spike stash from ftran_spike (dense, row space) and update scratch.
  std::vector<double> spike_;
  bool spike_valid_ = false;
  std::vector<double> elim_work_;
};

}  // namespace checkmate::lp
