#include "lp/simplex.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "robust/fault_injection.h"

namespace checkmate::lp {

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration_limit";
    case LpStatus::kObjectiveLimit: return "objective_limit";
    case LpStatus::kNumericalError: return "numerical_error";
  }
  return "unknown";
}

// Curtis-Reid geometric-mean scaling: least-squares fit of log2 row/column
// factors (minimize sum (log2|a_ij| + rho_i + gamma_j)^2) by Gauss-Seidel
// sweeps of the normal equations, factors rounded to powers of two so every
// scale/unscale is exact. Rows at or past LinearProgram::scaling_rows
// (dynamically appended cut rows) keep unit row scale, which makes the
// factors identical for every engine constructed over the working LP at any
// point in the cut lifecycle.
void DualSimplex::compute_scaling(const LinearProgram& lp) {
  scale_.assign(num_total(), 1.0);
  const uint64_t kFnvOffset = 1469598103934665603ull;
  const uint64_t kFnvPrime = 1099511628211ull;
  // Hash only non-unit factors, keyed by column: engines constructed over
  // the same LP before and after cut-row appends (whose factors are all 1)
  // must agree on the identity, as must scaling-off engines vs. scaling-on
  // engines whose factors all round to 1.
  scaling_hash_ = kFnvOffset;
  auto hash_exp = [&](int col, int e) {
    if (e == 0) return;
    scaling_hash_ ^= static_cast<uint64_t>(col);
    scaling_hash_ *= kFnvPrime;
    scaling_hash_ ^= static_cast<uint64_t>(static_cast<int64_t>(e));
    scaling_hash_ *= kFnvPrime;
  };
  if (!opt_.scaling) return;
  const int prefix =
      lp.scaling_rows < 0 ? m_ : std::min(lp.scaling_rows, m_);
  // Per-row / per-column sums of log-magnitudes over participating entries.
  std::vector<double> rho(m_, 0.0), gamma(n_, 0.0);
  std::vector<int> row_cnt(m_, 0), col_cnt(n_, 0);
  std::vector<double> logs;
  logs.reserve(lp.entries.size());
  std::vector<const Triplet*> live;
  live.reserve(lp.entries.size());
  for (const Triplet& t : lp.entries) {
    if (t.row >= prefix || t.value == 0.0) continue;
    live.push_back(&t);
    logs.push_back(std::log2(std::abs(t.value)));
    ++row_cnt[t.row];
    ++col_cnt[t.col];
  }
  for (int sweep = 0; sweep < 20; ++sweep) {
    std::vector<double> acc(m_, 0.0);
    for (size_t k = 0; k < live.size(); ++k)
      acc[live[k]->row] += logs[k] + gamma[live[k]->col];
    for (int i = 0; i < m_; ++i)
      if (row_cnt[i] > 0) rho[i] = -acc[i] / row_cnt[i];
    std::vector<double> cacc(n_, 0.0);
    for (size_t k = 0; k < live.size(); ++k)
      cacc[live[k]->col] += logs[k] + rho[live[k]->row];
    for (int j = 0; j < n_; ++j)
      if (col_cnt[j] > 0) gamma[j] = -cacc[j] / col_cnt[j];
  }
  auto rounded = [](double v) {
    const double c = std::max(-20.0, std::min(20.0, v));
    return static_cast<int>(std::lround(c));
  };
  for (int j = 0; j < n_; ++j) {
    const int e = col_cnt[j] > 0 ? rounded(gamma[j]) : 0;
    scale_[j] = std::exp2(static_cast<double>(e));
    hash_exp(j, e);
  }
  for (int i = 0; i < m_; ++i) {
    // Slack column scale is 1/r_i: the scaled slack column stays exactly
    // -1, so the engine's hardcoded slack handling is untouched.
    const int e = row_cnt[i] > 0 ? rounded(rho[i]) : 0;
    scale_[n_ + i] = std::exp2(static_cast<double>(-e));
    hash_exp(n_ + i, -e);
  }
}

DualSimplex::DualSimplex(const LinearProgram& lp, SimplexOptions options)
    : lp_(&lp), opt_(options), n_(lp.num_vars()), m_(lp.num_rows()),
      entries_synced_(lp.entries.size()) {
  compute_scaling(lp);
  // Structural matrix in the scaled frame: entry (i, j) picks up r_i * q_j
  // (powers of two, exact). r_i = 1 / scale_[n_+i] by the slack convention.
  {
    std::vector<Triplet> scaled(lp.entries.begin(), lp.entries.end());
    for (Triplet& t : scaled)
      t.value *= scale_[t.col] / scale_[n_ + t.row];
    a_ = SparseMatrix(m_, n_, scaled);
  }
  if (static_cast<int>(lp.row_ids.size()) == m_) {
    row_ids_ = lp.row_ids;
  } else {
    row_ids_.resize(m_);
    for (int i = 0; i < m_; ++i) row_ids_[i] = i;
  }
  cost_.assign(num_total(), 0.0);
  lo_.assign(num_total(), 0.0);
  hi_.assign(num_total(), 0.0);
  // Deterministic cost perturbation: breaks the massive dual degeneracy of
  // 0/1 scheduling LPs. Scaled per column by the column's own cost
  // magnitude (zero-cost columns fall back to the global max so they
  // still get jitter) -- a purely global scale would distort badly-ranged
  // objectives, see SimplexOptions::perturbation. Jitter is
  // applied in the original frame, then scaled with the cost.
  double max_cost = 1.0;
  for (int j = 0; j < n_; ++j)
    max_cost = std::max(max_cost, std::abs(lp.obj[j]));
  cost_scale_ = max_cost;
  unsigned h = 0x2545f491u;
  for (int j = 0; j < n_; ++j) {
    h = h * 1664525u + 1013904223u;
    const double mag = lp.obj[j] == 0.0 ? max_cost : std::abs(lp.obj[j]);
    const double jitter =
        options.perturbation * mag *
        (1.0 + static_cast<double>(h % 1024) / 1024.0);
    cost_[j] = (lp.obj[j] + jitter) * scale_[j];
    lo_[j] = lp.lb[j] / scale_[j];
    hi_[j] = lp.ub[j] / scale_[j];
  }
  for (int i = 0; i < m_; ++i) {
    lo_[n_ + i] = lp.row_lb[i] / scale_[n_ + i];
    hi_[n_ + i] = lp.row_ub[i] / scale_[n_ + i];
  }
  status_.assign(num_total(), kNonbasicLower);
  x_.assign(num_total(), 0.0);
  xb_.assign(m_, 0.0);
  d_.assign(num_total(), 0.0);
  basic_var_.assign(m_, -1);
  dse_w_.assign(m_, 1.0);
  alpha_v_.assign(num_total(), 0.0);
  alpha_mark_.assign(num_total(), 0);
  banned_mark_.assign(num_total(), 0);
}

void DualSimplex::set_var_bounds(int var, double lower, double upper) {
  if (var < 0 || var >= n_) throw std::out_of_range("set_var_bounds");
  if (lower > upper) throw std::invalid_argument("set_var_bounds: lb > ub");
  lo_[var] = lower / scale_[var];
  hi_[var] = upper / scale_[var];
  if (status_[var] != kBasic) {
    // Snap a nonbasic variable back inside its (possibly shrunken) box.
    // (All in the scaled frame: x_ and lo_/hi_ live scaled.)
    if (status_[var] == kNonbasicLower || x_[var] < lo_[var]) {
      if (lo_[var] != -kInf) {
        status_[var] = kNonbasicLower;
        x_[var] = lo_[var];
      }
    }
    if (status_[var] == kNonbasicUpper || x_[var] > hi_[var]) {
      if (hi_[var] != kInf) {
        status_[var] = kNonbasicUpper;
        x_[var] = hi_[var];
      }
    }
    // Keep the dual-feasible side when both bounds finite and d has a sign.
    if (d_[var] > opt_.optimality_tol && lo_[var] != -kInf) {
      status_[var] = kNonbasicLower;
      x_[var] = lo_[var];
    } else if (d_[var] < -opt_.optimality_tol && hi_[var] != kInf) {
      status_[var] = kNonbasicUpper;
      x_[var] = hi_[var];
    }
  }
  xb_dirty_ = true;
  // Reduced costs of previously-fixed columns are not maintained while
  // fixed; refresh them before the next solve.
  d_dirty_ = true;
}

void DualSimplex::sync_rows() {
  const int m_new = lp_->num_rows();
  if (m_new == m_) return;
  if (m_new < m_)
    throw std::logic_error("sync_rows: rows were removed from the LP");
  // Fold the appended entries into the matrix, in the scaled frame.
  // Appended rows may only reference rows >= m_ (cuts never retouch
  // existing rows) and keep unit row scale, so only the column factor
  // applies.
  {
    std::vector<Triplet> tail(lp_->entries.begin() + entries_synced_,
                              lp_->entries.end());
    for (Triplet& t : tail) t.value *= scale_[t.col];
    a_.append_rows(m_new - m_, tail);
  }
  entries_synced_ = lp_->entries.size();
  const bool lp_has_ids = static_cast<int>(lp_->row_ids.size()) == m_new;
  for (int i = m_; i < m_new; ++i)
    row_ids_.push_back(lp_has_ids ? lp_->row_ids[i] : i);
  scale_.resize(n_ + m_new, 1.0);

  // Grow the column-indexed state: structural columns keep their indices,
  // existing slacks keep theirs (slack of row i is column n_ + i), and the
  // new rows' slacks append at the end.
  const int total_new = n_ + m_new;
  cost_.resize(total_new, 0.0);
  lo_.resize(total_new, 0.0);
  hi_.resize(total_new, 0.0);
  status_.resize(total_new, static_cast<int8_t>(kNonbasicLower));
  x_.resize(total_new, 0.0);
  d_.resize(total_new, 0.0);
  alpha_v_.resize(total_new, 0.0);
  alpha_mark_.resize(total_new, 0);
  banned_mark_.resize(total_new, 0);
  basic_var_.resize(m_new, -1);
  xb_.resize(m_new, 0.0);
  dse_w_.resize(m_new, 1.0);
  for (int i = m_; i < m_new; ++i) {
    const int sj = n_ + i;
    lo_[sj] = lp_->row_lb[i];
    hi_[sj] = lp_->row_ub[i];
    if (basis_valid_) {
      // The new row enters with its slack basic: the extended basis matrix
      // is block lower triangular over the old one, so it stays
      // nonsingular; the LU factors are rebuilt lazily.
      status_[sj] = kBasic;
      basic_var_[i] = sj;
      dse_w_[i] = 1.0;
    }
  }
  m_ = m_new;
  if (basis_valid_) {
    needs_refactor_ = true;
    d_dirty_ = true;
  }
  xb_dirty_ = true;
}

BasisSnapshot DualSimplex::snapshot() const {
  BasisSnapshot s;
  s.valid = basis_valid_;
  s.num_rows = m_;
  s.row_ids = row_ids_;
  s.scaling_hash = scaling_hash_;
  // Bound overrides are captured even before the first solve (invalid
  // basis): a clone taken after set_var_bounds but before solve() must
  // still see the same feasible region as the original. Overrides and free
  // values are stored in the TRUE frame (scale factors are powers of two,
  // so the round trip through the scaled frame is exact); that keeps
  // snapshots portable across engines with different scale vectors.
  for (int j = 0; j < num_total(); ++j) {
    const double base_lo =
        (j < n_ ? lp_->lb[j] : lp_->row_lb[j - n_]) / scale_[j];
    const double base_hi =
        (j < n_ ? lp_->ub[j] : lp_->row_ub[j - n_]) / scale_[j];
    if (lo_[j] != base_lo || hi_[j] != base_hi)
      s.bounds.push_back({j, lo_[j] * scale_[j], hi_[j] * scale_[j]});
  }
  if (!s.valid) return s;
  s.status.assign(status_.begin(), status_.end());
  s.basic_var = basic_var_;
  s.dse_weights = dse_w_;
  s.used_artificial_bound = used_artificial_bound_;
  for (int j = 0; j < num_total(); ++j)
    if (status_[j] == kFree && x_[j] != 0.0)
      s.free_values.emplace_back(j, x_[j] * scale_[j]);
  return s;
}

void DualSimplex::restore(const BasisSnapshot& snap) {
  // Adopt any rows appended to the working LP since this engine last saw
  // it; the snapshot may have been captured before those rows existed (a
  // parent basis restored into a child LP that has more cuts).
  sync_rows();
  // Basis membership, statuses, bound overrides, and free values are all
  // frame-independent (the numeric ones are stored in the true frame), so
  // a snapshot restores correctly into an engine with a different scale
  // vector. Only the steepest-edge weights live in the scaled frame: on a
  // scaling-identity mismatch they reset to the unit frame -- correct,
  // deterministic, just a different pricing trajectory. Engines that must
  // stay bit-identical (branch & bound workers) share a scale vector by
  // construction via LinearProgram::scaling_rows.
  const bool same_frame = snap.scaling_hash == scaling_hash_;
  // Reset bounds to the base LP (scaled), then overlay the snapshot's
  // overrides (true frame -- see snapshot()). The engine constructor
  // may never have run make_initial_basis, and a prior make_initial_basis
  // may have installed artificial bounds; both are wiped here so the
  // restored state carries no history.
  for (int j = 0; j < n_; ++j) {
    lo_[j] = lp_->lb[j] / scale_[j];
    hi_[j] = lp_->ub[j] / scale_[j];
  }
  for (int i = 0; i < m_; ++i) {
    lo_[n_ + i] = lp_->row_lb[i] / scale_[n_ + i];
    hi_[n_ + i] = lp_->row_ub[i] / scale_[n_ + i];
  }
  etas_.clear();
  pivots_since_refactor_ = 0;
  stall_count_ = 0;
  price_dirty_ = true;
  std::fill(d_.begin(), d_.end(), 0.0);
  for (const auto& b : snap.bounds) {
    // Overrides on rows that no longer exist (captured before a cut-row
    // GC) have nothing to apply to; branch decisions only ever target
    // structural columns, which are stable.
    if (b.col < n_) {
      lo_[b.col] = b.lo / scale_[b.col];
      hi_[b.col] = b.hi / scale_[b.col];
    }
  }
  // Fresh-engine reset: used for invalid snapshots AND as the fallback when
  // a row-remapped basis fails validation. Keeps the bound overrides
  // already applied above -- always correct, just a cold start.
  auto reset_to_slack_start = [&] {
    basis_valid_ = false;
    needs_refactor_ = false;
    d_dirty_ = false;
    xb_dirty_ = true;
    used_artificial_bound_ = false;
    std::fill(status_.begin(), status_.end(),
              static_cast<int8_t>(kNonbasicLower));
    std::fill(x_.begin(), x_.end(), 0.0);
    std::fill(basic_var_.begin(), basic_var_.end(), -1);
    dse_w_.assign(m_, 1.0);
  };
  if (!snap.valid) {
    reset_to_slack_start();
    return;
  }

  // Row mapping. Fast path: the snapshot's row ids are a prefix of the
  // current ids (pure appends since capture) -- adopt the basis directly
  // and make the newer rows' slacks basic, exactly the state a freshly
  // appended cut row enters in. Ids are strictly increasing on both sides,
  // so the prefix test is a straight element compare.
  const bool ids_known =
      static_cast<int>(snap.row_ids.size()) == snap.num_rows;
  bool prefix = ids_known && snap.num_rows <= m_;
  if (prefix) {
    for (int i = 0; i < snap.num_rows; ++i) {
      if (snap.row_ids[i] != row_ids_[i]) {
        prefix = false;
        break;
      }
    }
  }
  if (prefix) {
    std::copy(snap.status.begin(), snap.status.end(), status_.begin());
    std::copy(snap.basic_var.begin(), snap.basic_var.end(),
              basic_var_.begin());
    for (int i = snap.num_rows; i < m_; ++i) {
      status_[n_ + i] = kBasic;
      basic_var_[i] = n_ + i;
    }
    if (same_frame &&
        static_cast<int>(snap.dse_weights.size()) == snap.num_rows) {
      std::copy(snap.dse_weights.begin(), snap.dse_weights.end(),
                dse_w_.begin());
      std::fill(dse_w_.begin() + snap.num_rows, dse_w_.end(), 1.0);
    } else {
      dse_w_.assign(m_, 1.0);
    }
    used_artificial_bound_ = snap.used_artificial_bound;
    for (int j = 0; j < num_total(); ++j) {
      if (status_[j] == kBasic) continue;
      if (status_[j] == kFree)
        x_[j] = 0.0;
      else
        x_[j] = status_[j] == kNonbasicUpper ? hi_[j] : lo_[j];
    }
    for (const auto& [j, v] : snap.free_values) x_[j] = v / scale_[j];
    basis_valid_ = true;
    needs_refactor_ = true;  // LU rebuilt lazily by the next solve()
    d_dirty_ = true;
    xb_dirty_ = true;
    return;
  }
  if (!ids_known) {
    // A legacy snapshot without ids that is not a prefix by count: nothing
    // to match on. Cold start.
    reset_to_slack_start();
    return;
  }

  // General remap: rows were garbage-collected (and possibly appended)
  // since the capture. Match rows by id with one merge pass (both id lists
  // are strictly increasing), carry the surviving rows' basis state, and
  // deterministically re-place whatever the removed rows held.
  std::vector<int> new_of_old(snap.num_rows, -1);
  {
    size_t i = 0;
    for (int r = 0; r < m_; ++r) {
      while (i < snap.row_ids.size() && snap.row_ids[i] < row_ids_[r]) ++i;
      if (i == snap.row_ids.size()) break;
      if (snap.row_ids[i] == row_ids_[r]) new_of_old[i++] = r;
    }
  }
  auto remap_col = [&](int col) -> int {
    if (col < n_) return col;
    const int r_new = new_of_old[col - n_];
    return r_new >= 0 ? n_ + r_new : -1;
  };
  // Structural statuses carry over; every row starts slack-basic and
  // surviving rows then adopt their captured state.
  for (int j = 0; j < n_; ++j) status_[j] = snap.status[j];
  for (int i = 0; i < m_; ++i) {
    status_[n_ + i] = kBasic;
    basic_var_[i] = n_ + i;
    dse_w_[i] = 1.0;
  }
  const bool dse_ok =
      same_frame &&
      static_cast<int>(snap.dse_weights.size()) == snap.num_rows;
  for (int r_old = 0; r_old < snap.num_rows; ++r_old) {
    const int r_new = new_of_old[r_old];
    if (r_new < 0) continue;
    status_[n_ + r_new] = snap.status[n_ + r_old];
    basic_var_[r_new] = remap_col(snap.basic_var[r_old]);  // may be -1
    if (dse_ok) dse_w_[r_new] = snap.dse_weights[r_old];
  }
  // Structurals that were basic in removed rows lost their position: place
  // them nonbasic on a deterministic side.
  for (int r_old = 0; r_old < snap.num_rows; ++r_old) {
    if (new_of_old[r_old] >= 0) continue;
    const int bv = snap.basic_var[r_old];
    if (bv < 0 || bv >= n_) continue;
    if (lo_[bv] != -kInf)
      status_[bv] = kNonbasicLower;
    else if (hi_[bv] != kInf)
      status_[bv] = kNonbasicUpper;
    else
      status_[bv] = kFree;
  }
  // Positions whose captured basic column vanished with a removed row:
  // take the position's own slack if it is not already basic elsewhere.
  bool broken = false;
  for (int i = 0; i < m_; ++i) {
    if (basic_var_[i] >= 0) continue;
    const int sj = n_ + i;
    if (status_[sj] != kBasic) {
      status_[sj] = kBasic;
      basic_var_[i] = sj;
      dse_w_[i] = 1.0;
    } else {
      broken = true;
    }
  }
  // Full validation: the remapped basis must be a bijection between basis
  // positions and kBasic columns. Any inconsistency -> cold start (correct,
  // just slower); the result stays a pure function of (snapshot, LP).
  if (!broken) {
    std::vector<char> seen(num_total(), 0);
    for (int i = 0; i < m_ && !broken; ++i) {
      const int bv = basic_var_[i];
      if (bv < 0 || bv >= num_total() || status_[bv] != kBasic || seen[bv])
        broken = true;
      else
        seen[bv] = 1;
    }
    for (int j = 0; j < num_total() && !broken; ++j)
      if (status_[j] == kBasic && !seen[j]) broken = true;
  }
  if (broken) {
    reset_to_slack_start();
    return;
  }
  used_artificial_bound_ = snap.used_artificial_bound;
  for (int j = 0; j < num_total(); ++j) {
    if (status_[j] == kBasic) continue;
    if (status_[j] == kFree)
      x_[j] = 0.0;
    else
      x_[j] = status_[j] == kNonbasicUpper ? hi_[j] : lo_[j];
  }
  for (const auto& [j, v] : snap.free_values) {
    const int col = remap_col(j);
    if (col >= 0 && status_[col] == kFree) x_[col] = v / scale_[col];
  }
  basis_valid_ = true;
  needs_refactor_ = true;
  d_dirty_ = true;
  xb_dirty_ = true;
}

DualSimplex DualSimplex::clone() const {
  DualSimplex copy(*lp_, opt_);
  copy.restore(snapshot());
  return copy;
}

double DualSimplex::dot_work_column(int col,
                                    const std::vector<double>& dense) const {
  if (is_slack(col)) return -dense[col - n_];
  return a_.dot_column(col, dense);
}

void DualSimplex::axpy_work_column(int col, double alpha,
                                   std::vector<double>& dense) const {
  if (is_slack(col)) {
    dense[col - n_] -= alpha;
    return;
  }
  a_.axpy_column(col, alpha, dense);
}

void DualSimplex::ftran(std::vector<double>& x) const {
  lu_.ftran(x);
  for (const Eta& e : etas_) {
    double piv = x[e.pivot_pos] / e.pivot_val;
    x[e.pivot_pos] = piv;
    if (piv != 0.0)
      for (size_t k = 0; k < e.idx.size(); ++k)
        x[e.idx[k]] -= e.val[k] * piv;
  }
}

void DualSimplex::btran(std::vector<double>& y) const {
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = y[it->pivot_pos];
    for (size_t k = 0; k < it->idx.size(); ++k)
      acc -= it->val[k] * y[it->idx[k]];
    y[it->pivot_pos] = acc / it->pivot_val;
  }
  lu_.btran(y);
}

bool DualSimplex::refactorize() {
  std::vector<BasisColumn> cols(m_);
  // Slack columns are synthesized; keep their storage alive in one arena.
  std::vector<int> slack_rows(m_);
  static const double kMinusOne = -1.0;
  for (int i = 0; i < m_; ++i) {
    int col = basic_var_[i];
    if (is_slack(col)) {
      slack_rows[i] = col - n_;
      cols[i] = {{&slack_rows[i], 1}, {&kMinusOne, 1}};
    } else {
      cols[i] = {a_.col_rows(col), a_.col_values(col)};
    }
  }
  etas_.clear();
  pivots_since_refactor_ = 0;
  ++stats_.refactorizations;
  const bool ok = lu_.factorize(m_, cols);
  nnz_base_ = lu_.nnz();
  return ok;
}

void DualSimplex::recompute_reduced_costs() {
  // y = B^-T c_B, d_j = c_j - y . W_j
  std::vector<double> y(m_, 0.0);
  for (int i = 0; i < m_; ++i) y[i] = cost_[basic_var_[i]];
  btran(y);
  for (int j = 0; j < num_total(); ++j) {
    if (status_[j] == kBasic) {
      d_[j] = 0.0;
    } else {
      d_[j] = cost_[j] - dot_work_column(j, y);
    }
  }
}

void DualSimplex::recompute_basic_values() {
  // x_B = -B^-1 W_N x_N  (rhs of W x = 0 moved to the right).
  std::vector<double> rhs(m_, 0.0);
  for (int j = 0; j < num_total(); ++j) {
    if (status_[j] == kBasic || x_[j] == 0.0) continue;
    axpy_work_column(j, -x_[j], rhs);
  }
  ftran(rhs);
  xb_ = std::move(rhs);
  xb_dirty_ = false;
  // Wholesale basic-value motion invalidates the pricing candidate list.
  price_dirty_ = true;
}

double DualSimplex::bound_for_status(int col, int status) const {
  return status == kNonbasicLower ? lo_[col] : hi_[col];
}

void DualSimplex::make_initial_basis() {
  used_artificial_bound_ = false;
  for (int i = 0; i < m_; ++i) {
    basic_var_[i] = n_ + i;
    status_[n_ + i] = kBasic;
  }
  for (int j = 0; j < n_; ++j) {
    // Dual-feasible placement: cost >= 0 wants lower bound, cost < 0 wants
    // upper bound. Missing bounds fall back to the other side, or to an
    // artificial bound for genuinely free dual-infeasible columns.
    const double c = cost_[j];
    if (c >= 0.0) {
      if (lo_[j] != -kInf) {
        status_[j] = kNonbasicLower;
        x_[j] = lo_[j];
      } else if (c == 0.0) {
        status_[j] = kFree;
        x_[j] = 0.0;
      } else if (hi_[j] != kInf) {
        // Placing at the upper bound makes d_j = c > 0 with status upper:
        // dual infeasible. Use an artificial lower bound instead.
        lo_[j] = -opt_.artificial_bound;
        used_artificial_bound_ = true;
        status_[j] = kNonbasicLower;
        x_[j] = lo_[j];
      } else {
        lo_[j] = -opt_.artificial_bound;
        used_artificial_bound_ = true;
        status_[j] = kNonbasicLower;
        x_[j] = lo_[j];
      }
    } else {
      if (hi_[j] != kInf) {
        status_[j] = kNonbasicUpper;
        x_[j] = hi_[j];
      } else {
        hi_[j] = opt_.artificial_bound;
        used_artificial_bound_ = true;
        status_[j] = kNonbasicUpper;
        x_[j] = hi_[j];
      }
    }
  }
  basis_valid_ = true;
  xb_dirty_ = true;
  dse_w_.assign(m_, 1.0);
}

void DualSimplex::compute_pivot_row(const std::vector<double>& rho) {
  ++alpha_stamp_;
  alpha_idx_.clear();
  const int64_t stamp = alpha_stamp_;
  for (int i = 0; i < m_; ++i) {
    const double r = rho[i];
    if (r == 0.0) continue;
    // Slack column n+i is -e_i, so its alpha is just -rho_i.
    const int sj = n_ + i;
    alpha_v_[sj] = -r;
    alpha_mark_[sj] = stamp;
    alpha_idx_.push_back(sj);
    const auto cols = a_.row_cols(i);
    const auto vals = a_.row_values(i);
    for (size_t k = 0; k < cols.size(); ++k) {
      const int j = cols[k];
      const double add = vals[k] * r;
      if (alpha_mark_[j] == stamp) {
        alpha_v_[j] += add;
      } else {
        alpha_mark_[j] = stamp;
        alpha_v_[j] = add;
        alpha_idx_.push_back(j);
      }
    }
  }
}

double DualSimplex::truncated_dual_bound() const {
  if (!basis_valid_) return -kInf;
  double z = 0.0;
  for (int j = 0; j < num_total(); ++j)
    if (status_[j] != kBasic && x_[j] != 0.0) z += cost_[j] * x_[j];
  for (int i = 0; i < m_; ++i) z += cost_[basic_var_[i]] * xb_[i];
  // z is the dual objective of the current dual-feasible basis, so it
  // bounds the *perturbed* optimum from below; subtracting each column's
  // worst-case jitter contribution over its box makes it sound for the
  // true costs. A jittered column with no finite hot-side bound leaves
  // nothing to correct against. (Jitter and hot bound are derived in the
  // original frame: cost_ and lo_/hi_ live scaled, and the per-column
  // factors cancel exactly -- powers of two.)
  double corr = 0.0;
  for (int j = 0; j < n_; ++j) {
    const double jit = cost_[j] / scale_[j] - lp_->obj[j];
    if (jit == 0.0) continue;
    const double hot = (jit > 0.0 ? hi_[j] : lo_[j]) * scale_[j];
    if (hot == kInf || hot == -kInf) return -kInf;
    corr += jit * hot;
  }
  return z - corr;
}

bool DualSimplex::tableau_row(int pos, std::vector<int>& cols,
                              std::vector<double>& coefs) {
  cols.clear();
  coefs.clear();
  if (!basis_valid_ || needs_refactor_ || pos < 0 || pos >= m_) return false;
  // Row pos of B^-1 W, read exactly like a pricing pass: rho = B^-T e_pos,
  // then alpha = W' rho over rho's nonzeros. The homogeneous system W x = 0
  // gives the identity x_B[pos] + sum_j coef_j * x_j = 0 over nonbasic j.
  // Engine columns are scaled; multiplying by q_B / q_j returns each
  // coefficient to the caller's frame (exact -- powers of two).
  std::vector<double>& rho = rho_scratch_;
  rho.assign(m_, 0.0);
  rho[pos] = 1.0;
  btran(rho);
  compute_pivot_row(rho);
  const double qb = scale_[basic_var_[pos]];
  for (int j : alpha_idx_) {
    if (status_[j] == kBasic) continue;
    const double a = alpha_v_[j];
    if (std::abs(a) <= 1e-11) continue;
    cols.push_back(j);
    coefs.push_back(a * qb / scale_[j]);
  }
  return true;
}

void DualSimplex::rebuild_price_list() {
  const double feas_tol = opt_.feasibility_tol;
  // Full deterministic scan: every violated row scored like the full
  // pricing rule (viol^2 / dse weight), worst kept. The list is a superset
  // filter only -- selection always re-scores fresh from the current
  // xb_/dse_w_, so staleness can cost an extra rebuild but never a wrong
  // pivot.
  std::vector<std::pair<double, int>> scored;
  for (int i = 0; i < m_; ++i) {
    const int col = basic_var_[i];
    const double v = xb_[i];
    const double viol = std::max(lo_[col] - v, v - hi_[col]);
    if (viol <= feas_tol) continue;
    scored.push_back({-(viol * viol / dse_w_[i]), i});
  }
  std::sort(scored.begin(), scored.end());
  const size_t cap = static_cast<size_t>(std::max(32, m_ / 8));
  if (scored.size() > cap) scored.resize(cap);
  price_cand_.clear();
  for (const auto& [neg_score, i] : scored) price_cand_.push_back(i);
  price_countdown_ = 64;
  price_dirty_ = false;
  ++stats_.pricing_resets;
}

int DualSimplex::select_leave_row(bool bland) {
  const double feas_tol = opt_.feasibility_tol;
  if (bland) {
    // Bland fallback: least-index leaving column, full scan.
    int best_col = std::numeric_limits<int>::max();
    int leave = -1;
    for (int i = 0; i < m_; ++i) {
      const int col = basic_var_[i];
      const double v = xb_[i];
      const double viol = std::max(lo_[col] - v, v - hi_[col]);
      if (viol > feas_tol && col < best_col) {
        best_col = col;
        leave = i;
      }
    }
    return leave;
  }
  const bool partial =
      opt_.partial_pricing && m_ >= opt_.partial_pricing_min_rows;
  if (!partial) {
    double best_score = 0.0;
    int leave = -1;
    for (int i = 0; i < m_; ++i) {
      const int col = basic_var_[i];
      const double v = xb_[i];
      const double viol = std::max(lo_[col] - v, v - hi_[col]);
      if (viol <= feas_tol) continue;
      const double score = viol * viol / dse_w_[i];
      if (score > best_score) {
        best_score = score;
        leave = i;
      }
    }
    return leave;
  }
  // Partial pricing over the candidate list; an empty pick right after a
  // rebuild IS the authoritative full scan saying primal feasible.
  bool rebuilt = false;
  if (price_dirty_ || price_countdown_ <= 0) {
    rebuild_price_list();
    rebuilt = true;
  }
  for (;;) {
    double best_score = 0.0;
    int leave = -1;
    for (int i : price_cand_) {
      const int col = basic_var_[i];
      const double v = xb_[i];
      const double viol = std::max(lo_[col] - v, v - hi_[col]);
      if (viol <= feas_tol) continue;
      const double score = viol * viol / dse_w_[i];
      if (score > best_score) {
        best_score = score;
        leave = i;
      }
    }
    if (leave >= 0) {
      --price_countdown_;
      return leave;
    }
    if (rebuilt) return -1;
    rebuild_price_list();
    rebuilt = true;
  }
}

int DualSimplex::iterate() {
  const double feas_tol = opt_.feasibility_tol;

  // ---- Anti-stall refresh: long degenerate streaks usually mean the eta
  // file has drifted; rebuild the factorization and all derived state.
  // (The streak counter is NOT reset -- if the stall survives the refresh
  // it keeps growing into the Bland fallback below.)
  if (stall_count_ == 512) {
    ++stall_count_;  // refresh once per streak
    if (!refactorize()) return 3;
    recompute_reduced_costs();
    recompute_basic_values();
  }
  // Cycle breaker: a streak of degenerate pivots that survives the
  // refactorization is treated as cycling, and the pivot selection drops
  // to Bland's least-index rule (leaving row by smallest basic column,
  // entering by smallest column among the minimum-ratio ties, no bound
  // flips) until a pivot makes real dual progress. Slow but finite, and
  // deterministic -- the fallback trips at a fixed pivot count.
  const bool bland = stall_count_ >= 768;

  // ---- Leaving variable: most-violated basic, scaled by the dual
  // steepest-edge weight (viol^2 / w_i with w_i ~ ||B^-T e_i||^2 measures
  // the violation in the metric of the dual ascent direction, steering
  // toward rows whose pivot actually moves the dual objective). On large
  // bases the scan runs over a periodically rebuilt candidate list instead
  // of all m rows (see select_leave_row).
  const int leave_pos = select_leave_row(bland);
  if (leave_pos < 0) return 1;  // primal feasible => optimal

  const int leave_col = basic_var_[leave_pos];
  const double sigma = xb_[leave_pos] > hi_[leave_col] ? 1.0 : -1.0;
  const double target =
      sigma > 0 ? hi_[leave_col] : lo_[leave_col];

  // ---- Pivot row rho = B^-T e_r; alpha = W' rho over rho's nonzeros only
  // (hypersparse pricing through the CSR mirror).
  std::vector<double>& rho = rho_scratch_;
  rho.assign(m_, 0.0);
  rho[leave_pos] = 1.0;
  btran(rho);
  compute_pivot_row(rho);

  // ---- Two-pass long-step ratio test.
  // Pass 1: collect the dual-feasible breakpoints and order them by the
  // dual step at which each reduced cost hits zero; among equal steps the
  // larger pivot wins (Harris-style stabilization -- on these massively
  // degenerate LPs most breakpoints sit at step zero, and picking the
  // biggest |alpha| there is what keeps the eta file well conditioned).
  auto& cand = cand_scratch_;
  cand.clear();
  for (int j : alpha_idx_) {
    if (status_[j] == kBasic) continue;
    if (banned_mark_[j] == ban_stamp_) continue;  // FTRAN/BTRAN disagreement
    if (hi_[j] - lo_[j] < 1e-12 && status_[j] != kFree) continue;  // fixed
    const double aj = alpha_v_[j];
    const double sa = sigma * aj;
    bool candidate = false;
    if (status_[j] == kNonbasicLower && sa > opt_.pivot_tol)
      candidate = true;
    else if (status_[j] == kNonbasicUpper && sa < -opt_.pivot_tol)
      candidate = true;
    else if (status_[j] == kFree && std::abs(sa) > opt_.pivot_tol)
      candidate = true;
    if (!candidate) continue;
    cand.push_back({std::abs(d_[j] / aj), std::abs(aj), j});
  }
  if (cand.empty()) {
    // With columns banned the emptiness may be an artifact of the bans,
    // not proof of dual unboundedness: report numerical trouble so the
    // caller restarts from a clean basis instead of declaring infeasible.
    if (banned_count_ > 0) return 3;
    return 2;  // dual unbounded => primal infeasible
  }
  if (bland) {
    std::sort(cand.begin(), cand.end(),
              [](const RatioCandidate& a, const RatioCandidate& b) {
                if (a.ratio != b.ratio) return a.ratio < b.ratio;
                return a.col < b.col;
              });
  } else {
    std::sort(cand.begin(), cand.end(),
              [](const RatioCandidate& a, const RatioCandidate& b) {
                if (a.ratio != b.ratio) return a.ratio < b.ratio;
                if (a.abs_alpha != b.abs_alpha)
                  return a.abs_alpha > b.abs_alpha;
                return a.col < b.col;
              });
  }

  // Pass 2: walk the breakpoints in order. A boxed candidate whose flip
  // keeps the leaving row infeasible is flipped to its opposite bound (its
  // reduced cost changes sign across the breakpoint, so the flipped side
  // is the dual-feasible one) instead of entering; the first candidate
  // that cannot absorb the remaining infeasibility enters. Each flip
  // replaces what would otherwise be a full (usually degenerate) pivot.
  auto& flips = flip_cols_;
  flips.clear();
  int enter_col = -1;
  double enter_ratio = 0.0;
  double remaining = sigma * (xb_[leave_pos] - target);  // infeasibility > 0
  for (const RatioCandidate& c : cand) {
    const int j = c.col;
    if (opt_.bound_flip_ratio_test && !bland && status_[j] != kFree &&
        lo_[j] != -kInf && hi_[j] != kInf) {
      const double gain = c.abs_alpha * (hi_[j] - lo_[j]);
      if (remaining - gain > feas_tol) {
        flips.push_back(j);
        remaining -= gain;
        continue;
      }
    }
    enter_col = j;
    enter_ratio = c.ratio;
    break;
  }
  if (enter_col < 0) {
    // Flipping every breakpoint still leaves the row infeasible: the dual
    // ascent is unbounded along this direction => primal infeasible.
    return 2;
  }
  // Keep only the flips whose breakpoint the entering dual step STRICTLY
  // passes. A flip at the entering ratio itself -- in particular any flip
  // when the step is degenerate (ratio 0) -- gains zero dual objective,
  // and zero-gain flips can shuttle a column between its bounds forever
  // (observed cycling on mass-fixed rematerialization LPs). Dual
  // feasibility does not need those flips: a column with ratio >= theta
  // keeps a valid reduced-cost sign at its current bound.
  if (!flips.empty()) {
    size_t keep = 0;
    size_t ci = 0;
    for (size_t k = 0; k < flips.size(); ++k) {
      while (cand[ci].col != flips[k]) ++ci;  // cand is the walk order
      if (cand[ci].ratio < enter_ratio) flips[keep++] = flips[k];
    }
    flips.resize(keep);
  }

  // ---- FTRAN entering column. Under Forrest-Tomlin the partial solve
  // (L + row etas, before the U back-substitution) is stashed inside the
  // factorization as the spike for a subsequent update(); the two-phase
  // form is exactly ftran(). The eta-file path keeps the plain call.
  std::vector<double>& w = w_scratch_;
  w.assign(m_, 0.0);
  axpy_work_column(enter_col, 1.0, w);
  if (opt_.forrest_tomlin) {
    lu_.ftran_spike(w);
    lu_.ftran_finish(w);
  } else {
    ftran(w);
  }
  const double wr = w[leave_pos];
  if (std::abs(wr) < opt_.pivot_tol) {
    // The FTRAN'd pivot element disagrees with the BTRAN'd one badly;
    // refactorize and let the caller retry. (No flip has been applied yet,
    // so the basis state is untouched.) If the disagreement SURVIVES a
    // fresh factorization the pivot is structurally junk -- both values
    // sit at the tolerance edge -- and retrying would refactorize forever
    // (observed as a 100k-"iteration" non-pivoting loop): ban the column
    // from entering until the next real pivot.
    if (++wr_fail_streak_ >= 2) {
      banned_mark_[enter_col] = ban_stamp_;
      ++banned_count_;
      wr_fail_streak_ = 0;
    }
    if (!refactorize()) return 3;
    recompute_reduced_costs();
    recompute_basic_values();
    return 0;
  }
  wr_fail_streak_ = 0;
  if (banned_count_ > 0) {
    ++ban_stamp_;  // a real pivot landed: forgive all banned columns
    banned_count_ = 0;
  }

  // ---- Apply the bound flips: toggle each column to its opposite bound
  // and repair the basics with one aggregated FTRAN for the whole batch.
  if (!flips.empty()) {
    std::vector<double>& fl = flip_scratch_;
    fl.assign(m_, 0.0);
    for (int j : flips) {
      const double step = status_[j] == kNonbasicLower ? hi_[j] - lo_[j]
                                                       : lo_[j] - hi_[j];
      z_est_ += d_[j] * step;  // dual objective gained by the flip
      axpy_work_column(j, step, fl);
      status_[j] =
          status_[j] == kNonbasicLower ? kNonbasicUpper : kNonbasicLower;
      x_[j] = bound_for_status(j, status_[j]);
    }
    ftran(fl);
    for (int i = 0; i < m_; ++i) xb_[i] -= fl[i];
  }
  const double delta = xb_[leave_pos] - target;

  // ---- Primal step.
  const double t = delta / wr;
  for (int i = 0; i < m_; ++i) xb_[i] -= t * w[i];
  const double enter_val =
      (status_[enter_col] == kFree ? x_[enter_col]
                                   : bound_for_status(enter_col, status_[enter_col])) +
      t;

  // ---- Dual step (sparse over the pivot row's nonzeros).
  const double theta = d_[enter_col] / wr;
  z_est_ += theta * delta;  // dual objective gained by the pivot
  // Stall detection on actual dual-objective progress |theta * delta|, not
  // theta alone: numerically-cycling bases make pivots whose theta is
  // nonzero but whose objective gain underflows against z (observed on
  // mass-fixed rematerialization LPs), and those must keep feeding the
  // Bland fallback counter.
  if (std::abs(theta * delta) < 1e-12 * cost_scale_) {
    ++stall_count_;  // degenerate step: no dual progress, candidate cycle
  } else {
    stall_count_ = 0;
  }
  for (int j : alpha_idx_) {
    if (status_[j] == kBasic || j == enter_col) continue;
    d_[j] -= theta * alpha_v_[j];
  }
  d_[leave_col] = -theta;
  d_[enter_col] = 0.0;

  // ---- Dual steepest-edge weight update (Forrest-Goldfarb, with the
  // exact leaving-row norm): beta_r is recomputed from the BTRAN'd rho
  // (cheap -- rho is in hand), tau = B^-1 rho costs one extra FTRAN.
  if (opt_.steepest_edge_pricing) {
    double beta_r = 0.0;
    for (int i = 0; i < m_; ++i) beta_r += rho[i] * rho[i];
    std::vector<double>& tau = flip_scratch_;
    tau = rho;
    ftran(tau);
    for (int i = 0; i < m_; ++i) {
      if (i == leave_pos || w[i] == 0.0) continue;
      const double eta = w[i] / wr;
      const double cand_w =
          dse_w_[i] - 2.0 * eta * tau[i] + eta * eta * beta_r;
      dse_w_[i] = std::max(cand_w, 1e-10);
    }
    dse_w_[leave_pos] = std::max(beta_r / (wr * wr), 1e-10);
  }

  // ---- Status updates.
  status_[leave_col] = sigma > 0 ? kNonbasicUpper : kNonbasicLower;
  x_[leave_col] = target;
  status_[enter_col] = kBasic;
  basic_var_[leave_pos] = enter_col;
  xb_[leave_pos] = enter_val;

  // ---- Commit the basis change into the factorization: Forrest-Tomlin
  // update in place when stable, else fall back to a full refactorize.
  // The eta-file path (forrest_tomlin off) records a product-form eta and
  // refactorizes on the fixed pivot-count interval.
  bool force_refactor = false;
  if (opt_.forrest_tomlin) {
    if (lu_.update(leave_pos)) {
      ++stats_.ft_updates;
      // Refresh triggers: update-count cap, or fill growth past the
      // configured multiple of the fresh factorization's nnz (the +16m
      // floor keeps tiny bases from thrashing on the ratio alone).
      if (lu_.updates() >= opt_.ft_update_limit ||
          lu_.nnz() > static_cast<int64_t>(opt_.ft_growth_limit * nnz_base_) +
                          16 * static_cast<int64_t>(m_)) {
        if (lu_.updates() < opt_.ft_update_limit) ++stats_.ft_growth_refactors;
        force_refactor = true;
      }
    } else {
      // Update rejected for stability (spike growth / tiny new diagonal):
      // the factorization still describes the OLD basis, so rebuild now.
      ++stats_.ft_growth_refactors;
      force_refactor = true;
    }
  } else {
    Eta eta;
    eta.pivot_pos = leave_pos;
    eta.pivot_val = wr;
    for (int i = 0; i < m_; ++i) {
      if (i != leave_pos && w[i] != 0.0) {
        eta.idx.push_back(i);
        eta.val.push_back(w[i]);
      }
    }
    etas_.push_back(std::move(eta));
    ++stats_.eta_pivots;
    if (++pivots_since_refactor_ >= opt_.refactor_interval)
      force_refactor = true;
  }
  if (force_refactor) {
    if (!refactorize()) return 3;
    recompute_reduced_costs();
    recompute_basic_values();
  }
  return 0;
}

LpResult DualSimplex::solve() {
  LpResult result;
  sync_rows();  // adopt rows appended to the LP since the last solve
  ++ban_stamp_;
  banned_count_ = 0;
  wr_fail_streak_ = 0;
  if (!basis_valid_) {
    make_initial_basis();
    needs_refactor_ = false;
    if (!refactorize()) {
      // Leave the engine marked invalid so the next solve() rebuilds from
      // scratch instead of touching the failed factorization.
      basis_valid_ = false;
      result.status = LpStatus::kNumericalError;
      return result;
    }
    recompute_reduced_costs();
    d_dirty_ = false;
  } else if (needs_refactor_) {
    // A restored basis: rebuild the factorization now; a singular restored
    // basis (numerically degenerate snapshot, or an injected
    // snapshot-restore mismatch) falls back to a clean slack basis rather
    // than failing the solve. Bound overrides survive the fallback --
    // make_initial_basis keeps the current lo_/hi_ -- so the recovery
    // re-lifts the branch decisions onto a fresh basis.
    needs_refactor_ = false;
    if (robust::fault(robust::FaultPoint::kSnapshotRestore) ||
        !refactorize()) {
      make_initial_basis();
      if (!refactorize()) {
        basis_valid_ = false;
        result.status = LpStatus::kNumericalError;
        return result;
      }
    }
    d_dirty_ = true;
  }
  if (d_dirty_) {
    // Refresh reduced costs and re-place nonbasic columns on their
    // dual-feasible bounds (bound changes can leave stale d signs).
    recompute_reduced_costs();
    for (int j = 0; j < num_total(); ++j) {
      if (status_[j] == kBasic || status_[j] == kFree) continue;
      if (hi_[j] - lo_[j] < 1e-12) continue;
      if (d_[j] > opt_.optimality_tol && lo_[j] != -kInf) {
        status_[j] = kNonbasicLower;
        x_[j] = lo_[j];
      } else if (d_[j] < -opt_.optimality_tol && hi_[j] != kInf) {
        status_[j] = kNonbasicUpper;
        x_[j] = hi_[j];
      }
    }
    d_dirty_ = false;
    xb_dirty_ = true;
  }
  if (xb_dirty_) recompute_basic_values();

  // A warm-started re-solve (e.g. a branch bound change) often starts at a
  // basis whose dual objective already clears the caller's cutoff: prune
  // before the first pivot. The same scan seeds the running estimate the
  // in-loop check triggers on; without a limit neither is needed.
  const bool check_obj_limit = opt_.objective_limit < kInf;
  z_est_ = -kInf;
  if (check_obj_limit) {
    z_est_ = truncated_dual_bound();
    if (z_est_ >= opt_.objective_limit) {
      result.status = LpStatus::kObjectiveLimit;
      result.dual_bound = z_est_;
      result.iterations = 0;
      return result;
    }
  }

  int iters = 0;
  int numerical_retries = 0;
  // Effective deadline: the per-solve wall-clock cap combined with the
  // caller's absolute deadline; cancellation rides the same check. Checked
  // on a cheap stride (every 64 pivots) and once up front so a solve whose
  // deadline already passed returns immediately with a sound bound.
  const robust::Deadline deadline = robust::Deadline::sooner(
      opt_.deadline, robust::Deadline::after(opt_.time_limit_sec));
  if (deadline.expired() || opt_.cancel.cancelled()) {
    result.status = LpStatus::kIterationLimit;
    result.dual_bound = truncated_dual_bound();
    result.iterations = 0;
    return result;
  }
  while (iters < opt_.max_iterations) {
    if ((iters & 0x3f) == 0x3f &&
        (deadline.expired() || opt_.cancel.cancelled())) {
      result.status = LpStatus::kIterationLimit;
      result.dual_bound = truncated_dual_bound();
      result.iterations = iters;
      return result;
    }
    // Deterministic early-out: the dual objective only rises, so once it
    // clears the caller's cutoff the node is prunable no matter where the
    // optimum lands. The estimate is maintained incrementally per pivot
    // (theta * delta plus flip gains) and is only a TRIGGER -- the prune
    // itself re-derives the exact perturbation-corrected bound, so drift
    // in the running sum can cost a wasted check but never soundness.
    if (check_obj_limit && z_est_ >= opt_.objective_limit) {
      const double bound = truncated_dual_bound();
      if (bound >= opt_.objective_limit) {
        result.status = LpStatus::kObjectiveLimit;
        result.dual_bound = bound;
        result.iterations = iters;
        return result;
      }
      z_est_ = bound;  // resync the drifted estimate and keep going
    }
    const int rc = iterate();
    ++iters;
    ++total_iterations_;
    if (rc == 0) continue;
    if (rc == 1) break;  // optimal
    if (rc == 2) {
      result.status = LpStatus::kInfeasible;
      result.objective = kInf;
      result.dual_bound = kInf;
      result.iterations = iters;
      return result;
    }
    if (rc == 3) {
      if (++numerical_retries > 3) {
        basis_valid_ = false;  // force a clean rebuild next time
        result.status = LpStatus::kNumericalError;
        result.iterations = iters;
        return result;
      }
      // Full reset: rebuild from the slack basis.
      make_initial_basis();
      if (!refactorize()) {
        basis_valid_ = false;
        result.status = LpStatus::kNumericalError;
        return result;
      }
      recompute_reduced_costs();
      recompute_basic_values();
      if (check_obj_limit) z_est_ = truncated_dual_bound();
    }
  }
  if (iters >= opt_.max_iterations) {
    result.status = LpStatus::kIterationLimit;
    result.dual_bound = truncated_dual_bound();
    result.iterations = iters;
    return result;
  }

  // Assemble the structural solution (still in the scaled frame).
  result.x.assign(n_, 0.0);
  for (int j = 0; j < n_; ++j)
    if (status_[j] != kBasic) result.x[j] = x_[j];
  for (int i = 0; i < m_; ++i)
    if (basic_var_[i] < n_) result.x[basic_var_[i]] = xb_[i];

  // The artificial-bound check runs on the scaled values (the bound was
  // installed in the scaled frame by make_initial_basis).
  if (used_artificial_bound_) {
    for (int j = 0; j < n_; ++j) {
      if (std::abs(std::abs(result.x[j]) - opt_.artificial_bound) < 1e-3) {
        result.status = LpStatus::kUnbounded;
        result.objective = -kInf;
        result.iterations = iters;
        result.x.clear();
        return result;
      }
    }
  }
  // Unscale to the caller's frame: x_true = x_scaled * q_j (exact -- the
  // factors are powers of two).
  for (int j = 0; j < n_; ++j) result.x[j] *= scale_[j];
  result.status = LpStatus::kOptimal;
  result.objective = lp_->objective_value(result.x);
  result.dual_bound = result.objective;
  result.iterations = iters;
  return result;
}

LpResult solve_lp(const LinearProgram& lp, SimplexOptions options) {
  DualSimplex solver(lp, options);
  return solver.solve();
}

}  // namespace checkmate::lp
