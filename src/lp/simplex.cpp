#include "lp/simplex.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace checkmate::lp {

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration_limit";
    case LpStatus::kNumericalError: return "numerical_error";
  }
  return "unknown";
}

DualSimplex::DualSimplex(const LinearProgram& lp, SimplexOptions options)
    : lp_(&lp), opt_(options), a_(lp.matrix()), n_(lp.num_vars()),
      m_(lp.num_rows()) {
  cost_.assign(num_total(), 0.0);
  lo_.assign(num_total(), 0.0);
  hi_.assign(num_total(), 0.0);
  // Deterministic cost perturbation: breaks the massive dual degeneracy of
  // 0/1 scheduling LPs. Scaled by the largest cost magnitude so the bias
  // stays far below any optimality gap of interest.
  double max_cost = 1.0;
  for (int j = 0; j < n_; ++j)
    max_cost = std::max(max_cost, std::abs(lp.obj[j]));
  unsigned h = 0x2545f491u;
  for (int j = 0; j < n_; ++j) {
    h = h * 1664525u + 1013904223u;
    const double jitter =
        options.perturbation * max_cost *
        (1.0 + static_cast<double>(h % 1024) / 1024.0);
    cost_[j] = lp.obj[j] + jitter;
    lo_[j] = lp.lb[j];
    hi_[j] = lp.ub[j];
  }
  for (int i = 0; i < m_; ++i) {
    lo_[n_ + i] = lp.row_lb[i];
    hi_[n_ + i] = lp.row_ub[i];
  }
  status_.assign(num_total(), kNonbasicLower);
  x_.assign(num_total(), 0.0);
  xb_.assign(m_, 0.0);
  d_.assign(num_total(), 0.0);
  basic_var_.assign(m_, -1);
}

void DualSimplex::set_var_bounds(int var, double lower, double upper) {
  if (var < 0 || var >= n_) throw std::out_of_range("set_var_bounds");
  if (lower > upper) throw std::invalid_argument("set_var_bounds: lb > ub");
  lo_[var] = lower;
  hi_[var] = upper;
  if (status_[var] != kBasic) {
    // Snap a nonbasic variable back inside its (possibly shrunken) box.
    if (status_[var] == kNonbasicLower || x_[var] < lower) {
      if (lower != -kInf) {
        status_[var] = kNonbasicLower;
        x_[var] = lower;
      }
    }
    if (status_[var] == kNonbasicUpper || x_[var] > upper) {
      if (upper != kInf) {
        status_[var] = kNonbasicUpper;
        x_[var] = upper;
      }
    }
    // Keep the dual-feasible side when both bounds finite and d has a sign.
    if (d_[var] > opt_.optimality_tol && lower != -kInf) {
      status_[var] = kNonbasicLower;
      x_[var] = lower;
    } else if (d_[var] < -opt_.optimality_tol && upper != kInf) {
      status_[var] = kNonbasicUpper;
      x_[var] = upper;
    }
  }
  xb_dirty_ = true;
  // Reduced costs of previously-fixed columns are not maintained while
  // fixed; refresh them before the next solve.
  d_dirty_ = true;
}

BasisSnapshot DualSimplex::snapshot() const {
  BasisSnapshot s;
  s.valid = basis_valid_;
  // Bound overrides are captured even before the first solve (invalid
  // basis): a clone taken after set_var_bounds but before solve() must
  // still see the same feasible region as the original.
  for (int j = 0; j < num_total(); ++j) {
    const double base_lo = j < n_ ? lp_->lb[j] : lp_->row_lb[j - n_];
    const double base_hi = j < n_ ? lp_->ub[j] : lp_->row_ub[j - n_];
    if (lo_[j] != base_lo || hi_[j] != base_hi)
      s.bounds.push_back({j, lo_[j], hi_[j]});
  }
  if (!s.valid) return s;
  s.status.assign(status_.begin(), status_.end());
  s.basic_var = basic_var_;
  s.used_artificial_bound = used_artificial_bound_;
  for (int j = 0; j < num_total(); ++j)
    if (status_[j] == kFree && x_[j] != 0.0)
      s.free_values.emplace_back(j, x_[j]);
  return s;
}

void DualSimplex::restore(const BasisSnapshot& snap) {
  // Reset bounds to the base LP, then overlay the snapshot's overrides.
  // (The engine constructor may never have run make_initial_basis, and a
  // prior make_initial_basis may have installed artificial bounds; both are
  // wiped here so the restored state carries no history.)
  for (int j = 0; j < n_; ++j) {
    lo_[j] = lp_->lb[j];
    hi_[j] = lp_->ub[j];
  }
  for (int i = 0; i < m_; ++i) {
    lo_[n_ + i] = lp_->row_lb[i];
    hi_[n_ + i] = lp_->row_ub[i];
  }
  etas_.clear();
  pivots_since_refactor_ = 0;
  stall_count_ = 0;
  std::fill(d_.begin(), d_.end(), 0.0);
  for (const auto& b : snap.bounds) {
    lo_[b.col] = b.lo;
    hi_[b.col] = b.hi;
  }
  if (!snap.valid) {
    // No basis to adopt: reset to the fresh-engine state (the next solve
    // builds the slack basis), keeping only the bound overrides above.
    basis_valid_ = false;
    needs_refactor_ = false;
    d_dirty_ = false;
    xb_dirty_ = true;
    used_artificial_bound_ = false;
    std::fill(status_.begin(), status_.end(),
              static_cast<int8_t>(kNonbasicLower));
    std::fill(x_.begin(), x_.end(), 0.0);
    std::fill(basic_var_.begin(), basic_var_.end(), -1);
    return;
  }
  std::copy(snap.status.begin(), snap.status.end(), status_.begin());
  basic_var_ = snap.basic_var;
  used_artificial_bound_ = snap.used_artificial_bound;
  for (int j = 0; j < num_total(); ++j) {
    if (status_[j] == kBasic) continue;
    if (status_[j] == kFree)
      x_[j] = 0.0;
    else
      x_[j] = status_[j] == kNonbasicUpper ? hi_[j] : lo_[j];
  }
  for (const auto& [j, v] : snap.free_values) x_[j] = v;
  basis_valid_ = true;
  needs_refactor_ = true;  // LU rebuilt lazily by the next solve()
  d_dirty_ = true;
  xb_dirty_ = true;
}

DualSimplex DualSimplex::clone() const {
  DualSimplex copy(*lp_, opt_);
  copy.restore(snapshot());
  return copy;
}

double DualSimplex::dot_work_column(int col,
                                    const std::vector<double>& dense) const {
  if (is_slack(col)) return -dense[col - n_];
  return a_.dot_column(col, dense);
}

void DualSimplex::axpy_work_column(int col, double alpha,
                                   std::vector<double>& dense) const {
  if (is_slack(col)) {
    dense[col - n_] -= alpha;
    return;
  }
  a_.axpy_column(col, alpha, dense);
}

void DualSimplex::ftran(std::vector<double>& x) const {
  lu_.ftran(x);
  for (const Eta& e : etas_) {
    double piv = x[e.pivot_pos] / e.pivot_val;
    x[e.pivot_pos] = piv;
    if (piv != 0.0)
      for (size_t k = 0; k < e.idx.size(); ++k)
        x[e.idx[k]] -= e.val[k] * piv;
  }
}

void DualSimplex::btran(std::vector<double>& y) const {
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = y[it->pivot_pos];
    for (size_t k = 0; k < it->idx.size(); ++k)
      acc -= it->val[k] * y[it->idx[k]];
    y[it->pivot_pos] = acc / it->pivot_val;
  }
  lu_.btran(y);
}

bool DualSimplex::refactorize() {
  std::vector<BasisColumn> cols(m_);
  // Slack columns are synthesized; keep their storage alive in one arena.
  std::vector<int> slack_rows(m_);
  static const double kMinusOne = -1.0;
  for (int i = 0; i < m_; ++i) {
    int col = basic_var_[i];
    if (is_slack(col)) {
      slack_rows[i] = col - n_;
      cols[i] = {{&slack_rows[i], 1}, {&kMinusOne, 1}};
    } else {
      cols[i] = {a_.col_rows(col), a_.col_values(col)};
    }
  }
  etas_.clear();
  pivots_since_refactor_ = 0;
  return lu_.factorize(m_, cols);
}

void DualSimplex::recompute_reduced_costs() {
  // y = B^-T c_B, d_j = c_j - y . W_j
  std::vector<double> y(m_, 0.0);
  for (int i = 0; i < m_; ++i) y[i] = cost_[basic_var_[i]];
  btran(y);
  for (int j = 0; j < num_total(); ++j) {
    if (status_[j] == kBasic) {
      d_[j] = 0.0;
    } else {
      d_[j] = cost_[j] - dot_work_column(j, y);
    }
  }
}

void DualSimplex::recompute_basic_values() {
  // x_B = -B^-1 W_N x_N  (rhs of W x = 0 moved to the right).
  std::vector<double> rhs(m_, 0.0);
  for (int j = 0; j < num_total(); ++j) {
    if (status_[j] == kBasic || x_[j] == 0.0) continue;
    axpy_work_column(j, -x_[j], rhs);
  }
  ftran(rhs);
  xb_ = std::move(rhs);
  xb_dirty_ = false;
}

double DualSimplex::bound_for_status(int col, int status) const {
  return status == kNonbasicLower ? lo_[col] : hi_[col];
}

void DualSimplex::make_initial_basis() {
  used_artificial_bound_ = false;
  for (int i = 0; i < m_; ++i) {
    basic_var_[i] = n_ + i;
    status_[n_ + i] = kBasic;
  }
  for (int j = 0; j < n_; ++j) {
    // Dual-feasible placement: cost >= 0 wants lower bound, cost < 0 wants
    // upper bound. Missing bounds fall back to the other side, or to an
    // artificial bound for genuinely free dual-infeasible columns.
    const double c = cost_[j];
    if (c >= 0.0) {
      if (lo_[j] != -kInf) {
        status_[j] = kNonbasicLower;
        x_[j] = lo_[j];
      } else if (c == 0.0) {
        status_[j] = kFree;
        x_[j] = 0.0;
      } else if (hi_[j] != kInf) {
        // Placing at the upper bound makes d_j = c > 0 with status upper:
        // dual infeasible. Use an artificial lower bound instead.
        lo_[j] = -opt_.artificial_bound;
        used_artificial_bound_ = true;
        status_[j] = kNonbasicLower;
        x_[j] = lo_[j];
      } else {
        lo_[j] = -opt_.artificial_bound;
        used_artificial_bound_ = true;
        status_[j] = kNonbasicLower;
        x_[j] = lo_[j];
      }
    } else {
      if (hi_[j] != kInf) {
        status_[j] = kNonbasicUpper;
        x_[j] = hi_[j];
      } else {
        hi_[j] = opt_.artificial_bound;
        used_artificial_bound_ = true;
        status_[j] = kNonbasicUpper;
        x_[j] = hi_[j];
      }
    }
  }
  basis_valid_ = true;
  xb_dirty_ = true;
}

int DualSimplex::iterate() {
  const double feas_tol = opt_.feasibility_tol;

  // ---- Anti-stall refresh: long degenerate streaks usually mean the eta
  // file has drifted; rebuild the factorization and all derived state.
  if (stall_count_ >= 512) {
    stall_count_ = 0;
    if (!refactorize()) return 3;
    recompute_reduced_costs();
    recompute_basic_values();
  }

  // ---- Leaving variable: most-violated basic.
  int leave_pos = -1;
  double worst = feas_tol;
  for (int i = 0; i < m_; ++i) {
    const int col = basic_var_[i];
    const double v = xb_[i];
    const double viol = std::max(lo_[col] - v, v - hi_[col]);
    if (viol > worst) {
      worst = viol;
      leave_pos = i;
    }
  }
  if (leave_pos < 0) return 1;  // primal feasible => optimal

  const int leave_col = basic_var_[leave_pos];
  const double sigma = xb_[leave_pos] > hi_[leave_col] ? 1.0 : -1.0;
  const double target =
      sigma > 0 ? hi_[leave_col] : lo_[leave_col];
  const double delta = xb_[leave_pos] - target;

  // ---- Pivot row rho = B^-T e_r and alphas for all nonbasic columns.
  std::vector<double>& rho = rho_scratch_;
  rho.assign(m_, 0.0);
  rho[leave_pos] = 1.0;
  btran(rho);

  int enter_col = -1;
  double best_ratio = kInf;
  double best_alpha = 0.0;
  std::vector<double>& alpha = alpha_scratch_;
  alpha.assign(num_total(), 0.0);
  for (int j = 0; j < num_total(); ++j) {
    if (status_[j] == kBasic) continue;
    if (hi_[j] - lo_[j] < 1e-12 && status_[j] != kFree) continue;  // fixed
    const double aj = dot_work_column(j, rho);
    alpha[j] = aj;
    const double sa = sigma * aj;
    bool candidate = false;
    if (status_[j] == kNonbasicLower && sa > opt_.pivot_tol)
      candidate = true;
    else if (status_[j] == kNonbasicUpper && sa < -opt_.pivot_tol)
      candidate = true;
    else if (status_[j] == kFree && std::abs(sa) > opt_.pivot_tol)
      candidate = true;
    if (!candidate) continue;
    const double ratio = d_[j] / aj;  // signed dual step
    const double ratio_mag = std::abs(ratio);
    if (ratio_mag < best_ratio - 1e-12 ||
        (ratio_mag < best_ratio + 1e-12 && std::abs(aj) > std::abs(best_alpha))) {
      best_ratio = ratio_mag;
      best_alpha = aj;
      enter_col = j;
    }
  }
  if (enter_col < 0) return 2;  // dual unbounded => primal infeasible

  // ---- FTRAN entering column.
  std::vector<double>& w = w_scratch_;
  w.assign(m_, 0.0);
  axpy_work_column(enter_col, 1.0, w);
  ftran(w);
  const double wr = w[leave_pos];
  if (std::abs(wr) < opt_.pivot_tol) {
    // The FTRAN'd pivot element disagrees with the BTRAN'd one badly;
    // refactorize and let the caller retry.
    if (!refactorize()) return 3;
    recompute_reduced_costs();
    recompute_basic_values();
    return 0;
  }

  // ---- Primal step.
  const double t = delta / wr;
  for (int i = 0; i < m_; ++i) xb_[i] -= t * w[i];
  const double enter_val =
      (status_[enter_col] == kFree ? x_[enter_col]
                                   : bound_for_status(enter_col, status_[enter_col])) +
      t;

  // ---- Dual step.
  const double theta = d_[enter_col] / wr;
  if (std::abs(theta) < 1e-13) {
    ++stall_count_;
  } else {
    stall_count_ = 0;
  }
  for (int j = 0; j < num_total(); ++j) {
    if (status_[j] == kBasic || j == enter_col) continue;
    if (alpha[j] != 0.0) d_[j] -= theta * alpha[j];
  }
  d_[leave_col] = -theta;
  d_[enter_col] = 0.0;

  // ---- Status updates.
  status_[leave_col] = sigma > 0 ? kNonbasicUpper : kNonbasicLower;
  x_[leave_col] = target;
  status_[enter_col] = kBasic;
  basic_var_[leave_pos] = enter_col;
  xb_[leave_pos] = enter_val;

  // ---- Record eta.
  Eta eta;
  eta.pivot_pos = leave_pos;
  eta.pivot_val = wr;
  for (int i = 0; i < m_; ++i) {
    if (i != leave_pos && w[i] != 0.0) {
      eta.idx.push_back(i);
      eta.val.push_back(w[i]);
    }
  }
  etas_.push_back(std::move(eta));
  if (++pivots_since_refactor_ >= opt_.refactor_interval) {
    if (!refactorize()) return 3;
    recompute_reduced_costs();
    recompute_basic_values();
  }
  return 0;
}

LpResult DualSimplex::solve() {
  LpResult result;
  if (!basis_valid_) {
    make_initial_basis();
    needs_refactor_ = false;
    if (!refactorize()) {
      // Leave the engine marked invalid so the next solve() rebuilds from
      // scratch instead of touching the failed factorization.
      basis_valid_ = false;
      result.status = LpStatus::kNumericalError;
      return result;
    }
    recompute_reduced_costs();
    d_dirty_ = false;
  } else if (needs_refactor_) {
    // A restored basis: rebuild the factorization now; a singular restored
    // basis (numerically degenerate snapshot) falls back to a clean slack
    // basis rather than failing the solve.
    needs_refactor_ = false;
    if (!refactorize()) {
      make_initial_basis();
      if (!refactorize()) {
        basis_valid_ = false;
        result.status = LpStatus::kNumericalError;
        return result;
      }
    }
    d_dirty_ = true;
  }
  if (d_dirty_) {
    // Refresh reduced costs and re-place nonbasic columns on their
    // dual-feasible bounds (bound changes can leave stale d signs).
    recompute_reduced_costs();
    for (int j = 0; j < num_total(); ++j) {
      if (status_[j] == kBasic || status_[j] == kFree) continue;
      if (hi_[j] - lo_[j] < 1e-12) continue;
      if (d_[j] > opt_.optimality_tol && lo_[j] != -kInf) {
        status_[j] = kNonbasicLower;
        x_[j] = lo_[j];
      } else if (d_[j] < -opt_.optimality_tol && hi_[j] != kInf) {
        status_[j] = kNonbasicUpper;
        x_[j] = hi_[j];
      }
    }
    d_dirty_ = false;
    xb_dirty_ = true;
  }
  if (xb_dirty_) recompute_basic_values();

  int iters = 0;
  int numerical_retries = 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opt_.time_limit_sec));
  while (iters < opt_.max_iterations) {
    if ((iters & 0xff) == 0xff &&
        std::chrono::steady_clock::now() > deadline) {
      result.status = LpStatus::kIterationLimit;
      result.iterations = iters;
      return result;
    }
    const int rc = iterate();
    ++iters;
    ++total_iterations_;
    if (rc == 0) continue;
    if (rc == 1) break;  // optimal
    if (rc == 2) {
      result.status = LpStatus::kInfeasible;
      result.objective = kInf;
      result.iterations = iters;
      return result;
    }
    if (rc == 3) {
      if (++numerical_retries > 3) {
        basis_valid_ = false;  // force a clean rebuild next time
        result.status = LpStatus::kNumericalError;
        result.iterations = iters;
        return result;
      }
      // Full reset: rebuild from the slack basis.
      make_initial_basis();
      if (!refactorize()) {
        basis_valid_ = false;
        result.status = LpStatus::kNumericalError;
        return result;
      }
      recompute_reduced_costs();
      recompute_basic_values();
    }
  }
  if (iters >= opt_.max_iterations) {
    result.status = LpStatus::kIterationLimit;
    result.iterations = iters;
    return result;
  }

  // Assemble the structural solution.
  result.x.assign(n_, 0.0);
  for (int j = 0; j < n_; ++j)
    if (status_[j] != kBasic) result.x[j] = x_[j];
  for (int i = 0; i < m_; ++i)
    if (basic_var_[i] < n_) result.x[basic_var_[i]] = xb_[i];

  if (used_artificial_bound_) {
    for (int j = 0; j < n_; ++j) {
      if (std::abs(std::abs(result.x[j]) - opt_.artificial_bound) < 1e-3) {
        result.status = LpStatus::kUnbounded;
        result.objective = -kInf;
        result.iterations = iters;
        return result;
      }
    }
  }
  result.status = LpStatus::kOptimal;
  result.objective = lp_->objective_value(result.x);
  result.iterations = iters;
  return result;
}

LpResult solve_lp(const LinearProgram& lp, SimplexOptions options) {
  DualSimplex solver(lp, options);
  return solver.solve();
}

}  // namespace checkmate::lp
