#include "lp/simplex.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "robust/fault_injection.h"

namespace checkmate::lp {

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration_limit";
    case LpStatus::kObjectiveLimit: return "objective_limit";
    case LpStatus::kNumericalError: return "numerical_error";
  }
  return "unknown";
}

DualSimplex::DualSimplex(const LinearProgram& lp, SimplexOptions options)
    : lp_(&lp), opt_(options), a_(lp.matrix()), n_(lp.num_vars()),
      m_(lp.num_rows()), entries_synced_(lp.entries.size()) {
  cost_.assign(num_total(), 0.0);
  lo_.assign(num_total(), 0.0);
  hi_.assign(num_total(), 0.0);
  // Deterministic cost perturbation: breaks the massive dual degeneracy of
  // 0/1 scheduling LPs. Scaled by the largest cost magnitude so the bias
  // stays far below any optimality gap of interest.
  double max_cost = 1.0;
  for (int j = 0; j < n_; ++j)
    max_cost = std::max(max_cost, std::abs(lp.obj[j]));
  cost_scale_ = max_cost;
  unsigned h = 0x2545f491u;
  for (int j = 0; j < n_; ++j) {
    h = h * 1664525u + 1013904223u;
    const double jitter =
        options.perturbation * max_cost *
        (1.0 + static_cast<double>(h % 1024) / 1024.0);
    cost_[j] = lp.obj[j] + jitter;
    lo_[j] = lp.lb[j];
    hi_[j] = lp.ub[j];
  }
  for (int i = 0; i < m_; ++i) {
    lo_[n_ + i] = lp.row_lb[i];
    hi_[n_ + i] = lp.row_ub[i];
  }
  status_.assign(num_total(), kNonbasicLower);
  x_.assign(num_total(), 0.0);
  xb_.assign(m_, 0.0);
  d_.assign(num_total(), 0.0);
  basic_var_.assign(m_, -1);
  dse_w_.assign(m_, 1.0);
  alpha_v_.assign(num_total(), 0.0);
  alpha_mark_.assign(num_total(), 0);
  banned_mark_.assign(num_total(), 0);
}

void DualSimplex::set_var_bounds(int var, double lower, double upper) {
  if (var < 0 || var >= n_) throw std::out_of_range("set_var_bounds");
  if (lower > upper) throw std::invalid_argument("set_var_bounds: lb > ub");
  lo_[var] = lower;
  hi_[var] = upper;
  if (status_[var] != kBasic) {
    // Snap a nonbasic variable back inside its (possibly shrunken) box.
    if (status_[var] == kNonbasicLower || x_[var] < lower) {
      if (lower != -kInf) {
        status_[var] = kNonbasicLower;
        x_[var] = lower;
      }
    }
    if (status_[var] == kNonbasicUpper || x_[var] > upper) {
      if (upper != kInf) {
        status_[var] = kNonbasicUpper;
        x_[var] = upper;
      }
    }
    // Keep the dual-feasible side when both bounds finite and d has a sign.
    if (d_[var] > opt_.optimality_tol && lower != -kInf) {
      status_[var] = kNonbasicLower;
      x_[var] = lower;
    } else if (d_[var] < -opt_.optimality_tol && upper != kInf) {
      status_[var] = kNonbasicUpper;
      x_[var] = upper;
    }
  }
  xb_dirty_ = true;
  // Reduced costs of previously-fixed columns are not maintained while
  // fixed; refresh them before the next solve.
  d_dirty_ = true;
}

void DualSimplex::sync_rows() {
  const int m_new = lp_->num_rows();
  if (m_new == m_) return;
  if (m_new < m_)
    throw std::logic_error("sync_rows: rows were removed from the LP");
  // Fold the appended entries into the matrix. Appended rows may only
  // reference rows >= m_ (cuts never retouch existing rows).
  a_.append_rows(m_new - m_,
                 std::span(lp_->entries).subspan(entries_synced_));
  entries_synced_ = lp_->entries.size();

  // Grow the column-indexed state: structural columns keep their indices,
  // existing slacks keep theirs (slack of row i is column n_ + i), and the
  // new rows' slacks append at the end.
  const int total_new = n_ + m_new;
  cost_.resize(total_new, 0.0);
  lo_.resize(total_new, 0.0);
  hi_.resize(total_new, 0.0);
  status_.resize(total_new, static_cast<int8_t>(kNonbasicLower));
  x_.resize(total_new, 0.0);
  d_.resize(total_new, 0.0);
  alpha_v_.resize(total_new, 0.0);
  alpha_mark_.resize(total_new, 0);
  banned_mark_.resize(total_new, 0);
  basic_var_.resize(m_new, -1);
  xb_.resize(m_new, 0.0);
  dse_w_.resize(m_new, 1.0);
  for (int i = m_; i < m_new; ++i) {
    const int sj = n_ + i;
    lo_[sj] = lp_->row_lb[i];
    hi_[sj] = lp_->row_ub[i];
    if (basis_valid_) {
      // The new row enters with its slack basic: the extended basis matrix
      // is block lower triangular over the old one, so it stays
      // nonsingular; the LU factors are rebuilt lazily.
      status_[sj] = kBasic;
      basic_var_[i] = sj;
      dse_w_[i] = 1.0;
    }
  }
  m_ = m_new;
  if (basis_valid_) {
    needs_refactor_ = true;
    d_dirty_ = true;
  }
  xb_dirty_ = true;
}

BasisSnapshot DualSimplex::snapshot() const {
  BasisSnapshot s;
  s.valid = basis_valid_;
  s.num_rows = m_;
  // Bound overrides are captured even before the first solve (invalid
  // basis): a clone taken after set_var_bounds but before solve() must
  // still see the same feasible region as the original.
  for (int j = 0; j < num_total(); ++j) {
    const double base_lo = j < n_ ? lp_->lb[j] : lp_->row_lb[j - n_];
    const double base_hi = j < n_ ? lp_->ub[j] : lp_->row_ub[j - n_];
    if (lo_[j] != base_lo || hi_[j] != base_hi)
      s.bounds.push_back({j, lo_[j], hi_[j]});
  }
  if (!s.valid) return s;
  s.status.assign(status_.begin(), status_.end());
  s.basic_var = basic_var_;
  s.dse_weights = dse_w_;
  s.used_artificial_bound = used_artificial_bound_;
  for (int j = 0; j < num_total(); ++j)
    if (status_[j] == kFree && x_[j] != 0.0)
      s.free_values.emplace_back(j, x_[j]);
  return s;
}

void DualSimplex::restore(const BasisSnapshot& snap) {
  // Adopt any rows appended to the working LP since this engine last saw
  // it; the snapshot may have been captured before those rows existed (a
  // parent basis restored into a child LP that has more cuts).
  sync_rows();
  if (snap.valid && snap.num_rows > m_)
    throw std::logic_error("restore: snapshot has more rows than the LP");
  // Reset bounds to the base LP, then overlay the snapshot's overrides.
  // (The engine constructor may never have run make_initial_basis, and a
  // prior make_initial_basis may have installed artificial bounds; both are
  // wiped here so the restored state carries no history.)
  for (int j = 0; j < n_; ++j) {
    lo_[j] = lp_->lb[j];
    hi_[j] = lp_->ub[j];
  }
  for (int i = 0; i < m_; ++i) {
    lo_[n_ + i] = lp_->row_lb[i];
    hi_[n_ + i] = lp_->row_ub[i];
  }
  etas_.clear();
  pivots_since_refactor_ = 0;
  stall_count_ = 0;
  std::fill(d_.begin(), d_.end(), 0.0);
  for (const auto& b : snap.bounds) {
    lo_[b.col] = b.lo;
    hi_[b.col] = b.hi;
  }
  if (!snap.valid) {
    // No basis to adopt: reset to the fresh-engine state (the next solve
    // builds the slack basis), keeping only the bound overrides above.
    basis_valid_ = false;
    needs_refactor_ = false;
    d_dirty_ = false;
    xb_dirty_ = true;
    used_artificial_bound_ = false;
    std::fill(status_.begin(), status_.end(),
              static_cast<int8_t>(kNonbasicLower));
    std::fill(x_.begin(), x_.end(), 0.0);
    std::fill(basic_var_.begin(), basic_var_.end(), -1);
    dse_w_.assign(m_, 1.0);
    return;
  }
  // Adopt the snapshot's basis for its own rows; rows appended after the
  // capture get their slack basic -- exactly the state a freshly appended
  // cut row enters in, so the restored trajectory stays a pure function of
  // (snapshot, current LP).
  std::copy(snap.status.begin(), snap.status.end(), status_.begin());
  std::copy(snap.basic_var.begin(), snap.basic_var.end(), basic_var_.begin());
  for (int i = snap.num_rows; i < m_; ++i) {
    status_[n_ + i] = kBasic;
    basic_var_[i] = n_ + i;
  }
  if (static_cast<int>(snap.dse_weights.size()) == snap.num_rows) {
    std::copy(snap.dse_weights.begin(), snap.dse_weights.end(),
              dse_w_.begin());
    std::fill(dse_w_.begin() + snap.num_rows, dse_w_.end(), 1.0);
  } else {
    dse_w_.assign(m_, 1.0);
  }
  used_artificial_bound_ = snap.used_artificial_bound;
  for (int j = 0; j < num_total(); ++j) {
    if (status_[j] == kBasic) continue;
    if (status_[j] == kFree)
      x_[j] = 0.0;
    else
      x_[j] = status_[j] == kNonbasicUpper ? hi_[j] : lo_[j];
  }
  for (const auto& [j, v] : snap.free_values) x_[j] = v;
  basis_valid_ = true;
  needs_refactor_ = true;  // LU rebuilt lazily by the next solve()
  d_dirty_ = true;
  xb_dirty_ = true;
}

DualSimplex DualSimplex::clone() const {
  DualSimplex copy(*lp_, opt_);
  copy.restore(snapshot());
  return copy;
}

double DualSimplex::dot_work_column(int col,
                                    const std::vector<double>& dense) const {
  if (is_slack(col)) return -dense[col - n_];
  return a_.dot_column(col, dense);
}

void DualSimplex::axpy_work_column(int col, double alpha,
                                   std::vector<double>& dense) const {
  if (is_slack(col)) {
    dense[col - n_] -= alpha;
    return;
  }
  a_.axpy_column(col, alpha, dense);
}

void DualSimplex::ftran(std::vector<double>& x) const {
  lu_.ftran(x);
  for (const Eta& e : etas_) {
    double piv = x[e.pivot_pos] / e.pivot_val;
    x[e.pivot_pos] = piv;
    if (piv != 0.0)
      for (size_t k = 0; k < e.idx.size(); ++k)
        x[e.idx[k]] -= e.val[k] * piv;
  }
}

void DualSimplex::btran(std::vector<double>& y) const {
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = y[it->pivot_pos];
    for (size_t k = 0; k < it->idx.size(); ++k)
      acc -= it->val[k] * y[it->idx[k]];
    y[it->pivot_pos] = acc / it->pivot_val;
  }
  lu_.btran(y);
}

bool DualSimplex::refactorize() {
  std::vector<BasisColumn> cols(m_);
  // Slack columns are synthesized; keep their storage alive in one arena.
  std::vector<int> slack_rows(m_);
  static const double kMinusOne = -1.0;
  for (int i = 0; i < m_; ++i) {
    int col = basic_var_[i];
    if (is_slack(col)) {
      slack_rows[i] = col - n_;
      cols[i] = {{&slack_rows[i], 1}, {&kMinusOne, 1}};
    } else {
      cols[i] = {a_.col_rows(col), a_.col_values(col)};
    }
  }
  etas_.clear();
  pivots_since_refactor_ = 0;
  return lu_.factorize(m_, cols);
}

void DualSimplex::recompute_reduced_costs() {
  // y = B^-T c_B, d_j = c_j - y . W_j
  std::vector<double> y(m_, 0.0);
  for (int i = 0; i < m_; ++i) y[i] = cost_[basic_var_[i]];
  btran(y);
  for (int j = 0; j < num_total(); ++j) {
    if (status_[j] == kBasic) {
      d_[j] = 0.0;
    } else {
      d_[j] = cost_[j] - dot_work_column(j, y);
    }
  }
}

void DualSimplex::recompute_basic_values() {
  // x_B = -B^-1 W_N x_N  (rhs of W x = 0 moved to the right).
  std::vector<double> rhs(m_, 0.0);
  for (int j = 0; j < num_total(); ++j) {
    if (status_[j] == kBasic || x_[j] == 0.0) continue;
    axpy_work_column(j, -x_[j], rhs);
  }
  ftran(rhs);
  xb_ = std::move(rhs);
  xb_dirty_ = false;
}

double DualSimplex::bound_for_status(int col, int status) const {
  return status == kNonbasicLower ? lo_[col] : hi_[col];
}

void DualSimplex::make_initial_basis() {
  used_artificial_bound_ = false;
  for (int i = 0; i < m_; ++i) {
    basic_var_[i] = n_ + i;
    status_[n_ + i] = kBasic;
  }
  for (int j = 0; j < n_; ++j) {
    // Dual-feasible placement: cost >= 0 wants lower bound, cost < 0 wants
    // upper bound. Missing bounds fall back to the other side, or to an
    // artificial bound for genuinely free dual-infeasible columns.
    const double c = cost_[j];
    if (c >= 0.0) {
      if (lo_[j] != -kInf) {
        status_[j] = kNonbasicLower;
        x_[j] = lo_[j];
      } else if (c == 0.0) {
        status_[j] = kFree;
        x_[j] = 0.0;
      } else if (hi_[j] != kInf) {
        // Placing at the upper bound makes d_j = c > 0 with status upper:
        // dual infeasible. Use an artificial lower bound instead.
        lo_[j] = -opt_.artificial_bound;
        used_artificial_bound_ = true;
        status_[j] = kNonbasicLower;
        x_[j] = lo_[j];
      } else {
        lo_[j] = -opt_.artificial_bound;
        used_artificial_bound_ = true;
        status_[j] = kNonbasicLower;
        x_[j] = lo_[j];
      }
    } else {
      if (hi_[j] != kInf) {
        status_[j] = kNonbasicUpper;
        x_[j] = hi_[j];
      } else {
        hi_[j] = opt_.artificial_bound;
        used_artificial_bound_ = true;
        status_[j] = kNonbasicUpper;
        x_[j] = hi_[j];
      }
    }
  }
  basis_valid_ = true;
  xb_dirty_ = true;
  dse_w_.assign(m_, 1.0);
}

void DualSimplex::compute_pivot_row(const std::vector<double>& rho) {
  ++alpha_stamp_;
  alpha_idx_.clear();
  const int64_t stamp = alpha_stamp_;
  for (int i = 0; i < m_; ++i) {
    const double r = rho[i];
    if (r == 0.0) continue;
    // Slack column n+i is -e_i, so its alpha is just -rho_i.
    const int sj = n_ + i;
    alpha_v_[sj] = -r;
    alpha_mark_[sj] = stamp;
    alpha_idx_.push_back(sj);
    const auto cols = a_.row_cols(i);
    const auto vals = a_.row_values(i);
    for (size_t k = 0; k < cols.size(); ++k) {
      const int j = cols[k];
      const double add = vals[k] * r;
      if (alpha_mark_[j] == stamp) {
        alpha_v_[j] += add;
      } else {
        alpha_mark_[j] = stamp;
        alpha_v_[j] = add;
        alpha_idx_.push_back(j);
      }
    }
  }
}

double DualSimplex::truncated_dual_bound() const {
  if (!basis_valid_) return -kInf;
  double z = 0.0;
  for (int j = 0; j < num_total(); ++j)
    if (status_[j] != kBasic && x_[j] != 0.0) z += cost_[j] * x_[j];
  for (int i = 0; i < m_; ++i) z += cost_[basic_var_[i]] * xb_[i];
  // z is the dual objective of the current dual-feasible basis, so it
  // bounds the *perturbed* optimum from below; subtracting each column's
  // worst-case jitter contribution over its box makes it sound for the
  // true costs. A jittered column with no finite hot-side bound leaves
  // nothing to correct against.
  double corr = 0.0;
  for (int j = 0; j < n_; ++j) {
    const double jit = cost_[j] - lp_->obj[j];
    if (jit == 0.0) continue;
    const double hot = jit > 0.0 ? hi_[j] : lo_[j];
    if (hot == kInf || hot == -kInf) return -kInf;
    corr += jit * hot;
  }
  return z - corr;
}

int DualSimplex::iterate() {
  const double feas_tol = opt_.feasibility_tol;

  // ---- Anti-stall refresh: long degenerate streaks usually mean the eta
  // file has drifted; rebuild the factorization and all derived state.
  // (The streak counter is NOT reset -- if the stall survives the refresh
  // it keeps growing into the Bland fallback below.)
  if (stall_count_ == 512) {
    ++stall_count_;  // refresh once per streak
    if (!refactorize()) return 3;
    recompute_reduced_costs();
    recompute_basic_values();
  }
  // Cycle breaker: a streak of degenerate pivots that survives the
  // refactorization is treated as cycling, and the pivot selection drops
  // to Bland's least-index rule (leaving row by smallest basic column,
  // entering by smallest column among the minimum-ratio ties, no bound
  // flips) until a pivot makes real dual progress. Slow but finite, and
  // deterministic -- the fallback trips at a fixed pivot count.
  const bool bland = stall_count_ >= 768;

  // ---- Leaving variable: most-violated basic, scaled by the dual
  // steepest-edge weight (viol^2 / w_i with w_i ~ ||B^-T e_i||^2 measures
  // the violation in the metric of the dual ascent direction, steering
  // toward rows whose pivot actually moves the dual objective).
  int leave_pos = -1;
  if (bland) {
    int best_col = std::numeric_limits<int>::max();
    for (int i = 0; i < m_; ++i) {
      const int col = basic_var_[i];
      const double v = xb_[i];
      const double viol = std::max(lo_[col] - v, v - hi_[col]);
      if (viol > feas_tol && col < best_col) {
        best_col = col;
        leave_pos = i;
      }
    }
  } else {
    double best_score = 0.0;
    for (int i = 0; i < m_; ++i) {
      const int col = basic_var_[i];
      const double v = xb_[i];
      const double viol = std::max(lo_[col] - v, v - hi_[col]);
      if (viol <= feas_tol) continue;
      const double score = viol * viol / dse_w_[i];
      if (score > best_score) {
        best_score = score;
        leave_pos = i;
      }
    }
  }
  if (leave_pos < 0) return 1;  // primal feasible => optimal

  const int leave_col = basic_var_[leave_pos];
  const double sigma = xb_[leave_pos] > hi_[leave_col] ? 1.0 : -1.0;
  const double target =
      sigma > 0 ? hi_[leave_col] : lo_[leave_col];

  // ---- Pivot row rho = B^-T e_r; alpha = W' rho over rho's nonzeros only
  // (hypersparse pricing through the CSR mirror).
  std::vector<double>& rho = rho_scratch_;
  rho.assign(m_, 0.0);
  rho[leave_pos] = 1.0;
  btran(rho);
  compute_pivot_row(rho);

  // ---- Two-pass long-step ratio test.
  // Pass 1: collect the dual-feasible breakpoints and order them by the
  // dual step at which each reduced cost hits zero; among equal steps the
  // larger pivot wins (Harris-style stabilization -- on these massively
  // degenerate LPs most breakpoints sit at step zero, and picking the
  // biggest |alpha| there is what keeps the eta file well conditioned).
  auto& cand = cand_scratch_;
  cand.clear();
  for (int j : alpha_idx_) {
    if (status_[j] == kBasic) continue;
    if (banned_mark_[j] == ban_stamp_) continue;  // FTRAN/BTRAN disagreement
    if (hi_[j] - lo_[j] < 1e-12 && status_[j] != kFree) continue;  // fixed
    const double aj = alpha_v_[j];
    const double sa = sigma * aj;
    bool candidate = false;
    if (status_[j] == kNonbasicLower && sa > opt_.pivot_tol)
      candidate = true;
    else if (status_[j] == kNonbasicUpper && sa < -opt_.pivot_tol)
      candidate = true;
    else if (status_[j] == kFree && std::abs(sa) > opt_.pivot_tol)
      candidate = true;
    if (!candidate) continue;
    cand.push_back({std::abs(d_[j] / aj), std::abs(aj), j});
  }
  if (cand.empty()) {
    // With columns banned the emptiness may be an artifact of the bans,
    // not proof of dual unboundedness: report numerical trouble so the
    // caller restarts from a clean basis instead of declaring infeasible.
    if (banned_count_ > 0) return 3;
    return 2;  // dual unbounded => primal infeasible
  }
  if (bland) {
    std::sort(cand.begin(), cand.end(),
              [](const RatioCandidate& a, const RatioCandidate& b) {
                if (a.ratio != b.ratio) return a.ratio < b.ratio;
                return a.col < b.col;
              });
  } else {
    std::sort(cand.begin(), cand.end(),
              [](const RatioCandidate& a, const RatioCandidate& b) {
                if (a.ratio != b.ratio) return a.ratio < b.ratio;
                if (a.abs_alpha != b.abs_alpha)
                  return a.abs_alpha > b.abs_alpha;
                return a.col < b.col;
              });
  }

  // Pass 2: walk the breakpoints in order. A boxed candidate whose flip
  // keeps the leaving row infeasible is flipped to its opposite bound (its
  // reduced cost changes sign across the breakpoint, so the flipped side
  // is the dual-feasible one) instead of entering; the first candidate
  // that cannot absorb the remaining infeasibility enters. Each flip
  // replaces what would otherwise be a full (usually degenerate) pivot.
  auto& flips = flip_cols_;
  flips.clear();
  int enter_col = -1;
  double enter_ratio = 0.0;
  double remaining = sigma * (xb_[leave_pos] - target);  // infeasibility > 0
  for (const RatioCandidate& c : cand) {
    const int j = c.col;
    if (opt_.bound_flip_ratio_test && !bland && status_[j] != kFree &&
        lo_[j] != -kInf && hi_[j] != kInf) {
      const double gain = c.abs_alpha * (hi_[j] - lo_[j]);
      if (remaining - gain > feas_tol) {
        flips.push_back(j);
        remaining -= gain;
        continue;
      }
    }
    enter_col = j;
    enter_ratio = c.ratio;
    break;
  }
  if (enter_col < 0) {
    // Flipping every breakpoint still leaves the row infeasible: the dual
    // ascent is unbounded along this direction => primal infeasible.
    return 2;
  }
  // Keep only the flips whose breakpoint the entering dual step STRICTLY
  // passes. A flip at the entering ratio itself -- in particular any flip
  // when the step is degenerate (ratio 0) -- gains zero dual objective,
  // and zero-gain flips can shuttle a column between its bounds forever
  // (observed cycling on mass-fixed rematerialization LPs). Dual
  // feasibility does not need those flips: a column with ratio >= theta
  // keeps a valid reduced-cost sign at its current bound.
  if (!flips.empty()) {
    size_t keep = 0;
    size_t ci = 0;
    for (size_t k = 0; k < flips.size(); ++k) {
      while (cand[ci].col != flips[k]) ++ci;  // cand is the walk order
      if (cand[ci].ratio < enter_ratio) flips[keep++] = flips[k];
    }
    flips.resize(keep);
  }

  // ---- FTRAN entering column.
  std::vector<double>& w = w_scratch_;
  w.assign(m_, 0.0);
  axpy_work_column(enter_col, 1.0, w);
  ftran(w);
  const double wr = w[leave_pos];
  if (std::abs(wr) < opt_.pivot_tol) {
    // The FTRAN'd pivot element disagrees with the BTRAN'd one badly;
    // refactorize and let the caller retry. (No flip has been applied yet,
    // so the basis state is untouched.) If the disagreement SURVIVES a
    // fresh factorization the pivot is structurally junk -- both values
    // sit at the tolerance edge -- and retrying would refactorize forever
    // (observed as a 100k-"iteration" non-pivoting loop): ban the column
    // from entering until the next real pivot.
    if (++wr_fail_streak_ >= 2) {
      banned_mark_[enter_col] = ban_stamp_;
      ++banned_count_;
      wr_fail_streak_ = 0;
    }
    if (!refactorize()) return 3;
    recompute_reduced_costs();
    recompute_basic_values();
    return 0;
  }
  wr_fail_streak_ = 0;
  if (banned_count_ > 0) {
    ++ban_stamp_;  // a real pivot landed: forgive all banned columns
    banned_count_ = 0;
  }

  // ---- Apply the bound flips: toggle each column to its opposite bound
  // and repair the basics with one aggregated FTRAN for the whole batch.
  if (!flips.empty()) {
    std::vector<double>& fl = flip_scratch_;
    fl.assign(m_, 0.0);
    for (int j : flips) {
      const double step = status_[j] == kNonbasicLower ? hi_[j] - lo_[j]
                                                       : lo_[j] - hi_[j];
      z_est_ += d_[j] * step;  // dual objective gained by the flip
      axpy_work_column(j, step, fl);
      status_[j] =
          status_[j] == kNonbasicLower ? kNonbasicUpper : kNonbasicLower;
      x_[j] = bound_for_status(j, status_[j]);
    }
    ftran(fl);
    for (int i = 0; i < m_; ++i) xb_[i] -= fl[i];
  }
  const double delta = xb_[leave_pos] - target;

  // ---- Primal step.
  const double t = delta / wr;
  for (int i = 0; i < m_; ++i) xb_[i] -= t * w[i];
  const double enter_val =
      (status_[enter_col] == kFree ? x_[enter_col]
                                   : bound_for_status(enter_col, status_[enter_col])) +
      t;

  // ---- Dual step (sparse over the pivot row's nonzeros).
  const double theta = d_[enter_col] / wr;
  z_est_ += theta * delta;  // dual objective gained by the pivot
  // Stall detection on actual dual-objective progress |theta * delta|, not
  // theta alone: numerically-cycling bases make pivots whose theta is
  // nonzero but whose objective gain underflows against z (observed on
  // mass-fixed rematerialization LPs), and those must keep feeding the
  // Bland fallback counter.
  if (std::abs(theta * delta) < 1e-12 * cost_scale_) {
    ++stall_count_;  // degenerate step: no dual progress, candidate cycle
  } else {
    stall_count_ = 0;
  }
  for (int j : alpha_idx_) {
    if (status_[j] == kBasic || j == enter_col) continue;
    d_[j] -= theta * alpha_v_[j];
  }
  d_[leave_col] = -theta;
  d_[enter_col] = 0.0;

  // ---- Dual steepest-edge weight update (Forrest-Goldfarb, with the
  // exact leaving-row norm): beta_r is recomputed from the BTRAN'd rho
  // (cheap -- rho is in hand), tau = B^-1 rho costs one extra FTRAN.
  if (opt_.steepest_edge_pricing) {
    double beta_r = 0.0;
    for (int i = 0; i < m_; ++i) beta_r += rho[i] * rho[i];
    std::vector<double>& tau = flip_scratch_;
    tau = rho;
    ftran(tau);
    for (int i = 0; i < m_; ++i) {
      if (i == leave_pos || w[i] == 0.0) continue;
      const double eta = w[i] / wr;
      const double cand_w =
          dse_w_[i] - 2.0 * eta * tau[i] + eta * eta * beta_r;
      dse_w_[i] = std::max(cand_w, 1e-10);
    }
    dse_w_[leave_pos] = std::max(beta_r / (wr * wr), 1e-10);
  }

  // ---- Status updates.
  status_[leave_col] = sigma > 0 ? kNonbasicUpper : kNonbasicLower;
  x_[leave_col] = target;
  status_[enter_col] = kBasic;
  basic_var_[leave_pos] = enter_col;
  xb_[leave_pos] = enter_val;

  // ---- Record eta.
  Eta eta;
  eta.pivot_pos = leave_pos;
  eta.pivot_val = wr;
  for (int i = 0; i < m_; ++i) {
    if (i != leave_pos && w[i] != 0.0) {
      eta.idx.push_back(i);
      eta.val.push_back(w[i]);
    }
  }
  etas_.push_back(std::move(eta));
  if (++pivots_since_refactor_ >= opt_.refactor_interval) {
    if (!refactorize()) return 3;
    recompute_reduced_costs();
    recompute_basic_values();
  }
  return 0;
}

LpResult DualSimplex::solve() {
  LpResult result;
  sync_rows();  // adopt rows appended to the LP since the last solve
  ++ban_stamp_;
  banned_count_ = 0;
  wr_fail_streak_ = 0;
  if (!basis_valid_) {
    make_initial_basis();
    needs_refactor_ = false;
    if (!refactorize()) {
      // Leave the engine marked invalid so the next solve() rebuilds from
      // scratch instead of touching the failed factorization.
      basis_valid_ = false;
      result.status = LpStatus::kNumericalError;
      return result;
    }
    recompute_reduced_costs();
    d_dirty_ = false;
  } else if (needs_refactor_) {
    // A restored basis: rebuild the factorization now; a singular restored
    // basis (numerically degenerate snapshot, or an injected
    // snapshot-restore mismatch) falls back to a clean slack basis rather
    // than failing the solve. Bound overrides survive the fallback --
    // make_initial_basis keeps the current lo_/hi_ -- so the recovery
    // re-lifts the branch decisions onto a fresh basis.
    needs_refactor_ = false;
    if (robust::fault(robust::FaultPoint::kSnapshotRestore) ||
        !refactorize()) {
      make_initial_basis();
      if (!refactorize()) {
        basis_valid_ = false;
        result.status = LpStatus::kNumericalError;
        return result;
      }
    }
    d_dirty_ = true;
  }
  if (d_dirty_) {
    // Refresh reduced costs and re-place nonbasic columns on their
    // dual-feasible bounds (bound changes can leave stale d signs).
    recompute_reduced_costs();
    for (int j = 0; j < num_total(); ++j) {
      if (status_[j] == kBasic || status_[j] == kFree) continue;
      if (hi_[j] - lo_[j] < 1e-12) continue;
      if (d_[j] > opt_.optimality_tol && lo_[j] != -kInf) {
        status_[j] = kNonbasicLower;
        x_[j] = lo_[j];
      } else if (d_[j] < -opt_.optimality_tol && hi_[j] != kInf) {
        status_[j] = kNonbasicUpper;
        x_[j] = hi_[j];
      }
    }
    d_dirty_ = false;
    xb_dirty_ = true;
  }
  if (xb_dirty_) recompute_basic_values();

  // A warm-started re-solve (e.g. a branch bound change) often starts at a
  // basis whose dual objective already clears the caller's cutoff: prune
  // before the first pivot. The same scan seeds the running estimate the
  // in-loop check triggers on; without a limit neither is needed.
  const bool check_obj_limit = opt_.objective_limit < kInf;
  z_est_ = -kInf;
  if (check_obj_limit) {
    z_est_ = truncated_dual_bound();
    if (z_est_ >= opt_.objective_limit) {
      result.status = LpStatus::kObjectiveLimit;
      result.dual_bound = z_est_;
      result.iterations = 0;
      return result;
    }
  }

  int iters = 0;
  int numerical_retries = 0;
  // Effective deadline: the per-solve wall-clock cap combined with the
  // caller's absolute deadline; cancellation rides the same check. Checked
  // on a cheap stride (every 64 pivots) and once up front so a solve whose
  // deadline already passed returns immediately with a sound bound.
  const robust::Deadline deadline = robust::Deadline::sooner(
      opt_.deadline, robust::Deadline::after(opt_.time_limit_sec));
  if (deadline.expired() || opt_.cancel.cancelled()) {
    result.status = LpStatus::kIterationLimit;
    result.dual_bound = truncated_dual_bound();
    result.iterations = 0;
    return result;
  }
  while (iters < opt_.max_iterations) {
    if ((iters & 0x3f) == 0x3f &&
        (deadline.expired() || opt_.cancel.cancelled())) {
      result.status = LpStatus::kIterationLimit;
      result.dual_bound = truncated_dual_bound();
      result.iterations = iters;
      return result;
    }
    // Deterministic early-out: the dual objective only rises, so once it
    // clears the caller's cutoff the node is prunable no matter where the
    // optimum lands. The estimate is maintained incrementally per pivot
    // (theta * delta plus flip gains) and is only a TRIGGER -- the prune
    // itself re-derives the exact perturbation-corrected bound, so drift
    // in the running sum can cost a wasted check but never soundness.
    if (check_obj_limit && z_est_ >= opt_.objective_limit) {
      const double bound = truncated_dual_bound();
      if (bound >= opt_.objective_limit) {
        result.status = LpStatus::kObjectiveLimit;
        result.dual_bound = bound;
        result.iterations = iters;
        return result;
      }
      z_est_ = bound;  // resync the drifted estimate and keep going
    }
    const int rc = iterate();
    ++iters;
    ++total_iterations_;
    if (rc == 0) continue;
    if (rc == 1) break;  // optimal
    if (rc == 2) {
      result.status = LpStatus::kInfeasible;
      result.objective = kInf;
      result.dual_bound = kInf;
      result.iterations = iters;
      return result;
    }
    if (rc == 3) {
      if (++numerical_retries > 3) {
        basis_valid_ = false;  // force a clean rebuild next time
        result.status = LpStatus::kNumericalError;
        result.iterations = iters;
        return result;
      }
      // Full reset: rebuild from the slack basis.
      make_initial_basis();
      if (!refactorize()) {
        basis_valid_ = false;
        result.status = LpStatus::kNumericalError;
        return result;
      }
      recompute_reduced_costs();
      recompute_basic_values();
      if (check_obj_limit) z_est_ = truncated_dual_bound();
    }
  }
  if (iters >= opt_.max_iterations) {
    result.status = LpStatus::kIterationLimit;
    result.dual_bound = truncated_dual_bound();
    result.iterations = iters;
    return result;
  }

  // Assemble the structural solution.
  result.x.assign(n_, 0.0);
  for (int j = 0; j < n_; ++j)
    if (status_[j] != kBasic) result.x[j] = x_[j];
  for (int i = 0; i < m_; ++i)
    if (basic_var_[i] < n_) result.x[basic_var_[i]] = xb_[i];

  if (used_artificial_bound_) {
    for (int j = 0; j < n_; ++j) {
      if (std::abs(std::abs(result.x[j]) - opt_.artificial_bound) < 1e-3) {
        result.status = LpStatus::kUnbounded;
        result.objective = -kInf;
        result.iterations = iters;
        return result;
      }
    }
  }
  result.status = LpStatus::kOptimal;
  result.objective = lp_->objective_value(result.x);
  result.dual_bound = result.objective;
  result.iterations = iters;
  return result;
}

LpResult solve_lp(const LinearProgram& lp, SimplexOptions options) {
  DualSimplex solver(lp, options);
  return solver.solve();
}

}  // namespace checkmate::lp
