// Sparse bounded-variable dual simplex.
//
// The engine works on the computational form
//
//   minimize c'x   subject to   A x - s = 0,   lb <= x <= ub,
//                               row_lb <= s <= row_ub
//
// i.e. the working matrix is W = [A | -I] and every constraint is an
// equality against zero with slack activity bounded by the row range. The
// initial all-slack basis is made dual feasible by placing each nonbasic
// column at its sign-correct bound (cost-shifted bound flips); primal
// feasibility is then restored by dual simplex pivots.
//
// Dual simplex is chosen over primal because branch-and-bound re-solves
// after bound changes: bound changes preserve dual feasibility, so every
// B&B node warm-starts from the parent basis.
//
// Hot-path design (the system's innermost loop -- every B&B node and every
// cached sweep query bottoms out here):
//   - leaving row by dual steepest-edge weights (Forrest-Goldfarb,
//     updated exactly per pivot with one extra FTRAN of the pivot row);
//   - two-pass long-step ratio test with bound flips: boxed columns whose
//     reduced cost would change sign flip to the opposite bound instead of
//     pivoting, so one pivot absorbs whole runs of degenerate steps -- the
//     decisive move on 0/1 scheduling LPs where almost every column is
//     boxed [0,1];
//   - hypersparse pricing: alpha = W' rho accumulated over the nonzeros of
//     the BTRAN'd rho via the SparseMatrix row mirror, into a stamped
//     sparse scratch (no per-pivot dense pass over all columns).
//
// Basis representation: sparse LU (Gilbert-Peierls) refactorized
// periodically, with product-form eta updates between refactorizations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lp/lp_problem.h"
#include "lp/lu.h"
#include "lp/sparse_matrix.h"
#include "robust/deadline.h"

namespace checkmate::lp {

struct SimplexOptions {
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-7;
  double pivot_tol = 1e-9;
  // Dual steepest-edge pricing for the leaving-row choice
  // (Forrest-Goldfarb reference weights, updated exactly per pivot -- the
  // update spends one extra FTRAN but the row choice follows the true
  // steepest dual ascent). Off = Dantzig most-violated-basic, kept for
  // ablation.
  bool steepest_edge_pricing = true;
  // Long-step (bound-flipping) dual ratio test: boxed nonbasic columns
  // whose reduced cost would change sign are flipped to their opposite
  // bound instead of entering, amortizing runs of degenerate pivots. Off =
  // classic single-breakpoint minimum-ratio test, kept for ablation.
  bool bound_flip_ratio_test = true;
  int max_iterations = 200000;
  // Wall-clock cap for a single solve() call; exceeded => kIterationLimit.
  double time_limit_sec = 60.0;
  // Dual objective cutoff: once the (perturbation-corrected) dual bound of
  // the current basis provably exceeds this, solve() exits with
  // kObjectiveLimit instead of grinding to optimality. Checked on a fixed
  // iteration cadence, so truncation points are machine-independent.
  double objective_limit = kInf;
  int refactor_interval = 64;
  // Forrest-Tomlin basis updates: each pivot folds into the LU factors as
  // one row eta plus a column replacement instead of appending a
  // product-form eta, so the expensive full refactorization is deferred
  // until ft_update_limit updates accumulate, fill grows past
  // ft_growth_limit x the post-refactorize nnz, or an update is rejected
  // as unstable (near-cancelled replacement diagonal / huge eliminator).
  // Off = the PR-4 product-form eta path on the refactor_interval cadence,
  // kept for ablation.
  bool forrest_tomlin = true;
  int ft_update_limit = 192;
  double ft_growth_limit = 3.0;
  // Curtis-Reid geometric-mean scaling at engine load time: equilibrates
  // the badly-ranged memory rows (byte coefficients vs. 0/1 logic rows) by
  // least-squares log2 row/column factors rounded to powers of two, so
  // scaling and unscaling are exact and the solution/duals extract
  // bit-clean. Snapshots carry the scaling identity; engines over the same
  // LP derive identical factors, preserving the restore contract.
  bool scaling = true;
  // Partial (candidate-list) dual pricing: the leaving-row scan keeps a
  // deterministic short list of the worst primal violations (by dse-scaled
  // score) and only rescans the full row set when the list drains or its
  // refresh cadence lapses. List membership is a pure function of the
  // solve trajectory, so node counts stay bit-identical across thread
  // counts. Engaged only past partial_pricing_min_rows rows.
  bool partial_pricing = true;
  int partial_pricing_min_rows = 256;
  // Deterministic tiny cost perturbation to break dual degeneracy (the
  // rematerialization LPs have thousands of zero-cost columns). Scaled
  // per column by |c_j| (zero-cost columns use the global max |c|) so
  // that badly-ranged objectives are not distorted: a jitter
  // proportional to the GLOBAL max cost can dwarf a small column's true
  // cost and park the solve on a perturbed-optimal vertex that is
  // macroscopically suboptimal for the real objective. The true
  // objective is always recomputed from unperturbed costs.
  double perturbation = 1e-8;
  // Finite stand-in bound for dual-infeasible columns lacking a usable
  // bound; solutions resting on it are reported as unbounded. Kept modest:
  // the bound's magnitude multiplies into floating-point cancellation error
  // (~bound * 1e-16) during pivoting.
  double artificial_bound = 1e7;
  // Absolute deadline and cancellation token, checked on the same cheap
  // iteration stride as the wall-clock limit. Either trips the solve into
  // kIterationLimit with a sound truncated dual bound. Both default inert.
  robust::Deadline deadline;
  robust::CancelToken cancel;
};

// Cumulative LP-engine observability counters (per DualSimplex instance;
// branch & bound diffs them around each node batch to attribute work).
struct LpEngineStats {
  int64_t refactorizations = 0;  // full LU rebuilds
  int64_t ft_updates = 0;        // Forrest-Tomlin updates absorbed
  // Refactorizations forced by FT fill growth or an unstable update (a
  // subset of refactorizations; the rest are cadence/anti-stall/restore).
  int64_t ft_growth_refactors = 0;
  int64_t eta_pivots = 0;      // product-form eta pivots (FT off)
  int64_t pricing_resets = 0;  // partial-pricing candidate-list rebuilds
};

// Engine-independent capture of the warm-start-relevant simplex state:
// basis status, the basic-position assignment, bound overrides relative to
// the base LinearProgram, and the values of free nonbasic columns. The LU
// factors and eta file are deliberately NOT captured -- a restoring engine
// refactorizes lazily on its next solve(), so a snapshot is a few dozen KB
// even for the large rematerialization LPs and two sibling B&B nodes can
// share one via shared_ptr. Restoring into ANY engine built over the same
// LinearProgram (same options) yields the same solve trajectory, which is
// what lets the parallel tree search hand a child node to whichever worker
// thread picks it up.
struct BasisSnapshot {
  struct BoundOverride {
    int col;  // structural j in [0, n) or slack n + row
    double lo, hi;
  };
  // Row count of the LP when the snapshot was captured, plus the identity
  // (LinearProgram::row_ids) of each of those rows. Cut rows append to a
  // working LP between epochs and aged-out cut rows are garbage-collected
  // from it, so the row set a snapshot was captured over and the row set it
  // restores into may differ in both directions. restore() matches rows by
  // id: when the snapshot's ids are a prefix of the LP's (the common pure-
  // append case) the basis is adopted directly and newer rows' slacks made
  // basic; otherwise surviving rows keep their captured basis state,
  // removed rows' basic columns are re-placed deterministically (structural
  // -> its sign-correct bound, vanished slack -> the position's own slack),
  // and a full consistency validation guards the result -- any mismatch
  // falls back to the fresh slack basis with the bound overrides kept.
  // Either way the restored state is a pure function of (snapshot, current
  // LP), which is the parallel-search determinism contract.
  int num_rows = 0;
  std::vector<int64_t> row_ids;  // size num_rows when valid
  std::vector<int8_t> status;                       // size n + num_rows
  std::vector<int> basic_var;                       // size num_rows
  std::vector<BoundOverride> bounds;                // cols differing from the LP
  std::vector<std::pair<int, double>> free_values;  // x of kFree columns
  // Dual steepest-edge weights by basis position (size num_rows when
  // captured).
  // The weights approximate ||B^-T e_i||^2 of the captured basis, so
  // carrying them keeps exact pricing quality across the parallel B&B's
  // snapshot/restore handoffs; a restoring engine without them (invalid or
  // foreign snapshot) deterministically resets to the unit frame -- either
  // way the post-restore trajectory is a pure function of the snapshot,
  // preserving the bit-identity contract.
  std::vector<double> dse_weights;
  // Hash of the engine's Curtis-Reid scale exponents. Everything numeric
  // in the snapshot is stored in the TRUE frame (exactly, since the scale
  // factors are powers of two) except the steepest-edge weights, which are
  // norms in the scaled frame: on a scaling-identity mismatch restore()
  // resets them to the unit frame instead of carrying garbage. Engines
  // over the same LinearProgram (same scaling_rows prefix) always agree,
  // so the bit-exact clone/restore contract is unaffected.
  uint64_t scaling_hash = 0;
  bool used_artificial_bound = false;
  // False (the default-constructed snapshot): restore() resets the engine
  // to its freshly-constructed state (next solve builds the slack basis).
  bool valid = false;
};

class DualSimplex {
 public:
  explicit DualSimplex(const LinearProgram& lp, SimplexOptions options = {});

  // Overrides the bounds of structural variable j (branch-and-bound).
  // Preserves the current basis; the next solve() re-optimizes.
  void set_var_bounds(int var, double lower, double upper);

  // Adopts rows appended to the underlying LinearProgram since this engine
  // last saw it (branch & cut appends cut rows to the shared working LP at
  // epoch barriers). Each new row's slack becomes basic -- the basis stays
  // nonsingular because the new slack columns extend it block-triangularly
  // -- its steepest-edge weight starts at the unit frame, and the
  // factorization is rebuilt lazily on the next solve(). Idempotent; also
  // invoked by restore() and solve(), so callers normally never need it
  // explicitly. Rows must only ever be appended, never removed.
  void sync_rows();
  // Current (possibly branch-overridden) bounds in the ORIGINAL frame;
  // internally bounds live scaled, and the scale factors are powers of two
  // so the round trip through set_var_bounds is exact.
  double var_lower(int var) const { return lo_[var] * scale_[var]; }
  double var_upper(int var) const { return hi_[var] * scale_[var]; }

  // Solves (or re-solves after bound changes) to optimality.
  LpResult solve();

  // Captures the current basis + bound state (see BasisSnapshot). Taken
  // before the first solve() the snapshot is marked invalid and restores to
  // the fresh-engine state.
  BasisSnapshot snapshot() const;

  // Adopts a snapshot previously captured from this engine or any clone
  // over the same LinearProgram: bounds are reset to the base LP and the
  // snapshot's overrides reapplied, the basis is adopted as-is, and the
  // factorization is rebuilt lazily on the next solve(). Reduced costs are
  // cleared (recomputed on the next solve), so the post-restore trajectory
  // is independent of this engine's prior history -- the determinism
  // contract the parallel branch & bound relies on.
  void restore(const BasisSnapshot& snap);

  // A fresh engine over the same LinearProgram restored to snapshot().
  // Iteration accounting starts at zero in the clone; each engine's
  // iterations_total() is monotone over its own solves only.
  DualSimplex clone() const;

  // Adjusts the per-solve wall-clock cap (branch & bound shrinks it to its
  // remaining budget).
  void set_time_limit(double seconds) { opt_.time_limit_sec = seconds; }

  // Adjusts the dual objective cutoff for subsequent solve() calls (branch
  // & bound passes the incumbent prune threshold). kInf disables it.
  void set_objective_limit(double limit) { opt_.objective_limit = limit; }

  // Adjusts the per-solve pivot cap (reliability branching runs its
  // strong-branch probes under a small deterministic cap, then restores
  // the configured value).
  void set_iteration_limit(int iterations) { opt_.max_iterations = iterations; }
  int iteration_limit() const { return opt_.max_iterations; }

  int64_t iterations_total() const { return total_iterations_; }

  // Cumulative engine counters over every solve on this instance.
  const LpEngineStats& stats() const { return stats_; }

  // Reduced costs of the structural columns at the current basis (valid
  // after an optimal solve(); computed against the perturbed costs, so
  // consumers must budget a small safety margin), unscaled to the original
  // frame. Branch & bound reads these at the root for reduced-cost fixing.
  std::vector<double> structural_reduced_costs() const {
    std::vector<double> out(d_.begin(), d_.begin() + n_);
    for (int j = 0; j < n_; ++j) out[j] /= scale_[j];
    return out;
  }

  // ---- Tableau inspection (valid after an optimal solve; Gomory cut
  // separation reads basis rows in the original, unscaled frame).
  enum Status : int8_t { kNonbasicLower, kNonbasicUpper, kBasic, kFree };
  int num_rows() const { return m_; }
  int basic_col(int pos) const { return basic_var_[pos]; }
  int col_status(int col) const { return status_[col]; }
  // Value of the basic column at basis position `pos`, unscaled.
  double basic_value(int pos) const {
    return xb_[pos] * scale_[basic_var_[pos]];
  }
  // Value of a nonbasic column, unscaled (bound or free value).
  double nonbasic_value(int col) const { return x_[col] * scale_[col]; }
  // Simplex tableau row of basis position `pos`: every nonbasic column
  // (structural or slack; |coef| > 1e-11) in the identity
  //   x_B[pos] + sum_k coefs[k] * x[cols[k]] = 0
  // in the original (unscaled) frame -- the working form is homogeneous, so
  // rows have no constant term; the current basic value is basic_value(pos)
  // with nonbasics at nonbasic_value(). Costs one BTRAN + one hypersparse
  // pivot-row pass; returns false when the basis is not factorized.
  bool tableau_row(int pos, std::vector<int>& cols,
                   std::vector<double>& coefs);

 private:
  int num_total() const { return n_ + m_; }
  bool is_slack(int col) const { return col >= n_; }

  // FTRAN/BTRAN through LU factors plus the eta file.
  void ftran(std::vector<double>& x) const;
  void btran(std::vector<double>& y) const;

  // W[:, col]' . dense (dense has length m_).
  double dot_work_column(int col, const std::vector<double>& dense) const;
  // dense += alpha * W[:, col].
  void axpy_work_column(int col, double alpha,
                        std::vector<double>& dense) const;

  bool refactorize();            // rebuild LU from current basis
  void recompute_reduced_costs();
  void recompute_basic_values();
  void make_initial_basis();
  double bound_for_status(int col, int status) const;
  // Curtis-Reid scale factors for the constructor (fills scale_ and
  // scaling_hash_; all-ones when opt_.scaling is off or the ranges are
  // already balanced enough that every rounded factor is 1).
  void compute_scaling(const LinearProgram& lp);
  // Partial pricing: rebuilds the leaving-row candidate list with a full
  // deterministic scan (worst violations by dse-scaled score).
  void rebuild_price_list();
  // Leaving-row selection (full scan, or over the candidate list when
  // partial pricing is engaged). Returns -1 when primal feasible.
  int select_leave_row(bool bland);

  // Hypersparse pivot-row computation: alpha = W' rho accumulated over the
  // nonzeros of rho only (CSR rows of A + the slack diagonal), written into
  // the stamped scratch alpha_v_ / alpha_idx_.
  void compute_pivot_row(const std::vector<double>& rho);

  // Dual objective of the current (dual-feasible) basis corrected for the
  // cost perturbation: a sound lower bound on the true LP optimum, used to
  // populate LpResult::dual_bound on truncated exits. -inf when no finite
  // correction exists (a perturbed column with an unbounded hot side).
  double truncated_dual_bound() const;

  // One dual simplex pivot. Returns:
  //   0: pivoted, 1: optimal, 2: infeasible, 3: numerical trouble
  int iterate();

  const LinearProgram* lp_;
  SimplexOptions opt_;
  SparseMatrix a_;  // structural columns (Curtis-Reid scaled)
  int n_ = 0, m_ = 0;
  // Count of lp_->entries already folded into a_; sync_rows() consumes the
  // tail (appended cut rows reference only rows >= m_).
  size_t entries_synced_ = 0;

  // Curtis-Reid column scale factors, size n+m: structural j holds q_j
  // (internal x~_j = x_j / q_j), slack n+i holds 1/r_i so the slack column
  // of the scaled working matrix stays exactly -1. All powers of two, so
  // every scale/unscale is exact in floating point. All-ones when scaling
  // is off, which keeps the engine bit-identical to the unscaled build.
  std::vector<double> scale_;
  uint64_t scaling_hash_ = 0;
  // Identity of each LP row this engine has adopted (mirrors
  // LinearProgram::row_ids; synthesized 0..m-1 for LPs that don't carry
  // ids). Captured into snapshots for restore-time row remapping.
  std::vector<int64_t> row_ids_;

  std::vector<double> cost_;     // size n+m (slack cost 0), scaled
  std::vector<double> lo_, hi_;  // size n+m, current (overridden), scaled

  std::vector<int8_t> status_;   // size n+m
  std::vector<int> basic_var_;   // size m: column index in basis position i
  std::vector<double> x_;        // nonbasic values (valid where nonbasic)
  std::vector<double> xb_;       // basic values by basis position
  std::vector<double> d_;        // reduced costs, size n+m

  struct Eta {
    int pivot_pos;
    std::vector<int> idx;
    std::vector<double> val;
    double pivot_val;
  };
  LuFactorization lu_;
  std::vector<Eta> etas_;

  bool basis_valid_ = false;
  bool needs_refactor_ = false;  // restored basis awaiting a lazy refactorize
  bool xb_dirty_ = true;
  bool d_dirty_ = false;
  bool used_artificial_bound_ = false;
  int pivots_since_refactor_ = 0;
  int64_t nnz_base_ = 0;  // factor nnz right after the last refactorize
  LpEngineStats stats_;
  // Partial-pricing candidate list (basis positions, worst-first) and its
  // refresh bookkeeping; dirtied by anything that moves many basics at
  // once (restore, refactorize-with-recompute, row sync).
  std::vector<int> price_cand_;
  int price_countdown_ = 0;
  bool price_dirty_ = true;
  // Cumulative across every solve() on this instance; branch & bound runs
  // millions of warm-started re-solves, so this must not wrap at int range.
  int64_t total_iterations_ = 0;
  int stall_count_ = 0;
  double cost_scale_ = 1.0;  // max |obj| coefficient; stall-progress scale
  // Entering columns rejected for persistent FTRAN/BTRAN pivot-element
  // disagreements, kept as a stamp set so several junk columns can be
  // sidelined at once; cleared by the next successful pivot (and at
  // solve() entry, keeping the trajectory a pure function of basis +
  // bounds).
  std::vector<int64_t> banned_mark_;
  int64_t ban_stamp_ = 1;
  int banned_count_ = 0;  // bans since the last successful pivot
  int wr_fail_streak_ = 0;
  // Running dual-objective estimate during a solve() (incremented by each
  // pivot's theta*delta and each flip's d*step); trigger-only, see solve().
  double z_est_ = -kInf;

  // Dual steepest-edge weights by basis position (approximate
  // ||B^-T e_i||^2; reset to the unit frame on make_initial_basis and on
  // restore-without-weights, floored at 1e-10 against cancellation).
  std::vector<double> dse_w_;

  // Per-iteration scratch (avoids ~100KB of allocation per pivot). The
  // pivot row alpha lives in a stamped sparse scratch: alpha_v_ holds
  // values, alpha_idx_ the touched columns, and alpha_mark_[j] == stamp
  // marks validity -- no O(n+m) memset per pivot.
  std::vector<double> rho_scratch_, w_scratch_, flip_scratch_;
  std::vector<double> alpha_v_;
  std::vector<int> alpha_idx_;
  std::vector<int64_t> alpha_mark_;
  int64_t alpha_stamp_ = 0;
  struct RatioCandidate {
    double ratio;      // |d_j / alpha_j|: dual step at which d_j hits zero
    double abs_alpha;  // pivot magnitude (tie-break + flip slope)
    int col;
  };
  std::vector<RatioCandidate> cand_scratch_;
  std::vector<int> flip_cols_;
};

// Convenience: solve the LP relaxation of `lp` with a fresh engine.
LpResult solve_lp(const LinearProgram& lp, SimplexOptions options = {});

}  // namespace checkmate::lp
