// Sparse bounded-variable dual simplex.
//
// The engine works on the computational form
//
//   minimize c'x   subject to   A x - s = 0,   lb <= x <= ub,
//                               row_lb <= s <= row_ub
//
// i.e. the working matrix is W = [A | -I] and every constraint is an
// equality against zero with slack activity bounded by the row range. The
// initial all-slack basis is made dual feasible by placing each nonbasic
// column at its sign-correct bound (cost-shifted bound flips); primal
// feasibility is then restored by dual simplex pivots.
//
// Dual simplex is chosen over primal because branch-and-bound re-solves
// after bound changes: bound changes preserve dual feasibility, so every
// B&B node warm-starts from the parent basis.
//
// Hot-path design (the system's innermost loop -- every B&B node and every
// cached sweep query bottoms out here):
//   - leaving row by dual steepest-edge weights (Forrest-Goldfarb,
//     updated exactly per pivot with one extra FTRAN of the pivot row);
//   - two-pass long-step ratio test with bound flips: boxed columns whose
//     reduced cost would change sign flip to the opposite bound instead of
//     pivoting, so one pivot absorbs whole runs of degenerate steps -- the
//     decisive move on 0/1 scheduling LPs where almost every column is
//     boxed [0,1];
//   - hypersparse pricing: alpha = W' rho accumulated over the nonzeros of
//     the BTRAN'd rho via the SparseMatrix row mirror, into a stamped
//     sparse scratch (no per-pivot dense pass over all columns).
//
// Basis representation: sparse LU (Gilbert-Peierls) refactorized
// periodically, with product-form eta updates between refactorizations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lp/lp_problem.h"
#include "lp/lu.h"
#include "lp/sparse_matrix.h"
#include "robust/deadline.h"

namespace checkmate::lp {

struct SimplexOptions {
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-7;
  double pivot_tol = 1e-9;
  // Dual steepest-edge pricing for the leaving-row choice
  // (Forrest-Goldfarb reference weights, updated exactly per pivot -- the
  // update spends one extra FTRAN but the row choice follows the true
  // steepest dual ascent). Off = Dantzig most-violated-basic, kept for
  // ablation.
  bool steepest_edge_pricing = true;
  // Long-step (bound-flipping) dual ratio test: boxed nonbasic columns
  // whose reduced cost would change sign are flipped to their opposite
  // bound instead of entering, amortizing runs of degenerate pivots. Off =
  // classic single-breakpoint minimum-ratio test, kept for ablation.
  bool bound_flip_ratio_test = true;
  int max_iterations = 200000;
  // Wall-clock cap for a single solve() call; exceeded => kIterationLimit.
  double time_limit_sec = 60.0;
  // Dual objective cutoff: once the (perturbation-corrected) dual bound of
  // the current basis provably exceeds this, solve() exits with
  // kObjectiveLimit instead of grinding to optimality. Checked on a fixed
  // iteration cadence, so truncation points are machine-independent.
  double objective_limit = kInf;
  int refactor_interval = 64;
  // Deterministic tiny cost perturbation to break dual degeneracy (the
  // rematerialization LPs have thousands of zero-cost columns). The true
  // objective is always recomputed from unperturbed costs.
  double perturbation = 1e-8;
  // Finite stand-in bound for dual-infeasible columns lacking a usable
  // bound; solutions resting on it are reported as unbounded. Kept modest:
  // the bound's magnitude multiplies into floating-point cancellation error
  // (~bound * 1e-16) during pivoting.
  double artificial_bound = 1e7;
  // Absolute deadline and cancellation token, checked on the same cheap
  // iteration stride as the wall-clock limit. Either trips the solve into
  // kIterationLimit with a sound truncated dual bound. Both default inert.
  robust::Deadline deadline;
  robust::CancelToken cancel;
};

// Engine-independent capture of the warm-start-relevant simplex state:
// basis status, the basic-position assignment, bound overrides relative to
// the base LinearProgram, and the values of free nonbasic columns. The LU
// factors and eta file are deliberately NOT captured -- a restoring engine
// refactorizes lazily on its next solve(), so a snapshot is a few dozen KB
// even for the large rematerialization LPs and two sibling B&B nodes can
// share one via shared_ptr. Restoring into ANY engine built over the same
// LinearProgram (same options) yields the same solve trajectory, which is
// what lets the parallel tree search hand a child node to whichever worker
// thread picks it up.
struct BasisSnapshot {
  struct BoundOverride {
    int col;  // structural j in [0, n) or slack n + row
    double lo, hi;
  };
  // Row count of the LP when the snapshot was captured. Cut rows only ever
  // APPEND to a working LP (branch & cut never deletes rows mid-search), so
  // a parent snapshot may carry fewer rows than the LP a child restores
  // into: restore() adopts the snapshot's basis for the first num_rows rows
  // and makes the newer rows' slacks basic (exactly how a freshly appended
  // cut row enters the basis), keeping the restored state a pure function
  // of (snapshot, current LP).
  int num_rows = 0;
  std::vector<int8_t> status;                       // size n + num_rows
  std::vector<int> basic_var;                       // size num_rows
  std::vector<BoundOverride> bounds;                // cols differing from the LP
  std::vector<std::pair<int, double>> free_values;  // x of kFree columns
  // Dual steepest-edge weights by basis position (size num_rows when
  // captured).
  // The weights approximate ||B^-T e_i||^2 of the captured basis, so
  // carrying them keeps exact pricing quality across the parallel B&B's
  // snapshot/restore handoffs; a restoring engine without them (invalid or
  // foreign snapshot) deterministically resets to the unit frame -- either
  // way the post-restore trajectory is a pure function of the snapshot,
  // preserving the bit-identity contract.
  std::vector<double> dse_weights;
  bool used_artificial_bound = false;
  // False (the default-constructed snapshot): restore() resets the engine
  // to its freshly-constructed state (next solve builds the slack basis).
  bool valid = false;
};

class DualSimplex {
 public:
  explicit DualSimplex(const LinearProgram& lp, SimplexOptions options = {});

  // Overrides the bounds of structural variable j (branch-and-bound).
  // Preserves the current basis; the next solve() re-optimizes.
  void set_var_bounds(int var, double lower, double upper);

  // Adopts rows appended to the underlying LinearProgram since this engine
  // last saw it (branch & cut appends cut rows to the shared working LP at
  // epoch barriers). Each new row's slack becomes basic -- the basis stays
  // nonsingular because the new slack columns extend it block-triangularly
  // -- its steepest-edge weight starts at the unit frame, and the
  // factorization is rebuilt lazily on the next solve(). Idempotent; also
  // invoked by restore() and solve(), so callers normally never need it
  // explicitly. Rows must only ever be appended, never removed.
  void sync_rows();
  double var_lower(int var) const { return lo_[var]; }
  double var_upper(int var) const { return hi_[var]; }

  // Solves (or re-solves after bound changes) to optimality.
  LpResult solve();

  // Captures the current basis + bound state (see BasisSnapshot). Taken
  // before the first solve() the snapshot is marked invalid and restores to
  // the fresh-engine state.
  BasisSnapshot snapshot() const;

  // Adopts a snapshot previously captured from this engine or any clone
  // over the same LinearProgram: bounds are reset to the base LP and the
  // snapshot's overrides reapplied, the basis is adopted as-is, and the
  // factorization is rebuilt lazily on the next solve(). Reduced costs are
  // cleared (recomputed on the next solve), so the post-restore trajectory
  // is independent of this engine's prior history -- the determinism
  // contract the parallel branch & bound relies on.
  void restore(const BasisSnapshot& snap);

  // A fresh engine over the same LinearProgram restored to snapshot().
  // Iteration accounting starts at zero in the clone; each engine's
  // iterations_total() is monotone over its own solves only.
  DualSimplex clone() const;

  // Adjusts the per-solve wall-clock cap (branch & bound shrinks it to its
  // remaining budget).
  void set_time_limit(double seconds) { opt_.time_limit_sec = seconds; }

  // Adjusts the dual objective cutoff for subsequent solve() calls (branch
  // & bound passes the incumbent prune threshold). kInf disables it.
  void set_objective_limit(double limit) { opt_.objective_limit = limit; }

  // Adjusts the per-solve pivot cap (reliability branching runs its
  // strong-branch probes under a small deterministic cap, then restores
  // the configured value).
  void set_iteration_limit(int iterations) { opt_.max_iterations = iterations; }
  int iteration_limit() const { return opt_.max_iterations; }

  int64_t iterations_total() const { return total_iterations_; }

  // Reduced costs of the structural columns at the current basis (valid
  // after an optimal solve(); computed against the perturbed costs, so
  // consumers must budget a small safety margin). Branch & bound reads
  // these at the root for reduced-cost variable fixing.
  std::vector<double> structural_reduced_costs() const {
    return std::vector<double>(d_.begin(), d_.begin() + n_);
  }

 private:
  int num_total() const { return n_ + m_; }
  bool is_slack(int col) const { return col >= n_; }

  // FTRAN/BTRAN through LU factors plus the eta file.
  void ftran(std::vector<double>& x) const;
  void btran(std::vector<double>& y) const;

  // W[:, col]' . dense (dense has length m_).
  double dot_work_column(int col, const std::vector<double>& dense) const;
  // dense += alpha * W[:, col].
  void axpy_work_column(int col, double alpha,
                        std::vector<double>& dense) const;

  bool refactorize();            // rebuild LU from current basis
  void recompute_reduced_costs();
  void recompute_basic_values();
  void make_initial_basis();
  double bound_for_status(int col, int status) const;

  // Hypersparse pivot-row computation: alpha = W' rho accumulated over the
  // nonzeros of rho only (CSR rows of A + the slack diagonal), written into
  // the stamped scratch alpha_v_ / alpha_idx_.
  void compute_pivot_row(const std::vector<double>& rho);

  // Dual objective of the current (dual-feasible) basis corrected for the
  // cost perturbation: a sound lower bound on the true LP optimum, used to
  // populate LpResult::dual_bound on truncated exits. -inf when no finite
  // correction exists (a perturbed column with an unbounded hot side).
  double truncated_dual_bound() const;

  // One dual simplex pivot. Returns:
  //   0: pivoted, 1: optimal, 2: infeasible, 3: numerical trouble
  int iterate();

  const LinearProgram* lp_;
  SimplexOptions opt_;
  SparseMatrix a_;  // structural columns
  int n_ = 0, m_ = 0;
  // Count of lp_->entries already folded into a_; sync_rows() consumes the
  // tail (appended cut rows reference only rows >= m_).
  size_t entries_synced_ = 0;

  std::vector<double> cost_;     // size n+m (slack cost 0)
  std::vector<double> lo_, hi_;  // size n+m, current (possibly overridden)

  enum Status : int8_t { kNonbasicLower, kNonbasicUpper, kBasic, kFree };
  std::vector<int8_t> status_;   // size n+m
  std::vector<int> basic_var_;   // size m: column index in basis position i
  std::vector<double> x_;        // nonbasic values (valid where nonbasic)
  std::vector<double> xb_;       // basic values by basis position
  std::vector<double> d_;        // reduced costs, size n+m

  struct Eta {
    int pivot_pos;
    std::vector<int> idx;
    std::vector<double> val;
    double pivot_val;
  };
  LuFactorization lu_;
  std::vector<Eta> etas_;

  bool basis_valid_ = false;
  bool needs_refactor_ = false;  // restored basis awaiting a lazy refactorize
  bool xb_dirty_ = true;
  bool d_dirty_ = false;
  bool used_artificial_bound_ = false;
  int pivots_since_refactor_ = 0;
  // Cumulative across every solve() on this instance; branch & bound runs
  // millions of warm-started re-solves, so this must not wrap at int range.
  int64_t total_iterations_ = 0;
  int stall_count_ = 0;
  double cost_scale_ = 1.0;  // max |obj| coefficient; stall-progress scale
  // Entering columns rejected for persistent FTRAN/BTRAN pivot-element
  // disagreements, kept as a stamp set so several junk columns can be
  // sidelined at once; cleared by the next successful pivot (and at
  // solve() entry, keeping the trajectory a pure function of basis +
  // bounds).
  std::vector<int64_t> banned_mark_;
  int64_t ban_stamp_ = 1;
  int banned_count_ = 0;  // bans since the last successful pivot
  int wr_fail_streak_ = 0;
  // Running dual-objective estimate during a solve() (incremented by each
  // pivot's theta*delta and each flip's d*step); trigger-only, see solve().
  double z_est_ = -kInf;

  // Dual steepest-edge weights by basis position (approximate
  // ||B^-T e_i||^2; reset to the unit frame on make_initial_basis and on
  // restore-without-weights, floored at 1e-10 against cancellation).
  std::vector<double> dse_w_;

  // Per-iteration scratch (avoids ~100KB of allocation per pivot). The
  // pivot row alpha lives in a stamped sparse scratch: alpha_v_ holds
  // values, alpha_idx_ the touched columns, and alpha_mark_[j] == stamp
  // marks validity -- no O(n+m) memset per pivot.
  std::vector<double> rho_scratch_, w_scratch_, flip_scratch_;
  std::vector<double> alpha_v_;
  std::vector<int> alpha_idx_;
  std::vector<int64_t> alpha_mark_;
  int64_t alpha_stamp_ = 0;
  struct RatioCandidate {
    double ratio;      // |d_j / alpha_j|: dual step at which d_j hits zero
    double abs_alpha;  // pivot magnitude (tie-break + flip slope)
    int col;
  };
  std::vector<RatioCandidate> cand_scratch_;
  std::vector<int> flip_cols_;
};

// Convenience: solve the LP relaxation of `lp` with a fresh engine.
LpResult solve_lp(const LinearProgram& lp, SimplexOptions options = {});

}  // namespace checkmate::lp
