#include "lp/sparse_matrix.h"

#include <algorithm>
#include <cmath>
#include <new>
#include <stdexcept>

#include "robust/fault_injection.h"

namespace checkmate::lp {

SparseMatrix::SparseMatrix(int rows, int cols,
                           std::span<const Triplet> triplets, double drop_tol)
    : rows_(rows), cols_(cols) {
  // Chaos tier: an injected allocation failure surfaces exactly like a
  // real out-of-memory during matrix assembly.
  if (robust::fault(robust::FaultPoint::kSparseAlloc)) throw std::bad_alloc();
  if (rows < 0 || cols < 0)
    throw std::invalid_argument("SparseMatrix: negative dimension");
  for (const Triplet& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols)
      throw std::out_of_range("SparseMatrix: triplet index out of range");
  }

  // Counting sort by column, then sort each column's entries by row and
  // merge duplicates.
  std::vector<int> count(cols + 1, 0);
  for (const Triplet& t : triplets) ++count[t.col + 1];
  for (int j = 0; j < cols; ++j) count[j + 1] += count[j];

  std::vector<Triplet> sorted(triplets.size());
  {
    std::vector<int> next(count.begin(), count.end() - 1);
    for (const Triplet& t : triplets) sorted[next[t.col]++] = t;
  }

  col_ptr_.assign(cols + 1, 0);
  row_idx_.reserve(sorted.size());
  values_.reserve(sorted.size());
  size_t pos = 0;
  for (int j = 0; j < cols; ++j) {
    size_t end = pos;
    while (end < sorted.size() && sorted[end].col == j) ++end;
    std::sort(sorted.begin() + pos, sorted.begin() + end,
              [](const Triplet& a, const Triplet& b) { return a.row < b.row; });
    for (size_t k = pos; k < end;) {
      double sum = sorted[k].value;
      size_t k2 = k + 1;
      while (k2 < end && sorted[k2].row == sorted[k].row) sum += sorted[k2++].value;
      if (std::abs(sum) > drop_tol) {
        row_idx_.push_back(sorted[k].row);
        values_.push_back(sum);
      }
      k = k2;
    }
    pos = end;
    col_ptr_[j + 1] = static_cast<int>(row_idx_.size());
  }

  // Build the CSR mirror from the finalized CSC arrays (counting sort by
  // row; within a row, columns arrive in ascending order for free).
  row_ptr_.assign(rows + 1, 0);
  for (int r : row_idx_) ++row_ptr_[r + 1];
  for (int i = 0; i < rows; ++i) row_ptr_[i + 1] += row_ptr_[i];
  col_idx_.resize(row_idx_.size());
  row_values_.resize(values_.size());
  std::vector<int> next(row_ptr_.begin(), row_ptr_.end() - 1);
  for (int j = 0; j < cols; ++j) {
    for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      const int slot = next[row_idx_[k]]++;
      col_idx_[slot] = j;
      row_values_[slot] = values_[k];
    }
  }
}

void SparseMatrix::append_rows(int new_rows,
                               std::span<const Triplet> triplets) {
  // Chaos tier: cut-row appends can fail like any other allocation; the
  // strong guarantee holds (the matrix is untouched on a throw here).
  if (robust::fault(robust::FaultPoint::kCutRowAppend)) throw std::bad_alloc();
  if (new_rows < 0) throw std::invalid_argument("append_rows: negative count");
  const int old_rows = rows_;
  const int total_rows = old_rows + new_rows;
  for (const Triplet& t : triplets) {
    if (t.row < old_rows || t.row >= total_rows || t.col < 0 ||
        t.col >= cols_)
      throw std::out_of_range("append_rows: triplet index out of range");
  }

  // Splice the new entries into the CSC arrays. Within each column the new
  // rows sort after every existing row (their indices are larger), so the
  // merge is append-per-column; duplicates among the new triplets are
  // summed, matching the constructor's semantics.
  std::vector<Triplet> sorted(triplets.begin(), triplets.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.col != b.col) return a.col < b.col;
              return a.row < b.row;
            });

  std::vector<int> new_col_ptr(cols_ + 1, 0);
  std::vector<int> new_row_idx;
  std::vector<double> new_values;
  new_row_idx.reserve(row_idx_.size() + sorted.size());
  new_values.reserve(values_.size() + sorted.size());
  size_t pos = 0;
  for (int j = 0; j < cols_; ++j) {
    for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      new_row_idx.push_back(row_idx_[k]);
      new_values.push_back(values_[k]);
    }
    while (pos < sorted.size() && sorted[pos].col == j) {
      double sum = sorted[pos].value;
      const int row = sorted[pos].row;
      size_t k2 = pos + 1;
      while (k2 < sorted.size() && sorted[k2].col == j &&
             sorted[k2].row == row)
        sum += sorted[k2++].value;
      if (sum != 0.0) {
        new_row_idx.push_back(row);
        new_values.push_back(sum);
      }
      pos = k2;
    }
    new_col_ptr[j + 1] = static_cast<int>(new_row_idx.size());
  }
  col_ptr_ = std::move(new_col_ptr);
  row_idx_ = std::move(new_row_idx);
  values_ = std::move(new_values);
  rows_ = total_rows;

  // Rebuild the CSR mirror (counting sort, as in the constructor).
  row_ptr_.assign(rows_ + 1, 0);
  for (int r : row_idx_) ++row_ptr_[r + 1];
  for (int i = 0; i < rows_; ++i) row_ptr_[i + 1] += row_ptr_[i];
  col_idx_.resize(row_idx_.size());
  row_values_.resize(values_.size());
  std::vector<int> next(row_ptr_.begin(), row_ptr_.end() - 1);
  for (int j = 0; j < cols_; ++j) {
    for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      const int slot = next[row_idx_[k]]++;
      col_idx_[slot] = j;
      row_values_[slot] = values_[k];
    }
  }
}

void SparseMatrix::axpy_column(int j, double alpha, std::span<double> y) const {
  auto rows = col_rows(j);
  auto vals = col_values(j);
  for (size_t k = 0; k < rows.size(); ++k) y[rows[k]] += alpha * vals[k];
}

double SparseMatrix::dot_column(int j, std::span<const double> x) const {
  auto rows = col_rows(j);
  auto vals = col_values(j);
  double acc = 0.0;
  for (size_t k = 0; k < rows.size(); ++k) acc += vals[k] * x[rows[k]];
  return acc;
}

std::vector<double> SparseMatrix::multiply(std::span<const double> x) const {
  std::vector<double> y(rows_, 0.0);
  for (int j = 0; j < cols_; ++j)
    if (x[j] != 0.0) axpy_column(j, x[j], y);
  return y;
}

}  // namespace checkmate::lp
