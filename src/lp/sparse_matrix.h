// Compressed sparse column (CSC) matrix, the storage format used by the
// simplex engine and LU factorization.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace checkmate::lp {

// Triplet (coordinate) entry used while assembling a matrix.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

// CSC matrix with a row-wise (CSR) mirror. Duplicate triplets are summed
// during construction; entries with |value| <= drop_tol are dropped.
// Columns are frozen after construction, but rows can be appended
// (append_rows) -- the branch & cut search grows the working LP by cut
// rows against a warm simplex basis.
//
// The mirror exists for hypersparse simplex pricing: the pivot-row
// computation alpha = A' rho only touches the rows where the BTRAN'd rho is
// nonzero, so walking those rows costs O(nnz of the touched rows) instead
// of a dense dot against every column.
class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(int rows, int cols, std::span<const Triplet> triplets,
               double drop_tol = 0.0);

  // Appends `new_rows` rows whose entries are given as triplets with row
  // indices in [rows(), rows() + new_rows). Column count is unchanged.
  // Cost is O(nnz + new nnz): the CSC arrays are re-merged (new entries
  // splice into their columns) and the CSR mirror gains the new rows at
  // the end. Duplicate triplets within a new row are summed.
  void append_rows(int new_rows, std::span<const Triplet> triplets);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(row_idx_.size()); }

  // Column j as parallel (row index, value) spans.
  std::span<const int> col_rows(int j) const {
    return {row_idx_.data() + col_ptr_[j],
            static_cast<size_t>(col_ptr_[j + 1] - col_ptr_[j])};
  }
  std::span<const double> col_values(int j) const {
    return {values_.data() + col_ptr_[j],
            static_cast<size_t>(col_ptr_[j + 1] - col_ptr_[j])};
  }

  // Row i as parallel (column index, value) spans (the CSR mirror).
  std::span<const int> row_cols(int i) const {
    return {col_idx_.data() + row_ptr_[i],
            static_cast<size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  std::span<const double> row_values(int i) const {
    return {row_values_.data() + row_ptr_[i],
            static_cast<size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }

  // y += alpha * A[:, j]  (y is a dense vector of length rows()).
  void axpy_column(int j, double alpha, std::span<double> y) const;

  // Returns A[:, j] . x for a dense x of length rows().
  double dot_column(int j, std::span<const double> x) const;

  // Dense y = A * x (x length cols(), y length rows()).
  std::vector<double> multiply(std::span<const double> x) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> col_ptr_;  // size cols_+1
  std::vector<int> row_idx_;
  std::vector<double> values_;
  // CSR mirror (same entries, row-major).
  std::vector<int> row_ptr_;  // size rows_+1
  std::vector<int> col_idx_;
  std::vector<double> row_values_;
};

}  // namespace checkmate::lp
