#include "milp/branch_and_bound.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "lp/simplex.h"
#include "milp/cuts.h"
#include "milp/presolve.h"
#include "robust/fault_injection.h"

namespace checkmate::milp {

namespace {

using Clock = std::chrono::steady_clock;

// A slot never solves more than this many nodes per epoch: long dives would
// otherwise leave the epoch's other workers idle at the barrier, but SHORT
// dives are worse -- cutting a dive before it reaches an integral leaf
// starves the search of incumbents and was measured pathological on
// vgg16_mid_budget (64: 13694 nodes; 256: 4091 nodes, 3x less wall time;
// dives there never exceed 256, so larger caps change nothing). The cap is
// a fixed constant -- like epoch_width it is part of the deterministic
// search semantics and must not depend on the worker count.
constexpr int64_t kMaxDiveNodes = 256;

struct BoundChange {
  int var;
  double lo, hi;
};

// Bound changes live in an append-only arena; each entry points at its
// parent, so a node's root path is its parent chain and children share
// every prefix without copying. Workers read the arena during the solve
// phase (it is frozen then) and create local entries that the coordinator
// rebases into the shared arena at commit.
struct PathEntry {
  int parent;  // arena index, -1 at the root
  BoundChange change;
};

// An open node: an arena path, the branching decision that created it (for
// the pseudocost update when its LP is solved), the parent's final basis to
// warm-start from, and a commit sequence number for deterministic queue
// tie-breaks.
struct OpenNode {
  int path = -1;
  double bound = -lp::kInf;  // parent relaxation: lower bound for the subtree
  int branch_var = -1;
  bool branch_up = false;
  double branch_frac = 0.0;
  int64_t seq = 0;
  std::shared_ptr<const lp::BasisSnapshot> warm;  // null at the root
};

struct PseudocostStore {
  std::vector<double> sum[2];
  std::vector<int64_t> cnt[2];
  double global_sum[2] = {0.0, 0.0};
  int64_t global_cnt[2] = {0, 0};

  void init(int num_vars) {
    for (int d = 0; d < 2; ++d) {
      sum[d].assign(num_vars, 0.0);
      cnt[d].assign(num_vars, 0);
    }
  }
  // Average observed per-unit objective degradation for branching var j in
  // direction d (0 = down, 1 = up). Unobserved variables inherit the global
  // average; with no observations at all the default of 1.0 makes the
  // pseudocost score degenerate to most-fractional ordering.
  double rate(int d, int j) const {
    if (cnt[d][j] > 0) return sum[d][j] / static_cast<double>(cnt[d][j]);
    if (global_cnt[d] > 0)
      return global_sum[d] / static_cast<double>(global_cnt[d]);
    return 1.0;
  }
  void add(int d, int j, double unit) {
    sum[d][j] += unit;
    cnt[d][j] += 1;
    global_sum[d] += unit;
    global_cnt[d] += 1;
  }
};

struct PcObservation {
  int dir;
  int var;
  double unit;
};

// Engine counter attribution: the per-slot (or per-root-round) growth of a
// DualSimplex's cumulative LpEngineStats.
lp::LpEngineStats stats_since(const lp::LpEngineStats& now,
                              const lp::LpEngineStats& base) {
  lp::LpEngineStats d;
  d.refactorizations = now.refactorizations - base.refactorizations;
  d.ft_updates = now.ft_updates - base.ft_updates;
  d.ft_growth_refactors = now.ft_growth_refactors - base.ft_growth_refactors;
  d.eta_pivots = now.eta_pivots - base.eta_pivots;
  d.pricing_resets = now.pricing_resets - base.pricing_resets;
  return d;
}

void add_stats(MilpResult& r, const lp::LpEngineStats& d) {
  r.lp_refactorizations += d.refactorizations;
  r.lp_ft_updates += d.ft_updates;
  r.lp_ft_growth_refactors += d.ft_growth_refactors;
  r.lp_eta_pivots += d.eta_pivots;
  r.lp_pricing_resets += d.pricing_resets;
}

struct IncumbentCandidate {
  double objective;
  std::vector<double> x;
};

// Everything a slot produced, committed in slot order at the barrier.
struct SlotResult {
  int64_t nodes = 0;
  int64_t lp_iterations = 0;
  int64_t strong_branches = 0;
  std::vector<PathEntry> entries;  // local arena entries (refs >= shared base)
  std::vector<OpenNode> children;  // for the open queue (paths may be local)
  std::vector<PcObservation> pc_obs;
  std::vector<IncumbentCandidate> incumbents;
  // Cuts separated at this slot's node LP solutions (node-local
  // separation). Globally valid by construction; the coordinator offers
  // them to the pool in slot order at the barrier.
  std::vector<Cut> cuts;
  // LP-engine counter growth over this slot's solves (node LPs + probes);
  // deterministic because the slot's engine trajectory is snapshot-pure.
  lp::LpEngineStats lp_stats;
  std::vector<double> heur_x;  // first fractional LP solution of the slot
  double heur_obj = lp::kInf;
  bool solved_root = false;
  bool root_lp_ok = false;
  double root_relaxation = lp::kInf;
  // Captured at the root only: the LP solution and structural reduced
  // costs that drive reduced-cost fixing for the rest of the search.
  std::vector<double> root_x;
  std::vector<double> root_redcost;
  // Root basis (captured only when cut separation is on): the root
  // separation rounds restore it to re-solve the root on the cut-
  // tightened LP.
  std::shared_ptr<const lp::BasisSnapshot> root_snap;
  // Subtrees lost to LP numerical trouble / per-node limits: the search is
  // incomplete and these bounds cap the reportable global bound.
  bool dropped = false;
  double dropped_bound = lp::kInf;
};

class EpochSearch {
 public:
  EpochSearch(const lp::LinearProgram& lp, const MilpOptions& options,
              const IncumbentHeuristic& heuristic)
      : lp_(lp),
        opt_(options),
        heuristic_(heuristic),
        start_(Clock::now()),
        heur_interval_(std::max(1, options.heuristic_interval)) {
    epoch_width_ = std::max(1, opt_.epoch_width);
    num_workers_ = resolve_tree_threads(opt_);
    // The working LP needs stable row identities (cut-row GC remaps basis
    // snapshots by id) -- synthesize them when the caller's LP doesn't
    // carry any (e.g. the presolve output builds rows directly). And the
    // base rows define the Curtis-Reid scaling prefix: cut rows appended
    // (and deleted) mid-search keep unit row scale, so EVERY engine
    // constructed over this LP -- before or after any cut event -- derives
    // the identical scale vector, which is what lets basis snapshots carry
    // steepest-edge weights across engines bit-exactly.
    if (static_cast<int>(lp_.row_ids.size()) != lp_.num_rows()) {
      lp_.row_ids.resize(static_cast<size_t>(lp_.num_rows()));
      for (int r = 0; r < lp_.num_rows(); ++r) lp_.row_ids[r] = r;
      lp_.next_row_id = lp_.num_rows();
    }
    lp_.scaling_rows = lp_.num_rows();
    max_dive_nodes_ =
        opt_.node_selection == NodeSelection::kBestBound ? 1 : kMaxDiveNodes;
    for (int j = 0; j < lp.num_vars(); ++j)
      if (lp.is_integer[j]) int_vars_.push_back(j);
    pc_.init(lp.num_vars());
    fix_done_.assign(static_cast<size_t>(lp.num_vars()), 0);
    workers_.resize(static_cast<size_t>(num_workers_));
    // First-incumbent (feasibility-probe) searches stop at the first
    // feasible point: cut rounds and strong-branch probes pay off through
    // bound pruning, which such a search never reaches, so both default
    // off there regardless of the knobs.
    knapsack_cuts_on_ = opt_.cut_separation &&
                        opt_.cut_structure != nullptr &&
                        !opt_.cut_structure->empty();
    // Gomory separation reads the root tableau, so it needs no structural
    // view -- generic MILPs get root cut rounds too.
    cuts_on_ = opt_.cut_separation && !int_vars_.empty() &&
               !opt_.stop_at_first_incumbent &&
               (knapsack_cuts_on_ || opt_.gomory_cuts);
    // Reliability branching exists to make the pseudocost scores
    // trustworthy early; with pseudocost branching off the probes would
    // feed a store nobody reads.
    reliability_on_ = opt_.reliability_branching &&
                      opt_.pseudocost_branching &&
                      !opt_.stop_at_first_incumbent;
    cut_pool_ = CutPool(CutPoolOptions{opt_.cut_max_age, 4096});
  }

  ~EpochSearch() {
    {
      std::lock_guard lock(pool_mu_);
      pool_shutdown_ = true;
    }
    pool_cv_.notify_all();
    for (std::thread& t : pool_) t.join();
  }

  MilpResult run() {
    for (const auto& seed : opt_.initial_solutions) offer_candidate(seed);
    search();
    result_.seconds = elapsed();

    if (result_.has_solution()) {
      if (external_bound_met_) {
        // Terminated against the caller's lower bound: report that bound
        // (not the incumbent) so the proven gap is stated honestly.
        result_.best_bound =
            std::min(opt_.known_lower_bound, result_.objective);
        result_.status = MilpStatus::kOptimal;
      } else if (search_complete_) {
        result_.best_bound = result_.objective;  // proved within gap
        result_.status = MilpStatus::kOptimal;
      } else {
        result_.best_bound = sound_incomplete_bound();
        result_.status = MilpStatus::kFeasible;
      }
    } else {
      result_.status =
          search_complete_ ? MilpStatus::kInfeasible : MilpStatus::kNoSolution;
      result_.best_bound =
          search_complete_ ? lp::kInf : sound_incomplete_bound();
    }
    return result_;
  }

 private:
  // ------------------------------------------------------------- shared
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Lower bound valid when the search tree was truncated: unexplored
  // subtrees are bounded by their parent relaxations; if the stop happened
  // before any node finished (e.g. first-incumbent mode at a seed), fall
  // back to the root relaxation.
  double sound_incomplete_bound() const {
    double b = open_bound_;
    if (b == lp::kInf) {
      b = result_.root_relaxation != lp::kInf ? result_.root_relaxation
                                              : -lp::kInf;
    }
    return std::min(b, result_.objective);
  }

  bool limits_hit() {
    if (stop_) return true;
    if (result_.nodes >= opt_.max_nodes ||
        result_.lp_iterations >= opt_.max_lp_iterations ||
        elapsed() > opt_.time_limit_sec || opt_.deadline.expired() ||
        opt_.cancel.cancelled()) {
      stop_ = true;
      search_complete_ = false;
    }
    return stop_;
  }

  // Wall-clock budget still available to the search: the per-solve time
  // limit combined with the caller's absolute deadline. Cancellation is
  // treated as an expired budget everywhere this is consulted.
  double remaining_sec() const {
    const double rem = std::min(opt_.time_limit_sec - elapsed(),
                                opt_.deadline.remaining_sec());
    return opt_.cancel.cancelled() ? 0.0 : rem;
  }

  static double prune_threshold_for(double incumbent_obj, double gap) {
    if (incumbent_obj == lp::kInf) return lp::kInf;
    return incumbent_obj - gap * std::max(1.0, std::abs(incumbent_obj)) -
           1e-9;
  }
  double prune_threshold() const {
    return prune_threshold_for(result_.objective, opt_.relative_gap);
  }

  void try_incumbent(const std::vector<double>& x, double objective) {
    if (objective >= result_.objective - 1e-12) return;
    result_.objective = objective;
    result_.x = x;
    if (opt_.stop_at_first_incumbent) {
      stop_ = true;
      search_complete_ = false;
    }
  }

  // Validates and possibly accepts a heuristic/rounded/seeded candidate.
  void offer_candidate(const std::vector<double>& x) {
    if (static_cast<int>(x.size()) != lp_.num_vars()) return;
    for (int j : int_vars_) {
      const double f = x[j] - std::floor(x[j]);
      if (std::min(f, 1.0 - f) > opt_.integrality_tol) return;
    }
    if (lp_.max_violation(x) > 1e-6) return;
    try_incumbent(x, lp_.objective_value(x));
  }

  // True once the incumbent is within the relative gap of the
  // caller-guaranteed external lower bound (if any).
  bool external_bound_met() const {
    if (!result_.has_solution() || opt_.known_lower_bound == -lp::kInf)
      return false;
    return result_.objective - opt_.known_lower_bound <=
           opt_.relative_gap * std::max(1.0, std::abs(result_.objective)) +
               1e-12;
  }

  bool best_bound_pop() const {
    return opt_.node_selection != NodeSelection::kDepthFirst;
  }

  static bool open_after(const OpenNode& a, const OpenNode& b) {
    // Min-heap on (bound, creation sequence): the existing best-bound order
    // with an explicit deterministic tie-break.
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.seq > b.seq;
  }

  void push_open(OpenNode&& node) {
    node.seq = next_seq_++;
    open_.push_back(std::move(node));
    if (best_bound_pop())
      std::push_heap(open_.begin(), open_.end(), open_after);
  }

  OpenNode pop_open() {
    if (best_bound_pop())
      std::pop_heap(open_.begin(), open_.end(), open_after);
    OpenNode n = std::move(open_.back());
    open_.pop_back();
    return n;
  }

  double open_min_bound() const {
    if (open_.empty()) return lp::kInf;
    if (best_bound_pop()) return open_.front().bound;
    double b = lp::kInf;
    for (const OpenNode& n : open_) b = std::min(b, n.bound);
    return b;
  }

  // ------------------------------------------------------------ epochs
  void search() {
    std::vector<OpenNode> slots;
    std::vector<SlotResult> results;
    for (;;) {
      if (external_bound_met()) {
        external_bound_met_ = true;
        return;
      }
      if (limits_hit()) break;
      // Gap termination: once every open subtree is bounded within the
      // relative gap of the incumbent, the incumbent is optimal-within-gap
      // -- no need to grind the remaining nodes. (Only best-bound-ordered
      // modes terminate on the gap; plain DFS keeps the serial behavior.)
      if (best_bound_pop() && result_.has_solution() && root_done_ &&
          open_min_bound() >= prune_threshold())
        return;

      slots.clear();
      if (!root_done_) {
        slots.push_back(OpenNode{});  // the root: empty path, -inf bound
      } else {
        const double thresh = prune_threshold();
        while (static_cast<int>(slots.size()) < epoch_width_ &&
               !open_.empty()) {
          OpenNode n = pop_open();
          if (n.bound >= thresh) continue;  // pruned on pop, not counted
          slots.push_back(std::move(n));
        }
        if (slots.empty()) return;  // tree exhausted: search complete
      }

      shared_base_ = static_cast<int>(arena_.size());
      // Deterministic work-limit projection: split the remaining global
      // node/iteration budget evenly across the epoch's slots (the slot
      // count is worker-count independent), so the committed totals
      // overshoot a limit by at most one LP solve per slot instead of a
      // full dive per slot.
      const auto share = [&](int64_t limit, int64_t used) {
        if (limit == std::numeric_limits<int64_t>::max()) return limit;
        const int64_t remaining = std::max<int64_t>(0, limit - used);
        return std::max<int64_t>(
            1, remaining / static_cast<int64_t>(slots.size()));
      };
      slot_node_allowance_ = share(opt_.max_nodes, result_.nodes);
      slot_iter_allowance_ =
          share(opt_.max_lp_iterations, result_.lp_iterations);
      run_epoch(slots, results);
      const bool had_root = !root_done_;
      commit(results);
      // Root separation rounds: re-solve the root LP against successive
      // waves of cover/clique cuts before the tree search proper starts.
      // Runs on the coordinator at the barrier, so appending rows to the
      // working LP -- which every engine re-syncs on its next restore() --
      // is race-free and deterministically ordered.
      if (had_root) run_root_cut_rounds();
      maybe_run_heuristic(results, had_root);
      // Root reduced-cost fixing, re-armed by every incumbent improvement
      // (and by the cut-strengthened root bound). Runs on the coordinator
      // at the barrier (workers idle), so mutating the working LP's bounds
      // -- which every later restore() re-reads -- is race-free and
      // deterministically ordered.
      maybe_fix_by_reduced_cost();
      // Node-separated cuts offered this epoch: select the best and append
      // them, then age both pool populations (pooled entries that keep
      // losing the selection are evicted; in-LP rows that stay slack at
      // the root point are deleted from the working LP).
      if (cuts_on_ && !had_root) {
        append_cuts(cut_pool_.select(cut_budget()));
        gc_cut_rows();
        cut_pool_.age_tick();
      }
      if (stop_) break;
    }

    // Truncated: account every open subtree so best_bound stays sound.
    for (const OpenNode& n : open_) open_bound_ = std::min(open_bound_, n.bound);
  }

  void commit(std::vector<SlotResult>& results) {
    for (SlotResult& r : results) {
      // Rebase this slot's local arena entries / child paths past the
      // entries earlier slots committed this epoch.
      const int off = static_cast<int>(arena_.size()) - shared_base_;
      for (PathEntry e : r.entries) {
        if (e.parent >= shared_base_) e.parent += off;
        arena_.push_back(e);
      }
      for (OpenNode& c : r.children) {
        if (c.path >= shared_base_) c.path += off;
        push_open(std::move(c));
      }
      for (const PcObservation& o : r.pc_obs) pc_.add(o.dir, o.var, o.unit);
      for (IncumbentCandidate& inc : r.incumbents)
        try_incumbent(inc.x, inc.objective);
      for (Cut& c : r.cuts) cut_pool_.offer(std::move(c));
      result_.nodes += r.nodes;
      result_.lp_iterations += r.lp_iterations;
      result_.strong_branches += r.strong_branches;
      add_stats(result_, r.lp_stats);
      if (r.solved_root) {
        root_done_ = true;
        if (r.root_lp_ok) {
          result_.root_relaxation = r.root_relaxation;
          root_x_ = std::move(r.root_x);
          root_redcost_ = std::move(r.root_redcost);
          root_snap_ = std::move(r.root_snap);
        }
      }
      if (r.dropped) {
        search_complete_ = false;
        open_bound_ = std::min(open_bound_, r.dropped_bound);
      }
    }
  }

  // Adaptive cadence, evaluated once per epoch on the coordinator (the
  // caller-provided heuristic is never invoked concurrently): always after
  // the root epoch, then whenever the committed node count crosses the
  // backoff interval; the epoch's best-bound fractional solution is the
  // rounding target.
  void maybe_run_heuristic(const std::vector<SlotResult>& results,
                           bool had_root) {
    if (!heuristic_ || stop_) return;
    if (!had_root && result_.nodes < next_heur_node_) return;
    const SlotResult* pick = nullptr;
    for (const SlotResult& r : results)
      if (!r.heur_x.empty() && (!pick || r.heur_obj < pick->heur_obj))
        pick = &r;
    if (!pick) return;
    const double before = result_.objective;
    try {
      if (auto cand = heuristic_(pick->heur_x)) offer_candidate(*cand);
    } catch (const std::exception&) {
      // A heuristic that dies (it may run its own LP solves, which can hit
      // injected allocation faults) just contributes no incumbent.
    }
    const int64_t base = std::max(1, opt_.heuristic_interval);
    if (result_.objective < before - 1e-12) {
      heur_interval_ = base;
    } else {
      heur_interval_ = std::min(heur_interval_ * 2, base * 64);
    }
    next_heur_node_ = result_.nodes + heur_interval_;
  }

  // Root reduced-cost fixing. For an integer variable nonbasic at a bound
  // in the root relaxation, LP duality gives: any feasible point with x_j
  // moved at least one integer step off that bound costs >= root + |d_j|.
  // Once an incumbent caps the interesting objective range at the prune
  // threshold, every variable with |d_j| > threshold - root can be fixed
  // at its root bound for the remainder of the search -- no improving
  // solution exists on the other side. The fixings go through the presolve
  // clamp helpers onto the search's working LP copy, so every subsequent
  // snapshot restore() (which re-reads base bounds) inherits them; nodes
  // whose branching path already contradicts a fixing are pruned at slot
  // start by the intersection guard in process_slot.
  void maybe_fix_by_reduced_cost() {
    if (!opt_.root_reduced_cost_fixing || !root_done_ || root_redcost_.empty())
      return;
    if (!result_.has_solution()) return;
    const double cutoff = prune_threshold();
    if (cutoff >= last_fix_cutoff_) return;  // no incumbent progress
    last_fix_cutoff_ = cutoff;
    const double root_obj = result_.root_relaxation;
    const double slack = cutoff - root_obj;
    // Safety margin over the simplex cost perturbation's dual noise.
    const double margin = 1e-6 * std::max(1.0, std::abs(root_obj));
    const double at_tol = opt_.integrality_tol;
    for (int j : int_vars_) {
      if (fix_done_[j]) continue;
      if (lp_.ub[j] - lp_.lb[j] < 0.5) continue;  // already fixed / presolved
      const double d = root_redcost_[j];
      const int one[] = {j};
      if (root_x_[j] <= lp_.lb[j] + at_tol && d > slack + margin) {
        (void)clamp_upper_bounds(lp_, one, lp_.lb[j]);
      } else if (root_x_[j] >= lp_.ub[j] - at_tol && -d > slack + margin) {
        (void)raise_lower_bounds(lp_, one, lp_.ub[j]);
      } else {
        continue;
      }
      fix_done_[j] = 1;
      global_fix_.push_back({j, lp_.lb[j], lp_.ub[j]});
      ++result_.root_fixings;
    }
  }

  // ------------------------------------------------------------- cuts
  int cut_budget() const {
    return static_cast<int>(std::min<int64_t>(
        opt_.max_cuts_per_round,
        std::max<int64_t>(0, opt_.max_cuts_total - result_.cuts_added)));
  }

  SeparationOptions separation_options() const {
    SeparationOptions sep;
    sep.max_cuts = opt_.max_cuts_per_round;
    return sep;
  }

  // Appends selected cuts as <= rows of the working LP. Every engine
  // adopts the rows via DualSimplex::sync_rows() on its next restore() or
  // solve(); parent snapshots captured before the append restore cleanly
  // (the new rows enter with their slack basic). The new rows' stable ids
  // are bound back into the pool so in-LP aging can later delete them.
  void append_cuts(const std::vector<Cut>& chosen) {
    if (chosen.empty()) return;
    std::vector<int64_t> ids;
    ids.reserve(chosen.size());
    for (const Cut& c : chosen) {
      lp_.add_le(c.terms, c.rhs);
      ids.push_back(lp_.row_ids.back());
      ++result_.cuts_added;
      if (c.source == Cut::kGomory) ++result_.gomory_cuts;
    }
    cut_pool_.bind_rows(chosen, ids);
  }

  // In-LP cut aging at the barrier: rows whose cut has been slack at the
  // (cut-strengthened) root point for too many consecutive barriers are
  // physically deleted from the working LP. Engines are rebuilt lazily --
  // sync_rows only handles appends -- and every snapshot captured before
  // the deletion (parent nodes, the root basis) remaps by row id on its
  // next restore. Coordinator-only, so race-free and deterministic.
  void gc_cut_rows() {
    if (root_x_.empty()) return;
    const std::vector<int64_t> dead = cut_pool_.age_in_lp([&](const Cut& c) {
      double act = 0.0;
      for (const auto& [var, coef] : c.terms) act += coef * root_x_[var];
      return act < c.rhs - 1e-7;
    });
    if (dead.empty()) return;
    std::vector<int> rows;
    rows.reserve(dead.size());
    for (int r = 0; r < lp_.num_rows(); ++r)
      if (std::find(dead.begin(), dead.end(), lp_.row_ids[r]) != dead.end())
        rows.push_back(r);
    lp_.remove_rows(rows);
    result_.cuts_removed += static_cast<int64_t>(rows.size());
    for (Worker& w : workers_) w.engine.reset();
  }

  // Root separation: alternate (separate on the root LP point, append the
  // best cuts, re-solve the root from its captured basis) until no
  // violated cut remains, the round budget runs out, or the LP declines to
  // re-solve to optimality. The cut-strengthened root bound then lifts the
  // bounds of the already-open root children and re-arms reduced-cost
  // fixing. Coordinator-only, between epochs: deterministic and race-free.
  void run_root_cut_rounds() {
    if (!cuts_on_ || !root_done_ || root_x_.empty() || !root_snap_) return;
    Worker& w = workers_[0];
    try {
      if (!w.engine)
        w.engine = std::make_unique<lp::DualSimplex>(lp_, opt_.simplex);
      lp::DualSimplex& eng = *w.engine;
      const lp::LpEngineStats stats0 = eng.stats();
      // The Gomory separator reads the engine's tableau, so the engine
      // must sit at the root optimum: land it there from the root snapshot
      // (the snapshot IS the optimal basis -- this costs ~0 pivots).
      bool at_optimum = false;
      if (opt_.gomory_cuts) {
        eng.restore(*root_snap_);
        eng.set_objective_limit(lp::kInf);
        eng.set_time_limit(std::max(0.01, remaining_sec()));
        const lp::LpResult rel = eng.solve();
        result_.lp_iterations += rel.iterations;
        at_optimum = rel.status == lp::LpStatus::kOptimal;
      }
      // Gomory separation must prove itself: a round whose bound gain is
      // negligible before Gomory has ever moved the root bound disables
      // FURTHER Gomory separation -- on some instances the tableau only
      // yields violated-but-shallow cuts that bloat every node LP and
      // crowd the knapsack separators out of the round budget. Once a
      // round lands a real gain, separation runs until no violated cut
      // remains: late rounds often finish integralizing the root vertex
      // even while the bound plateaus, which is what collapses the tree.
      bool gomory_live = opt_.gomory_cuts;
      bool gomory_gained = false;
      for (int round = 0; round < opt_.max_root_cut_rounds; ++round) {
        const int budget = cut_budget();
        if (budget <= 0) break;
        if (remaining_sec() <= 0.0) break;
        // The root bound already proves the incumbent within the
        // termination gap: the search will end without branching, so any
        // further separation round is pure waste (the root epoch's dives
        // commit incumbents before the cut rounds run).
        if (result_.root_relaxation >= prune_threshold()) break;
        std::vector<Cut> cuts;
        if (knapsack_cuts_on_)
          separate_knapsack_cuts(*opt_.cut_structure, lp_, root_x_,
                                 separation_options(), &cuts);
        if (gomory_live && at_optimum)
          separate_gomory_cuts(lp_, eng, root_x_, separation_options(),
                               &cuts);
        for (Cut& c : cuts) cut_pool_.offer(std::move(c));
        const std::vector<Cut> chosen = cut_pool_.select(budget);
        if (chosen.empty()) break;
        append_cuts(chosen);
        eng.restore(*root_snap_);
        eng.set_objective_limit(lp::kInf);  // the root is never pruned
        eng.set_time_limit(std::max(0.01, remaining_sec()));
        const lp::LpResult rel = eng.solve();
        result_.lp_iterations += rel.iterations;
        at_optimum = rel.status == lp::LpStatus::kOptimal;
        if (!at_optimum) break;  // keep previous root
        const double gain = rel.objective - result_.root_relaxation;
        if (gain > std::max(1e-9, 1e-6 * std::abs(rel.objective)))
          gomory_gained = true;
        else if (!gomory_gained)
          gomory_live = false;  // never helped here: tailing off
        result_.root_relaxation = rel.objective;
        root_x_ = rel.x;
        root_redcost_ = eng.structural_reduced_costs();
        root_snap_ = std::make_shared<const lp::BasisSnapshot>(eng.snapshot());
      }
      add_stats(result_, stats_since(eng.stats(), stats0));
    } catch (const std::exception&) {
      // Recovery ladder: a cut round that dies (e.g. an injected cut-row
      // append failure) abandons further rounds and keeps the previous
      // root. The engine is rebuilt from the working LP on its next use,
      // so a partially-synced matrix cannot leak into later nodes.
      w.engine.reset();
    }
    cut_pool_.age_tick();
    // The cut rounds tightened the root bound (and refreshed the root
    // reduced costs), so the fixing slack shrank even with the incumbent
    // unchanged: re-arm the barrier's reduced-cost fixing pass.
    last_fix_cutoff_ = lp::kInf;
    // The strengthened root relaxation is a valid lower bound for every
    // subtree; lift the open (root-child) nodes onto it and hand them the
    // post-cut root basis -- restore() reapplies their branching bounds on
    // top, and the tighter bound prunes earlier.
    bool changed = false;
    for (OpenNode& n : open_) {
      if (n.bound < result_.root_relaxation) {
        n.bound = result_.root_relaxation;
        changed = true;
      }
      n.warm = root_snap_;
    }
    if (changed && best_bound_pop())
      std::make_heap(open_.begin(), open_.end(), open_after);
  }

  // ------------------------------------------------------------- slots
  struct Worker {
    std::unique_ptr<lp::DualSimplex> engine;
    PseudocostStore pc;  // epoch-start copy + this slot's own observations
    // Strong-branch scratch: per-variable "this side is proven prunable"
    // flags for the current node (stamped by sb_touched to avoid a
    // per-node clear).
    std::vector<uint8_t> sb_prune[2];
    std::vector<int> sb_touched;
    // Measured LP throughput on this worker (cumulative over its node
    // solves), used to clamp a node's pivot budget from the remaining
    // wall-clock deadline. Purely advisory: the clamp only binds when the
    // remaining budget is tight, so deadline-free runs are untouched.
    double solve_secs = 0.0;
    int64_t solve_iters = 0;
  };

  // Fractional integer variables of the best branching-priority tier at x
  // -- the ONE candidate rule shared by pick_branch_var and the
  // reliability probes, so probing and branching can never disagree on
  // the tier. Order follows int_vars_ (ascending), which downstream
  // strict-greater comparisons turn into a deterministic first-wins
  // tie-break.
  std::vector<int> branch_candidates(const std::vector<double>& x) const {
    std::vector<int> cands;
    int best_prio = std::numeric_limits<int>::min();
    for (int j : int_vars_) {
      const double f = x[j] - std::floor(x[j]);
      if (std::min(f, 1.0 - f) <= opt_.integrality_tol) continue;
      const int prio =
          opt_.branch_priority.empty() ? 0 : opt_.branch_priority[j];
      if (prio > best_prio) {
        best_prio = prio;
        cands.clear();
      }
      if (prio == best_prio) cands.push_back(j);
    }
    return cands;
  }

  int pick_branch_var(const PseudocostStore& pc, const std::vector<double>& x,
                      double* est_down_out, double* est_up_out) const {
    int best = -1;
    double best_score = -1.0;
    double best_down = 0.0, best_up = 0.0;
    for (int j : branch_candidates(x)) {
      const double f = x[j] - std::floor(x[j]);
      double score, est_down = f, est_up = 1.0 - f;
      if (opt_.pseudocost_branching) {
        est_down = pc.rate(0, j) * f;
        est_up = pc.rate(1, j) * (1.0 - f);
        score = std::max(est_down, 1e-9) * std::max(est_up, 1e-9);
      } else {
        score = std::min(f, 1.0 - f);  // closest to 0.5 is largest
      }
      if (score > best_score) {
        best = j;
        best_score = score;
        best_down = est_down;
        best_up = est_up;
      }
    }
    if (est_down_out) *est_down_out = best_down;
    if (est_up_out) *est_up_out = best_up;
    return best;
  }

  bool sb_pruned(const Worker& w, int dir, int var) const {
    return !w.sb_prune[dir].empty() && w.sb_prune[dir][var] != 0;
  }

  // Clears the strong-branch prune flags left by the PREVIOUS node. Must
  // run for every node, whether or not it probes: the scratch lives on the
  // worker, and a stale flag leaking into a later node would make the tree
  // depend on which worker ran which slot.
  void sb_reset(Worker& w) const {
    for (int v : w.sb_touched) {
      w.sb_prune[0][v] = 0;
      w.sb_prune[1][v] = 0;
    }
    w.sb_touched.clear();
  }

  // Reliability branching: before the pseudocost scores pick a branching
  // variable, strong-branch the unreliable candidates -- those with fewer
  // than opt_.reliability observations in some direction -- with probe
  // solves on this worker's own engine. Each probe is capped by a
  // deterministic pivot limit and by the incumbent prune threshold as an
  // objective limit (the probe stops the moment the dual bound proves the
  // child prunable). Observed degradations feed the slot-local pseudocost
  // copy immediately (so this node's pick already benefits) and ride
  // out.pc_obs into the committed store; sides proven prunable are flagged
  // so the branching step skips them. Pure slot-local work: bit-identical
  // for any worker count.
  void strong_branch_probes(Worker& w, lp::DualSimplex& eng,
                            const lp::LpResult& rel, double best_obj,
                            SlotResult& out) {
    // Candidates: the same best-priority-tier fractional variables
    // pick_branch_var will choose from (one shared rule), restricted to
    // the unreliable ones, best pseudocost scores first.
    struct Cand {
      int var;
      double score;
    };
    std::vector<Cand> cands;
    for (int j : branch_candidates(rel.x)) {
      if (std::min(w.pc.cnt[0][j], w.pc.cnt[1][j]) >=
          static_cast<int64_t>(opt_.reliability))
        continue;
      const double f = rel.x[j] - std::floor(rel.x[j]);
      const double score = std::max(w.pc.rate(0, j) * f, 1e-9) *
                           std::max(w.pc.rate(1, j) * (1.0 - f), 1e-9);
      cands.push_back({j, score});
    }
    if (cands.empty()) return;
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.var < b.var;
    });
    if (static_cast<int>(cands.size()) > opt_.strong_branch_candidates)
      cands.resize(static_cast<size_t>(opt_.strong_branch_candidates));

    const double threshold = prune_threshold_for(best_obj, opt_.relative_gap);
    const int saved_iters = eng.iteration_limit();
    eng.set_iteration_limit(std::max(1, opt_.strong_branch_iterations));
    for (const Cand& c : cands) {
      const int j = c.var;
      const double frac = rel.x[j];
      const double floor_val = std::floor(frac);
      const double f = frac - floor_val;
      const double lo = eng.var_lower(j), hi = eng.var_upper(j);
      for (int dir = 0; dir < 2; ++dir) {
        if (w.pc.cnt[dir][j] >= static_cast<int64_t>(opt_.reliability))
          continue;  // this direction is already reliable
        const bool side_ok = dir == 0 ? floor_val >= lo - 1e-12
                                      : floor_val + 1.0 <= hi + 1e-12;
        if (!side_ok) continue;
        if (dir == 0)
          eng.set_var_bounds(j, lo, floor_val);
        else
          eng.set_var_bounds(j, floor_val + 1.0, hi);
        eng.set_objective_limit(threshold);
        const lp::LpResult probe = eng.solve();
        eng.set_var_bounds(j, lo, hi);
        out.lp_iterations += probe.iterations;
        ++out.strong_branches;

        const double dist = dir == 0 ? f : 1.0 - f;
        double child_bound = -lp::kInf;
        bool prunable = false;
        switch (probe.status) {
          case lp::LpStatus::kOptimal:
            child_bound = probe.objective;
            prunable = child_bound >= threshold;
            break;
          case lp::LpStatus::kObjectiveLimit:
            child_bound = probe.dual_bound;
            prunable = true;
            break;
          case lp::LpStatus::kInfeasible:
            prunable = true;
            break;
          case lp::LpStatus::kIterationLimit:
            // Truncated probe: the dual bound still soundly proves a
            // prune, but it is NOT recorded as a pseudocost sample -- a
            // barely-moved dual bound would register a near-zero
            // degradation and poison the scores (observed: worse trees
            // than no probing at all). The variable stays unreliable; the
            // global probe budget bounds the re-probing.
            prunable = probe.dual_bound >= threshold;
            break;
          default:
            break;
        }
        if (child_bound != -lp::kInf) {
          const double unit = std::max(0.0, child_bound - rel.objective) /
                              std::max(dist, 1e-6);
          w.pc.add(dir, j, unit);
          out.pc_obs.push_back({dir, j, unit});
        }
        if (prunable) {
          w.sb_prune[dir][j] = 1;
          w.sb_touched.push_back(j);
        }
      }
    }
    eng.set_iteration_limit(saved_iters);
  }

  // Processes one popped node on worker `wid`: restore the parent basis,
  // reapply the node's root path, then dive depth-first. Reads only frozen
  // shared state (arena_ up to shared_base_, pc_, the epoch-start
  // result_.{objective,nodes,lp_iterations}) -- everything it produces goes
  // through the SlotResult for ordered commit.
  SlotResult process_slot(int wid, const OpenNode& start) {
    Worker& w = workers_[static_cast<size_t>(wid)];
    if (!w.engine)
      w.engine = std::make_unique<lp::DualSimplex>(lp_, opt_.simplex);
    lp::DualSimplex& eng = *w.engine;
    SlotResult out;
    const lp::LpEngineStats eng_stats0 = eng.stats();
    // Under branch & cut the root is solved alone (no dive): the root
    // separation rounds need the pristine root basis and point, and the
    // children they reopen inherit the cut-strengthened bound.
    const int64_t dive_cap =
        (cuts_on_ && start.path < 0) ? 1 : max_dive_nodes_;

    eng.restore(start.warm ? *start.warm : lp::BasisSnapshot{});
    {
      // Reapply the node's bound changes root -> leaf. start.path always
      // points into the committed arena (children created this epoch are
      // not poppable until the next one).
      std::vector<int> chain;
      for (int r = start.path; r >= 0; r = arena_[r].parent)
        chain.push_back(r);
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        const BoundChange& c = arena_[*it].change;
        eng.set_var_bounds(c.var, c.lo, c.hi);
      }
    }
    // Reduced-cost fixings committed after this node's snapshot/path were
    // recorded: restore() already re-read them from the working LP's base
    // bounds, so only variables the path (or snapshot) overrode need the
    // intersection. An empty intersection means the branching path lives
    // entirely on the unimproving side of a fixing -- prune the node.
    for (const BoundChange& f : global_fix_) {
      const double ilo = std::max(eng.var_lower(f.var), f.lo);
      const double ihi = std::min(eng.var_upper(f.var), f.hi);
      if (ilo > ihi) {
        out.lp_stats = stats_since(eng.stats(), eng_stats0);
        return out;
      }
      if (ilo != eng.var_lower(f.var) || ihi != eng.var_upper(f.var))
        eng.set_var_bounds(f.var, ilo, ihi);
    }

    // Epoch-start pseudocosts; this slot's own observations layer on top.
    // The copy must be per SLOT, not per worker-epoch: two slots of one
    // epoch may land on the same worker under one thread count and on
    // different workers under another, so a slot must never see a sibling
    // slot's local observations. The vectors keep their capacity across
    // slots, so this is a memcpy of a few tens of KB -- noise next to one
    // node's LP re-solve.
    w.pc = pc_;
    double best_obj = result_.objective;  // epoch-start incumbent (or +inf)
    const int64_t nodes_base = result_.nodes;
    const int64_t iters_base = result_.lp_iterations;
    const int64_t sb_base = result_.strong_branches;

    struct Cursor {
      int path;
      double bound;
      int branch_var;
      bool branch_up;
      double branch_frac;
      std::shared_ptr<const lp::BasisSnapshot> warm;
    };
    Cursor cur{start.path,      start.bound,      start.branch_var,
               start.branch_up, start.branch_frac, start.warm};

    auto requeue_cursor = [&]() {
      // The cursor's bounds are already applied to the engine; capture the
      // (parent-basis, cursor-bounds) state so any worker can resume it.
      OpenNode n;
      n.path = cur.path;
      n.bound = cur.bound;
      n.branch_var = cur.branch_var;
      n.branch_up = cur.branch_up;
      n.branch_frac = cur.branch_frac;
      n.warm = cur.warm ? cur.warm
                        : std::make_shared<lp::BasisSnapshot>(eng.snapshot());
      out.children.push_back(std::move(n));
    };

    for (;;) {
      // Work limits, projected from epoch-start committed totals plus this
      // slot's own work (never other in-flight slots) and capped by this
      // slot's even share of the remaining budget -- both deterministic
      // for any worker count.
      const double rem = remaining_sec();
      if (out.nodes >= slot_node_allowance_ ||
          out.lp_iterations >= slot_iter_allowance_ ||
          nodes_base + out.nodes >= opt_.max_nodes ||
          iters_base + out.lp_iterations >= opt_.max_lp_iterations ||
          rem <= 0.0) {
        requeue_cursor();
        break;
      }
      // Never let one node LP outlive the solver's remaining budget. The
      // floor only guards against a non-positive limit -- it must not grant
      // time the global budget no longer has.
      eng.set_time_limit(std::max(0.01, rem));
      // Deadline-overshoot guard: clamp the node's pivot budget from the
      // remaining wall clock using this worker's measured pivot rate. The
      // clamp only binds when the projected full-budget solve would not
      // fit in the remaining time (a 2x margin keeps the estimate
      // conservative), so deadline-free runs keep the configured limit and
      // their exact node/iteration counts; under deadline pressure a long
      // node LP is cut off close to the budget instead of overshooting it
      // by a whole refactorize-to-refactorize stretch.
      {
        int cap = opt_.simplex.max_iterations;
        if (w.solve_secs > 1e-3 && w.solve_iters > 256) {
          const double rate =
              static_cast<double>(w.solve_iters) / w.solve_secs;
          const double fit = rate * rem * 2.0;
          if (fit < static_cast<double>(cap))
            cap = std::max(256, static_cast<int>(fit));
        }
        eng.set_iteration_limit(cap);
      }
      // Dual objective cutoff: a node whose relaxation bound crosses the
      // incumbent prune threshold is discarded anyway, so let the dual
      // simplex stop the moment it proves that instead of polishing to
      // optimality. best_obj is slot-local deterministic state. The root
      // is exempt: its relaxation value and reduced costs seed the bound
      // report and the reduced-cost fixing.
      eng.set_objective_limit(
          cur.path < 0 ? lp::kInf
                       : prune_threshold_for(best_obj, opt_.relative_gap));
      ++out.nodes;
      const Clock::time_point node_t0 = Clock::now();
      const lp::LpResult rel = eng.solve();
      w.solve_secs +=
          std::chrono::duration<double>(Clock::now() - node_t0).count();
      w.solve_iters += rel.iterations;
      out.lp_iterations += rel.iterations;
      const bool is_root = cur.path < 0;
      if (is_root) {
        out.solved_root = true;
        if (rel.status == lp::LpStatus::kOptimal) {
          out.root_lp_ok = true;
          out.root_relaxation = rel.objective;
          out.root_x = rel.x;
          out.root_redcost = eng.structural_reduced_costs();
          if (cuts_on_)
            out.root_snap =
                std::make_shared<const lp::BasisSnapshot>(eng.snapshot());
        }
      }
      if (rel.status == lp::LpStatus::kInfeasible) break;
      if (rel.status == lp::LpStatus::kObjectiveLimit) break;  // pruned
      if (rel.status != lp::LpStatus::kOptimal) {
        // Numerical trouble or LP truncation: the subtree is dropped, but
        // the truncated solve's dual bound (when it beats the parent
        // relaxation) still caps how much the global bound gives up -- and
        // when it already clears the prune threshold the subtree is simply
        // pruned, keeping the search complete.
        const double nb = std::max(cur.bound, rel.dual_bound);
        if (nb < prune_threshold_for(best_obj, opt_.relative_gap)) {
          out.dropped = true;
          out.dropped_bound = std::min(out.dropped_bound, nb);
        }
        break;
      }

      if (cur.branch_var >= 0 && cur.bound != -lp::kInf) {
        const int d = cur.branch_up ? 1 : 0;
        const double dist =
            cur.branch_up ? 1.0 - cur.branch_frac : cur.branch_frac;
        const double unit =
            std::max(0.0, rel.objective - cur.bound) / std::max(dist, 1e-6);
        w.pc.add(d, cur.branch_var, unit);
        out.pc_obs.push_back({d, cur.branch_var, unit});
      }
      if (rel.objective >=
          prune_threshold_for(best_obj, opt_.relative_gap))
        break;

      // Reliability branching: strong-branch the unreliable candidates so
      // the pseudocost pick below works from observed degradations instead
      // of guesses. Probes may also prove one (or both) sides prunable.
      // The probe budget is projected from epoch-start committed totals
      // plus this slot's own probes -- deterministic for any worker count.
      if (reliability_on_) {
        if (w.sb_prune[0].empty()) {
          w.sb_prune[0].assign(static_cast<size_t>(lp_.num_vars()), 0);
          w.sb_prune[1].assign(static_cast<size_t>(lp_.num_vars()), 0);
        }
        sb_reset(w);
        if (sb_base + out.strong_branches < opt_.strong_branch_budget)
          strong_branch_probes(w, eng, rel, best_obj, out);
      }

      double est_down = 0.0, est_up = 0.0;
      const int bv = pick_branch_var(w.pc, rel.x, &est_down, &est_up);
      if (bv < 0) {
        // Integral: candidate incumbent (accepted in commit order).
        if (rel.objective < best_obj - 1e-12) {
          best_obj = rel.objective;
          out.incumbents.push_back({rel.objective, rel.x});
          if (opt_.stop_at_first_incumbent) break;
        }
        break;
      }
      if (out.heur_x.empty() && heuristic_) {
        out.heur_x = rel.x;
        out.heur_obj = rel.objective;
      }

      // Node-local separation every cut_node_interval dive depths: cuts
      // found at this node's fractional point are globally valid (they
      // come from the original knapsack structure, never from local branch
      // bounds), so they ride the SlotResult to the coordinator, which
      // pools and appends them at the barrier in slot order.
      if (knapsack_cuts_on_ && !opt_.stop_at_first_incumbent &&
          opt_.cut_node_interval > 0 && !is_root &&
          out.nodes % opt_.cut_node_interval == 0 &&
          static_cast<int>(out.cuts.size()) < opt_.max_cuts_per_round) {
        SeparationOptions sep = separation_options();
        sep.max_cuts =
            opt_.max_cuts_per_round - static_cast<int>(out.cuts.size());
        separate_knapsack_cuts(*opt_.cut_structure, lp_, rel.x, sep,
                               &out.cuts);
      }

      // Branch. Dive into the child with the smaller estimated objective
      // degradation; the sibling joins the open queue with a snapshot of
      // this (parent) basis so any worker can pick it up later. Sides a
      // strong-branch probe proved prunable are skipped outright.
      const double frac = rel.x[bv];
      const double floor_val = std::floor(frac);
      const double cur_lo = eng.var_lower(bv);
      const double cur_hi = eng.var_upper(bv);
      const double f = frac - floor_val;
      const bool down_first =
          opt_.pseudocost_branching ? est_down <= est_up : f <= 0.5;
      const bool down_ok =
          floor_val >= cur_lo - 1e-12 && !sb_pruned(w, 0, bv);
      const bool up_ok =
          floor_val + 1.0 <= cur_hi + 1e-12 && !sb_pruned(w, 1, bv);

      const bool preferred_up = !down_first;
      std::optional<bool> dive_dir, open_dir;
      if (preferred_up ? up_ok : down_ok) dive_dir = preferred_up;
      if (preferred_up ? down_ok : up_ok) {
        if (dive_dir)
          open_dir = !preferred_up;
        else
          dive_dir = !preferred_up;
      }
      if (!dive_dir) break;  // the fractional value has no feasible side

      auto add_entry = [&](bool up) {
        out.entries.push_back(
            {cur.path, up ? BoundChange{bv, floor_val + 1.0, cur_hi}
                          : BoundChange{bv, cur_lo, floor_val}});
        return shared_base_ + static_cast<int>(out.entries.size()) - 1;
      };
      std::shared_ptr<const lp::BasisSnapshot> parent_snap;
      auto snapshot_parent = [&]() {
        if (!parent_snap)
          parent_snap =
              std::make_shared<const lp::BasisSnapshot>(eng.snapshot());
        return parent_snap;
      };
      auto make_open_child = [&](bool up) {
        OpenNode c;
        c.path = add_entry(up);
        c.bound = rel.objective;
        c.branch_var = bv;
        c.branch_up = up;
        c.branch_frac = f;
        c.warm = snapshot_parent();
        return c;
      };

      const bool can_dive = opt_.node_selection != NodeSelection::kBestBound &&
                            out.nodes < dive_cap;
      if (!can_dive) {
        if (open_dir) out.children.push_back(make_open_child(*open_dir));
        out.children.push_back(make_open_child(*dive_dir));
        break;
      }
      if (open_dir) out.children.push_back(make_open_child(*open_dir));
      const int child_path = add_entry(*dive_dir);
      const BoundChange& c = out.entries.back().change;
      eng.set_var_bounds(c.var, c.lo, c.hi);
      cur = Cursor{child_path, rel.objective, bv, *dive_dir, f, nullptr};
    }
    out.lp_stats = stats_since(eng.stats(), eng_stats0);
    return out;
  }

  // Fault boundary around one slot. A slot that dies -- engine
  // construction failing on an injected allocation fault, a cut-row sync
  // throwing, a genuine bad_alloc -- becomes a prunable node bounded by
  // its parent relaxation, committed in slot order like any other result
  // (the last rung of the recovery ladder: refactorize -> slack-basis
  // reset -> per-node abandon). The worker's engine is discarded so the
  // next slot rebuilds it from the working LP instead of reusing
  // half-mutated state.
  SlotResult guarded_slot(int wid, const OpenNode& start) {
    if (robust::fault(robust::FaultPoint::kWorkerStall))
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    try {
      return process_slot(wid, start);
    } catch (const std::exception&) {
      workers_[static_cast<size_t>(wid)].engine.reset();
      SlotResult out;
      out.nodes = 1;  // the failed node counts toward the work limits
      if (start.path < 0) out.solved_root = true;  // root died: no LP info
      out.dropped = true;
      out.dropped_bound = start.bound;
      return out;
    }
  }

  // ---------------------------------------------------------- dispatch
  // Epoch barrier: slots are claimed from a shared index under the pool
  // mutex (dynamic load balance is safe because a slot's result does not
  // depend on which engine runs it), results land at the slot's index, and
  // the coordinator both participates (worker id 0) and waits for the
  // countdown to reach zero before committing.
  void run_epoch(const std::vector<OpenNode>& slots,
                 std::vector<SlotResult>& results) {
    results.clear();
    results.resize(slots.size());
    const int want =
        std::min<int>(num_workers_, static_cast<int>(slots.size()));
    if (want <= 1) {
      for (size_t i = 0; i < slots.size(); ++i)
        results[i] = guarded_slot(0, slots[i]);
      return;
    }
    ensure_pool(want - 1);
    {
      std::lock_guard lock(pool_mu_);
      epoch_slots_ = &slots;
      epoch_results_ = &results;
      epoch_slot_count_ = slots.size();
      epoch_next_ = 0;
      epoch_pending_ = static_cast<int>(slots.size());
      ++epoch_id_;
    }
    pool_cv_.notify_all();
    for (;;) {
      size_t i;
      {
        std::lock_guard lock(pool_mu_);
        if (epoch_next_ >= slots.size()) break;
        i = epoch_next_++;
      }
      results[i] = guarded_slot(0, slots[i]);
      std::lock_guard lock(pool_mu_);
      if (--epoch_pending_ == 0) pool_done_cv_.notify_all();
    }
    std::unique_lock lock(pool_mu_);
    pool_done_cv_.wait(lock, [this] { return epoch_pending_ == 0; });
  }

  void ensure_pool(int threads) {
    while (static_cast<int>(pool_.size()) < threads) {
      const int wid = static_cast<int>(pool_.size()) + 1;  // 0 = coordinator
      pool_.emplace_back([this, wid] { pool_loop(wid); });
    }
  }

  void pool_loop(int wid) {
    uint64_t seen = 0;
    for (;;) {
      std::unique_lock lock(pool_mu_);
      pool_cv_.wait(lock,
                    [&] { return pool_shutdown_ || epoch_id_ > seen; });
      if (pool_shutdown_) return;
      seen = epoch_id_;
      for (;;) {
        if (epoch_next_ >= epoch_slot_count_) break;
        const size_t i = epoch_next_++;
        lock.unlock();
        (*epoch_results_)[i] = guarded_slot(wid, (*epoch_slots_)[i]);
        lock.lock();
        if (--epoch_pending_ == 0) pool_done_cv_.notify_all();
      }
    }
  }

  // ------------------------------------------------------------ members
  // Working copy of the problem: root reduced-cost fixings clamp its
  // bounds mid-search (at epoch barriers only), and every engine restore()
  // re-reads them as the base bound state.
  lp::LinearProgram lp_;
  MilpOptions opt_;
  const IncumbentHeuristic& heuristic_;
  Clock::time_point start_;
  int epoch_width_ = 4;
  int num_workers_ = 1;
  int64_t max_dive_nodes_ = kMaxDiveNodes;
  std::vector<int> int_vars_;

  // Committed shared state: frozen during an epoch's solve phase, mutated
  // only by the coordinator at the barrier.
  std::vector<PathEntry> arena_;
  int shared_base_ = 0;  // arena size at the current epoch's start
  // Per-slot even shares of the remaining node/iteration budget for the
  // current epoch (set by the coordinator before dispatch).
  int64_t slot_node_allowance_ = std::numeric_limits<int64_t>::max();
  int64_t slot_iter_allowance_ = std::numeric_limits<int64_t>::max();
  std::vector<OpenNode> open_;
  int64_t next_seq_ = 0;
  PseudocostStore pc_;
  MilpResult result_;
  // Root-LP data driving reduced-cost fixing, plus the fixing ledger.
  std::vector<double> root_x_, root_redcost_;
  // Branch & cut state: pool driven by the coordinator at barriers only;
  // root_snap_ is the latest (cut-tightened) root basis.
  bool cuts_on_ = false;
  bool knapsack_cuts_on_ = false;
  bool reliability_on_ = false;
  CutPool cut_pool_;
  std::shared_ptr<const lp::BasisSnapshot> root_snap_;
  std::vector<uint8_t> fix_done_;
  std::vector<BoundChange> global_fix_;  // frozen during epochs
  double last_fix_cutoff_ = lp::kInf;
  bool root_done_ = false;
  bool search_complete_ = true;
  bool external_bound_met_ = false;
  bool stop_ = false;
  double open_bound_ = lp::kInf;
  int64_t heur_interval_;
  int64_t next_heur_node_ = 0;

  std::vector<Worker> workers_;

  // Epoch dispatch (all guarded by pool_mu_ except the per-index result
  // writes, which are ordered by the mutex acquire/release pairs).
  std::mutex pool_mu_;
  std::condition_variable pool_cv_, pool_done_cv_;
  std::vector<std::thread> pool_;
  const std::vector<OpenNode>* epoch_slots_ = nullptr;
  std::vector<SlotResult>* epoch_results_ = nullptr;
  size_t epoch_slot_count_ = 0;  // workers test this, never slots->size()
  size_t epoch_next_ = 0;
  int epoch_pending_ = 0;
  uint64_t epoch_id_ = 0;
  bool pool_shutdown_ = false;
};

}  // namespace

int resolve_tree_threads(const MilpOptions& options) {
  int n = options.num_threads;
  if (n <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::clamp(n, 1, std::max(1, options.epoch_width));
}

MilpResult branch_and_bound(const lp::LinearProgram& lp,
                            const MilpOptions& options,
                            const IncumbentHeuristic& heuristic) {
  EpochSearch search(lp, options, heuristic);
  return search.run();
}

}  // namespace checkmate::milp
