// Deterministic parallel branch & bound: epoch-lockstep tree search.
//
// The search advances in epochs. Every epoch the shared node queue
// deterministically pops up to MilpOptions::epoch_width nodes (best-bound
// order with a creation-sequence tie-break; LIFO under kDepthFirst), the
// epoch's slots are solved concurrently by worker threads -- each worker
// owns a DualSimplex engine and rebuilds a slot's state from the parent's
// BasisSnapshot plus the node's bound-change path -- and the results
// (children, incumbents, pseudocost observations, dropped-subtree bounds)
// are committed in slot order at the epoch barrier.
//
// Determinism contract: a slot's work is a pure function of the popped node
// and the epoch-start committed state (incumbent, pseudocosts, node and
// iteration totals). Workers never read each other's in-flight results, an
// engine's post-restore trajectory is independent of its prior history
// (lp/simplex.h), and commits happen in slot order on the coordinator --
// so the explored tree, node counts, incumbents, and the deterministic
// work-limit semantics (max_nodes / max_lp_iterations) are bit-identical
// for ANY worker count. num_threads only divides an epoch's slots among
// engines; epoch_width (fixed, default 4) is what defines the tree.
//
// Inside a slot the worker dives depth-first from the popped node (capped
// at kMaxDiveNodes per slot so epochs stay balanced), which preserves the
// serial search's incumbent-finding behavior and keeps the dual-simplex
// warm start hot: a dive step is a single bound change on the live engine,
// and only the dive's entry point pays a snapshot restore + refactorize.
#pragma once

#include "lp/lp_problem.h"
#include "milp/milp.h"

namespace checkmate::milp {

// Resolves MilpOptions::num_threads (0 = auto) against the hardware and the
// epoch width. Always >= 1.
int resolve_tree_threads(const MilpOptions& options);

// Runs the epoch-lockstep search on `lp` directly (no presolve wrapping --
// solve_milp in milp.cpp owns that).
MilpResult branch_and_bound(const lp::LinearProgram& lp,
                            const MilpOptions& options,
                            const IncumbentHeuristic& heuristic);

}  // namespace checkmate::milp
