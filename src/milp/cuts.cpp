#include "milp/cuts.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "lp/simplex.h"

namespace checkmate::milp {

namespace {

constexpr double kTol = 1e-7;

// An unfixed knapsack item at the separating LP point.
struct ActiveItem {
  int var;
  double weight;
  double x;
};

// A term of the inequality under construction: coefficient `a` (integer,
// kept as int for the lifting DP) on binary `var` of knapsack weight
// `weight`.
struct LiftTerm {
  int var;
  double weight;
  int a;
  double x;
};

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

// ------------------------------------------------------------ cover cuts
//
// Greedy separation + minimalization + exact sequential up-lifting. The
// lifting subproblem max{ sum a_i z_i : sum w_i z_i <= b } over the terms
// already in the inequality is solved exactly by a min-weight-per-profit
// DP (profits are small integers), so every emitted coefficient is the
// tightest valid one in the chosen (deterministic) lifting order.
void try_cover(const std::vector<ActiveItem>& items, double cap,
               const SeparationOptions& opt, std::vector<Cut>* out) {
  double total = 0.0;
  for (const ActiveItem& it : items) total += it.weight;
  if (total <= cap + kTol) return;  // every item fits: no cover exists

  // Greedy cover against the fractional point: items whose (1 - x) is
  // small per unit of weight close the capacity with the least slack in
  // the violation sum(1 - x_i) < 1.
  std::vector<int> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double ka = (1.0 - items[a].x) / items[a].weight;
    const double kb = (1.0 - items[b].x) / items[b].weight;
    if (ka != kb) return ka < kb;
    return items[a].var < items[b].var;
  });
  std::vector<int> cover;
  double cover_w = 0.0;
  for (int idx : order) {
    cover.push_back(idx);
    cover_w += items[idx].weight;
    if (cover_w > cap + kTol) break;
  }
  if (cover_w <= cap + kTol) return;

  // Minimalize: dropping an item both shrinks the cover and RAISES the
  // violation by (1 - x_i), so shed the largest (1 - x_i) first while the
  // remainder still overflows the capacity.
  {
    std::vector<int> by_slack = cover;
    std::sort(by_slack.begin(), by_slack.end(), [&](int a, int b) {
      const double sa = 1.0 - items[a].x, sb = 1.0 - items[b].x;
      if (sa != sb) return sa > sb;
      return items[a].var < items[b].var;
    });
    for (int idx : by_slack) {
      if (cover_w - items[idx].weight > cap + kTol) {
        cover_w -= items[idx].weight;
        cover.erase(std::find(cover.begin(), cover.end(), idx));
      }
    }
  }

  const int r = static_cast<int>(cover.size()) - 1;
  std::vector<LiftTerm> terms;
  terms.reserve(cover.size());
  for (int idx : cover)
    terms.push_back({items[idx].var, items[idx].weight, 1, items[idx].x});

  double plain_lhs = 0.0;
  for (int idx : cover) plain_lhs += items[idx].x;
  // Work bound on the lifting DP, not an exact test: lifting adds the
  // lifted items' (coefficient-weighted) fractional mass to the left-hand
  // side, which in principle could rescue a cover this far from violated
  // -- but on the rematerialization LPs the mass above this margin is
  // vanishingly rare and the DP per candidate is the separator's most
  // expensive step, so covers more than 0.5 short are dropped.
  if (plain_lhs - r < -0.5) return;

  // Exact sequential up-lifting, heaviest candidates first (heavy items
  // leave the least residual capacity, hence earn the largest
  // coefficients). DP state: minw[p] = least knapsack weight over the
  // current terms achieving inequality profit exactly p.
  int profit_cap = 0;
  for (const LiftTerm& t : terms) profit_cap += t.a;
  std::vector<double> minw(static_cast<size_t>(profit_cap) + 1,
                           std::numeric_limits<double>::infinity());
  minw[0] = 0.0;
  {
    int built = 0;
    for (const LiftTerm& t : terms) {
      built += t.a;
      for (int p = built; p >= t.a; --p)
        minw[p] = std::min(minw[p], minw[p - t.a] + t.weight);
    }
  }
  std::vector<int> in_cover(items.size(), 0);
  for (int idx : cover) in_cover[idx] = 1;
  std::vector<int> cand;
  for (size_t i = 0; i < items.size(); ++i)
    if (!in_cover[i]) cand.push_back(static_cast<int>(i));
  std::sort(cand.begin(), cand.end(), [&](int a, int b) {
    if (items[a].weight != items[b].weight)
      return items[a].weight > items[b].weight;
    return items[a].var < items[b].var;
  });
  int attempts = 0;
  for (int idx : cand) {
    if (attempts >= opt.max_lift_candidates ||
        profit_cap >= opt.max_lift_profit)
      break;
    const ActiveItem& it = items[idx];
    ++attempts;
    int alpha;
    const double residual = cap - it.weight;
    if (residual < -kTol) {
      // The item alone busts the capacity: it can never be 1, any
      // coefficient is valid -- use the full rhs so the cut doubles as a
      // fixing.
      alpha = std::max(r, 1);
    } else {
      int best = 0;
      for (int p = profit_cap; p >= 1; --p)
        if (minw[p] <= residual + kTol) {
          best = p;
          break;
        }
      alpha = r - best;
    }
    if (alpha < 1) continue;
    terms.push_back({it.var, it.weight, alpha, it.x});
    const int new_cap = profit_cap + alpha;
    minw.resize(static_cast<size_t>(new_cap) + 1,
                std::numeric_limits<double>::infinity());
    for (int p = new_cap; p >= alpha; --p)
      minw[p] = std::min(minw[p], minw[p - alpha] + it.weight);
    profit_cap = new_cap;
  }

  double lhs = 0.0, norm2 = 0.0;
  for (const LiftTerm& t : terms) {
    lhs += t.a * t.x;
    norm2 += static_cast<double>(t.a) * t.a;
  }
  const double violation = (lhs - r) / std::sqrt(std::max(norm2, 1.0));
  if (violation < opt.min_violation) return;

  Cut cut;
  cut.terms.reserve(terms.size());
  for (const LiftTerm& t : terms)
    cut.terms.emplace_back(t.var, static_cast<double>(t.a));
  std::sort(cut.terms.begin(), cut.terms.end());
  cut.rhs = r;
  cut.violation = violation;
  cut.hash = cut_hash(cut);
  out->push_back(std::move(cut));
}

// ------------------------------------------------------------ clique cuts
//
// The conflict graph of a knapsack (i ~ j iff w_i + w_j > cap) on items
// sorted by weight is an interval graph: its maximal cliques are the heavy
// set H = {w_i > cap/2} plus, for every lighter item a, the set
// {a} + {i : w_i > cap - w_a}. Each clique Q yields sum_{Q} x_i <= 1.
void try_cliques(const std::vector<ActiveItem>& items, double cap,
                 const SeparationOptions& opt, std::vector<Cut>* out) {
  std::vector<int> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (items[a].weight != items[b].weight)
      return items[a].weight > items[b].weight;
    return items[a].var < items[b].var;
  });

  auto emit = [&](const std::vector<int>& clique) {
    if (clique.size() < 2) return;
    double lhs = 0.0;
    for (int idx : clique) lhs += items[idx].x;
    const double violation =
        (lhs - 1.0) / std::sqrt(static_cast<double>(clique.size()));
    if (violation < opt.min_violation) return;
    Cut cut;
    cut.terms.reserve(clique.size());
    for (int idx : clique) cut.terms.emplace_back(items[idx].var, 1.0);
    std::sort(cut.terms.begin(), cut.terms.end());
    cut.rhs = 1.0;
    cut.violation = violation;
    cut.hash = cut_hash(cut);
    out->push_back(std::move(cut));
  };

  std::vector<int> heavy;
  for (int idx : order) {
    if (2.0 * items[idx].weight > cap + kTol)
      heavy.push_back(idx);
    else
      break;  // order is weight-descending
  }
  emit(heavy);
  for (size_t k = heavy.size(); k < order.size(); ++k) {
    const int a = order[k];
    std::vector<int> clique;
    for (int idx : heavy) {
      if (items[idx].weight > cap - items[a].weight + kTol)
        clique.push_back(idx);
      else
        break;  // heavy is weight-descending too
    }
    if (clique.empty()) break;  // lighter items only have smaller cliques
    clique.push_back(a);
    emit(clique);
  }
}

}  // namespace

uint64_t cut_hash(const Cut& cut) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& [var, coef] : cut.terms) {
    mix(static_cast<uint64_t>(var));
    mix(static_cast<uint64_t>(
        static_cast<int64_t>(std::llround(coef * 1048576.0))));
  }
  mix(static_cast<uint64_t>(
      static_cast<int64_t>(std::llround(cut.rhs * 1048576.0))));
  mix(cut.terms.size());
  return h == 0 ? 1 : h;
}

void separate_knapsack_cuts(const FormulationStructure& structure,
                            const lp::LinearProgram& lp,
                            std::span<const double> x,
                            const SeparationOptions& options,
                            std::vector<Cut>* out) {
  std::vector<Cut> found;
  std::vector<ActiveItem> items;
  for (const KnapsackRow& row : structure.knapsacks) {
    if (row.capacity_var < 0 || row.capacity_var >= lp.num_vars()) continue;
    double cap = lp.ub[row.capacity_var] - row.capacity_offset;
    items.clear();
    for (const KnapsackItem& it : row.items) {
      if (it.var < 0 || it.var >= lp.num_vars() || it.weight <= kTol)
        continue;
      const double lo = lp.lb[it.var], hi = lp.ub[it.var];
      if (hi - lo < 0.5) {
        // Fixed by presolve or root reduced-cost fixing: a 1 consumes
        // capacity, a 0 drops out. Either way the knapsack shrinks -- and
        // the cuts separated from the shrunken knapsack remain globally
        // valid because the fixing itself is.
        if (lo > 0.5) cap -= it.weight;
        continue;
      }
      items.push_back({it.var, it.weight, clamp01(x[it.var])});
    }
    if (cap <= kTol || items.empty()) continue;
    try_cover(items, cap, options, &found);
    try_cliques(items, cap, options, &found);
  }

  // Deterministic ranking + within-call dedup (overlapping knapsacks can
  // separate the same clique twice).
  std::sort(found.begin(), found.end(), cut_order_before);
  int emitted = 0;
  for (Cut& c : found) {
    if (emitted >= options.max_cuts) break;
    bool dup = false;
    for (int k = static_cast<int>(out->size()) - emitted;
         k < static_cast<int>(out->size()); ++k) {
      const Cut& prev = (*out)[k];
      if (prev.hash == c.hash && prev.rhs == c.rhs && prev.terms == c.terms) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    out->push_back(std::move(c));
    ++emitted;
  }
}

// ------------------------------------------------------------ Gomory cuts
//
// GMI derivation in the bound-shifted frame. The engine's tableau row at
// basis position p is the identity  x_B + sum_j coef_j x_j = 0  over the
// nonbasic columns j (structurals AND slacks). Substituting each nonbasic
// at its bound (lower: x = l + t, upper: x = u - t, t >= 0) turns it into
//   x_B = b  -  sum_j abar_j t_j,      b = basic value, t >= 0,
// with abar_j = +coef_j at a lower bound and -coef_j at an upper bound.
// With x_B integer and f0 = frac(b) usefully interior, the Gomory mixed
// integer cut in the >=-1 normalized form is
//   sum_{int j} gamma_j t_j + sum_{cont j} gamma_j t_j >= 1,
//   gamma_int  = f_j/f0            if f_j <= f0,   f_j = frac(abar_j)
//              = (1-f_j)/(1-f0)    otherwise,
//   gamma_cont = abar_j/f0         if abar_j >= 0,
//              = -abar_j/(1-f0)    otherwise.
// Mapping t back to x and substituting slack rows (s_r = (Ax)_r, bounds
// [row_lb, row_ub]) through one level of lp.entries yields a structural
// inequality, negated to the pool's <= convention.
void separate_gomory_cuts(const lp::LinearProgram& lp,
                          lp::DualSimplex& engine, std::span<const double> x,
                          const SeparationOptions& options,
                          std::vector<Cut>* out) {
  const int n = lp.num_vars();
  const int m = engine.num_rows();
  // Rowwise expansion of the LP for slack substitution (built once).
  std::vector<std::vector<std::pair<int, double>>> rows(
      static_cast<size_t>(m));
  for (const lp::Triplet& t : lp.entries)
    if (t.row < m) rows[static_cast<size_t>(t.row)].emplace_back(t.col, t.value);

  // True when shifting this nonbasic keeps an integral step variable.
  const auto integral_shift = [&](int col, double bound) {
    return col < n && lp.is_integer[col] &&
           std::abs(bound - std::llround(bound)) < 1e-9;
  };

  std::vector<Cut> found;
  std::vector<int> cols;
  std::vector<double> coefs;
  std::vector<double> acc(static_cast<size_t>(n), 0.0);
  std::vector<int> touched;
  for (int pos = 0; pos < m; ++pos) {
    const int basic = engine.basic_col(pos);
    if (basic < 0 || basic >= n || !lp.is_integer[basic]) continue;
    const double b = engine.basic_value(pos);
    const double f0 = b - std::floor(b);
    if (f0 < 0.005 || f0 > 0.995) continue;  // cut would be numerically weak
    if (!engine.tableau_row(pos, cols, coefs)) return;  // basis not factorized

    // gamma per nonbasic, still keyed by engine column (slack = n + row).
    bool usable = true;
    double rhs_ge = 1.0;
    touched.clear();
    auto add_term = [&](int col, double g) {
      if (g == 0.0) return;
      if (acc[static_cast<size_t>(col)] == 0.0) touched.push_back(col);
      acc[static_cast<size_t>(col)] += g;
    };
    for (size_t k = 0; k < cols.size() && usable; ++k) {
      const int col = cols[k];
      const int st = engine.col_status(col);
      const bool at_lower = st == lp::DualSimplex::kNonbasicLower;
      const bool at_upper = st == lp::DualSimplex::kNonbasicUpper;
      if (!at_lower && !at_upper) {
        // A free nonbasic has no bound frame to shift into.
        if (std::abs(coefs[k]) > 1e-9) usable = false;
        continue;
      }
      const double lo = col < n ? engine.var_lower(col) : lp.row_lb[col - n];
      const double hi = col < n ? engine.var_upper(col) : lp.row_ub[col - n];
      const double bound = at_lower ? lo : hi;
      if (bound == lp::kInf || bound == -lp::kInf) {
        usable = false;  // nonbasic pinned at an infinite bound: broken row
        continue;
      }
      if (hi - lo < 1e-12) continue;  // fixed: constant, no step variable
      const double abar = at_lower ? coefs[k] : -coefs[k];
      double gamma;
      if (integral_shift(col, bound)) {
        const double fj = abar - std::floor(abar);
        gamma = fj <= f0 ? fj / f0 : (1.0 - fj) / (1.0 - f0);
      } else {
        gamma = abar >= 0.0 ? abar / f0 : -abar / (1.0 - f0);
      }
      if (gamma < 1e-12) continue;
      // t = x - l (lower) or u - x (upper):  gamma * t >= part of lhs.
      const double delta = at_lower ? gamma : -gamma;
      rhs_ge += delta * bound;
      if (col < n) {
        add_term(col, delta);
      } else {
        // Substitute the slack by its defining row s_r = (Ax)_r.
        for (const auto& [c, v] : rows[static_cast<size_t>(col - n)])
          add_term(c, delta * v);
      }
    }
    if (usable) {
      // Collect, then guard: density, dynamic ratio, and droppable dust.
      std::sort(touched.begin(), touched.end());
      double max_a = 0.0;
      for (int c : touched)
        max_a = std::max(max_a, std::abs(acc[static_cast<size_t>(c)]));
      Cut cut;
      cut.source = Cut::kGomory;
      double min_a = std::numeric_limits<double>::infinity();
      bool ok = max_a > 1e-12 && touched.size() <= 128;
      for (int c : touched) {
        if (!ok) break;
        const double a = acc[static_cast<size_t>(c)];
        if (std::abs(a) < 1e-11 * max_a) {
          // Dust: drop the term, keeping the >= cut valid by charging its
          // largest possible contribution to the rhs. Needs a finite bound
          // on the charging side; dust on an unbounded column kills the cut.
          const double blo = lp.lb[c], bhi = lp.ub[c];
          const double worst = a >= 0.0 ? a * bhi : a * blo;
          if (worst == lp::kInf || worst == -lp::kInf ||
              std::isnan(worst)) {
            ok = false;
          } else {
            rhs_ge -= worst;
          }
          continue;
        }
        min_a = std::min(min_a, std::abs(a));
        cut.terms.emplace_back(c, -a);  // negate: emitted as <=
      }
      if (ok && !cut.terms.empty() && max_a / min_a <= 1e7) {
        cut.rhs = -rhs_ge;
        double act = 0.0, norm2 = 0.0;
        for (const auto& [c, a] : cut.terms) {
          act += a * x[c];
          norm2 += a * a;
        }
        cut.violation = (act - cut.rhs) / std::sqrt(std::max(norm2, 1e-12));
        if (cut.violation >= options.min_violation) {
          cut.hash = cut_hash(cut);
          found.push_back(std::move(cut));
        }
      }
    }
    for (int c : touched) acc[static_cast<size_t>(c)] = 0.0;
  }

  std::sort(found.begin(), found.end(), cut_order_before);
  if (static_cast<int>(found.size()) > options.max_cuts)
    found.resize(static_cast<size_t>(options.max_cuts));
  for (Cut& c : found) out->push_back(std::move(c));
}

bool CutPool::offer(Cut cut) {
  if (cut.hash == 0) cut.hash = cut_hash(cut);
  for (Entry& e : entries_) {
    if (e.cut.hash == cut.hash && e.cut.rhs == cut.rhs &&
        e.cut.terms == cut.terms) {
      if (e.in_lp) return false;
      // Re-separated: the cut is active again -- refresh its age and keep
      // the strongest observed violation as its selection score.
      e.age = 0;
      e.cut.violation = std::max(e.cut.violation, cut.violation);
      return true;
    }
  }
  if (entries_.size() >= opt_.max_entries) return false;
  entries_.push_back({std::move(cut), 0, false});
  return true;
}

bool cut_order_before(const Cut& a, const Cut& b) {
  if (a.violation != b.violation) return a.violation > b.violation;
  if (a.hash != b.hash) return a.hash < b.hash;
  if (a.rhs != b.rhs) return a.rhs < b.rhs;
  return a.terms < b.terms;
}

bool CutPool::order_before(const Entry& a, const Entry& b) {
  return cut_order_before(a.cut, b.cut);
}

std::vector<Cut> CutPool::select(int max_cuts) {
  std::vector<int> idx;
  for (size_t i = 0; i < entries_.size(); ++i)
    if (!entries_[i].in_lp) idx.push_back(static_cast<int>(i));
  std::sort(idx.begin(), idx.end(), [this](int a, int b) {
    return order_before(entries_[a], entries_[b]);
  });
  std::vector<Cut> out;
  for (size_t k = 0; k < idx.size() && static_cast<int>(k) < max_cuts; ++k) {
    Entry& e = entries_[idx[k]];
    e.in_lp = true;
    ++selected_;
    out.push_back(e.cut);
  }
  return out;
}

void CutPool::bind_rows(std::span<const Cut> chosen,
                        std::span<const int64_t> row_ids) {
  for (size_t k = 0; k < chosen.size() && k < row_ids.size(); ++k) {
    const Cut& c = chosen[k];
    for (Entry& e : entries_) {
      if (e.in_lp && e.row_id < 0 && e.cut.hash == c.hash &&
          e.cut.rhs == c.rhs && e.cut.terms == c.terms) {
        e.row_id = row_ids[k];
        e.lp_age = 0;
        break;
      }
    }
  }
}

std::vector<int64_t> CutPool::age_in_lp(
    const std::function<bool(const Cut&)>& loose) {
  std::vector<int64_t> dead;
  for (Entry& e : entries_) {
    if (!e.in_lp || e.row_id < 0) continue;
    if (loose(e.cut)) {
      if (++e.lp_age > opt_.max_age) dead.push_back(e.row_id);
    } else {
      e.lp_age = 0;
    }
  }
  if (!dead.empty()) {
    // Dropping the entry also drops its dedup anchor: a later re-separation
    // of the same cut re-enters the pool as a fresh entry (and may be
    // re-appended) -- bounded by the caller's total-cuts budget.
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&dead](const Entry& e) {
                                    return e.in_lp && e.row_id >= 0 &&
                                           std::find(dead.begin(), dead.end(),
                                                     e.row_id) != dead.end();
                                  }),
                   entries_.end());
  }
  return dead;
}

void CutPool::age_tick() {
  for (Entry& e : entries_)
    if (!e.in_lp) ++e.age;
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [this](const Entry& e) {
                                  return !e.in_lp && e.age > opt_.max_age;
                                }),
                 entries_.end());
  if (entries_.size() > opt_.max_entries) {
    // Keep every in-LP entry (they anchor dedup) and the best of the rest.
    std::stable_partition(entries_.begin(), entries_.end(),
                          [](const Entry& e) { return e.in_lp; });
    auto first_pooled =
        std::find_if(entries_.begin(), entries_.end(),
                     [](const Entry& e) { return !e.in_lp; });
    std::sort(first_pooled, entries_.end(), order_before);
    entries_.resize(
        std::max(opt_.max_entries,
                 static_cast<size_t>(first_pooled - entries_.begin())));
  }
}

}  // namespace checkmate::milp
