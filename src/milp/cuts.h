// Cutting planes for the Checkmate rematerialization MILPs.
//
// The LP relaxation of the R/S polytope is tight on the objective but
// massively degenerate: the real-model instances prove a 5e-4 gap in
// seconds and then plateau, because thousands of alternative fractional
// optima sit just below the integer optimum. Generic search cannot
// separate them; the structure of the formulation can. Two families of
// globally valid cuts are separated here, both over *knapsack views* of
// the memory-budget rows that the formulation layer exposes through
// FormulationStructure (so this file never parses raw LP rows):
//
//   - lifted cover cuts: each memory row is a 0/1 knapsack over the
//     checkpoint/recompute binaries with coefficients from the tensor-size
//     vector. A cover C (a set of tensors that cannot all be resident) is
//     found greedily against the fractional point, minimalized, and then
//     up-lifted with EXACT sequential lifting coefficients -- the lifting
//     subproblems are tiny integer knapsacks solved by a min-weight-per-
//     profit DP, so the emitted inequality is a proper lifted cover, not
//     just an extended one;
//   - clique cuts: pairs of tensors whose sizes sum past the capacity
//     conflict; the conflict graph of a knapsack is an interval graph
//     whose maximal cliques are enumerable in O(k log k) (the heavy set
//     {w_i > cap/2} plus one clique per lighter item), giving
//     sum x_i <= 1 inequalities that dominate the pairwise covers.
//
// The capacity of each knapsack is NOT a baked constant: it is read from
// the current upper bound of a designated U column (capacity_var) at
// separation time, so cuts automatically respect budget rebinds
// (IlpFormulation::set_budget) and presolve/root-fixing tightenings -- a
// smaller capacity only strengthens the separated cuts, never invalidates
// them.
//
// The CutPool collects separated cuts across separation sites (root
// rounds, node-local separation inside worker dives), deduplicates them by
// content hash, selects the best by normalized violation in a
// deterministic total order, and ages out entries that keep losing the
// selection. The branch & cut search drives the pool from the coordinator
// only (at epoch barriers, in slot order), which is what keeps cut-pool
// contents -- and therefore the explored tree -- bit-identical for any
// worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "lp/lp_problem.h"

namespace checkmate::lp {
class DualSimplex;  // tableau source for the Gomory separator
}

namespace checkmate::milp {

// One 0/1 knapsack implied by a memory-budget row:
//   sum_j weight_j * x_j <= ub(capacity_var) - capacity_offset
// over binary variables x_j with weight_j > 0. The formulation layer
// derives these from the memory accounting rows (see
// IlpFormulation::cut_structure); capacity_offset folds in the
// fixed overhead plus any mass the precedence structure forces resident.
struct KnapsackItem {
  int var = -1;
  double weight = 0.0;
};

struct KnapsackRow {
  std::vector<KnapsackItem> items;
  int capacity_var = -1;
  double capacity_offset = 0.0;
};

// The structural view the separators consume. Built by the formulation
// layer (core/ilp_builder.h); column indices survive presolve unchanged
// (presolve never renumbers columns), so one structure serves the raw and
// the presolved LP alike.
struct FormulationStructure {
  std::vector<KnapsackRow> knapsacks;
  bool empty() const { return knapsacks.empty(); }
};

// A globally valid inequality terms . x <= rhs (terms sorted by variable,
// integer coefficients for the knapsack families above, fractional for
// Gomory cuts). `violation` is the normalized violation at the LP point
// that separated the cut (selection score); `hash` is a content hash over
// terms and rhs (dedup key). `source` tags the separator family for the
// observability counters only -- it is NOT part of the content hash, so a
// Gomory cut that reproduces a knapsack inequality still deduplicates.
struct Cut {
  std::vector<std::pair<int, double>> terms;
  double rhs = 0.0;
  double violation = 0.0;
  uint64_t hash = 0;
  enum Source : int8_t { kKnapsack = 0, kGomory = 1 };
  int8_t source = kKnapsack;
};

// Content hash (FNV-1a over quantized terms and rhs); also recomputed by
// CutPool::offer when a separator leaves hash at 0.
uint64_t cut_hash(const Cut& cut);

// THE deterministic total order on cuts -- strongest normalized violation
// first, then content tie-breaks. Separation emission order and cut-pool
// selection order both use it; the bit-identity contract needs the two
// sites to agree, so there is exactly one definition.
bool cut_order_before(const Cut& a, const Cut& b);

struct SeparationOptions {
  // Minimum L2-normalized violation for a cut to be emitted.
  double min_violation = 1e-4;
  // Per-call emission cap (the best by violation are kept).
  int max_cuts = 32;
  // Work bound on exact lifting: candidates lifted per cover / total
  // profit mass of the lifting DP.
  int max_lift_candidates = 24;
  int max_lift_profit = 256;
  double feasibility_tol = 1e-9;
};

// Runs both separators against the fractional point `x` (structural
// variables only) and appends every violated cut found to `out`,
// best-violation first, capped at options.max_cuts. Variable bounds are
// read from `lp` (the search's working LP), so presolve fixings and root
// reduced-cost fixings shrink the knapsacks before separation.
// Deterministic: the output is a pure function of (structure, lp bounds,
// x, options).
void separate_knapsack_cuts(const FormulationStructure& structure,
                            const lp::LinearProgram& lp,
                            std::span<const double> x,
                            const SeparationOptions& options,
                            std::vector<Cut>* out);

// Gomory mixed-integer cuts read from the optimal simplex tableau of
// `engine` (which must be at an optimal basis over `lp`; rows whose basis
// is stale are skipped wholesale). For every basic structural integer
// column with a usefully fractional value, the tableau row is shifted to
// the nonbasics' bound frame, the GMI inequality is derived (integer
// nonbasics use the fractional-part formula, continuous nonbasics -- and
// ALL slacks, a valid if slightly weaker choice -- the linear one), and
// slack terms are substituted out through one level of the LP's rows so
// the emitted cut is purely structural. Cuts are only globally valid when
// the engine's bounds ARE the LP's global bounds -- i.e. at the root of
// the search -- which is the only place the branch & cut driver calls
// this. Emitted cuts pass dynamic-ratio and density guards; `x` is the
// fractional point used for the violation score.
void separate_gomory_cuts(const lp::LinearProgram& lp,
                          lp::DualSimplex& engine, std::span<const double> x,
                          const SeparationOptions& options,
                          std::vector<Cut>* out);

struct CutPoolOptions {
  // Pool entries that keep losing the per-barrier selection are evicted
  // after this many age ticks without being re-separated.
  int max_age = 4;
  size_t max_entries = 4096;
};

// Deduplicating store for separated-but-not-yet-added cuts. All methods
// are meant to be called from one thread (the branch & cut coordinator at
// epoch barriers); determinism comes from the content-defined total order
// used by select().
class CutPool {
 public:
  explicit CutPool(CutPoolOptions options = {}) : opt_(options) {}

  // Offers a separated cut. A duplicate of a cut already in the LP is
  // dropped; a duplicate of a pooled cut refreshes that entry's age and
  // keeps the larger violation (activity-based aging: cuts that keep
  // getting re-separated stay alive). Returns true when the pool changed.
  bool offer(Cut cut);

  // Deterministically selects up to max_cuts pooled cuts -- ordered by
  // (violation desc, hash asc, rhs asc) -- marks them as in-LP and
  // returns them in selection order. The caller appends them as LP rows.
  std::vector<Cut> select(int max_cuts);

  // One aging step (called at epoch barriers): pooled entries not in the
  // LP age by one; entries past max_age are evicted, and the pool is
  // trimmed to max_entries keeping the best by the selection order.
  void age_tick();

  // Binds just-appended LP rows to their pool entries (matched by content;
  // `chosen` is the select() output and `row_ids` the per-cut stable row
  // ids the caller's LP assigned). Enables age_in_lp below.
  void bind_rows(std::span<const Cut> chosen,
                 std::span<const int64_t> row_ids);

  // Aging for the in-LP population: entries whose cut `loose` judges slack
  // (not supporting the current relaxation point) age by one, tight ones
  // rejuvenate. Entries loose for more than max_age consecutive calls are
  // dropped from the pool and their bound row ids returned -- the caller
  // physically deletes those rows from its LP (snapshot row-id remapping
  // makes that safe) and rebuilds its engines.
  std::vector<int64_t> age_in_lp(const std::function<bool(const Cut&)>& loose);

  int64_t cuts_selected() const { return selected_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Cut cut;
    int age = 0;
    bool in_lp = false;
    int64_t row_id = -1;  // LP row backing an in_lp entry, -1 = unbound
    int lp_age = 0;       // consecutive age_in_lp calls judged loose
  };
  static bool order_before(const Entry& a, const Entry& b);
  CutPoolOptions opt_;
  std::vector<Entry> entries_;
  int64_t selected_ = 0;
};

}  // namespace checkmate::milp
