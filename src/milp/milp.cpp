#include "milp/milp.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace checkmate::milp {

const char* to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kNoSolution: return "no_solution";
    case MilpStatus::kError: return "error";
  }
  return "unknown";
}

const char* to_string(NodeSelection mode) {
  switch (mode) {
    case NodeSelection::kDepthFirst: return "depth_first";
    case NodeSelection::kBestBound: return "best_bound";
    case NodeSelection::kHybrid: return "hybrid";
  }
  return "unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

struct BoundChange {
  int var;
  double lo, hi;
};

// Bound changes live in an append-only arena; each entry points at its
// parent, so a node's root path is its parent chain. Children share every
// prefix without copying: node creation is O(1) and a dive of depth d does
// O(d) work total (large rematerialization instances fix thousands of
// binaries, one per level). The arena is bounded by two entries per
// explored node.
struct PathEntry {
  int parent;  // arena index, -1 at the root
  BoundChange change;
};

// An open node is an arena reference plus the branching decision that
// created it (kept for the pseudocost update when its LP is eventually
// solved).
struct Node {
  int path = -1;             // deepest PathEntry, -1 = root
  double bound = -lp::kInf;  // parent relaxation: lower bound for the subtree
  int branch_var = -1;
  bool branch_up = false;
  double branch_frac = 0.0;  // fractional part of the parent LP value
};

class BranchAndBound {
 public:
  BranchAndBound(const lp::LinearProgram& lp, const MilpOptions& options,
                 IncumbentHeuristic heuristic)
      : lp_(lp),
        opt_(options),
        heuristic_(std::move(heuristic)),
        simplex_(lp, options.simplex),
        start_(Clock::now()),
        heur_interval_(std::max(1, options.heuristic_interval)) {
    for (int j = 0; j < lp.num_vars(); ++j)
      if (lp.is_integer[j]) int_vars_.push_back(j);
    root_lo_ = lp.lb;
    root_hi_ = lp.ub;
    pc_sum_[0].assign(lp.num_vars(), 0.0);
    pc_sum_[1].assign(lp.num_vars(), 0.0);
    pc_cnt_[0].assign(lp.num_vars(), 0);
    pc_cnt_[1].assign(lp.num_vars(), 0);
  }

  MilpResult run() {
    for (const auto& seed : opt_.initial_solutions) offer_candidate(seed);
    search();
    result_.seconds = elapsed();
    result_.lp_iterations = simplex_.iterations_total();

    if (result_.has_solution()) {
      if (external_bound_met_) {
        // Terminated against the caller's lower bound: report that bound
        // (not the incumbent) so the proven gap is stated honestly.
        result_.best_bound =
            std::min(opt_.known_lower_bound, result_.objective);
        result_.status = MilpStatus::kOptimal;
      } else if (search_complete_) {
        result_.best_bound = result_.objective;  // proved within gap
        result_.status = MilpStatus::kOptimal;
      } else {
        result_.best_bound = sound_incomplete_bound();
        result_.status = MilpStatus::kFeasible;
      }
    } else {
      result_.status =
          search_complete_ ? MilpStatus::kInfeasible : MilpStatus::kNoSolution;
      result_.best_bound =
          search_complete_ ? lp::kInf : sound_incomplete_bound();
    }
    return result_;
  }

 private:
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Lower bound valid when the search tree was truncated: unexplored
  // subtrees are bounded by their parent relaxations (open_bound_); if the
  // stop happened before any truncation bookkeeping (e.g. first-incumbent
  // mode), fall back to the root relaxation.
  double sound_incomplete_bound() const {
    double b = open_bound_;
    if (b == lp::kInf) {
      b = result_.root_relaxation != lp::kInf ? result_.root_relaxation
                                              : -lp::kInf;
    }
    return std::min(b, result_.objective);
  }

  bool limits_hit() {
    if (stop_) return true;
    if (result_.nodes >= opt_.max_nodes ||
        simplex_.iterations_total() >= opt_.max_lp_iterations ||
        elapsed() > opt_.time_limit_sec) {
      stop_ = true;
      search_complete_ = false;
    }
    return stop_;
  }

  double prune_threshold() const {
    if (!result_.has_solution()) return lp::kInf;
    return result_.objective -
           opt_.relative_gap * std::max(1.0, std::abs(result_.objective)) -
           1e-9;
  }

  // Average observed per-unit objective degradation for branching var j in
  // direction d (0 = down, 1 = up). Unobserved variables inherit the global
  // average; with no observations at all the default of 1.0 makes the
  // pseudocost score degenerate to most-fractional ordering.
  double pseudocost(int d, int j) const {
    if (pc_cnt_[d][j] > 0) return pc_sum_[d][j] / pc_cnt_[d][j];
    if (pc_global_cnt_[d] > 0) return pc_global_sum_[d] / pc_global_cnt_[d];
    return 1.0;
  }

  void update_pseudocost(const Node& node, double objective) {
    if (node.branch_var < 0 || node.bound == -lp::kInf) return;
    const int d = node.branch_up ? 1 : 0;
    const double dist =
        node.branch_up ? 1.0 - node.branch_frac : node.branch_frac;
    const double unit =
        std::max(0.0, objective - node.bound) / std::max(dist, 1e-6);
    pc_sum_[d][node.branch_var] += unit;
    pc_cnt_[d][node.branch_var] += 1;
    pc_global_sum_[d] += unit;
    pc_global_cnt_[d] += 1;
  }

  // Returns the fractional integer variable to branch on, or -1 if the
  // point is integral. Highest priority wins; within a tier the pseudocost
  // product score (or plain fractionality when pseudocosts are disabled)
  // decides.
  int pick_branch_var(const std::vector<double>& x, double* est_down_out,
                      double* est_up_out) const {
    int best = -1;
    int best_prio = std::numeric_limits<int>::min();
    double best_score = -1.0;
    double best_down = 0.0, best_up = 0.0;
    for (int j : int_vars_) {
      const double f = x[j] - std::floor(x[j]);
      const double dist = std::min(f, 1.0 - f);
      if (dist <= opt_.integrality_tol) continue;
      const int prio =
          opt_.branch_priority.empty() ? 0 : opt_.branch_priority[j];
      double score, est_down = f, est_up = 1.0 - f;
      if (opt_.pseudocost_branching) {
        est_down = pseudocost(0, j) * f;
        est_up = pseudocost(1, j) * (1.0 - f);
        score = std::max(est_down, 1e-9) * std::max(est_up, 1e-9);
      } else {
        score = dist;  // closest to 0.5 is largest
      }
      if (prio > best_prio || (prio == best_prio && score > best_score)) {
        best = j;
        best_prio = prio;
        best_score = score;
        best_down = est_down;
        best_up = est_up;
      }
    }
    if (est_down_out) *est_down_out = best_down;
    if (est_up_out) *est_up_out = best_up;
    return best;
  }

  void try_incumbent(const std::vector<double>& x, double objective) {
    if (objective >= result_.objective - 1e-12) return;
    result_.objective = objective;
    result_.x = x;
    if (opt_.stop_at_first_incumbent) {
      stop_ = true;
      search_complete_ = false;
    }
  }

  // Validates and possibly accepts a heuristic/rounded candidate.
  void offer_candidate(const std::vector<double>& x) {
    if (static_cast<int>(x.size()) != lp_.num_vars()) return;
    for (int j : int_vars_) {
      const double f = x[j] - std::floor(x[j]);
      if (std::min(f, 1.0 - f) > opt_.integrality_tol) return;
    }
    if (lp_.max_violation(x) > 1e-6) return;
    try_incumbent(x, lp_.objective_value(x));
  }

  // Adaptive cadence: always at the root, then every heur_interval_ nodes;
  // the interval doubles while the heuristic fails to improve the incumbent
  // (rounding the same fractional neighborhood rarely pays twice) and snaps
  // back to the configured base on success.
  void maybe_run_heuristic(const std::vector<double>& x, bool is_root) {
    if (!heuristic_ || stop_) return;
    if (!is_root && result_.nodes < next_heur_node_) return;
    const double before = result_.objective;
    if (auto cand = heuristic_(x)) offer_candidate(*cand);
    const int64_t base = std::max(1, opt_.heuristic_interval);
    if (result_.objective < before - 1e-12) {
      heur_interval_ = base;
    } else {
      heur_interval_ = std::min(heur_interval_ * 2, base * 64);
    }
    next_heur_node_ = result_.nodes + heur_interval_;
  }

  // Rewinds/advances the simplex bound state from the currently applied
  // path to `target_ref`. Shared prefixes are left untouched, so a dive
  // step costs exactly one set_var_bounds call.
  void switch_to(int target_ref) {
    if (target_ref == cur_ref_) return;
    // Fast path: descending into a direct child of the current node.
    if (target_ref >= 0 && arena_[target_ref].parent == cur_ref_) {
      const BoundChange& c = arena_[target_ref].change;
      simplex_.set_var_bounds(c.var, c.lo, c.hi);
      cur_chain_.push_back(target_ref);
      cur_ref_ = target_ref;
      return;
    }
    target_chain_.clear();
    for (int r = target_ref; r >= 0; r = arena_[r].parent)
      target_chain_.push_back(r);
    std::reverse(target_chain_.begin(), target_chain_.end());
    size_t k = 0;
    while (k < cur_chain_.size() && k < target_chain_.size() &&
           cur_chain_[k] == target_chain_[k])
      ++k;
    reset_scratch_.clear();
    for (size_t i = k; i < cur_chain_.size(); ++i) {
      const int v = arena_[cur_chain_[i]].change.var;
      simplex_.set_var_bounds(v, root_lo_[v], root_hi_[v]);
      reset_scratch_.push_back(v);
    }
    std::sort(reset_scratch_.begin(), reset_scratch_.end());
    reset_scratch_.erase(
        std::unique(reset_scratch_.begin(), reset_scratch_.end()),
        reset_scratch_.end());
    // Re-apply the target path. Entries in the untouched prefix only need a
    // refresh when their variable was just reset to root bounds.
    for (size_t j = 0; j < target_chain_.size(); ++j) {
      const BoundChange& c = arena_[target_chain_[j]].change;
      if (j >= k || std::binary_search(reset_scratch_.begin(),
                                       reset_scratch_.end(), c.var))
        simplex_.set_var_bounds(c.var, c.lo, c.hi);
    }
    cur_chain_ = target_chain_;
    cur_ref_ = target_ref;
  }

  bool best_bound_pop() const {
    return opt_.node_selection != NodeSelection::kDepthFirst;
  }

  void push_open(Node&& node) {
    open_.push_back(std::move(node));
    if (best_bound_pop())
      std::push_heap(open_.begin(), open_.end(),
                     [](const Node& a, const Node& b) { return a.bound > b.bound; });
  }

  std::optional<Node> pop_open() {
    if (open_.empty()) return std::nullopt;
    if (best_bound_pop())
      std::pop_heap(open_.begin(), open_.end(),
                    [](const Node& a, const Node& b) { return a.bound > b.bound; });
    Node n = std::move(open_.back());
    open_.pop_back();
    return n;
  }

  // Smallest bound among open subtrees (heap-ordered under best-bound
  // selection, so O(1)), or +inf with nothing open. Together with the node
  // in flight this is a valid global lower bound.
  double open_min_bound() const {
    return open_.empty() ? lp::kInf : open_.front().bound;
  }

  // True once the incumbent is within the relative gap of the
  // caller-guaranteed external lower bound (if any).
  bool external_bound_met() const {
    if (!result_.has_solution() || opt_.known_lower_bound == -lp::kInf)
      return false;
    return result_.objective - opt_.known_lower_bound <=
           opt_.relative_gap * std::max(1.0, std::abs(result_.objective)) +
               1e-12;
  }

  void search() {
    std::optional<Node> cur = Node{};  // the root: empty path, -inf bound
    for (;;) {
      if (external_bound_met()) {
        external_bound_met_ = true;
        return;
      }
      if (limits_hit()) break;
      // Gap termination: once every open subtree is bounded within the
      // relative gap of the incumbent, the incumbent is optimal-within-gap
      // -- no need to grind the remaining nodes. (Only best-bound-ordered
      // modes know the global bound cheaply; plain DFS keeps a LIFO.)
      if (best_bound_pop() && result_.has_solution()) {
        double global = open_min_bound();
        if (cur) global = std::min(global, cur->bound);
        if (global >= prune_threshold()) return;
      }
      if (!cur) {
        cur = pop_open();
        if (!cur) return;  // tree exhausted: search complete
        if (cur->bound >= prune_threshold()) {
          cur.reset();
          continue;
        }
      }

      switch_to(cur->path);
      const bool is_root = cur->path < 0;
      // Never let one node LP outlive the solver's remaining budget. The
      // floor only guards against a non-positive limit -- it must not grant
      // time the global budget no longer has.
      simplex_.set_time_limit(
          std::max(0.01, opt_.time_limit_sec - elapsed()));
      ++result_.nodes;
      const lp::LpResult rel = simplex_.solve();
      if (is_root && rel.status == lp::LpStatus::kOptimal)
        result_.root_relaxation = rel.objective;

      if (rel.status == lp::LpStatus::kInfeasible) {
        cur.reset();
        continue;
      }
      if (rel.status != lp::LpStatus::kOptimal) {
        // Numerical trouble or LP time cap: the subtree stays open; its
        // parent relaxation still bounds it (the root has no parent).
        search_complete_ = false;
        open_bound_ = std::min(open_bound_, cur->bound);
        cur.reset();
        continue;
      }

      update_pseudocost(*cur, rel.objective);
      if (rel.objective >= prune_threshold()) {
        cur.reset();
        continue;
      }

      double est_down = 0.0, est_up = 0.0;
      const int bv = pick_branch_var(rel.x, &est_down, &est_up);
      if (bv < 0) {
        try_incumbent(rel.x, rel.objective);
        cur.reset();
        continue;
      }
      maybe_run_heuristic(rel.x, is_root);
      if (stop_ || rel.objective >= prune_threshold()) {
        cur.reset();
        continue;
      }

      // Branch. Dive into the child with the smaller estimated objective
      // degradation; the sibling joins the open list.
      const double frac = rel.x[bv];
      const double floor_val = std::floor(frac);
      const double cur_lo = simplex_.var_lower(bv);
      const double cur_hi = simplex_.var_upper(bv);
      const double f = frac - floor_val;
      const bool down_first = opt_.pseudocost_branching
                                  ? est_down <= est_up
                                  : f <= 0.5;

      auto make_child = [&](bool up) {
        Node child;
        arena_.push_back(
            {cur->path, up ? BoundChange{bv, floor_val + 1.0, cur_hi}
                           : BoundChange{bv, cur_lo, floor_val}});
        child.path = static_cast<int>(arena_.size()) - 1;
        child.bound = rel.objective;
        child.branch_var = bv;
        child.branch_up = up;
        child.branch_frac = f;
        return child;
      };
      const bool down_ok = floor_val >= cur_lo - 1e-12;
      const bool up_ok = floor_val + 1.0 <= cur_hi + 1e-12;

      std::optional<Node> dive;
      const bool preferred_up = !down_first;
      if (preferred_up ? up_ok : down_ok) dive = make_child(preferred_up);
      if (!preferred_up ? up_ok : down_ok) {
        Node other = make_child(!preferred_up);
        if (dive)
          push_open(std::move(other));
        else
          dive = std::move(other);
      }
      if (dive && opt_.node_selection == NodeSelection::kBestBound) {
        // Pure best-bound: no diving, both children go through the heap.
        push_open(std::move(*dive));
        dive.reset();
      }
      cur = std::move(dive);
    }

    // Truncated: account every open subtree so best_bound stays sound.
    if (cur) open_bound_ = std::min(open_bound_, cur->bound);
    for (const Node& n : open_) open_bound_ = std::min(open_bound_, n.bound);
  }

  const lp::LinearProgram& lp_;
  MilpOptions opt_;
  IncumbentHeuristic heuristic_;
  lp::DualSimplex simplex_;
  Clock::time_point start_;

  std::vector<int> int_vars_;
  std::vector<double> root_lo_, root_hi_;
  std::vector<PathEntry> arena_;
  int cur_ref_ = -1;              // deepest applied arena entry (-1 = root)
  std::vector<int> cur_chain_;    // applied arena entries, root -> deepest
  std::vector<int> target_chain_, reset_scratch_;  // switch_to scratch
  std::vector<Node> open_;

  std::vector<double> pc_sum_[2];
  std::vector<int> pc_cnt_[2];
  double pc_global_sum_[2] = {0.0, 0.0};
  int pc_global_cnt_[2] = {0, 0};

  int64_t heur_interval_;
  int64_t next_heur_node_ = 0;

  MilpResult result_;
  bool search_complete_ = true;
  bool external_bound_met_ = false;
  bool stop_ = false;
  double open_bound_ = lp::kInf;
};

}  // namespace

MilpResult solve_milp(const lp::LinearProgram& lp, const MilpOptions& options,
                      IncumbentHeuristic heuristic) {
  MilpOptions opts = options;
  // A single node LP must never outlive the overall budget.
  opts.simplex.time_limit_sec =
      std::min(opts.simplex.time_limit_sec, opts.time_limit_sec);

  if (!opts.presolve) {
    BranchAndBound bnb(lp, opts, std::move(heuristic));
    return bnb.run();
  }

  PresolveOptions popts;
  popts.integrality_tol = opts.integrality_tol;
  PresolveResult pre = presolve(lp, popts);
  if (pre.stats.proven_infeasible) {
    MilpResult res;
    res.status = MilpStatus::kInfeasible;
    res.best_bound = lp::kInf;
    res.presolve = pre.stats;
    return res;
  }
  // Columns are identity-mapped through presolve, so incumbents, heuristics
  // and priorities transfer without translation.
  BranchAndBound bnb(pre.lp, opts, std::move(heuristic));
  MilpResult res = bnb.run();
  res.presolve = pre.stats;
  return res;
}

}  // namespace checkmate::milp
