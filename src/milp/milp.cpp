#include "milp/milp.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace checkmate::milp {

const char* to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kNoSolution: return "no_solution";
    case MilpStatus::kError: return "error";
  }
  return "unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

class BranchAndBound {
 public:
  BranchAndBound(const lp::LinearProgram& lp, const MilpOptions& options,
                 IncumbentHeuristic heuristic)
      : lp_(lp),
        opt_(options),
        heuristic_(std::move(heuristic)),
        simplex_(lp, options.simplex),
        start_(Clock::now()) {
    for (int j = 0; j < lp.num_vars(); ++j)
      if (lp.is_integer[j]) int_vars_.push_back(j);
  }

  MilpResult run() {
    if (!opt_.initial_solution.empty()) offer_candidate(opt_.initial_solution);
    // Track the minimum LP bound over pruned-by-limit subtrees so that
    // best_bound is sound even when the search is truncated.
    search(/*depth=*/0);
    result_.seconds = elapsed();
    result_.lp_iterations = simplex_.iterations_total();

    if (result_.has_solution()) {
      if (search_complete_) {
        result_.best_bound = result_.objective;  // proved within gap
        result_.status = MilpStatus::kOptimal;
      } else {
        result_.best_bound = sound_incomplete_bound();
        result_.status = MilpStatus::kFeasible;
      }
    } else {
      result_.status =
          search_complete_ ? MilpStatus::kInfeasible : MilpStatus::kNoSolution;
      result_.best_bound =
          search_complete_ ? lp::kInf : sound_incomplete_bound();
    }
    return result_;
  }

 private:
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Lower bound valid when the search tree was truncated: unexplored
  // subtrees are bounded by their parent relaxations (open_bound_); if the
  // stop happened before any truncation bookkeeping (e.g. first-incumbent
  // mode), fall back to the root relaxation.
  double sound_incomplete_bound() const {
    double b = open_bound_;
    if (b == lp::kInf) {
      b = result_.root_relaxation != lp::kInf ? result_.root_relaxation
                                              : -lp::kInf;
    }
    return std::min(b, result_.objective);
  }

  bool limits_hit() {
    if (stop_) return true;
    if (result_.nodes >= opt_.max_nodes || elapsed() > opt_.time_limit_sec) {
      stop_ = true;
      search_complete_ = false;
    }
    return stop_;
  }

  double prune_threshold() const {
    if (!result_.has_solution()) return lp::kInf;
    return result_.objective -
           opt_.relative_gap * std::max(1.0, std::abs(result_.objective)) -
           1e-9;
  }

  // Returns the fractional integer variable to branch on, or -1 if the
  // point is integral. Highest priority wins; ties go to most-fractional.
  int pick_branch_var(const std::vector<double>& x) const {
    int best = -1;
    int best_prio = std::numeric_limits<int>::min();
    double best_frac_score = -1.0;
    for (int j : int_vars_) {
      const double f = x[j] - std::floor(x[j]);
      const double dist = std::min(f, 1.0 - f);
      if (dist <= opt_.integrality_tol) continue;
      const int prio =
          opt_.branch_priority.empty() ? 0 : opt_.branch_priority[j];
      const double score = dist;  // closest to 0.5 is largest
      if (prio > best_prio || (prio == best_prio && score > best_frac_score)) {
        best = j;
        best_prio = prio;
        best_frac_score = score;
      }
    }
    return best;
  }

  void try_incumbent(const std::vector<double>& x, double objective) {
    if (objective >= result_.objective - 1e-12) return;
    result_.objective = objective;
    result_.x = x;
    if (opt_.stop_at_first_incumbent) {
      stop_ = true;
      search_complete_ = false;
    }
  }

  // Validates and possibly accepts a heuristic/rounded candidate.
  void offer_candidate(const std::vector<double>& x) {
    if (static_cast<int>(x.size()) != lp_.num_vars()) return;
    for (int j : int_vars_) {
      const double f = x[j] - std::floor(x[j]);
      if (std::min(f, 1.0 - f) > opt_.integrality_tol) return;
    }
    if (lp_.max_violation(x) > 1e-6) return;
    try_incumbent(x, lp_.objective_value(x));
  }

  // Iterative depth-first search with an explicit frame stack. Recursion
  // is avoided because dives can fix thousands of binaries (one per level)
  // on large rematerialization instances, which would threaten the call
  // stack.
  void search(int /*unused_depth*/) {
    struct Branch {
      double lo, hi;
    };
    struct Frame {
      int var;
      double old_lo, old_hi;
      Branch branches[2];
      int next = 0;
      double relaxation;  // parent node's LP bound (for open-bound audit)
    };
    std::vector<Frame> stack;

    auto unwind = [&]() {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        open_bound_ = std::min(open_bound_, it->relaxation);
        simplex_.set_var_bounds(it->var, it->old_lo, it->old_hi);
      }
      stack.clear();
    };

    bool need_solve = true;  // the root is pending
    for (;;) {
      if (limits_hit()) {
        unwind();
        return;
      }
      if (need_solve) {
        need_solve = false;
        ++result_.nodes;
        // Never let one node LP outlive the solver's remaining budget.
        simplex_.set_time_limit(
            std::max(0.5, opt_.time_limit_sec - elapsed()));
        lp::LpResult rel = simplex_.solve();
        const bool is_root = stack.empty();
        if (is_root && rel.status == lp::LpStatus::kOptimal)
          result_.root_relaxation = rel.objective;

        if (rel.status == lp::LpStatus::kInfeasible ||
            (rel.status == lp::LpStatus::kOptimal &&
             rel.objective >= prune_threshold())) {
          // Pruned: fall through to backtracking.
        } else if (rel.status != lp::LpStatus::kOptimal) {
          // Numerical trouble or LP time cap: subtree stays open.
          search_complete_ = false;
          open_bound_ = -lp::kInf;
        } else {
          const int branch_var = pick_branch_var(rel.x);
          if (branch_var < 0) {
            try_incumbent(rel.x, rel.objective);
          } else {
            if (heuristic_ && (is_root || result_.nodes %
                                              opt_.heuristic_interval ==
                                          0)) {
              if (auto cand = heuristic_(rel.x)) offer_candidate(*cand);
            }
            if (!stop_ && rel.objective < prune_threshold()) {
              Frame f;
              f.var = branch_var;
              f.old_lo = simplex_.var_lower(branch_var);
              f.old_hi = simplex_.var_upper(branch_var);
              f.relaxation = rel.objective;
              const double frac = rel.x[branch_var];
              const double floor_val = std::floor(frac);
              const Branch down{f.old_lo, floor_val};
              const Branch up{floor_val + 1.0, f.old_hi};
              const bool down_first = (frac - floor_val) <= 0.5;
              f.branches[0] = down_first ? down : up;
              f.branches[1] = down_first ? up : down;
              stack.push_back(f);
            }
          }
        }
      }

      // Backtrack to the deepest frame with an unexplored branch.
      while (!stack.empty() && stack.back().next == 2) {
        simplex_.set_var_bounds(stack.back().var, stack.back().old_lo,
                                stack.back().old_hi);
        stack.pop_back();
      }
      if (stack.empty()) return;

      Frame& f = stack.back();
      const Branch& b = f.branches[f.next++];
      if (b.lo > b.hi + 1e-12) continue;  // empty side (integral bound edge)
      simplex_.set_var_bounds(f.var, b.lo, b.hi);
      need_solve = true;
    }
  }

  const lp::LinearProgram& lp_;
  MilpOptions opt_;
  IncumbentHeuristic heuristic_;
  lp::DualSimplex simplex_;
  Clock::time_point start_;

  std::vector<int> int_vars_;
  MilpResult result_;
  bool search_complete_ = true;
  bool stop_ = false;
  double open_bound_ = lp::kInf;
};

}  // namespace

MilpResult solve_milp(const lp::LinearProgram& lp, const MilpOptions& options,
                      IncumbentHeuristic heuristic) {
  MilpOptions opts = options;
  // A single node LP must never outlive the overall budget.
  opts.simplex.time_limit_sec =
      std::min(opts.simplex.time_limit_sec, opts.time_limit_sec);
  BranchAndBound bnb(lp, opts, std::move(heuristic));
  return bnb.run();
}

}  // namespace checkmate::milp
