#include "milp/milp.h"

#include <algorithm>

#include "milp/branch_and_bound.h"

namespace checkmate::milp {

const char* to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kNoSolution: return "no_solution";
    case MilpStatus::kError: return "error";
  }
  return "unknown";
}

const char* to_string(NodeSelection mode) {
  switch (mode) {
    case NodeSelection::kDepthFirst: return "depth_first";
    case NodeSelection::kBestBound: return "best_bound";
    case NodeSelection::kHybrid: return "hybrid";
  }
  return "unknown";
}

MilpResult solve_milp(const lp::LinearProgram& lp, const MilpOptions& options,
                      IncumbentHeuristic heuristic) {
  MilpOptions opts = options;
  // A single node LP must never outlive the overall budget, and the
  // solve-wide deadline / cancel token reach every node LP too.
  opts.simplex.time_limit_sec =
      std::min(opts.simplex.time_limit_sec, opts.time_limit_sec);
  opts.simplex.deadline =
      robust::Deadline::sooner(opts.simplex.deadline, opts.deadline);
  if (!opts.simplex.cancel.active()) opts.simplex.cancel = opts.cancel;

  if (!opts.presolve) return branch_and_bound(lp, opts, heuristic);

  PresolveOptions popts;
  popts.integrality_tol = opts.integrality_tol;
  PresolveResult pre = presolve(lp, popts);
  if (pre.stats.proven_infeasible) {
    MilpResult res;
    res.status = MilpStatus::kInfeasible;
    res.best_bound = lp::kInf;
    res.presolve = pre.stats;
    return res;
  }
  // Columns are identity-mapped through presolve, so incumbents, heuristics
  // and priorities transfer without translation.
  MilpResult res = branch_and_bound(pre.lp, opts, heuristic);
  res.presolve = pre.stats;
  return res;
}

}  // namespace checkmate::milp
