// Mixed-integer linear program solver: branch & bound over the warm-started
// dual simplex engine, with presolve and pseudocost branching.
//
// This is the "off-the-shelf MILP solver" substrate the Checkmate paper
// outsources to Gurobi / COIN-OR CBC; here it is built from scratch. Design
// choices that matter for the rematerialization workload:
//   - a presolve pass (bound propagation, fixings, redundant-row removal)
//     shrinks the LP before the first factorization -- the Checkmate
//     formulation carries many structurally-forced zeros (e.g. the S
//     columns killed by the frontier-advancing constraints);
//   - diving search with configurable node selection: depth-first (LIFO),
//     best-bound, or hybrid (dive to a leaf, then restart from the open
//     node with the best bound). Diving finds good incumbents almost
//     immediately because the partitioned relaxation is tight;
//   - pseudocost branching (with caller priority tiers preserved): observed
//     per-unit objective degradations steer the search toward decisions
//     that move the dual bound; unobserved variables degrade gracefully to
//     most-fractional ordering;
//   - the tree search is an epoch-lockstep deterministic parallel branch &
//     bound (milp/branch_and_bound.h): worker threads each own a simplex
//     engine, nodes warm-start from their parent's basis snapshot, a dive
//     step is a single bound change on the live engine, and results commit
//     in deterministic order at epoch barriers -- node counts and
//     incumbents are bit-identical for any num_threads;
//   - a caller-provided incumbent heuristic (Checkmate plugs in two-phase
//     LP rounding) is invoked on fractional node solutions on an adaptive
//     cadence that backs off while the heuristic fails to improve;
//   - a warm-start incumbent (Checkmate feeds its baseline schedules)
//     enables bound pruning from the very first node.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "lp/lp_problem.h"
#include "lp/simplex.h"
#include "milp/cuts.h"
#include "milp/presolve.h"

namespace checkmate::milp {

enum class NodeSelection {
  kDepthFirst,  // LIFO: dive, backtrack to the most recent open node
  kBestBound,   // always expand the open node with the smallest bound
  kHybrid,      // dive to a leaf, then restart from the best-bound node
};

const char* to_string(NodeSelection mode);

struct MilpOptions {
  double time_limit_sec = 3600.0;
  double relative_gap = 1e-6;
  double integrality_tol = 1e-6;
  int64_t max_nodes = 10'000'000;
  // Deterministic work limit: stop once the cumulative simplex iteration
  // count crosses this value. Unlike the wall-clock limit, runs with the
  // same limit explore identical trees on every machine.
  int64_t max_lp_iterations = std::numeric_limits<int64_t>::max();
  // Run the presolve pass before the search (see milp/presolve.h).
  bool presolve = true;
  // Worker threads for the in-solve tree search (0 = one per hardware
  // thread, clamped to epoch_width). The search is an epoch-lockstep
  // parallel branch & bound (milp/branch_and_bound.h): the explored tree,
  // node counts, incumbents and the deterministic work-limit semantics
  // (max_nodes, max_lp_iterations) are bit-identical for EVERY value of
  // num_threads -- only wall-clock time changes. The one exception is
  // wall-clock truncation itself: a run that hits time_limit_sec stops at
  // a machine-dependent point, exactly as in the serial solver. Values
  // above epoch_width buy nothing (an epoch never has more concurrent
  // node solves than its width).
  int num_threads = 0;
  // Nodes deterministically popped from the shared queue per lockstep
  // epoch. Unlike num_threads this IS part of the search semantics:
  // changing the width changes which nodes are explored (a wider epoch
  // expands more frontier nodes against the same epoch-start incumbent).
  // Values < 1 are clamped to 1.
  int epoch_width = 4;
  // Pseudocost-driven branching; disable to fall back to most-fractional
  // (the pre-overhaul behavior, kept for ablation).
  bool pseudocost_branching = true;
  // Root reduced-cost fixing: after the root LP (and again on every
  // incumbent improvement), permanently fix integer variables whose root
  // reduced cost proves no improving solution exists on the other side of
  // their bound. Fixings feed through the presolve clamp helpers onto the
  // search's working LP, so every later node (and every snapshot restore)
  // inherits them. Deterministic: fixings are derived from committed state
  // only and applied at epoch barriers.
  bool root_reduced_cost_fixing = true;
  NodeSelection node_selection = NodeSelection::kDepthFirst;
  // ---- Branch & cut. Separation needs a structural view of the problem
  // (milp/cuts.h); callers that have one (the Checkmate formulation layer)
  // pass it here, non-owning, and it must outlive the solve. With a
  // structure present and cut_separation on, the search runs rounds of
  // root separation after the root LP, node-local separation inside the
  // worker dives every cut_node_interval depths, and commits/ages the cut
  // pool at epoch barriers in slot order -- all deterministic for any
  // num_threads. Cut rows are appended to the working LP as the pool
  // selects them, and rows whose cut stays slack at the root point for
  // cut_max_age consecutive barriers are physically DELETED again (the
  // working LP carries stable row ids, so parent basis snapshots captured
  // before a deletion remap onto the shrunken LP on restore --
  // lp/simplex.h).
  const FormulationStructure* cut_structure = nullptr;
  bool cut_separation = true;
  // Gomory mixed-integer cuts read from the root simplex tableau,
  // interleaved with the knapsack separators during the root cut rounds
  // (never at tree nodes: tableau cuts derived under branching bounds
  // would only be locally valid). Shares the pool's dedup/aging/selection
  // machinery and the max_cuts_total budget.
  bool gomory_cuts = true;
  // Separation rounds at the root (each round re-solves the root LP on the
  // cut-tightened relaxation and re-separates).
  int max_root_cut_rounds = 8;
  // Cuts appended per root round / per epoch barrier (best by normalized
  // violation, deterministic order).
  int max_cuts_per_round = 24;
  // Hard cap on cut rows appended over the whole search (bounds every
  // engine's basis size).
  int max_cuts_total = 256;
  // Workers separate on the node LP solution every this many dive depths
  // (0 disables node-local separation; the root is always separated).
  int cut_node_interval = 8;
  // Pool entries losing the selection this many barriers in a row are
  // evicted (activity-based aging; re-separation resets the clock).
  int cut_max_age = 4;
  // ---- Reliability branching. Until a variable has this many pseudocost
  // observations per direction it is considered unreliable: the branching
  // candidate scan strong-branches unreliable candidates with
  // objective_limit-capped probe solves on the worker's own engine (the
  // probe stops the moment the dual bound clears the incumbent prune
  // threshold), feeding the observed degradations into the pseudocosts --
  // after which the existing pseudocost machinery takes over. Probes are
  // slot-local pure work committed through the ordinary pseudocost
  // observation channel, so the bit-identity contract is untouched.
  bool reliability_branching = true;
  int reliability = 4;
  // Unreliable candidates probed per node (top of the pseudocost score
  // order within the best priority tier).
  int strong_branch_candidates = 2;
  // Per-probe simplex pivot cap (deterministic, machine-independent).
  int strong_branch_iterations = 50;
  // Total probe budget per solve: once the committed probe count crosses
  // this, the search runs on pseudocosts alone. Counted like the other
  // deterministic work limits (epoch-start committed total plus the
  // slot's own probes), so the cutover point is worker-count invariant.
  int64_t strong_branch_budget = 512;
  // Invoke the incumbent heuristic at the root and then every N nodes; the
  // effective interval backs off exponentially while the heuristic fails
  // to improve the incumbent and snaps back on success.
  int heuristic_interval = 64;
  // Stop as soon as any incumbent is found (feasibility problems, e.g. the
  // max-batch-size search of Section 6.4).
  bool stop_at_first_incumbent = false;
  // Caller-guaranteed lower bound on the optimal objective (-inf = none).
  // Once an incumbent is within relative_gap of this bound the search
  // terminates as optimal-within-gap without proving the bound itself --
  // the Checkmate plan service derives such bounds from budget
  // monotonicity (a smaller budget can only raise the optimum, so the
  // larger budget's proven bound carries over). Soundness is the caller's
  // responsibility: a wrong bound can truncate the search early (it is
  // never used to prune subtrees, only to stop once an incumbent meets it,
  // so a conservative bound merely disables the shortcut).
  double known_lower_bound = -std::numeric_limits<double>::infinity();
  // Optional per-variable branching priority (higher branches first). Empty
  // means uniform.
  std::vector<int> branch_priority;
  // Optional warm-start incumbents (e.g. a feasible baseline schedule, or
  // the plan service's adjacent-budget optimum when sweeping). Every
  // candidate is validated before acceptance and the best feasible one
  // becomes the starting incumbent, enabling bound pruning from the very
  // first node.
  std::vector<std::vector<double>> initial_solutions;
  // Absolute deadline / cancellation token for the whole solve (both
  // default inert). The search *acts* on them only at epoch barriers, so a
  // deadline observed at epoch k terminates with the committed incumbent
  // and bound of epochs <= k -- bit-identical for any num_threads at that
  // epoch; node LPs additionally truncate against them mid-solve (sound,
  // machine-dependent truncation point, like time_limit_sec). Both are
  // forwarded into the simplex options automatically.
  robust::Deadline deadline;
  robust::CancelToken cancel;
  lp::SimplexOptions simplex;
};

enum class MilpStatus {
  kOptimal,        // search completed; incumbent is optimal within gap
  kFeasible,       // stopped early (time/nodes/iterations) with an incumbent
  kInfeasible,     // search completed with no feasible point
  kNoSolution,     // stopped early with no incumbent; inconclusive
  kError,
};

const char* to_string(MilpStatus status);

struct MilpResult {
  MilpStatus status = MilpStatus::kError;
  double objective = lp::kInf;     // incumbent objective
  double best_bound = -lp::kInf;   // global lower bound at termination
  double root_relaxation = lp::kInf;
  std::vector<double> x;           // incumbent (empty if none)
  int64_t nodes = 0;
  int64_t lp_iterations = 0;
  // Variables permanently fixed by root reduced-cost fixing during the
  // search (0 when the option is off or no fixing fired).
  int64_t root_fixings = 0;
  // Cut rows appended to the working LP (root rounds + barrier commits)
  // and strong-branch probe solves performed. Both are part of the
  // deterministic search semantics: bit-identical for any num_threads.
  int64_t cuts_added = 0;
  int64_t strong_branches = 0;
  // Of cuts_added: rows from the Gomory separator, and cut rows later
  // deleted from the working LP by in-LP aging. Deterministic like
  // cuts_added.
  int64_t gomory_cuts = 0;
  int64_t cuts_removed = 0;
  // LP-engine observability (lp/simplex.h LpEngineStats), summed over
  // every node/probe/root-round solve of the search. Deterministic for any
  // num_threads: each slot's engine trajectory is a pure function of its
  // (snapshot, working LP) inputs.
  int64_t lp_refactorizations = 0;
  int64_t lp_ft_updates = 0;
  int64_t lp_ft_growth_refactors = 0;
  int64_t lp_eta_pivots = 0;
  int64_t lp_pricing_resets = 0;
  double seconds = 0.0;
  PresolveStats presolve;          // zeroed when presolve was disabled

  bool has_solution() const { return !x.empty(); }
  double gap() const {
    if (x.empty()) return lp::kInf;
    const double denom = std::max(1e-9, std::abs(objective));
    return (objective - best_bound) / denom;
  }
};

// Given the node LP solution, returns a complete variable assignment that is
// hoped to be MILP-feasible (the solver verifies feasibility and integrality
// before accepting it), or nullopt.
using IncumbentHeuristic =
    std::function<std::optional<std::vector<double>>(const std::vector<double>&)>;

MilpResult solve_milp(const lp::LinearProgram& lp, const MilpOptions& options = {},
                      IncumbentHeuristic heuristic = nullptr);

}  // namespace checkmate::milp
