// Mixed-integer linear program solver: depth-first branch & bound over the
// warm-started dual simplex engine.
//
// This is the "off-the-shelf MILP solver" substrate the Checkmate paper
// outsources to Gurobi / COIN-OR CBC; here it is built from scratch. Design
// choices that matter for the rematerialization workload:
//   - depth-first search with child ordering toward the LP fractional value
//     (the frontier-advancing formulation has a tight relaxation, so diving
//     finds good incumbents almost immediately);
//   - bound changes are applied/undone on a single simplex instance, so
//     every node re-solve is a warm-started dual simplex run;
//   - a caller-provided incumbent heuristic (Checkmate plugs in two-phase
//     LP rounding) is invoked on fractional node solutions;
//   - branching priorities let the caller steer (Checkmate branches on the
//     checkpoint matrix S before the compute matrix R).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "lp/lp_problem.h"
#include "lp/simplex.h"

namespace checkmate::milp {

struct MilpOptions {
  double time_limit_sec = 3600.0;
  double relative_gap = 1e-6;
  double integrality_tol = 1e-6;
  int64_t max_nodes = 10'000'000;
  // Invoke the incumbent heuristic at the root and then every N nodes.
  int heuristic_interval = 64;
  // Stop as soon as any incumbent is found (feasibility problems, e.g. the
  // max-batch-size search of Section 6.4).
  bool stop_at_first_incumbent = false;
  // Optional per-variable branching priority (higher branches first). Empty
  // means uniform.
  std::vector<int> branch_priority;
  // Optional warm-start incumbent (e.g. a feasible baseline schedule). The
  // solver validates it before acceptance; an incumbent enables bound
  // pruning from the very first node.
  std::vector<double> initial_solution;
  lp::SimplexOptions simplex;
};

enum class MilpStatus {
  kOptimal,        // search completed; incumbent is optimal within gap
  kFeasible,       // stopped early (time/nodes) with an incumbent
  kInfeasible,     // search completed with no feasible point
  kNoSolution,     // stopped early with no incumbent; inconclusive
  kError,
};

const char* to_string(MilpStatus status);

struct MilpResult {
  MilpStatus status = MilpStatus::kError;
  double objective = lp::kInf;     // incumbent objective
  double best_bound = -lp::kInf;   // global lower bound at termination
  double root_relaxation = lp::kInf;
  std::vector<double> x;           // incumbent (empty if none)
  int64_t nodes = 0;
  int lp_iterations = 0;
  double seconds = 0.0;

  bool has_solution() const { return !x.empty(); }
  double gap() const {
    if (x.empty()) return lp::kInf;
    const double denom = std::max(1e-9, std::abs(objective));
    return (objective - best_bound) / denom;
  }
};

// Given the node LP solution, returns a complete variable assignment that is
// hoped to be MILP-feasible (the solver verifies feasibility and integrality
// before accepting it), or nullopt.
using IncumbentHeuristic =
    std::function<std::optional<std::vector<double>>(const std::vector<double>&)>;

MilpResult solve_milp(const lp::LinearProgram& lp, const MilpOptions& options = {},
                      IncumbentHeuristic heuristic = nullptr);

}  // namespace checkmate::milp
