#include "milp/presolve.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace checkmate::milp {

namespace {

struct RowView {
  std::vector<int> cols;
  std::vector<double> coefs;
  double lb = -lp::kInf, ub = lp::kInf;
  bool removed = false;
};

// Activity range of a row under current bounds, with infinity counting so
// the one-infinite-term residual trick stays O(1) per entry.
struct Activity {
  double min_finite = 0.0, max_finite = 0.0;
  int min_inf = 0, max_inf = 0;

  double min() const { return min_inf ? -lp::kInf : min_finite; }
  double max() const { return max_inf ? lp::kInf : max_finite; }
};

}  // namespace

PresolveResult presolve(const lp::LinearProgram& input,
                        const PresolveOptions& opt) {
  PresolveResult out;
  PresolveStats& stats = out.stats;
  const int n = input.num_vars();
  const int m = input.num_rows();

  std::vector<double> lo = input.lb, hi = input.ub;

  // Row-wise view with duplicate column entries merged.
  std::vector<RowView> rows(m);
  {
    std::vector<std::unordered_map<int, double>> acc(m);
    for (const lp::Triplet& t : input.entries) acc[t.row][t.col] += t.value;
    for (int r = 0; r < m; ++r) {
      rows[r].lb = input.row_lb[r];
      rows[r].ub = input.row_ub[r];
      for (const auto& [col, coef] : acc[r]) {
        if (coef == 0.0) continue;
        rows[r].cols.push_back(col);
        rows[r].coefs.push_back(coef);
      }
    }
  }

  const double tol = opt.feasibility_tol;
  const double itol = opt.integrality_tol;

  auto round_integer_bounds = [&](int j, double& new_lo, double& new_hi) {
    if (!input.is_integer[j]) return;
    new_lo = std::ceil(new_lo - itol);
    new_hi = std::floor(new_hi + itol);
  };

  // Tightens one side; returns false on proven infeasibility.
  auto tighten = [&](int j, double new_lo, double new_hi) -> bool {
    round_integer_bounds(j, new_lo, new_hi);
    bool changed = false;
    if (new_lo > lo[j] + opt.min_tighten) {
      lo[j] = new_lo;
      changed = true;
    }
    if (new_hi < hi[j] - opt.min_tighten) {
      hi[j] = new_hi;
      changed = true;
    }
    if (lo[j] > hi[j]) {
      if (lo[j] - hi[j] <= tol * std::max(1.0, std::abs(lo[j]))) {
        lo[j] = hi[j];  // numerically-equal bounds: snap to a fixing
      } else {
        stats.proven_infeasible = true;
        return false;
      }
    }
    if (changed) ++stats.bounds_tightened;
    return true;
  };

  auto activity = [&](const RowView& row) {
    Activity a;
    for (size_t e = 0; e < row.cols.size(); ++e) {
      const int j = row.cols[e];
      const double c = row.coefs[e];
      const double at_min = c > 0 ? lo[j] : hi[j];
      const double at_max = c > 0 ? hi[j] : lo[j];
      if (std::isinf(at_min))
        ++a.min_inf;
      else
        a.min_finite += c * at_min;
      if (std::isinf(at_max))
        ++a.max_inf;
      else
        a.max_finite += c * at_max;
    }
    return a;
  };

  bool changed_this_round = true;
  for (int round = 0; round < opt.max_rounds && changed_this_round; ++round) {
    ++stats.rounds;
    changed_this_round = false;
    for (RowView& row : rows) {
      if (row.removed || stats.proven_infeasible) continue;
      const Activity act = activity(row);

      // Infeasible: the reachable activity range misses [lb, ub] entirely.
      if (act.min() > row.ub + tol || act.max() < row.lb - tol) {
        stats.proven_infeasible = true;
        break;
      }
      // Redundant: every bound-feasible point satisfies the row.
      if (act.min() >= row.lb - tol && act.max() <= row.ub + tol) {
        row.removed = true;
        ++stats.rows_removed;
        changed_this_round = true;
        continue;
      }
      // Forcing: the row is only satisfiable at one extreme of every
      // participating variable -- fix them all and drop the row.
      const bool forces_min = !act.min_inf && act.min_finite >= row.ub - tol;
      const bool forces_max = !act.max_inf && act.max_finite <= row.lb + tol;
      if (forces_min || forces_max) {
        for (size_t e = 0; e < row.cols.size(); ++e) {
          const int j = row.cols[e];
          const double c = row.coefs[e];
          const bool at_lower = forces_min ? (c > 0) : (c < 0);
          const double v = at_lower ? lo[j] : hi[j];
          if (std::isinf(v)) continue;  // cannot force onto an infinite bound
          if (!tighten(j, v, v)) break;
        }
        if (stats.proven_infeasible) break;
        row.removed = true;
        ++stats.rows_removed;
        changed_this_round = true;
        continue;
      }

      // Implied per-variable bounds from the residual activity.
      for (size_t e = 0; e < row.cols.size(); ++e) {
        const int j = row.cols[e];
        const double c = row.coefs[e];
        if (lo[j] == hi[j]) continue;

        // Residual min/max of the row without variable j, or +/-inf if some
        // *other* variable contributes an infinity.
        const double at_min = c > 0 ? lo[j] : hi[j];
        const double at_max = c > 0 ? hi[j] : lo[j];
        double res_min = -lp::kInf, res_max = lp::kInf;
        if (act.min_inf == 0)
          res_min = act.min_finite - c * at_min;
        else if (act.min_inf == 1 && std::isinf(at_min))
          res_min = act.min_finite;
        if (act.max_inf == 0)
          res_max = act.max_finite - c * at_max;
        else if (act.max_inf == 1 && std::isinf(at_max))
          res_max = act.max_finite;

        double new_lo = lo[j], new_hi = hi[j];
        if (c > 0) {
          if (!std::isinf(row.ub) && !std::isinf(res_min))
            new_hi = std::min(new_hi, (row.ub - res_min) / c);
          if (!std::isinf(row.lb) && !std::isinf(res_max))
            new_lo = std::max(new_lo, (row.lb - res_max) / c);
        } else {
          if (!std::isinf(row.ub) && !std::isinf(res_min))
            new_lo = std::max(new_lo, (row.ub - res_min) / c);
          if (!std::isinf(row.lb) && !std::isinf(res_max))
            new_hi = std::min(new_hi, (row.lb - res_max) / c);
        }
        const double before_lo = lo[j], before_hi = hi[j];
        if (!tighten(j, new_lo, new_hi)) break;
        if (lo[j] != before_lo || hi[j] != before_hi)
          changed_this_round = true;
      }
      if (stats.proven_infeasible) break;
    }
    if (stats.proven_infeasible) break;
  }

  for (int j = 0; j < n; ++j)
    if (lo[j] == hi[j]) ++stats.vars_fixed;
  if (stats.proven_infeasible) return out;

  // Assemble the reduced program: identical columns, surviving rows only.
  lp::LinearProgram& red = out.lp;
  red.obj = input.obj;
  red.lb = std::move(lo);
  red.ub = std::move(hi);
  red.is_integer = input.is_integer;
  red.var_names = input.var_names;
  std::vector<int> row_map(m, -1);
  for (int r = 0; r < m; ++r) {
    if (rows[r].removed) continue;
    row_map[r] = red.num_rows();
    red.row_lb.push_back(rows[r].lb);
    red.row_ub.push_back(rows[r].ub);
  }
  for (const lp::Triplet& t : input.entries)
    if (row_map[t.row] >= 0)
      red.entries.push_back({row_map[t.row], t.col, t.value});
  return out;
}

bool clamp_upper_bounds(lp::LinearProgram& lp, std::span<const int> vars,
                        double upper, double feasibility_tol) {
  bool feasible = true;
  for (int j : vars) {
    if (upper >= lp.ub[j]) continue;
    if (lp.lb[j] > upper) {
      if (lp.lb[j] - upper <= feasibility_tol * std::max(1.0, std::abs(upper))) {
        lp.ub[j] = lp.lb[j];  // numerically equal: snap to a fixing
        continue;
      }
      feasible = false;
    }
    lp.ub[j] = upper;
  }
  return feasible;
}

bool raise_lower_bounds(lp::LinearProgram& lp, std::span<const int> vars,
                        double lower, double feasibility_tol) {
  bool feasible = true;
  for (int j : vars) {
    if (lower <= lp.lb[j]) continue;
    if (lp.ub[j] < lower) {
      if (lower - lp.ub[j] <= feasibility_tol * std::max(1.0, std::abs(lower))) {
        lp.lb[j] = lp.ub[j];  // numerically equal: snap to a fixing
        continue;
      }
      feasible = false;
    }
    lp.lb[j] = lower;
  }
  return feasible;
}

}  // namespace checkmate::milp
