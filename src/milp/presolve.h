// MILP presolve: shrinks a LinearProgram before branch & bound touches it.
//
// The pass is generic (activity-based bound propagation), but it is tuned
// for the structure the Checkmate formulation exposes:
//   - cascade fixings: S[1][i] <= R[0][i] + S[0][i] degenerates to
//     S[1][i] <= 0 when the right-hand variables do not exist in the
//     partitioned form, and the fixing propagates down the whole first
//     super-diagonal of S (and onward through (1c));
//   - implied bounds on the memory recurrence rows tighten the continuous
//     U variables toward the reachable range;
//   - rows whose activity range already fits inside [row_lb, row_ub] under
//     the tightened bounds are dropped, which shrinks every dual simplex
//     basis the search will ever factorize.
//
// All reductions are valid for the *mixed-integer* feasible set: bounds on
// integer columns are rounded inward, and no reduction relies on LP-only
// reasoning, so every integer-feasible point of the input remains feasible
// in the output. Columns are never renumbered -- fixings are expressed as
// lb == ub -- so solution vectors, incumbent heuristics and branching
// priorities carry over unchanged.
#pragma once

#include <span>

#include "lp/lp_problem.h"

namespace checkmate::milp {

struct PresolveOptions {
  int max_rounds = 16;       // propagation sweeps before giving up on fixpoint
  double feasibility_tol = 1e-9;
  double integrality_tol = 1e-6;
  // Minimum improvement for a continuous-bound tightening to be recorded
  // (avoids churning on epsilon improvements that never fix anything).
  double min_tighten = 1e-7;
};

struct PresolveStats {
  int rounds = 0;
  int vars_fixed = 0;         // columns with lb == ub after the pass
  int bounds_tightened = 0;   // individual bound improvements applied
  int rows_removed = 0;       // redundant rows dropped from the output
  bool proven_infeasible = false;
};

struct PresolveResult {
  // Reduced problem: identical columns (with tightened bounds), redundant
  // rows removed. Meaningless when stats.proven_infeasible.
  lp::LinearProgram lp;
  PresolveStats stats;
};

PresolveResult presolve(const lp::LinearProgram& lp,
                        const PresolveOptions& options = {});

// Rebind API for presolve-artifact reuse across related instances.
//
// Every reduction above is monotone in the variable bounds: if the pass ran
// against bounds B and a caller then *shrinks* some upper bounds (the
// feasible set only shrinks), all removed rows stay redundant and all
// fixings/tightenings stay valid. The plan service exploits this by
// presolving the Checkmate LP once at the largest budget of a sweep and
// clamping the U-variable upper bounds per query instead of re-presolving.
//
// Clamps ub[j] = min(ub[j], upper) for each listed variable. Returns false
// when a clamp proves the instance infeasible (some lb[j] ends up above the
// new upper bound by more than feasibility_tol); the program is left in a
// consistent state with lb[j] == ub[j] snapped for numerically-equal pairs.
bool clamp_upper_bounds(lp::LinearProgram& lp, std::span<const int> vars,
                        double upper, double feasibility_tol = 1e-9);

// Mirror of clamp_upper_bounds for the other side: lb[j] = max(lb[j],
// lower). Branch & bound feeds root reduced-cost fixings through these two
// clamps (fix-to-lower clamps the upper bound, fix-to-upper raises the
// lower bound), so the fixings ride the same monotone-in-bounds argument
// as the plan service's presolve-artifact reuse.
bool raise_lower_bounds(lp::LinearProgram& lp, std::span<const int> vars,
                        double lower, double feasibility_tol = 1e-9);

}  // namespace checkmate::milp
