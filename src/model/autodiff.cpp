#include "model/autodiff.h"

#include <stdexcept>

namespace checkmate::model {

DnnGraph make_training_graph(const DnnGraph& forward,
                             const AutodiffOptions& options) {
  forward.validate();
  for (const Op& op : forward.ops)
    if (op.is_gradient())
      throw std::invalid_argument(
          "make_training_graph: input already contains gradient ops");

  DnnGraph g;
  g.name = forward.name;
  g.dag = forward.dag;
  g.ops = forward.ops;

  const int fwd_count = forward.dag.size();
  std::vector<NodeId> grad_id(fwd_count, -1);

  // Reverse topological order == descending ids (graph is topo labeled).
  for (NodeId v = fwd_count - 1; v >= 0; --v) {
    const Op& fwd_op = forward.ops[v];
    if (fwd_op.kind == OpKind::kInput) continue;  // no gradient for data

    Op gop;
    gop.kind = OpKind::kGradient;
    gop.name = "grad_" + fwd_op.name;
    gop.grad_of = v;
    // The gradient tensor w.r.t. an activation has the activation's shape;
    // the loss gradient seed is scalar-shaped like the loss.
    gop.output = fwd_op.output;
    gop.forward_flops = static_cast<int64_t>(
        static_cast<double>(fwd_op.forward_flops) *
        options.backward_cost_factor);

    const NodeId gv = g.dag.add_node();
    g.ops.push_back(std::move(gop));
    grad_id[v] = gv;

    // Upstream gradients: users of v run later in the forward order, so
    // their gradient nodes were created earlier in this loop.
    for (NodeId u : forward.dag.users(v)) {
      if (grad_id[u] >= 0) g.dag.add_edge(grad_id[u], gv);
    }
    // Activations: own output and direct inputs.
    g.dag.add_edge(v, gv);
    for (NodeId d : forward.dag.deps(v)) g.dag.add_edge(d, gv);
  }

  g.validate();
  return g;
}

}  // namespace checkmate::model
