// Static reverse-mode differentiation at the graph level (Figure 2 of the
// paper: "static reverse mode auto-differentiation" feeding the optimizer).
//
// For each forward op v (except inputs), a gradient op grad(v) is appended.
// Dependencies follow the standard backprop data flow used by Checkmate's
// TensorFlow extractor:
//
//   grad(v) reads  { grad(u) : u in users(v) }   (upstream gradients)
//                  { d : d in deps(v) }          (input activations)
//                  { v }                         (own activation)
//
// Gradient nodes are appended in reverse topological order of their forward
// counterparts, so the combined graph remains topologically labeled. The
// gradient of the loss node is the seed and depends only on the loss value.
#pragma once

#include "model/graph_builder.h"

namespace checkmate::model {

struct AutodiffOptions {
  // Cost multiplier for backward ops relative to forward FLOPs. A conv
  // backward computes both input and weight gradients, roughly 2x the
  // forward cost.
  double backward_cost_factor = 2.0;
};

// Returns a new graph containing the forward graph plus gradient nodes.
// The input graph must be a pure forward graph (no gradient ops) with
// topologically-ordered ids.
DnnGraph make_training_graph(const DnnGraph& forward,
                             const AutodiffOptions& options = {});

}  // namespace checkmate::model
