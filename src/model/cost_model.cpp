#include "model/cost_model.h"

namespace checkmate::model {

namespace {

// Fraction of peak FLOP throughput a kernel of this type achieves.
// Depthwise convolutions are notoriously inefficient; dense GEMMs are good.
double compute_efficiency(OpKind kind) {
  switch (kind) {
    case OpKind::kConv2d: return 0.55;
    case OpKind::kConvBlock: return 0.55;
    case OpKind::kDepthwiseConv2d: return 0.15;
    case OpKind::kDense: return 0.60;
    case OpKind::kUpsample: return 0.45;
    default: return 0.0;  // memory bound
  }
}

bool is_compute_bound(OpKind kind) { return compute_efficiency(kind) > 0.0; }

}  // namespace

std::vector<double> op_costs(const DnnGraph& graph, CostMetric metric,
                             const CostModelOptions& options) {
  std::vector<double> costs(graph.dag.size(), 0.0);
  for (NodeId v = 0; v < graph.dag.size(); ++v) {
    const Op& op = graph.ops[v];
    if (op.kind == OpKind::kInput) {
      costs[v] = 0.0;  // data is read from the host input pipeline
      continue;
    }
    if (metric == CostMetric::kFlops) {
      costs[v] = static_cast<double>(op.forward_flops);
      continue;
    }
    // Profiled-time mode. Gradient ops inherit the efficiency profile of
    // the op they differentiate.
    const OpKind profile_kind =
        op.is_gradient() ? graph.ops[op.grad_of].kind : op.kind;
    double us = options.kernel_overhead_us;
    if (is_compute_bound(profile_kind)) {
      const double peak_flops_per_us = options.peak_tflops * 1e6;
      us += static_cast<double>(op.forward_flops) /
            (compute_efficiency(profile_kind) * peak_flops_per_us);
    } else {
      // Memory bound: read input(s) + write output, approximated as 3x the
      // output bytes, at effective bandwidth.
      const double bytes_per_us =
          options.mem_bandwidth_gbps * options.bandwidth_efficiency * 1e3;
      us += 3.0 * static_cast<double>(op.output_bytes()) / bytes_per_us;
    }
    costs[v] = us;
  }
  return costs;
}

std::vector<int64_t> op_memory_bytes(const DnnGraph& graph) {
  std::vector<int64_t> mem(graph.dag.size(), 0);
  for (NodeId v = 0; v < graph.dag.size(); ++v)
    mem[v] = graph.ops[v].output_bytes();
  return mem;
}

int64_t fixed_overhead_bytes(const DnnGraph& graph) {
  return 2 * graph.total_params() * kBytesPerElement;
}

}  // namespace checkmate::model
