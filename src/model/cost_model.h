// Hardware-aware cost model (Section 4.10).
//
// The paper profiles each layer on the target GPU. This environment has no
// GPU, so the profile is synthesized: per-op FLOPs are derived statically
// from shapes and converted to time with per-op-type efficiency factors and
// a fixed kernel launch overhead (compute-bound ops), or from bytes moved
// and effective bandwidth (memory-bound ops). The model is deterministic, as
// the paper observes real kernel timings to be ("low variance and largely
// independent of the specific input data").
#pragma once

#include <cstdint>
#include <vector>

#include "model/graph_builder.h"

namespace checkmate::model {

enum class CostMetric {
  kFlops,           // raw FLOPs (used for the Figure 6 experiments)
  kProfiledTimeUs,  // synthetic profile: microseconds on a V100-class GPU
};

struct CostModelOptions {
  double peak_tflops = 15.7;         // V100 fp32
  double mem_bandwidth_gbps = 900.0; // V100 HBM2
  double bandwidth_efficiency = 0.75;
  double kernel_overhead_us = 4.0;
};

// Per-node compute costs, indexed by NodeId.
std::vector<double> op_costs(const DnnGraph& graph, CostMetric metric,
                             const CostModelOptions& options = {});

// Per-node output memory in bytes, indexed by NodeId.
std::vector<int64_t> op_memory_bytes(const DnnGraph& graph);

// Constant memory overhead of a training iteration: parameters plus
// reserved space for parameter gradients (Section 4.4, Eq. 2). Input
// tensors are graph nodes here, so they are not double counted.
int64_t fixed_overhead_bytes(const DnnGraph& graph);

}  // namespace checkmate::model
