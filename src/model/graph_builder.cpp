#include "model/graph_builder.h"

#include <stdexcept>

namespace checkmate::model {

std::vector<NodeId> DnnGraph::forward_nodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < dag.size(); ++v)
    if (!ops[v].is_gradient()) out.push_back(v);
  return out;
}

std::vector<NodeId> DnnGraph::backward_nodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < dag.size(); ++v)
    if (ops[v].is_gradient()) out.push_back(v);
  return out;
}

NodeId DnnGraph::terminal() const {
  auto s = dag.sinks();
  if (s.size() != 1)
    throw std::logic_error("DnnGraph::terminal: graph must have one sink");
  return s.front();
}

int64_t DnnGraph::total_params() const {
  int64_t p = 0;
  for (const Op& op : ops)
    if (!op.is_gradient()) p += op.param_count;
  return p;
}

int64_t DnnGraph::input_bytes() const {
  int64_t b = 0;
  for (const Op& op : ops)
    if (op.kind == OpKind::kInput) b += op.output_bytes();
  return b;
}

int64_t DnnGraph::total_forward_activation_bytes() const {
  int64_t b = 0;
  for (const Op& op : ops)
    if (!op.is_gradient() && op.kind != OpKind::kInput) b += op.output_bytes();
  return b;
}

void DnnGraph::validate() const {
  if (static_cast<int>(ops.size()) != dag.size())
    throw std::logic_error("DnnGraph: ops/dag size mismatch");
  dag.validate();
  if (!dag.is_topologically_labeled())
    throw std::logic_error("DnnGraph: ids must be topologically ordered");
}

NodeId GraphBuilder::emit(Op op, std::vector<NodeId> inputs) {
  const NodeId v = dag_.add_node();
  if (op.name.empty()) op.name = std::string(to_string(op.kind)) + "_" +
                                 std::to_string(v);
  ops_.push_back(std::move(op));
  for (NodeId src : inputs) dag_.add_edge(src, v);
  return v;
}

NodeId GraphBuilder::input(TensorShape shape, std::string name) {
  Op op;
  op.kind = OpKind::kInput;
  op.name = std::move(name);
  op.output = std::move(shape);
  op.forward_flops = 0;
  return emit(std::move(op), {});
}

NodeId GraphBuilder::conv2d(NodeId src, int64_t out_channels, int kernel,
                            int stride, std::string name) {
  const TensorShape& in = shape(src);
  if (in.dims.size() != 4)
    throw std::invalid_argument("conv2d: input must be NCHW");
  const int64_t h = (in.height() + stride - 1) / stride;
  const int64_t w = (in.width() + stride - 1) / stride;
  Op op;
  op.kind = OpKind::kConv2d;
  op.name = std::move(name);
  op.output = TensorShape::nchw(in.batch(), out_channels, h, w);
  op.param_count =
      static_cast<int64_t>(kernel) * kernel * in.channels() * out_channels +
      out_channels;
  // 2 * K^2 * Cin * Cout * Hout * Wout * N (+ ReLU, negligible).
  op.forward_flops = 2LL * kernel * kernel * in.channels() * out_channels *
                         h * w * in.batch() +
                     op.output.numel();
  return emit(std::move(op), {src});
}

NodeId GraphBuilder::depthwise_separable(NodeId src, int64_t out_channels,
                                         int kernel, int stride,
                                         std::string name) {
  const TensorShape& in = shape(src);
  const int64_t h = (in.height() + stride - 1) / stride;
  const int64_t w = (in.width() + stride - 1) / stride;
  Op op;
  op.kind = OpKind::kDepthwiseConv2d;
  op.name = std::move(name);
  op.output = TensorShape::nchw(in.batch(), out_channels, h, w);
  op.param_count = static_cast<int64_t>(kernel) * kernel * in.channels() +
                   in.channels() * out_channels + 2 * out_channels;
  // depthwise: 2*K^2*Cin*H*W*N, pointwise: 2*Cin*Cout*H*W*N.
  op.forward_flops =
      2LL * kernel * kernel * in.channels() * h * w * in.batch() +
      2LL * in.channels() * out_channels * h * w * in.batch();
  return emit(std::move(op), {src});
}

NodeId GraphBuilder::conv_block(NodeId src, int64_t out_channels, int kernel,
                                int count, int stride, std::string name) {
  const TensorShape& in = shape(src);
  const int64_t h = (in.height() + stride - 1) / stride;
  const int64_t w = (in.width() + stride - 1) / stride;
  Op op;
  op.kind = OpKind::kConvBlock;
  op.name = std::move(name);
  op.output = TensorShape::nchw(in.batch(), out_channels, h, w);
  const int64_t k2 = static_cast<int64_t>(kernel) * kernel;
  // First conv maps Cin -> Cout; remaining count-1 convs map Cout -> Cout.
  op.param_count = k2 * in.channels() * out_channels + out_channels +
                   (count - 1) * (k2 * out_channels * out_channels + out_channels);
  op.forward_flops =
      2LL * k2 * in.channels() * out_channels * h * w * in.batch() +
      (count - 1) * 2LL * k2 * out_channels * out_channels * h * w * in.batch();
  return emit(std::move(op), {src});
}

NodeId GraphBuilder::bottleneck_block(NodeId src, int64_t out_channels,
                                      int stride, std::string name) {
  const TensorShape& in = shape(src);
  const int64_t mid = out_channels / 4;
  const int64_t h = (in.height() + stride - 1) / stride;
  const int64_t w = (in.width() + stride - 1) / stride;
  Op op;
  op.kind = OpKind::kConvBlock;
  op.name = std::move(name);
  op.output = TensorShape::nchw(in.batch(), out_channels, h, w);
  op.param_count = in.channels() * mid + mid +      // 1x1 reduce
                   9 * mid * mid + mid +            // 3x3
                   mid * out_channels + out_channels;  // 1x1 expand
  op.forward_flops =
      2LL * in.channels() * mid * h * w * in.batch() +
      2LL * 9 * mid * mid * h * w * in.batch() +
      2LL * mid * out_channels * h * w * in.batch();
  return emit(std::move(op), {src});
}

NodeId GraphBuilder::max_pool(NodeId src, int kernel, std::string name) {
  const TensorShape& in = shape(src);
  Op op;
  op.kind = OpKind::kMaxPool;
  op.name = std::move(name);
  op.output = TensorShape::nchw(in.batch(), in.channels(),
                                in.height() / kernel, in.width() / kernel);
  op.forward_flops = in.numel();
  return emit(std::move(op), {src});
}

NodeId GraphBuilder::avg_pool_global(NodeId src, std::string name) {
  const TensorShape& in = shape(src);
  Op op;
  op.kind = OpKind::kAvgPool;
  op.name = std::move(name);
  op.output = TensorShape::flat(in.batch(), in.channels());
  op.forward_flops = in.numel();
  return emit(std::move(op), {src});
}

NodeId GraphBuilder::dense(NodeId src, int64_t units, std::string name) {
  const TensorShape& in = shape(src);
  const int64_t features = in.numel() / in.batch();
  Op op;
  op.kind = OpKind::kDense;
  op.name = std::move(name);
  op.output = TensorShape::flat(in.batch(), units);
  op.param_count = features * units + units;
  op.forward_flops = 2LL * features * units * in.batch();
  return emit(std::move(op), {src});
}

NodeId GraphBuilder::relu(NodeId src, std::string name) {
  Op op;
  op.kind = OpKind::kRelu;
  op.name = std::move(name);
  op.output = shape(src);
  op.forward_flops = op.output.numel();
  return emit(std::move(op), {src});
}

NodeId GraphBuilder::batch_norm(NodeId src, std::string name) {
  Op op;
  op.kind = OpKind::kBatchNorm;
  op.name = std::move(name);
  op.output = shape(src);
  op.param_count = 2 * shape(src).channels();
  op.forward_flops = 4 * op.output.numel();
  return emit(std::move(op), {src});
}

NodeId GraphBuilder::add(NodeId a, NodeId b, std::string name) {
  if (!(shape(a) == shape(b)))
    throw std::invalid_argument("add: shape mismatch " +
                                shape(a).to_string() + " vs " +
                                shape(b).to_string());
  Op op;
  op.kind = OpKind::kAdd;
  op.name = std::move(name);
  op.output = shape(a);
  op.forward_flops = op.output.numel();
  return emit(std::move(op), {a, b});
}

NodeId GraphBuilder::concat(NodeId a, NodeId b, std::string name) {
  const TensorShape& sa = shape(a);
  const TensorShape& sb = shape(b);
  if (sa.dims.size() != 4 || sb.dims.size() != 4 ||
      sa.height() != sb.height() || sa.width() != sb.width() ||
      sa.batch() != sb.batch())
    throw std::invalid_argument("concat: incompatible shapes " +
                                sa.to_string() + " vs " + sb.to_string());
  Op op;
  op.kind = OpKind::kConcat;
  op.name = std::move(name);
  op.output = TensorShape::nchw(sa.batch(), sa.channels() + sb.channels(),
                                sa.height(), sa.width());
  op.forward_flops = op.output.numel();
  return emit(std::move(op), {a, b});
}

NodeId GraphBuilder::upsample(NodeId src, int64_t out_channels,
                              std::string name) {
  const TensorShape& in = shape(src);
  Op op;
  op.kind = OpKind::kUpsample;
  op.name = std::move(name);
  op.output = TensorShape::nchw(in.batch(), out_channels, in.height() * 2,
                                in.width() * 2);
  op.param_count = 4LL * in.channels() * out_channels + out_channels;  // 2x2
  op.forward_flops = 2LL * 4 * in.channels() * out_channels *
                     op.output.height() * op.output.width() * in.batch() / 4;
  return emit(std::move(op), {src});
}

NodeId GraphBuilder::loss(NodeId src, std::string name) {
  Op op;
  op.kind = OpKind::kLoss;
  op.name = std::move(name);
  op.output = TensorShape::scalar();
  op.forward_flops = 5 * shape(src).numel();
  return emit(std::move(op), {src});
}

DnnGraph GraphBuilder::build() && {
  DnnGraph g;
  g.name = std::move(name_);
  g.dag = std::move(dag_);
  g.ops = std::move(ops_);
  g.validate();
  return g;
}

}  // namespace checkmate::model
