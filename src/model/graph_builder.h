// Forward data-flow graph construction for DNN architectures.
//
// GraphBuilder offers a Keras-like layer API; each call appends a node to
// the DAG with its output shape, parameter count and forward FLOPs computed
// from the input shapes (Section 4.10: costs and memory are static functions
// of shape). Node ids are assigned in construction order, which is a
// topological order by construction.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "model/op.h"

namespace checkmate::model {

// A forward (or, after autodiff, forward+backward) DNN graph.
struct DnnGraph {
  std::string name;
  Graph dag;
  std::vector<Op> ops;  // indexed by NodeId

  std::vector<NodeId> forward_nodes() const;
  std::vector<NodeId> backward_nodes() const;
  // The unique sink (requires autodiff graphs to be well-formed).
  NodeId terminal() const;

  int64_t total_params() const;
  int64_t input_bytes() const;
  // Sum of all forward activation bytes (the "Features" bar of Figure 3).
  int64_t total_forward_activation_bytes() const;

  void validate() const;
};

class GraphBuilder {
 public:
  explicit GraphBuilder(std::string model_name)
      : name_(std::move(model_name)) {}

  NodeId input(TensorShape shape, std::string name = "input");

  // Convolution with fused bias + ReLU; 'same' padding.
  NodeId conv2d(NodeId src, int64_t out_channels, int kernel, int stride = 1,
                std::string name = {});
  // Depthwise separable convolution block: depthwise KxK + pointwise 1x1.
  NodeId depthwise_separable(NodeId src, int64_t out_channels, int kernel,
                             int stride = 1, std::string name = {});
  // Fused stack of `count` same-shape convs (coarsened granularity).
  NodeId conv_block(NodeId src, int64_t out_channels, int kernel, int count,
                    int stride = 1, std::string name = {});
  // Fused ResNet bottleneck branch: 1x1 reduce to out_channels/4, 3x3 at
  // out_channels/4, 1x1 expand to out_channels.
  NodeId bottleneck_block(NodeId src, int64_t out_channels, int stride = 1,
                          std::string name = {});
  NodeId max_pool(NodeId src, int kernel = 2, std::string name = {});
  NodeId avg_pool_global(NodeId src, std::string name = {});
  NodeId dense(NodeId src, int64_t units, std::string name = {});
  NodeId relu(NodeId src, std::string name = {});
  NodeId batch_norm(NodeId src, std::string name = {});
  NodeId add(NodeId a, NodeId b, std::string name = {});
  NodeId concat(NodeId a, NodeId b, std::string name = {});
  // 2x spatial upsampling via transposed conv.
  NodeId upsample(NodeId src, int64_t out_channels, std::string name = {});
  NodeId loss(NodeId src, std::string name = "loss");

  const TensorShape& shape(NodeId v) const { return ops_.at(v).output; }

  // Finalizes and validates the forward graph.
  DnnGraph build() &&;

 private:
  NodeId emit(Op op, std::vector<NodeId> inputs);

  std::string name_;
  Graph dag_;
  std::vector<Op> ops_;
};

}  // namespace checkmate::model
