#include "model/model_stats.h"

#include "model/autodiff.h"
#include "model/cost_model.h"
#include "model/zoo.h"

namespace checkmate::model {

namespace {

constexpr int64_t kMiB = 1024 * 1024;
constexpr int64_t kGiB = 1024 * kMiB;

ModelMemoryStats from_graph(const DnnGraph& g, int year, int64_t batch,
                            int64_t gpu_limit) {
  ModelMemoryStats s;
  s.name = g.name;
  s.year = year;
  s.batch = batch;
  s.features_bytes = g.total_forward_activation_bytes() + g.input_bytes();
  s.param_bytes = g.total_params() * kBytesPerElement;
  s.param_grad_bytes = s.param_bytes;
  // cuDNN-style scratch: a fraction of the largest activation.
  int64_t largest = 0;
  for (const Op& op : g.ops) largest = std::max(largest, op.output_bytes());
  s.workspace_bytes = largest / 2;
  s.gpu_limit_bytes = gpu_limit;
  return s;
}

// Analytic entry: parameters from the literature; features estimated as
// activation_floats_per_example * batch * 4 bytes.
ModelMemoryStats analytic(std::string name, int year, int64_t batch,
                          int64_t params_m, int64_t act_mfloats_per_example,
                          int64_t gpu_limit) {
  ModelMemoryStats s;
  s.name = std::move(name);
  s.year = year;
  s.batch = batch;
  s.param_bytes = params_m * 1000000 * kBytesPerElement;
  s.param_grad_bytes = s.param_bytes;
  s.features_bytes =
      act_mfloats_per_example * 1000000 * batch * kBytesPerElement;
  s.workspace_bytes = s.features_bytes / 20;
  s.gpu_limit_bytes = gpu_limit;
  return s;
}

}  // namespace

std::vector<ModelMemoryStats> figure3_model_stats() {
  std::vector<ModelMemoryStats> out;
  // Batch sizes follow the published training configurations; activation
  // estimates (M floats / example) are derived from layer-by-layer output
  // shapes in the respective papers. The bars land near each GPU's limit,
  // matching the figure's "memory wall" reading.
  // AlexNet, 2012: 61M params, batch 128+augmented; 2x GTX 580 (3 GB).
  out.push_back(analytic("AlexNet", 2012, 256, 61, 2, 3 * kGiB));
  // VGG19, 2014: measured from the zoo graph; Titan Black, 6 GB.
  out.push_back(from_graph(zoo::vgg19(64, 224, /*coarse=*/false), 2014, 64,
                           6 * kGiB));
  // Inception v3, 2015: 24M params, batch 96; K40 12 GB.
  out.push_back(analytic("Inception v3", 2015, 96, 24, 25, 12 * kGiB));
  // ResNet-152, 2015: 60M params, deep activation stack; 12 GB.
  out.push_back(analytic("ResNet-152", 2015, 64, 60, 35, 12 * kGiB));
  // DenseNet-201, 2016: 20M params but dense concatenations; 12 GB.
  out.push_back(analytic("DenseNet-201", 2016, 64, 20, 40, 12 * kGiB));
  // ResNeXt-101, 2016: 44M params; 12 GB.
  out.push_back(analytic("ResNeXt-101", 2016, 64, 44, 38, 12 * kGiB));
  // FCN8s, 2017: measured from the zoo graph at 512x512; 12 GB.
  out.push_back(from_graph(zoo::fcn8(32, 512, 512), 2017, 32, 12 * kGiB));
  // Transformer (base), 2017: 65M params, seq 512, batch ~128; P100 16 GB.
  out.push_back(analytic("Transformer", 2017, 128, 65, 25, 16 * kGiB));
  // RoBERTa (large), 2018: 355M params; V100 32 GB.
  out.push_back(analytic("RoBERTa", 2018, 32, 355, 160, 32 * kGiB));
  // BigGAN, 2018: 112M params, 512x512 generator; TPU v3 core 16 GB.
  out.push_back(analytic("BigGAN", 2018, 24, 112, 110, 16 * kGiB));
  return out;
}

}  // namespace checkmate::model
