// Memory-breakdown statistics for Figure 3: bytes consumed by features
// (activations), parameters, parameter gradients and workspace for popular
// architectures, against the memory limit of the GPU each was trained on.
//
// Zoo architectures are measured from their actual graphs; architectures
// outside the zoo (Inception v3, ResNeXt, Transformer, RoBERTa, BigGAN,
// DenseNet, ResNet-152, AlexNet) use analytic parameter counts from the
// literature and activation estimates at the publication batch size
// (DESIGN.md substitution (e)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace checkmate::model {

struct ModelMemoryStats {
  std::string name;
  int year = 0;
  int64_t batch = 0;
  int64_t features_bytes = 0;
  int64_t param_bytes = 0;
  int64_t param_grad_bytes = 0;
  int64_t workspace_bytes = 0;
  int64_t gpu_limit_bytes = 0;  // dashed line in Figure 3

  int64_t total_bytes() const {
    return features_bytes + param_bytes + param_grad_bytes + workspace_bytes;
  }
};

// The ten models of Figure 3, in publication order.
std::vector<ModelMemoryStats> figure3_model_stats();

}  // namespace checkmate::model
