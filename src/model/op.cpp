#include "model/op.h"

namespace checkmate::model {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "input";
    case OpKind::kConv2d: return "conv2d";
    case OpKind::kDepthwiseConv2d: return "dw_conv2d";
    case OpKind::kConvBlock: return "conv_block";
    case OpKind::kMaxPool: return "max_pool";
    case OpKind::kAvgPool: return "avg_pool";
    case OpKind::kDense: return "dense";
    case OpKind::kBatchNorm: return "batch_norm";
    case OpKind::kRelu: return "relu";
    case OpKind::kAdd: return "add";
    case OpKind::kConcat: return "concat";
    case OpKind::kUpsample: return "upsample";
    case OpKind::kLoss: return "loss";
    case OpKind::kGradient: return "gradient";
  }
  return "unknown";
}

}  // namespace checkmate::model
