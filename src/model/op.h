// Operator descriptors for data-flow graph nodes: kind, output shape,
// parameter count, and statically-derived forward FLOPs.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "model/shape.h"

namespace checkmate::model {

enum class OpKind {
  kInput,
  kConv2d,          // conv (+ bias + fused ReLU)
  kDepthwiseConv2d,
  kConvBlock,       // fused stack of convs (coarsened granularity)
  kMaxPool,
  kAvgPool,
  kDense,
  kBatchNorm,
  kRelu,
  kAdd,             // elementwise residual add
  kConcat,          // channel concatenation (skip connections)
  kUpsample,        // 2x transposed conv / unpooling
  kLoss,            // softmax + loss reduction
  kGradient,        // backward op (created by autodiff)
};

const char* to_string(OpKind kind);

struct Op {
  OpKind kind = OpKind::kInput;
  std::string name;
  TensorShape output;
  int64_t param_count = 0;
  int64_t forward_flops = 0;

  // For gradient nodes: the forward node this op differentiates.
  NodeId grad_of = -1;
  bool is_gradient() const { return kind == OpKind::kGradient; }

  int64_t output_bytes() const { return output.bytes(); }
};

}  // namespace checkmate::model
