#include "model/shape.h"

namespace checkmate::model {

std::string TensorShape::to_string() const {
  if (dims.empty()) return "[]";
  std::string out = "[";
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i) out += "x";
    out += std::to_string(dims[i]);
  }
  out += "]";
  return out;
}

}  // namespace checkmate::model
