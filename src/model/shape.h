// Tensor shapes for the DNN model zoo. Values are dense single-precision
// tensors (4 bytes/element), matching the paper's memory accounting
// (Section 4.10).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace checkmate::model {

inline constexpr int64_t kBytesPerElement = 4;  // fp32

struct TensorShape {
  // NCHW for feature maps; {n, features} for dense layers; empty for
  // scalars (e.g. loss).
  std::vector<int64_t> dims;

  TensorShape() = default;
  TensorShape(std::initializer_list<int64_t> d) : dims(d) {}

  static TensorShape nchw(int64_t n, int64_t c, int64_t h, int64_t w) {
    return TensorShape{n, c, h, w};
  }
  static TensorShape flat(int64_t n, int64_t features) {
    return TensorShape{n, features};
  }
  static TensorShape scalar() { return TensorShape{}; }

  int64_t numel() const {
    int64_t p = 1;
    for (int64_t d : dims) p *= d;
    return p;
  }
  int64_t bytes() const { return numel() * kBytesPerElement; }

  int64_t batch() const { return dims.empty() ? 1 : dims[0]; }
  int64_t channels() const { return dims.size() == 4 ? dims[1] : 0; }
  int64_t height() const { return dims.size() == 4 ? dims[2] : 0; }
  int64_t width() const { return dims.size() == 4 ? dims[3] : 0; }

  std::string to_string() const;

  friend bool operator==(const TensorShape&, const TensorShape&) = default;
};

}  // namespace checkmate::model
