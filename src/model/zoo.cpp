#include "model/zoo.h"

namespace checkmate::model::zoo {

DnnGraph linear_net(int layers, int64_t batch, int64_t channels,
                    int64_t spatial) {
  GraphBuilder b("linear_net_" + std::to_string(layers));
  NodeId x = b.input(TensorShape::nchw(batch, channels, spatial, spatial));
  for (int i = 0; i < layers; ++i)
    x = b.conv2d(x, channels, 3, 1, "conv" + std::to_string(i + 1));
  b.loss(x);
  return std::move(b).build();
}

namespace {

// Shared VGG-style trunk. `stage_convs` gives the number of 3x3 convs per
// stage; channel widths are the standard 64..512 doubling.
NodeId vgg_trunk(GraphBuilder& b, NodeId x, std::array<int, 5> stage_convs,
                 bool coarse) {
  const int64_t widths[5] = {64, 128, 256, 512, 512};
  for (int s = 0; s < 5; ++s) {
    if (coarse) {
      x = b.conv_block(x, widths[s], 3, stage_convs[s],
                       1, "conv" + std::to_string(s + 1));
    } else {
      for (int i = 0; i < stage_convs[s]; ++i)
        x = b.conv2d(x, widths[s], 3, 1,
                     "conv" + std::to_string(s + 1) + "_" +
                         std::to_string(i + 1));
    }
    x = b.max_pool(x, 2, "pool" + std::to_string(s + 1));
  }
  return x;
}

DnnGraph vgg(std::string name, std::array<int, 5> stage_convs, int64_t batch,
             int64_t resolution, bool coarse) {
  GraphBuilder b(std::move(name));
  NodeId x = b.input(TensorShape::nchw(batch, 3, resolution, resolution));
  x = vgg_trunk(b, x, stage_convs, coarse);
  x = b.dense(x, 4096, "fc1");
  x = b.dense(x, 4096, "fc2");
  x = b.dense(x, 1000, "predictions");
  b.loss(x);
  return std::move(b).build();
}

}  // namespace

DnnGraph vgg16(int64_t batch, int64_t resolution, bool coarse) {
  return vgg("VGG16", {2, 2, 3, 3, 3}, batch, resolution, coarse);
}

DnnGraph vgg19(int64_t batch, int64_t resolution, bool coarse) {
  return vgg("VGG19", {2, 2, 4, 4, 4}, batch, resolution, coarse);
}

DnnGraph mobilenet_v1(int64_t batch, int64_t resolution) {
  GraphBuilder b("MobileNet");
  NodeId x = b.input(TensorShape::nchw(batch, 3, resolution, resolution));
  x = b.conv2d(x, 32, 3, 2, "conv1");
  struct Stage {
    int64_t channels;
    int stride;
  };
  const Stage stages[] = {{64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},
                          {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
                          {512, 1}, {1024, 2}, {1024, 1}};
  int i = 2;
  for (const Stage& s : stages)
    x = b.depthwise_separable(x, s.channels, 3, s.stride,
                              "ds" + std::to_string(i++));
  x = b.avg_pool_global(x, "gap");
  x = b.dense(x, 1000, "predictions");
  b.loss(x);
  return std::move(b).build();
}

DnnGraph resnet(int64_t batch, int64_t resolution,
                std::array<int, 4> stage_blocks) {
  const bool full = stage_blocks == std::array<int, 4>{3, 4, 6, 3};
  GraphBuilder b(full ? "ResNet50" : "ResNet50-coarse");
  NodeId x = b.input(TensorShape::nchw(batch, 3, resolution, resolution));
  x = b.conv2d(x, 64, 7, 2, "stem");
  x = b.max_pool(x, 2, "stem_pool");
  const int64_t widths[4] = {256, 512, 1024, 2048};
  for (int s = 0; s < 4; ++s) {
    for (int blk = 0; blk < stage_blocks[s]; ++blk) {
      const bool downsample = (blk == 0);
      const int stride = (downsample && s > 0) ? 2 : 1;
      const std::string tag =
          "s" + std::to_string(s + 1) + "b" + std::to_string(blk + 1);
      NodeId branch = b.bottleneck_block(x, widths[s], stride,
                                         tag + "_branch");
      NodeId shortcut = x;
      if (downsample)
        shortcut = b.conv2d(x, widths[s], 1, stride, tag + "_proj");
      x = b.add(branch, shortcut, tag + "_add");
    }
  }
  x = b.avg_pool_global(x, "gap");
  x = b.dense(x, 1000, "predictions");
  b.loss(x);
  return std::move(b).build();
}

DnnGraph unet(int64_t batch, int64_t height, int64_t width) {
  GraphBuilder b("U-Net");
  NodeId x = b.input(TensorShape::nchw(batch, 3, height, width));
  // Encoder: double-conv blocks with pooling; skips retained for decoder.
  NodeId enc[4];
  const int64_t widths[4] = {64, 128, 256, 512};
  for (int level = 0; level < 4; ++level) {
    x = b.conv_block(x, widths[level], 3, 2,
                     1, "enc" + std::to_string(level + 1));
    enc[level] = x;
    x = b.max_pool(x, 2, "pool" + std::to_string(level + 1));
  }
  x = b.conv_block(x, 1024, 3, 2, 1, "bottleneck");
  // Decoder: upsample, concat skip, double conv.
  for (int level = 3; level >= 0; --level) {
    const std::string tag = "dec" + std::to_string(level + 1);
    x = b.upsample(x, widths[level], tag + "_up");
    x = b.concat(x, enc[level], tag + "_cat");
    x = b.conv_block(x, widths[level], 3, 2, 1, tag);
  }
  x = b.conv2d(x, 21, 1, 1, "segmentation_head");
  b.loss(x);
  return std::move(b).build();
}

DnnGraph fcn8(int64_t batch, int64_t height, int64_t width) {
  GraphBuilder b("FCN8");
  NodeId x = b.input(TensorShape::nchw(batch, 3, height, width));
  const int64_t widths[5] = {64, 128, 256, 512, 512};
  const int convs[5] = {2, 2, 3, 3, 3};
  NodeId pool3 = -1, pool4 = -1;
  for (int s = 0; s < 5; ++s) {
    x = b.conv_block(x, widths[s], 3, convs[s], 1,
                     "conv" + std::to_string(s + 1));
    x = b.max_pool(x, 2, "pool" + std::to_string(s + 1));
    if (s == 2) pool3 = x;
    if (s == 3) pool4 = x;
  }
  x = b.conv2d(x, 4096, 7, 1, "fc6");
  x = b.conv2d(x, 4096, 1, 1, "fc7");
  NodeId score7 = b.conv2d(x, 21, 1, 1, "score_fr");
  NodeId up7 = b.upsample(score7, 21, "upscore2");
  NodeId score4 = b.conv2d(pool4, 21, 1, 1, "score_pool4");
  NodeId fuse4 = b.add(up7, score4, "fuse_pool4");
  NodeId up4 = b.upsample(fuse4, 21, "upscore4");
  NodeId score3 = b.conv2d(pool3, 21, 1, 1, "score_pool3");
  NodeId fuse3 = b.add(up4, score3, "fuse_pool3");
  // Final 8x upsample to input resolution, modeled as three 2x steps fused
  // into successive upsample nodes.
  NodeId up = b.upsample(fuse3, 21, "upscore8_a");
  up = b.upsample(up, 21, "upscore8_b");
  up = b.upsample(up, 21, "upscore8_c");
  b.loss(up);
  return std::move(b).build();
}

DnnGraph segnet(int64_t batch, int64_t height, int64_t width) {
  GraphBuilder b("SegNet");
  NodeId x = b.input(TensorShape::nchw(batch, 3, height, width));
  const int64_t enc_widths[5] = {64, 128, 256, 512, 512};
  const int enc_convs[5] = {2, 2, 3, 3, 3};
  for (int s = 0; s < 5; ++s) {
    x = b.conv_block(x, enc_widths[s], 3, enc_convs[s], 1,
                     "enc" + std::to_string(s + 1));
    x = b.max_pool(x, 2, "pool" + std::to_string(s + 1));
  }
  const int64_t dec_widths[5] = {512, 256, 128, 64, 64};
  for (int s = 0; s < 5; ++s) {
    x = b.upsample(x, dec_widths[s], "up" + std::to_string(5 - s));
    x = b.conv_block(x, dec_widths[s], 3, enc_convs[4 - s], 1,
                     "dec" + std::to_string(5 - s));
  }
  x = b.conv2d(x, 21, 1, 1, "segmentation_head");
  b.loss(x);
  return std::move(b).build();
}

DnnGraph transformer_stack(int blocks, int64_t batch, int64_t d_model,
                           int64_t seq_len) {
  GraphBuilder b("Transformer-" + std::to_string(blocks));
  // Tokens as 1x1-conv spatial positions: a pointwise conv over a
  // (d_model, seq_len, 1) map is exactly a per-token linear layer.
  NodeId x = b.input(TensorShape::nchw(batch, d_model, seq_len, 1));
  x = b.conv2d(x, d_model, 1, 1, "embed");
  for (int blk = 1; blk <= blocks; ++blk) {
    const std::string tag = "blk" + std::to_string(blk);
    // Fused attention sublayer (QKV + output projection) + residual.
    NodeId attn = b.conv2d(x, d_model, 1, 1, tag + "_attn");
    x = b.add(x, attn, tag + "_attn_res");
    // 4x-expand MLP sublayer + residual.
    NodeId up = b.conv2d(x, 4 * d_model, 1, 1, tag + "_mlp_up");
    NodeId down = b.conv2d(up, d_model, 1, 1, tag + "_mlp_down");
    x = b.add(x, down, tag + "_mlp_res");
  }
  x = b.avg_pool_global(x, "pool");
  x = b.dense(x, 1000, "head");
  b.loss(x);
  return std::move(b).build();
}

}  // namespace checkmate::model::zoo
