// Forward-graph builders for the architectures evaluated in the paper
// (Section 6): VGG16/19, MobileNet v1, ResNet-50, U-Net, FCN8 and SegNet,
// plus parameterized linear chains used by Figure 1 and the Appendix A
// integrality-gap study.
//
// Granularity note (DESIGN.md substitution (a)): graphs are built at fused
// per-layer granularity (conv+bias+relu as one node; optionally whole conv
// stacks as one node) to keep exact-MILP instances tractable for the
// from-scratch solver. `coarse = false` expands conv stacks into individual
// layers.
#pragma once

#include <array>

#include "model/graph_builder.h"

namespace checkmate::model::zoo {

// Uniform convolutional chain: `layers` conv ops on a fixed-size feature
// map. Used for Figure 1 (32-layer network) and small solver studies.
DnnGraph linear_net(int layers, int64_t batch = 32, int64_t channels = 64,
                    int64_t spatial = 56);

DnnGraph vgg16(int64_t batch, int64_t resolution = 224, bool coarse = true);
DnnGraph vgg19(int64_t batch, int64_t resolution = 224, bool coarse = true);
DnnGraph mobilenet_v1(int64_t batch, int64_t resolution = 224);

// Bottleneck-residual network. `stage_blocks` = residual blocks per stage;
// {3,4,6,3} is ResNet-50. Each block is two nodes (fused branch + add),
// preserving the non-linear residual structure the paper highlights.
DnnGraph resnet(int64_t batch, int64_t resolution = 224,
                std::array<int, 4> stage_blocks = {3, 4, 6, 3});

DnnGraph unet(int64_t batch, int64_t height = 416, int64_t width = 608);
DnnGraph fcn8(int64_t batch, int64_t height = 416, int64_t width = 608);
DnnGraph segnet(int64_t batch, int64_t height = 416, int64_t width = 608);

// Pre-norm transformer encoder stack at fused per-sublayer granularity:
// each block is attention-projection + residual add + 4x-expand MLP
// (up-projection, down-projection) + residual add, with tokens laid out as
// 1x1-conv spatial positions so every linear is a pointwise conv. 20
// blocks give a >= 200-stage training graph -- the deep-instance family
// the retention-interval backend exists for (the dense backend cannot
// even root-solve at this depth).
DnnGraph transformer_stack(int blocks, int64_t batch = 8,
                           int64_t d_model = 256, int64_t seq_len = 128);

}  // namespace checkmate::model::zoo
