// Deadlines and cooperative cancellation for the solve pipeline.
//
// A Deadline is an absolute point on the steady clock (so it composes
// across nested components without re-counting elapsed time); a
// CancelToken is a shared flag a caller can flip to abandon work early.
// Both are cheap value types designed to be copied into options structs:
// the default-constructed instances are inert (never expire / never
// cancelled), so existing call sites pay nothing.
//
// Determinism contract: the tree search only *acts* on deadline expiry and
// cancellation at epoch barriers (milp/branch_and_bound.cpp), so a
// deadline hit observed at epoch k yields the committed incumbent/bound of
// epochs <= k -- identical for any worker-thread count. Inside a node's LP
// the deadline truncates the simplex iteration loop on a cheap stride;
// like the wall-clock time limit this makes *where* truncation lands
// machine-dependent, but never unsound: truncated solves report
// kIterationLimit with a valid dual bound.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

namespace checkmate::robust {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // Default: never expires.
  Deadline() = default;

  static Deadline never() { return Deadline(); }

  // Expires `seconds` from now. Non-positive values are already expired.
  static Deadline after(double seconds) {
    Deadline d;
    d.finite_ = true;
    d.when_ = Clock::now() + to_duration(seconds);
    return d;
  }

  static Deadline at(Clock::time_point tp) {
    Deadline d;
    d.finite_ = true;
    d.when_ = tp;
    return d;
  }

  bool finite() const { return finite_; }

  // Seconds until expiry; +inf for a never-deadline, exactly 0 once
  // expired (clamped: callers divide this into per-point budgets and must
  // never see a negative share).
  double remaining_sec() const {
    if (!finite_) return std::numeric_limits<double>::infinity();
    const double rem =
        std::chrono::duration<double>(when_ - Clock::now()).count();
    return rem > 0.0 ? rem : 0.0;
  }

  bool expired() const { return finite_ && Clock::now() >= when_; }

  // The earlier of two deadlines (never-deadlines are the identity).
  static Deadline sooner(const Deadline& a, const Deadline& b) {
    if (!a.finite_) return b;
    if (!b.finite_) return a;
    return a.when_ <= b.when_ ? a : b;
  }

 private:
  static Clock::duration to_duration(double seconds) {
    if (seconds <= 0.0) return Clock::duration::zero();
    const double max_sec =
        std::chrono::duration<double>(Clock::duration::max()).count() * 0.5;
    if (seconds > max_sec) seconds = max_sec;
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  }

  Clock::time_point when_{};
  bool finite_ = false;
};

// Shared cancellation flag. Copies share the flag; the default-constructed
// token has no flag and can never report cancellation (zero-cost inert).
class CancelToken {
 public:
  CancelToken() = default;

  // A fresh, uncancelled token backed by a real flag.
  static CancelToken make() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  void cancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  bool active() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace checkmate::robust
