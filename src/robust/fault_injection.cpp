#include "robust/fault_injection.h"

namespace checkmate::robust {

const char* to_string(FaultPoint point) {
  switch (point) {
    case FaultPoint::kLuFactorize: return "lu_factorize";
    case FaultPoint::kSnapshotRestore: return "snapshot_restore";
    case FaultPoint::kCutRowAppend: return "cut_row_append";
    case FaultPoint::kSparseAlloc: return "sparse_alloc";
    case FaultPoint::kWorkerStall: return "worker_stall";
    case FaultPoint::kStoreWriteTorn: return "store_write_torn";
    case FaultPoint::kStoreReadCorrupt: return "store_read_corrupt";
    case FaultPoint::kStoreRenameFail: return "store_rename_fail";
    case FaultPoint::kFsyncFail: return "fsync_fail";
    case FaultPoint::kNumFaultPoints: break;
  }
  return "unknown";
}

#ifdef CHECKMATE_FAULT_INJECTION

namespace {

// splitmix64: cheap, well-mixed hash of (seed, counter).
uint64_t mix(uint64_t seed, uint64_t x) {
  uint64_t z = seed + x * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(FaultPoint point, uint64_t seed, uint64_t period,
                        uint64_t limit) {
  Slot& s = slots_[static_cast<int>(point)];
  s.seed = seed;
  s.period = period == 0 ? 1 : period;
  s.limit = limit;
  s.hits.store(0, std::memory_order_relaxed);
  s.fired.store(0, std::memory_order_relaxed);
  s.armed.store(true, std::memory_order_release);
}

void FaultInjector::disarm(FaultPoint point) {
  slots_[static_cast<int>(point)].armed.store(false,
                                              std::memory_order_release);
}

void FaultInjector::disarm_all() {
  for (Slot& s : slots_) s.armed.store(false, std::memory_order_release);
}

bool FaultInjector::should_fail(FaultPoint point) {
  Slot& s = slots_[static_cast<int>(point)];
  if (!s.armed.load(std::memory_order_acquire)) return false;
  const uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed);
  if (mix(s.seed, hit) % s.period != 0) return false;
  if (s.limit != 0) {
    // Claim one of the limited firings; later claimants pass through.
    const uint64_t n = s.fired.fetch_add(1, std::memory_order_relaxed);
    if (n >= s.limit) return false;
    return true;
  }
  s.fired.fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint64_t FaultInjector::hits(FaultPoint point) const {
  return slots_[static_cast<int>(point)].hits.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::fired(FaultPoint point) const {
  const uint64_t f =
      slots_[static_cast<int>(point)].fired.load(std::memory_order_relaxed);
  const uint64_t lim = slots_[static_cast<int>(point)].limit;
  return lim != 0 && f > lim ? lim : f;
}

#endif  // CHECKMATE_FAULT_INJECTION

}  // namespace checkmate::robust
