// Deterministic fault injection for the chaos test tier.
//
// Named failure points are compiled into the hot paths only when
// CHECKMATE_FAULT_INJECTION is defined (a CMake option); otherwise
// fault(...) is a constexpr false and the probes vanish entirely, so the
// shipped binaries carry no cost.
//
// Firing is deterministic: each armed point fires on the hits whose
// seeded hash of the per-point hit counter lands on the configured period,
// up to an optional total-firing limit. With a single solver thread the
// hit sequence is reproducible, so an armed schedule yields bit-identical
// failures (and therefore bit-identical recovery behaviour) run to run;
// with multiple threads the *set* of injected failures is still bounded
// and every failure must be recovered from, but which worker observes a
// given firing is scheduling-dependent -- the chaos tier asserts exact
// determinism single-threaded and recovery/feasibility multi-threaded.
#pragma once

#include <atomic>
#include <cstdint>

namespace checkmate::robust {

enum class FaultPoint {
  kLuFactorize = 0,     // LU breakdown: factorize() reports singular
  kSnapshotRestore,     // restored-basis refactorize mismatch
  kCutRowAppend,        // SparseMatrix::append_rows allocation failure
  kSparseAlloc,         // SparseMatrix construction allocation failure
  kWorkerStall,         // a tree-search worker stalls for a few ms
  // Disk fault points for the plan store (src/store/plan_store.cpp). Each
  // models a distinct failure the crash-safe write/read protocol must
  // absorb: a torn write leaves a truncated record behind a successful
  // rename (kill-mid-write), a read returns bit-flipped bytes, rename or
  // fsync fail outright (full disk, dying device). Writes degrade to a
  // skipped persist, reads to a quarantined record + cache miss -- never
  // to a failed or wrong answer.
  kStoreWriteTorn,      // record payload truncated mid-write, rename "succeeds"
  kStoreReadCorrupt,    // a payload byte flips between disk and checksum
  kStoreRenameFail,     // atomic rename into place fails
  kFsyncFail,           // fsync of the temp file fails
  kNumFaultPoints,
};

const char* to_string(FaultPoint point);

#ifdef CHECKMATE_FAULT_INJECTION

class FaultInjector {
 public:
  static FaultInjector& instance();

  // Arms `point`: every hit whose seeded hash satisfies
  // hash(seed, hit_index) % period == 0 fires, up to `limit` total
  // firings (0 = unlimited). period == 1 fires on every hit.
  void arm(FaultPoint point, uint64_t seed, uint64_t period,
           uint64_t limit = 0);
  void disarm(FaultPoint point);
  void disarm_all();

  // Called from the instrumented sites. Counts the hit and reports
  // whether this hit should fail.
  bool should_fail(FaultPoint point);

  uint64_t hits(FaultPoint point) const;
  uint64_t fired(FaultPoint point) const;

 private:
  struct Slot {
    std::atomic<bool> armed{false};
    uint64_t seed = 0;
    uint64_t period = 1;
    uint64_t limit = 0;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fired{0};
  };
  Slot slots_[static_cast<int>(FaultPoint::kNumFaultPoints)];
};

inline bool fault(FaultPoint point) {
  return FaultInjector::instance().should_fail(point);
}

#else

// Injection compiled out: probes are constant-false and fold away.
inline constexpr bool fault(FaultPoint) { return false; }

#endif  // CHECKMATE_FAULT_INJECTION

}  // namespace checkmate::robust
