#include "service/formulation_cache.h"

#include <bit>

namespace checkmate::service {

namespace {

// Full content comparison backing the fingerprint: everything the
// formulation depends on (names excluded, exactly as in
// RematProblem::fingerprint).
bool same_problem_content(const RematProblem& a, const RematProblem& b) {
  return a.size() == b.size() &&
         a.graph.num_edges() == b.graph.num_edges() &&
         a.cost == b.cost && a.memory == b.memory &&
         a.fixed_overhead == b.fixed_overhead &&
         a.is_backward == b.is_backward && a.grad_of == b.grad_of &&
         a.graph.edges() == b.graph.edges();
}

}  // namespace

size_t FormulationKeyHash::operator()(const FormulationKey& k) const {
  uint64_t h = k.problem_fingerprint;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<uint64_t>(k.partitioned));
  mix(static_cast<uint64_t>(k.eliminate_diag_free) << 1);
  mix(static_cast<uint64_t>(k.formulation) << 2);
  if (k.has_cost_cap) mix(std::bit_cast<uint64_t>(k.cost_cap));
  return static_cast<size_t>(h);
}

FormulationCache::FormulationCache(size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

std::shared_ptr<CacheEntry> FormulationCache::acquire(
    const RematProblem& problem, const IlpBuildOptions& build, bool* hit,
    int64_t* evictions) {
  FormulationKey key;
  key.problem_fingerprint = problem.fingerprint();
  key.partitioned = build.partitioned;
  key.eliminate_diag_free = build.eliminate_diag_free;
  key.formulation = build.formulation;
  key.has_cost_cap = build.cost_cap.has_value();
  key.cost_cap = build.cost_cap.value_or(0.0);

  std::unique_lock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Fingerprint collision guard: the hit must match on full content
    // (O(problem), cheap next to a rebuild), otherwise treat it as a miss
    // and rebuild in place of the colliding entry.
    CacheEntry& e = *it->second;
    if (same_problem_content(e.problem, problem)) {
      e.last_used = ++tick_;
      if (hit) *hit = true;
      return it->second;
    }
    entries_.erase(it);
  }
  if (hit) *hit = false;

  auto entry = std::make_shared<CacheEntry>(problem);
  entry->form = std::make_unique<IlpFormulation>(entry->problem, build);
  entry->last_used = ++tick_;
  entries_.emplace(key, entry);

  while (entries_.size() > max_entries_) {
    auto victim = entries_.begin();
    for (auto jt = entries_.begin(); jt != entries_.end(); ++jt)
      if (jt->second->last_used < victim->second->last_used) victim = jt;
    if (victim->second == entry) break;  // never evict the entry being handed out
    entries_.erase(victim);
    if (evictions) ++*evictions;
  }
  return entry;
}

void FormulationCache::clear() {
  std::unique_lock lock(mu_);
  entries_.clear();
}

size_t FormulationCache::size() const {
  std::unique_lock lock(mu_);
  return entries_.size();
}

}  // namespace checkmate::service
