// Cache of built MILP formulations and their presolve artifacts, keyed by
// the canonical problem fingerprint plus the formulation shape.
//
// The Checkmate MILP for one model is re-posed dozens of times per workload
// (Figure 5 budget sweeps, the Section 6.4 max-batch search) with only the
// memory budget changing. The budget enters the formulation solely as the
// U-variable upper bounds (IlpFormulation freezes its scaling at
// construction), so a cache hit turns a full rebuild into an in-place
// set_budget() rebind. Presolve artifacts amortize the same way: every
// presolve reduction is monotone in the variable bounds, so a pass run at
// the *largest* budget of interest stays sound for any smaller budget once
// the U upper bounds are clamped down (milp::clamp_upper_bounds).
//
// Entries own a copy of the RematProblem (the cached IlpFormulation points
// into it) and are handed out as shared_ptr so LRU eviction can never free
// an entry another query still holds. Collisions: the 64-bit fingerprint
// only routes the lookup; acquire() verifies a hit by full problem-content
// comparison, so a collision degrades to a rebuild, never to a wrong
// formulation.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/ilp_builder.h"
#include "core/remat_problem.h"
#include "core/solution.h"
#include "milp/presolve.h"

namespace checkmate::service {

struct FormulationKey {
  uint64_t problem_fingerprint = 0;
  bool partitioned = true;
  bool eliminate_diag_free = true;
  // Backend shape (dense vs retention-interval): the two backends build
  // different LPs over different variable layouts, so they can never share
  // a cached formulation or its presolve artifacts.
  IlpFormulationKind formulation = IlpFormulationKind::kDense;
  bool has_cost_cap = false;
  double cost_cap = 0.0;

  friend bool operator==(const FormulationKey&,
                         const FormulationKey&) = default;
};

struct FormulationKeyHash {
  size_t operator()(const FormulationKey& k) const;
};

// One cached problem/formulation-shape; queries against the same entry are
// serialized by `mu` (a budget rebind mutates the shared formulation).
struct CacheEntry {
  explicit CacheEntry(const RematProblem& p) : problem(p) {}

  RematProblem problem;  // owned copy; `form` points into it
  std::unique_ptr<IlpFormulation> form;

  // Presolve artifacts, sound for any budget <= presolve_budget_bytes
  // after clamping the U upper bounds (see header comment).
  bool has_presolve = false;
  double presolve_budget_bytes = 0.0;
  lp::LinearProgram presolved;
  milp::PresolveStats presolve_stats;

  // Warm-start chain: the last proven-optimal schedule of this problem.
  // A schedule's simulated peak is budget-independent, so it is feasible
  // at any budget >= chain_peak_bytes; by budget monotonicity it is
  // *optimal* at any such budget <= chain_budget_bytes (the optimum can
  // only rise as the budget falls, and chain_best_bound carries over as a
  // valid proof), which is what makes descending sweeps mostly free.
  std::optional<RematSolution> chain_solution;
  double chain_budget_bytes = 0.0;   // budget the solve ran at
  double chain_peak_bytes = 0.0;     // simulated peak of the schedule
  double chain_cost = 0.0;           // its cost (problem units)
  double chain_best_bound = 0.0;     // proven lower bound at chain_budget

  std::mutex mu;        // serializes queries against this entry
  uint64_t last_used = 0;  // LRU tick, guarded by the cache mutex
};

class FormulationCache {
 public:
  explicit FormulationCache(size_t max_entries);

  // Returns the entry for (problem fingerprint, formulation shape),
  // building the formulation at build.budget_bytes on a miss. `hit`
  // reports whether the formulation was reused. May evict the
  // least-recently-used entry beyond the capacity bound.
  std::shared_ptr<CacheEntry> acquire(const RematProblem& problem,
                                      const IlpBuildOptions& build, bool* hit,
                                      int64_t* evictions);

  void clear();
  size_t size() const;

 private:
  mutable std::mutex mu_;
  size_t max_entries_;
  uint64_t tick_ = 0;
  std::unordered_map<FormulationKey, std::shared_ptr<CacheEntry>,
                     FormulationKeyHash>
      entries_;
};

}  // namespace checkmate::service
