#include "service/plan_service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "baselines/baselines.h"
#include "store/plan_store.h"

namespace checkmate::service {

namespace {

ScheduleResult infeasible_result(const char* message) {
  ScheduleResult res;
  res.milp_status = milp::MilpStatus::kInfeasible;
  res.message = message;
  return res;
}

// Budget below the structural memory floor: a *proof* of infeasibility
// (some single-stage working set alone exceeds the budget), so the typed
// flag and the floor certificate are set.
ScheduleResult floor_infeasible(const RematProblem& problem) {
  ScheduleResult res = infeasible_result("budget below structural memory floor");
  res.proven_infeasible = true;
  res.memory_floor_bytes = problem.memory_floor();
  return res;
}

// Re-apportion a finite query deadline across the remaining sweep points:
// with k points left, the next solve gets at most remaining/k, so one slow
// instance cannot starve the rest of the sweep. Inert deadlines pass
// through untouched.
IlpSolveOptions apportion_deadline(const IlpSolveOptions& base,
                                   size_t points_left) {
  if (!base.deadline.finite() || points_left == 0) return base;
  IlpSolveOptions o = base;
  const double share = std::max(0.0, base.deadline.remaining_sec()) /
                       static_cast<double>(points_left);
  o.deadline =
      robust::Deadline::sooner(base.deadline, robust::Deadline::after(share));
  o.time_limit_sec = std::min(o.time_limit_sec, std::max(share, 1e-3));
  return o;
}

// The heuristic rung of the fallback ladder: cheapest simulator-validated
// baseline schedule that fits the budget. Checkpoint-all first (the safe
// anchor: minimal retention), then the Chen sqrt(n) family and greedy
// variants, then budget-aware retention caps for the tight-budget regime.
// None of these touch the LP machinery, so they survive every numerical
// failure and fault schedule the solver can hit.
std::optional<ScheduleResult> heuristic_fallback(const RematProblem& problem,
                                                 double budget_bytes) {
  std::optional<ScheduleResult> best;
  auto offer = [&](const RematSolution& sol) {
    ScheduleResult eval = evaluate_schedule_against(problem, sol, budget_bytes);
    if (!eval.feasible) return;
    if (!best || eval.cost < best->cost) best = std::move(eval);
  };
  offer(baselines::checkpoint_all_schedule(problem));
  using baselines::BaselineKind;
  for (auto kind : {BaselineKind::kChenSqrtN, BaselineKind::kLinearizedSqrtN,
                    BaselineKind::kLinearizedGreedy, BaselineKind::kApGreedy}) {
    for (const auto& bs : baselines::baseline_schedules(problem, kind))
      offer(bs.solution);
  }
  const double headroom = budget_bytes - problem.fixed_overhead;
  for (double frac : {0.95, 0.85, 0.75, 0.6, 0.45, 0.3, 0.2, 0.12, 0.06, 0.03})
    offer(baselines::budget_aware_schedule(problem, frac * headroom));
  if (best) best->message = "plan service: heuristic fallback";
  return best;
}

// Rungs 3-4 of the ladder as a standalone outcome: the cheapest validated
// heuristic schedule, or -- only when no heuristic fits -- a non-proof
// kInfeasible. Used both by the ladder tail and by admission paths that
// must answer without a solve (overload shedding, a coalesced follower
// whose deadline expired while waiting).
PlanOutcome heuristic_or_infeasible(const RematProblem& problem,
                                    double budget_bytes,
                                    std::string degradation) {
  PlanOutcome out;
  out.memory_floor_bytes = problem.memory_floor();
  const double ideal = problem.total_cost_all_nodes();
  if (auto fb = heuristic_fallback(problem, budget_bytes)) {
    out.provenance = PlanProvenance::kHeuristicFallback;
    out.result = std::move(*fb);
    out.lower_bound = ideal;
    out.gap = std::max(0.0, (out.result.cost - out.lower_bound) /
                                std::max(1e-12, out.result.cost));
    out.why_degraded = std::move(degradation);
    return out;
  }
  out.provenance = PlanProvenance::kInfeasible;
  out.result = infeasible_result(
      "no plan found: search failed and no heuristic schedule fits");
  out.lower_bound = ideal;
  out.why_degraded = std::move(degradation);
  return out;
}

// The formulation-shape half of a store key, mirrored from the query
// options exactly as FormulationKey builds it.
store::StoreShape shape_of(const IlpSolveOptions& options) {
  store::StoreShape shape;
  shape.partitioned = options.partitioned;
  shape.eliminate_diag_free = options.eliminate_diag_free;
  shape.formulation = options.formulation;
  shape.has_cost_cap = options.cost_cap.has_value();
  shape.cost_cap = options.cost_cap.value_or(0.0);
  return shape;
}

// 64-bit routing key for single-flight: problem fingerprint x shape x
// budget x gap, splitmix-style. Collisions are possible and harmless --
// joiners re-verify the canonical blob and the scalar fields before
// sharing a flight.
uint64_t request_key(uint64_t fingerprint, const store::StoreShape& shape,
                     double budget_bytes, double relative_gap) {
  auto mix = [](uint64_t h, uint64_t v) {
    uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  uint64_t h = fingerprint;
  h = mix(h, (uint64_t(shape.partitioned) << 2) |
                 (uint64_t(shape.eliminate_diag_free) << 1) |
                 uint64_t(shape.has_cost_cap));
  h = mix(h, static_cast<uint64_t>(shape.formulation));
  h = mix(h, std::bit_cast<uint64_t>(shape.cost_cap == 0.0 ? 0.0
                                                           : shape.cost_cap));
  h = mix(h, std::bit_cast<uint64_t>(budget_bytes == 0.0 ? 0.0
                                                         : budget_bytes));
  h = mix(h, std::bit_cast<uint64_t>(relative_gap == 0.0 ? 0.0
                                                         : relative_gap));
  return h;
}

}  // namespace

// One in-flight plan_robust solve (see plan_service.h). `done` flips to
// true exactly once, under `mu`, after `outcome` is fully written; the
// identity fields are immutable after construction.
struct PlanService::Flight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  PlanOutcome outcome;
  // Request identity beyond the 64-bit routing key:
  std::string blob;  // canonical problem content
  store::StoreShape shape;
  double budget_bytes = 0.0;
  double relative_gap = 0.0;
};

const char* to_string(PlanProvenance provenance) {
  switch (provenance) {
    case PlanProvenance::kProvenOptimal: return "proven_optimal";
    case PlanProvenance::kIncumbent: return "incumbent";
    case PlanProvenance::kHeuristicFallback: return "heuristic_fallback";
    case PlanProvenance::kInfeasible: return "infeasible";
  }
  return "unknown";
}

PlanService::PlanService(PlanServiceOptions options)
    : opts_(options), cache_(options.max_cache_entries) {
  if (!opts_.store_dir.empty()) {
    // Store construction recovers whatever a previous process left behind
    // (quarantining corrupt records); an unusable directory disables
    // persistence rather than failing the service.
    try {
      store_ = std::make_unique<store::PlanStore>(opts_.store_dir);
    } catch (const std::exception&) {
      store_.reset();
    }
  }
}

int PlanService::thread_budget() const {
  if (opts_.num_threads > 0) return opts_.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

PlanService::~PlanService() = default;

std::shared_ptr<CacheEntry> PlanService::acquire(
    const RematProblem& problem, double reference_budget_bytes,
    const IlpSolveOptions& options) {
  IlpBuildOptions build;
  build.budget_bytes = reference_budget_bytes;
  build.partitioned = options.partitioned;
  build.eliminate_diag_free = options.eliminate_diag_free;
  build.formulation = options.formulation;
  build.cost_cap = options.cost_cap;
  bool hit = false;
  int64_t evictions = 0;
  auto entry = cache_.acquire(problem, build, &hit, &evictions);
  {
    std::lock_guard lock(stats_mu_);
    ++(hit ? stats_.formulation_hits : stats_.formulation_misses);
    stats_.evictions += evictions;
  }
  return entry;
}

void PlanService::ensure_presolve(CacheEntry& entry,
                                  double reference_budget_bytes,
                                  const IlpSolveOptions& options) {
  if (!options.presolve || !opts_.reuse_presolve) return;
  // Artifacts presolved at budget B are sound for any budget <= B (the
  // clamp only shrinks the feasible set); only a larger budget forces a
  // fresh pass.
  if (entry.has_presolve &&
      reference_budget_bytes <=
          entry.presolve_budget_bytes * (1.0 + 1e-12))
    return;
  entry.form->set_budget(reference_budget_bytes);
  milp::PresolveResult pre = milp::presolve(entry.form->lp());
  entry.presolved = std::move(pre.lp);
  entry.presolve_stats = pre.stats;
  entry.presolve_budget_bytes = reference_budget_bytes;
  entry.has_presolve = true;
  std::lock_guard lock(stats_mu_);
  ++stats_.presolve_runs;
}

ScheduleResult PlanService::solve_locked(CacheEntry& entry,
                                         double budget_bytes,
                                         const IlpSolveOptions& options_in,
                                         int tree_threads,
                                         double known_lower_bound) {
  // The query's share of the service thread budget feeds the in-solve
  // parallel tree search unless the caller pinned num_threads explicitly.
  // Either way the answer is identical (epoch-lockstep determinism); only
  // wall-clock attribution changes. <= 0 covers both 0 (auto) and negative
  // requests: letting a negative through would reach resolve_tree_threads'
  // auto path and grab every hardware thread per query, outside the
  // service budget. The share itself is clamped to >= 1 -- when queries
  // outnumber budgeted threads the integer split budget/Q rounds to zero,
  // and a zero-thread solve must still run single-threaded rather than
  // fall through to the auto path.
  IlpSolveOptions options = options_in;
  if (options.num_threads <= 0) options.num_threads = std::max(1, tree_threads);
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.queries;
  }
  const RematProblem& problem = entry.problem;
  if (budget_bytes < problem.memory_floor())
    return floor_infeasible(problem);

  // A chained schedule's memory use is budget-independent, so it is
  // feasible here iff its simulated peak fits this budget. (The chain is
  // only maintained for the partitioned form; unpartitioned queries solve
  // objective-only and return no schedule.)
  const bool chain_fits = opts_.chain_warm_starts && options.partitioned &&
                          entry.chain_solution.has_value() &&
                          entry.chain_peak_bytes <= budget_bytes;

  // Inherited-optimum shortcut. The chained optimum is provably optimal
  // at this budget when it fits and either
  //   (a) this budget is <= the budget it was proven at: shrinking the
  //       budget can only raise the optimum, so chain_best_bound is still
  //       a valid lower bound, the schedule still attains its cost, and
  //       that pair meets *this* query's relative_gap (a tighter-gap
  //       query must not inherit a looser certificate); or
  //   (b) its cost is the compute floor (every operation exactly once),
  //       which no budget can beat -- a zero-gap certificate.
  if (chain_fits) {
    const double ideal = problem.total_cost_all_nodes();
    const bool bound_carries =
        budget_bytes <= entry.chain_budget_bytes &&
        entry.chain_cost - entry.chain_best_bound <=
            options.relative_gap * std::max(1.0, std::abs(entry.chain_cost));
    const bool at_floor =
        entry.chain_cost <= ideal + 1e-9 * std::max(1.0, ideal);
    if (bound_carries || at_floor) {
      ScheduleResult out = evaluate_schedule_against(
          problem, *entry.chain_solution, budget_bytes);
      if (out.feasible) {
        out.milp_status = milp::MilpStatus::kOptimal;
        out.best_bound = bound_carries ? entry.chain_best_bound : out.cost;
        out.message = "plan service: inherited chained optimum";
        std::lock_guard lock(stats_mu_);
        ++stats_.warm_start_shortcuts;
        return out;
      }
    }
  }

  if (entry.form->options().budget_bytes != budget_bytes) {
    entry.form->set_budget(budget_bytes);
    std::lock_guard lock(stats_mu_);
    ++stats_.budget_rebinds;
  }
  ensure_presolve(entry, budget_bytes, options);

  IlpSolveReuse reuse;
  if (chain_fits) {
    reuse.warm_start = &*entry.chain_solution;
    // The chained incumbent is a proven optimum of a related budget: no
    // baseline can usefully undercut it, so skip the per-query seeding.
    reuse.skip_baseline_seeds = true;
    std::lock_guard lock(stats_mu_);
    ++stats_.warm_starts_injected;
  }
  // Budget monotonicity: for a smaller budget than the chained solve's,
  // its proven bound is still a valid lower bound -- branch & bound may
  // stop as soon as any incumbent lands within *this query's* gap of it,
  // instead of re-proving the bound through the dual plateau.
  if (opts_.chain_warm_starts && options.partitioned &&
      entry.chain_solution.has_value() &&
      budget_bytes <= entry.chain_budget_bytes)
    reuse.known_lower_bound_cost = entry.chain_best_bound;
  // An externally proven bound (a store-carried staircase dual bound) is
  // just as sound; take the tighter of the two.
  reuse.known_lower_bound_cost =
      std::max(reuse.known_lower_bound_cost, known_lower_bound);

  lp::LinearProgram clamped;
  if (options.presolve && opts_.reuse_presolve && entry.has_presolve) {
    if (entry.presolve_stats.proven_infeasible) {
      // Proven infeasible at a budget >= this one; the subset relation
      // settles every smaller budget too.
      return infeasible_result("presolve proved the instance infeasible");
    }
    if (budget_bytes >= entry.presolve_budget_bytes) {
      // Presolved at exactly this budget: the clamp would be a no-op
      // (presolve only ever tightens U below the budget bound), so hand
      // the cached artifact over without copying. The entry mutex is held
      // for the whole solve.
      reuse.presolved_lp = &entry.presolved;
    } else {
      clamped = entry.presolved;
      if (!milp::clamp_upper_bounds(clamped, entry.form->u_var_indices(),
                                    entry.form->scale_budget(budget_bytes)))
        return infeasible_result(
            "budget contradicts presolve-derived lower bounds");
      // Re-propagate on the clamped artifact: the shared pass's row
      // removals and fixings carry over, and one cheap incremental pass
      // over the already-reduced LP recovers the tight-budget fixings a
      // from-scratch presolve would find (a tighter U bound cascades into
      // S/R fixings the loose-budget pass could not make).
      milp::PresolveResult pre = milp::presolve(clamped);
      if (pre.stats.proven_infeasible)
        return infeasible_result("presolve proved the instance infeasible");
      clamped = std::move(pre.lp);
      reuse.presolved_lp = &clamped;
    }
    std::lock_guard lock(stats_mu_);
    ++stats_.presolve_reuses;
  }

  ScheduleResult res = solve_ilp_on_formulation(*entry.form, options, reuse);
  {
    std::lock_guard lock(stats_mu_);
    stats_.lp_refactorizations += res.lp_refactorizations;
    stats_.lp_ft_updates += res.lp_ft_updates;
    stats_.lp_ft_growth_refactors += res.lp_ft_growth_refactors;
    stats_.lp_eta_pivots += res.lp_eta_pivots;
    stats_.lp_pricing_resets += res.lp_pricing_resets;
    stats_.gomory_cuts += res.gomory_cuts;
    stats_.cuts_removed += res.cuts_removed;
  }

  if (opts_.chain_warm_starts && options.partitioned && res.feasible &&
      res.milp_status == milp::MilpStatus::kOptimal) {
    entry.chain_solution = res.solution;
    entry.chain_budget_bytes = budget_bytes;
    entry.chain_peak_bytes = res.peak_memory;
    entry.chain_cost = res.cost;
    entry.chain_best_bound = res.best_bound;
  }
  return res;
}

ScheduleResult PlanService::plan(const RematProblem& problem,
                                 double budget_bytes,
                                 const IlpSolveOptions& options) {
  return plan_internal(problem, budget_bytes, options, -lp::kInf);
}

ScheduleResult PlanService::plan_internal(const RematProblem& problem,
                                          double budget_bytes,
                                          const IlpSolveOptions& options,
                                          double known_lower_bound) {
  if (budget_bytes <= 0.0 || budget_bytes < problem.memory_floor()) {
    std::lock_guard lock(stats_mu_);
    ++stats_.queries;
    return floor_infeasible(problem);
  }
  auto entry = acquire(problem, budget_bytes, options);
  std::lock_guard lock(entry->mu);
  // A lone query owns the whole budget.
  return solve_locked(*entry, budget_bytes, options, thread_budget(),
                      known_lower_bound);
}

std::vector<ScheduleResult> PlanService::sweep(
    const RematProblem& problem, const std::vector<double>& budgets,
    const IlpSolveOptions& options) {
  std::vector<ScheduleResult> out(budgets.size());
  if (budgets.empty()) return out;

  // Descending solve order: the largest budget solves first (and
  // cheapest), then each point inherits its predecessor's optimum outright
  // whenever that schedule's peak still fits (flat regions of the
  // overhead-vs-budget staircase), and otherwise reuses its proven bound
  // as a termination certificate.
  std::vector<size_t> order(budgets.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return budgets[a] > budgets[b];
  });
  const double max_budget = budgets[order.front()];
  if (max_budget <= 0.0) {
    for (auto& r : out) r = floor_infeasible(problem);
    std::lock_guard lock(stats_mu_);
    stats_.queries += static_cast<int64_t>(budgets.size());
    return out;
  }

  auto entry = acquire(problem, max_budget, options);
  std::lock_guard lock(entry->mu);
  // Presolve once at the sweep's largest budget; every point below reuses
  // the artifacts through the U-bound clamp.
  ensure_presolve(*entry, max_budget, options);
  // Sweep points share one cache entry and run serially, so each solve
  // gets the full budget as tree workers. A finite query deadline is
  // re-apportioned before every point (remaining / points left).
  size_t left = order.size();
  for (size_t idx : order) {
    out[idx] =
        solve_locked(*entry, budgets[idx], apportion_deadline(options, left),
                     thread_budget(), -lp::kInf);
    --left;
  }
  return out;
}

std::vector<ScheduleResult> PlanService::plan_many(
    const std::vector<PlanQuery>& queries) {
  std::vector<ScheduleResult> out(queries.size());

  // Group by cache identity (problem fingerprint + formulation shape):
  // different groups are independent and run concurrently; queries within
  // a group share a formulation, so they run as one ascending chained
  // sweep on a single worker.
  struct Group {
    std::vector<size_t> indices;
    double max_budget = 0.0;
  };
  std::unordered_map<FormulationKey, Group, FormulationKeyHash> groups;
  for (size_t i = 0; i < queries.size(); ++i) {
    const PlanQuery& q = queries[i];
    if (q.problem == nullptr) {
      out[i].message = "plan_many: null problem";
      continue;
    }
    if (q.budget_bytes <= 0.0 ||
        q.budget_bytes < q.problem->memory_floor()) {
      out[i] = floor_infeasible(*q.problem);
      std::lock_guard lock(stats_mu_);
      ++stats_.queries;
      continue;
    }
    FormulationKey key;
    key.problem_fingerprint = q.problem->fingerprint();
    key.partitioned = q.options.partitioned;
    key.eliminate_diag_free = q.options.eliminate_diag_free;
    key.formulation = q.options.formulation;
    key.has_cost_cap = q.options.cost_cap.has_value();
    key.cost_cap = q.options.cost_cap.value_or(0.0);
    Group& g = groups[key];
    g.indices.push_back(i);
    g.max_budget = std::max(g.max_budget, q.budget_bytes);
  }

  auto run_group = [this, &queries, &out](const Group& g, int tree_threads) {
    // Descending chained order, as in sweep().
    std::vector<size_t> order = g.indices;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return queries[a].budget_bytes > queries[b].budget_bytes;
    });
    try {
      auto entry = acquire(*queries[order.front()].problem, g.max_budget,
                           queries[order.front()].options);
      std::lock_guard lock(entry->mu);
      ensure_presolve(*entry, g.max_budget, queries[order.front()].options);
      // Each query keeps its own deadline; a finite one is clamped to its
      // share of what remains across this group's unfinished points.
      size_t left = order.size();
      for (size_t idx : order) {
        out[idx] = solve_locked(*entry, queries[idx].budget_bytes,
                                apportion_deadline(queries[idx].options, left),
                                tree_threads, -lp::kInf);
        --left;
      }
    } catch (const std::exception& e) {
      for (size_t idx : order)
        if (out[idx].message.empty())
          out[idx].message = std::string("plan_many: ") + e.what();
    }
  };

  const int budget = thread_budget();
  if (groups.size() <= 1) {
    for (auto& kv : groups) run_group(kv.second, budget);
    return out;
  }
  // Split the budget between the two levels: query-level workers take as
  // many groups as fit, and whatever remains per worker goes to the
  // in-solve tree search (a 2-group batch on 8 cores runs 2 queries x 4
  // tree workers; 16 groups on 8 cores run 8 x 1). The pool is sized once
  // from the BUDGET (service lifetime, created under a lock -- plan_many
  // may be called from concurrent threads); each batch then divides the
  // budget by its own ACTIVE worker count, so neither a small first batch
  // nor a small later batch pins the split. Per-solve shares beyond the
  // tree search's epoch width are clamped by resolve_tree_threads -- with
  // fewer groups than budgeted cores the surplus is inherently unusable.
  {
    std::lock_guard lock(pool_mu_);
    if (!pool_) {
      const int q = opts_.num_workers > 0 ? opts_.num_workers
                                          : std::max(1, std::min(budget, 8));
      pool_ = std::make_unique<SolvePool>(q);
    }
  }
  const int active = std::min(pool_->num_workers(),
                              static_cast<int>(groups.size()));
  const int tree_threads = std::max(1, budget / std::max(1, active));
  for (auto& kv : groups) {
    const Group* g = &kv.second;
    pool_->submit([&run_group, g, tree_threads] { run_group(*g, tree_threads); });
  }
  pool_->wait_idle();
  return out;
}

PlanOutcome PlanService::plan_robust(const RematProblem& problem,
                                     double budget_bytes,
                                     const IlpSolveOptions& options) {
  // Rung 0: the floor check is a proof -- nothing below can help, so it
  // runs ahead of every admission mechanism (a certificate needs no
  // dedup, no store and no solve slot).
  if (budget_bytes <= 0.0 || budget_bytes < problem.memory_floor()) {
    PlanOutcome out;
    out.memory_floor_bytes = problem.memory_floor();
    out.provenance = PlanProvenance::kInfeasible;
    out.result = floor_infeasible(problem);
    out.lower_bound = lp::kInf;
    out.why_degraded = "budget below structural memory floor";
    return out;
  }

  if (!opts_.single_flight)
    return serve_or_solve(problem, budget_bytes, options);

  // Single-flight admission: identical concurrent queries coalesce onto
  // one solve. Identity is the full request content -- canonical problem
  // blob, formulation shape, budget, gap -- not just the 64-bit routing
  // key. Queries differing only in solver knobs (deadline, threads) still
  // share: followers keep their own deadline while waiting, and the
  // shared outcome is at least as good as what their knobs would buy.
  const store::StoreShape shape = shape_of(options);
  std::string blob = problem.serialize_canonical();
  const uint64_t key = request_key(problem.fingerprint(), shape, budget_bytes,
                                   options.relative_gap);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard lock(admission_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      Flight& f = *it->second;
      if (f.blob == blob && f.shape == shape &&
          f.budget_bytes == budget_bytes &&
          f.relative_gap == options.relative_gap)
        flight = it->second;
      // else: routing-key collision with different content -- solve solo.
    } else {
      flight = std::make_shared<Flight>();
      flight->blob = std::move(blob);
      flight->shape = shape;
      flight->budget_bytes = budget_bytes;
      flight->relative_gap = options.relative_gap;
      inflight_.emplace(key, flight);
      leader = true;
    }
  }

  if (flight && !leader) {
    // Follower: wait for the leader's outcome, but honour this query's
    // own deadline/cancellation -- a 10ms poll bounds the exit latency
    // without a per-deadline timer plumbing.
    std::unique_lock fl(flight->mu);
    while (!flight->done && !options.deadline.expired() &&
           !options.cancel.cancelled())
      flight->cv.wait_for(fl, std::chrono::milliseconds(10));
    if (flight->done) {
      PlanOutcome shared = flight->outcome;
      fl.unlock();
      std::lock_guard lock(stats_mu_);
      ++stats_.single_flight_shared;
      return shared;
    }
    fl.unlock();
    // Deadline/cancel while coalesced: the never-fail contract still
    // holds -- serve the heuristic rung rather than keep waiting.
    return heuristic_or_infeasible(
        problem, budget_bytes,
        options.cancel.cancelled()
            ? "query cancelled while coalesced behind an identical in-flight "
              "solve"
            : "deadline expired while coalesced behind an identical in-flight "
              "solve");
  }

  PlanOutcome out = serve_or_solve(problem, budget_bytes, options);

  if (leader) {
    // Publish before erasing the flight: a follower that joined during
    // the solve wakes to `done`; one that arrives after the erase misses
    // the flight but hits the store (the put happened inside
    // serve_or_solve, before this point), so it still does not re-solve.
    {
      std::lock_guard fl(flight->mu);
      flight->outcome = out;
      flight->done = true;
    }
    flight->cv.notify_all();
    std::lock_guard lock(admission_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end() && it->second == flight) inflight_.erase(it);
  }
  return out;
}

PlanOutcome PlanService::serve_or_solve(const RematProblem& problem,
                                        double budget_bytes,
                                        const IlpSolveOptions& options) {
  const store::StoreShape shape = shape_of(options);

  // Store lookup: a hit is byte-verified against this problem's canonical
  // content and simulator re-validated inside the store before it gets
  // here; what comes back is a proven optimum with zero solver work.
  double staircase_bound = -lp::kInf;
  if (store_) {
    if (auto hit = store_->lookup(problem, shape, budget_bytes,
                                  options.relative_gap, &staircase_bound)) {
      PlanOutcome out;
      out.memory_floor_bytes = problem.memory_floor();
      out.provenance = PlanProvenance::kProvenOptimal;
      out.result = std::move(*hit);
      const double ideal = problem.total_cost_all_nodes();
      out.lower_bound = std::max(ideal, out.result.best_bound);
      out.gap = std::max(0.0, (out.result.cost - out.lower_bound) /
                                  std::max(1e-12, out.result.cost));
      std::lock_guard lock(stats_mu_);
      ++stats_.store_hits;
      return out;
    }
    std::lock_guard lock(stats_mu_);
    ++stats_.store_misses;
  }

  // Bounded in-flight admission: take a solve slot or shed to the
  // heuristic rung. Shedding is best-effort -- it must not manufacture an
  // unproven infeasibility, so a query no heuristic can serve takes a
  // slot over the cap rather than failing.
  bool counted_slot = false;
  if (opts_.max_inflight_solves > 0) {
    bool have_slot = false;
    {
      std::lock_guard lock(admission_mu_);
      if (active_solves_ < opts_.max_inflight_solves) {
        ++active_solves_;
        have_slot = counted_slot = true;
      }
    }
    if (!have_slot) {
      PlanOutcome shed = heuristic_or_infeasible(
          problem, budget_bytes,
          "admission overload: in-flight solve limit reached, heuristic "
          "fallback served");
      if (shed.provenance == PlanProvenance::kHeuristicFallback) {
        std::lock_guard lock(stats_mu_);
        ++stats_.shed_overload;
        return shed;
      }
      std::lock_guard lock(admission_mu_);
      ++active_solves_;
      counted_slot = true;
    }
  }

  PlanOutcome out;
  try {
    out = plan_robust_ladder(problem, budget_bytes, options, staircase_bound);
  } catch (...) {
    if (counted_slot) {
      std::lock_guard lock(admission_mu_);
      --active_solves_;
    }
    throw;  // the ladder itself never throws; belt and braces
  }
  if (counted_slot) {
    std::lock_guard lock(admission_mu_);
    --active_solves_;
  }

  // Persist proven optima before the caller publishes them (plan_robust
  // erases the single-flight entry only after this returns, so late
  // arrivals transition from flight-join to store-hit with no window in
  // which they would re-solve). Failed writes are absorbed: the in-memory
  // answer stands.
  if (store_ && out.provenance == PlanProvenance::kProvenOptimal &&
      out.result.feasible &&
      out.result.milp_status == milp::MilpStatus::kOptimal) {
    const bool ok = store_->put(problem, shape, budget_bytes,
                                options.relative_gap, out.result);
    std::lock_guard lock(stats_mu_);
    ++(ok ? stats_.store_puts : stats_.store_put_failures);
  }
  return out;
}

PlanOutcome PlanService::plan_robust_ladder(const RematProblem& problem,
                                            double budget_bytes,
                                            const IlpSolveOptions& options,
                                            double known_lower_bound) {
  PlanOutcome out;
  out.memory_floor_bytes = problem.memory_floor();

  const double ideal = problem.total_cost_all_nodes();
  std::string degradation;
  bool proven_infeasible = false;

  // Rungs 1-2: the MILP, unless the deadline is already gone or the query
  // was cancelled (the search would only burn the fallback's time). Any
  // exception out of the solver stack (injected faults, allocation
  // failure) degrades to the heuristic rung instead of escaping.
  if (options.deadline.expired() || options.cancel.cancelled()) {
    degradation = options.cancel.cancelled()
                      ? "query cancelled before the solve started"
                      : "deadline expired before the solve started";
  } else {
    try {
      ScheduleResult res =
          plan_internal(problem, budget_bytes, options, known_lower_bound);
      if (res.feasible) {
        out.result = std::move(res);
        out.lower_bound = std::max(ideal, out.result.best_bound);
        out.gap = std::max(0.0, (out.result.cost - out.lower_bound) /
                                    std::max(1e-12, out.result.cost));
        if (out.result.milp_status == milp::MilpStatus::kOptimal) {
          out.provenance = PlanProvenance::kProvenOptimal;
        } else {
          out.provenance = PlanProvenance::kIncumbent;
          out.why_degraded = std::string("search truncated (") +
                             milp::to_string(out.result.milp_status) +
                             "): best incumbent returned";
        }
        return out;
      }
      if (res.proven_infeasible) {
        proven_infeasible = true;
        out.result = std::move(res);
      } else {
        degradation = res.message.empty() ? "MILP returned no plan"
                                          : res.message;
      }
    } catch (const std::exception& e) {
      degradation = std::string("solver failure: ") + e.what();
    }
  }

  // A completed search *proved* no schedule fits; heuristics cannot beat a
  // proof, so skip straight to the certificate.
  if (proven_infeasible) {
    out.provenance = PlanProvenance::kInfeasible;
    out.lower_bound = lp::kInf;
    out.why_degraded = "search proved the budget infeasible";
    return out;
  }

  // Rungs 3-4: heuristic fallback (every candidate simulator-validated
  // against the budget), else a non-proof kInfeasible with the floor as
  // context.
  return heuristic_or_infeasible(problem, budget_bytes, std::move(degradation));
}

std::vector<PlanOutcome> PlanService::sweep_robust(
    const RematProblem& problem, const std::vector<double>& budgets,
    const IlpSolveOptions& options) {
  std::vector<PlanOutcome> out(budgets.size());
  if (budgets.empty()) return out;
  // Descending budget order keeps the cache chaining effective (each
  // plan_robust call lands on the shared entry through plan()); the
  // remaining deadline is re-apportioned before every point.
  std::vector<size_t> order(budgets.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return budgets[a] > budgets[b];
  });
  size_t left = order.size();
  for (size_t idx : order) {
    out[idx] =
        plan_robust(problem, budgets[idx], apportion_deadline(options, left));
    --left;
  }
  return out;
}

ServiceStats PlanService::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

}  // namespace checkmate::service

namespace checkmate {

// Declared in core/scheduler.h; defined here so the core layer does not
// depend on service headers.
std::vector<ScheduleResult> Scheduler::solve_budget_sweep(
    const std::vector<double>& budgets, const IlpSolveOptions& options) const {
  service::PlanService svc;
  return svc.sweep(problem_, budgets, options);
}

}  // namespace checkmate
