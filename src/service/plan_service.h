// Plan service: cached, incremental multi-query planning.
//
// Checkmate's real workloads are not one-shot solves: a Figure-5
// overhead-vs-budget curve issues ~10 near-identical MILP queries per
// model, and the Section 6.4 max-batch search issues a feasibility probe
// per bisection step. The PlanService answers such query streams at full
// MILP optimality while amortizing everything the queries share:
//
//   - formulation reuse: one built IlpFormulation per (problem
//     fingerprint, formulation shape); a new budget is an in-place
//     set_budget() rebind of the U-variable upper bounds, not a rebuild;
//   - presolve reuse: the presolve pass runs once at the largest budget of
//     interest; smaller budgets clamp the U upper bounds of the cached
//     reduced LP (sound because every presolve reduction is monotone in
//     the bounds -- see milp/presolve.h);
//   - warm-start chaining: a sweep is solved in descending budget order.
//     A schedule's simulated peak is budget-independent, so whenever the
//     previous (larger-budget) optimum still fits the next budget it is
//     *provably* optimal there too (shrinking the budget can only raise
//     the optimum) and is returned without touching the solver -- on the
//     flat regions of the overhead-vs-budget staircase most points are
//     free. Where a solve is unavoidable, the previous point's proven
//     lower bound carries over (same monotonicity) and branch & bound
//     terminates as soon as any incumbent meets it, instead of re-proving
//     the bound through the dual plateau; fitting chained optima are also
//     injected as starting incumbents;
//   - a chained optimum whose cost equals the compute floor (every
//     operation exactly once) short-circuits larger budgets the same way;
//   - a fixed-size worker pool solves independent queries (different
//     models, or different formulation shapes) concurrently. Queries
//     sharing a cache entry are serialized and chained instead.
//
// Admission control (plan_robust / sweep_robust only; plain plan() stays
// a direct cache query):
//
//   - disk-backed plan store: with store_dir set, proven optima are
//     persisted crash-safely (src/store/plan_store.h) and served across
//     process restarts with zero solver work -- a store hit is
//     byte-verified against the query's canonical problem content and
//     simulator re-validated before it can be returned, so a corrupt
//     record degrades to a miss, never to a wrong plan. Store-carried
//     dual bounds also shortcut re-solves at nearby budgets;
//   - single-flight deduplication: a thundering herd of identical
//     concurrent queries (same problem content, shape, budget, gap)
//     coalesces onto one solve; followers block on the leader's outcome
//     (respecting their own deadlines) instead of duplicating the MILP;
//   - bounded in-flight admission: max_inflight_solves > 0 caps the
//     number of concurrent MILP ladders; overflow queries shed to the
//     heuristic-fallback rung with why_degraded naming the overload
//     instead of queueing without bound. Shedding never invents an
//     infeasibility -- if no heuristic fits, the query takes a slot.
//
// Determinism: every query keeps its own MilpOptions -- including the
// deterministic max_lp_iterations work limit -- and its own simplex
// engine, so answers are independent of worker count and arrival order
// within a chain group (groups are internally solved in ascending budget
// order regardless of submission order).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/remat_problem.h"
#include "core/scheduler.h"
#include "service/formulation_cache.h"
#include "service/solve_pool.h"

namespace checkmate::store {
class PlanStore;
struct StoreShape;
}  // namespace checkmate::store

namespace checkmate::service {

struct PlanServiceOptions {
  // Global thread budget shared by BOTH levels of parallelism: SolvePool
  // query-level workers (plan_many groups) and per-solve tree-search
  // workers inside each MILP (milp/branch_and_bound.h). 0 = one per
  // hardware thread. A lone hard query (plan / sweep) gets the whole
  // budget as tree workers; a plan_many batch splits it as
  //   query workers Q = min(#groups, budget, 8)   (unless num_workers set)
  //   tree workers per solve = max(1, budget / Q)
  // Determinism is unaffected either way: the tree search is epoch-
  // lockstep (identical nodes/incumbents for any worker count) and query
  // groups are independent, so the budget only moves wall-clock time.
  int num_threads = 0;
  // Explicit override for the query-level worker count (plan_many). 0 =
  // derive from the thread budget as above.
  int num_workers = 0;
  // Cached formulations (LRU beyond this).
  size_t max_cache_entries = 16;
  // Cache presolve artifacts across budgets (clamp instead of re-run).
  bool reuse_presolve = true;
  // Chain warm starts across budgets of the same problem.
  bool chain_warm_starts = true;
  // Directory of the disk-backed plan store; empty disables persistence.
  // Proven optima from plan_robust are written crash-safely and served --
  // content-verified and simulator-validated -- across restarts.
  std::string store_dir;
  // Coalesce concurrent identical plan_robust queries onto one solve.
  bool single_flight = true;
  // Cap on concurrent plan_robust MILP ladders; overflow sheds to the
  // heuristic fallback (why_degraded names the overload). 0 = unbounded.
  size_t max_inflight_solves = 0;
};

struct ServiceStats {
  int64_t queries = 0;
  int64_t formulation_hits = 0;
  int64_t formulation_misses = 0;
  int64_t budget_rebinds = 0;        // set_budget() reuses of a cached build
  int64_t presolve_runs = 0;
  int64_t presolve_reuses = 0;       // clamped-artifact reuses
  int64_t warm_starts_injected = 0;  // adjacent optima handed to B&B
  int64_t warm_start_shortcuts = 0;  // solves skipped: chained optimum at the compute floor
  int64_t evictions = 0;
  // Admission-layer counters (plan_robust only). A store hit or a shared
  // single-flight outcome does NOT count as a query: `queries` keeps its
  // meaning of "solves the cache actually answered".
  int64_t store_hits = 0;            // plans served from the disk store
  int64_t store_misses = 0;          // store consulted, no serveable record
  int64_t store_puts = 0;            // proven optima durably persisted
  int64_t store_put_failures = 0;    // absorbed store write failures
  int64_t single_flight_shared = 0;  // followers served a leader's outcome
  int64_t shed_overload = 0;         // queries shed to the heuristic rung
  // Cumulative LP-engine observability over every MILP solve the service
  // ran (ScheduleResult pass-throughs summed): basis refactorizations,
  // Forrest-Tomlin updates, spike/eta-growth-forced refactorizations,
  // product-form eta pivots (nonzero only with FT disabled), partial-
  // pricing candidate-list rebuilds, and Gomory cut rows added / cut rows
  // later deleted by in-LP aging.
  int64_t lp_refactorizations = 0;
  int64_t lp_ft_updates = 0;
  int64_t lp_ft_growth_refactors = 0;
  int64_t lp_eta_pivots = 0;
  int64_t lp_pricing_resets = 0;
  int64_t gomory_cuts = 0;
  int64_t cuts_removed = 0;
};

struct PlanQuery {
  const RematProblem* problem = nullptr;  // must outlive the call
  double budget_bytes = 0.0;
  IlpSolveOptions options;
};

// Where a robust query's plan came from, in strictly degrading order. The
// ladder can degrade but never fail: every rung returns a plan the
// simulator validated against the budget, except kInfeasible, which is a
// *proof* (structural memory floor, or a completed dense search) that no
// plan exists.
enum class PlanProvenance {
  kProvenOptimal,      // MILP completed: optimal within the query's gap
  kIncumbent,          // search truncated: best incumbent, true gap reported
  kHeuristicFallback,  // cheapest validated baseline (checkpoint-all /
                       // Chen sqrt(n) family / budget-aware retention)
  kInfeasible,         // proven: no schedule fits the budget
};

const char* to_string(PlanProvenance provenance);

// Result of a never-fail query: the plan plus the observability the
// serving path needs -- how good the plan is proven to be and why it
// degraded, if it did.
struct PlanOutcome {
  PlanProvenance provenance = PlanProvenance::kInfeasible;
  ScheduleResult result;  // simulator-validated unless kInfeasible
  // Sound lower bound on the optimal cost (problem cost units): the MILP
  // bound when one survived, else the compute floor (every operation once).
  double lower_bound = 0.0;
  // (result.cost - lower_bound) / result.cost, clamped at >= 0.
  double gap = 0.0;
  // Human-readable reason the query degraded below kProvenOptimal; empty
  // for proven-optimal answers.
  std::string why_degraded;
  // The structural memory floor: certificate when kInfeasible, context
  // otherwise.
  double memory_floor_bytes = 0.0;
};

class PlanService {
 public:
  explicit PlanService(PlanServiceOptions options = {});
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  // One query through the cache. Identical (proven-optimal) objective to
  // Scheduler::solve_optimal_ilp with the same options.
  ScheduleResult plan(const RematProblem& problem, double budget_bytes,
                      const IlpSolveOptions& options = {});

  // Budget sweep over one model: solved in descending budget order with
  // optimum inheritance and warm-start chaining, presolved once at the
  // largest budget; results returned in the caller's order.
  std::vector<ScheduleResult> sweep(const RematProblem& problem,
                                    const std::vector<double>& budgets,
                                    const IlpSolveOptions& options = {});

  // Independent queries (many models and/or many budgets). Queries are
  // grouped by cache entry; groups run concurrently on the worker pool and
  // each group runs as a descending chained sweep. Results come back in
  // submission order.
  std::vector<ScheduleResult> plan_many(const std::vector<PlanQuery>& queries);

  // Never-fail variants: the fallback ladder of PlanProvenance. A query
  // whose MILP completes returns the proven optimum; a truncated search
  // (deadline, work limits, cancellation) returns its best incumbent with
  // the true gap; a search that produced nothing (or died on a fault)
  // falls back to the cheapest simulator-validated baseline schedule; only
  // a *proof* that no plan exists yields kInfeasible. Set
  // options.deadline / options.cancel to bound the query; sweep_robust
  // re-apportions the remaining deadline across its points so one slow
  // instance cannot starve the rest.
  PlanOutcome plan_robust(const RematProblem& problem, double budget_bytes,
                          const IlpSolveOptions& options = {});
  std::vector<PlanOutcome> sweep_robust(const RematProblem& problem,
                                        const std::vector<double>& budgets,
                                        const IlpSolveOptions& options = {});

  ServiceStats stats() const;
  size_t cache_size() const { return cache_.size(); }
  void clear_cache() { cache_.clear(); }
  // The disk-backed plan store, or nullptr when store_dir is empty.
  store::PlanStore* plan_store() const { return store_.get(); }

 private:
  // One in-flight plan_robust solve; followers with an identical query
  // block on `cv` and share `outcome`. The key that routes to a Flight is
  // a 64-bit hash; blob/budget/gap/shape are re-checked on join so a
  // collision solves solo instead of sharing a stranger's plan.
  struct Flight;

  std::shared_ptr<CacheEntry> acquire(const RematProblem& problem,
                                      double reference_budget_bytes,
                                      const IlpSolveOptions& options);
  // (Re)runs presolve at reference_budget_bytes when the cached artifacts
  // do not already cover it. Entry mutex must be held.
  void ensure_presolve(CacheEntry& entry, double reference_budget_bytes,
                       const IlpSolveOptions& options);
  // Answers one query against a locked entry. `tree_threads` is this
  // query's share of the service thread budget; it only applies when the
  // query left IlpSolveOptions::num_threads at 0 (auto).
  // `known_lower_bound` (-inf when absent) is an externally proven lower
  // bound on this query's optimum -- e.g. a store-carried dual bound --
  // merged into the solve's termination certificate.
  ScheduleResult solve_locked(CacheEntry& entry, double budget_bytes,
                              const IlpSolveOptions& options, int tree_threads,
                              double known_lower_bound);
  // plan() with an external lower bound threaded through to solve_locked.
  ScheduleResult plan_internal(const RematProblem& problem,
                               double budget_bytes,
                               const IlpSolveOptions& options,
                               double known_lower_bound);
  // The fallback ladder behind plan_robust, after the floor check and the
  // admission layer (store lookup, single-flight, overload shedding).
  PlanOutcome plan_robust_ladder(const RematProblem& problem,
                                 double budget_bytes,
                                 const IlpSolveOptions& options,
                                 double known_lower_bound);
  // Store lookup -> admission slot (or shed) -> ladder -> store put.
  PlanOutcome serve_or_solve(const RematProblem& problem, double budget_bytes,
                             const IlpSolveOptions& options);
  // The resolved service-wide thread budget (>= 1).
  int thread_budget() const;

  PlanServiceOptions opts_;
  FormulationCache cache_;
  std::mutex pool_mu_;               // guards pool_ creation
  std::unique_ptr<SolvePool> pool_;  // created lazily by plan_many

  std::unique_ptr<store::PlanStore> store_;  // null unless store_dir set
  std::mutex admission_mu_;  // guards inflight_ and active_solves_
  std::unordered_map<uint64_t, std::shared_ptr<Flight>> inflight_;
  size_t active_solves_ = 0;  // tracked only when max_inflight_solves > 0

  mutable std::mutex stats_mu_;
  ServiceStats stats_;
};

}  // namespace checkmate::service
