#include "service/solve_pool.h"

#include <algorithm>

namespace checkmate::service {

int SolvePool::resolve_worker_count(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;  // unknown hardware: still guarantee one worker
  return static_cast<int>(std::min(hw, 8u));
}

SolvePool::SolvePool(int num_workers) {
  const int n = resolve_worker_count(num_workers);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

SolvePool::~SolvePool() {
  {
    std::unique_lock lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void SolvePool::submit(std::function<void()> job) {
  {
    std::unique_lock lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_ready_.notify_one();
}

void SolvePool::wait_idle() {
  std::unique_lock lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void SolvePool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain outstanding work even when shutting down: destruction must
      // not drop submitted queries.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::unique_lock lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace checkmate::service
