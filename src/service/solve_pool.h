// Fixed-size worker pool for mutually independent planning queries.
//
// Minimal by design: jobs are type-erased thunks, submission never blocks,
// and wait_idle() is the barrier the batch APIs need. Determinism: the pool
// adds no shared solver state -- every MILP query owns its simplex engine
// and carries its own deterministic work limit (max_lp_iterations), so a
// query's search tree is identical whatever the worker count or
// interleaving; only wall-clock attribution varies.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace checkmate::service {

class SolvePool {
 public:
  // Resolves a requested worker count: values > 0 pass through; 0 (auto)
  // and negatives map to the hardware thread count capped at 8. Guaranteed
  // >= 1 even when std::thread::hardware_concurrency() reports 0 (the
  // standard allows it on containers/exotic platforms, and a zero-worker
  // pool would deadlock every wait_idle).
  static int resolve_worker_count(int requested);

  // num_workers <= 0 selects resolve_worker_count's auto value.
  explicit SolvePool(int num_workers);
  // Drains every queued job, then joins the workers.
  ~SolvePool();

  SolvePool(const SolvePool&) = delete;
  SolvePool& operator=(const SolvePool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Enqueues a job; workers pick jobs up in FIFO order. Jobs must not
  // throw -- there is no result channel for exceptions.
  void submit(std::function<void()> job);

  // Blocks until every submitted job has finished running.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_ready_, all_idle_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace checkmate::service
