#include "store/plan_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string_view>

#include "robust/fault_injection.h"

namespace checkmate::store {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kMagic = 0x53504b43u;  // "CKPS" little-endian
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8;  // magic, version, len, checksum
constexpr double kRelTol = 1e-12;
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// FNV-1a over the payload; the same hash family the fingerprint uses. Any
// single torn tail or bit flip changes it, which is the integrity level the
// store promises (it is not a cryptographic seal).
uint64_t checksum64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

struct Writer {
  std::string out;
  void u8(uint8_t v) { out.push_back(static_cast<char>(v)); }
  void u32(uint32_t v) {
    for (int b = 0; b < 4; ++b) out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
  }
  void u64(uint64_t v) {
    for (int b = 0; b < 8; ++b) out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
  }
  void f64(double v) { u64(std::bit_cast<uint64_t>(v)); }
  void bytes(std::string_view s) { out.append(s.data(), s.size()); }
};

// Bounds-checked little-endian reader; every getter reports success so a
// truncated or garbage payload turns into a clean parse failure.
struct Reader {
  std::string_view in;
  size_t pos = 0;
  bool ok = true;
  uint8_t u8() {
    if (pos + 1 > in.size()) { ok = false; return 0; }
    return static_cast<uint8_t>(in[pos++]);
  }
  uint32_t u32() {
    if (pos + 4 > in.size()) { ok = false; return 0; }
    uint32_t v = 0;
    for (int b = 0; b < 4; ++b) v |= static_cast<uint32_t>(static_cast<uint8_t>(in[pos++])) << (8 * b);
    return v;
  }
  uint64_t u64() {
    if (pos + 8 > in.size()) { ok = false; return 0; }
    uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v |= static_cast<uint64_t>(static_cast<uint8_t>(in[pos++])) << (8 * b);
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string_view bytes(size_t n) {
    if (pos + n > in.size()) { ok = false; return {}; }
    std::string_view v = in.substr(pos, n);
    pos += n;
    return v;
  }
};

std::string hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// Payload layout (version 1); the header wraps it with magic/version/
// length/checksum. Field order is part of the format: changing it bumps
// kPlanStoreFormatVersion.
std::string encode_payload(uint64_t fingerprint, const StoreShape& shape,
                           const std::string& problem_blob,
                           double solved_budget, double relative_gap,
                           double cost, double best_bound, double peak_bytes,
                           const RematSolution& sol) {
  Writer w;
  const size_t stages = sol.R.size();
  const size_t nodes = stages == 0 ? 0 : sol.R[0].size();
  w.out.reserve(kHeaderBytes + 64 + problem_blob.size() + 2 * stages * nodes);
  w.u64(fingerprint);
  w.u8(shape.partitioned ? 1 : 0);
  w.u8(shape.eliminate_diag_free ? 1 : 0);
  w.u8(shape.has_cost_cap ? 1 : 0);
  w.u8(static_cast<uint8_t>(shape.formulation));
  w.f64(shape.cost_cap);
  w.f64(solved_budget);
  w.f64(relative_gap);
  w.f64(cost);
  w.f64(best_bound);
  w.f64(peak_bytes);
  w.u64(problem_blob.size());
  w.bytes(problem_blob);
  w.u32(static_cast<uint32_t>(stages));
  w.u32(static_cast<uint32_t>(nodes));
  for (const auto& row : sol.R)
    for (uint8_t b : row) w.u8(b);
  for (const auto& row : sol.S)
    for (uint8_t b : row) w.u8(b);
  return std::move(w.out);
}

struct DecodedRecord {
  uint64_t fingerprint = 0;
  StoreShape shape;
  std::string problem_blob;
  double solved_budget = 0.0, relative_gap = 0.0;
  double cost = 0.0, best_bound = 0.0, peak_bytes = 0.0;
  RematSolution solution;
};

bool decode_payload(std::string_view payload, DecodedRecord* out) {
  Reader r{payload};
  out->fingerprint = r.u64();
  out->shape.partitioned = r.u8() != 0;
  out->shape.eliminate_diag_free = r.u8() != 0;
  out->shape.has_cost_cap = r.u8() != 0;
  const uint8_t kind = r.u8();
  if (kind > static_cast<uint8_t>(IlpFormulationKind::kInterval)) return false;
  out->shape.formulation = static_cast<IlpFormulationKind>(kind);
  out->shape.cost_cap = r.f64();
  out->solved_budget = r.f64();
  out->relative_gap = r.f64();
  out->cost = r.f64();
  out->best_bound = r.f64();
  out->peak_bytes = r.f64();
  const uint64_t blob_size = r.u64();
  if (!r.ok || blob_size > payload.size()) return false;
  out->problem_blob = std::string(r.bytes(blob_size));
  const uint32_t stages = r.u32();
  const uint32_t nodes = r.u32();
  if (!r.ok) return false;
  // Cheap structural sanity before allocating: the matrices must exactly
  // exhaust the remaining payload.
  const uint64_t cells = static_cast<uint64_t>(stages) * nodes;
  if (payload.size() - r.pos != 2 * cells) return false;
  out->solution.R.assign(stages, std::vector<uint8_t>(nodes));
  out->solution.S.assign(stages, std::vector<uint8_t>(nodes));
  for (auto& row : out->solution.R)
    for (auto& b : row) b = r.u8();
  for (auto& row : out->solution.S)
    for (auto& b : row) b = r.u8();
  if (!r.ok || r.pos != payload.size()) return false;
  // Reject non-finite or negative economics outright; they cannot come
  // from a real solve and would poison staircase math.
  for (double v : {out->solved_budget, out->relative_gap, out->cost,
                   out->best_bound, out->peak_bytes})
    if (!std::isfinite(v)) return false;
  if (out->cost < 0.0 || out->peak_bytes < 0.0 || out->solved_budget < 0.0)
    return false;
  return true;
}

// Atomic, durable record write: temp file in the same directory -> fsync
// -> rename -> directory fsync. Returns false (leaving no temp debris)
// on any failure, injected or real; a torn-write fault truncates the
// buffer but lets the protocol "succeed", modelling a kill between write
// and fsync that the next load must quarantine.
bool write_record_file(const std::string& dir, const std::string& final_path,
                       std::string_view bytes) {
  const std::string tmp = final_path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return false;
  size_t remaining = bytes.size();
  if (robust::fault(robust::FaultPoint::kStoreWriteTorn))
    remaining = bytes.size() / 2;
  const char* p = bytes.data();
  bool ok = true;
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  if (ok) ok = !robust::fault(robust::FaultPoint::kFsyncFail) && ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (robust::fault(robust::FaultPoint::kStoreRenameFail) ||
      std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename itself durable. If this fsync fails the record is
  // still fully present in this boot; a power loss may roll it back to
  // absent, which the load-time checks already treat as a plain miss.
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

void quarantine_file(const std::string& path) {
  if (path.empty()) return;
  std::error_code ec;
  fs::rename(path, path + ".quarantined", ec);
  if (ec) fs::remove(path, ec);  // last resort: never re-load it
}

}  // namespace

uint64_t PlanStore::index_key(uint64_t fingerprint,
                              const StoreShape& shape) const {
  uint64_t h = fingerprint;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(shape.partitioned ? 1 : 2);
  mix(shape.eliminate_diag_free ? 1 : 2);
  mix(static_cast<uint64_t>(shape.formulation) + 3);
  mix(shape.has_cost_cap ? std::bit_cast<uint64_t>(shape.cost_cap) : 5);
  return h;
}

PlanStore::PlanStore(std::string directory) : dir_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  // Recovery-on-load: index every intact record, quarantine everything
  // else, and sweep temp debris a crash may have stranded.
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string path = entry.path().string();
    const std::string ext = entry.path().extension().string();
    if (ext == ".tmp") {
      fs::remove(entry.path(), ec);  // stranded pre-rename temp: never valid
      continue;
    }
    if (ext != ".plan") continue;

    std::string bytes;
    {
      std::ifstream in(path, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
      if (!in.good() && !in.eof()) bytes.clear();
    }
    if (robust::fault(robust::FaultPoint::kStoreReadCorrupt) &&
        !bytes.empty())
      bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);

    bool valid = false;
    DecodedRecord dec;
    if (bytes.size() >= kHeaderBytes) {
      Reader r{bytes};
      const uint32_t magic = r.u32();
      const uint32_t version = r.u32();
      const uint64_t payload_size = r.u64();
      const uint64_t sum = r.u64();
      if (magic == kMagic && version == kPlanStoreFormatVersion &&
          bytes.size() - kHeaderBytes == payload_size) {
        const std::string_view payload(bytes.data() + kHeaderBytes,
                                       payload_size);
        if (checksum64(payload) == sum) valid = decode_payload(payload, &dec);
      }
    }
    if (!valid) {
      quarantine_file(path);
      ++stats_.load_quarantines;
      continue;
    }
    Record rec;
    rec.problem_blob = std::move(dec.problem_blob);
    rec.shape = dec.shape;
    rec.solved_budget = dec.solved_budget;
    rec.relative_gap = dec.relative_gap;
    rec.cost = dec.cost;
    rec.best_bound = dec.best_bound;
    rec.peak_bytes = dec.peak_bytes;
    rec.solution = std::move(dec.solution);
    rec.path = path;
    rec.validated = false;  // earns simulator validation on first use
    index_[index_key(dec.fingerprint, dec.shape)].push_back(std::move(rec));
    ++stats_.records_loaded;
  }
}

void PlanStore::quarantine_locked(uint64_t key, size_t idx, const char*) {
  auto it = index_.find(key);
  if (it == index_.end() || idx >= it->second.size()) return;
  quarantine_file(it->second[idx].path);
  it->second.erase(it->second.begin() + static_cast<ptrdiff_t>(idx));
  if (it->second.empty()) index_.erase(it);
  ++stats_.validation_quarantines;
}

std::optional<ScheduleResult> PlanStore::lookup(const RematProblem& problem,
                                                const StoreShape& shape,
                                                double budget_bytes,
                                                double relative_gap,
                                                double* staircase_bound_out) {
  if (staircase_bound_out) *staircase_bound_out = kNegInf;
  const std::string blob = problem.serialize_canonical();
  const uint64_t key = index_key(problem.fingerprint(), shape);
  const double ideal = problem.total_cost_all_nodes();

  std::lock_guard lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  auto& records = it->second;
  ptrdiff_t candidate = -1;
  size_t i = 0;
  while (i < records.size()) {
    Record& rec = records[i];
    // Hard guarantee at the disk boundary: the 64-bit fingerprint only
    // routed us here; nothing is trusted until the full canonical blob
    // matches (a colliding different problem is simply not ours).
    if (rec.shape != shape || rec.problem_blob != blob) {
      ++i;
      continue;
    }
    // Validation-before-serve: the simulator must reproduce the record's
    // economics at the budget it claims before the record may serve plans
    // or export bounds. A record that fails is quarantined -- a corrupt
    // or stale schedule degrades to a cache miss, never a wrong plan.
    if (!rec.validated) {
      const ScheduleResult eval =
          evaluate_schedule_against(problem, rec.solution, rec.solved_budget);
      const bool consistent =
          eval.feasible &&
          std::abs(eval.cost - rec.cost) <=
              1e-6 * std::max(1.0, std::abs(rec.cost)) &&
          eval.peak_memory <= rec.peak_bytes * (1.0 + kRelTol) + 1e-6 &&
          rec.best_bound <= rec.cost * (1.0 + kRelTol) + 1e-6;
      if (!consistent) {
        quarantine_locked(key, i, "simulator validation failed");
        if (index_.find(key) == index_.end()) break;
        continue;  // records shifted; re-examine index i
      }
      rec.validated = true;
    }
    // Dual bounds transfer down the staircase: a bound proven at budget B
    // is valid for any budget <= B (shrinking the budget only raises the
    // optimum).
    if (staircase_bound_out &&
        budget_bytes <= rec.solved_budget * (1.0 + kRelTol))
      *staircase_bound_out = std::max(*staircase_bound_out, rec.best_bound);
    // Staircase serve test, mirroring the in-memory warm-start chain: the
    // schedule must fit, and either the proof carries down (budget within
    // [peak, solved] and the recorded cost/bound pair meets this query's
    // gap) or the cost already sits at the compute floor, which no budget
    // can beat.
    const bool fits = rec.peak_bytes <= budget_bytes * (1.0 + kRelTol) + 1e-9;
    const bool bound_carries =
        budget_bytes <= rec.solved_budget * (1.0 + kRelTol) &&
        rec.cost - rec.best_bound <=
            relative_gap * std::max(1.0, std::abs(rec.cost));
    const bool at_floor = rec.cost <= ideal + 1e-9 * std::max(1.0, ideal);
    if (fits && (bound_carries || at_floor) && candidate < 0)
      candidate = static_cast<ptrdiff_t>(i);
    ++i;
  }
  if (candidate < 0) {
    ++stats_.misses;
    return std::nullopt;
  }
  Record& rec = records[static_cast<size_t>(candidate)];
  ScheduleResult out =
      evaluate_schedule_against(problem, rec.solution, budget_bytes);
  if (!out.feasible || out.peak_memory > budget_bytes * (1.0 + kRelTol)) {
    // Can only happen if the stored peak lied; drop the record and miss.
    quarantine_locked(key, static_cast<size_t>(candidate),
                      "budget validation failed");
    ++stats_.misses;
    return std::nullopt;
  }
  out.milp_status = milp::MilpStatus::kOptimal;
  const bool bound_carries =
      budget_bytes <= rec.solved_budget * (1.0 + kRelTol);
  out.best_bound = bound_carries ? rec.best_bound : out.cost;
  out.message = "plan store: proven optimum served from disk";
  ++stats_.hits;
  return out;
}

bool PlanStore::put(const RematProblem& problem, const StoreShape& shape,
                    double solved_budget_bytes, double relative_gap,
                    const ScheduleResult& result) {
  if (!result.feasible) return false;
  const std::string blob = problem.serialize_canonical();
  const uint64_t fingerprint = problem.fingerprint();
  const uint64_t key = index_key(fingerprint, shape);

  std::lock_guard lock(mu_);
  auto& records = index_[key];
  for (const Record& rec : records) {
    if (rec.shape != shape || rec.problem_blob != blob) continue;
    // An existing record with an equal-or-wider staircase step and an
    // equal-or-tighter certificate already answers everything this one
    // could; skip the write (sweeps re-prove the same optimum at many
    // budgets -- only distinct steps earn disk records).
    if (rec.solved_budget >= solved_budget_bytes * (1.0 - kRelTol) &&
        rec.peak_bytes <= result.peak_memory * (1.0 + kRelTol) + 1e-9 &&
        rec.cost - rec.best_bound <=
            relative_gap * std::max(1.0, std::abs(rec.cost)))
      return true;
  }

  Record rec;
  rec.problem_blob = blob;
  rec.shape = shape;
  rec.solved_budget = solved_budget_bytes;
  rec.relative_gap = relative_gap;
  rec.cost = result.cost;
  rec.best_bound = result.best_bound;
  rec.peak_bytes = result.peak_memory;
  rec.solution = result.solution;
  rec.validated = true;  // born from a live, simulator-validated solve

  const std::string payload =
      encode_payload(fingerprint, shape, blob, solved_budget_bytes,
                     relative_gap, rec.cost, rec.best_bound, rec.peak_bytes,
                     rec.solution);
  Writer header;
  header.u32(kMagic);
  header.u32(kPlanStoreFormatVersion);
  header.u64(payload.size());
  header.u64(checksum64(payload));
  std::string bytes = std::move(header.out);
  bytes += payload;

  // Content-addressed filename: identical records collapse onto one file,
  // so re-proving the same optimum (or two processes racing on the same
  // store) is idempotent rather than duplicative.
  const std::string name =
      hex16(fingerprint) + "-" + hex16(checksum64(bytes)) + ".plan";
  const std::string path = (fs::path(dir_) / name).string();
  bool ok;
  try {
    ok = write_record_file(dir_, path, bytes);
  } catch (const std::exception&) {
    ok = false;
  }
  rec.path = ok ? path : std::string();
  records.push_back(std::move(rec));  // serve from memory either way
  if (ok)
    ++stats_.puts;
  else
    ++stats_.put_failures;
  return ok;
}

StoreStats PlanStore::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

size_t PlanStore::size() const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const auto& kv : index_) n += kv.second.size();
  return n;
}

}  // namespace checkmate::store
