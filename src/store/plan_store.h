// Disk-backed plan store: proven optima that outlive the solver process.
//
// Checkmate plans are solved once and reused across many training runs, so
// the expensive artifact -- a proven-optimal schedule plus its dual bound
// -- must survive restarts. The store persists one record per proven
// optimum, keyed by the canonical problem fingerprint plus the formulation
// shape, and serves any later query whose budget lands on that record's
// staircase step: a schedule proven optimal at budget B with simulated
// peak P is provably optimal for every budget in [P, B] (budget
// monotonicity: shrinking the budget can only raise the optimum, and the
// recorded dual bound still certifies the cost), so records double as the
// steps of the overhead-vs-budget staircase and a 10-point sweep typically
// persists only the 3-4 distinct optima it actually contains.
//
// Crash-safety contract (TCPSPSuite's results-database shape, hardened):
//   - writes are atomic: serialize to a temp file in the store directory,
//     fsync, rename into place, fsync the directory. A crash at any point
//     leaves either the old state or the new record, never a half-visible
//     one; a torn write that does survive (e.g. power loss after rename of
//     a short file) is caught by the next bullet;
//   - every record carries a version header, its payload length and a
//     64-bit checksum. load() verifies all three and *quarantines* any
//     corrupt, truncated or version-skewed file (renamed to
//     *.quarantined, dropped from the index) instead of failing open --
//     recovery is a cache miss, never a crash and never a wrong plan;
//   - validation-before-serve: a record is only served after (a) its
//     stored canonical problem blob compares byte-equal to the query's
//     (the 64-bit fingerprint in formulation_cache.h only routes lookups;
//     here at the disk boundary full content equality is a hard
//     guarantee), and (b) the simulator re-validates the schedule against
//     the query budget and reproduces the recorded cost. A bit-flipped
//     record that slips past the checksum still degrades to a miss.
//
// Failed writes (fsync/rename errors, injected or real) are absorbed: put()
// reports false, the caller keeps its in-memory answer, and the query is
// unaffected. The chaos tier (tests/test_chaos.cpp) sweeps the injected
// disk faults in robust/fault_injection.h over this file's I/O paths.
//
// Any change to RematProblem::fingerprint()/serialize_canonical() or to
// the record layout must bump kPlanStoreFormatVersion: old records are
// then quarantined wholesale on load instead of being misparsed (the
// golden-fingerprint test pins the hash so the bump is a conscious act).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ilp_builder.h"
#include "core/remat_problem.h"
#include "core/scheduler.h"
#include "core/solution.h"

namespace checkmate::store {

inline constexpr uint32_t kPlanStoreFormatVersion = 1;

// The formulation-shape half of a record key (the problem half is the
// canonical blob). Mirrors service::FormulationKey minus the fingerprint.
struct StoreShape {
  bool partitioned = true;
  bool eliminate_diag_free = true;
  IlpFormulationKind formulation = IlpFormulationKind::kDense;
  bool has_cost_cap = false;
  double cost_cap = 0.0;

  friend bool operator==(const StoreShape&, const StoreShape&) = default;
};

struct StoreStats {
  int64_t records_loaded = 0;       // valid records indexed by load()
  int64_t load_quarantines = 0;     // corrupt/truncated/skewed files on load
  int64_t hits = 0;                 // lookups served (validated)
  int64_t misses = 0;               // lookups not served
  int64_t validation_quarantines = 0;  // records that failed content
                                       // equality or simulator validation
  int64_t puts = 0;                 // records durably written
  int64_t put_failures = 0;         // absorbed write failures
};

// Thread-safe. One instance per store directory; concurrent instances on
// the same directory are safe for readers (atomic renames) but make no
// cross-process dedup effort.
class PlanStore {
 public:
  // Creates the directory if needed, loads every *.plan record, and
  // quarantines whatever fails the header/checksum checks.
  explicit PlanStore(std::string directory);

  PlanStore(const PlanStore&) = delete;
  PlanStore& operator=(const PlanStore&) = delete;

  // Serves `budget_bytes` from the staircase if some record covers it:
  // record.peak <= budget <= record.solved_budget (or the record's cost is
  // `problem`'s compute floor, which no budget can beat), with the
  // recorded cost/bound pair meeting `relative_gap`. The returned result
  // is simulator-validated against this budget with milp_status kOptimal,
  // the recorded dual bound, and zero nodes (no solver work). On a miss,
  // `staircase_bound_out` (may be null) still receives the best valid
  // lower bound on the optimum at this budget that the stored dual bounds
  // imply (-inf if none) -- a re-solve can terminate against it.
  std::optional<ScheduleResult> lookup(const RematProblem& problem,
                                       const StoreShape& shape,
                                       double budget_bytes,
                                       double relative_gap,
                                       double* staircase_bound_out = nullptr);

  // Persists a proven optimum crash-safely. Best-effort: any I/O failure
  // (injected or real) returns false and leaves the store directory
  // consistent; the record is still served from memory for the lifetime
  // of this instance. Records whose staircase step is already covered by
  // an equal-or-wider existing record are skipped (returns true).
  bool put(const RematProblem& problem, const StoreShape& shape,
           double solved_budget_bytes, double relative_gap,
           const ScheduleResult& result);

  StoreStats stats() const;
  size_t size() const;  // records currently indexed
  const std::string& directory() const { return dir_; }

 private:
  struct Record {
    std::string problem_blob;  // RematProblem::serialize_canonical
    StoreShape shape;
    double solved_budget = 0.0;
    double relative_gap = 0.0;
    double cost = 0.0;
    double best_bound = 0.0;
    double peak_bytes = 0.0;
    RematSolution solution;
    std::string path;  // on-disk file ("" = memory-only after failed put)
    // Set once the simulator has re-validated this record in this process
    // (records born from a live solve start true; loaded records earn it
    // on first use). Only validated records serve plans or export bounds.
    bool validated = false;
  };

  // fingerprint+shape -> records, newest last. The 64-bit key only routes;
  // every use re-checks problem_blob and shape.
  uint64_t index_key(uint64_t fingerprint, const StoreShape& shape) const;
  void quarantine_locked(uint64_t key, size_t idx, const char* why);

  std::string dir_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::vector<Record>> index_;
  StoreStats stats_;
};

}  // namespace checkmate::store
