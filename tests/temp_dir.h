// RAII per-test scratch directory under the system temp root.
//
// Store tests must not leak state between cases or runs: each test makes
// its own TempDir, and the destructor removes the whole tree
// unconditionally -- a failing (or throwing) test cleans up exactly like
// a passing one, so a red run never poisons the next one's directory.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

namespace checkmate::testing {

class TempDir {
 public:
  explicit TempDir(const std::string& tag = "checkmate_test") {
    const std::string tmpl =
        (std::filesystem::temp_directory_path() / (tag + ".XXXXXX")).string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr)
      throw std::runtime_error("TempDir: mkdtemp failed for " + tmpl);
    path_ = buf.data();
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best-effort, pass or fail
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const {
    return (std::filesystem::path(path_) / name).string();
  }

 private:
  std::string path_;
};

}  // namespace checkmate::testing
