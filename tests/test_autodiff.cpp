#include "model/autodiff.h"

#include <gtest/gtest.h>

#include "model/zoo.h"

namespace checkmate::model {
namespace {

TEST(Autodiff, LinearChainStructure) {
  auto fwd = zoo::linear_net(4);  // input + 4 conv + loss = 6 nodes
  auto g = make_training_graph(fwd);
  // Gradients for everything except the input: 5.
  EXPECT_EQ(g.dag.size(), 11);
  EXPECT_EQ(g.backward_nodes().size(), 5u);
  g.validate();
}

TEST(Autodiff, GradIdsAreReverseTopological) {
  auto fwd = zoo::linear_net(3);  // 5 fwd nodes
  auto g = make_training_graph(fwd);
  // grad ids: node 5 = grad of 4 (loss), node 6 = grad of 3, ...
  for (NodeId v = 5; v < g.dag.size(); ++v) {
    EXPECT_TRUE(g.ops[v].is_gradient());
    EXPECT_EQ(g.ops[v].grad_of, 4 - (v - 5));
  }
}

TEST(Autodiff, GradDependsOnActivationsAndUpstreamGrad) {
  auto fwd = zoo::linear_net(3);
  auto g = make_training_graph(fwd);
  const int f = fwd.dag.size();  // 5
  // grad of node 2 (conv2): id f + (4 - 2) = f + 2.
  const NodeId g2 = f + 2;
  ASSERT_EQ(g.ops[g2].grad_of, 2);
  const auto& deps = g.dag.deps(g2);
  // Own activation (2), input activation (1), upstream grad (grad of 3).
  EXPECT_NE(std::find(deps.begin(), deps.end(), 2), deps.end());
  EXPECT_NE(std::find(deps.begin(), deps.end(), 1), deps.end());
  EXPECT_NE(std::find(deps.begin(), deps.end(), f + 1), deps.end());
}

TEST(Autodiff, LossGradIsSeed) {
  auto fwd = zoo::linear_net(2);
  auto g = make_training_graph(fwd);
  const int f = fwd.dag.size();
  // First gradient node differentiates the loss and depends only on
  // forward values (no upstream gradient exists).
  EXPECT_EQ(g.ops[f].grad_of, f - 1);
  for (NodeId d : g.dag.deps(f)) EXPECT_LT(d, f);
}

TEST(Autodiff, BackwardCostFactorApplied) {
  auto fwd = zoo::linear_net(2);
  AutodiffOptions opts;
  opts.backward_cost_factor = 3.0;
  auto g = make_training_graph(fwd, opts);
  const int f = fwd.dag.size();
  for (NodeId v = f; v < g.dag.size(); ++v) {
    const NodeId of = g.ops[v].grad_of;
    EXPECT_EQ(g.ops[v].forward_flops, 3 * fwd.ops[of].forward_flops);
  }
}

TEST(Autodiff, GradShapesMirrorActivations) {
  auto fwd = zoo::vgg16(2);
  auto g = make_training_graph(fwd);
  for (NodeId v = 0; v < g.dag.size(); ++v) {
    if (!g.ops[v].is_gradient()) continue;
    EXPECT_EQ(g.ops[v].output, g.ops[g.ops[v].grad_of].output);
  }
}

TEST(Autodiff, RejectsDoubleApplication) {
  auto fwd = zoo::linear_net(2);
  auto g = make_training_graph(fwd);
  EXPECT_THROW(make_training_graph(g), std::invalid_argument);
}

TEST(Autodiff, ResidualGraphGradFanIn) {
  // A residual add has two users of its input; the input's gradient needs
  // both users' gradients.
  auto fwd = zoo::resnet(1, 224, {1, 1, 1, 1});
  auto g = make_training_graph(fwd);
  g.validate();
  // Find a forward node with 2 forward users; its grad node must depend on
  // two gradient nodes.
  for (NodeId v = 0; v < fwd.dag.size(); ++v) {
    if (fwd.dag.users(v).size() == 2) {
      // Locate grad node of v.
      for (NodeId w = fwd.dag.size(); w < g.dag.size(); ++w) {
        if (g.ops[w].grad_of == v) {
          int grad_deps = 0;
          for (NodeId d : g.dag.deps(w))
            if (g.ops[d].is_gradient()) ++grad_deps;
          EXPECT_EQ(grad_deps, 2);
        }
      }
      break;
    }
  }
}

TEST(Autodiff, TrainingGraphTopologicallyLabeled) {
  for (auto* builder : {+[] { return zoo::unet(1); },
                        +[] { return zoo::fcn8(1); },
                        +[] { return zoo::segnet(1); }}) {
    auto g = make_training_graph(builder());
    EXPECT_TRUE(g.dag.is_topologically_labeled());
  }
}

}  // namespace
}  // namespace checkmate::model
