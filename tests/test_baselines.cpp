#include "baselines/baselines.h"

#include <gtest/gtest.h>

#include "core/plan.h"
#include "core/simulator.h"
#include "model/autodiff.h"
#include "model/zoo.h"

namespace checkmate::baselines {
namespace {

RematProblem vgg_problem(int64_t batch = 4) {
  return RematProblem::from_dnn(
      model::make_training_graph(model::zoo::vgg16(batch)),
      model::CostMetric::kProfiledTimeUs);
}

RematProblem unet_problem(int64_t batch = 2) {
  return RematProblem::from_dnn(
      model::make_training_graph(model::zoo::unet(batch, 64, 96)),
      model::CostMetric::kProfiledTimeUs);
}

double simulated_cost(const RematProblem& p, const RematSolution& sol) {
  auto sim = simulate_plan(p, generate_execution_plan(p, sol));
  EXPECT_TRUE(sim.valid) << sim.error;
  return sim.total_cost;
}

double simulated_peak(const RematProblem& p, const RematSolution& sol) {
  auto sim = simulate_plan(p, generate_execution_plan(p, sol));
  EXPECT_TRUE(sim.valid) << sim.error;
  return sim.peak_memory;
}

TEST(Baselines, CheckpointAllComputesEachNodeOnce) {
  auto p = vgg_problem();
  auto sol = checkpoint_all_schedule(p);
  ASSERT_EQ(sol.check_feasible(p), "");
  EXPECT_EQ(sol.num_computations(), p.size());
  EXPECT_NEAR(simulated_cost(p, sol), p.total_cost_all_nodes(),
              1e-9 * p.total_cost_all_nodes());
}

TEST(Baselines, IsLinearForwardClassification) {
  EXPECT_TRUE(is_linear_forward(vgg_problem()));
  EXPECT_TRUE(is_linear_forward(RematProblem::unit_training_chain(4)));
  EXPECT_FALSE(is_linear_forward(unet_problem()));
}

TEST(Baselines, ApplicabilityMatrixMatchesTable1) {
  auto linear = vgg_problem();
  auto nonlinear = unet_problem();
  // Linear models: everything applies.
  for (auto kind :
       {BaselineKind::kCheckpointAll, BaselineKind::kChenSqrtN,
        BaselineKind::kChenGreedy, BaselineKind::kGriewankLogN,
        BaselineKind::kApSqrtN, BaselineKind::kApGreedy,
        BaselineKind::kLinearizedSqrtN, BaselineKind::kLinearizedGreedy})
    EXPECT_TRUE(baseline_applicable(linear, kind)) << to_string(kind);
  // Non-linear: Chen/Griewank originals do not apply; generalizations do.
  EXPECT_FALSE(baseline_applicable(nonlinear, BaselineKind::kChenSqrtN));
  EXPECT_FALSE(baseline_applicable(nonlinear, BaselineKind::kChenGreedy));
  EXPECT_FALSE(baseline_applicable(nonlinear, BaselineKind::kGriewankLogN));
  EXPECT_TRUE(baseline_applicable(nonlinear, BaselineKind::kApSqrtN));
  EXPECT_TRUE(baseline_applicable(nonlinear, BaselineKind::kLinearizedGreedy));
}

TEST(Baselines, ChenSqrtNSelectsEverySqrtLth) {
  std::vector<NodeId> candidates(16);
  for (int i = 0; i < 16; ++i) candidates[i] = i;
  auto cp = chen_sqrt_n_select(candidates);
  EXPECT_EQ(cp, (std::vector<NodeId>{4, 8, 12}));
}

TEST(Baselines, ChenGreedyRespectsSegmentBudget) {
  auto p = RematProblem::unit_training_chain(9);  // 10 fwd values, unit mem
  auto candidates = forward_chain_candidates(p);
  auto cp = chen_greedy_select(p, candidates, 3.0);
  // Segments of ~3 units: checkpoints at indices 3, 7 (acc resets after).
  ASSERT_GE(cp.size(), 2u);
  for (size_t i = 1; i < cp.size(); ++i) EXPECT_GE(cp[i] - cp[i - 1], 3);
}

RematProblem uniform_linear_problem(int layers = 16) {
  // Uniform activation sizes: the regime where sqrt(n) checkpointing pays
  // (on memory pyramids like coarse VGG the early segment dominates and
  // count-based checkpointing saves little -- see Figure 5 discussion).
  return RematProblem::from_dnn(
      model::make_training_graph(model::zoo::linear_net(layers, 4, 32, 32)),
      model::CostMetric::kProfiledTimeUs);
}

TEST(Baselines, SqrtNReducesMemoryCostsCompute) {
  auto p = uniform_linear_problem();
  auto all = checkpoint_all_schedule(p);
  auto sqrt_schedules = baseline_schedules(p, BaselineKind::kChenSqrtN);
  ASSERT_EQ(sqrt_schedules.size(), 1u);
  const auto& lean = sqrt_schedules[0].solution;
  ASSERT_EQ(lean.check_feasible(p), "");
  EXPECT_LT(simulated_peak(p, lean), simulated_peak(p, all));
  EXPECT_GT(simulated_cost(p, lean), simulated_cost(p, all));
}

TEST(Baselines, GreedySweepExposesMemoryComputeTradeoff) {
  auto p = uniform_linear_problem();
  auto schedules = baseline_schedules(p, BaselineKind::kChenGreedy);
  ASSERT_GE(schedules.size(), 4u);
  double min_peak = 1e300, max_peak = 0.0;
  for (const auto& s : schedules) {
    ASSERT_EQ(s.solution.check_feasible(p), "") << s.label;
    const double peak = simulated_peak(p, s.solution);
    min_peak = std::min(min_peak, peak);
    max_peak = std::max(max_peak, peak);
  }
  EXPECT_LT(min_peak, 0.8 * max_peak);  // the knob genuinely moves memory
}

TEST(Baselines, ArticulationCandidatesOnUnet) {
  auto p = unet_problem();
  auto aps = articulation_candidates(p);
  // U-Net has few articulation points (skip connections bypass most
  // vertices) -- the paper's motivation for the linearized variants.
  auto all_fwd = forward_chain_candidates(p);
  EXPECT_LT(aps.size(), all_fwd.size());
  EXPECT_FALSE(aps.empty());
  for (NodeId v : aps) EXPECT_FALSE(p.is_backward[v]);
}

TEST(Baselines, ApVariantsProduceFeasibleSchedulesOnUnet) {
  auto p = unet_problem();
  for (auto kind : {BaselineKind::kApSqrtN, BaselineKind::kApGreedy,
                    BaselineKind::kLinearizedSqrtN,
                    BaselineKind::kLinearizedGreedy}) {
    auto schedules = baseline_schedules(p, kind);
    ASSERT_FALSE(schedules.empty()) << to_string(kind);
    for (const auto& s : schedules)
      EXPECT_EQ(s.solution.check_feasible(p), "")
          << to_string(kind) << " " << s.label;
  }
}

TEST(Baselines, LinearizedMatchesChenOnLinearGraphs) {
  // Appendix B: "all proposed generalizations exactly reproduce the
  // original heuristics on linear networks."
  auto p = vgg_problem();
  auto chen = baseline_schedules(p, BaselineKind::kChenSqrtN);
  auto lin = baseline_schedules(p, BaselineKind::kLinearizedSqrtN);
  ASSERT_EQ(chen.size(), 1u);
  ASSERT_EQ(lin.size(), 1u);
  EXPECT_EQ(chen[0].solution.R, lin[0].solution.R);
  EXPECT_EQ(chen[0].solution.S, lin[0].solution.S);
}

TEST(Baselines, PolicySimulationKeepsInputsResident) {
  auto p = vgg_problem();
  auto schedules = baseline_schedules(p, BaselineKind::kChenSqrtN);
  const auto& sol = schedules[0].solution;
  // Node 0 is the input; Chen-style policies pin it.
  for (int t = 1; t < p.size(); ++t) EXPECT_EQ(sol.S[t][0], 1) << t;
}

TEST(Baselines, InapplicableReturnsEmpty) {
  auto p = unet_problem();
  EXPECT_TRUE(baseline_schedules(p, BaselineKind::kChenSqrtN).empty());
  EXPECT_TRUE(baseline_schedules(p, BaselineKind::kGriewankLogN).empty());
}

TEST(Baselines, EveryScheduleSimulatesCleanly) {
  for (auto& p : {vgg_problem(2), unet_problem(1)}) {
    for (auto kind :
         {BaselineKind::kCheckpointAll, BaselineKind::kChenSqrtN,
          BaselineKind::kChenGreedy, BaselineKind::kGriewankLogN,
          BaselineKind::kApSqrtN, BaselineKind::kApGreedy,
          BaselineKind::kLinearizedSqrtN, BaselineKind::kLinearizedGreedy}) {
      for (const auto& s : baseline_schedules(p, kind)) {
        auto sim = simulate_plan(p, generate_execution_plan(p, s.solution));
        EXPECT_TRUE(sim.valid)
            << to_string(kind) << " " << s.label << ": " << sim.error;
      }
    }
  }
}

}  // namespace
}  // namespace checkmate::baselines
