#include "core/batch_search.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "baselines/baselines.h"
#include "core/plan.h"
#include "core/simulator.h"

namespace checkmate {
namespace {

// Synthetic factory: memory scales linearly with batch.
ProblemFactory unit_chain_factory(int layers) {
  return [layers](int64_t batch) {
    auto p = RematProblem::unit_training_chain(layers);
    for (double& m : p.memory) m *= static_cast<double>(batch);
    p.name += "_b" + std::to_string(batch);
    return p;
  };
}

TEST(MaxBatch, MonotoneSyntheticProbe) {
  // Probe: feasible iff batch <= 37. The search must find exactly 37.
  auto factory = unit_chain_factory(3);
  FeasibilityProbe probe = [](const RematProblem& p) {
    return p.memory[0] <= 37.0;
  };
  MaxBatchOptions opts;
  opts.max_batch = 1024;
  auto res = max_batch_size(factory, probe, opts);
  EXPECT_EQ(res.max_batch, 37);
}

TEST(MaxBatch, InfeasibleAtMinReturnsZero) {
  auto factory = unit_chain_factory(3);
  FeasibilityProbe probe = [](const RematProblem&) { return false; };
  auto res = max_batch_size(factory, probe);
  EXPECT_EQ(res.max_batch, 0);
  EXPECT_TRUE(res.infeasible_at_min_batch);
}

TEST(MaxBatch, FloorAboveBudgetIsTypedWithCertificate) {
  // A graph whose minimal footprint exceeds the budget at every batch
  // size: the search returns the typed outcome with the min_batch
  // instance's memory floor as the certificate, instead of garbage.
  auto factory = unit_chain_factory(3);
  const double budget = 1.5;  // below even the batch-1 working set
  FeasibilityProbe probe = [budget](const RematProblem& p) {
    return p.memory_floor() <= budget;
  };
  auto res = max_batch_size(factory, probe);
  EXPECT_EQ(res.max_batch, 0);
  EXPECT_TRUE(res.infeasible_at_min_batch);
  EXPECT_GT(res.min_batch_memory_floor_bytes, budget);
  EXPECT_DOUBLE_EQ(res.min_batch_memory_floor_bytes,
                   factory(1).memory_floor());
}

TEST(MaxBatch, ThrowingProbeCountsAsInfeasibleNotCrash) {
  // Probes that die (numerical failure, injected fault) must degrade to
  // "infeasible at that batch", keeping the search monotone and alive.
  auto factory = unit_chain_factory(3);
  FeasibilityProbe probe = [](const RematProblem& p) -> bool {
    if (p.memory[0] > 8.0) throw std::runtime_error("probe died");
    return true;
  };
  MaxBatchOptions opts;
  opts.max_batch = 1024;
  auto res = max_batch_size(factory, probe, opts);
  EXPECT_EQ(res.max_batch, 8);
  EXPECT_FALSE(res.infeasible_at_min_batch);
}

TEST(MaxBatch, ThrowingFactoryAtMinBatchIsTyped) {
  auto factory = [](int64_t) -> RematProblem {
    throw std::runtime_error("factory died");
  };
  FeasibilityProbe probe = [](const RematProblem&) { return true; };
  auto res = max_batch_size(factory, probe);
  EXPECT_EQ(res.max_batch, 0);
  EXPECT_TRUE(res.infeasible_at_min_batch);
  EXPECT_DOUBLE_EQ(res.min_batch_memory_floor_bytes, 0.0);
}

TEST(MaxBatch, FeasibleEverywhereReturnsMax) {
  auto factory = unit_chain_factory(3);
  FeasibilityProbe probe = [](const RematProblem&) { return true; };
  MaxBatchOptions opts;
  opts.max_batch = 64;
  auto res = max_batch_size(factory, probe, opts);
  EXPECT_EQ(res.max_batch, 64);
}

TEST(MaxBatch, EachBatchSizeBuiltAndProbedAtMostOnce) {
  // Probes are memoized: every factory build corresponds to one recorded
  // probe and no batch size appears twice, whatever path the growth and
  // bisection phases take.
  int builds = 0;
  auto counting_factory = [&builds](int64_t batch) {
    ++builds;
    auto p = RematProblem::unit_training_chain(3);
    for (double& m : p.memory) m *= static_cast<double>(batch);
    return p;
  };
  FeasibilityProbe probe = [](const RematProblem& p) {
    return p.memory[0] <= 37.0;
  };
  MaxBatchOptions opts;
  opts.max_batch = 1024;
  auto res = max_batch_size(counting_factory, probe, opts);
  EXPECT_EQ(res.max_batch, 37);
  EXPECT_EQ(builds, static_cast<int>(res.probes.size()));
  std::set<int64_t> seen;
  for (const auto& pr : res.probes) EXPECT_TRUE(seen.insert(pr.batch).second);
}

TEST(MaxBatch, ProbeCountLogarithmic) {
  auto factory = unit_chain_factory(3);
  FeasibilityProbe probe = [](const RematProblem& p) {
    return p.memory[0] <= 1000.0;
  };
  MaxBatchOptions opts;
  opts.max_batch = 1 << 20;
  auto res = max_batch_size(factory, probe, opts);
  EXPECT_EQ(res.max_batch, 1000);
  EXPECT_LE(res.probes.size(), 45u);
}

TEST(MaxBatch, IlpProbeRespectsBudgetAndCostCap) {
  // Budget 8 units; unit chain with batch-scaled memory. The ILP probe must
  // accept small batches and reject ones whose minimum footprint exceeds
  // the budget.
  auto factory = unit_chain_factory(4);
  auto probe = make_ilp_probe(/*budget_bytes=*/8.0,
                              /*per_probe_time_limit_sec=*/30.0);
  MaxBatchOptions opts;
  opts.budget_bytes = 8.0;
  opts.max_batch = 64;
  auto res = max_batch_size(factory, probe, opts);
  // Interior gradients need 4 resident values: batch 2 => 8 units exactly.
  EXPECT_EQ(res.max_batch, 2);
}

TEST(MaxBatch, IlpEnablesLargerBatchThanCheckpointAll) {
  // The headline of Figure 6: rematerialization admits larger batches than
  // checkpoint-all under the same budget (with at most one extra forward
  // pass of compute).
  const int layers = 6;
  auto factory = unit_chain_factory(layers);
  const double budget = 16.0;

  FeasibilityProbe checkpoint_all_probe = [budget](const RematProblem& p) {
    auto sol = baselines::checkpoint_all_schedule(p);
    auto sim = simulate_plan(p, generate_execution_plan(p, sol));
    return sim.valid && sim.peak_memory <= budget;
  };
  auto ilp_probe = make_ilp_probe(budget, 30.0);

  MaxBatchOptions opts;
  opts.budget_bytes = budget;
  opts.max_batch = 64;
  auto base = max_batch_size(factory, checkpoint_all_probe, opts);
  auto ours = max_batch_size(factory, ilp_probe, opts);
  EXPECT_GT(ours.max_batch, base.max_batch);
}

}  // namespace
}  // namespace checkmate
