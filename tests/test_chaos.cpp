// Chaos tier: zoo sweeps under seeded fault schedules, tight deadlines,
// and the never-fail contract of the plan service's fallback ladder.
//
// The fault-schedule cases need -DCHECKMATE_FAULT_INJECTION=ON (the
// CHECK_TIER=full CI stage builds them under ASan+UBSan); in a plain build
// they GTEST_SKIP and only the deadline/ladder cases run. Single-threaded
// runs under an armed schedule are exactly reproducible (the hit sequence
// is deterministic), so those assert bit-identical outcomes run to run;
// multi-threaded runs assert recovery and feasibility only.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "core/remat_problem.h"
#include "core/scheduler.h"
#include "model/graph_builder.h"
#include "model/zoo.h"
#include "robust/deadline.h"
#include "robust/fault_injection.h"
#include "service/plan_service.h"
#include "store/plan_store.h"
#include "temp_dir.h"

namespace checkmate {
namespace {

using service::PlanOutcome;
using service::PlanProvenance;

// Small zoo instances: big enough to exercise cuts, snapshots and the
// recovery ladder, small enough to sweep under every fault schedule.
std::vector<RematProblem> chaos_instances() {
  std::vector<RematProblem> out;
  out.push_back(RematProblem::unit_training_chain(6));
  out.push_back(RematProblem::unit_training_chain(8));
  out.push_back(RematProblem::from_dnn(
      model::make_training_graph(model::zoo::linear_net(6, 4, 8, 8)),
      model::CostMetric::kProfiledTimeUs));
  return out;
}

std::vector<double> chaos_budgets(const RematProblem& p) {
  const double floor = p.memory_floor();
  const double top = p.total_memory();
  return {top, floor + 0.65 * (top - floor), floor + 0.25 * (top - floor),
          0.5 * floor};
}

// The never-fail contract: every outcome is either a simulator-validated
// feasible plan with a coherent provenance, or a *typed* infeasibility.
void assert_outcome_contract(const RematProblem& p, double budget,
                             const PlanOutcome& out, const std::string& ctx) {
  SCOPED_TRACE(ctx);
  if (out.provenance == PlanProvenance::kInfeasible) {
    EXPECT_FALSE(out.result.feasible);
    // Only ever claimed with a proof; the floor cases carry the
    // certificate.
    if (out.result.proven_infeasible) {
      EXPECT_GT(out.result.memory_floor_bytes, 0.0);
    }
    return;
  }
  ASSERT_TRUE(out.result.feasible);
  EXPECT_TRUE(out.result.sim.valid);
  EXPECT_LE(out.result.peak_memory, budget + 1e-6);
  EXPECT_GE(out.result.cost, p.total_cost_all_nodes() - 1e-9);
  EXPECT_GE(out.gap, 0.0);
  if (out.provenance != PlanProvenance::kProvenOptimal) {
    EXPECT_FALSE(out.why_degraded.empty());
  }
}

// Only the fault-injection build's schedule sweeps call this; the plain
// build compiles it anyway so the chaos suite stays one translation unit.
[[maybe_unused]] void run_sweep_and_assert(const std::string& ctx,
                                           int num_threads) {
  for (const RematProblem& p : chaos_instances()) {
    service::PlanService svc;
    IlpSolveOptions opts;
    opts.time_limit_sec = 20.0;
    opts.num_threads = num_threads;
    const auto budgets = chaos_budgets(p);
    const auto outcomes = svc.sweep_robust(p, budgets, opts);
    ASSERT_EQ(outcomes.size(), budgets.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      assert_outcome_contract(p, budgets[i], outcomes[i],
                              ctx + " n=" + std::to_string(p.size()) +
                                  " budget#" + std::to_string(i));
      // Budgets above the floor must never be reported infeasible: the
      // ladder's heuristic rung always has checkpoint-all available.
      if (budgets[i] >= p.memory_floor())
        EXPECT_NE(outcomes[i].provenance, PlanProvenance::kInfeasible);
      else
        EXPECT_EQ(outcomes[i].provenance, PlanProvenance::kInfeasible);
    }
  }
}

// Deadlines from 10 ms to 10 s: every query must come back with a
// validated plan (or typed infeasibility below the floor), whatever rung
// the deadline forces it onto.
TEST(ChaosDeadlines, LadderHoldsAcrossDeadlineScales) {
  auto p = RematProblem::unit_training_chain(8);
  service::PlanService svc;
  for (double deadline_sec : {0.01, 0.1, 1.0, 10.0}) {
    IlpSolveOptions opts;
    opts.deadline = robust::Deadline::after(deadline_sec);
    const auto budgets = chaos_budgets(p);
    const auto outcomes = svc.sweep_robust(p, budgets, opts);
    for (size_t i = 0; i < outcomes.size(); ++i)
      assert_outcome_contract(
          p, budgets[i], outcomes[i],
          "deadline=" + std::to_string(deadline_sec) + "s budget#" +
              std::to_string(i));
  }
}

#ifdef CHECKMATE_FAULT_INJECTION

class ChaosFaults : public ::testing::Test {
 protected:
  void TearDown() override {
    robust::FaultInjector::instance().disarm_all();
  }
};

struct FaultSchedule {
  robust::FaultPoint point;
  uint64_t seed;
  uint64_t period;
  uint64_t limit;  // 0 = unlimited
};

std::vector<FaultSchedule> fault_schedules() {
  using robust::FaultPoint;
  return {
      // Periodic LU breakdowns: exercises refactorize -> slack-basis reset
      // -> per-node abandon, at two densities.
      {FaultPoint::kLuFactorize, 11, 7, 0},
      {FaultPoint::kLuFactorize, 12, 2, 0},
      // Snapshot-restore mismatches force warm starts through the
      // slack-basis reset path.
      {FaultPoint::kSnapshotRestore, 21, 3, 0},
      // Cut-row append failures abandon the cut round / node, never the
      // solve.
      {FaultPoint::kCutRowAppend, 31, 2, 0},
      // Allocation failures during engine construction: guarded_slot turns
      // them into dropped-with-parent-bound nodes; a bounded burst also
      // checks recovery after the storm passes.
      {FaultPoint::kSparseAlloc, 41, 5, 0},
      {FaultPoint::kSparseAlloc, 42, 1, 8},
      // Worker stalls: pure latency, must not change any answer.
      {FaultPoint::kWorkerStall, 51, 3, 0},
  };
}

std::string schedule_name(const FaultSchedule& s) {
  return std::string(robust::to_string(s.point)) + "/seed" +
         std::to_string(s.seed) + "/period" + std::to_string(s.period) +
         (s.limit ? "/limit" + std::to_string(s.limit) : "");
}

TEST_F(ChaosFaults, EveryScheduleRecoversSingleThreaded) {
  auto& inj = robust::FaultInjector::instance();
  for (const FaultSchedule& s : fault_schedules()) {
    inj.arm(s.point, s.seed, s.period, s.limit);
    run_sweep_and_assert(schedule_name(s) + " threads=1", 1);
    inj.disarm_all();
  }
}

TEST_F(ChaosFaults, EveryScheduleRecoversMultiThreaded) {
  auto& inj = robust::FaultInjector::instance();
  for (const FaultSchedule& s : fault_schedules()) {
    inj.arm(s.point, s.seed, s.period, s.limit);
    run_sweep_and_assert(schedule_name(s) + " threads=4", 4);
    inj.disarm_all();
  }
}

// Single-threaded chaos is exactly reproducible: re-arming the identical
// schedule (which resets the hit counters) must reproduce the identical
// outcome, bit for bit, because the hit sequence -- and therefore every
// injected failure and every recovery decision -- replays.
TEST_F(ChaosFaults, SingleThreadedChaosIsDeterministic) {
  auto& inj = robust::FaultInjector::instance();
  auto p = RematProblem::unit_training_chain(8);
  const double budget = 7.0;
  auto run_once = [&]() {
    inj.arm(robust::FaultPoint::kLuFactorize, 99, 5, 0);
    service::PlanService svc;
    IlpSolveOptions opts;
    opts.num_threads = 1;
    PlanOutcome out = svc.plan_robust(p, budget, opts);
    inj.disarm_all();
    return out;
  };
  const PlanOutcome a = run_once();
  const PlanOutcome b = run_once();
  EXPECT_EQ(a.provenance, b.provenance);
  EXPECT_EQ(a.result.feasible, b.result.feasible);
  EXPECT_DOUBLE_EQ(a.result.cost, b.result.cost);
  EXPECT_EQ(a.result.nodes, b.result.nodes);
  EXPECT_EQ(a.result.lp_iterations, b.result.lp_iterations);
  EXPECT_EQ(a.why_degraded, b.why_degraded);
}

// Disk-fault schedules over the plan store's I/O paths: torn writes,
// read corruption, rename and fsync failures, at partial and total
// densities. Two boots per schedule -- populate under faults, then
// restart on whatever the faults left on disk -- and EVERY query in both
// boots must end in a served outcome (the contract above): a failed
// write degrades to a skipped persist, a damaged record to a quarantine
// plus re-solve, never to a crash or a wrong plan.
TEST_F(ChaosFaults, DiskFaultSchedulesEndInServedOutcomes) {
  using robust::FaultPoint;
  const std::vector<FaultSchedule> schedules = {
      {FaultPoint::kStoreWriteTorn, 61, 2, 0},
      {FaultPoint::kStoreWriteTorn, 62, 1, 0},    // every write torn
      {FaultPoint::kStoreReadCorrupt, 63, 2, 0},
      {FaultPoint::kStoreReadCorrupt, 64, 1, 0},  // every read corrupt
      {FaultPoint::kStoreRenameFail, 65, 2, 0},
      {FaultPoint::kFsyncFail, 66, 1, 0},         // dying device
  };
  auto& inj = robust::FaultInjector::instance();
  auto p = RematProblem::unit_training_chain(8);
  const auto budgets = chaos_budgets(p);
  for (const FaultSchedule& s : schedules) {
    checkmate::testing::TempDir dir("checkmate_chaos_store");
    for (int boot = 0; boot < 2; ++boot) {
      inj.arm(s.point, s.seed + static_cast<uint64_t>(boot), s.period,
              s.limit);
      service::PlanServiceOptions sopts;
      sopts.store_dir = dir.path();
      service::PlanService svc(sopts);
      const auto outcomes = svc.sweep_robust(p, budgets);
      inj.disarm_all();
      ASSERT_EQ(outcomes.size(), budgets.size());
      for (size_t i = 0; i < outcomes.size(); ++i) {
        assert_outcome_contract(p, budgets[i], outcomes[i],
                                schedule_name(s) + " boot" +
                                    std::to_string(boot) + " budget#" +
                                    std::to_string(i));
        if (budgets[i] >= p.memory_floor())
          EXPECT_NE(outcomes[i].provenance, PlanProvenance::kInfeasible);
      }
    }
  }
}

// The full composition: disk faults AND solver faults AND a deadline, on
// a store that is corrupted between boots. The never-fail contract must
// hold through all three layers at once.
TEST_F(ChaosFaults, DiskAndSolverFaultsComposeUnderDeadline) {
  using robust::FaultPoint;
  auto& inj = robust::FaultInjector::instance();
  auto p = RematProblem::unit_training_chain(8);
  const auto budgets = chaos_budgets(p);
  checkmate::testing::TempDir dir("checkmate_chaos_store");
  for (int boot = 0; boot < 2; ++boot) {
    inj.arm(FaultPoint::kLuFactorize, 71, 5, 0);
    inj.arm(FaultPoint::kStoreWriteTorn, 72, 2, 0);
    inj.arm(FaultPoint::kStoreReadCorrupt, 73, 2, 0);
    service::PlanServiceOptions sopts;
    sopts.store_dir = dir.path();
    service::PlanService svc(sopts);
    IlpSolveOptions opts;
    opts.deadline = robust::Deadline::after(10.0);
    const auto outcomes = svc.sweep_robust(p, budgets, opts);
    inj.disarm_all();
    for (size_t i = 0; i < outcomes.size(); ++i) {
      assert_outcome_contract(p, budgets[i], outcomes[i],
                              "compose boot" + std::to_string(boot) +
                                  " budget#" + std::to_string(i));
      if (budgets[i] >= p.memory_floor())
        EXPECT_NE(outcomes[i].provenance, PlanProvenance::kInfeasible);
    }
  }
}

// A 100%-allocation-failure storm kills every LP the solver tries to
// build; the ladder must still produce a validated plan. Two rungs can
// legitimately catch it: the baseline-seeded incumbent survives inside
// branch & bound even with every LP dead (kIncumbent), and if even that
// fails the LP-free heuristic rung does.
TEST_F(ChaosFaults, TotalAllocationStormStillYieldsValidatedPlan) {
  auto& inj = robust::FaultInjector::instance();
  inj.arm(robust::FaultPoint::kSparseAlloc, 7, 1, 0);
  auto p = RematProblem::unit_training_chain(8);
  service::PlanService svc;
  const double budget = p.total_memory();
  const PlanOutcome out = svc.plan_robust(p, budget);
  inj.disarm_all();
  assert_outcome_contract(p, budget, out, "alloc storm");
  ASSERT_TRUE(out.result.feasible);
  EXPECT_TRUE(out.provenance == PlanProvenance::kIncumbent ||
              out.provenance == PlanProvenance::kHeuristicFallback)
      << "storm must degrade, not claim proven optimality";
  EXPECT_FALSE(out.why_degraded.empty());
  EXPECT_GT(inj.hits(robust::FaultPoint::kSparseAlloc), 0u);
}

// Faults plus a deadline: the two robustness layers compose.
TEST_F(ChaosFaults, FaultsUnderDeadlineStillHonorLadder) {
  auto& inj = robust::FaultInjector::instance();
  auto p = RematProblem::unit_training_chain(6);
  for (double deadline_sec : {0.01, 0.5}) {
    inj.arm(robust::FaultPoint::kLuFactorize, 3, 4, 0);
    service::PlanService svc;
    IlpSolveOptions opts;
    opts.deadline = robust::Deadline::after(deadline_sec);
    const double budget = p.total_memory();
    const PlanOutcome out = svc.plan_robust(p, budget, opts);
    inj.disarm_all();
    assert_outcome_contract(
        p, budget, out, "faults+deadline=" + std::to_string(deadline_sec));
    ASSERT_TRUE(out.result.feasible);
  }
}

#else  // !CHECKMATE_FAULT_INJECTION

TEST(ChaosFaults, RequiresFaultInjectionBuild) {
  GTEST_SKIP() << "fault-injection cases need -DCHECKMATE_FAULT_INJECTION=ON "
                  "(the CHECK_TIER=full chaos stage builds them; see "
                  "scripts/check.sh)";
}

#endif  // CHECKMATE_FAULT_INJECTION

}  // namespace
}  // namespace checkmate
