#include "model/cost_model.h"

#include <gtest/gtest.h>

#include "model/autodiff.h"
#include "model/model_stats.h"
#include "model/zoo.h"

namespace checkmate::model {
namespace {

TEST(CostModel, FlopsMetricMatchesOpFlops) {
  auto g = zoo::vgg16(2);
  auto costs = op_costs(g, CostMetric::kFlops);
  for (NodeId v = 0; v < g.dag.size(); ++v) {
    if (g.ops[v].kind == OpKind::kInput) {
      EXPECT_EQ(costs[v], 0.0);
    } else {
      EXPECT_DOUBLE_EQ(costs[v], static_cast<double>(g.ops[v].forward_flops));
    }
  }
}

TEST(CostModel, ProfiledTimePositiveAndOverheadFloored) {
  auto g = zoo::vgg16(2);
  CostModelOptions opts;
  auto costs = op_costs(g, CostMetric::kProfiledTimeUs, opts);
  for (NodeId v = 0; v < g.dag.size(); ++v) {
    if (g.ops[v].kind == OpKind::kInput) continue;
    EXPECT_GE(costs[v], opts.kernel_overhead_us);
  }
}

TEST(CostModel, ConvCostsScaleWithBatch) {
  auto g1 = zoo::vgg16(1);
  auto g4 = zoo::vgg16(4);
  auto c1 = op_costs(g1, CostMetric::kFlops);
  auto c4 = op_costs(g4, CostMetric::kFlops);
  for (NodeId v = 0; v < g1.dag.size(); ++v) {
    if (g1.ops[v].kind == OpKind::kInput) continue;
    EXPECT_NEAR(c4[v], 4.0 * c1[v], 1e-6 * c4[v]) << g1.ops[v].name;
  }
}

TEST(CostModel, LayerCostsVaryByOrdersOfMagnitude) {
  // Section 2: "the largest layer is six orders of magnitude more
  // expensive than the smallest" (VGG19, fine granularity).
  auto g = make_training_graph(zoo::vgg19(256, 224, /*coarse=*/false));
  auto costs = op_costs(g, CostMetric::kFlops);
  double lo = 1e300, hi = 0.0;
  for (NodeId v = 0; v < g.dag.size(); ++v) {
    if (g.ops[v].kind == OpKind::kInput) continue;
    lo = std::min(lo, costs[v]);
    hi = std::max(hi, costs[v]);
  }
  EXPECT_GT(hi / lo, 1e4);
}

TEST(CostModel, DepthwiseLessEfficientThanConv) {
  // Same FLOPs => depthwise takes longer under the profiled-time model.
  GraphBuilder b("t");
  auto in = b.input(TensorShape::nchw(1, 64, 56, 56));
  auto dw = b.depthwise_separable(in, 64, 3);
  auto cv = b.conv2d(in, 64, 3);
  auto g = std::move(b).build();
  auto costs = op_costs(g, CostMetric::kProfiledTimeUs);
  const double dw_per_flop = costs[dw] / g.ops[dw].forward_flops;
  const double cv_per_flop = costs[cv] / g.ops[cv].forward_flops;
  EXPECT_GT(dw_per_flop, cv_per_flop);
}

TEST(CostModel, MemoryBytesMatchShapes) {
  auto g = zoo::unet(2);
  auto mem = op_memory_bytes(g);
  for (NodeId v = 0; v < g.dag.size(); ++v)
    EXPECT_EQ(mem[v], g.ops[v].output.bytes());
}

TEST(CostModel, FixedOverheadIsTwiceParams) {
  auto g = zoo::vgg16(2);
  EXPECT_EQ(fixed_overhead_bytes(g), 2 * g.total_params() * 4);
}

TEST(ModelStats, Figure3HasTenModelsInOrder) {
  auto stats = figure3_model_stats();
  ASSERT_EQ(stats.size(), 10u);
  EXPECT_EQ(stats.front().name, "AlexNet");
  EXPECT_EQ(stats.back().name, "BigGAN");
  for (size_t i = 1; i < stats.size(); ++i)
    EXPECT_GE(stats[i].year, stats[i - 1].year);
}

TEST(ModelStats, FeaturesDominateParams) {
  // The figure's headline: activations far outweigh parameters for most
  // models (all but parameter-heavy NLP models).
  auto stats = figure3_model_stats();
  int features_dominate = 0;
  for (const auto& s : stats)
    if (s.features_bytes > s.param_bytes) ++features_dominate;
  EXPECT_GE(features_dominate, 7);
}

TEST(ModelStats, TotalsExceedGpuLimitsForModernModels) {
  // Researchers run at the memory wall: most entries train at or near the
  // device limit.
  auto stats = figure3_model_stats();
  int near_limit = 0;
  for (const auto& s : stats)
    if (static_cast<double>(s.total_bytes()) >
        0.5 * static_cast<double>(s.gpu_limit_bytes))
      ++near_limit;
  EXPECT_GE(near_limit, 6);
}

}  // namespace
}  // namespace checkmate::model
