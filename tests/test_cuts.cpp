// Branch & cut subsystem (milp/cuts.h): separator validity against brute
// force, cut-pool lifecycle (hashing, activity aging, deterministic
// selection), and the end-to-end guarantee that cuts never change the
// proven optimum -- only the work needed to prove it. Also a TSan target
// of the CHECK_TIER=full CI stage (scripts/check.sh), so the suite ends
// with a multi-threaded cut-enabled solve.
#include "milp/cuts.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "core/ilp_builder.h"
#include "core/remat_problem.h"
#include "milp/milp.h"

namespace checkmate::milp {
namespace {

using lp::LinearProgram;

// Builds an LP of `weights.size()` binaries plus one continuous capacity
// column whose upper bound is `cap + offset`, and the matching one-row
// FormulationStructure. The binaries' x-values are supplied per test.
struct KnapsackFixture {
  LinearProgram lp;
  FormulationStructure structure;

  KnapsackFixture(const std::vector<double>& weights, double cap,
                  double offset = 0.0) {
    KnapsackRow row;
    for (double w : weights) {
      const int v = lp.add_binary(0.0);
      row.items.push_back({v, w});
    }
    row.capacity_var = lp.add_var(0.0, cap + offset, 0.0);
    row.capacity_offset = offset;
    structure.knapsacks.push_back(std::move(row));
  }

  std::vector<Cut> separate(std::vector<double> x,
                            SeparationOptions opt = {}) const {
    x.push_back(0.0);  // the capacity column's value (unused)
    std::vector<Cut> out;
    separate_knapsack_cuts(structure, lp, x, opt, &out);
    return out;
  }
};

// Every emitted cut must hold at every 0/1 point satisfying the knapsack.
void expect_valid_for_knapsack(const std::vector<double>& weights, double cap,
                               const Cut& cut) {
  const int n = static_cast<int>(weights.size());
  ASSERT_LE(n, 20) << "brute force harness";
  for (int mask = 0; mask < (1 << n); ++mask) {
    double w = 0.0;
    for (int j = 0; j < n; ++j)
      if (mask & (1 << j)) w += weights[j];
    if (w > cap + 1e-9) continue;  // infeasible for the knapsack
    double lhs = 0.0;
    for (const auto& [var, coef] : cut.terms)
      if (var < n && (mask & (1 << var))) lhs += coef;
    EXPECT_LE(lhs, cut.rhs + 1e-9)
        << "cut violated by feasible mask " << mask;
  }
}

TEST(CutSeparation, CoverCutFoundAndValid) {
  // Three items of weight 2 under capacity 5: any two fit, all three do
  // not. The all-5/6 fractional point violates the cover x0+x1+x2 <= 2.
  const std::vector<double> w{2.0, 2.0, 2.0};
  KnapsackFixture fx(w, 5.0);
  auto cuts = fx.separate({5.0 / 6, 5.0 / 6, 5.0 / 6});
  ASSERT_FALSE(cuts.empty());
  bool found_cover = false;
  for (const Cut& c : cuts) {
    expect_valid_for_knapsack(w, 5.0, c);
    if (c.terms.size() == 3 && c.rhs == 2.0) found_cover = true;
    EXPECT_GT(c.violation, 0.0);
    EXPECT_NE(c.hash, 0u);
  }
  EXPECT_TRUE(found_cover);
}

TEST(CutSeparation, IntegerFeasiblePointSeparatesNothing) {
  const std::vector<double> w{2.0, 2.0, 2.0};
  KnapsackFixture fx(w, 5.0);
  EXPECT_TRUE(fx.separate({1.0, 1.0, 0.0}).empty());
  EXPECT_TRUE(fx.separate({0.0, 0.0, 0.0}).empty());
}

TEST(CutSeparation, LiftedCoefficientExceedsOneAndStaysValid) {
  // Cover {1,1,1,1} under cap 3 gives sum <= 3... use a heavy outsider: an
  // item of weight 3 next to four weight-1 items under cap 3.9: the cover
  // over the light items is x1+..+x4 <= 3; lifting the weight-3 item gives
  // it coefficient 3 - (max light items fitting beside it) = 3 - 0 = 3.
  const std::vector<double> w{3.0, 1.0, 1.0, 1.0, 1.0};
  KnapsackFixture fx(w, 3.9);
  auto cuts = fx.separate({0.4, 0.95, 0.95, 0.95, 0.95});
  ASSERT_FALSE(cuts.empty());
  bool lifted = false;
  for (const Cut& c : cuts) {
    expect_valid_for_knapsack(w, 3.9, c);
    for (const auto& [var, coef] : c.terms)
      if (var == 0 && coef >= 2.0) lifted = true;
  }
  EXPECT_TRUE(lifted);
}

TEST(CutSeparation, CliqueCutDominatesPairwiseConflicts) {
  // Three items of weight 3 under capacity 5: pairwise conflicting, so the
  // maximal clique inequality x0+x1+x2 <= 1 must be found at the uniform
  // half point (violation 0.5).
  const std::vector<double> w{3.0, 3.0, 3.0};
  KnapsackFixture fx(w, 5.0);
  auto cuts = fx.separate({0.5, 0.5, 0.5});
  ASSERT_FALSE(cuts.empty());
  bool clique = false;
  for (const Cut& c : cuts) {
    expect_valid_for_knapsack(w, 5.0, c);
    if (c.terms.size() == 3 && c.rhs == 1.0) clique = true;
  }
  EXPECT_TRUE(clique);
}

TEST(CutSeparation, FixedVariablesShrinkTheKnapsack) {
  // Fixing item 0 to 1 consumes its weight: the remaining two weight-2
  // items under residual capacity 2.5 conflict pairwise.
  const std::vector<double> w{2.0, 2.0, 2.0};
  KnapsackFixture fx(w, 4.5);
  fx.lp.lb[0] = fx.lp.ub[0] = 1.0;
  auto cuts = fx.separate({1.0, 0.7, 0.7});
  ASSERT_FALSE(cuts.empty());
  for (const Cut& c : cuts)
    for (const auto& [var, coef] : c.terms) EXPECT_NE(var, 0) << coef;
}

TEST(CutSeparation, CapacityReadFromLiveUpperBound) {
  // The same fractional point separates nothing at a loose budget and a
  // cover at a tight one -- capacity comes from the capacity column's
  // CURRENT upper bound (what set_budget rebinds).
  const std::vector<double> w{2.0, 2.0, 2.0};
  KnapsackFixture fx(w, 20.0);
  const auto x = std::vector<double>{0.85, 0.85, 0.85};
  EXPECT_TRUE(fx.separate(x).empty());
  fx.lp.ub[fx.structure.knapsacks[0].capacity_var] = 5.0;
  EXPECT_FALSE(fx.separate(x).empty());
}

TEST(CutSeparation, RandomizedBruteForceValidity) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> wdist(0.5, 4.0);
  std::uniform_real_distribution<double> xdist(0.0, 1.0);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 3 + static_cast<int>(rng() % 8);
    std::vector<double> w(n), x(n);
    double total = 0.0;
    for (int j = 0; j < n; ++j) {
      w[j] = wdist(rng);
      x[j] = xdist(rng);
      total += w[j];
    }
    const double cap = total * (0.3 + 0.4 * xdist(rng));
    KnapsackFixture fx(w, cap);
    for (const Cut& c : fx.separate(x)) expect_valid_for_knapsack(w, cap, c);
  }
}

TEST(CutSeparation, DeterministicAcrossCalls) {
  const std::vector<double> w{2.0, 3.0, 1.5, 2.5, 2.0};
  KnapsackFixture fx(w, 6.0);
  const std::vector<double> x{0.8, 0.6, 0.9, 0.7, 0.5};
  const auto a = fx.separate(x);
  const auto b = fx.separate(x);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].terms, b[i].terms);
    EXPECT_EQ(a[i].rhs, b[i].rhs);
    EXPECT_EQ(a[i].hash, b[i].hash);
  }
}

// ------------------------------------------------------------------ pool

Cut make_cut(std::vector<std::pair<int, double>> terms, double rhs,
             double violation) {
  Cut c;
  c.terms = std::move(terms);
  c.rhs = rhs;
  c.violation = violation;
  c.hash = cut_hash(c);
  return c;
}

TEST(CutPool, OfferDeduplicatesByContent) {
  CutPool pool;
  EXPECT_TRUE(pool.offer(make_cut({{0, 1.0}, {1, 1.0}}, 1.0, 0.3)));
  EXPECT_TRUE(pool.offer(make_cut({{0, 1.0}, {1, 1.0}}, 1.0, 0.5)));
  EXPECT_EQ(pool.size(), 1u);
  // The refreshed entry carries the stronger violation.
  auto sel = pool.select(8);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0].violation, 0.5);
}

TEST(CutPool, SelectionOrderIsViolationThenDeterministicTieBreak) {
  CutPool pool;
  pool.offer(make_cut({{0, 1.0}, {1, 1.0}}, 1.0, 0.2));
  pool.offer(make_cut({{2, 1.0}, {3, 1.0}}, 1.0, 0.7));
  pool.offer(make_cut({{4, 1.0}, {5, 1.0}}, 1.0, 0.4));
  auto sel = pool.select(2);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0].violation, 0.7);
  EXPECT_EQ(sel[1].violation, 0.4);
  // Selected cuts are in the LP now: re-offering them is a no-op and they
  // never come back from select().
  EXPECT_FALSE(pool.offer(make_cut({{2, 1.0}, {3, 1.0}}, 1.0, 0.9)));
  auto rest = pool.select(8);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].violation, 0.2);
  EXPECT_EQ(pool.cuts_selected(), 3);
}

TEST(CutPool, AgingEvictsStalePooledCuts) {
  CutPoolOptions opts;
  opts.max_age = 2;
  CutPool pool(opts);
  pool.offer(make_cut({{0, 1.0}, {1, 1.0}}, 1.0, 0.2));
  pool.age_tick();
  pool.age_tick();
  // Re-separation resets the clock (activity-based aging).
  pool.offer(make_cut({{0, 1.0}, {1, 1.0}}, 1.0, 0.2));
  pool.age_tick();
  pool.age_tick();
  EXPECT_EQ(pool.size(), 1u);
  pool.age_tick();
  EXPECT_EQ(pool.size(), 0u);
}

TEST(CutPool, InLpEntriesSurviveAging) {
  CutPoolOptions opts;
  opts.max_age = 1;
  CutPool pool(opts);
  pool.offer(make_cut({{0, 1.0}, {1, 1.0}}, 1.0, 0.2));
  ASSERT_EQ(pool.select(1).size(), 1u);
  for (int i = 0; i < 5; ++i) pool.age_tick();
  EXPECT_EQ(pool.size(), 1u);  // anchors dedup against re-separation
  EXPECT_FALSE(pool.offer(make_cut({{0, 1.0}, {1, 1.0}}, 1.0, 0.9)));
}

// -------------------------------------------------- gomory mixed-integer

// Oracle for the Gomory separator: every emitted cut must hold at every
// integer-feasible point of a (pure-integer, bounded) instance. Points
// are enumerated brute-force over the variable boxes and filtered through
// the LP rows, exactly like the knapsack validity harness above.
TEST(GomorySeparation, BruteForceValidityOnRandomIps) {
  std::mt19937 rng(29);
  std::uniform_real_distribution<double> cost(-3.0, 3.0);
  int cuts_checked = 0;
  int trials_with_cuts = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 3 + static_cast<int>(rng() % 4);
    LinearProgram lp;
    std::vector<int> ub(n);
    for (int j = 0; j < n; ++j) {
      ub[j] = 1 + static_cast<int>(rng() % 2);
      lp.add_var(0.0, ub[j], cost(rng), /*integer=*/true);
    }
    const int m = 1 + static_cast<int>(rng() % 3);
    for (int r = 0; r < m; ++r) {
      std::vector<std::pair<int, double>> t;
      double mass = 0.0;
      for (int j = 0; j < n; ++j) {
        if (rng() % 3 == 0) continue;
        const double w = 1.0 + static_cast<double>(rng() % 7);
        t.emplace_back(j, w);
        mass += w * ub[j];
      }
      if (t.empty()) t.emplace_back(static_cast<int>(rng() % n), 2.0);
      lp.add_le(t, std::max(1.0, std::floor(mass * 0.45)));
    }
    lp::DualSimplex engine(lp);
    auto res = engine.solve();
    if (res.status != lp::LpStatus::kOptimal) continue;
    std::vector<Cut> cuts;
    separate_gomory_cuts(lp, engine, res.x, SeparationOptions{}, &cuts);
    if (cuts.empty()) continue;
    ++trials_with_cuts;
    for (const Cut& cut : cuts) {
      EXPECT_GT(cut.violation, 0.0) << "trial " << trial;
      EXPECT_EQ(cut.source, Cut::kGomory) << "trial " << trial;
    }
    // Mixed-radix enumeration of the integer box.
    std::vector<double> pt(n, 0.0);
    for (;;) {
      if (lp.max_violation(pt) <= 1e-9) {
        for (const Cut& cut : cuts) {
          double lhs = 0.0;
          for (const auto& [var, coef] : cut.terms) lhs += coef * pt[var];
          EXPECT_LE(lhs, cut.rhs + 1e-7)
              << "trial " << trial << " cut invalid at integer point";
          ++cuts_checked;
        }
      }
      int j = 0;
      while (j < n && pt[j] >= ub[j]) pt[j++] = 0.0;
      if (j == n) break;
      pt[j] += 1.0;
    }
  }
  // The generator must actually exercise the separator.
  EXPECT_GT(trials_with_cuts, 10);
  EXPECT_GT(cuts_checked, 100);
}

// ------------------------------------------------------------ end to end

TEST(BranchAndCut, CutsPreserveOptimumAndShrinkTree) {
  auto p = RematProblem::unit_training_chain(6);
  IlpBuildOptions build;
  build.budget_bytes = 5.0;  // tight: a real search
  IlpFormulation f(p, build);
  const FormulationStructure structure = f.cut_structure();
  ASSERT_FALSE(structure.empty());

  MilpOptions base;
  base.time_limit_sec = 30.0;
  base.branch_priority = f.branch_priorities();
  base.node_selection = NodeSelection::kHybrid;
  base.reliability_branching = false;  // isolate the cut effect
  base.gomory_cuts = false;  // knapsack separators only in both runs

  MilpOptions with_cuts = base;
  with_cuts.cut_structure = &structure;
  auto on = solve_milp(f.lp(), with_cuts);
  auto off = solve_milp(f.lp(), base);
  ASSERT_EQ(on.status, MilpStatus::kOptimal);
  ASSERT_EQ(off.status, MilpStatus::kOptimal);
  EXPECT_NEAR(on.objective, off.objective, 1e-6);
  EXPECT_GT(on.cuts_added, 0);
  EXPECT_EQ(off.cuts_added, 0);
  // The point of the subsystem: fewer nodes to the same proof.
  EXPECT_LE(on.nodes, off.nodes);
}

TEST(BranchAndCut, ReliabilityBranchingPreservesOptimum) {
  auto p = RematProblem::unit_training_chain(6);
  IlpBuildOptions build;
  build.budget_bytes = 5.0;
  IlpFormulation f(p, build);
  const FormulationStructure structure = f.cut_structure();

  MilpOptions rel;
  rel.time_limit_sec = 30.0;
  rel.branch_priority = f.branch_priorities();
  rel.node_selection = NodeSelection::kHybrid;
  rel.cut_structure = &structure;
  rel.reliability_branching = true;
  MilpOptions norel = rel;
  norel.reliability_branching = false;
  auto a = solve_milp(f.lp(), rel);
  auto b = solve_milp(f.lp(), norel);
  ASSERT_EQ(a.status, MilpStatus::kOptimal);
  ASSERT_EQ(b.status, MilpStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-6);
  EXPECT_GT(a.strong_branches, 0);
  EXPECT_EQ(b.strong_branches, 0);
}

TEST(BranchAndCut, WorkerCountInvariantWithCutsAndReliability) {
  // The acceptance bar of the branch & cut refactor: node counts,
  // incumbents, bounds, cut counts and probe counts are bit-identical for
  // any worker count with separation AND reliability branching enabled.
  // (Also the TSan scenario for this suite.)
  auto p = RematProblem::unit_training_chain(6);
  IlpBuildOptions build;
  build.budget_bytes = 5.0;
  IlpFormulation f(p, build);
  const FormulationStructure structure = f.cut_structure();

  std::optional<MilpResult> reference;
  for (int threads : {1, 2, 4}) {
    MilpOptions opts;
    opts.time_limit_sec = 30.0;
    opts.branch_priority = f.branch_priorities();
    opts.node_selection = NodeSelection::kHybrid;
    opts.cut_structure = &structure;
    opts.num_threads = threads;
    auto res = solve_milp(f.lp(), opts);
    ASSERT_EQ(res.status, MilpStatus::kOptimal) << "threads " << threads;
    EXPECT_GT(res.cuts_added, 0);
    if (!reference) {
      reference = res;
      continue;
    }
    EXPECT_EQ(reference->nodes, res.nodes) << threads;
    EXPECT_EQ(reference->lp_iterations, res.lp_iterations) << threads;
    EXPECT_EQ(reference->objective, res.objective) << threads;
    EXPECT_EQ(reference->best_bound, res.best_bound) << threads;
    EXPECT_EQ(reference->root_relaxation, res.root_relaxation) << threads;
    EXPECT_EQ(reference->cuts_added, res.cuts_added) << threads;
    EXPECT_EQ(reference->gomory_cuts, res.gomory_cuts) << threads;
    EXPECT_EQ(reference->cuts_removed, res.cuts_removed) << threads;
    EXPECT_EQ(reference->strong_branches, res.strong_branches) << threads;
    EXPECT_EQ(reference->root_fixings, res.root_fixings) << threads;
    // LP-engine observability counters are part of the deterministic
    // contract too: slot trajectories are snapshot-pure.
    EXPECT_EQ(reference->lp_refactorizations, res.lp_refactorizations)
        << threads;
    EXPECT_EQ(reference->lp_ft_updates, res.lp_ft_updates) << threads;
    EXPECT_EQ(reference->lp_ft_growth_refactors, res.lp_ft_growth_refactors)
        << threads;
    EXPECT_EQ(reference->lp_eta_pivots, res.lp_eta_pivots) << threads;
    EXPECT_EQ(reference->lp_pricing_resets, res.lp_pricing_resets) << threads;
    ASSERT_EQ(reference->x.size(), res.x.size());
    for (size_t j = 0; j < res.x.size(); ++j)
      EXPECT_EQ(reference->x[j], res.x[j]) << "x[" << j << "]";
  }
}

}  // namespace
}  // namespace checkmate::milp
