#include "lp/dense_simplex.h"

#include <gtest/gtest.h>

namespace checkmate::lp {
namespace {

TEST(DenseSimplex, TrivialBoundsOnly) {
  // min x, 1 <= x <= 5  => x = 1.
  LinearProgram lp;
  lp.add_var(1.0, 5.0, 1.0);
  auto res = solve_dense_reference(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 1.0, 1e-8);
}

TEST(DenseSimplex, MaximizeViaNegation) {
  // max x + y s.t. x + y <= 4, 0 <= x,y <= 3  => obj 4.
  LinearProgram lp;
  int x = lp.add_var(0, 3, -1.0);
  int y = lp.add_var(0, 3, -1.0);
  lp.add_le(std::vector<std::pair<int, double>>{{x, 1.0}, {y, 1.0}}, 4.0);
  auto res = solve_dense_reference(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -4.0, 1e-8);
}

TEST(DenseSimplex, ClassicTwoVariable) {
  // min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum at (2, 6) with objective -36.
  LinearProgram lp;
  int x = lp.add_var(0, kInf, -3.0);
  int y = lp.add_var(0, kInf, -5.0);
  lp.add_le(std::vector<std::pair<int, double>>{{x, 1.0}}, 4.0);
  lp.add_le(std::vector<std::pair<int, double>>{{y, 2.0}}, 12.0);
  lp.add_le(std::vector<std::pair<int, double>>{{x, 3.0}, {y, 2.0}}, 18.0);
  auto res = solve_dense_reference(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -36.0, 1e-7);
  EXPECT_NEAR(res.x[0], 2.0, 1e-7);
  EXPECT_NEAR(res.x[1], 6.0, 1e-7);
}

TEST(DenseSimplex, EqualityConstraint) {
  // min x + 2y s.t. x + y == 3, x,y >= 0  => (3, 0), obj 3.
  LinearProgram lp;
  int x = lp.add_var(0, kInf, 1.0);
  int y = lp.add_var(0, kInf, 2.0);
  lp.add_eq(std::vector<std::pair<int, double>>{{x, 1.0}, {y, 1.0}}, 3.0);
  auto res = solve_dense_reference(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 3.0, 1e-8);
}

TEST(DenseSimplex, InfeasibleDetected) {
  LinearProgram lp;
  int x = lp.add_var(0, 1, 1.0);
  lp.add_ge(std::vector<std::pair<int, double>>{{x, 1.0}}, 5.0);
  auto res = solve_dense_reference(lp);
  EXPECT_EQ(res.status, LpStatus::kInfeasible);
}

TEST(DenseSimplex, UnboundedDetected) {
  LinearProgram lp;
  lp.add_var(0, kInf, -1.0);
  auto res = solve_dense_reference(lp);
  EXPECT_EQ(res.status, LpStatus::kUnbounded);
}

TEST(DenseSimplex, FreeVariable) {
  // min x s.t. x >= -7 expressed through a constraint on a free var.
  LinearProgram lp;
  int x = lp.add_var(-kInf, kInf, 1.0);
  lp.add_ge(std::vector<std::pair<int, double>>{{x, 1.0}}, -7.0);
  auto res = solve_dense_reference(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -7.0, 1e-8);
}

TEST(DenseSimplex, RangedRow) {
  // min x s.t. 2 <= x + y <= 5, y <= 1, x,y in [0,10] => x = 1, y = 1.
  LinearProgram lp;
  int x = lp.add_var(0, 10, 1.0);
  int y = lp.add_var(0, 1, 0.0);
  lp.add_constraint(std::vector<std::pair<int, double>>{{x, 1.0}, {y, 1.0}},
                    2.0, 5.0);
  auto res = solve_dense_reference(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 1.0, 1e-8);
}

TEST(DenseSimplex, UpperBoundOnlyVariable) {
  // min -x with x <= 9 and x >= 0 via row: max is 9.
  LinearProgram lp;
  int x = lp.add_var(-kInf, 9.0, -1.0);
  lp.add_ge(std::vector<std::pair<int, double>>{{x, 1.0}}, 0.0);
  auto res = solve_dense_reference(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -9.0, 1e-8);
}

TEST(DenseSimplex, DegenerateProblem) {
  // Multiple constraints intersecting at the optimum; Bland's rule must
  // terminate.
  LinearProgram lp;
  int x = lp.add_var(0, kInf, -1.0);
  int y = lp.add_var(0, kInf, -1.0);
  lp.add_le(std::vector<std::pair<int, double>>{{x, 1.0}, {y, 1.0}}, 2.0);
  lp.add_le(std::vector<std::pair<int, double>>{{x, 1.0}}, 2.0);
  lp.add_le(std::vector<std::pair<int, double>>{{y, 1.0}}, 2.0);
  lp.add_le(std::vector<std::pair<int, double>>{{x, 2.0}, {y, 1.0}}, 4.0);
  auto res = solve_dense_reference(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -2.0, 1e-7);
}

}  // namespace
}  // namespace checkmate::lp
