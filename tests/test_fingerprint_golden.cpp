// Golden fingerprint stability: the plan store keys disk records by
// RematProblem::fingerprint() and verifies them by serialize_canonical(),
// so either changing silently would orphan (or worse, misroute) every
// record written by earlier builds. This suite pins both against a
// committed golden file; a legitimate format change is a conscious act:
//
//   1. bump store::kPlanStoreFormatVersion (old records quarantine
//      wholesale on load instead of being misparsed), then
//   2. regenerate the golden:
//        CHECKMATE_REGEN_FINGERPRINT_GOLDEN=1 ./test_fingerprint_golden
//
// The instances cover every field the hash mixes: sizes, edges, costs,
// memories, fixed overhead, backward flags and grad_of links.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/remat_problem.h"
#include "model/graph_builder.h"
#include "model/zoo.h"
#include "store/plan_store.h"

namespace checkmate {
namespace {

#ifndef CHECKMATE_SOURCE_DIR
#error "CHECKMATE_SOURCE_DIR must be defined by the build"
#endif

std::string golden_path() {
  return std::string(CHECKMATE_SOURCE_DIR) + "/tests/data/fingerprints.golden";
}

// FNV-1a over the canonical blob: pins the byte layout, not just the
// 64-bit hash derived from it.
uint64_t blob_checksum(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex16(uint64_t v) {
  std::ostringstream os;
  os << std::hex;
  os.width(16);
  os.fill('0');
  os << v;
  return os.str();
}

// The pinned instance set. Names must be unique and stable; the problems
// must be bit-deterministic across platforms (they are: integer-derived
// doubles only).
std::vector<RematProblem> golden_instances() {
  std::vector<RematProblem> out;
  out.push_back(RematProblem::unit_chain(1));
  out.push_back(RematProblem::unit_chain(5));
  out.push_back(RematProblem::unit_chain(16));
  out.push_back(RematProblem::unit_training_chain(1));
  out.push_back(RematProblem::unit_training_chain(4));
  out.push_back(RematProblem::unit_training_chain(8));
  out.push_back(RematProblem::unit_training_chain(12));
  out.push_back(RematProblem::from_dnn(
      model::make_training_graph(model::zoo::linear_net(6, 4, 8, 8)),
      model::CostMetric::kProfiledTimeUs));
  out.push_back(RematProblem::from_dnn(
      model::make_training_graph(model::zoo::linear_net(3, 16, 4, 2)),
      model::CostMetric::kProfiledTimeUs));
  return out;
}

struct GoldenLine {
  uint64_t fingerprint = 0;
  uint64_t blob_sum = 0;
  uint64_t blob_size = 0;
};

std::map<std::string, GoldenLine> current_lines() {
  std::map<std::string, GoldenLine> out;
  for (const RematProblem& p : golden_instances()) {
    const std::string blob = p.serialize_canonical();
    GoldenLine line;
    line.fingerprint = p.fingerprint();
    line.blob_sum = blob_checksum(blob);
    line.blob_size = blob.size();
    out[p.name] = line;
  }
  return out;
}

TEST(FingerprintGolden, MatchesCommittedGolden) {
  const auto current = current_lines();

  if (const char* regen = std::getenv("CHECKMATE_REGEN_FINGERPRINT_GOLDEN");
      regen != nullptr && std::string(regen) == "1") {
    std::ofstream out(golden_path(), std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << "# <name> <fingerprint> <canonical-blob-fnv1a> <blob-bytes>\n"
        << "# regenerate: CHECKMATE_REGEN_FINGERPRINT_GOLDEN=1 "
           "./test_fingerprint_golden\n"
        << "# (format changes must bump store::kPlanStoreFormatVersion "
           "first -- see src/store/plan_store.h)\n"
        << "format_version " << store::kPlanStoreFormatVersion << "\n";
    for (const auto& [name, line] : current)
      out << name << " " << hex16(line.fingerprint) << " "
          << hex16(line.blob_sum) << " " << line.blob_size << "\n";
    GTEST_SKIP() << "golden regenerated at " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing " << golden_path()
                         << " -- regenerate with "
                            "CHECKMATE_REGEN_FINGERPRINT_GOLDEN=1";
  std::map<std::string, GoldenLine> golden;
  uint32_t golden_version = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string name;
    fields >> name;
    if (name == "format_version") {
      fields >> golden_version;
      continue;
    }
    std::string fp_hex, sum_hex;
    GoldenLine g;
    fields >> fp_hex >> sum_hex >> g.blob_size;
    ASSERT_FALSE(fields.fail()) << "malformed golden line: " << line;
    g.fingerprint = std::stoull(fp_hex, nullptr, 16);
    g.blob_sum = std::stoull(sum_hex, nullptr, 16);
    golden[name] = g;
  }

  // The golden was generated against the current store format: a version
  // bump without regeneration is as much a drift as a hash change.
  EXPECT_EQ(golden_version, store::kPlanStoreFormatVersion)
      << "store format version changed; regenerate the golden";
  ASSERT_EQ(golden.size(), current.size())
      << "golden instance set drifted; regenerate the golden";
  for (const auto& [name, want] : golden) {
    auto it = current.find(name);
    ASSERT_NE(it, current.end()) << "golden instance missing: " << name;
    EXPECT_EQ(hex16(it->second.fingerprint), hex16(want.fingerprint))
        << name << ": fingerprint() changed. This orphans every on-disk "
        << "plan record -- bump store::kPlanStoreFormatVersion and "
        << "regenerate (see file header).";
    EXPECT_EQ(hex16(it->second.blob_sum), hex16(want.blob_sum))
        << name << ": serialize_canonical() layout changed. Bump "
        << "store::kPlanStoreFormatVersion and regenerate.";
    EXPECT_EQ(it->second.blob_size, want.blob_size) << name;
  }
}

// Structural guarantees behind the golden: rebuilt problems reproduce
// their fingerprint bit-for-bit, every pinned instance is distinct, and
// node names (excluded from the hash by design) do not perturb it.
TEST(FingerprintGolden, DeterministicDistinctAndNameBlind) {
  const auto a = current_lines();
  const auto b = current_lines();
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, line] : a) {
    EXPECT_EQ(line.fingerprint, b.at(name).fingerprint) << name;
    EXPECT_EQ(line.blob_sum, b.at(name).blob_sum) << name;
  }
  std::map<uint64_t, std::string> seen;
  for (const auto& [name, line] : a) {
    auto [it, fresh] = seen.emplace(line.fingerprint, name);
    EXPECT_TRUE(fresh) << name << " collides with " << it->second;
  }
  auto p = RematProblem::unit_training_chain(6);
  const uint64_t before = p.fingerprint();
  const std::string blob_before = p.serialize_canonical();
  for (auto& n : p.node_names) n += "_renamed";
  p.name = "renamed";
  EXPECT_EQ(p.fingerprint(), before);
  EXPECT_EQ(p.serialize_canonical(), blob_before);
}

}  // namespace
}  // namespace checkmate
