#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace checkmate {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.size(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(order->empty());
}

TEST(Graph, AddNodesAndEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.users(0), std::vector<NodeId>{1});
  EXPECT_EQ(g.deps(2), std::vector<NodeId>{1});
}

TEST(Graph, DuplicateEdgeIgnored) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, OutOfRangeEdgeRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
}

TEST(Graph, TopologicalOrderOnPath) {
  Graph g = make_path_graph(5);
  auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(g.is_topologically_labeled());
  EXPECT_TRUE(g.is_linear());
}

TEST(Graph, CycleDetected) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(g.topological_order().has_value());
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(Graph, RelabelTopological) {
  // Graph with ids out of topological order: 2 -> 0 -> 1.
  Graph g(3);
  g.add_edge(2, 0);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.is_topologically_labeled());
  g.relabel_topological();
  EXPECT_TRUE(g.is_topologically_labeled());
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Graph, IsLinearRejectsBranch) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_FALSE(g.is_linear());
}

TEST(Graph, SourcesAndSinks) {
  Graph g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_EQ(g.sources(), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(g.sinks(), (std::vector<NodeId>{3}));
}

TEST(Graph, AncestorsOf) {
  Graph g(5);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  auto anc = g.ancestors_of(2);
  EXPECT_TRUE(anc[0]);
  EXPECT_TRUE(anc[1]);
  EXPECT_TRUE(anc[2]);
  EXPECT_FALSE(anc[3]);
  EXPECT_FALSE(anc[4]);
}

TEST(Graph, ArticulationPointsOnPath) {
  // Interior nodes of a path are all articulation points.
  Graph g = make_path_graph(6);
  auto aps = g.articulation_points();
  EXPECT_EQ(aps, (std::vector<NodeId>{1, 2, 3, 4}));
}

TEST(Graph, ArticulationPointsDiamond) {
  // 0 -> {1,2} -> 3: no interior AP (two disjoint paths), endpoints are
  // degree cut vertices only if they disconnect, which endpoints don't.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.articulation_points().empty());
}

TEST(Graph, ArticulationPointsResidualChain) {
  // Two residual blocks in series: 0->1->2->3 with skips 0->2 and... then
  // 2->3->4 with skip 2->4. Node 2 bridges the blocks => articulation pt.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);  // skip
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(2, 4);  // skip
  auto aps = g.articulation_points();
  EXPECT_EQ(aps, (std::vector<NodeId>{2}));
}

// Brute-force articulation check: remove each vertex, count components of
// the undirected graph.
std::vector<NodeId> brute_force_aps(const Graph& g) {
  const int n = g.size();
  auto components = [&](int skip) {
    std::vector<int> comp(n, -1);
    int count = 0;
    for (int start = 0; start < n; ++start) {
      if (start == skip || comp[start] != -1) continue;
      std::vector<int> stack{start};
      comp[start] = count;
      while (!stack.empty()) {
        int v = stack.back();
        stack.pop_back();
        auto visit = [&](int w) {
          if (w != skip && comp[w] == -1) {
            comp[w] = count;
            stack.push_back(w);
          }
        };
        for (int w : g.users(v)) visit(w);
        for (int w : g.deps(v)) visit(w);
      }
      ++count;
    }
    return count;
  };
  const int base = components(-1);
  std::vector<NodeId> aps;
  for (int v = 0; v < n; ++v)
    if (components(v) > base) aps.push_back(v);
  return aps;
}

TEST(Graph, ArticulationPointsMatchBruteForceOnRandomDags) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 3 + static_cast<int>(rng() % 12);
    Graph g(n);
    for (int j = 1; j < n; ++j) {
      // Ensure connectivity, then sprinkle extra edges.
      g.add_edge(static_cast<NodeId>(rng() % j), j);
      if (rng() % 2) {
        int i = static_cast<int>(rng() % j);
        g.add_edge(i, j);
      }
    }
    EXPECT_EQ(g.articulation_points(), brute_force_aps(g))
        << "trial " << trial;
  }
}

TEST(Graph, ValidateAcceptsDag) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_NO_THROW(g.validate());
}

TEST(Graph, EdgesSorted) {
  Graph g(3);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(0, 1);
  auto e = g.edges();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0], (Edge{0, 1}));
  EXPECT_EQ(e[1], (Edge{0, 2}));
  EXPECT_EQ(e[2], (Edge{1, 2}));
}

TEST(Graph, DeepPathNoStackOverflow) {
  // The AP DFS is iterative; a 100k-node path must not crash.
  Graph g = make_path_graph(100000);
  auto aps = g.articulation_points();
  EXPECT_EQ(aps.size(), 99998u);
}

}  // namespace
}  // namespace checkmate
