#include "core/ilp_builder.h"

#include <gtest/gtest.h>

#include "lp/simplex.h"
#include "milp/milp.h"
#include "milp/presolve.h"

namespace checkmate {
namespace {

milp::MilpOptions bounded_milp(double time_limit_sec = 30.0) {
  milp::MilpOptions opts;
  opts.time_limit_sec = time_limit_sec;
  return opts;
}

TEST(IlpBuilder, RejectsNonPositiveBudget) {
  auto p = RematProblem::unit_chain(3);
  IlpBuildOptions opts;
  opts.budget_bytes = 0.0;
  EXPECT_THROW(IlpFormulation(p, opts), std::invalid_argument);
}

TEST(IlpBuilder, PartitionedVariableTriangularity) {
  auto p = RematProblem::unit_chain(4);
  IlpBuildOptions opts;
  opts.budget_bytes = 4.0;
  IlpFormulation f(p, opts);
  for (int t = 0; t < 4; ++t)
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(f.r_var(t, i) >= 0, i <= t) << t << "," << i;
      EXPECT_EQ(f.s_var(t, i) >= 0, i < t) << t << "," << i;
      EXPECT_EQ(f.u_var(t, i) >= 0, i <= t) << t << "," << i;
    }
  // Diagonal R fixed to one.
  for (int t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(f.lp().lb[f.r_var(t, t)], 1.0);
    EXPECT_DOUBLE_EQ(f.lp().ub[f.r_var(t, t)], 1.0);
  }
}

TEST(IlpBuilder, UnpartitionedHasFullMatrices) {
  auto p = RematProblem::unit_chain(3);
  IlpBuildOptions opts;
  opts.budget_bytes = 3.0;
  opts.partitioned = false;
  IlpFormulation f(p, opts);
  for (int t = 0; t < 3; ++t)
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(f.r_var(t, i), 0);
      EXPECT_EQ(f.s_var(t, i) >= 0, t >= 1);
    }
  // More variables than the partitioned form.
  IlpBuildOptions popts;
  popts.budget_bytes = 3.0;
  IlpFormulation pf(p, popts);
  EXPECT_GT(f.lp().num_vars(), pf.lp().num_vars());
}

TEST(IlpBuilder, AmpleBudgetSolvesToCheckpointAllCost) {
  auto p = RematProblem::unit_chain(5);
  IlpBuildOptions opts;
  opts.budget_bytes = 100.0;  // ample
  IlpFormulation f(p, opts);
  auto res = milp::solve_milp(f.lp(), bounded_milp());
  ASSERT_EQ(res.status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(f.unscale_cost(res.objective), 5.0, 1e-5);
}

TEST(IlpBuilder, PureForwardChainNeedsOnlyTwoSlots) {
  // A pure forward chain never rematerializes: keeping just the previous
  // value fits budget 2 at the checkpoint-all cost.
  auto p = RematProblem::unit_chain(5);
  IlpBuildOptions opts;
  opts.budget_bytes = 2.0;
  IlpFormulation f(p, opts);
  auto res = milp::solve_milp(f.lp(), bounded_milp());
  ASSERT_EQ(res.status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(f.unscale_cost(res.objective), 5.0, 1e-5);
}

TEST(IlpBuilder, TightBudgetForcesRecomputation) {
  // Training chains must retain activations for the backward pass, so a
  // tight budget genuinely forces rematerialization.
  // An interior gradient reads three values (v_k, v_{k-1}, upstream grad),
  // so with its own output 4 units is the structural minimum budget.
  auto p = RematProblem::unit_training_chain(3);  // n = 7, compute-once 7
  IlpBuildOptions opts;
  opts.budget_bytes = 4.0;
  IlpFormulation f(p, opts);
  auto res = milp::solve_milp(f.lp(), bounded_milp());
  ASSERT_EQ(res.status, milp::MilpStatus::kOptimal);
  const double cost = f.unscale_cost(res.objective);
  EXPECT_GT(cost, 7.5);  // unit costs are integral: optimum >= 8
  auto sol = f.extract_solution(res.x);
  EXPECT_EQ(sol.check_feasible(p), "");
  EXPECT_LE(peak_memory_usage(p, sol), 4.0 + 1e-6);
}

TEST(IlpBuilder, BudgetBelowStructuralMinimumInfeasible) {
  auto p = RematProblem::unit_training_chain(3);
  IlpBuildOptions opts;
  opts.budget_bytes = 3.0;  // interior gradient alone needs 4 units
  IlpFormulation f(p, opts);
  auto res = milp::solve_milp(f.lp(), bounded_milp());
  EXPECT_EQ(res.status, milp::MilpStatus::kInfeasible);
}

TEST(IlpBuilder, InfeasibleBudgetDetected) {
  auto p = RematProblem::unit_chain(4);
  IlpBuildOptions opts;
  opts.budget_bytes = 1.5;  // cannot even hold node + parent
  IlpFormulation f(p, opts);
  auto res = milp::solve_milp(f.lp(), bounded_milp());
  EXPECT_EQ(res.status, milp::MilpStatus::kInfeasible);
}

TEST(IlpBuilder, OverheadCountsAgainstBudget) {
  // Checkpoint-all on a 3-layer training chain peaks at 5 units. With 2
  // units of constant overhead and budget 6.5, only 4.5 units remain for
  // activations, which forces rematerialization; without the overhead the
  // same budget would be ample.
  auto p = RematProblem::unit_training_chain(3);
  p.fixed_overhead = 2.0;
  IlpBuildOptions opts;
  opts.budget_bytes = 6.5;
  IlpFormulation f(p, opts);
  auto res = milp::solve_milp(f.lp(), bounded_milp());
  ASSERT_EQ(res.status, milp::MilpStatus::kOptimal);
  auto sol = f.extract_solution(res.x);
  EXPECT_LE(peak_memory_usage(p, sol), 6.5 + 1e-6);
  EXPECT_GT(f.unscale_cost(res.objective), 7.5);  // forced to recompute

  p.fixed_overhead = 0.0;
  IlpFormulation f2(p, opts);
  auto res2 = milp::solve_milp(f2.lp(), bounded_milp());
  ASSERT_EQ(res2.status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(f2.unscale_cost(res2.objective), 7.0, 1e-5);
}

TEST(IlpBuilder, BranchPrioritiesOrderSOverROverFree) {
  auto p = RematProblem::unit_chain(3);
  IlpBuildOptions opts;
  opts.budget_bytes = 3.0;
  IlpFormulation f(p, opts);
  auto prio = f.branch_priorities();
  EXPECT_EQ(prio[f.s_var(2, 0)], 2);
  EXPECT_EQ(prio[f.r_var(1, 0)], 1);
}

TEST(IlpBuilder, AssembleAssignmentRoundTrips) {
  auto p = RematProblem::unit_chain(4);
  IlpBuildOptions opts;
  opts.budget_bytes = 4.0;
  IlpFormulation f(p, opts);
  // Checkpoint-all schedule fits budget 4 exactly.
  RematSolution sol;
  sol.R = make_bool_matrix(4, 4);
  sol.S = make_bool_matrix(4, 4);
  for (int t = 0; t < 4; ++t) {
    sol.R[t][t] = 1;
    for (int i = 0; i < t; ++i) sol.S[t][i] = 1;
  }
  auto x = f.assemble_assignment(sol);
  ASSERT_TRUE(x.has_value());
  EXPECT_LE(f.lp().max_violation(*x), 1e-6);
  auto back = f.extract_solution(*x);
  EXPECT_EQ(back.R, sol.R);
  EXPECT_EQ(back.S, sol.S);
}

TEST(IlpBuilder, AssembleAssignmentRejectsOverBudget) {
  auto p = RematProblem::unit_chain(4);
  IlpBuildOptions opts;
  opts.budget_bytes = 3.0;  // checkpoint-all needs 4
  IlpFormulation f(p, opts);
  RematSolution sol;
  sol.R = make_bool_matrix(4, 4);
  sol.S = make_bool_matrix(4, 4);
  for (int t = 0; t < 4; ++t) {
    sol.R[t][t] = 1;
    for (int i = 0; i < t; ++i) sol.S[t][i] = 1;
  }
  EXPECT_FALSE(f.assemble_assignment(sol).has_value());
}

TEST(IlpBuilder, CostCapMakesTightProblemInfeasible) {
  auto p = RematProblem::unit_training_chain(3);  // compute-once cost 7
  IlpBuildOptions opts;
  opts.budget_bytes = 4.0;  // optimum cost exceeds 7.5 (see above test)
  opts.cost_cap = 7.5;
  IlpFormulation f(p, opts);
  auto res = milp::solve_milp(f.lp(), bounded_milp());
  EXPECT_EQ(res.status, milp::MilpStatus::kInfeasible);
}

TEST(IlpBuilder, LpRelaxationLowerBoundsIlp) {
  auto p = RematProblem::unit_chain(5);
  IlpBuildOptions opts;
  opts.budget_bytes = 3.0;
  IlpFormulation f(p, opts);
  auto rel = lp::solve_lp(f.lp());
  ASSERT_EQ(rel.status, lp::LpStatus::kOptimal);
  auto ilp = milp::solve_milp(f.lp(), bounded_milp());
  ASSERT_EQ(ilp.status, milp::MilpStatus::kOptimal);
  EXPECT_LE(rel.objective, ilp.objective + 1e-7);
}

TEST(IlpBuilder, CutStructureCapacitiesFollowSetBudget) {
  // The knapsack view binds capacities to the U columns' upper bounds, so
  // a set_budget() rebind re-targets every knapsack without rebuilding the
  // structure.
  auto p = RematProblem::unit_training_chain(5);
  IlpBuildOptions opts;
  opts.budget_bytes = 8.0;
  IlpFormulation f(p, opts);
  const milp::FormulationStructure structure = f.cut_structure();
  ASSERT_FALSE(structure.empty());
  for (const auto& row : structure.knapsacks) {
    ASSERT_GE(row.capacity_var, 0);
    EXPECT_DOUBLE_EQ(f.lp().ub[row.capacity_var], f.scale_budget(8.0));
    for (const auto& item : row.items) {
      EXPECT_GE(item.var, 0);
      EXPECT_GT(item.weight, 0.0);
      EXPECT_TRUE(f.lp().is_integer[item.var]);
    }
  }
  f.set_budget(6.0);
  for (const auto& row : structure.knapsacks)
    EXPECT_DOUBLE_EQ(f.lp().ub[row.capacity_var], f.scale_budget(6.0));
}

TEST(IlpBuilder, SetBudgetRebindWithAppendedCutRows) {
  // A working LP that carries appended cut rows (the branch & cut search
  // grows its copy; the plan service's cached presolve artifact can grow
  // the same way) must stay a pure U-upper-bound rebind under
  // set_budget(): the cut rows keep their coefficients, u_var_indices
  // stays valid, and a solve on the rebound LP matches a fresh build at
  // the new budget with the same cuts appended.
  auto p = RematProblem::unit_training_chain(6);
  IlpBuildOptions opts;
  opts.budget_bytes = 9.0;
  IlpFormulation f(p, opts);
  const milp::FormulationStructure structure = f.cut_structure();

  // Separate real cuts against the LP relaxation at the large budget and
  // append them to the formulation's working LP.
  auto rel = lp::solve_lp(f.lp());
  ASSERT_EQ(rel.status, lp::LpStatus::kOptimal);
  f.set_budget(5.0);  // tighten FIRST so the relaxation point separates
  milp::SeparationOptions sep;
  std::vector<milp::Cut> cuts;
  milp::separate_knapsack_cuts(structure, f.lp(), rel.x, sep, &cuts);
  ASSERT_FALSE(cuts.empty());  // the scenario must exercise real rows
  const int rows_before = f.lp().num_rows();
  for (const milp::Cut& c : cuts) f.mutable_lp().add_le(c.terms, c.rhs);
  ASSERT_EQ(f.lp().num_rows(),
            rows_before + static_cast<int>(cuts.size()));

  // Rebind again across the appended rows: only U upper bounds may move.
  f.set_budget(7.0);
  for (int var : f.u_var_indices())
    EXPECT_DOUBLE_EQ(f.lp().ub[var], f.scale_budget(7.0));

  milp::MilpOptions mopts = bounded_milp();
  mopts.branch_priority = f.branch_priorities();
  mopts.cut_structure = &structure;
  auto with_rows = milp::solve_milp(f.lp(), mopts);

  IlpBuildOptions fresh_opts;
  fresh_opts.budget_bytes = 7.0;
  IlpFormulation fresh(p, fresh_opts);
  for (const milp::Cut& c : cuts) fresh.mutable_lp().add_le(c.terms, c.rhs);
  milp::MilpOptions fresh_mopts = bounded_milp();
  fresh_mopts.branch_priority = fresh.branch_priorities();
  const milp::FormulationStructure fresh_structure = fresh.cut_structure();
  fresh_mopts.cut_structure = &fresh_structure;
  auto cold = milp::solve_milp(fresh.lp(), fresh_mopts);

  ASSERT_EQ(with_rows.status, milp::MilpStatus::kOptimal);
  ASSERT_EQ(cold.status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(with_rows.objective, cold.objective, 1e-6);
}

TEST(IlpBuilder, AppendedCutRowsSurvivePresolveClampReuse) {
  // The plan service reuses presolve artifacts across budgets by clamping
  // the U upper bounds. Cut rows appended to such an artifact must not
  // desync the clamp path: solving the clamped artifact with cuts equals
  // a cold solve at the clamped budget.
  auto p = RematProblem::unit_training_chain(6);
  IlpBuildOptions opts;
  opts.budget_bytes = 9.0;
  IlpFormulation f(p, opts);
  const milp::FormulationStructure structure = f.cut_structure();

  milp::PresolveResult pre = milp::presolve(f.lp());
  ASSERT_FALSE(pre.stats.proven_infeasible);
  auto rel = lp::solve_lp(pre.lp);
  ASSERT_EQ(rel.status, lp::LpStatus::kOptimal);

  // Clamp to a smaller budget, then separate + append cuts against the
  // clamped artifact (capacities read the clamped bounds).
  ASSERT_TRUE(milp::clamp_upper_bounds(pre.lp, f.u_var_indices(),
                                       f.scale_budget(5.0)));
  milp::SeparationOptions sep;
  std::vector<milp::Cut> cuts;
  milp::separate_knapsack_cuts(structure, pre.lp, rel.x, sep, &cuts);
  ASSERT_FALSE(cuts.empty());  // the scenario must exercise real rows
  for (const milp::Cut& c : cuts) pre.lp.add_le(c.terms, c.rhs);

  milp::MilpOptions mopts = bounded_milp();
  mopts.presolve = false;  // artifact already presolved
  mopts.branch_priority = f.branch_priorities();
  mopts.cut_structure = &structure;
  auto clamped = milp::solve_milp(pre.lp, mopts);

  IlpBuildOptions cold_opts;
  cold_opts.budget_bytes = 5.0;
  IlpFormulation cold_form(p, cold_opts);
  milp::MilpOptions cold_mopts = bounded_milp();
  cold_mopts.branch_priority = cold_form.branch_priorities();
  const milp::FormulationStructure cold_structure =
      cold_form.cut_structure();
  cold_mopts.cut_structure = &cold_structure;
  auto cold = milp::solve_milp(cold_form.lp(), cold_mopts);

  ASSERT_EQ(clamped.status, milp::MilpStatus::kOptimal);
  ASSERT_EQ(cold.status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(clamped.objective, cold.objective, 1e-6);
}

}  // namespace
}  // namespace checkmate
