// End-to-end validation of the optimal solver against exhaustive search.
//
// For tiny instances we enumerate every lower-triangular checkpoint matrix
// S, back-solve the minimal R, and keep the cheapest schedule whose memory
// accounting fits the budget. Since extra recomputation never lowers the
// accounting peak for a fixed S, this enumeration covers an optimal
// schedule -- so its best cost must equal the MILP optimum.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.h"
#include "core/ilp_builder.h"
#include "core/rounding.h"
#include "core/scheduler.h"
#include "lp/simplex.h"
#include "milp/milp.h"
#include "model/autodiff.h"
#include "model/zoo.h"

namespace checkmate {
namespace {


// Explicit wall-clock limits on every MILP solve: a solver regression must
// fail a status assertion, not wedge the suite.
milp::MilpOptions bounded_milp(double time_limit_sec = 60.0) {
  milp::MilpOptions opts;
  opts.time_limit_sec = time_limit_sec;
  return opts;
}

struct BruteForceResult {
  double best_cost = std::numeric_limits<double>::infinity();
  RematSolution best;
};

BruteForceResult brute_force(const RematProblem& p, double budget) {
  const int n = p.size();
  std::vector<std::pair<int, int>> slots;  // (t, i), i < t
  for (int t = 1; t < n; ++t)
    for (int i = 0; i < t; ++i) slots.emplace_back(t, i);
  BruteForceResult out;
  const int64_t combos = 1LL << slots.size();
  for (int64_t mask = 0; mask < combos; ++mask) {
    BoolMatrix s = make_bool_matrix(n, n);
    for (size_t b = 0; b < slots.size(); ++b)
      if (mask & (1LL << b)) s[slots[b].first][slots[b].second] = 1;
    RematSolution sol;
    sol.S = s;
    sol.R = solve_r_given_s(p.graph, s);
    if (!sol.check_feasible(p).empty()) continue;
    if (peak_memory_usage(p, sol) > budget + 1e-9) continue;
    const double cost = sol.compute_cost(p);
    if (cost < out.best_cost) {
      out.best_cost = cost;
      out.best = sol;
    }
  }
  return out;
}

TEST(Integration, IlpMatchesBruteForceOnTinyTrainingChain) {
  auto p = RematProblem::unit_training_chain(2);  // n = 5, 10 S-bits
  for (double budget : {4.0, 5.0, 6.0}) {
    auto bf = brute_force(p, budget);
    ASSERT_TRUE(std::isfinite(bf.best_cost)) << "budget " << budget;
    IlpBuildOptions opts;
    opts.budget_bytes = budget;
    IlpFormulation f(p, opts);
    auto res = milp::solve_milp(f.lp(), bounded_milp());
    ASSERT_EQ(res.status, milp::MilpStatus::kOptimal) << "budget " << budget;
    EXPECT_NEAR(f.unscale_cost(res.objective), bf.best_cost, 1e-5)
        << "budget " << budget;
  }
}

TEST(Integration, IlpMatchesBruteForceOnTinyDiamond) {
  // Diamond: 0 -> {1, 2} -> 3, then a gradient-ish tail 3 -> 4 that needs
  // 1 as well (forces a checkpointing decision).
  RematProblem p;
  p.name = "diamond";
  p.graph = Graph(5);
  p.graph.add_edge(0, 1);
  p.graph.add_edge(0, 2);
  p.graph.add_edge(1, 3);
  p.graph.add_edge(2, 3);
  p.graph.add_edge(3, 4);
  p.graph.add_edge(1, 4);
  p.cost = {1.0, 3.0, 2.0, 1.0, 1.0};  // non-uniform costs
  p.memory = {2.0, 1.0, 1.0, 1.0, 1.0};
  p.is_backward = {0, 0, 0, 0, 1};
  p.grad_of = {-1, -1, -1, -1, 3};
  p.node_names = {"a", "b", "c", "d", "gd"};
  p.validate();

  for (double budget : {4.0, 5.0, 6.0}) {
    auto bf = brute_force(p, budget);
    if (!std::isfinite(bf.best_cost)) continue;
    IlpBuildOptions opts;
    opts.budget_bytes = budget;
    IlpFormulation f(p, opts);
    auto res = milp::solve_milp(f.lp(), bounded_milp());
    ASSERT_EQ(res.status, milp::MilpStatus::kOptimal);
    EXPECT_NEAR(f.unscale_cost(res.objective), bf.best_cost, 1e-5)
        << "budget " << budget;
  }
}

TEST(Integration, UnpartitionedNeverWorseThanPartitioned) {
  // The frontier-advancing constraints shrink the feasible set; the
  // unpartitioned optimum is a lower bound (they coincide on the paper's
  // example).
  auto p = RematProblem::unit_training_chain(2);
  for (double budget : {4.0, 6.0}) {
    IlpBuildOptions part, unpart;
    part.budget_bytes = unpart.budget_bytes = budget;
    unpart.partitioned = false;
    IlpFormulation fp(p, part), fu(p, unpart);
    auto rp = milp::solve_milp(fp.lp(), bounded_milp());
    auto ru = milp::solve_milp(fu.lp(), bounded_milp(120.0));
    ASSERT_EQ(rp.status, milp::MilpStatus::kOptimal);
    ASSERT_EQ(ru.status, milp::MilpStatus::kOptimal);
    EXPECT_LE(fu.unscale_cost(ru.objective),
              fp.unscale_cost(rp.objective) + 1e-6);
  }
}

TEST(Integration, PartitioningTightensLpRelaxation) {
  // Appendix A: the partitioned form has a much smaller integrality gap.
  auto p = RematProblem::unit_training_chain(3);
  const double budget = 4.0;
  IlpBuildOptions part, unpart;
  part.budget_bytes = unpart.budget_bytes = budget;
  unpart.partitioned = false;
  IlpFormulation fp(p, part), fu(p, unpart);
  auto lp_p = lp::solve_lp(fp.lp());
  auto lp_u = lp::solve_lp(fu.lp());
  ASSERT_EQ(lp_p.status, lp::LpStatus::kOptimal);
  ASSERT_EQ(lp_u.status, lp::LpStatus::kOptimal);
  auto ilp_p = milp::solve_milp(fp.lp(), bounded_milp());
  ASSERT_EQ(ilp_p.status, milp::MilpStatus::kOptimal);
  const double gap_part = ilp_p.objective / std::max(1e-9, lp_p.objective);
  const double gap_unpart = ilp_p.objective / std::max(1e-9, lp_u.objective);
  EXPECT_LT(gap_part, gap_unpart);
}

TEST(Integration, DiagFreeEliminationPreservesOptimum) {
  // Section 4.8 removes |V|^2 FREE variables without changing the optimum.
  auto p = RematProblem::unit_training_chain(3);
  for (double budget : {4.0, 5.0}) {
    IlpBuildOptions with, without;
    with.budget_bytes = without.budget_bytes = budget;
    without.eliminate_diag_free = false;
    IlpFormulation fw(p, with), fo(p, without);
    EXPECT_GT(fo.lp().num_vars(), fw.lp().num_vars());
    auto rw = milp::solve_milp(fw.lp(), bounded_milp());
    auto ro = milp::solve_milp(fo.lp(), bounded_milp());
    ASSERT_EQ(rw.status, milp::MilpStatus::kOptimal);
    ASSERT_EQ(ro.status, milp::MilpStatus::kOptimal);
    EXPECT_NEAR(fw.unscale_cost(rw.objective), fo.unscale_cost(ro.objective),
                1e-5);
  }
}

TEST(Integration, FullPipelineOnMobileNetSlice) {
  // A real (coarse) model through problem construction, ILP solve, plan
  // generation and simulation, at a budget that forces rematerialization.
  auto g = model::make_training_graph(model::zoo::mobilenet_v1(2, 64));
  auto p = RematProblem::from_dnn(g, model::CostMetric::kProfiledTimeUs);
  Scheduler sched(p);
  auto all = sched.evaluate_schedule(
      baselines::checkpoint_all_schedule(p), 0.0);
  ASSERT_TRUE(all.feasible);
  IlpSolveOptions opts;
  opts.time_limit_sec = 90.0;
  const double budget =
      p.memory_floor() + 0.5 * (all.peak_memory - p.memory_floor());
  auto res = sched.solve_optimal_ilp(budget, opts);
  ASSERT_TRUE(res.feasible) << res.message;
  EXPECT_LE(res.peak_memory, budget + 1.0);
  EXPECT_GE(res.cost, all.cost - 1e-6);
  // Solver cost accounting must agree with the simulator.
  EXPECT_NEAR(res.cost, res.solution.compute_cost(p), 1e-6 * res.cost);
}

TEST(Integration, SolverMemoryAccountingMatchesSimulator) {
  // For ILP-optimal schedules (no spurious work), the accounting peak and
  // the simulated peak coincide.
  Scheduler sched(RematProblem::unit_training_chain(6));
  IlpSolveOptions opts;
  opts.time_limit_sec = 30.0;
  for (double budget : {6.0, 8.0, 10.0}) {
    auto res = sched.solve_optimal_ilp(budget, opts);
    ASSERT_TRUE(res.feasible);
    EXPECT_NEAR(res.peak_memory,
                peak_memory_usage(sched.problem(), res.solution), 1e-9);
  }
}

}  // namespace
}  // namespace checkmate
