// Deep-instance (>= 200 stage) scale contract for the retention-interval
// backend -- the reason the backend exists. Nightly tier (labeled `slow` in
// CMakeLists.txt): the dense half of the contract deliberately burns its
// whole (short) time limit demonstrating failure.
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/scheduler.h"
#include "milp/milp.h"
#include "model/autodiff.h"
#include "model/zoo.h"

namespace checkmate {
namespace {

TEST(IntervalBig, ProvesDeepChainDenseCannotTouch) {
  // 480-stage chain at a tight budget. The dense Problem 9 encoding
  // carries O(n^2) per-step U columns plus the FREE machinery and cannot
  // finish even its root relaxation inside the 60s bench window (bound
  // stays -inf); the interval backend proves optimality outright in a few
  // seconds.
  auto p = RematProblem::unit_chain(480);
  Scheduler sched(p);

  IlpSolveOptions interval;
  interval.formulation = IlpFormulationKind::kInterval;
  interval.relative_gap = 5e-4;
  interval.time_limit_sec = 60.0;
  interval.num_threads = 1;
  auto ri = sched.solve_optimal_ilp(6.0, interval);
  ASSERT_EQ(ri.milp_status, milp::MilpStatus::kOptimal);
  EXPECT_TRUE(ri.feasible) << ri.message;
  EXPECT_TRUE(ri.solution.check_feasible(p).empty());
  EXPECT_LE(ri.sim.peak_memory, 6.0 + 1e-9);

  IlpSolveOptions dense;
  dense.relative_gap = 5e-4;
  dense.time_limit_sec = 10.0;  // generous for proving it gets nowhere
  dense.num_threads = 1;
  auto rd = sched.solve_optimal_ilp(6.0, dense);
  EXPECT_NE(rd.milp_status, milp::MilpStatus::kOptimal)
      << "dense backend unexpectedly solved n=480 -- promote the bench "
         "instance and revisit the interval backend's reason to exist";
}

TEST(IntervalBig, DeepTransformerBoundsAreSane) {
  // transformer_stack(20) is a 209-stage heterogeneous-cost training graph.
  // Neither backend proves it at a mid budget in bench time (documented
  // frontier); the interval backend must still return a feasible incumbent
  // with a valid lower bound under a deterministic work limit.
  auto p = RematProblem::from_dnn(
      model::make_training_graph(model::zoo::transformer_stack(20)),
      model::CostMetric::kProfiledTimeUs);
  Scheduler sched(p);
  const double floor = p.memory_floor();
  auto all = sched.evaluate_schedule(baselines::checkpoint_all_schedule(p),
                                     0.0);
  const double budget = floor + 0.8 * (all.peak_memory - floor);

  IlpSolveOptions o;
  o.formulation = IlpFormulationKind::kInterval;
  o.time_limit_sec = 120.0;
  o.max_lp_iterations = 20000;  // deterministic truncation
  o.num_threads = 1;
  auto r = sched.solve_optimal_ilp(budget, o);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_TRUE(r.solution.check_feasible(p).empty());
  EXPECT_LE(r.sim.peak_memory, budget + 1e-6);
  EXPECT_GT(r.best_bound, 0.0);
  EXPECT_LE(r.best_bound, r.cost + 1e-6);
}

}  // namespace
}  // namespace checkmate
