// Retention-interval backend (IlpFormulationKind::kInterval) equivalence
// suite: the interval encoding restricts the schedule class (stage-granular
// residency, no backward rematerialization), so its soundness contract is
// empirical and enforced here -- on every small instance it must prove the
// SAME optimal objective as the dense Problem 9 backend (and as exhaustive
// search), return simulator-validated schedules, and keep the epoch-
// lockstep bit-identity guarantee across worker counts.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "baselines/baselines.h"
#include "core/ilp_builder.h"
#include "core/scheduler.h"
#include "lp/simplex.h"
#include "milp/milp.h"
#include "model/autodiff.h"
#include "model/zoo.h"

namespace checkmate {
namespace {

// Exhaustive oracle, same construction as test_integration.cpp: enumerate
// every lower-triangular checkpoint matrix S, back-solve the minimal R,
// keep the cheapest schedule fitting the budget under the dense (per-step)
// accounting.
double brute_force_cost(const RematProblem& p, double budget) {
  const int n = p.size();
  std::vector<std::pair<int, int>> slots;
  for (int t = 1; t < n; ++t)
    for (int i = 0; i < t; ++i) slots.emplace_back(t, i);
  double best = std::numeric_limits<double>::infinity();
  const int64_t combos = 1LL << slots.size();
  for (int64_t mask = 0; mask < combos; ++mask) {
    BoolMatrix s = make_bool_matrix(n, n);
    for (size_t b = 0; b < slots.size(); ++b)
      if (mask & (1LL << b)) s[slots[b].first][slots[b].second] = 1;
    RematSolution sol;
    sol.S = s;
    sol.R = solve_r_given_s(p.graph, s);
    if (!sol.check_feasible(p).empty()) continue;
    if (peak_memory_usage(p, sol) > budget + 1e-9) continue;
    best = std::min(best, sol.compute_cost(p));
  }
  return best;
}

RematProblem diamond_problem() {
  RematProblem p;
  p.name = "diamond";
  p.graph = Graph(5);
  p.graph.add_edge(0, 1);
  p.graph.add_edge(0, 2);
  p.graph.add_edge(1, 3);
  p.graph.add_edge(2, 3);
  p.graph.add_edge(3, 4);
  p.graph.add_edge(1, 4);
  p.cost = {1.0, 3.0, 2.0, 1.0, 1.0};
  p.memory = {2.0, 1.0, 1.0, 1.0, 1.0};
  p.is_backward = {0, 0, 0, 0, 1};
  p.grad_of = {-1, -1, -1, -1, 3};
  p.node_names = {"a", "b", "c", "d", "gd"};
  p.validate();
  return p;
}

IlpSolveOptions interval_options() {
  IlpSolveOptions o;
  o.formulation = IlpFormulationKind::kInterval;
  o.num_threads = 1;
  return o;
}

// Solve one instance under both backends and assert the full equivalence
// contract: proven optimality, identical objectives, simulator-validated
// schedules under the query budget.
void expect_backends_agree(const RematProblem& p, double budget) {
  Scheduler sched(p);
  IlpSolveOptions dense;
  dense.num_threads = 1;
  auto rd = sched.solve_optimal_ilp(budget, dense);
  auto ri = sched.solve_optimal_ilp(budget, interval_options());
  ASSERT_EQ(rd.milp_status, milp::MilpStatus::kOptimal)
      << p.name << " b=" << budget;
  ASSERT_EQ(ri.milp_status, milp::MilpStatus::kOptimal)
      << p.name << " b=" << budget;
  EXPECT_NEAR(rd.cost, ri.cost, 1e-6 * std::max(1.0, rd.cost))
      << p.name << " b=" << budget;
  for (const ScheduleResult* r : {&rd, &ri}) {
    EXPECT_TRUE(r->feasible) << r->message;
    EXPECT_TRUE(r->solution.check_feasible(p).empty());
    EXPECT_LE(r->sim.peak_memory, budget + 1e-6);
  }
}

TEST(IntervalFormulation, MatchesBruteForceOracle) {
  struct Case {
    RematProblem problem;
    std::vector<double> budgets;
  };
  std::vector<Case> corpus;
  corpus.push_back({RematProblem::unit_training_chain(2), {4.0, 5.0, 6.0}});
  // Two budgets only for the 7-node chain: the oracle enumerates 2^21
  // schedules per budget.
  corpus.push_back({RematProblem::unit_training_chain(3), {4.0, 6.0}});
  corpus.push_back({diamond_problem(), {4.0, 5.0, 6.0}});
  for (const Case& c : corpus) {
    Scheduler sched(c.problem);
    for (double budget : c.budgets) {
      const double oracle = brute_force_cost(c.problem, budget);
      ASSERT_TRUE(std::isfinite(oracle)) << c.problem.name << " b=" << budget;
      auto res = sched.solve_optimal_ilp(budget, interval_options());
      ASSERT_EQ(res.milp_status, milp::MilpStatus::kOptimal)
          << c.problem.name << " b=" << budget;
      EXPECT_NEAR(res.cost, oracle, 1e-6)
          << c.problem.name << " b=" << budget;
      EXPECT_TRUE(res.solution.check_feasible(c.problem).empty());
      EXPECT_LE(res.sim.peak_memory, budget + 1e-9);
    }
  }
}

TEST(IntervalFormulation, MatchesDenseOnUnitChains) {
  expect_backends_agree(RematProblem::unit_training_chain(6), 5.0);
  expect_backends_agree(RematProblem::unit_training_chain(8), 7.0);
}

TEST(IntervalFormulation, MatchesDenseOnSmallZoo) {
  for (auto make : {+[] {
                      return RematProblem::from_dnn(
                          model::make_training_graph(
                              model::zoo::mobilenet_v1(2, 64)),
                          model::CostMetric::kProfiledTimeUs);
                    },
                    +[] {
                      return RematProblem::from_dnn(
                          model::make_training_graph(model::zoo::vgg16(2)),
                          model::CostMetric::kProfiledTimeUs);
                    }}) {
    auto p = make();
    Scheduler sched(p);
    auto all = sched.evaluate_schedule(baselines::checkpoint_all_schedule(p),
                                       0.0);
    const double floor = p.memory_floor();
    expect_backends_agree(p, floor + 0.5 * (all.peak_memory - floor));
  }
}

TEST(IntervalFormulation, BitIdenticalAcrossWorkerCounts) {
  // The interval backend rides the same epoch-lockstep tree search as the
  // dense one, so node counts, objectives and bounds must be bit-identical
  // for any worker count.
  auto p = RematProblem::from_dnn(
      model::make_training_graph(model::zoo::mobilenet_v1(2, 64)),
      model::CostMetric::kProfiledTimeUs);
  Scheduler sched(p);
  auto all = sched.evaluate_schedule(baselines::checkpoint_all_schedule(p),
                                     0.0);
  const double floor = p.memory_floor();
  const double budget = floor + 0.5 * (all.peak_memory - floor);

  std::optional<ScheduleResult> reference;
  for (int threads : {1, 2, 4}) {
    IlpSolveOptions o = interval_options();
    o.num_threads = threads;
    auto res = sched.solve_optimal_ilp(budget, o);
    ASSERT_EQ(res.milp_status, milp::MilpStatus::kOptimal)
        << "threads=" << threads;
    if (!reference) {
      reference = res;
      continue;
    }
    EXPECT_EQ(res.nodes, reference->nodes) << "threads=" << threads;
    EXPECT_EQ(res.cost, reference->cost) << "threads=" << threads;
    EXPECT_EQ(res.best_bound, reference->best_bound)
        << "threads=" << threads;
  }
}

TEST(IntervalFormulation, RequiresPartitionedForm) {
  auto p = RematProblem::unit_training_chain(3);
  IlpBuildOptions opts;
  opts.budget_bytes = 6.0;
  opts.partitioned = false;
  opts.formulation = IlpFormulationKind::kInterval;
  EXPECT_THROW(IlpFormulation(p, opts), std::invalid_argument);
}

TEST(IntervalFormulation, SetBudgetIsPureBoundRebind) {
  // The budget must enter the interval LP only through the U upper bounds:
  // a rebind followed by a solve matches a fresh build at the new budget.
  auto p = RematProblem::unit_training_chain(6);
  IlpBuildOptions opts;
  opts.budget_bytes = 9.0;
  opts.formulation = IlpFormulationKind::kInterval;
  IlpFormulation f(p, opts);
  f.set_budget(5.0);
  for (int var : f.u_var_indices())
    EXPECT_DOUBLE_EQ(f.lp().ub[var], f.scale_budget(5.0));

  milp::MilpOptions mopts;
  mopts.time_limit_sec = 60.0;
  mopts.branch_priority = f.branch_priorities();
  auto rebound = milp::solve_milp(f.lp(), mopts);

  IlpBuildOptions fresh_opts = opts;
  fresh_opts.budget_bytes = 5.0;
  IlpFormulation fresh(p, fresh_opts);
  milp::MilpOptions fresh_mopts;
  fresh_mopts.time_limit_sec = 60.0;
  fresh_mopts.branch_priority = fresh.branch_priorities();
  auto cold = milp::solve_milp(fresh.lp(), fresh_mopts);

  ASSERT_EQ(rebound.status, milp::MilpStatus::kOptimal);
  ASSERT_EQ(cold.status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(f.unscale_cost(rebound.objective),
              fresh.unscale_cost(cold.objective), 1e-9);
}

TEST(IntervalFormulation, CutStructureKnapsacksAreValid) {
  // Every knapsack the interval backend hands the separators must target a
  // real U column and integer items, and capacities must follow a
  // set_budget rebind (the separators read ub(capacity_var) live).
  auto p = RematProblem::from_dnn(
      model::make_training_graph(model::zoo::mobilenet_v1(2, 64)),
      model::CostMetric::kProfiledTimeUs);
  IlpBuildOptions opts;
  opts.budget_bytes = 0.6 * p.total_memory();
  opts.formulation = IlpFormulationKind::kInterval;
  IlpFormulation f(p, opts);
  const milp::FormulationStructure structure = f.cut_structure();
  ASSERT_FALSE(structure.empty());
  for (const auto& row : structure.knapsacks) {
    ASSERT_GE(row.capacity_var, 0);
    EXPECT_DOUBLE_EQ(f.lp().ub[row.capacity_var],
                     f.scale_budget(opts.budget_bytes));
    for (const auto& item : row.items) {
      ASSERT_GE(item.var, 0);
      EXPECT_GT(item.weight, 0.0);
      EXPECT_TRUE(f.lp().is_integer[item.var]);
    }
  }
  f.set_budget(0.5 * p.total_memory());
  for (const auto& row : structure.knapsacks)
    EXPECT_DOUBLE_EQ(f.lp().ub[row.capacity_var],
                     f.scale_budget(0.5 * p.total_memory()));
}

}  // namespace
}  // namespace checkmate
