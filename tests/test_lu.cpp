#include "lp/lu.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace checkmate::lp {
namespace {

// Helper owning column storage for factorize().
struct ColumnSet {
  std::vector<std::vector<int>> rows;
  std::vector<std::vector<double>> vals;

  void add(std::vector<int> r, std::vector<double> v) {
    rows.push_back(std::move(r));
    vals.push_back(std::move(v));
  }
  std::vector<BasisColumn> view() const {
    std::vector<BasisColumn> cols;
    for (size_t i = 0; i < rows.size(); ++i)
      cols.push_back({rows[i], vals[i]});
    return cols;
  }
};

std::vector<std::vector<double>> to_dense(const ColumnSet& cs, int m) {
  std::vector<std::vector<double>> a(m, std::vector<double>(m, 0.0));
  for (int j = 0; j < m; ++j)
    for (size_t k = 0; k < cs.rows[j].size(); ++k)
      a[cs.rows[j][k]][j] = cs.vals[j][k];
  return a;
}

TEST(LuFactorization, Identity) {
  ColumnSet cs;
  for (int j = 0; j < 4; ++j) cs.add({j}, {1.0});
  LuFactorization lu;
  ASSERT_TRUE(lu.factorize(4, cs.view()));
  std::vector<double> x{1, 2, 3, 4};
  lu.ftran(x);
  EXPECT_NEAR(x[0], 1, 1e-12);
  EXPECT_NEAR(x[3], 4, 1e-12);
  std::vector<double> y{5, 6, 7, 8};
  lu.btran(y);
  EXPECT_NEAR(y[2], 7, 1e-12);
}

TEST(LuFactorization, NegatedIdentity) {
  // The all-slack simplex basis is -I.
  ColumnSet cs;
  for (int j = 0; j < 3; ++j) cs.add({j}, {-1.0});
  LuFactorization lu;
  ASSERT_TRUE(lu.factorize(3, cs.view()));
  std::vector<double> x{2, -4, 6};
  lu.ftran(x);
  EXPECT_NEAR(x[0], -2, 1e-12);
  EXPECT_NEAR(x[1], 4, 1e-12);
  EXPECT_NEAR(x[2], -6, 1e-12);
}

TEST(LuFactorization, Permutation) {
  // B = permutation matrix: column j has a 1 in row (j+1) mod 3.
  ColumnSet cs;
  cs.add({1}, {1.0});
  cs.add({2}, {1.0});
  cs.add({0}, {1.0});
  LuFactorization lu;
  ASSERT_TRUE(lu.factorize(3, cs.view()));
  // Solve B x = b where b = (b0,b1,b2): x_j must satisfy x appears at
  // row (j+1)%3, i.e. x = (b1, b2, b0).
  std::vector<double> x{10, 20, 30};
  lu.ftran(x);
  EXPECT_NEAR(x[0], 20, 1e-12);
  EXPECT_NEAR(x[1], 30, 1e-12);
  EXPECT_NEAR(x[2], 10, 1e-12);
}

TEST(LuFactorization, SingularDetected) {
  ColumnSet cs;
  cs.add({0, 1}, {1.0, 1.0});
  cs.add({0, 1}, {2.0, 2.0});  // linearly dependent
  LuFactorization lu;
  EXPECT_FALSE(lu.factorize(2, cs.view()));
}

TEST(LuFactorization, ZeroColumnSingular) {
  ColumnSet cs;
  cs.add({0}, {1.0});
  cs.add({}, {});
  LuFactorization lu;
  EXPECT_FALSE(lu.factorize(2, cs.view()));
}

TEST(LuFactorization, FailedFactorizationIsMemorySafe) {
  // Regression: a singular basis used to leave pivot_row_ half-filled with
  // -1, and a subsequent solve wrote out of bounds. After failure the
  // factors must behave as a benign identity.
  ColumnSet cs;
  cs.add({0, 1}, {1.0, 1.0});
  cs.add({0, 1}, {2.0, 2.0});
  LuFactorization lu;
  ASSERT_FALSE(lu.factorize(2, cs.view()));
  std::vector<double> x{3.0, 4.0};
  lu.ftran(x);  // must not crash
  std::vector<double> y{5.0, 6.0};
  lu.btran(y);  // must not crash
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(y[1], 6.0, 1e-12);
}

TEST(LuFactorization, RandomDenseRoundTrip) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> val(-3.0, 3.0);
  for (int trial = 0; trial < 40; ++trial) {
    const int m = 1 + static_cast<int>(rng() % 12);
    ColumnSet cs;
    for (int j = 0; j < m; ++j) {
      std::vector<int> rows;
      std::vector<double> vals;
      for (int r = 0; r < m; ++r) {
        if (rng() % 3 != 0) continue;
        rows.push_back(r);
        vals.push_back(val(rng));
      }
      // Guarantee nonsingularity odds with a strong diagonal entry.
      bool has_diag = false;
      for (size_t k = 0; k < rows.size(); ++k)
        if (rows[k] == j) {
          vals[k] += 5.0;
          has_diag = true;
        }
      if (!has_diag) {
        rows.push_back(j);
        vals.push_back(5.0 + val(rng));
      }
      cs.add(std::move(rows), std::move(vals));
    }
    LuFactorization lu;
    ASSERT_TRUE(lu.factorize(m, cs.view())) << "trial " << trial;
    const auto dense = to_dense(cs, m);

    // FTRAN: pick x*, compute b = B x*, solve, compare.
    std::vector<double> x_star(m), b(m, 0.0);
    for (double& v : x_star) v = val(rng);
    for (int r = 0; r < m; ++r)
      for (int j = 0; j < m; ++j) b[r] += dense[r][j] * x_star[j];
    std::vector<double> x = b;
    lu.ftran(x);
    for (int j = 0; j < m; ++j)
      EXPECT_NEAR(x[j], x_star[j], 1e-7) << "ftran trial " << trial;

    // BTRAN: pick y*, compute c = B' y*, solve, compare.
    std::vector<double> y_star(m), c(m, 0.0);
    for (double& v : y_star) v = val(rng);
    for (int j = 0; j < m; ++j)
      for (int r = 0; r < m; ++r) c[j] += dense[r][j] * y_star[r];
    std::vector<double> y = c;
    lu.btran(y);
    for (int r = 0; r < m; ++r)
      EXPECT_NEAR(y[r], y_star[r], 1e-7) << "btran trial " << trial;
  }
}

TEST(LuFactorization, LargeSparseSystem) {
  // Tridiagonal-ish system of size 500: verifies scalability and fill
  // handling.
  const int m = 500;
  ColumnSet cs;
  for (int j = 0; j < m; ++j) {
    std::vector<int> rows{j};
    std::vector<double> vals{4.0};
    if (j > 0) {
      rows.push_back(j - 1);
      vals.push_back(-1.0);
    }
    if (j + 1 < m) {
      rows.push_back(j + 1);
      vals.push_back(-1.0);
    }
    cs.add(std::move(rows), std::move(vals));
  }
  LuFactorization lu;
  ASSERT_TRUE(lu.factorize(m, cs.view()));
  std::vector<double> ones(m, 1.0);
  std::vector<double> x = ones;
  lu.ftran(x);
  // Verify B x == 1 by residual.
  const auto dense_col = [&](int j) { return cs.vals[j]; };
  (void)dense_col;
  std::vector<double> residual(m, 0.0);
  for (int j = 0; j < m; ++j)
    for (size_t k = 0; k < cs.rows[j].size(); ++k)
      residual[cs.rows[j][k]] += cs.vals[j][k] * x[j];
  for (int r = 0; r < m; ++r) EXPECT_NEAR(residual[r], 1.0, 1e-8);
}

}  // namespace
}  // namespace checkmate::lp
