#include "lp/lu.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace checkmate::lp {
namespace {

// Helper owning column storage for factorize().
struct ColumnSet {
  std::vector<std::vector<int>> rows;
  std::vector<std::vector<double>> vals;

  void add(std::vector<int> r, std::vector<double> v) {
    rows.push_back(std::move(r));
    vals.push_back(std::move(v));
  }
  std::vector<BasisColumn> view() const {
    std::vector<BasisColumn> cols;
    for (size_t i = 0; i < rows.size(); ++i)
      cols.push_back({rows[i], vals[i]});
    return cols;
  }
};

std::vector<std::vector<double>> to_dense(const ColumnSet& cs, int m) {
  std::vector<std::vector<double>> a(m, std::vector<double>(m, 0.0));
  for (int j = 0; j < m; ++j)
    for (size_t k = 0; k < cs.rows[j].size(); ++k)
      a[cs.rows[j][k]][j] = cs.vals[j][k];
  return a;
}

TEST(LuFactorization, Identity) {
  ColumnSet cs;
  for (int j = 0; j < 4; ++j) cs.add({j}, {1.0});
  LuFactorization lu;
  ASSERT_TRUE(lu.factorize(4, cs.view()));
  std::vector<double> x{1, 2, 3, 4};
  lu.ftran(x);
  EXPECT_NEAR(x[0], 1, 1e-12);
  EXPECT_NEAR(x[3], 4, 1e-12);
  std::vector<double> y{5, 6, 7, 8};
  lu.btran(y);
  EXPECT_NEAR(y[2], 7, 1e-12);
}

TEST(LuFactorization, NegatedIdentity) {
  // The all-slack simplex basis is -I.
  ColumnSet cs;
  for (int j = 0; j < 3; ++j) cs.add({j}, {-1.0});
  LuFactorization lu;
  ASSERT_TRUE(lu.factorize(3, cs.view()));
  std::vector<double> x{2, -4, 6};
  lu.ftran(x);
  EXPECT_NEAR(x[0], -2, 1e-12);
  EXPECT_NEAR(x[1], 4, 1e-12);
  EXPECT_NEAR(x[2], -6, 1e-12);
}

TEST(LuFactorization, Permutation) {
  // B = permutation matrix: column j has a 1 in row (j+1) mod 3.
  ColumnSet cs;
  cs.add({1}, {1.0});
  cs.add({2}, {1.0});
  cs.add({0}, {1.0});
  LuFactorization lu;
  ASSERT_TRUE(lu.factorize(3, cs.view()));
  // Solve B x = b where b = (b0,b1,b2): x_j must satisfy x appears at
  // row (j+1)%3, i.e. x = (b1, b2, b0).
  std::vector<double> x{10, 20, 30};
  lu.ftran(x);
  EXPECT_NEAR(x[0], 20, 1e-12);
  EXPECT_NEAR(x[1], 30, 1e-12);
  EXPECT_NEAR(x[2], 10, 1e-12);
}

TEST(LuFactorization, SingularDetected) {
  ColumnSet cs;
  cs.add({0, 1}, {1.0, 1.0});
  cs.add({0, 1}, {2.0, 2.0});  // linearly dependent
  LuFactorization lu;
  EXPECT_FALSE(lu.factorize(2, cs.view()));
}

TEST(LuFactorization, ZeroColumnSingular) {
  ColumnSet cs;
  cs.add({0}, {1.0});
  cs.add({}, {});
  LuFactorization lu;
  EXPECT_FALSE(lu.factorize(2, cs.view()));
}

TEST(LuFactorization, FailedFactorizationIsMemorySafe) {
  // Regression: a singular basis used to leave pivot_row_ half-filled with
  // -1, and a subsequent solve wrote out of bounds. After failure the
  // factors must behave as a benign identity.
  ColumnSet cs;
  cs.add({0, 1}, {1.0, 1.0});
  cs.add({0, 1}, {2.0, 2.0});
  LuFactorization lu;
  ASSERT_FALSE(lu.factorize(2, cs.view()));
  std::vector<double> x{3.0, 4.0};
  lu.ftran(x);  // must not crash
  std::vector<double> y{5.0, 6.0};
  lu.btran(y);  // must not crash
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(y[1], 6.0, 1e-12);
}

TEST(LuFactorization, RandomDenseRoundTrip) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> val(-3.0, 3.0);
  for (int trial = 0; trial < 40; ++trial) {
    const int m = 1 + static_cast<int>(rng() % 12);
    ColumnSet cs;
    for (int j = 0; j < m; ++j) {
      std::vector<int> rows;
      std::vector<double> vals;
      for (int r = 0; r < m; ++r) {
        if (rng() % 3 != 0) continue;
        rows.push_back(r);
        vals.push_back(val(rng));
      }
      // Guarantee nonsingularity odds with a strong diagonal entry.
      bool has_diag = false;
      for (size_t k = 0; k < rows.size(); ++k)
        if (rows[k] == j) {
          vals[k] += 5.0;
          has_diag = true;
        }
      if (!has_diag) {
        rows.push_back(j);
        vals.push_back(5.0 + val(rng));
      }
      cs.add(std::move(rows), std::move(vals));
    }
    LuFactorization lu;
    ASSERT_TRUE(lu.factorize(m, cs.view())) << "trial " << trial;
    const auto dense = to_dense(cs, m);

    // FTRAN: pick x*, compute b = B x*, solve, compare.
    std::vector<double> x_star(m), b(m, 0.0);
    for (double& v : x_star) v = val(rng);
    for (int r = 0; r < m; ++r)
      for (int j = 0; j < m; ++j) b[r] += dense[r][j] * x_star[j];
    std::vector<double> x = b;
    lu.ftran(x);
    for (int j = 0; j < m; ++j)
      EXPECT_NEAR(x[j], x_star[j], 1e-7) << "ftran trial " << trial;

    // BTRAN: pick y*, compute c = B' y*, solve, compare.
    std::vector<double> y_star(m), c(m, 0.0);
    for (double& v : y_star) v = val(rng);
    for (int j = 0; j < m; ++j)
      for (int r = 0; r < m; ++r) c[j] += dense[r][j] * y_star[r];
    std::vector<double> y = c;
    lu.btran(y);
    for (int r = 0; r < m; ++r)
      EXPECT_NEAR(y[r], y_star[r], 1e-7) << "btran trial " << trial;
  }
}

// Shared driver for the Forrest-Tomlin corpus: factorize a random basis,
// replace random columns via ftran_spike + update, and after every step
// check FTRAN/BTRAN against a fresh factorization of the updated column set.
void run_ft_trials(std::mt19937& rng, int trials, int max_m, int updates) {
  std::uniform_real_distribution<double> val(-3.0, 3.0);
  auto random_column = [&](int m, int diag) {
    std::vector<int> rows;
    std::vector<double> vals;
    for (int r = 0; r < m; ++r) {
      if (rng() % 3 != 0) continue;
      rows.push_back(r);
      vals.push_back(val(rng));
    }
    bool has_diag = false;
    for (size_t k = 0; k < rows.size(); ++k)
      if (rows[k] == diag) {
        vals[k] += 5.0;
        has_diag = true;
      }
    if (!has_diag) {
      rows.push_back(diag);
      vals.push_back(5.0 + val(rng));
    }
    return std::make_pair(std::move(rows), std::move(vals));
  };
  for (int trial = 0; trial < trials; ++trial) {
    const int m = 2 + static_cast<int>(rng() % (max_m - 1));
    ColumnSet cs;
    for (int j = 0; j < m; ++j) {
      auto [rows, vals] = random_column(m, j);
      cs.add(std::move(rows), std::move(vals));
    }
    LuFactorization lu;
    ASSERT_TRUE(lu.factorize(m, cs.view())) << "trial " << trial;

    int applied = 0;
    for (int step = 0; step < updates; ++step) {
      const int pos = static_cast<int>(rng() % m);
      auto [rows, vals] = random_column(m, pos);

      // Candidate column through the partial solve; update consumes the
      // stashed spike. An unstable rejection leaves the factors usable.
      std::vector<double> w(m, 0.0);
      for (size_t k = 0; k < rows.size(); ++k) w[rows[k]] = vals[k];
      lu.ftran_spike(w);
      if (!lu.update(pos)) continue;
      ++applied;
      cs.rows[pos] = rows;
      cs.vals[pos] = vals;

      // Reference: a fresh factorization of the same updated column set.
      LuFactorization fresh;
      ASSERT_TRUE(fresh.factorize(m, cs.view()))
          << "trial " << trial << " step " << step;

      std::vector<double> b(m), x1(m), x2(m);
      for (double& v : b) v = val(rng);
      x1 = b;
      x2 = b;
      lu.ftran(x1);
      fresh.ftran(x2);
      for (int j = 0; j < m; ++j)
        EXPECT_NEAR(x1[j], x2[j], 1e-7)
            << "ftran trial " << trial << " step " << step;

      std::vector<double> c(m), y1(m), y2(m);
      for (double& v : c) v = val(rng);
      y1 = c;
      y2 = c;
      lu.btran(y1);
      fresh.btran(y2);
      for (int r = 0; r < m; ++r)
        EXPECT_NEAR(y1[r], y2[r], 1e-7)
            << "btran trial " << trial << " step " << step;

      // ftran_spike + ftran_finish must compose to exactly ftran (the
      // engine relies on this to reuse the entering column's solve).
      std::vector<double> x3 = b;
      lu.ftran_spike(x3);
      lu.ftran_finish(x3);
      for (int j = 0; j < m; ++j)
        EXPECT_NEAR(x3[j], x1[j], 1e-12)
            << "spike/finish trial " << trial << " step " << step;
    }
    EXPECT_EQ(lu.updates(), applied);
  }
}

TEST(LuFactorization, ForrestTomlinRandomReplacements) {
  std::mt19937 rng(7);
  run_ft_trials(rng, 20, 10, 12);
}

TEST(LuFactorization, ForrestTomlinLongSequences) {
  // More updates than dimensions: every slot gets respiked repeatedly, so
  // the logical order churns and the eta list grows past m.
  std::mt19937 rng(11);
  run_ft_trials(rng, 8, 6, 24);
}

TEST(LuFactorization, ForrestTomlinUnstableUpdateRejected) {
  // Replacing column 1 of the identity with a column that has a zero in the
  // pivot position and no way to eliminate it must be rejected, and the
  // factors must remain the (unchanged) identity.
  ColumnSet cs;
  for (int j = 0; j < 3; ++j) cs.add({j}, {1.0});
  LuFactorization lu;
  ASSERT_TRUE(lu.factorize(3, cs.view()));
  std::vector<double> w{1.0, 0.0, 0.0};  // new column 1 == old column 0
  lu.ftran_spike(w);
  EXPECT_FALSE(lu.update(1));
  EXPECT_EQ(lu.updates(), 0);
  std::vector<double> x{2.0, 3.0, 4.0};
  lu.ftran(x);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuFactorization, UpdateWithoutSpikeIsRejected) {
  ColumnSet cs;
  for (int j = 0; j < 2; ++j) cs.add({j}, {1.0});
  LuFactorization lu;
  ASSERT_TRUE(lu.factorize(2, cs.view()));
  EXPECT_FALSE(lu.update(0));  // no pending spike
  std::vector<double> w{0.5, 0.25};
  lu.ftran_spike(w);
  EXPECT_TRUE(lu.update(0));
  EXPECT_FALSE(lu.update(0));  // spike already consumed
}

TEST(LuFactorization, RefactorizeDiscardsUpdates) {
  std::mt19937 rng(13);
  std::uniform_real_distribution<double> val(-3.0, 3.0);
  ColumnSet cs;
  for (int j = 0; j < 4; ++j) cs.add({j}, {2.0});
  LuFactorization lu;
  ASSERT_TRUE(lu.factorize(4, cs.view()));
  std::vector<double> w{1.0, 1.0, 1.0, 1.0};
  lu.ftran_spike(w);
  ASSERT_TRUE(lu.update(2));
  EXPECT_EQ(lu.updates(), 1);
  ASSERT_TRUE(lu.factorize(4, cs.view()));
  EXPECT_EQ(lu.updates(), 0);
  std::vector<double> x{2.0, 4.0, 6.0, 8.0};
  lu.ftran(x);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(LuFactorization, LargeSparseSystem) {
  // Tridiagonal-ish system of size 500: verifies scalability and fill
  // handling.
  const int m = 500;
  ColumnSet cs;
  for (int j = 0; j < m; ++j) {
    std::vector<int> rows{j};
    std::vector<double> vals{4.0};
    if (j > 0) {
      rows.push_back(j - 1);
      vals.push_back(-1.0);
    }
    if (j + 1 < m) {
      rows.push_back(j + 1);
      vals.push_back(-1.0);
    }
    cs.add(std::move(rows), std::move(vals));
  }
  LuFactorization lu;
  ASSERT_TRUE(lu.factorize(m, cs.view()));
  std::vector<double> ones(m, 1.0);
  std::vector<double> x = ones;
  lu.ftran(x);
  // Verify B x == 1 by residual.
  const auto dense_col = [&](int j) { return cs.vals[j]; };
  (void)dense_col;
  std::vector<double> residual(m, 0.0);
  for (int j = 0; j < m; ++j)
    for (size_t k = 0; k < cs.rows[j].size(); ++k)
      residual[cs.rows[j][k]] += cs.vals[j][k] * x[j];
  for (int r = 0; r < m; ++r) EXPECT_NEAR(residual[r], 1.0, 1e-8);
}

}  // namespace
}  // namespace checkmate::lp
