#include "milp/milp.h"

#include <gtest/gtest.h>

#include "core/ilp_builder.h"
#include "core/remat_problem.h"

#include <chrono>
#include <cmath>
#include <optional>
#include <random>

namespace checkmate::milp {
namespace {

using lp::kInf;
using lp::LinearProgram;

std::vector<std::pair<int, double>> terms(
    std::initializer_list<std::pair<int, double>> t) {
  return t;
}

// Every MILP-solving test passes an explicit wall-clock limit so a solver
// regression surfaces as a status assertion, never as a wedged test runner.
MilpOptions bounded(double time_limit_sec = 30.0) {
  MilpOptions opts;
  opts.time_limit_sec = time_limit_sec;
  return opts;
}

TEST(Milp, PureLpPassThrough) {
  LinearProgram lp;
  int x = lp.add_var(0, 4, -1.0);  // continuous
  lp.add_le(terms({{x, 1.0}}), 2.5);
  auto res = solve_milp(lp, bounded());
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -2.5, 1e-7);
}

TEST(Milp, SingleIntegerRoundsDown) {
  // max x, x integer, x <= 2.5 => 2.
  LinearProgram lp;
  int x = lp.add_var(0, 10, -1.0, /*integer=*/true);
  lp.add_le(terms({{x, 1.0}}), 2.5);
  auto res = solve_milp(lp, bounded());
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -2.0, 1e-7);
  EXPECT_NEAR(res.x[x], 2.0, 1e-6);
}

TEST(Milp, Knapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary). Optimum: a+b = 16.
  LinearProgram lp;
  int a = lp.add_binary(-10.0);
  int b = lp.add_binary(-6.0);
  int c = lp.add_binary(-4.0);
  lp.add_le(terms({{a, 1.0}, {b, 1.0}, {c, 1.0}}), 2.0);
  auto res = solve_milp(lp, bounded());
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -16.0, 1e-6);
}

TEST(Milp, WeightedKnapsack) {
  // Weights {6,5,4}, values {10,9,9}, capacity 10. The LP relaxation is
  // fractional (fills the leftover capacity with 1/6 of item a: -19.67);
  // optimum is items a+c = -19.
  LinearProgram lp;
  int a = lp.add_binary(-10.0);
  int b = lp.add_binary(-9.0);
  int c = lp.add_binary(-9.0);
  lp.add_le(terms({{a, 6.0}, {b, 5.0}, {c, 4.0}}), 10.0);
  auto res = solve_milp(lp, bounded());
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -19.0, 1e-6);
  // Gomory root cuts can close the gap entirely, so the reported root
  // bound is <= the optimum; the PURE relaxation stays strictly better.
  EXPECT_LE(res.root_relaxation, -19.0 + 1e-6);
  auto opts = bounded();
  opts.cut_separation = false;
  auto pure = solve_milp(lp, opts);
  ASSERT_EQ(pure.status, MilpStatus::kOptimal);
  EXPECT_LT(pure.root_relaxation, -19.0);  // relaxation strictly better
}

TEST(Milp, InfeasibleIntegrality) {
  // 0.4 <= x <= 0.6 with x integer: infeasible.
  LinearProgram lp;
  int x = lp.add_var(0, 1, 1.0, /*integer=*/true);
  lp.add_constraint(terms({{x, 1.0}}), 0.4, 0.6);
  auto res = solve_milp(lp, bounded());
  EXPECT_EQ(res.status, MilpStatus::kInfeasible);
  EXPECT_FALSE(res.has_solution());
}

TEST(Milp, EqualityWithIntegers) {
  // x + y == 3, x,y binary-ish integers in [0,2]: solutions exist; minimize
  // 2x + y => x=1,y=2 cost 4.
  LinearProgram lp;
  int x = lp.add_var(0, 2, 2.0, true);
  int y = lp.add_var(0, 2, 1.0, true);
  lp.add_eq(terms({{x, 1.0}, {y, 1.0}}), 3.0);
  auto res = solve_milp(lp, bounded());
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 4.0, 1e-6);
}

TEST(Milp, MixedIntegerContinuous) {
  // min -y - 0.5 x, y integer <= 3.7 - x/2, x in [0,1] continuous.
  LinearProgram lp;
  int x = lp.add_var(0, 1, -0.5, false);
  int y = lp.add_var(0, 10, -1.0, true);
  lp.add_le(terms({{x, 0.5}, {y, 1.0}}), 3.7);
  auto res = solve_milp(lp, bounded());
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  // y=3, x=1 => obj -3.5.
  EXPECT_NEAR(res.objective, -3.5, 1e-6);
}

TEST(Milp, StopAtFirstIncumbent) {
  LinearProgram lp;
  for (int i = 0; i < 8; ++i) lp.add_binary(-1.0 - 0.1 * i);
  std::vector<std::pair<int, double>> all;
  for (int i = 0; i < 8; ++i) all.emplace_back(i, 1.0);
  lp.add_le(all, 4.0);
  MilpOptions opts = bounded();
  opts.stop_at_first_incumbent = true;
  auto res = solve_milp(lp, opts);
  EXPECT_TRUE(res.has_solution());
  EXPECT_EQ(res.status, MilpStatus::kFeasible);
}

TEST(Milp, IncumbentHeuristicAccepted) {
  // The heuristic immediately supplies the optimum; search should accept it
  // and prune everything. (The root relaxation must be fractional or the
  // heuristic is never needed -- same instance as WeightedKnapsack.)
  LinearProgram lp;
  int a = lp.add_binary(-10.0);
  int b = lp.add_binary(-9.0);
  int c = lp.add_binary(-9.0);
  lp.add_le(terms({{a, 6.0}, {b, 5.0}, {c, 4.0}}), 10.0);
  bool called = false;
  auto heuristic = [&](const std::vector<double>&)
      -> std::optional<std::vector<double>> {
    called = true;
    return std::vector<double>{1.0, 0.0, 1.0};
  };
  auto res = solve_milp(lp, bounded(), heuristic);
  EXPECT_TRUE(called);
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -19.0, 1e-6);
}

TEST(Milp, InvalidHeuristicCandidateRejected) {
  LinearProgram lp;
  int a = lp.add_binary(-1.0);
  lp.add_le(terms({{a, 1.0}}), 1.0);
  auto heuristic = [&](const std::vector<double>&)
      -> std::optional<std::vector<double>> {
    return std::vector<double>{7.0};  // violates binary bound
  };
  auto res = solve_milp(lp, bounded(), heuristic);
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -1.0, 1e-6);
}

TEST(Milp, BranchPriorityRespectedForCorrectness) {
  // Priorities must not change the optimum, only the search order.
  LinearProgram lp;
  int a = lp.add_binary(-3.0);
  int b = lp.add_binary(-2.0);
  int c = lp.add_binary(-1.0);
  lp.add_le(terms({{a, 2.0}, {b, 2.0}, {c, 2.0}}), 3.0);
  MilpOptions opts = bounded();
  opts.branch_priority = {0, 5, 1};
  auto res = solve_milp(lp, opts);
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -3.0, 1e-6);
}

// Brute-force cross-validation on random binary programs.
TEST(Milp, MatchesBruteForceOnRandomBinaryPrograms) {
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> coef(-3.0, 3.0);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 6);  // up to 7 binaries
    const int m = 1 + static_cast<int>(rng() % 4);
    LinearProgram lp;
    for (int j = 0; j < n; ++j) lp.add_binary(coef(rng));
    std::vector<std::vector<double>> rows(m, std::vector<double>(n, 0.0));
    std::vector<double> rhs(m);
    for (int r = 0; r < m; ++r) {
      std::vector<std::pair<int, double>> t;
      for (int j = 0; j < n; ++j)
        if (rng() % 2) {
          rows[r][j] = coef(rng);
          t.emplace_back(j, rows[r][j]);
        }
      rhs[r] = coef(rng);
      lp.add_le(t, rhs[r]);
    }
    // Brute force over 2^n assignments.
    double best = lp::kInf;
    for (int mask = 0; mask < (1 << n); ++mask) {
      double obj = 0.0;
      bool ok = true;
      for (int r = 0; r < m && ok; ++r) {
        double act = 0.0;
        for (int j = 0; j < n; ++j)
          if (mask & (1 << j)) act += rows[r][j];
        if (act > rhs[r] + 1e-9) ok = false;
      }
      if (!ok) continue;
      for (int j = 0; j < n; ++j)
        if (mask & (1 << j)) obj += lp.obj[j];
      best = std::min(best, obj);
    }
    auto res = solve_milp(lp, bounded());
    if (best == lp::kInf) {
      EXPECT_EQ(res.status, MilpStatus::kInfeasible) << "trial " << trial;
    } else {
      ASSERT_EQ(res.status, MilpStatus::kOptimal) << "trial " << trial;
      EXPECT_NEAR(res.objective, best, 1e-5) << "trial " << trial;
    }
  }
}

TEST(Milp, RootReducedCostFixingFiresAndKeepsOptimum) {
  // Six binaries, pick at least three: the root LP is integral (three
  // cheapest at 1), so the incumbent lands immediately and every expensive
  // column's reduced cost exceeds the remaining gap -- those variables
  // must be permanently fixed to zero, and the optimum must be untouched.
  LinearProgram lp;
  for (int j = 0; j < 6; ++j) lp.add_binary(1.0 + j);
  lp.add_ge(terms({{0, 1.0},
                   {1, 1.0},
                   {2, 1.0},
                   {3, 1.0},
                   {4, 1.0},
                   {5, 1.0}}),
            3.0);
  MilpOptions opts = bounded();
  opts.presolve = false;  // keep the root LP nontrivial for the fixing
  auto res = solve_milp(lp, opts);
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 1.0 + 2.0 + 3.0, 1e-6);
  EXPECT_GT(res.root_fixings, 0);

  opts.root_reduced_cost_fixing = false;
  auto off = solve_milp(lp, opts);
  ASSERT_EQ(off.status, MilpStatus::kOptimal);
  EXPECT_NEAR(off.objective, res.objective, 1e-9);
  EXPECT_EQ(off.root_fixings, 0);
}

TEST(Milp, RootReducedCostFixingMatchesBruteForceOnCorpus) {
  // The fixing must never cut off the optimum: random binary programs
  // solved with fixing on (tight gap, so the fixing threshold is as
  // aggressive as it gets) against brute force.
  std::mt19937 rng(91);
  std::uniform_real_distribution<double> coef(-3.0, 3.0);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 3 + static_cast<int>(rng() % 5);
    const int m = 1 + static_cast<int>(rng() % 3);
    LinearProgram lp;
    for (int j = 0; j < n; ++j) lp.add_binary(coef(rng));
    std::vector<std::vector<double>> rows(m, std::vector<double>(n, 0.0));
    std::vector<double> rhs(m);
    for (int r = 0; r < m; ++r) {
      std::vector<std::pair<int, double>> t;
      for (int j = 0; j < n; ++j)
        if (rng() % 2) {
          rows[r][j] = coef(rng);
          t.emplace_back(j, rows[r][j]);
        }
      rhs[r] = coef(rng);
      lp.add_le(t, rhs[r]);
    }
    double best = lp::kInf;
    for (int mask = 0; mask < (1 << n); ++mask) {
      double obj = 0.0;
      bool ok = true;
      for (int r = 0; r < m && ok; ++r) {
        double act = 0.0;
        for (int j = 0; j < n; ++j)
          if (mask & (1 << j)) act += rows[r][j];
        if (act > rhs[r] + 1e-9) ok = false;
      }
      if (!ok) continue;
      for (int j = 0; j < n; ++j)
        if (mask & (1 << j)) obj += lp.obj[j];
      best = std::min(best, obj);
    }
    auto res = solve_milp(lp, bounded());
    if (best == lp::kInf) {
      EXPECT_EQ(res.status, MilpStatus::kInfeasible) << "trial " << trial;
    } else {
      ASSERT_EQ(res.status, MilpStatus::kOptimal) << "trial " << trial;
      EXPECT_NEAR(res.objective, best, 1e-5) << "trial " << trial;
    }
  }
}

TEST(Milp, NodeLimitReturnsFeasibleOrNoSolution) {
  LinearProgram lp;
  std::mt19937 rng(5);
  const int n = 14;
  for (int j = 0; j < n; ++j) lp.add_binary(-1.0 - 0.01 * (rng() % 50));
  std::vector<std::pair<int, double>> t;
  for (int j = 0; j < n; ++j) t.emplace_back(j, 1.0 + (rng() % 3));
  lp.add_le(t, 9.5);
  MilpOptions opts = bounded();
  opts.max_nodes = 3;
  auto res = solve_milp(lp, opts);
  EXPECT_TRUE(res.status == MilpStatus::kFeasible ||
              res.status == MilpStatus::kNoSolution);
  // Bound must be sound: no better than the root relaxation.
  EXPECT_GE(res.best_bound, res.root_relaxation - 1e-6);
}

// ---------------------------------------------------------------------
// Solver-overhaul machinery: pseudocost branching, node selection modes,
// warm starts, and the deterministic/wall-clock limit semantics.

// A family of random binary programs that is non-trivial for branch &
// bound (fractional relaxations, several constraints).
LinearProgram random_binary_program(uint32_t seed, int n, int m) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> coef(0.5, 3.0);
  LinearProgram lp;
  for (int j = 0; j < n; ++j) lp.add_binary(-coef(rng));
  for (int r = 0; r < m; ++r) {
    std::vector<std::pair<int, double>> t;
    double total = 0.0;
    for (int j = 0; j < n; ++j) {
      const double w = coef(rng);
      t.emplace_back(j, w);
      total += w;
    }
    lp.add_le(t, 0.47 * total);  // roughly half the items fit
  }
  return lp;
}

TEST(Milp, PseudocostBranchingPreservesOptimumWithBoundedNodes) {
  // Regression for the branching overhaul: pseudocosts must return the
  // exact optimum of the most-fractional rule, and the tree must stay far
  // below enumeration scale (2^16 assignments here).
  for (uint32_t seed : {11u, 17u, 23u, 31u, 47u}) {
    LinearProgram lp = random_binary_program(seed, 16, 3);
    MilpOptions pc = bounded(), frac = bounded();
    pc.pseudocost_branching = true;
    frac.pseudocost_branching = false;
    auto res_pc = solve_milp(lp, pc);
    auto res_frac = solve_milp(lp, frac);
    ASSERT_EQ(res_pc.status, MilpStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(res_frac.status, MilpStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(res_pc.objective, res_frac.objective, 1e-6)
        << "seed " << seed;
    EXPECT_LE(res_pc.nodes, 1 << 12) << "seed " << seed;
  }
}

TEST(Milp, PseudocostBranchingShrinksTreeOnRematInstance) {
  // On the structured Checkmate instances (the workload the default is
  // tuned for) pseudocosts must explore no more nodes than the
  // most-fractional rule did, at an identical optimum.
  auto p = RematProblem::unit_training_chain(6);  // n = 13
  IlpBuildOptions build;
  build.budget_bytes = 5.0;  // tight budget: forces real search
  IlpFormulation f(p, build);
  MilpOptions pc = bounded(), frac = bounded();
  pc.branch_priority = frac.branch_priority = f.branch_priorities();
  // Hybrid node selection is what the Scheduler ships; pseudocosts and the
  // best-bound restarts are tuned together.
  pc.node_selection = frac.node_selection = NodeSelection::kHybrid;
  pc.pseudocost_branching = true;
  frac.pseudocost_branching = false;
  auto res_pc = solve_milp(f.lp(), pc);
  auto res_frac = solve_milp(f.lp(), frac);
  ASSERT_EQ(res_pc.status, MilpStatus::kOptimal);
  ASSERT_EQ(res_frac.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res_pc.objective, res_frac.objective, 1e-6);
  EXPECT_LE(res_pc.nodes, res_frac.nodes);
}

TEST(Milp, NodeSelectionModesAgreeOnOptimum) {
  for (uint32_t seed : {3u, 9u, 27u}) {
    LinearProgram lp = random_binary_program(seed, 14, 2);
    std::optional<double> reference;
    for (auto mode : {NodeSelection::kDepthFirst, NodeSelection::kBestBound,
                      NodeSelection::kHybrid}) {
      MilpOptions opts = bounded();
      opts.node_selection = mode;
      auto res = solve_milp(lp, opts);
      ASSERT_EQ(res.status, MilpStatus::kOptimal)
          << to_string(mode) << " seed " << seed;
      if (!reference)
        reference = res.objective;
      else
        EXPECT_NEAR(res.objective, *reference, 1e-6)
            << to_string(mode) << " seed " << seed;
    }
  }
}

TEST(Milp, WarmStartIncumbentPrunesFromNodeOne) {
  // Same instance as WeightedKnapsack; the optimum is a+c = -19 and the
  // root relaxation is fractional (-19.67).
  LinearProgram lp;
  int a = lp.add_binary(-10.0);
  int b = lp.add_binary(-9.0);
  int c = lp.add_binary(-9.0);
  lp.add_le(terms({{a, 6.0}, {b, 5.0}, {c, 4.0}}), 10.0);

  // With a node budget of 1 the incumbent can only come from the warm
  // start: it must be validated and reported even though the search never
  // reached an integral leaf.
  MilpOptions opts = bounded();
  opts.initial_solutions = {{1.0, 0.0, 1.0}};
  opts.max_nodes = 1;
  auto res = solve_milp(lp, opts);
  ASSERT_TRUE(res.has_solution());
  EXPECT_NEAR(res.objective, -19.0, 1e-9);

  // A full run seeded with the optimum needs only bound pruning: the tree
  // collapses to a handful of nodes.
  MilpOptions full = bounded();
  full.initial_solutions = {{1.0, 0.0, 1.0}};
  auto res_full = solve_milp(lp, full);
  ASSERT_EQ(res_full.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res_full.objective, -19.0, 1e-9);
  EXPECT_LE(res_full.nodes, 8);

  // An infeasible warm start must be rejected, not blindly trusted.
  MilpOptions bad = bounded();
  bad.initial_solutions = {{1.0, 1.0, 1.0}};  // weight 15 > 10
  auto res_bad = solve_milp(lp, bad);
  ASSERT_EQ(res_bad.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res_bad.objective, -19.0, 1e-6);
}

TEST(Milp, KnownLowerBoundTerminatesWithoutProof) {
  // Same knapsack; optimum -19. A caller-guaranteed lower bound plus a
  // matching warm start must terminate the search before the first node.
  LinearProgram lp;
  int a = lp.add_binary(-10.0);
  (void)lp.add_binary(-9.0);
  int c = lp.add_binary(-9.0);
  lp.add_le(terms({{a, 6.0}, {1, 5.0}, {c, 4.0}}), 10.0);

  MilpOptions opts = bounded();
  opts.initial_solutions = {{1.0, 0.0, 1.0}};
  opts.known_lower_bound = -19.0;
  auto res = solve_milp(lp, opts);
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -19.0, 1e-9);
  EXPECT_EQ(res.nodes, 0);
  // The reported bound is the external certificate, not the incumbent.
  EXPECT_NEAR(res.best_bound, -19.0, 1e-9);

  // A conservative (far-too-low) bound must not trigger the shortcut or
  // change the answer.
  MilpOptions loose = bounded();
  loose.known_lower_bound = -1000.0;
  auto res_loose = solve_milp(lp, loose);
  ASSERT_EQ(res_loose.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res_loose.objective, -19.0, 1e-6);
  EXPECT_GT(res_loose.nodes, 0);
}

TEST(Milp, TimeLimitHonoredWithoutHalfSecondFloor) {
  // Regression for the per-node simplex floor: the old code granted every
  // node LP at least 0.5 s even when the global budget was exhausted, so a
  // tiny time limit could overshoot by an order of magnitude.
  LinearProgram lp = random_binary_program(99u, 140, 12);
  MilpOptions opts = bounded();
  opts.time_limit_sec = 0.05;
  const auto start = std::chrono::steady_clock::now();
  auto res = solve_milp(lp, opts);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(secs, 0.45);
  // Truncated run: never claims optimality it did not prove.
  EXPECT_NE(res.status, MilpStatus::kOptimal);
}

TEST(Milp, DeterministicLpIterationLimitIsReproducible) {
  LinearProgram lp = random_binary_program(7u, 30, 4);
  MilpOptions opts = bounded();
  opts.max_lp_iterations = 200;
  auto r1 = solve_milp(lp, opts);
  auto r2 = solve_milp(lp, opts);
  // The limit truncates the run (this instance needs far more iterations)...
  EXPECT_NE(r1.status, MilpStatus::kOptimal);
  // ...and two runs with the same limit do identical work.
  EXPECT_EQ(r1.nodes, r2.nodes);
  EXPECT_EQ(r1.lp_iterations, r2.lp_iterations);
  EXPECT_EQ(r1.objective, r2.objective);
}

TEST(Milp, PresolveStatsReportedThroughResult) {
  LinearProgram lp;
  int x = lp.add_binary(-1.0);
  int y = lp.add_binary(-1.0);
  lp.add_le(terms({{x, 1.0}}), 0.0);              // fixes x = 0
  lp.add_le(terms({{x, 1.0}, {y, 1.0}}), 5.0);    // redundant
  auto res = solve_milp(lp, bounded());
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -1.0, 1e-9);
  EXPECT_GE(res.presolve.vars_fixed, 1);
  EXPECT_GE(res.presolve.rows_removed, 2);
}

}  // namespace
}  // namespace checkmate::milp
