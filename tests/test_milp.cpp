#include "milp/milp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace checkmate::milp {
namespace {

using lp::kInf;
using lp::LinearProgram;

std::vector<std::pair<int, double>> terms(
    std::initializer_list<std::pair<int, double>> t) {
  return t;
}

TEST(Milp, PureLpPassThrough) {
  LinearProgram lp;
  int x = lp.add_var(0, 4, -1.0);  // continuous
  lp.add_le(terms({{x, 1.0}}), 2.5);
  auto res = solve_milp(lp);
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -2.5, 1e-7);
}

TEST(Milp, SingleIntegerRoundsDown) {
  // max x, x integer, x <= 2.5 => 2.
  LinearProgram lp;
  int x = lp.add_var(0, 10, -1.0, /*integer=*/true);
  lp.add_le(terms({{x, 1.0}}), 2.5);
  auto res = solve_milp(lp);
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -2.0, 1e-7);
  EXPECT_NEAR(res.x[x], 2.0, 1e-6);
}

TEST(Milp, Knapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary). Optimum: a+b = 16.
  LinearProgram lp;
  int a = lp.add_binary(-10.0);
  int b = lp.add_binary(-6.0);
  int c = lp.add_binary(-4.0);
  lp.add_le(terms({{a, 1.0}, {b, 1.0}, {c, 1.0}}), 2.0);
  auto res = solve_milp(lp);
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -16.0, 1e-6);
}

TEST(Milp, WeightedKnapsack) {
  // Weights {6,5,4}, values {10,9,9}, capacity 10. The LP relaxation is
  // fractional (fills the leftover capacity with 1/6 of item a: -19.67);
  // optimum is items a+c = -19.
  LinearProgram lp;
  int a = lp.add_binary(-10.0);
  int b = lp.add_binary(-9.0);
  int c = lp.add_binary(-9.0);
  lp.add_le(terms({{a, 6.0}, {b, 5.0}, {c, 4.0}}), 10.0);
  auto res = solve_milp(lp);
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -19.0, 1e-6);
  EXPECT_LT(res.root_relaxation, -19.0);  // relaxation strictly better
}

TEST(Milp, InfeasibleIntegrality) {
  // 0.4 <= x <= 0.6 with x integer: infeasible.
  LinearProgram lp;
  int x = lp.add_var(0, 1, 1.0, /*integer=*/true);
  lp.add_constraint(terms({{x, 1.0}}), 0.4, 0.6);
  auto res = solve_milp(lp);
  EXPECT_EQ(res.status, MilpStatus::kInfeasible);
  EXPECT_FALSE(res.has_solution());
}

TEST(Milp, EqualityWithIntegers) {
  // x + y == 3, x,y binary-ish integers in [0,2]: solutions exist; minimize
  // 2x + y => x=1,y=2 cost 4.
  LinearProgram lp;
  int x = lp.add_var(0, 2, 2.0, true);
  int y = lp.add_var(0, 2, 1.0, true);
  lp.add_eq(terms({{x, 1.0}, {y, 1.0}}), 3.0);
  auto res = solve_milp(lp);
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 4.0, 1e-6);
}

TEST(Milp, MixedIntegerContinuous) {
  // min -y - 0.5 x, y integer <= 3.7 - x/2, x in [0,1] continuous.
  LinearProgram lp;
  int x = lp.add_var(0, 1, -0.5, false);
  int y = lp.add_var(0, 10, -1.0, true);
  lp.add_le(terms({{x, 0.5}, {y, 1.0}}), 3.7);
  auto res = solve_milp(lp);
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  // y=3, x=1 => obj -3.5.
  EXPECT_NEAR(res.objective, -3.5, 1e-6);
}

TEST(Milp, StopAtFirstIncumbent) {
  LinearProgram lp;
  for (int i = 0; i < 8; ++i) lp.add_binary(-1.0 - 0.1 * i);
  std::vector<std::pair<int, double>> all;
  for (int i = 0; i < 8; ++i) all.emplace_back(i, 1.0);
  lp.add_le(all, 4.0);
  MilpOptions opts;
  opts.stop_at_first_incumbent = true;
  auto res = solve_milp(lp, opts);
  EXPECT_TRUE(res.has_solution());
  EXPECT_EQ(res.status, MilpStatus::kFeasible);
}

TEST(Milp, IncumbentHeuristicAccepted) {
  // The heuristic immediately supplies the optimum; search should accept it
  // and prune everything. (The root relaxation must be fractional or the
  // heuristic is never needed -- same instance as WeightedKnapsack.)
  LinearProgram lp;
  int a = lp.add_binary(-10.0);
  int b = lp.add_binary(-9.0);
  int c = lp.add_binary(-9.0);
  lp.add_le(terms({{a, 6.0}, {b, 5.0}, {c, 4.0}}), 10.0);
  bool called = false;
  auto heuristic = [&](const std::vector<double>&)
      -> std::optional<std::vector<double>> {
    called = true;
    return std::vector<double>{1.0, 0.0, 1.0};
  };
  auto res = solve_milp(lp, {}, heuristic);
  EXPECT_TRUE(called);
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -19.0, 1e-6);
}

TEST(Milp, InvalidHeuristicCandidateRejected) {
  LinearProgram lp;
  int a = lp.add_binary(-1.0);
  lp.add_le(terms({{a, 1.0}}), 1.0);
  auto heuristic = [&](const std::vector<double>&)
      -> std::optional<std::vector<double>> {
    return std::vector<double>{7.0};  // violates binary bound
  };
  auto res = solve_milp(lp, {}, heuristic);
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -1.0, 1e-6);
}

TEST(Milp, BranchPriorityRespectedForCorrectness) {
  // Priorities must not change the optimum, only the search order.
  LinearProgram lp;
  int a = lp.add_binary(-3.0);
  int b = lp.add_binary(-2.0);
  int c = lp.add_binary(-1.0);
  lp.add_le(terms({{a, 2.0}, {b, 2.0}, {c, 2.0}}), 3.0);
  MilpOptions opts;
  opts.branch_priority = {0, 5, 1};
  auto res = solve_milp(lp, opts);
  ASSERT_EQ(res.status, MilpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -3.0, 1e-6);
}

// Brute-force cross-validation on random binary programs.
TEST(Milp, MatchesBruteForceOnRandomBinaryPrograms) {
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> coef(-3.0, 3.0);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 6);  // up to 7 binaries
    const int m = 1 + static_cast<int>(rng() % 4);
    LinearProgram lp;
    for (int j = 0; j < n; ++j) lp.add_binary(coef(rng));
    std::vector<std::vector<double>> rows(m, std::vector<double>(n, 0.0));
    std::vector<double> rhs(m);
    for (int r = 0; r < m; ++r) {
      std::vector<std::pair<int, double>> t;
      for (int j = 0; j < n; ++j)
        if (rng() % 2) {
          rows[r][j] = coef(rng);
          t.emplace_back(j, rows[r][j]);
        }
      rhs[r] = coef(rng);
      lp.add_le(t, rhs[r]);
    }
    // Brute force over 2^n assignments.
    double best = lp::kInf;
    for (int mask = 0; mask < (1 << n); ++mask) {
      double obj = 0.0;
      bool ok = true;
      for (int r = 0; r < m && ok; ++r) {
        double act = 0.0;
        for (int j = 0; j < n; ++j)
          if (mask & (1 << j)) act += rows[r][j];
        if (act > rhs[r] + 1e-9) ok = false;
      }
      if (!ok) continue;
      for (int j = 0; j < n; ++j)
        if (mask & (1 << j)) obj += lp.obj[j];
      best = std::min(best, obj);
    }
    auto res = solve_milp(lp);
    if (best == lp::kInf) {
      EXPECT_EQ(res.status, MilpStatus::kInfeasible) << "trial " << trial;
    } else {
      ASSERT_EQ(res.status, MilpStatus::kOptimal) << "trial " << trial;
      EXPECT_NEAR(res.objective, best, 1e-5) << "trial " << trial;
    }
  }
}

TEST(Milp, NodeLimitReturnsFeasibleOrNoSolution) {
  LinearProgram lp;
  std::mt19937 rng(5);
  const int n = 14;
  for (int j = 0; j < n; ++j) lp.add_binary(-1.0 - 0.01 * (rng() % 50));
  std::vector<std::pair<int, double>> t;
  for (int j = 0; j < n; ++j) t.emplace_back(j, 1.0 + (rng() % 3));
  lp.add_le(t, 9.5);
  MilpOptions opts;
  opts.max_nodes = 3;
  auto res = solve_milp(lp, opts);
  EXPECT_TRUE(res.status == MilpStatus::kFeasible ||
              res.status == MilpStatus::kNoSolution);
  // Bound must be sound: no better than the root relaxation.
  EXPECT_GE(res.best_bound, res.root_relaxation - 1e-6);
}

}  // namespace
}  // namespace checkmate::milp
