// Determinism contract of the epoch-lockstep parallel branch & bound
// (milp/branch_and_bound.h): for ANY worker count the explored tree, node
// counts, incumbents, objectives and deterministic work-limit semantics are
// bit-identical -- num_threads is purely a wall-clock knob. This suite is
// also the ThreadSanitizer target of the CHECK_TIER=full CI stage
// (scripts/check.sh builds it with -DCHECKMATE_TSAN=ON), so it
// deliberately exercises multi-threaded epochs on every node-selection
// mode.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/ilp_builder.h"
#include "core/remat_problem.h"
#include "core/scheduler.h"
#include "milp/branch_and_bound.h"
#include "milp/milp.h"

namespace checkmate::milp {
namespace {

using lp::LinearProgram;

LinearProgram random_binary_program(uint32_t seed, int n, int m) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> coef(0.5, 3.0);
  LinearProgram lp;
  for (int j = 0; j < n; ++j) lp.add_binary(-coef(rng));
  for (int r = 0; r < m; ++r) {
    std::vector<std::pair<int, double>> t;
    double total = 0.0;
    for (int j = 0; j < n; ++j) {
      const double w = coef(rng);
      t.emplace_back(j, w);
      total += w;
    }
    lp.add_le(t, 0.47 * total);
  }
  return lp;
}

MilpOptions bounded(double time_limit_sec = 30.0) {
  MilpOptions opts;
  opts.time_limit_sec = time_limit_sec;
  return opts;
}

// The full bit-identity check between two runs of the same instance.
void expect_identical(const MilpResult& a, const MilpResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.status, b.status) << what;
  EXPECT_EQ(a.nodes, b.nodes) << what;
  EXPECT_EQ(a.lp_iterations, b.lp_iterations) << what;
  EXPECT_EQ(a.objective, b.objective) << what;  // bitwise, not NEAR
  EXPECT_EQ(a.best_bound, b.best_bound) << what;
  EXPECT_EQ(a.root_relaxation, b.root_relaxation) << what;
  ASSERT_EQ(a.x.size(), b.x.size()) << what;
  for (size_t j = 0; j < a.x.size(); ++j)
    EXPECT_EQ(a.x[j], b.x[j]) << what << " x[" << j << "]";
}

TEST(MilpParallel, WorkerCountInvariantOnRandomPrograms) {
  for (uint32_t seed : {11u, 23u, 47u}) {
    for (auto mode : {NodeSelection::kDepthFirst, NodeSelection::kBestBound,
                      NodeSelection::kHybrid}) {
      LinearProgram lp = random_binary_program(seed, 16, 3);
      std::optional<MilpResult> reference;
      for (int threads : {1, 2, 4}) {
        MilpOptions opts = bounded();
        opts.node_selection = mode;
        opts.num_threads = threads;
        auto res = solve_milp(lp, opts);
        ASSERT_EQ(res.status, MilpStatus::kOptimal)
            << to_string(mode) << " seed " << seed << " threads " << threads;
        if (!reference)
          reference = res;
        else
          expect_identical(*reference, res,
                           std::string(to_string(mode)) + " seed " +
                               std::to_string(seed) + " threads " +
                               std::to_string(threads));
      }
    }
  }
}

TEST(MilpParallel, WorkerCountInvariantOnRematInstance) {
  auto p = RematProblem::unit_training_chain(6);
  IlpBuildOptions build;
  build.budget_bytes = 5.0;  // tight budget: a real multi-epoch search
  IlpFormulation f(p, build);
  std::optional<MilpResult> reference;
  for (int threads : {1, 2, 4}) {
    MilpOptions opts = bounded();
    opts.branch_priority = f.branch_priorities();
    opts.node_selection = NodeSelection::kHybrid;
    opts.num_threads = threads;
    auto res = solve_milp(f.lp(), opts);
    ASSERT_EQ(res.status, MilpStatus::kOptimal) << "threads " << threads;
    if (!reference)
      reference = res;
    else
      expect_identical(*reference, res,
                       "remat threads " + std::to_string(threads));
  }
  EXPECT_GT(reference->nodes, 4);  // genuinely searched, not a root solve
}

TEST(MilpParallel, RootFixingAndSteepestEdgeInvariantAcrossWorkerCounts) {
  // PR 4 hot path under the bit-identity contract: steepest-edge weights
  // ride the basis snapshots between workers and root reduced-cost fixing
  // mutates the shared working LP at epoch barriers -- node counts,
  // iteration counts, objectives AND the number of fixings must be
  // identical for every worker count.
  auto p = RematProblem::unit_training_chain(6);
  IlpBuildOptions build;
  build.budget_bytes = 5.0;
  IlpFormulation f(p, build);
  std::optional<MilpResult> reference;
  for (int threads : {1, 2, 4}) {
    MilpOptions opts = bounded();
    opts.branch_priority = f.branch_priorities();
    opts.node_selection = NodeSelection::kHybrid;
    opts.root_reduced_cost_fixing = true;
    opts.simplex.steepest_edge_pricing = true;
    opts.simplex.bound_flip_ratio_test = true;
    opts.num_threads = threads;
    auto res = solve_milp(f.lp(), opts);
    ASSERT_EQ(res.status, MilpStatus::kOptimal) << "threads " << threads;
    if (!reference) {
      reference = res;
    } else {
      expect_identical(*reference, res,
                       "rcfix threads " + std::to_string(threads));
      EXPECT_EQ(reference->root_fixings, res.root_fixings)
          << "threads " << threads;
    }
  }
}

TEST(MilpParallel, DeterministicIterationLimitAcrossWorkerCounts) {
  // The deterministic work limit must truncate the SAME tree at the SAME
  // point for every worker count (the limit is projected from epoch-start
  // committed totals plus slot-local work only).
  LinearProgram lp = random_binary_program(7u, 30, 4);
  std::optional<MilpResult> reference;
  for (int threads : {1, 2, 4}) {
    MilpOptions opts = bounded();
    opts.max_lp_iterations = 200;
    opts.num_threads = threads;
    auto res = solve_milp(lp, opts);
    EXPECT_NE(res.status, MilpStatus::kOptimal) << "threads " << threads;
    if (!reference)
      reference = res;
    else
      expect_identical(*reference, res,
                       "iter-limit threads " + std::to_string(threads));
  }
}

TEST(MilpParallel, HeuristicAndSeedsInvariantAcrossWorkerCounts) {
  // Incumbent heuristics run on the coordinator at epoch commit and seeds
  // are offered before the search; neither may perturb the tree shape
  // across worker counts.
  LinearProgram lp = random_binary_program(31u, 14, 2);
  auto heuristic = [&](const std::vector<double>& x)
      -> std::optional<std::vector<double>> {
    std::vector<double> rounded(x.size());
    for (size_t j = 0; j < x.size(); ++j) rounded[j] = std::round(x[j]);
    return rounded;
  };
  std::optional<MilpResult> reference;
  for (int threads : {1, 2, 4}) {
    MilpOptions opts = bounded();
    opts.num_threads = threads;
    opts.initial_solutions = {std::vector<double>(14, 0.0)};
    auto res = solve_milp(lp, opts, heuristic);
    ASSERT_EQ(res.status, MilpStatus::kOptimal) << "threads " << threads;
    if (!reference)
      reference = res;
    else
      expect_identical(*reference, res,
                       "heuristic threads " + std::to_string(threads));
  }
}

TEST(MilpParallel, MatchesBruteForceWithFourWorkers) {
  // The parallel search must stay exact, not merely self-consistent.
  std::mt19937 rng(101);
  std::uniform_real_distribution<double> coef(-3.0, 3.0);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 3 + static_cast<int>(rng() % 5);
    const int m = 1 + static_cast<int>(rng() % 3);
    LinearProgram lp;
    std::vector<std::vector<double>> rows(m, std::vector<double>(n, 0.0));
    std::vector<double> rhs(m);
    for (int j = 0; j < n; ++j) lp.add_binary(coef(rng));
    for (int r = 0; r < m; ++r) {
      std::vector<std::pair<int, double>> t;
      for (int j = 0; j < n; ++j)
        if (rng() % 2) {
          rows[r][j] = coef(rng);
          t.emplace_back(j, rows[r][j]);
        }
      rhs[r] = coef(rng);
      lp.add_le(t, rhs[r]);
    }
    double best = lp::kInf;
    for (int mask = 0; mask < (1 << n); ++mask) {
      double obj = 0.0;
      bool ok = true;
      for (int r = 0; r < m && ok; ++r) {
        double act = 0.0;
        for (int j = 0; j < n; ++j)
          if (mask & (1 << j)) act += rows[r][j];
        if (act > rhs[r] + 1e-9) ok = false;
      }
      if (!ok) continue;
      for (int j = 0; j < n; ++j)
        if (mask & (1 << j)) obj += lp.obj[j];
      best = std::min(best, obj);
    }
    MilpOptions opts = bounded();
    opts.num_threads = 4;
    auto res = solve_milp(lp, opts);
    if (best == lp::kInf) {
      EXPECT_EQ(res.status, MilpStatus::kInfeasible) << "trial " << trial;
    } else {
      ASSERT_EQ(res.status, MilpStatus::kOptimal) << "trial " << trial;
      EXPECT_NEAR(res.objective, best, 1e-5) << "trial " << trial;
    }
  }
}

TEST(MilpParallel, EpochWidthChangesTreeButNeverTheOptimum) {
  // epoch_width IS part of the search semantics (unlike num_threads):
  // different widths may explore different trees but must agree on the
  // proven optimum.
  LinearProgram lp = random_binary_program(59u, 18, 3);
  std::optional<double> reference;
  for (int width : {1, 2, 4, 8}) {
    MilpOptions opts = bounded();
    opts.epoch_width = width;
    opts.num_threads = 2;
    auto res = solve_milp(lp, opts);
    ASSERT_EQ(res.status, MilpStatus::kOptimal) << "width " << width;
    if (!reference)
      reference = res.objective;
    else
      EXPECT_NEAR(res.objective, *reference, 1e-6) << "width " << width;
  }
}

TEST(MilpParallel, ResolveTreeThreadsAlwaysPositive) {
  MilpOptions opts;
  opts.num_threads = 0;  // auto: hardware count, but never 0
  EXPECT_GE(resolve_tree_threads(opts), 1);
  EXPECT_LE(resolve_tree_threads(opts), std::max(1, opts.epoch_width));
  opts.num_threads = 64;  // clamped to the epoch width
  EXPECT_EQ(resolve_tree_threads(opts), opts.epoch_width);
  opts.num_threads = -3;
  EXPECT_GE(resolve_tree_threads(opts), 1);
}

TEST(MilpParallel, SchedulerEndToEndInvariantAcrossWorkerCounts) {
  // Through the full Checkmate stack (formulation, baseline seeding,
  // rounding heuristic): identical schedule cost and node count for every
  // worker count.
  auto p = RematProblem::unit_training_chain(6);
  Scheduler sched(p);
  std::optional<ScheduleResult> reference;
  for (int threads : {1, 2, 4}) {
    IlpSolveOptions opts;
    opts.time_limit_sec = 30.0;
    opts.num_threads = threads;
    auto res = sched.solve_optimal_ilp(5.0, opts);
    ASSERT_EQ(res.milp_status, milp::MilpStatus::kOptimal)
        << "threads " << threads;
    if (!reference) {
      reference = res;
    } else {
      EXPECT_EQ(reference->nodes, res.nodes) << "threads " << threads;
      EXPECT_EQ(reference->lp_iterations, res.lp_iterations)
          << "threads " << threads;
      EXPECT_EQ(reference->cost, res.cost) << "threads " << threads;
      EXPECT_EQ(reference->best_bound, res.best_bound)
          << "threads " << threads;
    }
  }
}

}  // namespace
}  // namespace checkmate::milp
