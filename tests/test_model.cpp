#include "model/zoo.h"

#include <gtest/gtest.h>

#include "model/graph_builder.h"

namespace checkmate::model {
namespace {

TEST(TensorShape, NumelAndBytes) {
  auto s = TensorShape::nchw(32, 64, 56, 56);
  EXPECT_EQ(s.numel(), 32LL * 64 * 56 * 56);
  EXPECT_EQ(s.bytes(), s.numel() * 4);
  EXPECT_EQ(TensorShape::scalar().numel(), 1);
}

TEST(TensorShape, ToString) {
  EXPECT_EQ(TensorShape::nchw(1, 3, 224, 224).to_string(), "[1x3x224x224]");
  EXPECT_EQ(TensorShape::scalar().to_string(), "[]");
}

TEST(GraphBuilder, ConvShapesAndParams) {
  GraphBuilder b("t");
  auto in = b.input(TensorShape::nchw(2, 3, 32, 32));
  auto c = b.conv2d(in, 16, 3);
  EXPECT_EQ(b.shape(c), TensorShape::nchw(2, 16, 32, 32));
  auto g = std::move(b).build();
  EXPECT_EQ(g.ops[c].param_count, 3 * 3 * 3 * 16 + 16);
  EXPECT_GT(g.ops[c].forward_flops, 0);
}

TEST(GraphBuilder, StridedConvHalvesSpatial) {
  GraphBuilder b("t");
  auto in = b.input(TensorShape::nchw(1, 3, 224, 224));
  auto c = b.conv2d(in, 8, 3, 2);
  EXPECT_EQ(b.shape(c).height(), 112);
}

TEST(GraphBuilder, PoolDenseLossChain) {
  GraphBuilder b("t");
  auto in = b.input(TensorShape::nchw(4, 8, 8, 8));
  auto p = b.max_pool(in, 2);
  EXPECT_EQ(b.shape(p), TensorShape::nchw(4, 8, 4, 4));
  auto d = b.dense(p, 10);
  EXPECT_EQ(b.shape(d), TensorShape::flat(4, 10));
  b.loss(d);
  auto g = std::move(b).build();
  EXPECT_EQ(g.dag.size(), 4);
  EXPECT_TRUE(g.dag.is_linear());
}

TEST(GraphBuilder, AddRequiresMatchingShapes) {
  GraphBuilder b("t");
  auto in = b.input(TensorShape::nchw(1, 4, 8, 8));
  auto c1 = b.conv2d(in, 4, 3);
  auto c2 = b.conv2d(in, 8, 3);
  EXPECT_THROW(b.add(c1, c2), std::invalid_argument);
  EXPECT_NO_THROW(b.add(c1, in));
}

TEST(GraphBuilder, ConcatStacksChannels) {
  GraphBuilder b("t");
  auto in = b.input(TensorShape::nchw(1, 4, 8, 8));
  auto c1 = b.conv2d(in, 6, 3);
  auto cat = b.concat(in, c1);
  EXPECT_EQ(b.shape(cat).channels(), 10);
}

TEST(GraphBuilder, UpsampleDoublesSpatial) {
  GraphBuilder b("t");
  auto in = b.input(TensorShape::nchw(1, 8, 8, 8));
  auto up = b.upsample(in, 4);
  EXPECT_EQ(b.shape(up), TensorShape::nchw(1, 4, 16, 16));
}

TEST(Zoo, LinearNetStructure) {
  auto g = zoo::linear_net(32);
  EXPECT_EQ(g.dag.size(), 34);  // input + 32 conv + loss
  EXPECT_TRUE(g.dag.is_linear());
  EXPECT_EQ(g.forward_nodes().size(), 34u);
}

TEST(Zoo, Vgg16CoarseIsLinear) {
  auto g = zoo::vgg16(8);
  EXPECT_TRUE(g.dag.is_linear());
  // input + 5 blocks + 5 pools + 3 dense + loss = 15.
  EXPECT_EQ(g.dag.size(), 15);
}

TEST(Zoo, Vgg16FineHasIndividualConvs) {
  auto g = zoo::vgg16(8, 224, /*coarse=*/false);
  // input + 13 conv + 5 pool + 3 dense + loss = 23.
  EXPECT_EQ(g.dag.size(), 23);
  EXPECT_TRUE(g.dag.is_linear());
}

TEST(Zoo, Vgg19HasThreeMoreConvsThanVgg16) {
  auto g16 = zoo::vgg16(8, 224, false);
  auto g19 = zoo::vgg19(8, 224, false);
  EXPECT_EQ(g19.dag.size() - g16.dag.size(), 3);
  // VGG19 has ~144M parameters.
  EXPECT_NEAR(static_cast<double>(g19.total_params()), 143.6e6, 3e6);
}

TEST(Zoo, MobileNetLinearAndLight) {
  auto g = zoo::mobilenet_v1(8);
  EXPECT_TRUE(g.dag.is_linear());
  // ~4.2M params.
  EXPECT_NEAR(static_cast<double>(g.total_params()), 4.2e6, 1.5e6);
}

TEST(Zoo, ResNetHasResidualStructure) {
  auto g = zoo::resnet(4, 224, {2, 2, 2, 2});
  EXPECT_FALSE(g.dag.is_linear());
  // Add nodes have two dependencies.
  bool found_add = false;
  for (NodeId v = 0; v < g.dag.size(); ++v)
    if (g.ops[v].kind == OpKind::kAdd) {
      found_add = true;
      EXPECT_EQ(g.dag.deps(v).size(), 2u);
    }
  EXPECT_TRUE(found_add);
}

TEST(Zoo, UnetSkipConnections) {
  auto g = zoo::unet(2);
  EXPECT_FALSE(g.dag.is_linear());
  int concats = 0;
  for (NodeId v = 0; v < g.dag.size(); ++v)
    if (g.ops[v].kind == OpKind::kConcat) ++concats;
  EXPECT_EQ(concats, 4);
  g.validate();
}

TEST(Zoo, FcnAndSegnetBuild) {
  auto f = zoo::fcn8(2);
  auto s = zoo::segnet(2);
  f.validate();
  s.validate();
  EXPECT_FALSE(f.dag.is_linear());  // score-layer skip fusion
  EXPECT_TRUE(s.dag.is_linear());
}

TEST(Zoo, ActivationMemoryScalesWithBatch) {
  auto g1 = zoo::vgg16(1);
  auto g8 = zoo::vgg16(8);
  EXPECT_NEAR(static_cast<double>(g8.total_forward_activation_bytes()),
              8.0 * static_cast<double>(g1.total_forward_activation_bytes()),
              1e-6 * static_cast<double>(g8.total_forward_activation_bytes()));
  // Params do not scale with batch.
  EXPECT_EQ(g1.total_params(), g8.total_params());
}

TEST(Zoo, UnetActivationsDominantAtHighRes) {
  // Paper, Fig. 5c: U-Net at batch 32 requires ~23GB without remat.
  auto g = zoo::unet(32);
  const double feature_gb =
      static_cast<double>(g.total_forward_activation_bytes()) / 1e9;
  EXPECT_GT(feature_gb, 10.0);
  EXPECT_LT(feature_gb, 60.0);
}

}  // namespace
}  // namespace checkmate::model
