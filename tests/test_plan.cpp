#include "core/plan.h"

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/rounding.h"

namespace checkmate {
namespace {

RematSolution keep_all_solution(const RematProblem& p) {
  return baselines::checkpoint_all_schedule(p);
}

TEST(Plan, ComputeCountMatchesRMatrix) {
  auto p = RematProblem::unit_training_chain(3);
  auto sol = keep_all_solution(p);
  auto plan = generate_execution_plan(p, sol);
  EXPECT_EQ(plan.compute_count(), sol.num_computations());
}

TEST(Plan, RejectsInfeasibleSolution) {
  auto p = RematProblem::unit_chain(3);
  RematSolution sol;
  sol.R = make_bool_matrix(3, 3);
  sol.S = make_bool_matrix(3, 3);
  // Missing diagonal.
  EXPECT_THROW(generate_execution_plan(p, sol), std::invalid_argument);
}

TEST(Plan, RegistersAreUniquePerMaterialization) {
  auto p = RematProblem::unit_training_chain(2);
  BoolMatrix s = make_bool_matrix(p.size(), p.size());
  RematSolution sol;
  sol.S = s;
  sol.R = solve_r_given_s(p.graph, s);  // heavy recomputation
  auto plan = generate_execution_plan(p, sol);
  std::vector<int> seen;
  for (const auto& st : plan.statements)
    if (st.kind == StatementKind::kCompute) {
      EXPECT_EQ(std::count(seen.begin(), seen.end(), st.reg), 0);
      seen.push_back(st.reg);
    }
  EXPECT_EQ(static_cast<int>(seen.size()), plan.num_registers);
}

TEST(Plan, EveryDeallocTargetsALiveRegister) {
  auto p = RematProblem::unit_training_chain(4);
  BoolMatrix s = make_bool_matrix(p.size(), p.size());
  for (int t = 1; t < p.size(); ++t) s[t][0] = 1;
  RematSolution sol;
  sol.S = s;
  sol.R = solve_r_given_s(p.graph, s);
  auto plan = generate_execution_plan(p, sol);
  std::vector<bool> live(plan.num_registers, false);
  for (const auto& st : plan.statements) {
    if (st.kind == StatementKind::kCompute) {
      live[st.reg] = true;
    } else {
      EXPECT_TRUE(live[st.reg]);
      live[st.reg] = false;
    }
  }
}

TEST(Plan, HoistingMovesSpuriousCheckpointDropsToStageStart) {
  const int n = 3;
  auto p = RematProblem::unit_chain(n);
  RematSolution sol;
  sol.R = make_bool_matrix(n, n);
  sol.S = make_bool_matrix(n, n);
  for (int t = 0; t < n; ++t) sol.R[t][t] = 1;
  sol.S[1][0] = 1;
  sol.S[2][0] = 1;  // node 0 resident during stage 2, unused there
  sol.S[2][1] = 1;
  ASSERT_EQ(sol.check_feasible(p), "");

  PlanOptions hoist{.hoist_deallocations = true};
  PlanOptions keep{.hoist_deallocations = false};
  auto plan_h = generate_execution_plan(p, sol, hoist);
  auto plan_k = generate_execution_plan(p, sol, keep);

  // Hoisted: the dealloc of node 0 happens before stage 2's compute.
  auto first_dealloc_pos = [&](const ExecutionPlan& plan) {
    for (size_t i = 0; i < plan.statements.size(); ++i) {
      const auto& st = plan.statements[i];
      if (st.kind == StatementKind::kDeallocate && st.node == 0) return i;
    }
    return plan.statements.size();
  };
  auto stage2_compute_pos = [&](const ExecutionPlan& plan) {
    for (size_t i = 0; i < plan.statements.size(); ++i) {
      const auto& st = plan.statements[i];
      if (st.kind == StatementKind::kCompute && st.node == 2) return i;
    }
    return plan.statements.size();
  };
  EXPECT_LT(first_dealloc_pos(plan_h), stage2_compute_pos(plan_h));
  EXPECT_GT(first_dealloc_pos(plan_k), stage2_compute_pos(plan_k));
}

TEST(Plan, RecomputeOfLiveValueReleasesOldRegisterFirst) {
  // S keeps node 0 while R recomputes it: plan must not leak the old
  // register.
  const int n = 3;
  auto p = RematProblem::unit_chain(n);
  RematSolution sol;
  sol.R = make_bool_matrix(n, n);
  sol.S = make_bool_matrix(n, n);
  for (int t = 0; t < n; ++t) sol.R[t][t] = 1;
  sol.S[1][0] = 1;
  sol.S[2][1] = 1;  // stage 2 needs node 1 resident
  sol.R[1][0] = 1;  // spurious recompute of a live value
  ASSERT_EQ(sol.check_feasible(p), "");
  auto plan = generate_execution_plan(p, sol);
  // Find dealloc(0) before the second compute(0).
  int computes_of_0 = 0;
  bool saw_dealloc_between = false;
  for (const auto& st : plan.statements) {
    if (st.kind == StatementKind::kCompute && st.node == 0) ++computes_of_0;
    if (st.kind == StatementKind::kDeallocate && st.node == 0 &&
        computes_of_0 == 1)
      saw_dealloc_between = true;
  }
  EXPECT_EQ(computes_of_0, 2);
  EXPECT_TRUE(saw_dealloc_between);
}

TEST(Plan, ToStringContainsStagesAndNames) {
  auto p = RematProblem::unit_training_chain(2);
  auto sol = keep_all_solution(p);
  auto plan = generate_execution_plan(p, sol);
  const std::string text = plan.to_string(p);
  EXPECT_NE(text.find("stage 0:"), std::string::npos);
  EXPECT_NE(text.find("compute v0"), std::string::npos);
  EXPECT_NE(text.find("deallocate"), std::string::npos);
}

}  // namespace
}  // namespace checkmate
