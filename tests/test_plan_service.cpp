// Plan service: problem fingerprints, formulation-cache budget rebinds,
// presolve-artifact clamping, warm-start chaining and the worker pool.
#include "service/plan_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "core/ilp_builder.h"
#include "core/remat_problem.h"
#include "core/scheduler.h"
#include "milp/milp.h"
#include "milp/presolve.h"

namespace checkmate {
namespace {

IlpSolveOptions fast_opts() {
  IlpSolveOptions opts;
  opts.time_limit_sec = 30.0;
  return opts;
}

TEST(Fingerprint, CanonicalOverContentNotNames) {
  auto a = RematProblem::unit_training_chain(5);
  auto b = RematProblem::unit_training_chain(5);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Names are cosmetic: same formulation, same fingerprint.
  b.name = "renamed";
  b.node_names[0] = "other";
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Size, costs, memories, overhead and topology all key the hash.
  EXPECT_NE(a.fingerprint(),
            RematProblem::unit_training_chain(6).fingerprint());
  auto cost_bumped = a;
  cost_bumped.cost[2] += 0.5;
  EXPECT_NE(a.fingerprint(), cost_bumped.fingerprint());
  auto mem_bumped = a;
  mem_bumped.memory[3] *= 2.0;
  EXPECT_NE(a.fingerprint(), mem_bumped.fingerprint());
  auto overhead_bumped = a;
  overhead_bumped.fixed_overhead += 1.0;
  EXPECT_NE(a.fingerprint(), overhead_bumped.fingerprint());
  auto rewired = a;
  ASSERT_FALSE(rewired.graph.has_edge(0, 5));
  rewired.graph.add_edge(0, 5);
  EXPECT_NE(a.fingerprint(), rewired.fingerprint());
}

TEST(FormulationRebind, SetBudgetMovesOnlyUVariableBounds) {
  auto p = RematProblem::unit_training_chain(4);
  IlpBuildOptions build;
  build.budget_bytes = 8.0;
  IlpFormulation rebound(p, build);
  rebound.set_budget(5.0);

  IlpBuildOptions fresh_build;
  fresh_build.budget_bytes = 5.0;
  IlpFormulation fresh(p, fresh_build);

  // Same variable space; non-U bounds untouched by the rebind.
  ASSERT_EQ(rebound.lp().num_vars(), fresh.lp().num_vars());
  const auto& u_vars = rebound.u_var_indices();
  EXPECT_FALSE(u_vars.empty());
  for (int j = 0; j < rebound.lp().num_vars(); ++j) {
    if (std::find(u_vars.begin(), u_vars.end(), j) != u_vars.end()) {
      EXPECT_DOUBLE_EQ(rebound.lp().ub[j], rebound.scale_budget(5.0));
    } else {
      EXPECT_DOUBLE_EQ(rebound.lp().lb[j], fresh.lp().lb[j]);
      EXPECT_DOUBLE_EQ(rebound.lp().ub[j], fresh.lp().ub[j]);
    }
  }
  EXPECT_DOUBLE_EQ(rebound.options().budget_bytes, 5.0);
}

TEST(FormulationRebind, RebindEquivalentToFreshBuild) {
  // The scaling differs (frozen at construction) but the feasible set and
  // optimum must be identical: solve both MILPs and compare unscaled cost.
  auto p = RematProblem::unit_training_chain(5);
  IlpBuildOptions build;
  build.budget_bytes = 10.0;
  IlpFormulation rebound(p, build);
  rebound.set_budget(6.0);

  IlpBuildOptions fresh_build;
  fresh_build.budget_bytes = 6.0;
  IlpFormulation fresh(p, fresh_build);

  milp::MilpOptions mopts;
  mopts.time_limit_sec = 30.0;
  const auto res_rebound = milp::solve_milp(rebound.lp(), mopts);
  const auto res_fresh = milp::solve_milp(fresh.lp(), mopts);
  ASSERT_EQ(res_rebound.status, milp::MilpStatus::kOptimal);
  ASSERT_EQ(res_fresh.status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(rebound.unscale_cost(res_rebound.objective),
              fresh.unscale_cost(res_fresh.objective), 1e-6);
}

TEST(PresolveRebind, ClampUpperBounds) {
  lp::LinearProgram prog;
  prog.add_var(0.0, 10.0, 1.0);
  prog.add_var(2.0, 10.0, 1.0);
  prog.add_var(0.0, 1.0, 1.0);
  const int vars[] = {0, 1};
  EXPECT_TRUE(milp::clamp_upper_bounds(prog, vars, 4.0));
  EXPECT_DOUBLE_EQ(prog.ub[0], 4.0);
  EXPECT_DOUBLE_EQ(prog.ub[1], 4.0);
  EXPECT_DOUBLE_EQ(prog.ub[2], 1.0);  // not listed: untouched
  // Clamping below a lower bound proves infeasibility.
  EXPECT_FALSE(milp::clamp_upper_bounds(prog, vars, 1.0));
}

TEST(PlanService, SweepMatchesColdSolvesAndIsMonotone) {
  auto p = RematProblem::unit_training_chain(6);
  Scheduler sched(p);
  const std::vector<double> budgets = {5.0, 6.0, 8.0, 11.0};

  service::PlanService svc;
  const auto swept = svc.sweep(p, budgets, fast_opts());
  ASSERT_EQ(swept.size(), budgets.size());

  double prev_cost = lp::kInf;
  for (size_t i = 0; i < budgets.size(); ++i) {
    const auto cold = sched.solve_optimal_ilp(budgets[i], fast_opts());
    ASSERT_TRUE(swept[i].feasible) << swept[i].message;
    ASSERT_EQ(swept[i].milp_status, milp::MilpStatus::kOptimal);
    ASSERT_EQ(cold.milp_status, milp::MilpStatus::kOptimal);
    // Identical proven-optimal objective at every point.
    EXPECT_NEAR(swept[i].cost, cold.cost, 1e-6) << "budget " << budgets[i];
    // Chaining must preserve monotonicity: more memory never costs more.
    EXPECT_LE(swept[i].cost, prev_cost + 1e-9);
    prev_cost = swept[i].cost;
  }

  const auto st = svc.stats();
  EXPECT_EQ(st.queries, 4);
  EXPECT_EQ(st.formulation_misses, 1);
  EXPECT_EQ(st.presolve_runs, 1);  // once, at the largest budget
  EXPECT_GE(st.presolve_reuses + st.warm_start_shortcuts, 3);
}

TEST(PlanService, SweepResultsComeBackInCallerOrder) {
  auto p = RematProblem::unit_training_chain(5);
  const std::vector<double> shuffled = {9.0, 5.0, 12.0, 6.0};
  service::PlanService svc;
  const auto res = svc.sweep(p, shuffled, fast_opts());
  ASSERT_EQ(res.size(), shuffled.size());
  Scheduler sched(p);
  for (size_t i = 0; i < shuffled.size(); ++i) {
    ASSERT_EQ(res[i].milp_status, milp::MilpStatus::kOptimal);
    EXPECT_NEAR(res[i].cost,
                sched.solve_optimal_ilp(shuffled[i], fast_opts()).cost, 1e-6);
  }
}

TEST(PlanService, RepeatedPlansHitTheFormulationCache) {
  auto p = RematProblem::unit_training_chain(5);
  service::PlanService svc;
  const auto a = svc.plan(p, 12.0, fast_opts());
  const auto b = svc.plan(p, 6.0, fast_opts());
  ASSERT_EQ(a.milp_status, milp::MilpStatus::kOptimal);
  ASSERT_EQ(b.milp_status, milp::MilpStatus::kOptimal);
  EXPECT_GE(b.cost, a.cost);

  const auto st = svc.stats();
  EXPECT_EQ(st.formulation_misses, 1);
  EXPECT_EQ(st.formulation_hits, 1);
  EXPECT_EQ(svc.cache_size(), 1u);

  Scheduler sched(p);
  EXPECT_NEAR(b.cost, sched.solve_optimal_ilp(6.0, fast_opts()).cost, 1e-6);
}

TEST(PlanService, CostCapIsPartOfTheCacheKey) {
  auto p = RematProblem::unit_training_chain(4);
  service::PlanService svc;
  IlpSolveOptions capped = fast_opts();
  capped.cost_cap = 2.0 * p.forward_cost() + p.backward_cost();
  (void)svc.plan(p, 9.0, fast_opts());
  (void)svc.plan(p, 9.0, capped);
  const auto st = svc.stats();
  EXPECT_EQ(st.formulation_misses, 2);
  EXPECT_EQ(st.formulation_hits, 0);
}

TEST(PlanService, BelowFloorBudgetIsInfeasibleWithoutABuild) {
  auto p = RematProblem::unit_training_chain(4);
  service::PlanService svc;
  const auto res = svc.plan(p, 0.5 * p.memory_floor(), fast_opts());
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.milp_status, milp::MilpStatus::kInfeasible);
  EXPECT_EQ(svc.cache_size(), 0u);
}

TEST(PlanService, GenerousBudgetsInheritTheChainedOptimum) {
  // At generous budgets the optimum sits at the compute floor; once one
  // point is solved, its schedule is provably optimal for the rest of the
  // flat region and the solver is skipped outright.
  auto p = RematProblem::unit_training_chain(6);
  const double total = p.total_memory();
  service::PlanService svc;
  const auto res =
      svc.sweep(p, {0.7 * total, 0.8 * total, 0.9 * total, total},
                fast_opts());
  for (const auto& r : res) {
    ASSERT_EQ(r.milp_status, milp::MilpStatus::kOptimal);
    EXPECT_NEAR(r.overhead, 1.0, 1e-9);
  }
  EXPECT_GE(svc.stats().warm_start_shortcuts, 3);
}

TEST(PlanService, PlanManyMatchesSequentialAcrossWorkerCounts) {
  const auto pa = RematProblem::unit_training_chain(4);
  const auto pb = RematProblem::unit_training_chain(5);
  std::vector<service::PlanQuery> queries;
  for (double budget : {9.0, 5.0, 7.0})
    queries.push_back({&pa, budget, fast_opts()});
  for (double budget : {11.0, 6.0})
    queries.push_back({&pb, budget, fast_opts()});

  service::PlanServiceOptions solo;
  solo.num_workers = 1;
  service::PlanService svc_solo(solo);
  service::PlanServiceOptions wide;
  wide.num_workers = 4;
  service::PlanService svc_wide(wide);

  const auto r1 = svc_solo.plan_many(queries);
  const auto r4 = svc_wide.plan_many(queries);
  ASSERT_EQ(r1.size(), queries.size());
  ASSERT_EQ(r4.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(r1[i].milp_status, milp::MilpStatus::kOptimal) << i;
    ASSERT_EQ(r4[i].milp_status, milp::MilpStatus::kOptimal) << i;
    // Worker count must not change any answer.
    EXPECT_NEAR(r1[i].cost, r4[i].cost, 1e-9) << i;
    Scheduler sched(*queries[i].problem);
    EXPECT_NEAR(
        r1[i].cost,
        sched.solve_optimal_ilp(queries[i].budget_bytes, fast_opts()).cost,
        1e-6)
        << i;
  }
  EXPECT_EQ(svc_wide.stats().formulation_misses, 2);  // one per model
}

TEST(PlanService, LruEvictionKeepsAnswersCorrect) {
  const auto pa = RematProblem::unit_training_chain(4);
  const auto pb = RematProblem::unit_training_chain(5);
  service::PlanServiceOptions tiny;
  tiny.max_cache_entries = 1;
  service::PlanService svc(tiny);
  const auto a1 = svc.plan(pa, 9.0, fast_opts());
  const auto b1 = svc.plan(pb, 11.0, fast_opts());
  const auto a2 = svc.plan(pa, 9.0, fast_opts());  // rebuilt after eviction
  ASSERT_EQ(a1.milp_status, milp::MilpStatus::kOptimal);
  ASSERT_EQ(b1.milp_status, milp::MilpStatus::kOptimal);
  ASSERT_EQ(a2.milp_status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(a1.cost, a2.cost, 1e-9);
  const auto st = svc.stats();
  EXPECT_EQ(st.formulation_misses, 3);
  EXPECT_GE(st.evictions, 2);
  EXPECT_EQ(svc.cache_size(), 1u);
}

TEST(SolvePool, AutoWorkerCountIsAlwaysPositive) {
  // Regression: std::thread::hardware_concurrency() may legally return 0
  // (containers, exotic platforms); a zero-worker pool would deadlock every
  // wait_idle(). resolve_worker_count must guarantee >= 1 for any request,
  // and 0/negative requests select the auto value instead of a 1-thread
  // floor clamping.
  EXPECT_GE(service::SolvePool::resolve_worker_count(0), 1);
  EXPECT_LE(service::SolvePool::resolve_worker_count(0), 8);
  EXPECT_GE(service::SolvePool::resolve_worker_count(-4), 1);
  EXPECT_EQ(service::SolvePool::resolve_worker_count(3), 3);
  EXPECT_EQ(service::SolvePool::resolve_worker_count(17), 17);  // explicit wins

  service::SolvePool auto_pool(0);
  EXPECT_GE(auto_pool.num_workers(), 1);
  std::atomic<int> ran{0};
  auto_pool.submit([&ran] { ran.fetch_add(1); });
  auto_pool.wait_idle();  // would hang forever with zero workers
  EXPECT_EQ(ran.load(), 1);
}

TEST(PlanService, ManyGroupsOnTinyThreadBudgetStaysDeterministic) {
  // Q >> threads regression, companion to the hardware_concurrency()==0
  // guard above: with far more query groups than budgeted threads, the
  // per-solve share budget/Q truncates to zero. solve_locked must clamp
  // that to one tree worker -- and must route non-positive shares through
  // the clamp rather than the "0 = auto" path, which would hand every
  // solve a full hardware thread count outside the service budget (and on
  // hardware_concurrency()==0 platforms, nondeterministically so).
  std::vector<RematProblem> problems;
  std::vector<double> budgets;
  for (int layers = 2; layers <= 9; ++layers) {
    problems.push_back(RematProblem::unit_training_chain(layers));
    budgets.push_back(layers + 2.0);  // tight-ish but feasible
  }
  std::vector<service::PlanQuery> queries;
  for (size_t i = 0; i < problems.size(); ++i)  // 8 distinct groups
    queries.push_back({&problems[i], budgets[i], fast_opts()});

  service::PlanServiceOptions tiny;
  tiny.num_threads = 2;  // Q = 8 groups >> 2 budgeted threads
  service::PlanService svc(tiny);
  const auto got = svc.plan_many(queries);

  service::PlanServiceOptions solo;
  solo.num_threads = 1;
  service::PlanService svc_solo(solo);
  ASSERT_EQ(got.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(got[i].milp_status, milp::MilpStatus::kOptimal) << i;
    const auto ref = svc_solo.plan(*queries[i].problem,
                                   queries[i].budget_bytes, fast_opts());
    ASSERT_EQ(ref.milp_status, milp::MilpStatus::kOptimal) << i;
    EXPECT_EQ(got[i].cost, ref.cost) << i;
    EXPECT_EQ(got[i].nodes, ref.nodes) << i;
    EXPECT_EQ(got[i].lp_iterations, ref.lp_iterations) << i;
  }

  // A query that explicitly asks for a negative worker count gets the
  // single-thread clamp too, not the auto-all-cores path. Both services
  // fresh: svc_solo would answer this repeat query from its warm-start
  // chain (nodes == 0) instead of solving.
  service::PlanService svc_neg;
  IlpSolveOptions neg = fast_opts();
  neg.num_threads = -3;
  const auto n = svc_neg.plan(problems[4], budgets[4], neg);
  service::PlanService svc_ref(solo);
  const auto r = svc_ref.plan(problems[4], budgets[4], fast_opts());
  ASSERT_EQ(n.milp_status, milp::MilpStatus::kOptimal);
  EXPECT_EQ(n.cost, r.cost);
  EXPECT_EQ(n.nodes, r.nodes);
}

TEST(PlanService, ThreadBudgetDoesNotChangeAnswers) {
  // The unified thread budget splits between query workers and in-solve
  // tree workers; epoch-lockstep determinism means every split returns
  // bit-identical plans and node counts.
  auto p = RematProblem::unit_training_chain(6);
  service::PlanServiceOptions solo;
  solo.num_threads = 1;
  service::PlanService svc_solo(solo);
  service::PlanServiceOptions wide;
  wide.num_threads = 4;
  service::PlanService svc_wide(wide);

  const auto a = svc_solo.plan(p, 5.0, fast_opts());
  const auto b = svc_wide.plan(p, 5.0, fast_opts());
  ASSERT_EQ(a.milp_status, milp::MilpStatus::kOptimal);
  ASSERT_EQ(b.milp_status, milp::MilpStatus::kOptimal);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.lp_iterations, b.lp_iterations);

  // An explicit per-query num_threads overrides the budget share and still
  // changes nothing. (Fresh service: a repeat query against svc_wide would
  // legitimately answer from the warm-start chain without solving.)
  service::PlanService svc_pinned;
  IlpSolveOptions pinned = fast_opts();
  pinned.num_threads = 2;
  const auto c = svc_pinned.plan(p, 5.0, pinned);
  ASSERT_EQ(c.milp_status, milp::MilpStatus::kOptimal);
  EXPECT_EQ(a.cost, c.cost);
  EXPECT_EQ(a.nodes, c.nodes);
}

TEST(SolvePool, RunsEveryJobAndWaitsIdle) {
  service::SolvePool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
  // Reusable after a drain.
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 65);
}

TEST(SchedulerSweep, ConvenienceWrapperMatchesService) {
  auto p = RematProblem::unit_training_chain(5);
  Scheduler sched(p);
  const std::vector<double> budgets = {6.0, 9.0, 12.0};
  const auto swept = sched.solve_budget_sweep(budgets, fast_opts());
  ASSERT_EQ(swept.size(), budgets.size());
  for (size_t i = 0; i < budgets.size(); ++i) {
    ASSERT_EQ(swept[i].milp_status, milp::MilpStatus::kOptimal);
    EXPECT_NEAR(swept[i].cost,
                sched.solve_optimal_ilp(budgets[i], fast_opts()).cost, 1e-6);
  }
}

}  // namespace
}  // namespace checkmate
