// Crash-safe plan store + service admission layer.
//
// The store half: records round-trip through disk, survive a process
// "restart" (a fresh PlanStore on the same directory), serve the budget
// staircase, and every corruption mode -- truncation, bit flips, version
// skew, even a checksum-consistent flip -- degrades to a quarantined
// record and a cache miss, never a wrong plan. The admission half: a
// store populated by one service serves proven optima (zero solver work)
// to a fresh one; a thundering herd of identical queries costs exactly
// one solve; overload sheds to the heuristic rung with a typed reason.
//
// Every test runs in its own TempDir, removed on pass and fail alike.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/remat_problem.h"
#include "core/scheduler.h"
#include "robust/fault_injection.h"
#include "service/plan_service.h"
#include "store/plan_store.h"
#include "temp_dir.h"

namespace checkmate {
namespace {

namespace fs = std::filesystem;
using service::PlanOutcome;
using service::PlanProvenance;
using store::PlanStore;
using store::StoreShape;
using testing::TempDir;

// One proven optimum to seed stores with: solved fresh through a plain
// (store-less) service so the store tests control persistence themselves.
ScheduleResult solve_fresh(const RematProblem& p, double budget) {
  service::PlanService svc;
  ScheduleResult res = svc.plan(p, budget);
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.milp_status, milp::MilpStatus::kOptimal);
  return res;
}

std::vector<std::string> files_with_ext(const std::string& dir,
                                        const std::string& ext) {
  std::vector<std::string> out;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ext) out.push_back(e.path().string());
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// FNV-1a, matching the record checksum, for the checksum-consistent
// corruption test.
uint64_t fnv1a(const std::string& bytes, size_t from, size_t len) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = from; i < from + len; ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

TEST(PlanStore, PutLookupRoundTripServesValidatedOptimum) {
  TempDir dir("checkmate_store");
  auto p = RematProblem::unit_training_chain(6);
  const double budget = p.total_memory();
  const ScheduleResult solved = solve_fresh(p, budget);

  PlanStore store(dir.path());
  ASSERT_TRUE(store.put(p, StoreShape{}, budget, 1e-4, solved));
  EXPECT_EQ(store.stats().puts, 1);
  ASSERT_EQ(files_with_ext(dir.path(), ".plan").size(), 1u);

  auto hit = store.lookup(p, StoreShape{}, budget, 1e-4);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->feasible);
  EXPECT_EQ(hit->milp_status, milp::MilpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(hit->cost, solved.cost);
  EXPECT_EQ(hit->nodes, 0) << "a store hit must do zero solver work";
  EXPECT_EQ(store.stats().hits, 1);
}

TEST(PlanStore, RestartServesBitIdenticalPlanFromDisk) {
  TempDir dir("checkmate_store");
  auto p = RematProblem::unit_training_chain(6);
  const double budget = p.total_memory();
  const ScheduleResult solved = solve_fresh(p, budget);
  {
    PlanStore store(dir.path());
    ASSERT_TRUE(store.put(p, StoreShape{}, budget, 1e-4, solved));
  }
  // "Restart": a fresh instance recovers the record from disk alone.
  PlanStore store(dir.path());
  EXPECT_EQ(store.stats().records_loaded, 1);
  EXPECT_EQ(store.stats().load_quarantines, 0);
  auto hit = store.lookup(p, StoreShape{}, budget, 1e-4);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->solution.R, solved.solution.R);
  EXPECT_EQ(hit->solution.S, solved.solution.S);
  EXPECT_DOUBLE_EQ(hit->cost, solved.cost);
  EXPECT_EQ(hit->nodes, 0);
}

TEST(PlanStore, StaircaseServesDownToThePlanPeakAndNotBelow) {
  TempDir dir("checkmate_store");
  auto p = RematProblem::unit_training_chain(8);
  // Solve at a fractional mid budget: the optimum's integral peak lands
  // strictly below it, opening a real staircase step [peak, budget].
  const double top =
      p.memory_floor() + 0.6 * (p.total_memory() - p.memory_floor());
  const ScheduleResult solved = solve_fresh(p, top);
  ASSERT_GT(top, solved.peak_memory);

  PlanStore store(dir.path());
  ASSERT_TRUE(store.put(p, StoreShape{}, top, 1e-4, solved));
  // Any budget on [peak, solved] is on this record's staircase step.
  const double mid = 0.5 * (solved.peak_memory + top);
  auto hit = store.lookup(p, StoreShape{}, mid, 1e-4);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->cost, solved.cost);
  EXPECT_LE(hit->peak_memory, mid + 1e-9);
  // Below the plan's own peak the schedule no longer fits; the dual bound
  // still transfers down-budget for the re-solve to terminate against.
  const double below = 0.5 * (p.memory_floor() + solved.peak_memory);
  if (below < solved.peak_memory * (1.0 - 1e-9)) {
    double bound = 0.0;
    auto miss = store.lookup(p, StoreShape{}, below, 1e-4, &bound);
    EXPECT_FALSE(miss.has_value());
    EXPECT_GE(bound, solved.best_bound - 1e-12);
  }
}

TEST(PlanStore, ShapeIsPartOfTheKey) {
  TempDir dir("checkmate_store");
  auto p = RematProblem::unit_training_chain(6);
  const double budget = p.total_memory();
  PlanStore store(dir.path());
  ASSERT_TRUE(store.put(p, StoreShape{}, budget, 1e-4,
                        solve_fresh(p, budget)));
  StoreShape other;
  other.eliminate_diag_free = false;
  EXPECT_FALSE(store.lookup(p, other, budget, 1e-4).has_value());
  EXPECT_TRUE(store.lookup(p, StoreShape{}, budget, 1e-4).has_value());
}

TEST(PlanStore, TighterGapQueryDoesNotInheritALooserCertificate) {
  TempDir dir("checkmate_store");
  auto p = RematProblem::unit_training_chain(8);
  // Tight budget so the optimum sits above the compute floor (otherwise
  // the floor itself is a zero-gap certificate and any gap is served).
  const double budget =
      p.memory_floor() + 0.2 * (p.total_memory() - p.memory_floor());
  ScheduleResult solved = solve_fresh(p, budget);
  ASSERT_GT(solved.cost, p.total_cost_all_nodes() * (1.0 + 1e-6));
  // Forge a loose certificate: the cost is provably within 10% only. A
  // query demanding 1e-6 must re-solve, not inherit it.
  solved.best_bound = solved.cost * 0.9;
  PlanStore store(dir.path());
  ASSERT_TRUE(store.put(p, StoreShape{}, budget, 0.2, solved));
  EXPECT_FALSE(store.lookup(p, StoreShape{}, budget, 1e-6).has_value());
  EXPECT_TRUE(store.lookup(p, StoreShape{}, budget, 0.2).has_value());
}

// ------------------------------------------------------------- corruption

class PlanStoreCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    problem_ = RematProblem::unit_training_chain(6);
    budget_ = problem_.total_memory();
    solved_ = solve_fresh(problem_, budget_);
    PlanStore store(dir_.path());
    ASSERT_TRUE(store.put(problem_, StoreShape{}, budget_, 1e-4, solved_));
    auto files = files_with_ext(dir_.path(), ".plan");
    ASSERT_EQ(files.size(), 1u);
    record_path_ = files[0];
  }

  // After corruption: reload must quarantine (never crash), lookups must
  // miss, and the damaged file must be renamed out of the load path.
  void expect_quarantined_on_reload() {
    PlanStore store(dir_.path());
    EXPECT_EQ(store.stats().records_loaded, 0);
    EXPECT_EQ(store.stats().load_quarantines, 1);
    EXPECT_FALSE(
        store.lookup(problem_, StoreShape{}, budget_, 1e-4).has_value());
    EXPECT_TRUE(files_with_ext(dir_.path(), ".plan").empty());
    EXPECT_EQ(files_with_ext(dir_.path(), ".quarantined").size(), 1u);
  }

  TempDir dir_{"checkmate_store"};
  RematProblem problem_;
  double budget_ = 0.0;
  ScheduleResult solved_;
  std::string record_path_;
};

TEST_F(PlanStoreCorruption, TruncatedRecordIsQuarantinedOnLoad) {
  // A torn write that survived a crash: the file exists but is short.
  const std::string bytes = read_file(record_path_);
  write_file(record_path_, bytes.substr(0, bytes.size() / 2));
  expect_quarantined_on_reload();
}

TEST_F(PlanStoreCorruption, BitFlippedRecordIsQuarantinedOnLoad) {
  std::string bytes = read_file(record_path_);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  write_file(record_path_, bytes);
  expect_quarantined_on_reload();
}

TEST_F(PlanStoreCorruption, VersionSkewIsQuarantinedNotMisparsed) {
  std::string bytes = read_file(record_path_);
  bytes[4] = static_cast<char>(0xfe);  // version field follows the magic
  write_file(record_path_, bytes);
  expect_quarantined_on_reload();
}

TEST_F(PlanStoreCorruption, EmptyRecordFileIsQuarantinedOnLoad) {
  write_file(record_path_, "");
  expect_quarantined_on_reload();
}

TEST_F(PlanStoreCorruption, StrandedTempFilesAreSweptOnLoad) {
  write_file(record_path_ + ".tmp", "half-written debris");
  PlanStore store(dir_.path());
  EXPECT_EQ(store.stats().records_loaded, 1);
  EXPECT_FALSE(fs::exists(record_path_ + ".tmp"));
}

// The deepest corruption mode: a flip that *fixes up the checksum* so the
// header checks all pass. Validation-before-serve is the last line: the
// simulator cannot reproduce the recorded economics from the damaged
// schedule, so the record is quarantined at lookup -- a miss, never a
// wrong plan.
TEST_F(PlanStoreCorruption, ChecksumConsistentFlipIsCaughtBySimulator) {
  std::string bytes = read_file(record_path_);
  constexpr size_t kHeaderBytes = 24;  // magic, version, length, checksum
  const size_t payload_len = bytes.size() - kHeaderBytes;
  // Toggle the first R cell (R[0][0] = 1 in any partitioned schedule):
  // the R matrix starts after the fixed fields and the problem blob.
  const size_t blob_len = problem_.serialize_canonical().size();
  const size_t r_offset = kHeaderBytes + 8 + 4 + 8 * 6 + 8 + blob_len + 8;
  ASSERT_LT(r_offset, bytes.size());
  bytes[r_offset] = static_cast<char>(bytes[r_offset] ^ 0x01);
  // Recompute and patch the checksum so the header verifies.
  const uint64_t sum = fnv1a(bytes, kHeaderBytes, payload_len);
  for (int b = 0; b < 8; ++b)
    bytes[16 + b] = static_cast<char>((sum >> (8 * b)) & 0xff);
  write_file(record_path_, bytes);

  PlanStore store(dir_.path());
  ASSERT_EQ(store.stats().records_loaded, 1) << "header must verify";
  EXPECT_FALSE(
      store.lookup(problem_, StoreShape{}, budget_, 1e-4).has_value());
  EXPECT_EQ(store.stats().validation_quarantines, 1);
  EXPECT_EQ(files_with_ext(dir_.path(), ".quarantined").size(), 1u);
}

// ------------------------------------------------------ service admission

TEST(PlanServiceStore, RestartServesProvenOptimalWithZeroSolverWork) {
  TempDir dir("checkmate_store");
  auto p = RematProblem::unit_training_chain(8);
  const double budget = 0.5 * (p.memory_floor() + p.total_memory());

  service::PlanServiceOptions sopts;
  sopts.store_dir = dir.path();
  PlanOutcome first;
  {
    service::PlanService svc(sopts);
    first = svc.plan_robust(p, budget);
    ASSERT_EQ(first.provenance, PlanProvenance::kProvenOptimal);
    EXPECT_EQ(svc.stats().store_puts, 1);
  }
  // Fresh process: the plan comes back proven optimal from disk alone --
  // no MILP query, zero branch-and-bound nodes, bit-identical schedule.
  service::PlanService svc(sopts);
  const PlanOutcome again = svc.plan_robust(p, budget);
  ASSERT_EQ(again.provenance, PlanProvenance::kProvenOptimal);
  EXPECT_TRUE(again.why_degraded.empty());
  EXPECT_DOUBLE_EQ(again.result.cost, first.result.cost);
  EXPECT_EQ(again.result.solution.R, first.result.solution.R);
  EXPECT_EQ(again.result.solution.S, first.result.solution.S);
  EXPECT_EQ(again.result.nodes, 0);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.queries, 0) << "a store hit must not reach the solver";
  EXPECT_EQ(stats.store_hits, 1);
}

TEST(PlanServiceStore, SweepRepersistsOnlyDistinctStaircaseSteps) {
  TempDir dir("checkmate_store");
  auto p = RematProblem::unit_training_chain(8);
  service::PlanServiceOptions sopts;
  sopts.store_dir = dir.path();
  service::PlanService svc(sopts);
  const double floor = p.memory_floor();
  const double top = p.total_memory();
  std::vector<double> budgets;
  for (int i = 0; i < 6; ++i)
    budgets.push_back(floor + (top - floor) * (6 - i) / 6.0);
  const auto outcomes = svc.sweep_robust(p, budgets);
  size_t proven = 0;
  for (const auto& out : outcomes)
    proven += out.provenance == PlanProvenance::kProvenOptimal;
  ASSERT_GT(proven, 0u);
  // Records on disk = distinct staircase steps, not one per budget.
  const size_t files = files_with_ext(dir.path(), ".plan").size();
  EXPECT_GT(files, 0u);
  EXPECT_LE(files, proven);
  // A restarted service replays the whole sweep from disk.
  service::PlanService svc2(sopts);
  const auto replay = svc2.sweep_robust(p, budgets);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(replay[i].provenance, outcomes[i].provenance) << "budget#" << i;
    if (outcomes[i].provenance == PlanProvenance::kProvenOptimal) {
      EXPECT_DOUBLE_EQ(replay[i].result.cost, outcomes[i].result.cost);
    }
  }
  EXPECT_EQ(svc2.stats().queries, 0);
}

TEST(PlanServiceStore, ThunderingHerdCostsExactlyOneSolve) {
  TempDir dir("checkmate_store");
  auto p = RematProblem::unit_training_chain(8);
  const double budget = 0.5 * (p.memory_floor() + p.total_memory());
  service::PlanServiceOptions sopts;
  sopts.store_dir = dir.path();
  service::PlanService svc(sopts);

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<PlanOutcome> outcomes(kThreads);
  std::vector<std::thread> herd;
  herd.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    herd.emplace_back([&, t] {
      // Spin barrier: maximize the overlap window so the herd actually
      // collides (correctness below does not depend on it).
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      outcomes[t] = svc.plan_robust(p, budget);
    });
  }
  for (auto& th : herd) th.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(outcomes[t].provenance, PlanProvenance::kProvenOptimal)
        << "thread " << t;
    EXPECT_DOUBLE_EQ(outcomes[t].result.cost, outcomes[0].result.cost);
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.queries, 1) << "identical herd must coalesce on one solve";
  // Every other query was served without solving: coalesced behind the
  // leader or (arriving after the flight closed) from the store.
  EXPECT_EQ(stats.single_flight_shared + stats.store_hits, kThreads - 1);
  EXPECT_EQ(stats.store_puts, 1);
}

TEST(PlanServiceStore, OverloadShedsToHeuristicWithTypedReason) {
  // One solve slot; a long-running solve occupies it while a second query
  // arrives and must shed to the heuristic rung instead of queueing. The
  // window is real time, so retry a few times before declaring failure --
  // every attempt still asserts the contract on both outcomes.
  auto blocker_problem = RematProblem::unit_training_chain(16);
  const double blocker_budget =
      blocker_problem.memory_floor() +
      0.3 * (blocker_problem.total_memory() - blocker_problem.memory_floor());
  auto quick_problem = RematProblem::unit_training_chain(4);
  const double quick_budget = quick_problem.total_memory();

  bool shed_seen = false;
  for (int attempt = 0; attempt < 5 && !shed_seen; ++attempt) {
    service::PlanServiceOptions sopts;
    sopts.max_inflight_solves = 1;
    service::PlanService svc(sopts);
    std::thread blocker([&] {
      const PlanOutcome out = svc.plan_robust(blocker_problem, blocker_budget);
      EXPECT_TRUE(out.result.feasible);
    });
    // The solve counter increments at solve entry: once it reads 1 the
    // slot is held.
    while (svc.stats().queries < 1) std::this_thread::yield();
    const PlanOutcome shed = svc.plan_robust(quick_problem, quick_budget);
    blocker.join();
    ASSERT_TRUE(shed.result.feasible);
    if (shed.provenance == PlanProvenance::kHeuristicFallback &&
        shed.why_degraded.find("overload") != std::string::npos) {
      shed_seen = true;
      EXPECT_GE(svc.stats().shed_overload, 1);
    }
  }
  EXPECT_TRUE(shed_seen)
      << "no attempt shed: the blocker solve never overlapped the query";
}

TEST(PlanServiceStore, CorruptStoreRecoversByReSolvingAndRepersisting) {
  TempDir dir("checkmate_store");
  auto p = RematProblem::unit_training_chain(8);
  const double budget = 0.5 * (p.memory_floor() + p.total_memory());
  service::PlanServiceOptions sopts;
  sopts.store_dir = dir.path();
  PlanOutcome first;
  {
    service::PlanService svc(sopts);
    first = svc.plan_robust(p, budget);
    ASSERT_EQ(first.provenance, PlanProvenance::kProvenOptimal);
  }
  auto files = files_with_ext(dir.path(), ".plan");
  ASSERT_EQ(files.size(), 1u);
  std::string bytes = read_file(files[0]);
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x20);
  write_file(files[0], bytes);

  // Restart on the damaged store: quarantine, re-solve to the same proven
  // optimum, and persist it again.
  service::PlanService svc(sopts);
  ASSERT_NE(svc.plan_store(), nullptr);
  EXPECT_EQ(svc.plan_store()->stats().load_quarantines, 1);
  const PlanOutcome again = svc.plan_robust(p, budget);
  ASSERT_EQ(again.provenance, PlanProvenance::kProvenOptimal);
  EXPECT_DOUBLE_EQ(again.result.cost, first.result.cost);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.store_hits, 0);
  EXPECT_EQ(stats.queries, 1) << "recovery is a re-solve, not a crash";
  EXPECT_EQ(stats.store_puts, 1);
  EXPECT_EQ(files_with_ext(dir.path(), ".plan").size(), 1u);
  EXPECT_EQ(files_with_ext(dir.path(), ".quarantined").size(), 1u);
}

#ifdef CHECKMATE_FAULT_INJECTION

class PlanStoreFaults : public ::testing::Test {
 protected:
  void TearDown() override { robust::FaultInjector::instance().disarm_all(); }
};

TEST_F(PlanStoreFaults, RenameFailureIsAbsorbedAndServedFromMemory) {
  TempDir dir("checkmate_store");
  auto p = RematProblem::unit_training_chain(6);
  const double budget = p.total_memory();
  const ScheduleResult solved = solve_fresh(p, budget);
  PlanStore store(dir.path());
  robust::FaultInjector::instance().arm(robust::FaultPoint::kStoreRenameFail,
                                        1, 1, 0);
  EXPECT_FALSE(store.put(p, StoreShape{}, budget, 1e-4, solved));
  EXPECT_EQ(store.stats().put_failures, 1);
  // No debris, nothing durable -- but this instance still serves the
  // record from memory.
  EXPECT_TRUE(files_with_ext(dir.path(), ".plan").empty());
  EXPECT_TRUE(files_with_ext(dir.path(), ".tmp").empty());
  EXPECT_TRUE(store.lookup(p, StoreShape{}, budget, 1e-4).has_value());
}

TEST_F(PlanStoreFaults, FsyncFailureLeavesNoTempDebris) {
  TempDir dir("checkmate_store");
  auto p = RematProblem::unit_training_chain(6);
  const double budget = p.total_memory();
  PlanStore store(dir.path());
  robust::FaultInjector::instance().arm(robust::FaultPoint::kFsyncFail, 2, 1,
                                        0);
  EXPECT_FALSE(store.put(p, StoreShape{}, budget, 1e-4,
                         solve_fresh(p, budget)));
  EXPECT_TRUE(files_with_ext(dir.path(), ".plan").empty());
  EXPECT_TRUE(files_with_ext(dir.path(), ".tmp").empty());
}

// Kill-mid-write: the torn write "succeeds" (modelling a crash between
// write and rename durability), leaving a truncated record behind a valid
// filename. The next boot must quarantine it and re-solve.
TEST_F(PlanStoreFaults, KillMidWriteThenReloadRecovers) {
  TempDir dir("checkmate_store");
  auto p = RematProblem::unit_training_chain(8);
  const double budget = 0.5 * (p.memory_floor() + p.total_memory());
  service::PlanServiceOptions sopts;
  sopts.store_dir = dir.path();
  PlanOutcome first;
  {
    robust::FaultInjector::instance().arm(robust::FaultPoint::kStoreWriteTorn,
                                          3, 1, 1);
    service::PlanService svc(sopts);
    first = svc.plan_robust(p, budget);
    ASSERT_EQ(first.provenance, PlanProvenance::kProvenOptimal);
    robust::FaultInjector::instance().disarm_all();
  }
  ASSERT_EQ(files_with_ext(dir.path(), ".plan").size(), 1u);
  // Reload: the torn record is quarantined, the query re-solves to the
  // same optimum, and this time the write lands intact.
  service::PlanService svc(sopts);
  ASSERT_NE(svc.plan_store(), nullptr);
  EXPECT_EQ(svc.plan_store()->stats().load_quarantines, 1);
  const PlanOutcome again = svc.plan_robust(p, budget);
  ASSERT_EQ(again.provenance, PlanProvenance::kProvenOptimal);
  EXPECT_DOUBLE_EQ(again.result.cost, first.result.cost);
  EXPECT_EQ(svc.stats().store_puts, 1);
  // Third boot: the repaired record serves with zero solver work.
  service::PlanService svc3(sopts);
  const PlanOutcome served = svc3.plan_robust(p, budget);
  EXPECT_EQ(served.provenance, PlanProvenance::kProvenOptimal);
  EXPECT_EQ(svc3.stats().queries, 0);
}

#else  // !CHECKMATE_FAULT_INJECTION

TEST(PlanStoreFaults, RequiresFaultInjectionBuild) {
  GTEST_SKIP() << "disk-fault cases need -DCHECKMATE_FAULT_INJECTION=ON "
                  "(the CHECK_TIER=full chaos stage builds them; see "
                  "scripts/check.sh)";
}

#endif  // CHECKMATE_FAULT_INJECTION

}  // namespace
}  // namespace checkmate
