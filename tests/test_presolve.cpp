// Presolve correctness: fixings, implied bounds and row removal must never
// cut off an integer-feasible point, verified both on hand-built programs
// and against the brute-force oracle on tiny Checkmate instances.
#include "milp/presolve.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/ilp_builder.h"
#include "core/rounding.h"
#include "core/solution.h"
#include "milp/milp.h"

namespace checkmate::milp {
namespace {

using lp::kInf;
using lp::LinearProgram;

std::vector<std::pair<int, double>> terms(
    std::initializer_list<std::pair<int, double>> t) {
  return t;
}

MilpOptions bounded(double time_limit_sec = 30.0) {
  MilpOptions opts;
  opts.time_limit_sec = time_limit_sec;
  return opts;
}

TEST(Presolve, SingletonUpperRowFixesBinaryToZero) {
  // x binary, x <= 0: the Checkmate "S forced to 0 by topology" pattern.
  LinearProgram lp;
  int x = lp.add_binary(-1.0);
  lp.add_le(terms({{x, 1.0}}), 0.0);
  auto res = presolve(lp);
  ASSERT_FALSE(res.stats.proven_infeasible);
  EXPECT_EQ(res.lp.lb[x], 0.0);
  EXPECT_EQ(res.lp.ub[x], 0.0);
  EXPECT_EQ(res.stats.vars_fixed, 1);
  // The row is implied by the fixed bounds and must be dropped.
  EXPECT_EQ(res.lp.num_rows(), 0);
  EXPECT_EQ(res.stats.rows_removed, 1);
}

TEST(Presolve, FixingsCascadeThroughChainedRows) {
  // a <= 0, b <= a, c <= b: one round fixes a, later rounds fix b then c.
  LinearProgram lp;
  int a = lp.add_binary(0.0);
  int b = lp.add_binary(0.0);
  int c = lp.add_binary(0.0);
  lp.add_le(terms({{a, 1.0}}), 0.0);
  lp.add_le(terms({{b, 1.0}, {a, -1.0}}), 0.0);
  lp.add_le(terms({{c, 1.0}, {b, -1.0}}), 0.0);
  auto res = presolve(lp);
  ASSERT_FALSE(res.stats.proven_infeasible);
  EXPECT_EQ(res.stats.vars_fixed, 3);
  for (int j : {a, b, c}) EXPECT_EQ(res.lp.ub[j], 0.0);
  EXPECT_EQ(res.lp.num_rows(), 0);
}

TEST(Presolve, IntegerBoundsRoundedInward) {
  // 0.4 <= x <= 2.6 integer: bounds must shrink to [1, 2].
  LinearProgram lp;
  int x = lp.add_var(0.0, 10.0, 1.0, /*integer=*/true);
  lp.add_constraint(terms({{x, 1.0}}), 0.4, 2.6);
  auto res = presolve(lp);
  ASSERT_FALSE(res.stats.proven_infeasible);
  EXPECT_EQ(res.lp.lb[x], 1.0);
  EXPECT_EQ(res.lp.ub[x], 2.0);
}

TEST(Presolve, IntegerHoleProvesInfeasible) {
  // 0.4 <= x <= 0.6 with x integer: no integer fits, presolve proves it
  // without a single simplex iteration.
  LinearProgram lp;
  int x = lp.add_var(0.0, 1.0, 1.0, /*integer=*/true);
  lp.add_constraint(terms({{x, 1.0}}), 0.4, 0.6);
  auto res = presolve(lp);
  EXPECT_TRUE(res.stats.proven_infeasible);
  // And solve_milp must report it identically.
  auto mres = solve_milp(lp, bounded());
  EXPECT_EQ(mres.status, MilpStatus::kInfeasible);
}

TEST(Presolve, ContradictoryRowsProveInfeasible) {
  LinearProgram lp;
  int x = lp.add_var(0.0, 1.0, 1.0);
  int y = lp.add_var(0.0, 1.0, 1.0);
  lp.add_ge(terms({{x, 1.0}, {y, 1.0}}), 3.0);  // max activity is 2
  auto res = presolve(lp);
  EXPECT_TRUE(res.stats.proven_infeasible);
}

TEST(Presolve, RedundantRowRemovedTightRowKept) {
  LinearProgram lp;
  int x = lp.add_var(0.0, 1.0, -1.0);
  int y = lp.add_var(0.0, 1.0, -1.0);
  lp.add_le(terms({{x, 1.0}, {y, 1.0}}), 5.0);  // activity can reach 2 at most
  lp.add_le(terms({{x, 1.0}, {y, 1.0}}), 1.5);  // genuinely binding
  auto res = presolve(lp);
  ASSERT_FALSE(res.stats.proven_infeasible);
  EXPECT_EQ(res.lp.num_rows(), 1);
  EXPECT_EQ(res.lp.row_ub[0], 1.5);
  EXPECT_EQ(res.stats.rows_removed, 1);
}

TEST(Presolve, ImpliedBoundTightensContinuousVariable) {
  // x + y <= 4 with y >= 1 implies x <= 3.
  LinearProgram lp;
  int x = lp.add_var(0.0, 100.0, -1.0);
  int y = lp.add_var(1.0, 2.0, 0.0);
  lp.add_le(terms({{x, 1.0}, {y, 1.0}}), 4.0);
  auto res = presolve(lp);
  ASSERT_FALSE(res.stats.proven_infeasible);
  EXPECT_NEAR(res.lp.ub[x], 3.0, 1e-9);
  EXPECT_GT(res.stats.bounds_tightened, 0);
}

TEST(Presolve, ForcingRowFixesAllParticipants) {
  // x + y >= 2 with x, y binary: only x = y = 1 works.
  LinearProgram lp;
  int x = lp.add_binary(1.0);
  int y = lp.add_binary(1.0);
  lp.add_ge(terms({{x, 1.0}, {y, 1.0}}), 2.0);
  auto res = presolve(lp);
  ASSERT_FALSE(res.stats.proven_infeasible);
  EXPECT_EQ(res.lp.lb[x], 1.0);
  EXPECT_EQ(res.lp.lb[y], 1.0);
  EXPECT_EQ(res.stats.vars_fixed, 2);
}

TEST(Presolve, ChecksmateFormulationShrinksButKeepsOptimum) {
  // The partitioned Checkmate ILP carries structurally-forced variables
  // (diagonal R fixings, topology-killed S entries). Presolve must find a
  // non-trivial reduction and leave the optimum untouched.
  auto p = RematProblem::unit_training_chain(4);  // n = 9
  IlpBuildOptions build;
  build.budget_bytes = 6.0;
  IlpFormulation f(p, build);

  auto pre = presolve(f.lp());
  ASSERT_FALSE(pre.stats.proven_infeasible);
  EXPECT_GT(pre.stats.vars_fixed, 0);
  EXPECT_GT(pre.stats.rows_removed, 0);
  EXPECT_LT(pre.lp.num_rows(), f.lp().num_rows());

  MilpOptions on = bounded(), off = bounded();
  on.presolve = true;
  off.presolve = false;
  auto r_on = solve_milp(f.lp(), on);
  auto r_off = solve_milp(f.lp(), off);
  ASSERT_EQ(r_on.status, MilpStatus::kOptimal);
  ASSERT_EQ(r_off.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r_on.objective, r_off.objective, 1e-6);
}

// ---------------------------------------------------------------------
// Brute-force oracle corpus (same construction as test_integration.cpp):
// enumerate every lower-triangular S, back-solve minimal R, keep the
// cheapest in-budget schedule. Presolved solves must match it exactly.

double brute_force_cost(const RematProblem& p, double budget) {
  const int n = p.size();
  std::vector<std::pair<int, int>> slots;
  for (int t = 1; t < n; ++t)
    for (int i = 0; i < t; ++i) slots.emplace_back(t, i);
  double best = std::numeric_limits<double>::infinity();
  const int64_t combos = 1LL << slots.size();
  for (int64_t mask = 0; mask < combos; ++mask) {
    BoolMatrix s = make_bool_matrix(n, n);
    for (size_t b = 0; b < slots.size(); ++b)
      if (mask & (1LL << b)) s[slots[b].first][slots[b].second] = 1;
    RematSolution sol;
    sol.S = s;
    sol.R = solve_r_given_s(p.graph, s);
    if (!sol.check_feasible(p).empty()) continue;
    if (peak_memory_usage(p, sol) > budget + 1e-9) continue;
    best = std::min(best, sol.compute_cost(p));
  }
  return best;
}

RematProblem tiny_diamond() {
  RematProblem p;
  p.name = "diamond";
  p.graph = Graph(5);
  p.graph.add_edge(0, 1);
  p.graph.add_edge(0, 2);
  p.graph.add_edge(1, 3);
  p.graph.add_edge(2, 3);
  p.graph.add_edge(3, 4);
  p.graph.add_edge(1, 4);
  p.cost = {1.0, 3.0, 2.0, 1.0, 1.0};
  p.memory = {2.0, 1.0, 1.0, 1.0, 1.0};
  p.is_backward = {0, 0, 0, 0, 1};
  p.grad_of = {-1, -1, -1, -1, 3};
  p.node_names = {"a", "b", "c", "d", "gd"};
  p.validate();
  return p;
}

TEST(Presolve, MatchesBruteForceOracleOnCorpus) {
  struct Instance {
    RematProblem problem;
    std::vector<double> budgets;
  };
  std::vector<Instance> corpus;
  corpus.push_back({RematProblem::unit_training_chain(2), {4.0, 5.0, 6.0}});
  corpus.push_back({tiny_diamond(), {4.0, 5.0, 6.0}});

  for (const Instance& inst : corpus) {
    for (double budget : inst.budgets) {
      const double oracle = brute_force_cost(inst.problem, budget);
      if (!std::isfinite(oracle)) continue;
      IlpBuildOptions build;
      build.budget_bytes = budget;
      IlpFormulation f(inst.problem, build);
      for (bool with_presolve : {true, false}) {
        MilpOptions opts = bounded();
        opts.presolve = with_presolve;
        auto res = solve_milp(f.lp(), opts);
        ASSERT_EQ(res.status, MilpStatus::kOptimal)
            << inst.problem.name << " budget " << budget << " presolve "
            << with_presolve;
        EXPECT_NEAR(f.unscale_cost(res.objective), oracle, 1e-5)
            << inst.problem.name << " budget " << budget << " presolve "
            << with_presolve;
      }
    }
  }
}

}  // namespace
}  // namespace checkmate::milp
