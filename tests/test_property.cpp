// Property-based sweeps over randomized problem instances (parameterized
// by RNG seed). Invariants checked:
//   P1  solve_r_given_s output is always feasible
//   P2  simulated peak <= accounting peak; simulated cost == R-matrix cost
//   P3  ILP optimum <= cost of every feasible baseline schedule
//   P4  LP relaxation <= ILP optimum
//   P5  two-phase rounding is correct (feasible schedule) for any S*
//   P6  plans never double-free or use dead values (simulator validates)
//   P7  tightening the budget never decreases the optimal cost
#include <gtest/gtest.h>

#include <random>

#include "baselines/baselines.h"
#include "core/ilp_builder.h"
#include "core/rounding.h"
#include "core/scheduler.h"
#include "lp/simplex.h"
#include "milp/milp.h"

namespace checkmate {
namespace {

// Random layered training-DAG generator: forward DAG with random skip
// edges, then a backward mirror (gradient of v depends on grads of users,
// deps of v, and v).
RematProblem random_training_problem(uint64_t seed, int max_fwd = 7) {
  std::mt19937_64 rng(seed);
  const int f = 3 + static_cast<int>(rng() % (max_fwd - 2));
  Graph fwd(f);
  for (int j = 1; j < f; ++j) {
    fwd.add_edge(static_cast<NodeId>(j - 1), j);  // chain backbone
    if (j >= 2 && rng() % 3 == 0)
      fwd.add_edge(static_cast<NodeId>(rng() % (j - 1)), j);  // skip
  }
  const int n = 2 * f - 1;  // gradients for all but node 0
  RematProblem p;
  p.name = "random_" + std::to_string(seed);
  p.graph = Graph(n);
  for (NodeId v = 0; v < f; ++v)
    for (NodeId u : fwd.users(v)) p.graph.add_edge(v, u);
  p.is_backward.assign(n, 0);
  p.grad_of.assign(n, -1);
  std::vector<NodeId> grad_id(f, -1);
  for (int v = f - 1; v >= 1; --v) {
    const NodeId g = f + (f - 1 - v);
    p.is_backward[g] = 1;
    p.grad_of[g] = v;
    grad_id[v] = g;
    for (NodeId u : fwd.users(v)) p.graph.add_edge(grad_id[u], g);
    p.graph.add_edge(v, g);
    for (NodeId d : fwd.deps(v)) p.graph.add_edge(d, g);
  }
  p.cost.resize(n);
  p.memory.resize(n);
  for (int v = 0; v < n; ++v) {
    p.cost[v] = 1.0 + static_cast<double>(rng() % 8);
    p.memory[v] = 1.0 + static_cast<double>(rng() % 4);
  }
  p.node_names.assign(n, "");
  p.validate();
  return p;
}

class PropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertySweep, SolveRFeasibleForRandomS) {
  auto p = random_training_problem(GetParam());
  std::mt19937_64 rng(GetParam() ^ 0xabcdef);
  const int n = p.size();
  for (int trial = 0; trial < 8; ++trial) {
    BoolMatrix s = make_bool_matrix(n, n);
    for (int t = 1; t < n; ++t)
      for (int i = 0; i < t; ++i) s[t][i] = rng() % 2;
    RematSolution sol;
    sol.S = s;
    sol.R = solve_r_given_s(p.graph, s);
    EXPECT_EQ(sol.check_feasible(p), "");  // P1
  }
}

TEST_P(PropertySweep, SimulatorAgreesWithAccounting) {
  auto p = random_training_problem(GetParam());
  auto sol = baselines::checkpoint_all_schedule(p);
  ASSERT_EQ(sol.check_feasible(p), "");
  auto plan = generate_execution_plan(p, sol);
  auto sim = simulate_plan(p, plan);
  ASSERT_TRUE(sim.valid) << sim.error;  // P6
  EXPECT_LE(sim.peak_memory, peak_memory_usage(p, sol) + 1e-9);  // P2
  EXPECT_NEAR(sim.total_cost, sol.compute_cost(p), 1e-9);        // P2
}

TEST_P(PropertySweep, IlpDominatesBaselinesAndLpBoundsIlp) {
  auto p = random_training_problem(GetParam());
  Scheduler sched(p);
  auto all = sched.evaluate_schedule(baselines::checkpoint_all_schedule(p),
                                     0.0);
  ASSERT_TRUE(all.feasible);
  const double budget =
      p.memory_floor() + 0.6 * (all.peak_memory - p.memory_floor());

  IlpSolveOptions opts;
  opts.time_limit_sec = 20.0;
  auto ilp = sched.solve_optimal_ilp(budget, opts);
  if (!ilp.feasible) GTEST_SKIP() << "budget infeasible for this instance";

  // P4.
  EXPECT_LE(ilp.root_relaxation, ilp.cost + 1e-6);

  // P3 over the generalized baselines.
  using baselines::BaselineKind;
  for (auto kind :
       {BaselineKind::kApSqrtN, BaselineKind::kApGreedy,
        BaselineKind::kLinearizedSqrtN, BaselineKind::kLinearizedGreedy}) {
    for (const auto& bs : baselines::baseline_schedules(p, kind)) {
      auto eval = sched.evaluate_schedule(bs.solution, budget);
      if (!eval.feasible) continue;
      EXPECT_LE(ilp.cost, eval.cost + 1e-6)
          << baselines::to_string(kind) << " " << bs.label;
    }
  }
}

TEST_P(PropertySweep, RoundingAlwaysCorrectSometimesFeasible) {
  auto p = random_training_problem(GetParam());
  std::mt19937_64 rng(GetParam() * 31 + 7);
  const int n = p.size();
  std::vector<std::vector<double>> s_star(n, std::vector<double>(n, 0.0));
  for (int t = 1; t < n; ++t)
    for (int i = 0; i < t; ++i)
      s_star[t][i] = static_cast<double>(rng() % 1000) / 1000.0;
  for (bool randomized : {false, true}) {
    RoundingOptions opts;
    opts.randomized = randomized;
    opts.seed = GetParam();
    auto sol = two_phase_round(p.graph, s_star, opts);
    EXPECT_EQ(sol.check_feasible(p), "");  // P5
    auto sim = simulate_plan(p, generate_execution_plan(p, sol));
    EXPECT_TRUE(sim.valid) << sim.error;  // P6
  }
}

TEST_P(PropertySweep, BudgetMonotonicity) {
  auto p = random_training_problem(GetParam(), /*max_fwd=*/5);
  Scheduler sched(p);
  auto all = sched.evaluate_schedule(baselines::checkpoint_all_schedule(p),
                                     0.0);
  ASSERT_TRUE(all.feasible);
  const double floor = p.memory_floor();
  double prev_cost = -1.0;
  IlpSolveOptions opts;
  opts.time_limit_sec = 20.0;
  for (double frac : {0.9, 0.6, 0.3}) {
    auto res = sched.solve_optimal_ilp(
        floor + frac * (all.peak_memory - floor), opts);
    if (!res.feasible) break;
    if (res.milp_status != milp::MilpStatus::kOptimal) break;
    if (prev_cost >= 0.0) {
      EXPECT_GE(res.cost, prev_cost - 1e-6);  // P7
    }
    prev_cost = res.cost;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace checkmate
