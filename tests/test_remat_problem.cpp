#include "core/remat_problem.h"

#include <gtest/gtest.h>

#include "model/zoo.h"

namespace checkmate {
namespace {

RematProblem training_problem(model::DnnGraph fwd) {
  return RematProblem::from_dnn(model::make_training_graph(fwd),
                                model::CostMetric::kProfiledTimeUs);
}

TEST(RematProblem, UnitChain) {
  auto p = RematProblem::unit_chain(5);
  EXPECT_EQ(p.size(), 5);
  EXPECT_TRUE(p.graph.is_linear());
  EXPECT_DOUBLE_EQ(p.total_cost_all_nodes(), 5.0);
  EXPECT_DOUBLE_EQ(p.total_memory(), 5.0);
  EXPECT_EQ(p.first_backward_stage(), 5);
  p.validate();
}

TEST(RematProblem, FromDnnFieldsAligned) {
  auto p = training_problem(model::zoo::linear_net(4));
  EXPECT_EQ(p.size(), 11);
  EXPECT_EQ(p.first_backward_stage(), 6);
  EXPECT_GT(p.fixed_overhead, 0.0);
  EXPECT_EQ(p.grad_of[6], 5);  // first gradient differentiates the loss
  p.validate();
}

TEST(RematProblem, ForwardPlusBackwardCostsPartition) {
  auto p = training_problem(model::zoo::vgg16(4));
  EXPECT_NEAR(p.forward_cost() + p.backward_cost(), p.total_cost_all_nodes(),
              1e-9 * p.total_cost_all_nodes());
  // Backward ~2x forward under the default autodiff factor.
  EXPECT_GT(p.backward_cost(), p.forward_cost());
}

TEST(RematProblem, ValidateCatchesSizeMismatch) {
  auto p = RematProblem::unit_chain(3);
  p.cost.pop_back();
  EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(RematProblem, ValidateCatchesNegativeCost) {
  auto p = RematProblem::unit_chain(3);
  p.cost[1] = -1.0;
  EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(RematProblem, ValidateCatchesNonTopologicalLabels) {
  auto p = RematProblem::unit_chain(3);
  p.graph = Graph(3);
  p.graph.add_edge(2, 0);
  EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(RematProblem, MaxNodeMemory) {
  auto p = training_problem(model::zoo::vgg16(4));
  double expect = 0.0;
  for (double m : p.memory) expect = std::max(expect, m);
  EXPECT_DOUBLE_EQ(p.max_node_memory(), expect);
  EXPECT_GT(expect, 0.0);
}

}  // namespace
}  // namespace checkmate
