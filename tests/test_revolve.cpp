#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/plan.h"
#include "core/simulator.h"

namespace checkmate::baselines {
namespace {

TEST(Revolve, RejectsNonLinearAndDegenerateInputs) {
  auto p = RematProblem::unit_training_chain(4);
  EXPECT_THROW(revolve_schedule(p, 0), std::invalid_argument);
  auto chain = RematProblem::unit_chain(5);  // no backward pass
  EXPECT_THROW(revolve_schedule(chain, 2), std::invalid_argument);
}

TEST(Revolve, SchedulesAreFeasible) {
  for (int layers : {2, 3, 5, 8, 13}) {
    auto p = RematProblem::unit_training_chain(layers);
    for (int s = 1; s <= std::min(6, layers); ++s) {
      auto sol = revolve_schedule(p, s);
      EXPECT_EQ(sol.check_feasible(p), "")
          << "layers=" << layers << " s=" << s;
      auto sim = simulate_plan(p, generate_execution_plan(p, sol));
      EXPECT_TRUE(sim.valid) << sim.error;
    }
  }
}

TEST(Revolve, MoreSnapshotsLessRecompute) {
  auto p = RematProblem::unit_training_chain(12);
  double first_cost = 0.0, prev_cost = 1e300;
  for (int s : {1, 2, 4, 8}) {
    auto sol = revolve_schedule(p, s);
    auto sim = simulate_plan(p, generate_execution_plan(p, sol));
    ASSERT_TRUE(sim.valid);
    // Weakly decreasing up to a one-recompute wobble (the binomial midpoint
    // clamp can shift a single advance between adjacent s values).
    EXPECT_LE(sim.total_cost, prev_cost + 1.0 + 1e-9) << "s=" << s;
    if (first_cost == 0.0) first_cost = sim.total_cost;
    prev_cost = sim.total_cost;
  }
  EXPECT_LT(prev_cost, first_cost);  // endpoints strictly improve
}

TEST(Revolve, MoreSnapshotsMoreMemory) {
  auto p = RematProblem::unit_training_chain(12);
  auto low = revolve_schedule(p, 1);
  auto high = revolve_schedule(p, 8);
  auto sim_low = simulate_plan(p, generate_execution_plan(p, low));
  auto sim_high = simulate_plan(p, generate_execution_plan(p, high));
  ASSERT_TRUE(sim_low.valid);
  ASSERT_TRUE(sim_high.valid);
  EXPECT_LT(sim_low.peak_memory, sim_high.peak_memory);
}

TEST(Revolve, LogarithmicMemoryScaling) {
  // Griewank & Walther: O(log n) snapshots suffice for O(log n)-factor
  // recompute overhead. With s = ceil(log2(L)) snapshots, total cost should
  // stay well under the quadratic blowup of s = 1.
  const int layers = 16;
  auto p = RematProblem::unit_training_chain(layers);
  auto s1 = revolve_schedule(p, 1);
  auto slog = revolve_schedule(p, 4);  // log2(16)
  auto sim1 = simulate_plan(p, generate_execution_plan(p, s1));
  auto simlog = simulate_plan(p, generate_execution_plan(p, slog));
  ASSERT_TRUE(sim1.valid);
  ASSERT_TRUE(simlog.valid);
  // s=1 degenerates toward quadratic recompute; s=log n should cost far
  // less than half of it.
  EXPECT_LT(simlog.total_cost, 0.5 * sim1.total_cost);
  // ... while staying cheaper in memory than checkpoint-all (peak = L+2).
  EXPECT_LT(simlog.peak_memory, layers + 1.0);
}

TEST(Revolve, BaselineSweepProducesDistinctPoints) {
  auto p = RematProblem::unit_training_chain(10);
  auto schedules = baseline_schedules(p, BaselineKind::kGriewankLogN);
  ASSERT_GE(schedules.size(), 4u);
  std::vector<double> costs;
  for (const auto& s : schedules) {
    auto sim = simulate_plan(p, generate_execution_plan(p, s.solution));
    ASSERT_TRUE(sim.valid) << s.label;
    costs.push_back(sim.total_cost);
  }
  // Strictly decreasing cost is not guaranteed at every step, but the
  // extremes must differ.
  EXPECT_GT(costs.front(), costs.back());
}

}  // namespace
}  // namespace checkmate::baselines
