// Robustness layer: deadlines and cooperative cancellation (robust/
// deadline.h) threaded through the LP engine, branch & bound and the plan
// service, plus the never-fail fallback ladder (PlanOutcome provenance).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "baselines/baselines.h"
#include "core/ilp_builder.h"
#include "core/remat_problem.h"
#include "core/scheduler.h"
#include "lp/simplex.h"
#include "milp/milp.h"
#include "model/graph_builder.h"
#include "model/zoo.h"
#include "robust/deadline.h"
#include "service/plan_service.h"

namespace checkmate {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

TEST(Deadline, NeverIsInertAndInfinite) {
  robust::Deadline d;
  EXPECT_FALSE(d.finite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_sec(), 1e18);
  EXPECT_FALSE(robust::Deadline::never().finite());
}

TEST(Deadline, AfterZeroExpiresImmediately) {
  const auto d = robust::Deadline::after(0.0);
  EXPECT_TRUE(d.finite());
  EXPECT_TRUE(d.expired());
  EXPECT_DOUBLE_EQ(d.remaining_sec(), 0.0);
  // Negative budgets clamp to "already expired", they do not wrap.
  EXPECT_TRUE(robust::Deadline::after(-5.0).expired());
}

TEST(Deadline, AfterHourIsPending) {
  const auto d = robust::Deadline::after(3600.0);
  EXPECT_TRUE(d.finite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_sec(), 3500.0);
  EXPECT_LT(d.remaining_sec(), 3601.0);
}

TEST(Deadline, SoonerPicksTheEarlier) {
  const auto inert = robust::Deadline::never();
  const auto close = robust::Deadline::after(1.0);
  const auto far = robust::Deadline::after(3600.0);
  EXPECT_TRUE(robust::Deadline::sooner(inert, close).finite());
  EXPECT_TRUE(robust::Deadline::sooner(close, inert).finite());
  EXPECT_FALSE(robust::Deadline::sooner(inert, inert).finite());
  EXPECT_LT(robust::Deadline::sooner(close, far).remaining_sec(), 2.0);
  EXPECT_LT(robust::Deadline::sooner(far, close).remaining_sec(), 2.0);
}

TEST(CancelToken, DefaultIsInert) {
  robust::CancelToken t;
  EXPECT_FALSE(t.active());
  EXPECT_FALSE(t.cancelled());
  t.cancel();  // no-op on an inert token, must not crash
  EXPECT_FALSE(t.cancelled());
}

TEST(CancelToken, CancellationIsSharedAcrossCopies) {
  auto t = robust::CancelToken::make();
  EXPECT_TRUE(t.active());
  EXPECT_FALSE(t.cancelled());
  robust::CancelToken copy = t;
  t.cancel();
  EXPECT_TRUE(copy.cancelled());
}

// An LP solve under an already-expired deadline must return immediately
// with the truncation status and a *sound* dual bound (never above the
// true optimum).
TEST(SimplexDeadline, ExpiredDeadlineTruncatesSoundly) {
  auto p = RematProblem::unit_training_chain(6);
  IlpBuildOptions build;
  build.budget_bytes = 6.0;
  const IlpFormulation form(p, build);

  const lp::LpResult full = lp::solve_lp(form.lp());
  ASSERT_EQ(full.status, lp::LpStatus::kOptimal);

  lp::SimplexOptions opts;
  opts.deadline = robust::Deadline::after(0.0);
  const lp::LpResult cut = lp::solve_lp(form.lp(), opts);
  EXPECT_EQ(cut.status, lp::LpStatus::kIterationLimit);
  EXPECT_EQ(cut.iterations, 0);
  EXPECT_LE(cut.dual_bound, full.objective + 1e-6);
}

TEST(SimplexDeadline, CancelTokenTruncatesSoundly) {
  auto p = RematProblem::unit_training_chain(6);
  IlpBuildOptions build;
  build.budget_bytes = 6.0;
  const IlpFormulation form(p, build);
  const lp::LpResult full = lp::solve_lp(form.lp());
  ASSERT_EQ(full.status, lp::LpStatus::kOptimal);

  lp::SimplexOptions opts;
  opts.cancel = robust::CancelToken::make();
  opts.cancel.cancel();
  const lp::LpResult cut = lp::solve_lp(form.lp(), opts);
  EXPECT_EQ(cut.status, lp::LpStatus::kIterationLimit);
  EXPECT_LE(cut.dual_bound, full.objective + 1e-6);
}

// A pre-cancelled MILP stops at its first barrier; whatever bound it
// reports must still bracket the true optimum from below.
TEST(MilpCancel, PreCancelledSearchStopsWithSoundBound) {
  auto p = RematProblem::unit_training_chain(8);
  IlpBuildOptions build;
  build.budget_bytes = 7.0;
  const IlpFormulation form(p, build);

  milp::MilpOptions ref;
  ref.time_limit_sec = 30.0;
  const milp::MilpResult exact = milp::solve_milp(form.lp(), ref);
  ASSERT_EQ(exact.status, milp::MilpStatus::kOptimal);

  milp::MilpOptions opts;
  opts.time_limit_sec = 30.0;
  opts.cancel = robust::CancelToken::make();
  opts.cancel.cancel();
  const auto t0 = Clock::now();
  const milp::MilpResult cut = milp::solve_milp(form.lp(), opts);
  EXPECT_LT(seconds_since(t0), 10.0);
  EXPECT_NE(cut.status, milp::MilpStatus::kOptimal);
  EXPECT_LE(cut.best_bound, exact.objective + 1e-6);
  if (cut.has_solution()) {
    EXPECT_GE(cut.objective, exact.objective - 1e-6);
  }
}

TEST(PlanRobust, GenerousBudgetIsProvenOptimal) {
  auto p = RematProblem::unit_training_chain(6);
  service::PlanService svc;
  const auto out = svc.plan_robust(p, p.total_memory());
  EXPECT_EQ(out.provenance, service::PlanProvenance::kProvenOptimal);
  ASSERT_TRUE(out.result.feasible);
  EXPECT_TRUE(out.why_degraded.empty());
  EXPECT_NEAR(out.gap, 0.0, 1e-4);
  EXPECT_GE(out.lower_bound, p.total_cost_all_nodes() - 1e-9);
  EXPECT_LE(out.result.peak_memory, p.total_memory() + 1e-6);
}

TEST(PlanRobust, BudgetBelowFloorIsProvenInfeasibleWithCertificate) {
  auto p = RematProblem::unit_training_chain(6);
  service::PlanService svc;
  const auto out = svc.plan_robust(p, 0.5 * p.memory_floor());
  EXPECT_EQ(out.provenance, service::PlanProvenance::kInfeasible);
  EXPECT_FALSE(out.result.feasible);
  EXPECT_TRUE(out.result.proven_infeasible);
  EXPECT_DOUBLE_EQ(out.memory_floor_bytes, p.memory_floor());
  EXPECT_DOUBLE_EQ(out.result.memory_floor_bytes, p.memory_floor());
}

TEST(PlanRobust, ExpiredDeadlineFallsBackToValidatedHeuristic) {
  auto p = RematProblem::unit_training_chain(8);
  service::PlanService svc;
  IlpSolveOptions opts;
  opts.deadline = robust::Deadline::after(0.0);
  // Checkpoint-all fits a generous budget, so the ladder must land on the
  // heuristic rung rather than report failure.
  const auto out = svc.plan_robust(p, p.total_memory(), opts);
  EXPECT_EQ(out.provenance, service::PlanProvenance::kHeuristicFallback);
  ASSERT_TRUE(out.result.feasible);
  EXPECT_FALSE(out.why_degraded.empty());
  EXPECT_TRUE(out.result.sim.valid);  // simulator-validated, not just priced
  EXPECT_LE(out.result.peak_memory, p.total_memory() + 1e-6);
  EXPECT_GE(out.result.cost, out.lower_bound - 1e-9);
}

TEST(PlanRobust, CancelledQueryFallsBackToValidatedHeuristic) {
  auto p = RematProblem::unit_training_chain(8);
  service::PlanService svc;
  IlpSolveOptions opts;
  opts.cancel = robust::CancelToken::make();
  opts.cancel.cancel();
  const auto out = svc.plan_robust(p, p.total_memory(), opts);
  EXPECT_EQ(out.provenance, service::PlanProvenance::kHeuristicFallback);
  ASSERT_TRUE(out.result.feasible);
  EXPECT_NE(out.why_degraded.find("cancelled"), std::string::npos);
}

// Truncating the search by the deterministic node limit lands on either
// the incumbent rung (seeded incumbent survives) or proven optimality
// (root already integral); never on failure.
TEST(PlanRobust, NodeLimitedSearchReturnsIncumbentOrOptimum) {
  auto p = RematProblem::unit_training_chain(8);
  service::PlanService svc;
  IlpSolveOptions opts;
  opts.max_nodes = 1;
  const double budget = 7.0;
  ASSERT_GE(budget, p.memory_floor());
  const auto out = svc.plan_robust(p, budget, opts);
  ASSERT_TRUE(out.result.feasible);
  EXPECT_TRUE(out.provenance == service::PlanProvenance::kProvenOptimal ||
              out.provenance == service::PlanProvenance::kIncumbent ||
              out.provenance == service::PlanProvenance::kHeuristicFallback);
  if (out.provenance != service::PlanProvenance::kProvenOptimal) {
    EXPECT_FALSE(out.why_degraded.empty());
  }
  EXPECT_LE(out.result.peak_memory, budget + 1e-6);
  EXPECT_GE(out.gap, 0.0);
}

TEST(SweepRobust, EveryPointReturnsTypedOutcome) {
  auto p = RematProblem::unit_training_chain(6);
  service::PlanService svc;
  const double floor = p.memory_floor();
  const double top = p.total_memory();
  const std::vector<double> budgets = {top, 0.5 * floor, floor + 1.0};
  const auto out = svc.sweep_robust(p, budgets);
  ASSERT_EQ(out.size(), budgets.size());
  EXPECT_EQ(out[0].provenance, service::PlanProvenance::kProvenOptimal);
  EXPECT_EQ(out[1].provenance, service::PlanProvenance::kInfeasible);
  EXPECT_DOUBLE_EQ(out[1].memory_floor_bytes, floor);
  EXPECT_NE(out[2].provenance, service::PlanProvenance::kInfeasible);
  EXPECT_TRUE(out[2].result.feasible);
  EXPECT_LE(out[2].result.peak_memory, budgets[2] + 1e-6);
}

// Satellite regression: a tight wall-clock deadline on the bench's
// vgg16_mid_budget instance must return within 2x the requested budget.
// The per-node simplex iteration clamp (branch_and_bound.cpp) exists
// precisely so one node LP cannot overshoot the remaining budget.
TEST(PlanRobust, Vgg16MidBudgetDeadlineOvershootBounded) {
  // Problem construction stays outside the timed region.
  auto p = RematProblem::from_dnn(
      model::make_training_graph(model::zoo::vgg16(2)),
      model::CostMetric::kProfiledTimeUs);
  Scheduler sched(p);
  const auto all = sched.evaluate_schedule(
      baselines::checkpoint_all_schedule(p), 0.0);
  ASSERT_TRUE(all.feasible);
  const double floor = p.memory_floor();
  const double budget = floor + 0.5 * (all.peak_memory - floor);

  service::PlanService svc;
  IlpSolveOptions opts;
  const double requested = 1.0;
  opts.deadline = robust::Deadline::after(requested);

  const auto t0 = Clock::now();
  const auto out = svc.plan_robust(p, budget, opts);
  const double elapsed = seconds_since(t0);
  EXPECT_LT(elapsed, 2.0 * requested)
      << "deadline overshoot: " << elapsed << "s for a " << requested
      << "s budget";
  // Never-fail: whatever rung it landed on, the plan is validated.
  ASSERT_TRUE(out.result.feasible);
  EXPECT_TRUE(out.result.sim.valid);
  EXPECT_LE(out.result.peak_memory, budget + 1e-6);
}

// Deadline-free runs keep the bit-identity contract: the robust entry
// point must not perturb the deterministic search.
TEST(PlanRobust, DeadlineFreeMatchesPlainPlan) {
  auto p = RematProblem::unit_training_chain(8);
  service::PlanService robust_svc;
  service::PlanService plain_svc;
  const double budget = 7.0;
  const auto out = robust_svc.plan_robust(p, budget);
  const auto ref = plain_svc.plan(p, budget);
  ASSERT_TRUE(ref.feasible);
  EXPECT_EQ(out.provenance, service::PlanProvenance::kProvenOptimal);
  EXPECT_DOUBLE_EQ(out.result.cost, ref.cost);
  EXPECT_EQ(out.result.nodes, ref.nodes);
  EXPECT_EQ(out.result.lp_iterations, ref.lp_iterations);
}

}  // namespace
}  // namespace checkmate
