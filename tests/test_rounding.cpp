#include "core/rounding.h"

#include <gtest/gtest.h>

#include <random>

#include "lp/simplex.h"

namespace checkmate {
namespace {

TEST(SolveRGivenS, EmptySYieldsFullRecompute) {
  auto p = RematProblem::unit_chain(4);
  BoolMatrix s = make_bool_matrix(4, 4);
  BoolMatrix r = solve_r_given_s(p.graph, s);
  // Every stage recomputes the whole prefix.
  for (int t = 0; t < 4; ++t)
    for (int i = 0; i <= t; ++i) EXPECT_EQ(r[t][i], 1) << t << "," << i;
}

TEST(SolveRGivenS, FullSYieldsIdentity) {
  auto p = RematProblem::unit_chain(4);
  BoolMatrix s = make_bool_matrix(4, 4);
  for (int t = 0; t < 4; ++t)
    for (int i = 0; i < t; ++i) s[t][i] = 1;
  BoolMatrix r = solve_r_given_s(p.graph, s);
  for (int t = 0; t < 4; ++t)
    for (int i = 0; i <= t; ++i)
      EXPECT_EQ(r[t][i], i == t ? 1 : 0) << t << "," << i;
}

TEST(SolveRGivenS, RepairsCheckpointLiveness) {
  // S asks for node 0 at stage 3 but node 0 was dead at stage 2: the
  // repair must materialize it at stage 2.
  auto p = RematProblem::unit_chain(4);
  BoolMatrix s = make_bool_matrix(4, 4);
  s[1][0] = 1;  // alive after stage 0
  s[3][0] = 1;  // revived later -- (1c) violation to repair
  BoolMatrix r = solve_r_given_s(p.graph, s);
  EXPECT_EQ(r[2][0], 1);
  RematSolution sol{r, s};
  EXPECT_EQ(sol.check_feasible(p), "");
}

TEST(SolveRGivenS, ResultAlwaysFeasibleOnRandomDags) {
  std::mt19937 rng(17);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 3 + static_cast<int>(rng() % 8);
    Graph g(n);
    for (int j = 1; j < n; ++j) {
      g.add_edge(static_cast<NodeId>(rng() % j), j);
      if (rng() % 2) g.add_edge(static_cast<NodeId>(rng() % j), j);
    }
    BoolMatrix s = make_bool_matrix(n, n);
    for (int t = 1; t < n; ++t)
      for (int i = 0; i < t; ++i) s[t][i] = rng() % 2;

    RematProblem p;
    p.name = "random";
    p.graph = g;
    p.cost.assign(n, 1.0);
    p.memory.assign(n, 1.0);
    p.is_backward.assign(n, 0);
    p.grad_of.assign(n, -1);
    p.node_names.assign(n, "");

    RematSolution sol;
    sol.S = s;
    sol.R = solve_r_given_s(g, s);
    EXPECT_EQ(sol.check_feasible(p), "") << "trial " << trial;
  }
}

TEST(SolveRGivenS, Minimality) {
  // Every R[t][i]=1 with i != t must be justified: removing it breaks
  // feasibility.
  auto p = RematProblem::unit_training_chain(3);
  BoolMatrix s = make_bool_matrix(p.size(), p.size());
  // Sparse checkpoints.
  for (int t = 1; t < p.size(); ++t) s[t][0] = 1;
  RematSolution sol;
  sol.S = s;
  sol.R = solve_r_given_s(p.graph, s);
  ASSERT_EQ(sol.check_feasible(p), "");
  for (int t = 0; t < p.size(); ++t) {
    for (int i = 0; i < t; ++i) {
      if (!sol.R[t][i]) continue;
      RematSolution probe = sol;
      probe.R[t][i] = 0;
      EXPECT_NE(probe.check_feasible(p), "") << t << "," << i;
    }
  }
}

TEST(TwoPhaseRounding, DeterministicThreshold) {
  auto p = RematProblem::unit_chain(3);
  std::vector<std::vector<double>> s_star(3, std::vector<double>(3, 0.0));
  s_star[1][0] = 0.9;
  s_star[2][1] = 0.4;
  auto sol = two_phase_round(p.graph, s_star);
  EXPECT_EQ(sol.S[1][0], 1);
  EXPECT_EQ(sol.S[2][1], 0);
  EXPECT_EQ(sol.check_feasible(p), "");
}

TEST(TwoPhaseRounding, RandomizedIsSeededAndFeasible) {
  auto p = RematProblem::unit_training_chain(4);
  const int n = p.size();
  std::vector<std::vector<double>> s_star(n, std::vector<double>(n, 0.5));
  RoundingOptions o1{.randomized = true, .threshold = 0.5, .seed = 7};
  RoundingOptions o2{.randomized = true, .threshold = 0.5, .seed = 7};
  RoundingOptions o3{.randomized = true, .threshold = 0.5, .seed = 8};
  auto a = two_phase_round(p.graph, s_star, o1);
  auto b = two_phase_round(p.graph, s_star, o2);
  auto c = two_phase_round(p.graph, s_star, o3);
  EXPECT_EQ(a.S, b.S);  // same seed, same draw
  EXPECT_NE(a.S, c.S);  // different seed, (overwhelmingly) different draw
  EXPECT_EQ(a.check_feasible(p), "");
  EXPECT_EQ(c.check_feasible(p), "");
}

TEST(TwoPhaseRounding, FractionalLpSolutionRoundsFeasibly) {
  // End-to-end slice of the approximation pipeline on a real LP relaxation.
  auto p = RematProblem::unit_training_chain(4);
  IlpBuildOptions opts;
  opts.budget_bytes = 5.0;
  IlpFormulation f(p, opts);
  auto rel = lp::solve_lp(f.lp());
  ASSERT_EQ(rel.status, lp::LpStatus::kOptimal);
  auto sol = two_phase_round(p.graph, f.extract_fractional_s(rel.x));
  EXPECT_EQ(sol.check_feasible(p), "");
  // Rounding can only add computation relative to the fractional optimum.
  EXPECT_GE(sol.compute_cost(p), f.unscale_cost(rel.objective) - 1e-6);
}

}  // namespace
}  // namespace checkmate
