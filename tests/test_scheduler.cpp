#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "baselines/baselines.h"
#include "model/autodiff.h"
#include "model/zoo.h"

namespace checkmate {
namespace {

Scheduler small_vgg_scheduler(int64_t batch = 2) {
  auto p = RematProblem::from_dnn(
      model::make_training_graph(model::zoo::vgg16(batch)),
      model::CostMetric::kProfiledTimeUs);
  return Scheduler(std::move(p));
}

// Every ILP-solving test passes an explicit wall-clock limit and asserts on
// the returned MilpStatus, so a solver regression can slow the suite down
// but never wedge it.
IlpSolveOptions bounded(double time_limit_sec = 30.0) {
  IlpSolveOptions opts;
  opts.time_limit_sec = time_limit_sec;
  return opts;
}

TEST(Scheduler, AmpleBudgetReachesIdealCost) {
  Scheduler sched(RematProblem::unit_training_chain(5));
  auto res = sched.solve_optimal_ilp(1e6, bounded());
  ASSERT_TRUE(res.feasible) << res.message;
  EXPECT_EQ(res.milp_status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(res.cost, sched.ideal_cost(), 1e-6);
  EXPECT_NEAR(res.overhead, 1.0, 1e-7);
  EXPECT_TRUE(res.sim.valid);
}

TEST(Scheduler, TightBudgetTradeoff) {
  Scheduler sched(RematProblem::unit_training_chain(6));
  auto tight = sched.solve_optimal_ilp(5.0, bounded());
  auto loose = sched.solve_optimal_ilp(9.0, bounded());
  ASSERT_TRUE(tight.feasible) << tight.message;
  ASSERT_TRUE(loose.feasible) << loose.message;
  EXPECT_EQ(tight.milp_status, milp::MilpStatus::kOptimal);
  EXPECT_EQ(loose.milp_status, milp::MilpStatus::kOptimal);
  EXPECT_GE(tight.cost, loose.cost - 1e-9);
  EXPECT_LE(tight.peak_memory, 5.0 + 1e-6);
  EXPECT_LE(loose.peak_memory, 9.0 + 1e-6);
}

TEST(Scheduler, InfeasibleBudgetReported) {
  Scheduler sched(RematProblem::unit_training_chain(4));
  auto res = sched.solve_optimal_ilp(2.0, bounded());
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.milp_status, milp::MilpStatus::kInfeasible);
}

TEST(Scheduler, IlpBeatsOrMatchesEveryBaseline) {
  auto problem = RematProblem::unit_training_chain(8);
  Scheduler sched(problem);
  const double budget = 7.0;
  auto ilp = sched.solve_optimal_ilp(budget, bounded());
  ASSERT_EQ(ilp.milp_status, milp::MilpStatus::kOptimal);
  ASSERT_TRUE(ilp.feasible) << ilp.message;
  using baselines::BaselineKind;
  for (auto kind : {BaselineKind::kChenSqrtN, BaselineKind::kChenGreedy,
                    BaselineKind::kGriewankLogN}) {
    for (const auto& bs :
         baselines::baseline_schedules(sched.problem(), kind)) {
      auto eval = sched.evaluate_schedule(bs.solution, budget);
      if (!eval.feasible) continue;  // over budget: not comparable
      EXPECT_LE(ilp.cost, eval.cost + 1e-6)
          << baselines::to_string(kind) << " " << bs.label;
    }
  }
}

TEST(Scheduler, LpRoundingFeasibleAndBoundedBelowByRelaxation) {
  Scheduler sched(RematProblem::unit_training_chain(8));
  auto approx = sched.solve_lp_rounding(8.0);
  ASSERT_TRUE(approx.feasible) << approx.message;
  EXPECT_LE(approx.peak_memory, 8.0 + 1e-6);
  EXPECT_GE(approx.cost, approx.root_relaxation - 1e-6);
}

TEST(Scheduler, LpRoundingNearOptimal) {
  // Table 2: two-phase rounding lands within a few percent of the ILP.
  Scheduler sched(RematProblem::unit_training_chain(8));
  const double budget = 8.0;
  auto ilp = sched.solve_optimal_ilp(budget, bounded());
  auto approx = sched.solve_lp_rounding(budget);
  ASSERT_TRUE(ilp.feasible);
  ASSERT_TRUE(approx.feasible) << approx.message;
  EXPECT_LE(approx.cost / ilp.cost, 1.5);
  EXPECT_GE(approx.cost / ilp.cost, 1.0 - 1e-9);
}

TEST(Scheduler, RandomizedRoundingProducesFeasibleSchedules) {
  Scheduler sched(RematProblem::unit_training_chain(6));
  ApproxOptions opts;
  opts.randomized = true;
  opts.samples = 16;
  opts.seed = 3;
  auto res = sched.solve_lp_rounding(8.0, opts);
  ASSERT_TRUE(res.feasible) << res.message;
  EXPECT_LE(res.peak_memory, 8.0 + 1e-6);
}

TEST(Scheduler, EvaluateScheduleRejectsInfeasibleMatrix) {
  Scheduler sched(RematProblem::unit_training_chain(3));
  RematSolution bad;
  bad.R = make_bool_matrix(7, 7);
  bad.S = make_bool_matrix(7, 7);
  auto res = sched.evaluate_schedule(bad, 0.0);
  EXPECT_FALSE(res.feasible);
  EXPECT_NE(res.message.find("infeasible"), std::string::npos);
}

TEST(Scheduler, RealModelEndToEnd) {
  // VGG16 (coarse) training graph through the full ILP pipeline at a
  // budget midway between the structural floor and checkpoint-all. Before
  // the solver overhaul (presolve + pseudocosts + hybrid node selection)
  // this instance burned its whole time limit without terminating; now it
  // must *prove* optimality (within the requested gap) well inside the
  // limit -- the assertion is on MilpStatus, not on wall-clock luck.
  Scheduler sched = small_vgg_scheduler();
  const auto& p = sched.problem();
  auto all = baselines::checkpoint_all_schedule(p);
  auto all_eval = sched.evaluate_schedule(all, 0.0);
  ASSERT_TRUE(all_eval.feasible);

  IlpSolveOptions opts = bounded(60.0);
  // 0.05% optimality gap: the instance has a dual plateau just below the
  // optimum, so proving 1e-4 takes minutes while 5e-4 takes seconds.
  opts.relative_gap = 5e-4;
  const double floor = p.memory_floor();
  const double budget = floor + 0.5 * (all_eval.peak_memory - floor);
  auto res = sched.solve_optimal_ilp(budget, opts);
  ASSERT_TRUE(res.feasible) << res.message;
  // kOptimal proves the search terminated within gap; the ctest TIMEOUT
  // guards wall clock, so no machine-dependent seconds assertion here.
  EXPECT_EQ(res.milp_status, milp::MilpStatus::kOptimal);
  EXPECT_LE(res.peak_memory, budget + 1e-3);
  EXPECT_GE(res.overhead, 1.0 - 1e-9);
  EXPECT_LT(res.overhead, 2.0);  // remat should not double compute here
}

TEST(Scheduler, RealModelClosesTightGapWithCuts) {
  // The instance of RealModelEndToEnd at the gap that used to be
  // unreachable: before branch & cut, the dual plateau below the optimum
  // made 1e-4 take minutes (the 5e-4 comment above); the cover/clique
  // cuts on the memory rows lift the root bound onto the optimum, so the
  // same instance now PROVES a <= 1e-4 gap in seconds.
  Scheduler sched = small_vgg_scheduler();
  const auto& p = sched.problem();
  auto all = sched.evaluate_schedule(baselines::checkpoint_all_schedule(p),
                                     0.0);
  ASSERT_TRUE(all.feasible);

  IlpSolveOptions opts = bounded(60.0);
  opts.relative_gap = 1e-4;
  const double floor = p.memory_floor();
  const double budget = floor + 0.5 * (all.peak_memory - floor);
  auto res = sched.solve_optimal_ilp(budget, opts);
  ASSERT_TRUE(res.feasible) << res.message;
  EXPECT_EQ(res.milp_status, milp::MilpStatus::kOptimal);
  EXPECT_GT(res.cuts_added, 0);
  // The proven bound must actually close the requested gap.
  EXPECT_LE(res.cost - res.best_bound,
            1e-4 * std::max(1.0, std::abs(res.cost)) + 1e-6);
  EXPECT_LE(res.peak_memory, budget + 1e-3);
}

TEST(Scheduler, BudgetBelowFloorRejectedInstantly) {
  Scheduler sched(RematProblem::unit_training_chain(16));
  const auto start = std::chrono::steady_clock::now();
  auto res = sched.solve_optimal_ilp(
      0.9 * sched.problem().memory_floor(), bounded());
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.milp_status, milp::MilpStatus::kInfeasible);
  EXPECT_LT(secs, 1.0);  // no branch & bound grind
}

TEST(Scheduler, UnpartitionedReportsObjectiveOnly) {
  Scheduler sched(RematProblem::unit_training_chain(2));
  IlpSolveOptions opts = bounded(60.0);
  opts.partitioned = false;
  auto res = sched.solve_optimal_ilp(5.0, opts);
  ASSERT_TRUE(res.feasible) << res.message;
  EXPECT_GT(res.cost, 0.0);
}

}  // namespace
}  // namespace checkmate
