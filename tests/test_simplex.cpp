#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <random>

#include "lp/dense_simplex.h"

namespace checkmate::lp {
namespace {

std::vector<std::pair<int, double>> terms(
    std::initializer_list<std::pair<int, double>> t) {
  return t;
}

TEST(DualSimplex, TrivialBoundsOnly) {
  LinearProgram lp;
  lp.add_var(1.0, 5.0, 1.0);
  auto res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 1.0, 1e-8);
}

TEST(DualSimplex, ClassicTwoVariable) {
  LinearProgram lp;
  int x = lp.add_var(0, kInf, -3.0);
  int y = lp.add_var(0, kInf, -5.0);
  lp.add_le(terms({{x, 1.0}}), 4.0);
  lp.add_le(terms({{y, 2.0}}), 12.0);
  lp.add_le(terms({{x, 3.0}, {y, 2.0}}), 18.0);
  auto res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -36.0, 1e-6);
  EXPECT_NEAR(res.x[0], 2.0, 1e-6);
  EXPECT_NEAR(res.x[1], 6.0, 1e-6);
}

TEST(DualSimplex, EqualityConstraint) {
  LinearProgram lp;
  int x = lp.add_var(0, kInf, 1.0);
  int y = lp.add_var(0, kInf, 2.0);
  lp.add_eq(terms({{x, 1.0}, {y, 1.0}}), 3.0);
  auto res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 3.0, 1e-8);
}

TEST(DualSimplex, InfeasibleDetected) {
  LinearProgram lp;
  int x = lp.add_var(0, 1, 1.0);
  lp.add_ge(terms({{x, 1.0}}), 5.0);
  auto res = solve_lp(lp);
  EXPECT_EQ(res.status, LpStatus::kInfeasible);
}

TEST(DualSimplex, InfeasibleBoundVsEquality) {
  LinearProgram lp;
  int x = lp.add_var(0, 2, 0.0);
  int y = lp.add_var(0, 2, 0.0);
  lp.add_eq(terms({{x, 1.0}, {y, 1.0}}), 10.0);
  auto res = solve_lp(lp);
  EXPECT_EQ(res.status, LpStatus::kInfeasible);
}

TEST(DualSimplex, RangedRow) {
  LinearProgram lp;
  int x = lp.add_var(0, 10, 1.0);
  int y = lp.add_var(0, 1, 0.0);
  lp.add_constraint(terms({{x, 1.0}, {y, 1.0}}), 2.0, 5.0);
  auto res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 1.0, 1e-8);
}

TEST(DualSimplex, NegativeCostBoundedAbove) {
  // min -x - 2y, x in [0,3], y in [0,4], x + y <= 5 => x=1? No:
  // maximize x + 2y: y=4, x=1, obj = -9.
  LinearProgram lp;
  int x = lp.add_var(0, 3, -1.0);
  int y = lp.add_var(0, 4, -2.0);
  lp.add_le(terms({{x, 1.0}, {y, 1.0}}), 5.0);
  auto res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -9.0, 1e-7);
}

TEST(DualSimplex, WarmStartAfterBoundChange) {
  LinearProgram lp;
  int x = lp.add_var(0, 10, 1.0);
  int y = lp.add_var(0, 10, 1.0);
  lp.add_ge(terms({{x, 1.0}, {y, 1.0}}), 4.0);
  DualSimplex solver(lp);
  auto res = solver.solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 4.0, 1e-8);

  // Force x >= 3: still optimal at obj 4 (x=3, y=1 or x=4).
  solver.set_var_bounds(x, 3.0, 10.0);
  res = solver.solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 4.0, 1e-8);
  EXPECT_GE(res.x[0], 3.0 - 1e-9);

  // Force x == 0 and y <= 1: infeasible (x + y <= 1 < 4).
  solver.set_var_bounds(x, 0.0, 0.0);
  solver.set_var_bounds(y, 0.0, 1.0);
  res = solver.solve();
  EXPECT_EQ(res.status, LpStatus::kInfeasible);

  // Relax back: optimal again.
  solver.set_var_bounds(x, 0.0, 10.0);
  solver.set_var_bounds(y, 0.0, 10.0);
  res = solver.solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 4.0, 1e-8);
}

TEST(DualSimplex, FixedVariableNeverEnters) {
  LinearProgram lp;
  int x = lp.add_var(2.0, 2.0, 1.0);  // fixed
  int y = lp.add_var(0, kInf, 1.0);
  lp.add_ge(terms({{x, 1.0}, {y, 1.0}}), 5.0);
  auto res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.x[0], 2.0, 1e-9);
  EXPECT_NEAR(res.objective, 5.0, 1e-7);
}

// Randomized cross-validation against the dense reference solver. Random
// LPs with bounded variables are always either optimal or infeasible, and
// the two solvers must agree on status and objective.
TEST(DualSimplex, MatchesDenseReferenceOnRandomLps) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> coef(-3.0, 3.0);
  std::uniform_real_distribution<double> cost(-2.0, 2.0);
  int optimal_count = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 6);
    const int m = 1 + static_cast<int>(rng() % 6);
    LinearProgram lp;
    for (int j = 0; j < n; ++j) {
      double lo = (rng() % 4 == 0) ? -static_cast<double>(rng() % 3) : 0.0;
      double hi = lo + 1.0 + static_cast<double>(rng() % 5);
      lp.add_var(lo, hi, cost(rng));
    }
    for (int r = 0; r < m; ++r) {
      std::vector<std::pair<int, double>> t;
      for (int j = 0; j < n; ++j)
        if (rng() % 2) t.emplace_back(j, coef(rng));
      const double rhs = coef(rng) * 2.0;
      switch (rng() % 3) {
        case 0: lp.add_le(t, rhs); break;
        case 1: lp.add_ge(t, rhs); break;
        default: lp.add_constraint(t, rhs, rhs + (rng() % 3)); break;
      }
    }
    auto sparse = solve_lp(lp);
    auto dense = solve_dense_reference(lp);
    ASSERT_EQ(sparse.status, dense.status) << "trial " << trial;
    if (sparse.status == LpStatus::kOptimal) {
      ++optimal_count;
      EXPECT_NEAR(sparse.objective, dense.objective, 1e-5)
          << "trial " << trial;
      EXPECT_LE(lp.max_violation(sparse.x), 1e-6) << "trial " << trial;
    }
  }
  // The generator should produce a healthy mix of feasible instances.
  EXPECT_GT(optimal_count, 30);
}

TEST(DualSimplex, ModeratelyLargeStructuredLp) {
  // Staircase LP with 200 variables / 200 rows; verifies the sparse path
  // and refactorization cadence.
  LinearProgram lp;
  const int n = 200;
  for (int j = 0; j < n; ++j) lp.add_var(0.0, 10.0, 1.0 + (j % 3));
  for (int r = 0; r < n; ++r) {
    std::vector<std::pair<int, double>> t{{r, 1.0}};
    if (r + 1 < n) t.emplace_back(r + 1, 0.5);
    lp.add_ge(t, 2.0);
  }
  auto res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_LE(lp.max_violation(res.x), 1e-6);
  // Cross-check with the dense reference.
  auto dense = solve_dense_reference(lp);
  ASSERT_EQ(dense.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, dense.objective, 1e-4);
}

}  // namespace
}  // namespace checkmate::lp
